package grouter

import (
	"grouter/internal/cluster"
	"grouter/internal/router"
)

// simOptions collects NewSim's functional-option state.
type simOptions struct {
	nodes      int
	seed       int64
	trace      bool
	faults     bool
	coalesce   bool
	shards     int
	router     bool
	routerCfg  router.Config
	elastic    bool
	elasticCfg cluster.ElasticConfig
	pd         bool
	pdCfg      router.PDPolicyConfig
	slo        bool
	sloCfg     router.SLOConfig
}

func defaultSimOptions() simOptions { return simOptions{nodes: 1} }

// Option configures a Sim under construction; see NewSim.
type Option func(*simOptions)

// WithNodes sets the number of nodes in the simulated cluster (default 1).
func WithNodes(n int) Option { return func(o *simOptions) { o.nodes = n } }

// WithSeed sets the seed inherited by data planes built without an explicit
// Config (it drives randomized placement in ablated variants; the full
// system is deterministic regardless).
func WithSeed(seed int64) Option { return func(o *simOptions) { o.seed = seed } }

// WithTracer attaches a virtual-time span tracer to the simulation before
// the fabric is built; retrieve it with Sim.Tracer.
func WithTracer() Option { return func(o *simOptions) { o.trace = true } }

// WithFaults attaches a fault injector for link failures, GPU crashes, and
// memory pressure; retrieve it with Sim.Faults.
func WithFaults() Option { return func(o *simOptions) { o.faults = true } }

// WithScaleDefaults configures the Sim the way the scale-replay experiment
// (grouter-bench -scale) drives it: a 2-node cluster with the canonical
// replay seed. Combine with the "dgx-v100" spec and App.ReplayTrace's
// batched admission to reproduce the replay setup; later options override
// individual fields.
func WithScaleDefaults() Option {
	return func(o *simOptions) {
		o.nodes = 2
		o.seed = 42
	}
}

// WithShards sets the number of engine shards ReplayScaleOut executes the
// pod fleet on (default 1, the single-shard determinism oracle). It is a
// pure execution knob: shard counts change wall-clock time only, never
// results — ReplayScaleOut output is byte-identical for any value.
func WithShards(n int) Option { return func(o *simOptions) { o.shards = n } }

// WithRouter sets the default configuration Sim.NewRouter attaches to apps:
// with no argument the scored production config (router.DefaultConfig), or
// an explicit RouterConfig. The router itself attaches per deployed app —
// call Sim.NewRouter(app) after Deploy.
func WithRouter(cfg ...RouterConfig) Option {
	return func(o *simOptions) {
		o.router = true
		o.routerCfg = router.DefaultConfig()
		if len(cfg) > 0 {
			o.routerCfg = cfg[0]
		}
	}
}

// WithAutoscaler sets the default elastic-pool configuration Sim.Autoscale
// attaches to apps: with no argument the reactive production defaults
// (DefaultElasticConfig), or an explicit ElasticConfig. The pools themselves
// attach per deployed app — call Sim.Autoscale(app) after Deploy.
func WithAutoscaler(cfg ...ElasticConfig) Option {
	return func(o *simOptions) {
		o.elastic = true
		o.elasticCfg = cluster.DefaultElastic()
		if len(cfg) > 0 {
			o.elasticCfg = cfg[0]
		}
	}
}

// WithSLO sets the per-class SLO admission configuration Sim.NewRouter
// folds into routers it attaches: requests predicted to miss their class
// latency budget are deferred in a bounded virtual-time delay queue and
// then shed (App.Submit returns ErrSLOShed on an immediate shed). An
// explicit RouterConfig argument to NewRouter that already carries an
// enabled SLO takes precedence:
//
//	s := grouter.MustNewSim("dgx-v100", grouter.WithSLO(grouter.RouterSLOConfig{
//	    High: grouter.RouterSLOClass{Budget: 40 * time.Millisecond, MaxDelay: 5 * time.Millisecond},
//	    Low:  grouter.RouterSLOClass{Budget: 120 * time.Millisecond, MaxDelay: 2 * time.Millisecond},
//	}))
func WithSLO(cfg RouterSLOConfig) Option {
	return func(o *simOptions) {
		o.slo = true
		o.sloCfg = cfg
	}
}

// WithPD sets the default prefill/decode routing policy Sim.NewPDRouter
// attaches to LLM services: with no argument the production policy
// (DefaultPDPolicy), or an explicit PDPolicyConfig. The policy itself
// attaches per deployed service — call Sim.NewPDRouter(svc) after
// Runtime.DeployLLM.
func WithPD(cfg ...PDPolicyConfig) Option {
	return func(o *simOptions) {
		o.pd = true
		o.pdCfg = router.DefaultPDPolicy()
		if len(cfg) > 0 {
			o.pdCfg = cfg[0]
		}
	}
}

// WithCoalescing enables fan-out-aware transfer coalescing in planes built
// by Sim.NewGRouter without an explicit Config: concurrent Gets of one
// object to the same GPU share a transfer, and later consumers pull from the
// nearest replica instead of the producer's links.
func WithCoalescing() Option { return func(o *simOptions) { o.coalesce = true } }
