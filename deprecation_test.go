package grouter

// Deprecation scan: new in-repo code must use the typed Request API, not the
// deprecated shims. staticcheck's SA1019 cannot flag deprecated-symbol uses
// inside the declaring package (where the shims and their byte-compat
// oracles deliberately live), so this test enforces the boundary everywhere
// else: any new call to a shim outside the allowlist fails CI.

import (
	"bufio"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// deprecatedCalls are the shim spellings the scan rejects. They are matched
// as substrings of non-comment lines, so renaming a shim without updating
// this list fails the façade compile first.
var deprecatedCalls = []string{
	"NewSimN(",     // use NewSim(spec, WithNodes(n))
	"MustNewSimN(", // use MustNewSim(spec, WithNodes(n))
	".InvokeQoS(",  // use Submit(NewRequest(ReqQoS(q)))
	".Invoke()",    // use Submit(NewRequest())
	"HighEvery:",   // use Replay with ReplaySpec.RequestAt
}

// allowlist holds the files that may keep spelling the deprecated paths: the
// shim declarations themselves and their byte-compatibility oracles (which
// live in the declaring packages precisely so SA1019 stays quiet), plus this
// scan's own pattern table.
var allowlist = map[string]bool{
	"grouter.go":                      true, // NewSimN/MustNewSimN shims
	"compat_test.go":                  true, // façade shim oracles
	"deprecation_test.go":             true, // the pattern table above
	"internal/cluster/cluster.go":     true, // Invoke/InvokeQoS shims
	"internal/cluster/replay.go":      true, // ReplayOptions.HighEvery shim
	"internal/cluster/compat_test.go": true, // cluster shim oracles
}

func TestNoNewDeprecatedCalls(t *testing.T) {
	root, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		if allowlist[rel] {
			return nil
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		line := 0
		for sc.Scan() {
			line++
			text := sc.Text()
			// Comment lines may mention the old names (deprecation notes,
			// migration pointers); only code uses are rejected.
			if strings.HasPrefix(strings.TrimSpace(text), "//") {
				continue
			}
			for _, dep := range deprecatedCalls {
				if strings.Contains(text, dep) {
					t.Errorf("%s:%d: deprecated call %q (use the typed Request API; see allowlist in deprecation_test.go)",
						rel, line, strings.TrimSuffix(dep, "("))
				}
			}
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAllowlistCurrent keeps the allowlist honest: every entry must still
// exist, so a moved or deleted shim file prompts a scan update.
func TestAllowlistCurrent(t *testing.T) {
	for rel := range allowlist {
		if _, err := os.Stat(rel); err != nil {
			t.Errorf("allowlist entry %s: %v", rel, err)
		}
	}
}
