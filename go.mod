module grouter

go 1.22
