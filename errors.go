package grouter

import (
	"grouter/internal/cluster"
	"grouter/internal/core"
	"grouter/internal/dataplane"
	"grouter/internal/router"
	"grouter/internal/xfer"
)

// Typed error sentinels. Every Plane method that fails wraps one of these,
// so callers branch with errors.Is instead of matching message strings:
//
//	if err := plane.Get(p, ctx, ref); errors.Is(err, grouter.ErrGPUDown) {
//	    // the object's GPU crashed and recovery failed — re-run the producer
//	}
var (
	// ErrNotFound: Get of a data ID that was never Put or was already freed.
	ErrNotFound = dataplane.ErrNotFound
	// ErrEvicted: Put could not make room, even by spilling to host memory.
	ErrEvicted = dataplane.ErrEvicted
	// ErrGPUDown: a crash-lost object could not be re-materialized.
	ErrGPUDown = dataplane.ErrGPUDown
	// ErrDeadline: a transfer exhausted its SLO budget (xfer deadline).
	ErrDeadline = xfer.ErrDeadline
	// ErrAccessDenied: a function read data belonging to another workflow.
	ErrAccessDenied = core.ErrAccessDenied
	// ErrNoWorker: routing found no healthy placement (zero workers or
	// every candidate crashed); integrated routing falls back to
	// round-robin instead of surfacing it, so it is seen directly only by
	// router.RouteRequest callers.
	ErrNoWorker = router.ErrNoWorker
	// ErrSLOShed: SLO admission control dropped the request — no worker was
	// predicted to finish it inside its class latency budget and the
	// deferral bound was spent. Returned by App.Submit on an immediate
	// shed; deferred sheds instead fire the completion signal and count in
	// RouterStats.ShedLow/ShedHigh.
	ErrSLOShed = cluster.ErrSLOShed
	// ErrBadRequest: an invalid Request descriptor or DeployLLM
	// configuration (negative field, out-of-range mode, wrong model).
	ErrBadRequest = cluster.ErrBadRequest
	// ErrNilTrace: Replay of a nil arrival trace (an empty non-nil trace is
	// a valid no-op).
	ErrNilTrace = cluster.ErrNilTrace
	// ErrNegativeQuantum: a ReplaySpec or ReplayOptions admission quantum
	// below zero.
	ErrNegativeQuantum = cluster.ErrNegativeQuantum
	// ErrNegativeHighEvery: a negative ReplayOptions.HighEvery mix.
	ErrNegativeHighEvery = cluster.ErrNegativeHighEvery
)
