// LLM prefill/decode disaggregation over the data plane. An 8×H800 node
// serves llama-7b with one prefill worker, one decode worker, and six mixed
// workers: the PD router splits long-prompt requests across the
// prefill/decode pair — shipping the prompt's KV cache between the two GPUs
// through the GROUTER data plane — while short interactive requests run
// colocated on the mixed pool. The program replays the same interactive
// trace (rare 8k-token prompts mixed into short requests) against a
// colocated-only service and the disaggregated one, showing how fencing
// prefill off protects the short-request tail. Everything goes through the
// grouter façade and its typed Request API.
package main

import (
	"fmt"
	"time"

	"grouter"
)

const (
	longPrompt  = 8192
	shortPrompt = 256
	outTokens   = 8
	longEvery   = 128
)

// serve replays one trace through a PD service: disaggregated carves a
// 1 prefill / 1 decode / 6 mixed partition, colocated makes all 8 GPUs
// mixed workers. Same policy, same trace, same prompt mix either way.
func serve(arrivals []time.Duration, disaggregated bool) (grouter.ReplayStats, grouter.PDStats, time.Duration) {
	s := grouter.MustNewSim("h800x8", grouter.WithPD())
	defer s.Close()
	c := s.NewCluster(func(s *grouter.Sim) grouter.Plane { return s.NewGRouter() })
	cfg := grouter.PDConfig{
		LLM:              grouter.MustLookupLLM("llama-7b"),
		MixedWorkers:     8,
		DefaultOutTokens: outTokens,
	}
	if disaggregated {
		cfg.PrefillWorkers, cfg.DecodeWorkers, cfg.MixedWorkers = 1, 1, 6
	}
	svc, err := c.DeployLLM(cfg)
	if err != nil {
		panic(err)
	}
	s.NewPDRouter(svc)
	st, err := svc.Replay(arrivals, grouter.ReplaySpec{Quantum: 10 * time.Millisecond, RequestAt: func(i int) grouter.Request {
		if i%longEvery == 0 {
			return grouter.NewRequest(
				grouter.ReqPrompt(longPrompt),
				grouter.ReqOutput(outTokens),
				grouter.ReqSession(int64(i%16)+1))
		}
		return grouter.NewRequest(grouter.ReqPrompt(shortPrompt), grouter.ReqOutput(outTokens))
	}})
	if err != nil {
		panic(err)
	}
	return st, svc.Stats, svc.TTFT.P(0.99)
}

func main() {
	arrivals := grouter.GenerateTrace(grouter.TraceSpec{
		Pattern: grouter.Sporadic, Duration: 20 * time.Second, MeanRPS: 90, Seed: 42,
	})
	fmt.Printf("interactive llama-7b serving on one 8xH800 node: %d requests, 1 in %d an %d-token prompt\n\n",
		len(arrivals), longEvery, longPrompt)
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	for _, mode := range []string{"colocated", "disaggregated"} {
		st, ps, ttft := serve(arrivals, mode == "disaggregated")
		fmt.Printf("%-14s p50=%6.2fms p99=%6.2fms ttft-p99=%6.2fms\n",
			mode, ms(st.P50), ms(st.P99), ms(ttft))
		fmt.Printf("%-14s colocated=%d disaggregated=%d kv-transfers=%d kv-moved=%.1f GiB\n\n",
			"", ps.Colocated, ps.Disaggregated, ps.KVTransfers, float64(ps.KVBytes)/float64(1<<30))
	}
	fmt.Println("the partition fences 330 ms prefills off the mixed pool, so short requests")
	fmt.Println("never queue behind them; the KV handoff rides the data plane over NVSwitch.")
}
