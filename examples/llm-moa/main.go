// LLM Mixture-of-Agents: KV-cache passing between serverless LLM stages.
// Three layers of agents run on alternating 8×H800 nodes; each layer's
// agents reuse the previous layer's KV caches instead of recomputing the
// prompt. The program compares the receiver's time-to-first-token and the
// full MoA latency across GROUTER, the Mooncake-style KV store, and the
// host-centric baseline. Everything goes through the grouter façade.
package main

import (
	"fmt"
	"time"

	"grouter"
)

func main() {
	llm := grouter.MustLookupLLM("llama-7b")
	systems := []grouter.KVSystem{grouter.SysINFless, grouter.SysMooncake, grouter.SysGRouter}

	fmt.Println("single-hop KV-cache transfer between MoA stages (llama-7b, TP=2)")
	fmt.Printf("%-10s", "tokens")
	for _, sys := range systems {
		fmt.Printf("%14s", sys)
	}
	fmt.Println(" (TTFT, ms)")
	for _, tokens := range []int{1024, 4096, 16384} {
		fmt.Printf("%-10d", tokens)
		for _, sys := range systems {
			s := grouter.MustNewSim("h800x8")
			c := s.NewKVCluster(2)
			var ttft time.Duration
			s.Go("ttft", func(p *grouter.Proc) {
				ttft = c.TTFT(p, sys, llm, tokens, 2, 0, 1)
			})
			s.Run()
			s.Close()
			fmt.Printf("%14.2f", float64(ttft)/float64(time.Millisecond))
		}
		fmt.Println()
	}

	fmt.Println("\nfull Mixture-of-Agents run: 3 layers x 3 agents, 2K prompt, 256-token responses")
	cfg := grouter.MoAConfig{
		LLM: llm, Layers: 3, Agents: 3, TP: 2,
		PromptTokens: 2048, ResponseTokens: 256,
	}
	for _, sys := range systems {
		s := grouter.MustNewSim("h800x8")
		c := s.NewKVCluster(2)
		var total time.Duration
		s.Go("moa", func(p *grouter.Proc) {
			total = c.MoALatency(p, sys, cfg)
		})
		s.Run()
		s.Close()
		fmt.Printf("%-10s end-to-end %8.1f ms\n", sys, float64(total)/float64(time.Millisecond))
	}
}
