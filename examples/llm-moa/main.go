// LLM Mixture-of-Agents: KV-cache passing between serverless LLM stages.
// Three layers of agents run on alternating 8×H800 nodes; each layer's
// agents reuse the previous layer's KV caches instead of recomputing the
// prompt. The program compares the receiver's time-to-first-token and the
// full MoA latency across GROUTER, the Mooncake-style KV store, and the
// host-centric baseline.
package main

import (
	"fmt"
	"time"

	"grouter/internal/kvcache"
	"grouter/internal/models"
	"grouter/internal/sim"
)

func main() {
	llm := models.MustLookupLLM("llama-7b")
	systems := []kvcache.System{kvcache.SysINFless, kvcache.SysMooncake, kvcache.SysGRouter}

	fmt.Println("single-hop KV-cache transfer between MoA stages (llama-7b, TP=2)")
	fmt.Printf("%-10s", "tokens")
	for _, s := range systems {
		fmt.Printf("%14s", s)
	}
	fmt.Println(" (TTFT, ms)")
	for _, tokens := range []int{1024, 4096, 16384} {
		fmt.Printf("%-10d", tokens)
		for _, s := range systems {
			engine := sim.NewEngine()
			c := kvcache.NewCluster(engine, 2)
			var ttft time.Duration
			engine.Go("ttft", func(p *sim.Proc) {
				ttft = c.TTFT(p, s, llm, tokens, 2, 0, 1)
			})
			engine.Run(0)
			engine.Close()
			fmt.Printf("%14.2f", float64(ttft)/float64(time.Millisecond))
		}
		fmt.Println()
	}

	fmt.Println("\nfull Mixture-of-Agents run: 3 layers x 3 agents, 2K prompt, 256-token responses")
	cfg := kvcache.MoAConfig{
		LLM: llm, Layers: 3, Agents: 3, TP: 2,
		PromptTokens: 2048, ResponseTokens: 256,
	}
	for _, s := range systems {
		engine := sim.NewEngine()
		c := kvcache.NewCluster(engine, 2)
		var total time.Duration
		engine.Go("moa", func(p *sim.Proc) {
			total = c.MoALatency(p, s, cfg)
		})
		engine.Run(0)
		engine.Close()
		fmt.Printf("%-10s end-to-end %8.1f ms\n", s, float64(total)/float64(time.Millisecond))
	}
}
