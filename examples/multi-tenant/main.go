// Multi-tenant: SLO-aware bandwidth partitioning in action. A
// latency-critical road-segmentation workflow ("driving") shares a DGX-V100
// node with a transfer-intensive video-analytics workflow that continuously
// loads large chunks over PCIe. The program runs the pair twice — with
// GROUTER's fine-grained bandwidth harvesting and with DeepPlan-style
// uncontrolled sharing — and prints how much of the interference the
// partitioning absorbs. Everything goes through the grouter façade.
package main

import (
	"fmt"
	"time"

	"grouter"
)

func runPair(label string, cfg grouter.Config) (p99 time.Duration, hostXfer time.Duration, compliance float64) {
	s := grouter.MustNewSim("dgx-v100")
	defer s.Close()
	c := s.NewCluster(func(s *grouter.Sim) grouter.Plane { return s.NewGRouter(cfg) })
	driving := c.Deploy(grouter.DrivingWorkflow(), 0, grouter.PlaceOptions{Node: 0})
	video := c.Deploy(grouter.VideoWorkflow(), 0, grouter.PlaceOptions{Node: 0})

	dur := 15 * time.Second
	for _, at := range grouter.GenerateTrace(grouter.TraceSpec{Pattern: grouter.Bursty, Duration: dur, MeanRPS: 6, Seed: 5}) {
		at := at
		s.Schedule(at, func() { driving.Submit(grouter.Request{}) })
	}
	for _, at := range grouter.GenerateTrace(grouter.TraceSpec{Pattern: grouter.Bursty, Duration: dur, MeanRPS: 24, Seed: 6}) {
		at := at
		s.Schedule(at, func() { video.Submit(grouter.Request{}) })
	}
	s.Run()
	fmt.Printf("%-22s driving: %3d reqs  p99 %6.2f ms  gFn-host %5.2f ms  SLO met %3.0f%%   (video: %d reqs)\n",
		label, driving.Completed,
		float64(driving.E2E.P(0.99))/float64(time.Millisecond),
		float64(driving.XferHost.Mean())/float64(time.Millisecond),
		driving.SLOCompliance()*100, video.Completed)
	return driving.E2E.P(0.99), driving.XferHost.Mean(), driving.SLOCompliance()
}

func main() {
	fmt.Println("driving (latency-critical) colocated with video (transfer-intensive), DGX-V100")
	fmt.Println()
	full := grouter.FullConfig()
	_, fullHost, _ := runPair("with partitioning", full)

	shared := grouter.FullConfig()
	shared.NoRateControl = true // DeepPlan-style uncontrolled sharing
	_, sharedHost, _ := runPair("without partitioning", shared)

	fmt.Printf("\nbandwidth partitioning keeps driving's staging transfers %.1fx faster under contention\n",
		sharedHost.Seconds()/fullHost.Seconds())
}
