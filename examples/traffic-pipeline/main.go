// Traffic pipeline: the paper's Fig. 1 motivating application end to end.
// A traffic-monitoring workflow (video decode → preprocess → YOLO detection
// → postprocess → conditional person/car recognition) is deployed on a
// simulated DGX-V100 and driven with an Azure-like bursty trace, once on
// GROUTER and once on each baseline. The program prints per-system latency
// percentiles and the data-passing/compute breakdown.
package main

import (
	"fmt"
	"time"

	"grouter/internal/baselines"
	"grouter/internal/cluster"
	"grouter/internal/core"
	"grouter/internal/dataplane"
	"grouter/internal/fabric"
	"grouter/internal/scheduler"
	"grouter/internal/sim"
	"grouter/internal/topology"
	"grouter/internal/trace"
	"grouter/internal/workflow"
)

func main() {
	arrivals := trace.Generate(trace.Spec{
		Pattern:  trace.Bursty,
		Duration: 20 * time.Second,
		MeanRPS:  8,
		Seed:     42,
	})
	fmt.Printf("traffic-monitoring workflow, %d requests over 20s (bursty Azure-like trace)\n\n",
		len(arrivals))
	fmt.Printf("%-10s %9s %9s %10s %10s %9s\n",
		"system", "p50(ms)", "p99(ms)", "gfngfn(ms)", "gfnhost(ms)", "comp(ms)")

	systems := []struct {
		name string
		mk   func(f *fabric.Fabric) dataplane.Plane
	}{
		{"infless+", func(f *fabric.Fabric) dataplane.Plane { return baselines.NewINFless(f) }},
		{"nvshmem+", func(f *fabric.Fabric) dataplane.Plane { return baselines.NewNVShmem(f, 1) }},
		{"deepplan+", func(f *fabric.Fabric) dataplane.Plane { return baselines.NewDeepPlan(f, 1) }},
		{"grouter", func(f *fabric.Fabric) dataplane.Plane { return core.New(f, core.FullConfig()) }},
	}
	for _, sys := range systems {
		engine := sim.NewEngine()
		c := cluster.New(engine, topology.DGXV100(), 1, sys.mk)
		app := c.Deploy(workflow.Traffic(), 0, scheduler.Options{Node: 0})
		app.RunTrace(arrivals)
		engine.Close()
		fmt.Printf("%-10s %9.2f %9.2f %10.2f %10.2f %9.2f\n",
			sys.name,
			msf(app.E2E.P(0.5)), msf(app.E2E.P(0.99)),
			msf(app.XferGPU.Mean()), msf(app.XferHost.Mean()), msf(app.Compute.Mean()))
	}
	fmt.Println("\nOn the host-centric plane, data passing dominates end-to-end latency;")
	fmt.Println("GROUTER keeps intermediate tensors on the producing GPUs and the")
	fmt.Println("workflow becomes compute-bound.")
}

func msf(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
