// Traffic pipeline: the paper's Fig. 1 motivating application end to end.
// A traffic-monitoring workflow (video decode → preprocess → YOLO detection
// → postprocess → conditional person/car recognition) is deployed on a
// simulated DGX-V100 and driven with an Azure-like bursty trace, once on
// GROUTER and once on each baseline. The program prints per-system latency
// percentiles and the data-passing/compute breakdown. Everything goes
// through the grouter façade.
package main

import (
	"fmt"
	"time"

	"grouter"
)

func main() {
	arrivals := grouter.GenerateTrace(grouter.TraceSpec{
		Pattern:  grouter.Bursty,
		Duration: 20 * time.Second,
		MeanRPS:  8,
		Seed:     42,
	})
	fmt.Printf("traffic-monitoring workflow, %d requests over 20s (bursty Azure-like trace)\n\n",
		len(arrivals))
	fmt.Printf("%-10s %9s %9s %10s %10s %9s\n",
		"system", "p50(ms)", "p99(ms)", "gfngfn(ms)", "gfnhost(ms)", "comp(ms)")

	systems := []struct {
		name string
		mk   func(s *grouter.Sim) grouter.Plane
	}{
		{"infless+", func(s *grouter.Sim) grouter.Plane { return s.NewINFless() }},
		{"nvshmem+", func(s *grouter.Sim) grouter.Plane { return s.NewNVShmem(1) }},
		{"deepplan+", func(s *grouter.Sim) grouter.Plane { return s.NewDeepPlan(1) }},
		{"grouter", func(s *grouter.Sim) grouter.Plane { return s.NewGRouter() }},
	}
	for _, sys := range systems {
		s := grouter.MustNewSim("dgx-v100")
		c := s.NewCluster(sys.mk)
		app := c.Deploy(grouter.TrafficWorkflow(), 0, grouter.PlaceOptions{Node: 0})
		app.RunTrace(arrivals)
		s.Close()
		fmt.Printf("%-10s %9.2f %9.2f %10.2f %10.2f %9.2f\n",
			sys.name,
			msf(app.E2E.P(0.5)), msf(app.E2E.P(0.99)),
			msf(app.XferGPU.Mean()), msf(app.XferHost.Mean()), msf(app.Compute.Mean()))
	}
	fmt.Println("\nOn the host-centric plane, data passing dominates end-to-end latency;")
	fmt.Println("GROUTER keeps intermediate tensors on the producing GPUs and the")
	fmt.Println("workflow becomes compute-bound.")
}

func msf(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
