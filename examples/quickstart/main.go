// Quickstart: the smallest possible GROUTER program. Two GPU functions on
// one DGX-V100 node exchange a 256 MiB tensor through the GROUTER data plane
// and through the host-centric baseline, and the program prints the latency
// of each path.
package main

import (
	"fmt"
	"time"

	"grouter/internal/baselines"
	"grouter/internal/core"
	"grouter/internal/dataplane"
	"grouter/internal/fabric"
	"grouter/internal/sim"
	"grouter/internal/topology"
)

func main() {
	const payload = 256 << 20 // 256 MiB intermediate tensor

	exchange := func(name string, mk func(f *fabric.Fabric) dataplane.Plane) time.Duration {
		// Every run gets a fresh deterministic simulation of one DGX-V100.
		engine := sim.NewEngine()
		defer engine.Close()
		fab := fabric.New(engine, topology.DGXV100(), 1)
		plane := mk(fab)

		upstream := &dataplane.FnCtx{Fn: "detector", Workflow: "quickstart",
			Loc: fabric.Location{Node: 0, GPU: 0}}
		downstream := &dataplane.FnCtx{Fn: "recognizer", Workflow: "quickstart",
			Loc: fabric.Location{Node: 0, GPU: 3}}

		var elapsed time.Duration
		engine.Go("exchange", func(p *sim.Proc) {
			start := p.Now()
			// The upstream function stores its output...
			ref, err := plane.Put(p, upstream, payload)
			if err != nil {
				panic(err)
			}
			// ...and the downstream function pulls it to its own GPU.
			if err := plane.Get(p, downstream, ref); err != nil {
				panic(err)
			}
			plane.Free(ref)
			elapsed = p.Now() - start
		})
		engine.Run(0)
		fmt.Printf("%-9s moved %d MiB GPU0→GPU3 in %8.2f ms (%d device copies)\n",
			name, payload>>20, float64(elapsed)/float64(time.Millisecond), plane.Stats().Copies)
		return elapsed
	}

	g := exchange("grouter", func(f *fabric.Fabric) dataplane.Plane {
		return core.New(f, core.FullConfig())
	})
	h := exchange("infless+", func(f *fabric.Fabric) dataplane.Plane {
		return baselines.NewINFless(f)
	})
	fmt.Printf("\nGPU-centric data passing is %.1fx faster than the host-centric path.\n",
		h.Seconds()/g.Seconds())
}
