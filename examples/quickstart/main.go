// Quickstart: the smallest possible GROUTER program. Two GPU functions on
// one DGX-V100 node exchange a 256 MiB tensor through the GROUTER data plane
// and through the host-centric baseline, and the program prints the latency
// of each path. Everything goes through the grouter façade — no internal
// imports.
package main

import (
	"fmt"
	"time"

	"grouter"
)

func main() {
	const payload = 256 << 20 // 256 MiB intermediate tensor

	exchange := func(name string, mk func(s *grouter.Sim) grouter.Plane) time.Duration {
		// Every run gets a fresh deterministic simulation of one DGX-V100.
		s := grouter.MustNewSim("dgx-v100")
		defer s.Close()
		plane := mk(s)

		upstream := &grouter.FnCtx{Fn: "detector", Workflow: "quickstart",
			Loc: grouter.Location{Node: 0, GPU: 0}}
		downstream := &grouter.FnCtx{Fn: "recognizer", Workflow: "quickstart",
			Loc: grouter.Location{Node: 0, GPU: 3}}

		var elapsed time.Duration
		s.Go("exchange", func(p *grouter.Proc) {
			start := p.Now()
			// The upstream function stores its output...
			ref, err := plane.Put(p, upstream, payload)
			if err != nil {
				panic(err)
			}
			// ...and the downstream function pulls it to its own GPU.
			if err := plane.Get(p, downstream, ref); err != nil {
				panic(err)
			}
			plane.Free(ref)
			elapsed = p.Now() - start
		})
		s.Run()
		fmt.Printf("%-9s moved %d MiB GPU0→GPU3 in %8.2f ms (%d device copies)\n",
			name, payload>>20, float64(elapsed)/float64(time.Millisecond), plane.Stats().Copies)
		return elapsed
	}

	g := exchange("grouter", func(s *grouter.Sim) grouter.Plane { return s.NewGRouter() })
	h := exchange("infless+", func(s *grouter.Sim) grouter.Plane { return s.NewINFless() })
	fmt.Printf("\nGPU-centric data passing is %.1fx faster than the host-centric path.\n",
		h.Seconds()/g.Seconds())
}
