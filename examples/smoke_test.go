// Smoke coverage for the example programs: each example must build, run to
// completion, print something, and — because every simulation seed is fixed
// — print exactly the same thing on a second run.
package examples

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"testing"
)

var programs = []string{
	"quickstart",
	"llm-moa",
	"multi-tenant",
	"traffic-pipeline",
}

func buildExample(t *testing.T, name string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), name)
	cmd := exec.Command("go", "build", "-o", bin, "./"+name)
	cmd.Dir = "."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build %s: %v\n%s", name, err, out)
	}
	return bin
}

func runExample(t *testing.T, bin string) []byte {
	t.Helper()
	var stdout, stderr bytes.Buffer
	cmd := exec.Command(bin)
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s: %v\nstderr: %s", filepath.Base(bin), err, stderr.Bytes())
	}
	return stdout.Bytes()
}

func TestExamples(t *testing.T) {
	for _, name := range programs {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			bin := buildExample(t, name)
			first := runExample(t, bin)
			if len(bytes.TrimSpace(first)) == 0 {
				t.Fatalf("%s printed nothing", name)
			}
			second := runExample(t, bin)
			if !bytes.Equal(first, second) {
				t.Errorf("%s output differs between runs:\n--- first\n%s\n--- second\n%s", name, first, second)
			}
		})
	}
}
