package grouter

import (
	"errors"
	"testing"
	"time"
)

func TestFacadeOptions(t *testing.T) {
	s := MustNewSim("dgx-v100", WithNodes(2), WithSeed(11), WithTracer(), WithFaults(), WithCoalescing())
	defer s.Close()
	if s.Fabric.NumNodes() != 2 {
		t.Errorf("WithNodes(2): nodes = %d", s.Fabric.NumNodes())
	}
	if s.Tracer() == nil {
		t.Error("WithTracer: Tracer() is nil")
	}
	if s.Faults() == nil {
		t.Error("WithFaults: Faults() is nil")
	}
	if name := s.NewGRouter().Name(); name != "grouter+co" {
		t.Errorf("WithCoalescing: plane name = %q, want grouter+co", name)
	}
	// An explicit Config overrides the Sim-level options.
	if name := s.NewGRouter(FullConfig()).Name(); name != "grouter" {
		t.Errorf("explicit config: plane name = %q, want grouter", name)
	}

	plain := MustNewSim("dgx-v100")
	defer plain.Close()
	if plain.Tracer() != nil || plain.Faults() != nil {
		t.Error("default Sim should have no tracer or injector")
	}
	if name := plain.NewGRouter().Name(); name != "grouter" {
		t.Errorf("default plane name = %q, want grouter", name)
	}
}

// TestFacadeErrorSentinels drives each failure through the public API and
// checks errors.Is against the exported sentinels.
func TestFacadeErrorSentinels(t *testing.T) {
	s := MustNewSim("dgx-v100")
	defer s.Close()
	pl := s.NewGRouter()
	s.Go("errs", func(p *Proc) {
		ctx := &FnCtx{Fn: "f", Workflow: "wf", Loc: Location{Node: 0, GPU: 0}}
		if err := pl.Get(p, ctx, DataRef{ID: 42, Bytes: 1 << 20}); !errors.Is(err, ErrNotFound) {
			t.Errorf("Get unknown = %v, want ErrNotFound", err)
		}
		ref, err := pl.Put(p, ctx, 1<<20)
		if err != nil {
			t.Fatalf("Put: %v", err)
		}
		thief := &FnCtx{Fn: "g", Workflow: "other", Loc: Location{Node: 0, GPU: 1}}
		if err := pl.Get(p, thief, ref); !errors.Is(err, ErrAccessDenied) {
			t.Errorf("cross-workflow Get = %v, want ErrAccessDenied", err)
		}
		pl.Free(ref)
		if err := pl.Get(p, ctx, ref); !errors.Is(err, ErrNotFound) {
			t.Errorf("Get freed = %v, want ErrNotFound", err)
		}
	})
	s.Run()
	for name, e := range map[string]error{
		"ErrNotFound": ErrNotFound, "ErrEvicted": ErrEvicted,
		"ErrGPUDown": ErrGPUDown, "ErrDeadline": ErrDeadline,
		"ErrAccessDenied": ErrAccessDenied,
	} {
		if e == nil {
			t.Errorf("%s is nil", name)
		}
	}
}

// TestFacadeCluster runs a workflow end to end through Sim.NewCluster on the
// Sim's own fabric.
func TestFacadeCluster(t *testing.T) {
	s := MustNewSim("dgx-v100", WithTracer())
	defer s.Close()
	c := s.NewCluster(func(s *Sim) Plane { return s.NewGRouter() })
	app := c.Deploy(TrafficWorkflow(), 0, PlaceOptions{Node: 0})
	for _, at := range GenerateTrace(TraceSpec{Pattern: Bursty, Duration: 2 * time.Second, MeanRPS: 4, Seed: 9}) {
		at := at
		s.Schedule(at, func() { app.Submit(NewRequest()) })
	}
	s.Run()
	if app.Completed == 0 {
		t.Fatal("no requests completed through the façade cluster")
	}
	if s.Tracer().Len() == 0 {
		t.Error("tracer attached but recorded no spans")
	}
}

// TestFacadeCoalescedFanout drives an 8-way fan-out through the façade with
// coalescing on and off, and checks the coalesced run moves fewer bytes over
// the producer's links.
func TestFacadeCoalescedFanout(t *testing.T) {
	run := func(opts ...Option) *Stats {
		s := MustNewSim("dgx-v100", opts...)
		defer s.Close()
		pl := s.NewGRouter()
		prod := &FnCtx{Fn: "p", Workflow: "wf", Loc: Location{Node: 0, GPU: 0}}
		var ref DataRef
		s.Go("produce", func(p *Proc) {
			var err error
			if ref, err = pl.Put(p, prod, 64<<20); err != nil {
				t.Errorf("Put: %v", err)
			}
		})
		for i := 1; i <= 6; i++ {
			gpu := i
			s.Go("consume", func(p *Proc) {
				p.Sleep(time.Millisecond)
				cons := &FnCtx{Fn: "c", Workflow: "wf", Loc: Location{Node: 0, GPU: gpu}}
				if err := pl.Get(p, cons, ref); err != nil {
					t.Errorf("Get: %v", err)
				}
			})
		}
		s.Run()
		return pl.Stats()
	}
	naive := run()
	co := run(WithCoalescing())
	if co.Coalesce.OriginBytes >= naive.BytesMoved {
		t.Errorf("coalescing saved nothing: origin %d vs naive %d", co.Coalesce.OriginBytes, naive.BytesMoved)
	}
	if got := co.Coalesce.Joined + co.Coalesce.Chained + co.Coalesce.ReplicaHits; got == 0 {
		t.Error("no Get was coalesced")
	}
}

// TestFacadeAutoscale drives a periodic trace through Sim.Autoscale twice and
// checks the elastic pools scale, account GPU-seconds, and stay byte
// identical across runs. It also pins the WithAutoscaler precedence: the
// Sim-level config applies when Autoscale gets no explicit argument.
func TestFacadeAutoscale(t *testing.T) {
	run := func() (ReplayStats, ElasticStats, float64) {
		s := MustNewSim("dgx-v100", WithNodes(2), WithSeed(42),
			WithAutoscaler(ElasticConfig{
				Scaler:          ReactiveScaler{ScaleOutDepth: 2, ScaleIn: true},
				Min:             1,
				Max:             3,
				Interval:        100 * time.Millisecond,
				ScaleInCooldown: 300 * time.Millisecond,
				Prewarm:         true,
			}))
		defer s.Close()
		c := s.NewCluster(func(s *Sim) Plane { return s.NewGRouter() })
		app := c.Deploy(DrivingWorkflow(), 1, PlaceOptions{Node: 0, SplitAcrossNodes: true})
		ep := s.Autoscale(app)
		arrivals := GenerateTrace(TraceSpec{
			Pattern: Periodic, Duration: 2 * time.Second, MeanRPS: 400, Seed: 7,
		})
		st := app.ReplayTrace(arrivals, ReplayOptions{Quantum: 10 * time.Millisecond})
		return st, ep.Stats, ep.GPUSeconds()
	}
	st1, es1, gs1 := run()
	st2, es2, gs2 := run()
	if st1.Completed == 0 {
		t.Fatal("no requests completed through the autoscaled façade")
	}
	if es1.ScaleOuts == 0 {
		t.Error("periodic trace provoked no scale-out")
	}
	if gs1 <= 0 {
		t.Errorf("GPU-seconds = %v, want positive", gs1)
	}
	if st1 != st2 || es1 != es2 || gs1 != gs2 {
		t.Errorf("autoscaled replay diverged across runs:\n%+v %+v %v\n%+v %+v %v",
			st1, es1, gs1, st2, es2, gs2)
	}
}

// TestFacadeReplayScaleOut exercises the sharded fleet replay through the
// façade: WithShards is a pure execution knob, so the deterministic results
// must match across shard counts.
func TestFacadeReplayScaleOut(t *testing.T) {
	arrivals := GenerateTrace(TraceSpec{
		Pattern: Bursty, Duration: time.Second, MeanRPS: 200, Seed: 42,
	})
	buildPod := func(pod int, s *Sim) *App {
		c := s.NewCluster(func(s *Sim) Plane { return s.NewGRouter() })
		return c.Deploy(DrivingWorkflow(), 0, PlaceOptions{Node: 0, SplitAcrossNodes: true})
	}
	run := func(shards int) ScaleOutStats {
		st, err := ReplayScaleOut("dgx-v100", arrivals, buildPod,
			WithNodes(2), WithShards(shards), WithTracer())
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	st1, st4 := run(1), run(4)
	if st1.Completed != len(arrivals) {
		t.Fatalf("completed %d of %d", st1.Completed, len(arrivals))
	}
	if st1.Completed != st4.Completed || st1.P99 != st4.P99 || st1.Duration != st4.Duration {
		t.Errorf("shard counts diverged: 1 shard %+v, 4 shards %+v", st1.ReplayStats, st4.ReplayStats)
	}
	if len(st4.Tracers) != 4 {
		t.Errorf("WithTracer: %d tracers, want 4", len(st4.Tracers))
	}
	if _, err := ReplayScaleOut("no-such-topo", arrivals, buildPod); err == nil {
		t.Error("unknown topology should error")
	}
}

// TestFacadePDServing drives the LLM prefill/decode surface entirely through
// the façade: DeployLLM on a Runtime, WithPD supplying the policy
// Sim.NewPDRouter inherits, typed requests built with NewRequest options,
// and the re-exported ErrBadRequest sentinel.
func TestFacadePDServing(t *testing.T) {
	// SaturationDepth is high so the burst of simultaneous long submissions
	// below disaggregates instead of overflowing to the mixed pool.
	s := MustNewSim("h800x8", WithPD(PDPolicyConfig{LongPromptTokens: 512, SaturationDepth: 64}))
	defer s.Close()
	c := s.NewCluster(func(s *Sim) Plane { return s.NewGRouter() })
	svc, err := c.DeployLLM(PDConfig{
		LLM:            MustLookupLLM("llama-7b"),
		PrefillWorkers: 1, DecodeWorkers: 1, MixedWorkers: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt := s.NewPDRouter(svc)
	var sigs []*Signal
	submit := func(opts ...RequestOption) {
		done, err := svc.Submit(NewRequest(opts...))
		if err != nil {
			t.Fatal(err)
		}
		sigs = append(sigs, done)
	}
	for i := 0; i < 8; i++ {
		submit(ReqPrompt(256), ReqOutput(8))
		submit(ReqPrompt(2048), ReqOutput(8), ReqSession(int64(i)+1))
	}
	s.Go("wait", func(p *Proc) {
		for _, sig := range sigs {
			sig.Wait(p)
		}
	})
	s.Run()
	if svc.Completed != 16 {
		t.Fatalf("completed %d of 16", svc.Completed)
	}
	// The WithPD threshold (512) must be in effect: 2048-token prompts split.
	if svc.Stats.Disaggregated != 8 || svc.Stats.KVTransfers != 8 {
		t.Errorf("disaggregated=%d kv-transfers=%d, want 8/8 (WithPD threshold not applied?)",
			svc.Stats.Disaggregated, svc.Stats.KVTransfers)
	}
	if rt.Stats.Long != 8 || rt.Stats.Short != 8 {
		t.Errorf("router long/short = %d/%d, want 8/8", rt.Stats.Long, rt.Stats.Short)
	}
	if _, err := svc.Submit(NewRequest(ReqPrompt(-1))); !errors.Is(err, ErrBadRequest) {
		t.Errorf("invalid request error = %v, want ErrBadRequest", err)
	}
	if _, err := svc.Submit(NewRequest(ReqModel("no-such-model"))); !errors.Is(err, ErrBadRequest) {
		t.Errorf("wrong-model error = %v, want ErrBadRequest", err)
	}
	// An explicit argument overrides WithPD: threshold 4096 keeps the same
	// 2048-token prompt colocated.
	rt2 := s.NewPDRouter(svc, PDPolicyConfig{LongPromptTokens: 4096})
	done, err := svc.Submit(NewRequest(ReqPrompt(2048)))
	if err != nil {
		t.Fatal(err)
	}
	s.Go("wait2", func(p *Proc) { done.Wait(p) })
	s.Run()
	if rt2.Stats.Long != 0 || rt2.Stats.Short != 1 {
		t.Errorf("override policy long/short = %d/%d, want 0/1", rt2.Stats.Long, rt2.Stats.Short)
	}
}
