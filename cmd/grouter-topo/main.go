// Command grouter-topo inspects the builtin GPU server topologies: NVLink
// adjacency, PCIe switch groups, NIC placement, pair-connectivity classes,
// and parallel NVLink paths between a GPU pair.
//
// Usage:
//
//	grouter-topo -spec dgx-v100
//	grouter-topo -spec dgx-v100 -paths 0,5 -hops 3
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"grouter/internal/topology"
)

func main() {
	specName := flag.String("spec", "dgx-v100", "topology: dgx-v100, dgx-a100, h800x8, quad-a10")
	pair := flag.String("paths", "", "GPU pair 'src,dst' to enumerate NVLink paths for")
	hops := flag.Int("hops", 3, "max hops for path enumeration")
	flag.Parse()

	spec := topology.SpecByName(*specName)
	if spec == nil {
		fmt.Fprintf(os.Stderr, "grouter-topo: unknown spec %q\n", *specName)
		os.Exit(2)
	}

	fmt.Printf("topology %s: %d GPUs, %s HBM each, %s host memory\n",
		spec.Name, spec.NumGPUs, gib(spec.GPUMemBytes), gib(spec.HostMemBytes))
	fmt.Printf("PCIe: %.0f GB/s per link, switch groups %v\n", spec.PCIeBps/1e9, spec.PCIeGroup)
	fmt.Printf("NICs: %d x %.0f Gb/s, groups %v, nearest per GPU %v\n",
		spec.NICCount, spec.NICBps*8/1e9, spec.NICGroup, spec.GPUNIC)

	if spec.Switched {
		fmt.Printf("NVSwitch fabric: all pairs at %.0f GB/s\n", spec.SwitchPortBps/1e9)
	} else if spec.HasNVLink() {
		fmt.Println("NVLink adjacency (GB/s):")
		fmt.Print("     ")
		for j := 0; j < spec.NumGPUs; j++ {
			fmt.Printf("%5d", j)
		}
		fmt.Println()
		for i := 0; i < spec.NumGPUs; i++ {
			fmt.Printf("%5d", i)
			for j := 0; j < spec.NumGPUs; j++ {
				fmt.Printf("%5.0f", spec.NVAdj[i][j]/1e9)
			}
			fmt.Println()
		}
		classes := spec.PairClasses()
		total := classes[topology.PairDouble] + classes[topology.PairSingle] + classes[topology.PairNoNVLink]
		fmt.Printf("pairs: %d double, %d single, %d without NVLink (of %d)\n",
			classes[topology.PairDouble], classes[topology.PairSingle], classes[topology.PairNoNVLink], total)
	} else {
		fmt.Println("no NVLink: all GPU-to-GPU traffic crosses PCIe")
	}

	if *pair != "" {
		parts := strings.Split(*pair, ",")
		if len(parts) != 2 {
			fmt.Fprintln(os.Stderr, "grouter-topo: -paths wants 'src,dst'")
			os.Exit(2)
		}
		src, err1 := strconv.Atoi(strings.TrimSpace(parts[0]))
		dst, err2 := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err1 != nil || err2 != nil || src < 0 || dst < 0 || src >= spec.NumGPUs || dst >= spec.NumGPUs {
			fmt.Fprintln(os.Stderr, "grouter-topo: bad GPU pair")
			os.Exit(2)
		}
		node := topology.NewCluster(spec, 1).Node(0)
		paths := node.NVLinkPaths(src, dst, *hops)
		fmt.Printf("NVLink paths %d→%d (≤%d hops): %d\n", src, dst, *hops, len(paths))
		for _, p := range paths {
			fmt.Printf("  %v  bottleneck %.0f GB/s\n", p, node.PathBandwidth(p)/1e9)
		}
	}
}

func gib(b int64) string { return fmt.Sprintf("%d GiB", b>>30) }
