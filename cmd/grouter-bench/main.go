// Command grouter-bench runs the paper-reproduction experiments and prints
// each figure's rows together with paper-vs-measured notes.
//
// Usage:
//
//	grouter-bench -list
//	grouter-bench -run fig13
//	grouter-bench -run all
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"grouter/internal/experiments"
	"grouter/internal/metrics"
	"grouter/internal/netsim"
)

func main() {
	list := flag.Bool("list", false, "list experiment IDs and exit")
	run := flag.String("run", "all", "experiment ID to run, or 'all'")
	asJSON := flag.Bool("json", false, "emit results as JSON instead of tables")
	allocStats := flag.Bool("allocstats", false, "print netsim allocator work counters after the runs")
	faultStats := flag.Bool("faultstats", false, "print fault-injection and recovery counters after the runs")
	spanStats := flag.Bool("span-stats", false, "print a per-request critical-path latency breakdown and exit")
	fanout := flag.Bool("fanout", false, "run the fan-out coalescing experiment (shorthand for -run ext-fanout)")
	scale := flag.Bool("scale", false, "run the full-size scale replay (ext-scale at -scale-requests) and exit")
	scaleRequests := flag.Int("scale-requests", 100_000, "request count for the largest -scale replays")
	flag.Parse()

	if *spanStats {
		fmt.Println(experiments.SpanStatsTable().Format())
		return
	}
	if *scale {
		// Everything in the table is measured in virtual time, so this
		// output is byte-identical across runs (no wall-clock footer).
		fmt.Println(experiments.ScaleTable(*scaleRequests).Format())
		return
	}
	if *fanout {
		*run = "ext-fanout"
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	var todo []experiments.Experiment
	if *run == "all" {
		todo = experiments.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			e := experiments.ByID(strings.TrimSpace(id))
			if e == nil {
				fmt.Fprintf(os.Stderr, "grouter-bench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			todo = append(todo, *e)
		}
	}
	if *asJSON {
		var results []*experiments.Table
		for _, e := range todo {
			results = append(results, e.Run())
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintf(os.Stderr, "grouter-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	for _, e := range todo {
		start := time.Now()
		tbl := e.Run()
		fmt.Println(tbl.Format())
		fmt.Printf("  (%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		if *allocStats {
			fmt.Printf("  allocator: %s\n\n", netsim.Stats())
			netsim.Stats().Reset()
		}
		if *faultStats {
			fmt.Printf("  faults: %s\n\n", metrics.Faults())
			metrics.Faults().Reset()
		}
	}
}
