// Command grouter-bench runs the paper-reproduction experiments and prints
// each figure's rows together with paper-vs-measured notes.
//
// Usage:
//
//	grouter-bench -list
//	grouter-bench -run fig13
//	grouter-bench -run all
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"grouter/internal/experiments"
	"grouter/internal/metrics"
	"grouter/internal/netsim"
)

func main() {
	list := flag.Bool("list", false, "list experiment IDs and exit")
	run := flag.String("run", "all", "experiment ID to run, or 'all'")
	asJSON := flag.Bool("json", false, "emit results as JSON instead of tables")
	allocStats := flag.Bool("allocstats", false, "print netsim allocator work counters after the runs")
	faultStats := flag.Bool("faultstats", false, "print fault-injection and recovery counters after the runs")
	spanStats := flag.Bool("span-stats", false, "print a per-request critical-path latency breakdown and exit")
	fanout := flag.Bool("fanout", false, "run the fan-out coalescing experiment (shorthand for -run ext-fanout)")
	routerRun := flag.Bool("router", false, "run the full-size routed-admission comparison (ext-router at -scale-requests) and exit")
	routerStats := flag.Bool("router-stats", false, "replay the bursty pattern routed at -scale-requests with a 10% QoSHigh mix and print the router's decision counters")
	elastic := flag.Bool("elastic", false, "run the full-size elastic-pool strategy comparison (ext-elastic at -scale-requests) and exit")
	slo := flag.Bool("slo", false, "run the full-size SLO-admission comparison (ext-slo at -scale-requests) and exit")
	pd := flag.Bool("pd", false, "run the full-size prefill/decode disaggregation comparison (ext-pd at -scale-requests) and exit")
	pdStats := flag.Bool("pd-stats", false, "replay the disaggregation-friendly h800 cell at -scale-requests and print the PD service and policy counters")
	scale := flag.Bool("scale", false, "run the full-size scale replay (ext-scale at -scale-requests) and exit")
	scaleRequests := flag.Int("scale-requests", 100_000, "request count for the largest -scale replays")
	scaleShards := flag.Int("scale-shards", 0, "with -scale: replay the 8-pod scale-out fleet on this many engine shards instead of the single-cluster replay")
	shardStats := flag.Bool("shard-stats", false, "replay the full-size bursty fleet cell at -scale-shards shards and print wall-clock per-shard utilization (not part of any deterministic table)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "grouter-bench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "grouter-bench: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "grouter-bench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "grouter-bench: %v\n", err)
			}
		}()
	}

	if *spanStats {
		fmt.Println(experiments.SpanStatsTable().Format())
		return
	}
	if *shardStats {
		shards := *scaleShards
		if shards <= 0 {
			shards = 4
		}
		st := experiments.ShardedScaleRun(*scaleRequests, shards)
		fmt.Printf("sharded replay: %d requests, %d pods, %d shards, completed %d\n",
			st.Requests, st.Pods, st.Shards, st.Completed)
		fmt.Printf("  virtual: dur=%v tput=%.1f req/s p50=%v p99=%v\n",
			st.Duration.Round(time.Millisecond), st.Throughput, st.P50, st.P99)
		var busy, maxBusy time.Duration
		for _, u := range st.Util {
			fmt.Printf("  %s\n", u)
			busy += u.Busy
			if u.Busy > maxBusy {
				maxBusy = u.Busy
			}
		}
		fmt.Printf("  wall=%v", st.Wall.Round(time.Millisecond))
		if maxBusy > 0 {
			// busy/maxBusy is the speedup the window protocol admits on
			// enough cores: total work over the critical shard's work.
			fmt.Printf(" parallelism=%.2fx (total busy / max shard busy)", float64(busy)/float64(maxBusy))
		}
		fmt.Println()
		return
	}
	if *scale {
		// Everything in the table is measured in virtual time, so this
		// output is byte-identical across runs (no wall-clock footer) —
		// including across -scale-shards values.
		if *scaleShards > 0 {
			fmt.Println(experiments.ShardedScaleTable(*scaleRequests, *scaleShards).Format())
		} else {
			fmt.Println(experiments.ScaleTable(*scaleRequests).Format())
		}
		return
	}
	if *routerRun {
		// Virtual-time table: byte-identical across runs of the same build.
		fmt.Println(experiments.RouterTable(*scaleRequests).Format())
		return
	}
	if *elastic {
		// Virtual-time table: byte-identical across runs of the same build.
		fmt.Println(experiments.ElasticTable(*scaleRequests).Format())
		return
	}
	if *slo {
		// Virtual-time table: byte-identical across runs of the same build.
		fmt.Println(experiments.SLOTable(*scaleRequests).Format())
		return
	}
	if *pd {
		// Virtual-time table: byte-identical across runs of the same build.
		fmt.Println(experiments.PDTable(*scaleRequests).Format())
		return
	}
	if *pdStats {
		st, ps, rs := experiments.PDStatsRun(*scaleRequests)
		fmt.Printf("pd replay (h800 x1, sporadic): %d requests, completed %d\n", st.Requests, st.Completed)
		fmt.Printf("  virtual: dur=%v tput=%.1f req/s p50=%v p99=%v\n",
			st.Duration.Round(time.Millisecond), st.Throughput, st.P50, st.P99)
		fmt.Printf("  service: colocated=%d disaggregated=%d collapsed=%d overflows=%d\n",
			ps.Colocated, ps.Disaggregated, ps.Collapsed, ps.Overflows)
		fmt.Printf("  handoff: kv-transfers=%d kv-bytes=%.1f GiB recomputes=%d\n",
			ps.KVTransfers, float64(ps.KVBytes)/float64(1<<30), ps.Recomputes)
		fmt.Printf("  policy: decisions=%d long=%d short=%d overflows=%d affinity=%d\n",
			rs.Decisions, rs.Long, rs.Short, rs.Overflows, rs.Affinity)
		return
	}
	if *routerStats {
		st, rs := experiments.RouterStatsRun(*scaleRequests)
		fmt.Printf("routed replay: %d requests (1 in 10 QoSHigh), completed %d\n", st.Requests, st.Completed)
		fmt.Printf("  virtual: dur=%v tput=%.1f req/s p50=%v p99=%v\n",
			st.Duration.Round(time.Millisecond), st.Throughput, st.P50, st.P99)
		fmt.Printf("  router: decisions=%d refreshes=%d failovers=%d retries=%d fallbacks=%d crashes=%d\n",
			rs.Decisions, rs.Refreshes, rs.Failovers, rs.Retries, rs.Fallbacks, rs.Crashes)
		return
	}
	if *fanout {
		*run = "ext-fanout"
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	var todo []experiments.Experiment
	if *run == "all" {
		todo = experiments.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			e := experiments.ByID(strings.TrimSpace(id))
			if e == nil {
				fmt.Fprintf(os.Stderr, "grouter-bench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			todo = append(todo, *e)
		}
	}
	if *asJSON {
		var results []*experiments.Table
		for _, e := range todo {
			results = append(results, e.Run())
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintf(os.Stderr, "grouter-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	for _, e := range todo {
		start := time.Now()
		tbl := e.Run()
		fmt.Println(tbl.Format())
		fmt.Printf("  (%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		if *allocStats {
			fmt.Printf("  allocator: %s\n\n", netsim.Stats())
			netsim.Stats().Reset()
		}
		if *faultStats {
			fmt.Printf("  faults: %s\n\n", metrics.Faults())
			metrics.Faults().Reset()
		}
	}
}
