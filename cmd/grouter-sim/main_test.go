package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"

	"grouter/internal/topology"
	"grouter/internal/trace"
	"grouter/internal/workflow"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden report fixtures")

// goldenConfigs are the pinned runs: the checked-in arrival trace through two
// data planes. Changing simulator timing on purpose requires regenerating the
// fixtures with -update-golden and reviewing the diff.
func goldenConfigs(t *testing.T) map[string]simConfig {
	t.Helper()
	arrivals, err := loadTrace(filepath.Join("testdata", "arrivals.txt"))
	if err != nil {
		t.Fatalf("loadTrace: %v", err)
	}
	wf := workflow.ByName("traffic")
	if wf == nil {
		t.Fatal("workflow traffic not registered")
	}
	spec := topology.SpecByName("dgx-v100")
	if spec == nil {
		t.Fatal("spec dgx-v100 not registered")
	}
	base := simConfig{
		wf: wf, spec: spec,
		nodes: 1, slots: 1, batch: 0,
		pattern: trace.Bursty, rps: 8, seed: 1,
		arrivals: arrivals,
	}
	g := base
	g.system = "grouter"
	n := base
	n.system = "nvshmem+"
	return map[string]simConfig{"grouter.golden": g, "nvshmem.golden": n}
}

// TestGoldenReport locks the full grouter-sim report for the checked-in
// trace: the simulation is a deterministic function of its config, so any
// drift in virtual-time results shows up as a byte diff against the fixture.
func TestGoldenReport(t *testing.T) {
	for name, cfg := range goldenConfigs(t) {
		t.Run(name, func(t *testing.T) {
			var out bytes.Buffer
			if err := runSim(cfg, &out); err != nil {
				t.Fatalf("runSim: %v", err)
			}
			path := filepath.Join("testdata", name)
			if *updateGolden {
				if err := os.WriteFile(path, out.Bytes(), 0o644); err != nil {
					t.Fatalf("write golden: %v", err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read golden (run with -update-golden to create): %v", err)
			}
			if !bytes.Equal(out.Bytes(), want) {
				t.Errorf("report drifted from %s:\n--- got ---\n%s--- want ---\n%s", path, out.Bytes(), want)
			}
		})
	}
}

// traceConfig is the pinned span-trace run: the grouter golden config cut to
// its first four arrivals so the fixture stays reviewable.
func traceConfig(t *testing.T) (simConfig, *bytes.Buffer) {
	t.Helper()
	cfg := goldenConfigs(t)["grouter.golden"]
	cfg.arrivals = cfg.arrivals[:4]
	var buf bytes.Buffer
	cfg.traceOut = &buf
	return cfg, &buf
}

// TestTraceGolden locks the -trace-out export: it must be valid Chrome
// trace-event JSON, byte-identical across same-config runs, and byte-identical
// to the checked-in fixture.
func TestTraceGolden(t *testing.T) {
	cfg, buf := traceConfig(t)
	var report bytes.Buffer
	if err := runSim(cfg, &report); err != nil {
		t.Fatalf("runSim: %v", err)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("trace export is not valid JSON: %v", err)
	}
	if len(parsed.TraceEvents) == 0 {
		t.Fatal("trace export has no events")
	}

	cfg2, buf2 := traceConfig(t)
	if err := runSim(cfg2, io.Discard); err != nil {
		t.Fatalf("second runSim: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("two identical runs produced different trace exports")
	}

	path := filepath.Join("testdata", "trace.golden")
	if *updateGolden {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatalf("write golden: %v", err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace export drifted from %s (%d bytes got, %d want); regenerate with -update-golden and review",
			path, buf.Len(), len(want))
	}
}

// TestReportDeterministic runs the same config twice in fresh engines and
// requires byte-identical reports — the driver-level determinism guarantee
// that the chaos tests rely on.
func TestReportDeterministic(t *testing.T) {
	cfg := goldenConfigs(t)["grouter.golden"]
	var a, b bytes.Buffer
	if err := runSim(cfg, &a); err != nil {
		t.Fatalf("first run: %v", err)
	}
	if err := runSim(cfg, &b); err != nil {
		t.Fatalf("second run: %v", err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("two identical runs diverged:\n--- first ---\n%s--- second ---\n%s", a.Bytes(), b.Bytes())
	}
}
