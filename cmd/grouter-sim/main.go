// Command grouter-sim runs one serverless inference workflow on a simulated
// GPU cluster under a chosen data plane and trace, printing latency
// percentiles, the passing/compute breakdown, and data-plane statistics.
//
// Usage:
//
//	grouter-sim -workflow traffic -system grouter -spec dgx-v100
//	grouter-sim -workflow video -system infless+ -rps 12 -dur 30s
//	grouter-sim -workflow image -trace-file arrivals.txt
//	grouter-sim -workflow image -dot          # emit the DAG as Graphviz
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"grouter/internal/baselines"
	"grouter/internal/cluster"
	"grouter/internal/core"
	"grouter/internal/dataplane"
	"grouter/internal/fabric"
	"grouter/internal/models"
	"grouter/internal/obs"
	"grouter/internal/router"
	"grouter/internal/scheduler"
	"grouter/internal/sim"
	"grouter/internal/topology"
	"grouter/internal/trace"
	"grouter/internal/workflow"
)

// simConfig holds one fully-resolved simulation run. Everything in here is
// deterministic: the same config produces byte-identical report output,
// which is what the golden-trace test pins.
type simConfig struct {
	wf       *workflow.Workflow
	system   string
	spec     *topology.Spec
	nodes    int
	slots    int
	batch    int
	split    bool
	pattern  trace.Pattern
	rps      float64
	dur      time.Duration
	seed     int64
	arrivals []time.Duration // non-nil overrides the generated trace
	traceOut io.Writer       // non-nil enables span tracing and receives the export
	sloHigh  time.Duration   // -slo-high: QoSHigh admission budget (0 = off)
	sloLow   time.Duration   // -slo-low: QoSLow admission budget (0 = off)
	sloDefer time.Duration   // -slo-defer: delay-queue bound before shedding
	pdModel  string          // -pd mode: the served LLM
}

func main() {
	wfName := flag.String("workflow", "traffic", "workflow: traffic, driving, video, image")
	wfFile := flag.String("workflow-file", "", "load a custom workflow definition (JSON) instead")
	system := flag.String("system", "grouter", "data plane: grouter, infless+, nvshmem+, deepplan+")
	specName := flag.String("spec", "dgx-v100", "topology: dgx-v100, dgx-a100, h800x8, quad-a10")
	nodes := flag.Int("nodes", 1, "node count")
	split := flag.Bool("split", false, "split stages across nodes")
	batch := flag.Int("batch", 0, "batch size (0 = workflow default)")
	pattern := flag.String("pattern", "bursty", "trace pattern: sporadic, periodic, bursty")
	rps := flag.Float64("rps", 8, "mean request rate")
	dur := flag.Duration("dur", 20*time.Second, "trace duration (virtual)")
	seed := flag.Int64("seed", 1, "random seed")
	slots := flag.Int("gpu-slots", 1, "concurrent functions per GPU (spatial sharing)")
	sloHigh := flag.Duration("slo-high", 0, "QoSHigh latency budget: attach a scored router with SLO admission control (0 = off); every 10th request is admitted QoSHigh")
	sloLow := flag.Duration("slo-low", 0, "QoSLow latency budget for SLO admission control (0 = no low-class budget)")
	sloDefer := flag.Duration("slo-defer", 5*time.Millisecond, "max delay-queue wait before a predicted SLO miss is shed")
	pd := flag.Bool("pd", false, "run LLM prefill/decode-disaggregated serving instead of a workflow (long prompts split across a PD pair, KV handoff over the data plane)")
	pdModel := flag.String("pd-model", "llama-7b", "with -pd: served model (llama-7b, llama-13b, qwen-32b, llama-70b)")
	traceFile := flag.String("trace-file", "", "read arrival offsets (one duration per line) instead of generating a trace")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON of the run to this file (open in Perfetto)")
	dot := flag.Bool("dot", false, "print the workflow DAG as Graphviz and exit")
	flag.Parse()

	var wf *workflow.Workflow
	if *wfFile != "" {
		loaded, err := workflow.LoadFile(*wfFile)
		if err != nil {
			fail("%v", err)
		}
		wf = loaded
	} else if wf = workflow.ByName(*wfName); wf == nil {
		fail("unknown workflow %q", *wfName)
	}
	if *dot {
		fmt.Print(wf.DOT())
		return
	}
	spec := topology.SpecByName(*specName)
	if spec == nil {
		fail("unknown topology %q", *specName)
	}
	pat, err := trace.ParsePattern(*pattern)
	if err != nil {
		fail("%v", err)
	}
	cfg := simConfig{
		wf: wf, system: *system, spec: spec,
		nodes: *nodes, slots: *slots, batch: *batch, split: *split,
		pattern: pat, rps: *rps, dur: *dur, seed: *seed,
		sloHigh: *sloHigh, sloLow: *sloLow, sloDefer: *sloDefer,
	}
	if *traceFile != "" {
		arrivals, err := loadTrace(*traceFile)
		if err != nil {
			fail("%v", err)
		}
		cfg.arrivals = arrivals
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fail("%v", err)
		}
		defer f.Close()
		cfg.traceOut = f
	}

	start := time.Now()
	runner := runSim
	if *pd {
		cfg.pdModel = *pdModel
		runner = runPD
	}
	if err := runner(cfg, os.Stdout); err != nil {
		fail("%v", err)
	}
	// Wall-clock is the one non-deterministic line; it stays out of runSim so
	// the report above it is reproducible byte for byte.
	fmt.Printf("(sim ran in %v wall clock)\n", time.Since(start).Round(time.Millisecond))
}

// runSim executes the configured simulation and writes the deterministic
// report to w.
func runSim(cfg simConfig, w io.Writer) error {
	mk, ok := planes(cfg.seed)[cfg.system]
	if !ok {
		return fmt.Errorf("unknown system %q", cfg.system)
	}
	engine := sim.NewEngine()
	defer engine.Close()
	var tracer *obs.Tracer
	if cfg.traceOut != nil {
		tracer = obs.Attach(engine)
	}
	c := cluster.NewSpatial(engine, cfg.spec, cfg.nodes, cfg.slots, mk)
	app := c.Deploy(cfg.wf, cfg.batch, scheduler.Options{Node: -1, SplitAcrossNodes: cfg.split, Seed: cfg.seed})
	arrivals := cfg.arrivals
	traceDesc := fmt.Sprintf("file(%d arrivals)", len(arrivals))
	if arrivals == nil {
		arrivals = trace.Generate(trace.Spec{Pattern: cfg.pattern, Duration: cfg.dur, MeanRPS: cfg.rps, Seed: cfg.seed})
		traceDesc = fmt.Sprintf("%s(%.1f rps, %v)", cfg.pattern, cfg.rps, cfg.dur)
	}
	var rt *router.Router
	if cfg.sloHigh > 0 || cfg.sloLow > 0 {
		// SLO admission needs the scored router: its cached worker snapshot
		// is what the completion predictor runs over.
		rcfg := router.DefaultConfig()
		rcfg.Seed = cfg.seed
		rcfg.SLO = router.SLOConfig{
			High: router.SLOClass{Budget: cfg.sloHigh, MaxDelay: cfg.sloDefer},
			Low:  router.SLOClass{Budget: cfg.sloLow, MaxDelay: cfg.sloDefer},
		}
		rt = router.New(app, rcfg)
		if _, err := app.Replay(arrivals, cluster.ReplaySpec{
			RequestAt: func(i int) cluster.Request {
				if (i+1)%10 == 0 {
					return cluster.Request{QoS: cluster.QoSHigh}
				}
				return cluster.Request{}
			},
		}); err != nil {
			return err
		}
	} else {
		app.RunTrace(arrivals)
	}
	if cfg.traceOut != nil {
		if err := tracer.Export(cfg.traceOut); err != nil {
			return fmt.Errorf("trace export: %w", err)
		}
	}

	fmt.Fprintf(w, "workflow=%s system=%s spec=%s nodes=%d batch=%d trace=%s\n",
		cfg.wf.Name, cfg.system, cfg.spec.Name, cfg.nodes, app.Batch, traceDesc)
	fmt.Fprintf(w, "requests: %d completed\n", app.Completed)
	fmt.Fprintf(w, "latency:  p50=%s p90=%s p99=%s max=%s\n",
		mss(app.E2E.P(0.5)), mss(app.E2E.P(0.9)), mss(app.E2E.P(0.99)), mss(app.E2E.Max()))
	pass := app.XferGPU.Mean() + app.XferHost.Mean()
	comp := app.Compute.Mean()
	share := 0.0
	if pass+comp > 0 {
		share = pass.Seconds() / (pass + comp).Seconds()
	}
	fmt.Fprintf(w, "breakdown: gFn-gFn=%s gFn-host=%s compute=%s passing-share=%.0f%%\n",
		mss(app.XferGPU.Mean()), mss(app.XferHost.Mean()), mss(comp), share*100)
	fmt.Fprintf(w, "slo: %s, compliance %.0f%%\n", mss(app.SLO), app.SLOCompliance()*100)
	if rt != nil {
		rs := rt.Stats
		fmt.Fprintf(w, "admission: admits=%d defers=%d shed=%d (low=%d high=%d) attain-low=%.2f attain-high=%.2f\n",
			rs.Admits, rs.Defers, rs.ShedLow+rs.ShedHigh, rs.ShedLow, rs.ShedHigh,
			rt.Attainment(cluster.QoSLow), rt.Attainment(cluster.QoSHigh))
	}
	st := c.Plane.Stats()
	fmt.Fprintf(w, "data plane: %d puts, %d gets, %d copies, %.1f GiB moved, %d control ops\n",
		st.Puts, st.Gets, st.Copies, float64(st.BytesMoved)/float64(1<<30), st.ControlOps)
	return nil
}

// runPD executes the -pd mode: prefill/decode-disaggregated LLM serving on
// the configured cluster, with every 8th request a long-prompt (4096-token,
// session-tagged) request and the rest short interactive ones. Long prompts
// split across a prefill/decode pair with the KV cache handed off over the
// data plane; the report is deterministic byte for byte, like runSim's.
func runPD(cfg simConfig, w io.Writer) error {
	const (
		longPrompt  = 4096
		shortPrompt = 256
		outTokens   = 8
		longEvery   = 8
	)
	mk, ok := planes(cfg.seed)[cfg.system]
	if !ok {
		return fmt.Errorf("unknown system %q", cfg.system)
	}
	llm, err := models.LookupLLM(cfg.pdModel)
	if err != nil {
		return err
	}
	total := cfg.nodes * cfg.spec.NumGPUs
	if total < 3 {
		return fmt.Errorf("-pd needs at least 3 GPUs (1 prefill, 1 decode, 1 mixed), have %d", total)
	}
	engine := sim.NewEngine()
	defer engine.Close()
	var tracer *obs.Tracer
	if cfg.traceOut != nil {
		tracer = obs.Attach(engine)
	}
	c := cluster.NewSpatial(engine, cfg.spec, cfg.nodes, cfg.slots, mk)
	svc, err := c.DeployLLM(cluster.PDConfig{
		LLM:            llm,
		PrefillWorkers: 1, DecodeWorkers: 1, MixedWorkers: total - 2,
		DefaultOutTokens: outTokens,
	})
	if err != nil {
		return err
	}
	rt := router.NewPD(svc, router.DefaultPDPolicy())
	arrivals := cfg.arrivals
	traceDesc := fmt.Sprintf("file(%d arrivals)", len(arrivals))
	if arrivals == nil {
		arrivals = trace.Generate(trace.Spec{Pattern: cfg.pattern, Duration: cfg.dur, MeanRPS: cfg.rps, Seed: cfg.seed})
		traceDesc = fmt.Sprintf("%s(%.1f rps, %v)", cfg.pattern, cfg.rps, cfg.dur)
	}
	if arrivals == nil {
		arrivals = []time.Duration{}
	}
	st, err := svc.Replay(arrivals, cluster.ReplaySpec{RequestAt: func(i int) cluster.Request {
		req := cluster.Request{PromptTokens: shortPrompt, OutTokens: outTokens}
		if i%longEvery == 0 {
			req.PromptTokens = longPrompt
			req.Session = int64(i%16) + 1
		}
		return req
	}})
	if err != nil {
		return err
	}
	if cfg.traceOut != nil {
		if err := tracer.Export(cfg.traceOut); err != nil {
			return fmt.Errorf("trace export: %w", err)
		}
	}

	fmt.Fprintf(w, "pd-serving model=%s system=%s spec=%s nodes=%d pools=1/1/%d trace=%s\n",
		llm.Name, cfg.system, cfg.spec.Name, cfg.nodes, total-2, traceDesc)
	fmt.Fprintf(w, "mix: 1 in %d long (%d tokens, session-tagged), rest short (%d tokens), %d out\n",
		longEvery, longPrompt, shortPrompt, outTokens)
	fmt.Fprintf(w, "requests: %d completed\n", st.Completed)
	fmt.Fprintf(w, "latency:  p50=%s p99=%s ttft-p99=%s kv-xfer-mean=%s\n",
		mss(st.P50), mss(st.P99), mss(svc.TTFT.P(0.99)), mss(svc.KVXfer.Mean()))
	fmt.Fprintf(w, "placement: colocated=%d disaggregated=%d collapsed=%d overflows=%d\n",
		svc.Stats.Colocated, svc.Stats.Disaggregated, svc.Stats.Collapsed, svc.Stats.Overflows)
	fmt.Fprintf(w, "handoff: kv-transfers=%d kv-moved=%.1f GiB recomputes=%d\n",
		svc.Stats.KVTransfers, float64(svc.Stats.KVBytes)/float64(1<<30), svc.Stats.Recomputes)
	fmt.Fprintf(w, "policy: decisions=%d long=%d short=%d affinity=%d\n",
		rt.Stats.Decisions, rt.Stats.Long, rt.Stats.Short, rt.Stats.Affinity)
	stp := c.Plane.Stats()
	fmt.Fprintf(w, "data plane: %d puts, %d gets, %d copies, %.1f GiB moved, %d control ops\n",
		stp.Puts, stp.Gets, stp.Copies, float64(stp.BytesMoved)/float64(1<<30), stp.ControlOps)
	return nil
}

// loadTrace reads arrival offsets from a file: one Go duration per line,
// blank lines and '#' comments skipped.
func loadTrace(path string) ([]time.Duration, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []time.Duration
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		d, err := time.ParseDuration(s)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %v", path, line, err)
		}
		out = append(out, d)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func planes(seed int64) map[string]func(*fabric.Fabric) dataplane.Plane {
	return map[string]func(*fabric.Fabric) dataplane.Plane{
		"grouter":   func(f *fabric.Fabric) dataplane.Plane { return core.New(f, core.FullConfig()) },
		"infless+":  func(f *fabric.Fabric) dataplane.Plane { return baselines.NewINFless(f) },
		"nvshmem+":  func(f *fabric.Fabric) dataplane.Plane { return baselines.NewNVShmem(f, seed) },
		"deepplan+": func(f *fabric.Fabric) dataplane.Plane { return baselines.NewDeepPlan(f, seed) },
	}
}

func mss(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "grouter-sim: "+format+"\n", args...)
	os.Exit(2)
}
