// Command grouter-sim runs one serverless inference workflow on a simulated
// GPU cluster under a chosen data plane and trace, printing latency
// percentiles, the passing/compute breakdown, and data-plane statistics.
//
// Usage:
//
//	grouter-sim -workflow traffic -system grouter -spec dgx-v100
//	grouter-sim -workflow video -system infless+ -rps 12 -dur 30s
//	grouter-sim -workflow image -dot          # emit the DAG as Graphviz
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"grouter/internal/baselines"
	"grouter/internal/cluster"
	"grouter/internal/core"
	"grouter/internal/dataplane"
	"grouter/internal/fabric"
	"grouter/internal/scheduler"
	"grouter/internal/sim"
	"grouter/internal/topology"
	"grouter/internal/trace"
	"grouter/internal/workflow"
)

func main() {
	wfName := flag.String("workflow", "traffic", "workflow: traffic, driving, video, image")
	wfFile := flag.String("workflow-file", "", "load a custom workflow definition (JSON) instead")
	system := flag.String("system", "grouter", "data plane: grouter, infless+, nvshmem+, deepplan+")
	specName := flag.String("spec", "dgx-v100", "topology: dgx-v100, dgx-a100, h800x8, quad-a10")
	nodes := flag.Int("nodes", 1, "node count")
	split := flag.Bool("split", false, "split stages across nodes")
	batch := flag.Int("batch", 0, "batch size (0 = workflow default)")
	pattern := flag.String("pattern", "bursty", "trace pattern: sporadic, periodic, bursty")
	rps := flag.Float64("rps", 8, "mean request rate")
	dur := flag.Duration("dur", 20*time.Second, "trace duration (virtual)")
	seed := flag.Int64("seed", 1, "random seed")
	slots := flag.Int("gpu-slots", 1, "concurrent functions per GPU (spatial sharing)")
	dot := flag.Bool("dot", false, "print the workflow DAG as Graphviz and exit")
	flag.Parse()

	var wf *workflow.Workflow
	if *wfFile != "" {
		loaded, err := workflow.LoadFile(*wfFile)
		if err != nil {
			fail("%v", err)
		}
		wf = loaded
	} else if wf = workflow.ByName(*wfName); wf == nil {
		fail("unknown workflow %q", *wfName)
	}
	if *dot {
		fmt.Print(wf.DOT())
		return
	}
	spec := topology.SpecByName(*specName)
	if spec == nil {
		fail("unknown topology %q", *specName)
	}
	pat, err := trace.ParsePattern(*pattern)
	if err != nil {
		fail("%v", err)
	}
	mk, ok := planes(*seed)[*system]
	if !ok {
		fail("unknown system %q", *system)
	}

	engine := sim.NewEngine()
	defer engine.Close()
	c := cluster.NewSpatial(engine, spec, *nodes, *slots, mk)
	app := c.Deploy(wf, *batch, scheduler.Options{Node: -1, SplitAcrossNodes: *split, Seed: *seed})
	arrivals := trace.Generate(trace.Spec{Pattern: pat, Duration: *dur, MeanRPS: *rps, Seed: *seed})
	start := time.Now()
	app.RunTrace(arrivals)

	fmt.Printf("workflow=%s system=%s spec=%s nodes=%d batch=%d trace=%s(%.1f rps, %v)\n",
		wf.Name, *system, spec.Name, *nodes, app.Batch, pat, *rps, *dur)
	fmt.Printf("requests: %d completed (sim ran in %v wall clock)\n",
		app.Completed, time.Since(start).Round(time.Millisecond))
	fmt.Printf("latency:  p50=%s p90=%s p99=%s max=%s\n",
		mss(app.E2E.P(0.5)), mss(app.E2E.P(0.9)), mss(app.E2E.P(0.99)), mss(app.E2E.Max()))
	pass := app.XferGPU.Mean() + app.XferHost.Mean()
	comp := app.Compute.Mean()
	share := 0.0
	if pass+comp > 0 {
		share = pass.Seconds() / (pass + comp).Seconds()
	}
	fmt.Printf("breakdown: gFn-gFn=%s gFn-host=%s compute=%s passing-share=%.0f%%\n",
		mss(app.XferGPU.Mean()), mss(app.XferHost.Mean()), mss(comp), share*100)
	fmt.Printf("slo: %s, compliance %.0f%%\n", mss(app.SLO), app.SLOCompliance()*100)
	st := c.Plane.Stats()
	fmt.Printf("data plane: %d puts, %d gets, %d copies, %.1f GiB moved, %d control ops\n",
		st.Puts, st.Gets, st.Copies, float64(st.BytesMoved)/float64(1<<30), st.ControlOps)
}

func planes(seed int64) map[string]func(*fabric.Fabric) dataplane.Plane {
	return map[string]func(*fabric.Fabric) dataplane.Plane{
		"grouter":   func(f *fabric.Fabric) dataplane.Plane { return core.New(f, core.FullConfig()) },
		"infless+":  func(f *fabric.Fabric) dataplane.Plane { return baselines.NewINFless(f) },
		"nvshmem+":  func(f *fabric.Fabric) dataplane.Plane { return baselines.NewNVShmem(f, seed) },
		"deepplan+": func(f *fabric.Fabric) dataplane.Plane { return baselines.NewDeepPlan(f, seed) },
	}
}

func mss(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "grouter-sim: "+format+"\n", args...)
	os.Exit(2)
}
