// Command grouter-trace generates and summarizes Azure-like invocation
// traces with the three arrival patterns the paper samples (sporadic,
// periodic, bursty).
//
// Usage:
//
//	grouter-trace -pattern bursty -rps 20 -dur 60s -seed 7
//	grouter-trace -pattern periodic -rps 10 -dur 2m -emit
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"grouter/internal/trace"
)

func main() {
	pattern := flag.String("pattern", "bursty", "arrival pattern: sporadic, periodic, bursty")
	rps := flag.Float64("rps", 10, "mean request rate")
	dur := flag.Duration("dur", time.Minute, "trace duration")
	seed := flag.Int64("seed", 1, "random seed")
	emit := flag.Bool("emit", false, "print every arrival offset (seconds), one per line")
	flag.Parse()

	p, err := trace.ParsePattern(*pattern)
	if err != nil {
		fmt.Fprintf(os.Stderr, "grouter-trace: %v\n", err)
		os.Exit(2)
	}
	arrivals := trace.Generate(trace.Spec{Pattern: p, Duration: *dur, MeanRPS: *rps, Seed: *seed})
	st := trace.Summarize(arrivals, *dur)
	fmt.Printf("pattern=%s dur=%v seed=%d\n", p, *dur, *seed)
	fmt.Printf("arrivals=%d mean=%.2f req/s peak(1s)=%.0f req/s cv=%.2f\n",
		st.Count, st.Mean, st.PeakRPS, st.CV)
	if *emit {
		for _, a := range arrivals {
			fmt.Printf("%.6f\n", a.Seconds())
		}
	}
}
