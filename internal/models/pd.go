package models

import "time"

// Prefill/decode phase profiles. An LLM request has two compute phases with
// opposite resource shapes: prefill is compute-bound and scales with the
// prompt length, decode is memory-bandwidth-bound and scales with the output
// length. Disaggregated serving places the two phases on different GPUs and
// ships the prompt's KV cache between them, so the serving layer needs each
// phase costed separately — that is what Serve provides. The per-token KV
// footprint comes from the LLM's architecture (llm.go); decode speed comes
// from the device class's HBM bandwidth below.

// hbmBps is the per-class sustained HBM bandwidth (bytes/s) that bounds
// decode: each generated token streams the full weight shard once.
var hbmBps = map[Class]float64{
	ClassA10:  600e9,
	ClassV100: 900e9,
	ClassA100: 2000e9,
	ClassH800: 3350e9,
}

// bytesPerParam is the FP16 weight footprint used for decode and cold-start
// sizing.
const bytesPerParam = 2

// tpEfficiency is the scaling efficiency applied when tensor parallelism
// spreads a phase over more than one GPU (matches PrefillLatency).
const tpEfficiency = 0.85

// Serve binds an LLM to one serving deployment — a device class and a
// tensor-parallel degree — and derives the request-level phase costs the
// prefill/decode execution plan consumes.
type Serve struct {
	LLM   *LLM
	Class Class
	// TP is the tensor-parallel degree per phase (0 and 1 both mean 1).
	TP int
}

// tp returns the effective tensor-parallel degree.
func (s Serve) tp() int {
	if s.TP < 1 {
		return 1
	}
	return s.TP
}

// WeightsBytes is the model's full FP16 parameter footprint.
func (s Serve) WeightsBytes() int64 {
	return int64(s.LLM.ParamsB * 1e9 * bytesPerParam)
}

// Prefill returns the prompt-length-scaled prefill latency: the phase is
// compute-bound, 2·params FLOPs per prompt token.
func (s Serve) Prefill(promptTokens int) time.Duration {
	if promptTokens < 1 {
		promptTokens = 1
	}
	return s.LLM.PrefillLatency(s.Class, promptTokens, s.tp())
}

// DecodePerToken returns the per-output-token decode latency: the phase is
// memory-bandwidth-bound, streaming the weight shard once per token.
func (s Serve) DecodePerToken() time.Duration {
	bw := hbmBps[s.Class]
	if bw == 0 {
		bw = hbmBps[ClassV100]
	}
	agg := bw * float64(s.tp())
	if s.tp() > 1 {
		agg *= tpEfficiency
	}
	return time.Duration(float64(s.WeightsBytes()) / agg * float64(time.Second))
}

// Decode returns the decode-phase latency for an output of the given length.
func (s Serve) Decode(outTokens int) time.Duration {
	if outTokens < 1 {
		outTokens = 1
	}
	return time.Duration(outTokens) * s.DecodePerToken()
}

// KVBytes returns the total KV-cache size of a prompt — the payload a
// disaggregated handoff ships from the prefill GPU to the decode GPU. It is
// strictly monotone in the prompt length.
func (s Serve) KVBytes(promptTokens int) int64 {
	if promptTokens < 0 {
		promptTokens = 0
	}
	return s.LLM.KVBytes(promptTokens)
}
