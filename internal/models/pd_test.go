package models

import (
	"testing"
	"time"
)

func serveUnderTest(tp int) Serve {
	return Serve{LLM: MustLookupLLM("llama-7b"), Class: ClassH800, TP: tp}
}

// TestKVBytesMonotoneInPromptTokens is the property the PD handoff relies
// on: a longer prompt never shrinks the shipped KV cache, and each token
// adds exactly the architectural per-token footprint.
func TestKVBytesMonotoneInPromptTokens(t *testing.T) {
	for _, name := range []string{"llama-7b", "llama-13b", "qwen-32b", "llama-70b"} {
		s := Serve{LLM: MustLookupLLM(name), Class: ClassH800}
		prev := s.KVBytes(0)
		if prev != 0 {
			t.Fatalf("%s: KVBytes(0) = %d, want 0", name, prev)
		}
		per := s.LLM.KVBytesPerToken()
		for tokens := 1; tokens <= 1<<14; tokens *= 2 {
			kv := s.KVBytes(tokens)
			if kv <= prev {
				t.Fatalf("%s: KVBytes(%d) = %d not > KVBytes of fewer tokens %d", name, tokens, kv, prev)
			}
			if want := per * int64(tokens); kv != want {
				t.Fatalf("%s: KVBytes(%d) = %d, want %d (per-token %d)", name, tokens, kv, want, per)
			}
			prev = kv
		}
	}
}

func TestKVBytesNegativeClamps(t *testing.T) {
	s := serveUnderTest(1)
	if got := s.KVBytes(-5); got != 0 {
		t.Fatalf("KVBytes(-5) = %d, want 0", got)
	}
}

// TestPrefillMonotone pins the prompt-length scaling of the prefill phase.
func TestPrefillMonotone(t *testing.T) {
	s := serveUnderTest(1)
	prev := time.Duration(0)
	for tokens := 1; tokens <= 1<<14; tokens *= 2 {
		d := s.Prefill(tokens)
		if d <= prev {
			t.Fatalf("Prefill(%d) = %v not > %v", tokens, d, prev)
		}
		prev = d
	}
}

// TestDecodeLinearInOutputTokens pins the per-token decode model.
func TestDecodeLinearInOutputTokens(t *testing.T) {
	s := serveUnderTest(1)
	per := s.DecodePerToken()
	if per <= 0 {
		t.Fatalf("DecodePerToken = %v, want > 0", per)
	}
	for _, n := range []int{1, 2, 16, 333} {
		if got, want := s.Decode(n), time.Duration(n)*per; got != want {
			t.Fatalf("Decode(%d) = %v, want %v", n, got, want)
		}
	}
	if got := s.Decode(0); got != per {
		t.Fatalf("Decode(0) = %v, want one token (%v)", got, per)
	}
}

// TestDecodeFasterOnFasterHBM: device classes order decode speed by memory
// bandwidth, independent of the compute-speed table.
func TestDecodeFasterOnFasterHBM(t *testing.T) {
	classes := []Class{ClassA10, ClassV100, ClassA100, ClassH800}
	llm := MustLookupLLM("llama-7b")
	prev := time.Duration(1 << 62)
	for _, c := range classes {
		d := Serve{LLM: llm, Class: c}.DecodePerToken()
		if d >= prev {
			t.Fatalf("class %d decode/token %v not faster than slower class (%v)", c, d, prev)
		}
		prev = d
	}
}

// TestTPSpeedsPhases: tensor parallelism speeds both phases (at 85%
// efficiency), and TP<=0 clamps to 1.
func TestTPSpeedsPhases(t *testing.T) {
	s1, s2 := serveUnderTest(1), serveUnderTest(2)
	if !(s2.Prefill(4096) < s1.Prefill(4096)) {
		t.Fatal("TP=2 prefill not faster than TP=1")
	}
	if !(s2.DecodePerToken() < s1.DecodePerToken()) {
		t.Fatal("TP=2 decode not faster than TP=1")
	}
	s0 := serveUnderTest(0)
	if s0.Prefill(1024) != s1.Prefill(1024) || s0.DecodePerToken() != s1.DecodePerToken() {
		t.Fatal("TP=0 does not clamp to TP=1")
	}
}

func TestWeightsBytes(t *testing.T) {
	s := serveUnderTest(1)
	if got, want := s.WeightsBytes(), int64(14e9); got != want {
		t.Fatalf("WeightsBytes = %d, want %d (7B params, FP16)", got, want)
	}
}
