package models

import (
	"testing"
	"time"

	"grouter/internal/topology"
)

func TestLookupKnownAndUnknown(t *testing.T) {
	if _, err := Lookup("yolo-det"); err != nil {
		t.Fatal(err)
	}
	if _, err := Lookup("not-a-model"); err == nil {
		t.Error("unknown model should error")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustLookup should panic on unknown name")
		}
	}()
	MustLookup("not-a-model")
}

func TestLatencyLinearInBatch(t *testing.T) {
	p := MustLookup("yolo-det")
	l1 := p.Latency(ClassV100, 1)
	l2 := p.Latency(ClassV100, 2)
	l4 := p.Latency(ClassV100, 4)
	if l2-l1 != p.PerItem || l4-l2 != 2*p.PerItem {
		t.Errorf("latency not linear: %v %v %v", l1, l2, l4)
	}
	// Batch < 1 clamps to 1.
	if p.Latency(ClassV100, 0) != l1 {
		t.Error("batch 0 should behave as batch 1")
	}
}

func TestClassScaling(t *testing.T) {
	p := MustLookup("segmentation")
	v := p.Latency(ClassV100, 8)
	a := p.Latency(ClassA100, 8)
	a10 := p.Latency(ClassA10, 8)
	if !(a < v && v < a10) {
		t.Errorf("class ordering wrong: A100=%v V100=%v A10=%v", a, v, a10)
	}
}

func TestCPUOnlyNotScaled(t *testing.T) {
	p := MustLookup("video-decode")
	if p.Latency(ClassV100, 4) != p.Latency(ClassA100, 4) {
		t.Error("CPU function latency should not depend on GPU class")
	}
}

func TestBytesScaleWithBatch(t *testing.T) {
	p := MustLookup("preprocess")
	if p.OutBytes(8) != 8*p.OutBytesPerItem {
		t.Errorf("OutBytes(8) = %d", p.OutBytes(8))
	}
	if p.InBytes(0) != p.InBytesPerItem {
		t.Errorf("InBytes(0) = %d, want one item", p.InBytes(0))
	}
}

func TestClassOf(t *testing.T) {
	cases := []struct {
		spec *topology.Spec
		want Class
	}{
		{topology.DGXV100(), ClassV100},
		{topology.DGXA100(), ClassA100},
		{topology.H800x8(), ClassH800},
		{topology.QuadA10(), ClassA10},
	}
	for _, c := range cases {
		if got := ClassOf(c.spec); got != c.want {
			t.Errorf("ClassOf(%s) = %v, want %v", c.spec.Name, got, c.want)
		}
	}
}

func TestAllProfilesSane(t *testing.T) {
	for _, name := range Names() {
		p := MustLookup(name)
		if p.Latency(ClassV100, 1) <= 0 {
			t.Errorf("%s: non-positive latency", name)
		}
		if p.OutBytesPerItem <= 0 || p.InBytesPerItem <= 0 {
			t.Errorf("%s: non-positive tensor sizes", name)
		}
	}
}

func TestKVBytesPerToken(t *testing.T) {
	l := MustLookupLLM("llama-7b")
	// 2 × 32 layers × 32 heads × 128 dim × 2 bytes = 512 KiB/token.
	if got := l.KVBytesPerToken(); got != 512*KB {
		t.Errorf("7B KV/token = %d, want %d", got, 512*KB)
	}
	if l.KVBytes(4096) != 4096*512*KB {
		t.Errorf("KVBytes(4096) = %d", l.KVBytes(4096))
	}
}

func TestKVShardingUnderTP(t *testing.T) {
	l := MustLookupLLM("llama-70b")
	full := l.KVBytes(1000)
	if got := l.KVBytesPerGPU(1000, 8); got != full/8 {
		t.Errorf("TP=8 shard = %d, want %d", got, full/8)
	}
	if got := l.KVBytesPerGPU(1000, 0); got != full {
		t.Errorf("TP=0 clamps to 1, got %d", got)
	}
}

func TestPrefillLatencyShape(t *testing.T) {
	l7 := MustLookupLLM("llama-7b")
	l70 := MustLookupLLM("llama-70b")
	// Bigger models and longer prompts take longer; more TP is faster.
	if !(l70.PrefillLatency(ClassH800, 4096, 1) > l7.PrefillLatency(ClassH800, 4096, 1)) {
		t.Error("70B prefill should exceed 7B")
	}
	if !(l7.PrefillLatency(ClassH800, 8192, 1) > l7.PrefillLatency(ClassH800, 4096, 1)) {
		t.Error("longer prompt should take longer")
	}
	tp1 := l70.PrefillLatency(ClassH800, 4096, 1)
	tp8 := l70.PrefillLatency(ClassH800, 4096, 8)
	if !(tp8 < tp1) {
		t.Error("TP should reduce prefill latency")
	}
	// Magnitude: 7B, 4K tokens on H800 should be O(100ms).
	got := l7.PrefillLatency(ClassH800, 4096, 1)
	if got < 50*time.Millisecond || got > 500*time.Millisecond {
		t.Errorf("7B/4K prefill = %v, want O(100ms)", got)
	}
}

func TestDecodeLatencyScalesWithSizeAndTP(t *testing.T) {
	l7 := MustLookupLLM("llama-7b")
	l13 := MustLookupLLM("llama-13b")
	if !(l13.DecodeLatencyPerToken(ClassH800, 1) > l7.DecodeLatencyPerToken(ClassH800, 1)) {
		t.Error("13B decode should exceed 7B")
	}
	if !(l7.DecodeLatencyPerToken(ClassH800, 4) < l7.DecodeLatencyPerToken(ClassH800, 1)) {
		t.Error("TP should reduce decode latency")
	}
}
