package models

import (
	"fmt"
	"time"
)

// LLM describes a transformer model for the Mixture-of-Agents experiments:
// KV-cache sizing and prefill latency under tensor parallelism.
type LLM struct {
	Name string
	// ParamsB is parameter count in billions.
	ParamsB float64
	// Layers, KVHeads and HeadDim size the KV cache; BytesPerElem is the
	// cache dtype width (2 for FP16).
	Layers, KVHeads, HeadDim, BytesPerElem int
}

// KVBytesPerToken returns the full-model KV-cache footprint of one token.
func (l *LLM) KVBytesPerToken() int64 {
	return int64(2 * l.Layers * l.KVHeads * l.HeadDim * l.BytesPerElem) // 2 = K and V
}

// KVBytes returns the KV-cache size of a prompt of the given token count.
func (l *LLM) KVBytes(tokens int) int64 {
	return l.KVBytesPerToken() * int64(tokens)
}

// KVBytesPerGPU returns the per-GPU KV shard size under tensor parallelism
// tp (the cache is sharded across heads).
func (l *LLM) KVBytesPerGPU(tokens, tp int) int64 {
	if tp < 1 {
		tp = 1
	}
	return l.KVBytes(tokens) / int64(tp)
}

// effTFLOPs is the per-class sustained compute used for prefill estimates.
var effTFLOPs = map[Class]float64{
	ClassA10:  18,
	ClassV100: 60,
	ClassA100: 160,
	ClassH800: 350,
}

// PrefillLatency estimates time to prefill a prompt of the given token count
// on tp GPUs of class c (2·params FLOPs per token, 85% TP scaling
// efficiency).
func (l *LLM) PrefillLatency(c Class, tokens, tp int) time.Duration {
	if tp < 1 {
		tp = 1
	}
	flops := 2 * l.ParamsB * 1e9 * float64(tokens)
	agg := effTFLOPs[c] * 1e12 * float64(tp)
	if tp > 1 {
		agg *= 0.85
	}
	return time.Duration(flops / agg * float64(time.Second))
}

// DecodeLatencyPerToken estimates the per-output-token decode latency
// (memory-bandwidth-bound; coarse, only used for stage service times).
func (l *LLM) DecodeLatencyPerToken(c Class, tp int) time.Duration {
	base := time.Duration(l.ParamsB/7*20) * time.Millisecond / 2 // ≈10ms per 7B
	if tp < 1 {
		tp = 1
	}
	return time.Duration(float64(base) / (float64(tp) * 0.85))
}

var llms = map[string]*LLM{
	"llama-7b":  {Name: "llama-7b", ParamsB: 7, Layers: 32, KVHeads: 32, HeadDim: 128, BytesPerElem: 2},
	"llama-13b": {Name: "llama-13b", ParamsB: 13, Layers: 40, KVHeads: 40, HeadDim: 128, BytesPerElem: 2},
	"qwen-32b":  {Name: "qwen-32b", ParamsB: 32, Layers: 64, KVHeads: 8, HeadDim: 128, BytesPerElem: 2},
	"llama-70b": {Name: "llama-70b", ParamsB: 70, Layers: 80, KVHeads: 8, HeadDim: 128, BytesPerElem: 2},
}

// LookupLLM returns the named LLM profile.
func LookupLLM(name string) (*LLM, error) {
	l, ok := llms[name]
	if !ok {
		return nil, fmt.Errorf("models: unknown LLM %q", name)
	}
	return l, nil
}

// MustLookupLLM panics on an unknown name; for static experiment tables.
func MustLookupLLM(name string) *LLM {
	l, err := LookupLLM(name)
	if err != nil {
		panic(err)
	}
	return l
}
