// Package models holds calibrated performance profiles for the inference
// models used by the paper's six workflows, plus LLM profiles for the
// Mixture-of-Agents experiments.
//
// A profile gives a model's compute latency (linear in batch size, per the
// predictability assumption of §4.3.2) and the sizes of its input and output
// tensors, which drive all data-passing volumes. Latencies are calibrated on
// a V100 baseline and scaled by device class; they reproduce published
// magnitudes, not exact testbed numbers.
package models

import (
	"fmt"
	"time"

	"grouter/internal/topology"
)

// KB and MB are byte sizes used by profile definitions.
const (
	KB = int64(1) << 10
	MB = int64(1) << 20
)

// Class identifies a GPU device generation for latency scaling.
type Class int

// Device classes in ascending compute capability.
const (
	ClassA10 Class = iota
	ClassV100
	ClassA100
	ClassH800
)

// speedup is each class's compute speed relative to V100.
var speedup = map[Class]float64{
	ClassA10:  0.6,
	ClassV100: 1.0,
	ClassA100: 2.4,
	ClassH800: 3.6,
}

// ClassOf maps a topology spec to its device class.
func ClassOf(spec *topology.Spec) Class {
	switch spec.Name {
	case "dgx-v100":
		return ClassV100
	case "dgx-a100":
		return ClassA100
	case "h800x8":
		return ClassH800
	case "quad-a10":
		return ClassA10
	}
	return ClassV100
}

// Profile describes one model or data-processing operator.
type Profile struct {
	Name string
	// Base and PerItem define V100 latency: Base + PerItem×batch.
	Base    time.Duration
	PerItem time.Duration
	// InBytesPerItem and OutBytesPerItem size the tensors moved per request
	// item.
	InBytesPerItem  int64
	OutBytesPerItem int64
	// CPUOnly marks a cFn (runs on host CPU; latency is not class-scaled).
	CPUOnly bool
	// WeightsBytes is the model's parameter footprint, loaded from host
	// memory on a cold start.
	WeightsBytes int64
}

// Latency returns compute latency for a batch on the given device class.
func (p *Profile) Latency(c Class, batch int) time.Duration {
	if batch < 1 {
		batch = 1
	}
	lat := p.Base + time.Duration(batch)*p.PerItem
	if p.CPUOnly {
		return lat
	}
	s := speedup[c]
	if s == 0 {
		s = 1
	}
	return time.Duration(float64(lat) / s)
}

// InBytes returns the input tensor size for a batch.
func (p *Profile) InBytes(batch int) int64 {
	if batch < 1 {
		batch = 1
	}
	return p.InBytesPerItem * int64(batch)
}

// OutBytes returns the output tensor size for a batch.
func (p *Profile) OutBytes(batch int) int64 {
	if batch < 1 {
		batch = 1
	}
	return p.OutBytesPerItem * int64(batch)
}

// registry of the operators appearing in the paper's workflows (Fig. 12).
var registry = map[string]*Profile{
	// Traffic monitoring (Boggart-style).
	"video-decode": {Name: "video-decode", Base: 2 * time.Millisecond, PerItem: 1500 * time.Microsecond,
		InBytesPerItem: 2 * MB, OutBytesPerItem: 6 * MB, CPUOnly: true},
	"preprocess": {Name: "preprocess", Base: 500 * time.Microsecond, PerItem: 200 * time.Microsecond,
		InBytesPerItem: 6 * MB, OutBytesPerItem: 4 * MB, WeightsBytes: 8 * MB},
	"yolo-det": {Name: "yolo-det", Base: 2 * time.Millisecond, PerItem: 1200 * time.Microsecond,
		InBytesPerItem: 4 * MB, OutBytesPerItem: 2400 * KB, WeightsBytes: 84 * MB},
	"postprocess": {Name: "postprocess", Base: 300 * time.Microsecond, PerItem: 100 * time.Microsecond,
		InBytesPerItem: 2400 * KB, OutBytesPerItem: 2400 * KB, WeightsBytes: 4 * MB},
	"person-recog": {Name: "person-recog", Base: 1 * time.Millisecond, PerItem: 600 * time.Microsecond,
		InBytesPerItem: 1200 * KB, OutBytesPerItem: 4 * KB, WeightsBytes: 98 * MB},
	"car-recog": {Name: "car-recog", Base: 1 * time.Millisecond, PerItem: 600 * time.Microsecond,
		InBytesPerItem: 1200 * KB, OutBytesPerItem: 4 * KB, WeightsBytes: 98 * MB},

	// Driving / road segmentation (AdaInf-style).
	"denoise": {Name: "denoise", Base: 500 * time.Microsecond, PerItem: 400 * time.Microsecond,
		InBytesPerItem: 3 * MB, OutBytesPerItem: 3 * MB, WeightsBytes: 12 * MB},
	"segmentation": {Name: "segmentation", Base: 3 * time.Millisecond, PerItem: 2500 * time.Microsecond,
		InBytesPerItem: 3 * MB, OutBytesPerItem: 3 * MB, WeightsBytes: 240 * MB},
	"colorize": {Name: "colorize", Base: 400 * time.Microsecond, PerItem: 200 * time.Microsecond,
		InBytesPerItem: 3 * MB, OutBytesPerItem: 2250 * KB, WeightsBytes: 6 * MB},

	// Video / face pipeline (Aquatope-style). Chunk loaders are I/O heavy.
	"chunk-load": {Name: "chunk-load", Base: 2 * time.Millisecond, PerItem: 1500 * time.Microsecond,
		InBytesPerItem: 8 * MB, OutBytesPerItem: 16 * MB, CPUOnly: true},
	"face-det": {Name: "face-det", Base: 1500 * time.Microsecond, PerItem: 1 * time.Millisecond,
		InBytesPerItem: 16 * MB, OutBytesPerItem: 1800 * KB, WeightsBytes: 104 * MB},
	"face-recog": {Name: "face-recog", Base: 800 * time.Microsecond, PerItem: 500 * time.Microsecond,
		InBytesPerItem: 1800 * KB, OutBytesPerItem: 2 * KB, WeightsBytes: 90 * MB},

	// Image classification ensemble (Cocktail-style).
	"resnet50": {Name: "resnet50", Base: 1 * time.Millisecond, PerItem: 600 * time.Microsecond,
		InBytesPerItem: 600 * KB, OutBytesPerItem: 4 * KB, WeightsBytes: 98 * MB},
	"resnet101": {Name: "resnet101", Base: 1500 * time.Microsecond, PerItem: 1 * time.Millisecond,
		InBytesPerItem: 600 * KB, OutBytesPerItem: 4 * KB, WeightsBytes: 170 * MB},
	"efficientnet": {Name: "efficientnet", Base: 1200 * time.Microsecond, PerItem: 800 * time.Microsecond,
		InBytesPerItem: 600 * KB, OutBytesPerItem: 4 * KB, WeightsBytes: 52 * MB},
	"inception": {Name: "inception", Base: 1300 * time.Microsecond, PerItem: 900 * time.Microsecond,
		InBytesPerItem: 600 * KB, OutBytesPerItem: 4 * KB, WeightsBytes: 92 * MB},
	"aggregate": {Name: "aggregate", Base: 200 * time.Microsecond, PerItem: 20 * time.Microsecond,
		InBytesPerItem: 16 * KB, OutBytesPerItem: 4 * KB, CPUOnly: true},
}

// Lookup returns the named profile or an error listing the valid names.
func Lookup(name string) (*Profile, error) {
	p, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("models: unknown profile %q", name)
	}
	return p, nil
}

// MustLookup is Lookup for static workflow definitions; it panics on a typo.
func MustLookup(name string) *Profile {
	p, err := Lookup(name)
	if err != nil {
		panic(err)
	}
	return p
}

// Names returns all registered profile names (unordered).
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	return out
}
