// Package kvcache models KV-cache passing between LLM agents in serverless
// Mixture-of-Agents workflows (§6.4). Stages run on separate 8×H800 nodes;
// the prompt+response KV cache moves between stages so the receiver skips
// recomputation, and time-to-first-token (TTFT) is dominated by how fast the
// sharded cache crosses the network.
//
// Three systems are modeled:
//
//   - INFless+ stages the cache through host memory (pageable copies, kernel
//     TCP, single NIC);
//   - Mooncake+ transfers GPU-to-GPU over GPUDirect RDMA but, lacking
//     placement awareness, relays through a store GPU (one extra copy) and
//     uses one NIC per tensor-parallel shard — multi-NIC only at high TP;
//   - GROUTER transfers each shard directly to the receiver's GPU and
//     harvests all idle NICs through NVSwitch routing at any TP.
package kvcache

import (
	"fmt"
	"time"

	"grouter/internal/fabric"
	"grouter/internal/models"
	"grouter/internal/netsim"
	"grouter/internal/sim"
	"grouter/internal/topology"
	"grouter/internal/xfer"
)

// System selects a KV-passing implementation.
type System int

const (
	// SysINFless is the host-centric baseline.
	SysINFless System = iota
	// SysMooncake is the KV-cache-store baseline.
	SysMooncake
	// SysGRouter is the GPU-centric data plane.
	SysGRouter
)

func (s System) String() string {
	switch s {
	case SysINFless:
		return "infless+"
	case SysMooncake:
		return "mooncake+"
	case SysGRouter:
		return "grouter"
	}
	return "unknown"
}

// pageableBps matches the host-staging cap used by the CNN baselines.
const pageableBps = 3e9

// ReceiverPromptTokens is the receiver agent's own instruction prefix that
// must still be prefilled after the KV cache arrives.
const ReceiverPromptTokens = 256

// Cluster wires the H800 fabric for KV experiments.
type Cluster struct {
	F *fabric.Fabric
	X *xfer.Manager
}

// NewCluster builds n H800 nodes.
func NewCluster(e *sim.Engine, n int) *Cluster {
	f := fabric.New(e, topology.H800x8(), n)
	return &Cluster{F: f, X: xfer.NewManager(f)}
}

// TransferKV moves an LLM's KV cache for `tokens` prompt tokens from the
// sender stage (node src, GPUs 0..tp-1) to the receiver stage (node dst,
// GPUs 0..tp-1) under the given system, returning the elapsed time. It must
// be called from a sim process.
func (c *Cluster) TransferKV(p *sim.Proc, sys System, llm *models.LLM, tokens, tp, src, dst int) time.Duration {
	if tp < 1 || tp > c.F.Spec().NumGPUs {
		panic(fmt.Sprintf("kvcache: bad tp %d", tp))
	}
	total := llm.KVBytes(tokens)
	shard := total / int64(tp)
	start := p.Now()
	srcT, dstT := c.F.Topo(src), c.F.Topo(dst)

	done := make([]*sim.Signal, 0, tp)
	wait := func() {
		for _, d := range done {
			d.Wait(p)
		}
	}

	switch sys {
	case SysINFless:
		// Phase 1: every shard staged to host memory (pageable).
		for g := 0; g < tp; g++ {
			done = append(done, c.X.TransferAsync(xfer.Request{
				Label: "kv-d2h", Bytes: shard,
				Paths: []xfer.Path{xfer.PathOf(c.F.Net, srcT.GPUToHostLinks(g))},
				Opt:   netsim.Options{MaxRate: pageableBps},
			}))
		}
		wait()
		// Phase 2: one TCP stream over a single NIC.
		done = done[:0]
		done = append(done, c.X.TransferAsync(xfer.Request{
			Label: "kv-net", Bytes: total, HostStack: true,
			Paths: []xfer.Path{xfer.PathOf(c.F.Net, []topology.LinkID{srcT.NICTx(0), dstT.NICRx(0)})},
		}))
		wait()
		// Phase 3: shards staged back up to the receiver GPUs.
		done = done[:0]
		for g := 0; g < tp; g++ {
			done = append(done, c.X.TransferAsync(xfer.Request{
				Label: "kv-h2d", Bytes: shard,
				Paths: []xfer.Path{xfer.PathOf(c.F.Net, dstT.HostToGPULinks(g))},
				Opt:   netsim.Options{MaxRate: pageableBps},
			}))
		}
		wait()

	case SysMooncake:
		// Each shard rides its own GPU's NIC (multi-NIC emerges with TP),
		// but lands on a store GPU and is copied once more to the receiver.
		relay := func(g int) int { return (g + tp) % c.F.Spec().NumGPUs }
		for g := 0; g < tp; g++ {
			store := relay(g)
			nic := srcT.Spec.GPUNIC[g]
			var links []topology.LinkID
			links = append(links, srcT.GPUToNICLinks(g, nic)...)
			links = append(links, dstT.NICToGPULinks(nic, store)...)
			done = append(done, c.X.TransferAsync(xfer.Request{
				Label: "kv-gdr", Bytes: shard,
				Paths: []xfer.Path{xfer.PathOf(c.F.Net, links)},
			}))
		}
		wait()
		// Store-to-receiver copies over NVSwitch.
		done = done[:0]
		for g := 0; g < tp; g++ {
			done = append(done, c.X.TransferAsync(xfer.Request{
				Label: "kv-store-copy", Bytes: shard,
				Paths: []xfer.Path{xfer.PathOf(c.F.Net, dstT.NVLinkPathLinks([]int{relay(g), g}))},
			}))
		}
		wait()

	case SysGRouter:
		// Direct shard-to-shard GDR; each shard additionally harvests the
		// idle NICs of non-shard GPUs via NVSwitch (Fig. 9a).
		perShard := c.F.Spec().NICCount / tp
		if perShard < 1 {
			perShard = 1
		}
		nicCursor := 0
		for g := 0; g < tp; g++ {
			var paths []xfer.Path
			for k := 0; k < perShard; k++ {
				route := nicCursor % c.F.Spec().NumGPUs
				nicCursor++
				nic := srcT.Spec.GPUNIC[route]
				var links []topology.LinkID
				if route != g {
					links = append(links, srcT.NVLinkPathLinks([]int{g, route})...)
				}
				links = append(links, srcT.GPUToNICLinks(route, nic)...)
				links = append(links, dstT.NICToGPULinks(nic, route)...)
				if route != g {
					links = append(links, dstT.NVLinkPathLinks([]int{route, g})...)
				}
				paths = append(paths, xfer.PathOf(c.F.Net, links))
			}
			done = append(done, c.X.TransferAsync(xfer.Request{
				Label: "kv-direct", Bytes: shard, Paths: paths,
			}))
		}
		wait()
	}
	return p.Now() - start
}

// TTFT returns the receiver's time to first token: KV transfer plus the
// prefill of its own instruction prefix.
func (c *Cluster) TTFT(p *sim.Proc, sys System, llm *models.LLM, tokens, tp, src, dst int) time.Duration {
	xferTime := c.TransferKV(p, sys, llm, tokens, tp, src, dst)
	prefill := llm.PrefillLatency(models.ClassH800, ReceiverPromptTokens, tp)
	p.Sleep(prefill)
	return xferTime + prefill
}

// MoAConfig parameterizes a Mixture-of-Agents run.
type MoAConfig struct {
	LLM    *models.LLM
	Layers int
	Agents int // agents per layer
	TP     int
	// PromptTokens is the user prompt length; ResponseTokens what each agent
	// appends per layer.
	PromptTokens   int
	ResponseTokens int
}

// MoALatency runs a full MoA workflow: each layer's agents receive the KV
// caches of all previous-layer agents (stages on alternating nodes), prefill
// their instruction, and decode their response. It returns the end-to-end
// latency. It must be called from a sim process.
func (c *Cluster) MoALatency(p *sim.Proc, sys System, cfg MoAConfig) time.Duration {
	start := p.Now()
	tokens := cfg.PromptTokens
	for layer := 0; layer < cfg.Layers; layer++ {
		src := layer % c.F.NumNodes()
		dst := (layer + 1) % c.F.NumNodes()
		if layer > 0 {
			// Every agent pulls every previous-layer agent's cache; the layer
			// advances when the slowest pull finishes. Pulls run sequentially
			// per receiving agent but agents share links concurrently, which
			// the flow simulator captures; we model one representative agent
			// (they are symmetric) pulling cfg.Agents caches.
			for a := 0; a < cfg.Agents; a++ {
				c.TransferKV(p, sys, cfg.LLM, tokens, cfg.TP, src, dst)
			}
		}
		p.Sleep(cfg.LLM.PrefillLatency(models.ClassH800, ReceiverPromptTokens, cfg.TP))
		p.Sleep(time.Duration(cfg.ResponseTokens) * cfg.LLM.DecodeLatencyPerToken(models.ClassH800, cfg.TP))
		tokens += cfg.ResponseTokens
	}
	return p.Now() - start
}
