package kvcache

import (
	"testing"
	"time"

	"grouter/internal/models"
	"grouter/internal/sim"
)

func ttftOf(t *testing.T, sys System, llmName string, tokens, tp int) time.Duration {
	t.Helper()
	e := sim.NewEngine()
	defer e.Close()
	c := NewCluster(e, 2)
	var got time.Duration
	e.Go("ttft", func(p *sim.Proc) {
		got = c.TTFT(p, sys, models.MustLookupLLM(llmName), tokens, tp, 0, 1)
	})
	e.Run(0)
	if got <= 0 {
		t.Fatalf("%v TTFT = %v", sys, got)
	}
	return got
}

func TestTTFTOrderingAcrossSystems(t *testing.T) {
	// Paper Fig. 19(a): GROUTER < Mooncake+ < INFless+ at 4K input.
	g := ttftOf(t, SysGRouter, "llama-7b", 4096, 1)
	m := ttftOf(t, SysMooncake, "llama-7b", 4096, 1)
	i := ttftOf(t, SysINFless, "llama-7b", 4096, 1)
	if !(g < m && m < i) {
		t.Errorf("TTFT order wrong: grouter=%v mooncake+=%v infless+=%v", g, m, i)
	}
	// Paper reports ~66% vs INFless+ and ~57% vs Mooncake+ at 4K.
	if r := 1 - g.Seconds()/i.Seconds(); r < 0.4 {
		t.Errorf("reduction vs INFless+ = %.0f%%, want > 40%%", r*100)
	}
	if r := 1 - g.Seconds()/m.Seconds(); r < 0.3 {
		t.Errorf("reduction vs Mooncake+ = %.0f%%, want > 30%%", r*100)
	}
}

func TestTTFTGrowsWithInputLength(t *testing.T) {
	for _, sys := range []System{SysINFless, SysMooncake, SysGRouter} {
		prev := time.Duration(0)
		for _, tokens := range []int{1024, 4096, 16384} {
			got := ttftOf(t, sys, "llama-7b", tokens, 1)
			if got <= prev {
				t.Errorf("%v: TTFT(%d)=%v not greater than shorter input %v", sys, tokens, got, prev)
			}
			prev = got
		}
	}
}

func TestMooncakeGapNarrowsWithTP(t *testing.T) {
	// Paper: as TP increases Mooncake starts using multiple NICs, narrowing
	// GROUTER's advantage.
	gap := func(tp int) float64 {
		g := ttftOf(t, SysGRouter, "llama-70b", 4096, tp)
		m := ttftOf(t, SysMooncake, "llama-70b", 4096, tp)
		return m.Seconds() / g.Seconds()
	}
	g1, g8 := gap(1), gap(8)
	if !(g8 < g1) {
		t.Errorf("advantage should narrow with TP: tp1 ratio %.2f, tp8 ratio %.2f", g1, g8)
	}
	if g8 < 1.0 {
		t.Errorf("GROUTER should still win at TP=8 (ratio %.2f)", g8)
	}
}

func TestGrouterWinsAcrossModels(t *testing.T) {
	for _, name := range []string{"llama-7b", "llama-13b", "qwen-32b", "llama-70b"} {
		g := ttftOf(t, SysGRouter, name, 4096, 4)
		m := ttftOf(t, SysMooncake, name, 4096, 4)
		i := ttftOf(t, SysINFless, name, 4096, 4)
		if !(g < m && g < i) {
			t.Errorf("%s: grouter=%v mooncake+=%v infless+=%v", name, g, m, i)
		}
	}
}

func TestMoALatencyEndToEnd(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	c := NewCluster(e, 2)
	cfg := MoAConfig{
		LLM: models.MustLookupLLM("llama-7b"), Layers: 3, Agents: 3, TP: 2,
		PromptTokens: 2048, ResponseTokens: 256,
	}
	var g, i time.Duration
	e.Go("moa", func(p *sim.Proc) {
		g = c.MoALatency(p, SysGRouter, cfg)
		i = c.MoALatency(p, SysINFless, cfg)
	})
	e.Run(0)
	if g <= 0 || i <= 0 {
		t.Fatalf("MoA latencies: grouter=%v infless=%v", g, i)
	}
	if !(g < i) {
		t.Errorf("grouter MoA %v not faster than infless+ %v", g, i)
	}
}

func TestTransferScalesWithModelSize(t *testing.T) {
	small := ttftOf(t, SysGRouter, "llama-7b", 4096, 2)
	big := ttftOf(t, SysGRouter, "llama-13b", 4096, 2)
	if !(big > small) {
		t.Errorf("13B KV transfer %v not slower than 7B %v", big, small)
	}
}

func TestGQAModelsMoveLessKV(t *testing.T) {
	// qwen-32b uses GQA (8 KV heads): its cache per token is smaller than
	// llama-13b's MHA cache despite more parameters, so its transfer-bound
	// TTFT at matched TP can be lower.
	l13 := models.MustLookupLLM("llama-13b")
	q32 := models.MustLookupLLM("qwen-32b")
	if !(q32.KVBytesPerToken() < l13.KVBytesPerToken()) {
		t.Fatalf("GQA cache %d not below MHA cache %d", q32.KVBytesPerToken(), l13.KVBytesPerToken())
	}
}

func TestMoAMoreLayersCostMore(t *testing.T) {
	run := func(layers int) time.Duration {
		e := sim.NewEngine()
		defer e.Close()
		c := NewCluster(e, 2)
		cfg := MoAConfig{LLM: models.MustLookupLLM("llama-7b"), Layers: layers,
			Agents: 2, TP: 2, PromptTokens: 1024, ResponseTokens: 128}
		var d time.Duration
		e.Go("moa", func(p *sim.Proc) { d = c.MoALatency(p, SysGRouter, cfg) })
		e.Run(0)
		return d
	}
	if !(run(4) > run(2)) {
		t.Error("more MoA layers should cost more")
	}
}

func TestSystemStringNames(t *testing.T) {
	if SysINFless.String() != "infless+" || SysMooncake.String() != "mooncake+" ||
		SysGRouter.String() != "grouter" {
		t.Error("system names wrong")
	}
	if System(99).String() != "unknown" {
		t.Error("unknown system should stringify as unknown")
	}
}

func TestTransferDeterministic(t *testing.T) {
	a := ttftOf(t, SysMooncake, "llama-70b", 8192, 4)
	b := ttftOf(t, SysMooncake, "llama-70b", 8192, 4)
	if a != b {
		t.Errorf("nondeterministic KV transfer: %v vs %v", a, b)
	}
}
