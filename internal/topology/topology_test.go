package topology

import (
	"testing"
	"testing/quick"
)

func TestBuiltinSpecsValidate(t *testing.T) {
	for _, name := range []string{"dgx-v100", "dgx-a100", "h800x8", "quad-a10"} {
		s := SpecByName(name)
		if s == nil {
			t.Fatalf("SpecByName(%q) = nil", name)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if SpecByName("nope") != nil {
		t.Error("unknown spec should be nil")
	}
}

func TestDGXV100PairClassesMatchPaper(t *testing.T) {
	// Paper Fig. 6(a): 28% of pairs have half bandwidth, 42% have no direct
	// NVLink (of 28 unordered pairs: 8 single-brick, 12 none, 8 double).
	classes := DGXV100().PairClasses()
	if classes[PairSingle] != 8 {
		t.Errorf("single-brick pairs = %d, want 8", classes[PairSingle])
	}
	if classes[PairNoNVLink] != 12 {
		t.Errorf("no-NVLink pairs = %d, want 12", classes[PairNoNVLink])
	}
	if classes[PairDouble] != 8 {
		t.Errorf("double-brick pairs = %d, want 8", classes[PairDouble])
	}
}

func TestDGXV100LinkBudget(t *testing.T) {
	// Each V100 has exactly 6 NVLink bricks of 24 GB/s.
	s := DGXV100()
	for g := 0; g < s.NumGPUs; g++ {
		total := 0.0
		for j := 0; j < s.NumGPUs; j++ {
			total += s.NVAdj[g][j]
		}
		if want := GBps(6 * 24); total != want {
			t.Errorf("GPU %d NVLink budget = %.0f, want %.0f", g, total, want)
		}
	}
}

func TestSwitchPeers(t *testing.T) {
	s := DGXV100()
	peers := s.SwitchPeers(0)
	if len(peers) != 1 || peers[0] != 1 {
		t.Errorf("SwitchPeers(0) = %v, want [1]", peers)
	}
	a10 := QuadA10()
	if got := a10.SwitchPeers(2); len(got) != 0 {
		t.Errorf("QuadA10 SwitchPeers(2) = %v, want empty", got)
	}
}

func TestNVNeighbors(t *testing.T) {
	s := DGXV100()
	got := s.NVNeighbors(0)
	want := []int{1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("NVNeighbors(0) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("NVNeighbors(0) = %v, want %v", got, want)
		}
	}
	// Switched fabric: everyone is a neighbor.
	a100 := DGXA100()
	if got := a100.NVNeighbors(3); len(got) != 7 {
		t.Errorf("A100 NVNeighbors(3) has %d entries, want 7", len(got))
	}
}

func TestClusterLinksUniqueAndPositive(t *testing.T) {
	for _, spec := range []*Spec{DGXV100(), DGXA100(), QuadA10(), H800x8()} {
		c := NewCluster(spec, 2)
		seen := map[LinkID]bool{}
		for _, l := range c.Links() {
			if seen[l.ID] {
				t.Errorf("%s: duplicate link %s", spec.Name, l.ID)
			}
			seen[l.ID] = true
			if l.Bps <= 0 {
				t.Errorf("%s: link %s has bandwidth %f", spec.Name, l.ID, l.Bps)
			}
		}
	}
}

func TestGPUToHostPathSharesSwitchUplink(t *testing.T) {
	c := NewCluster(DGXV100(), 1)
	n := c.Node(0)
	p0 := n.GPUToHostLinks(0)
	p1 := n.GPUToHostLinks(1)
	if p0[1] != p1[1] {
		t.Errorf("GPUs 0 and 1 should share a switch uplink: %v vs %v", p0, p1)
	}
	p2 := n.GPUToHostLinks(2)
	if p0[1] == p2[1] {
		t.Errorf("GPUs 0 and 2 should not share a switch uplink")
	}
}

func TestPCIeP2PPaths(t *testing.T) {
	c := NewCluster(QuadA10(), 1)
	n := c.Node(0)
	// Different switches: 4 links (two x16 + two uplinks).
	if p := n.PCIeP2PLinks(0, 2); len(p) != 4 {
		t.Errorf("cross-switch P2P path = %v, want 4 links", p)
	}
	v := NewCluster(DGXV100(), 1).Node(0)
	// Same switch: 2 links, stays below the switch.
	if p := v.PCIeP2PLinks(0, 1); len(p) != 2 {
		t.Errorf("same-switch P2P path = %v, want 2 links", p)
	}
}

func TestNVLinkPathEnumeration(t *testing.T) {
	n := NewCluster(DGXV100(), 1).Node(0)
	// Direct only.
	direct := n.NVLinkPaths(0, 3, 1)
	if len(direct) != 1 || len(direct[0]) != 2 {
		t.Fatalf("direct paths 0→3 = %v", direct)
	}
	// Two hops: several alternatives appear, all simple, sorted by length.
	two := n.NVLinkPaths(0, 3, 2)
	if len(two) <= 1 {
		t.Fatalf("expected multiple ≤2-hop paths 0→3, got %v", two)
	}
	if len(two[0]) != 2 {
		t.Errorf("paths not sorted by length: %v", two)
	}
	for _, p := range two {
		seen := map[int]bool{}
		for _, g := range p {
			if seen[g] {
				t.Errorf("path %v revisits GPU %d", p, g)
			}
			seen[g] = true
		}
		if p[0] != 0 || p[len(p)-1] != 3 {
			t.Errorf("path %v has wrong endpoints", p)
		}
		for i := 0; i+1 < len(p); i++ {
			if n.Spec.NVAdj[p[i]][p[i+1]] == 0 {
				t.Errorf("path %v uses missing edge %d-%d", p, p[i], p[i+1])
			}
		}
	}
	// Unconnected pair at 1 hop (0 and 5 have no direct link).
	if p := n.NVLinkPaths(0, 5, 1); len(p) != 0 {
		t.Errorf("paths 0→5 at 1 hop = %v, want none", p)
	}
	if p := n.NVLinkPaths(0, 5, 2); len(p) == 0 {
		t.Error("paths 0→5 at 2 hops should exist")
	}
}

func TestNVLinkPathsSwitched(t *testing.T) {
	n := NewCluster(DGXA100(), 1).Node(0)
	p := n.NVLinkPaths(2, 5, 3)
	if len(p) != 1 || len(p[0]) != 2 {
		t.Fatalf("switched fabric paths = %v, want single direct", p)
	}
	links := n.NVLinkPathLinks(p[0])
	if len(links) != 2 {
		t.Fatalf("switched path links = %v, want 2 ports", links)
	}
}

func TestPathBandwidth(t *testing.T) {
	n := NewCluster(DGXV100(), 1).Node(0)
	if b := n.PathBandwidth([]int{0, 3}); b != GBps(48) {
		t.Errorf("0→3 bandwidth = %.0f, want 48 GB/s", b)
	}
	// 0→1→3: bottleneck is min(24, 24).
	if b := n.PathBandwidth([]int{0, 1, 3}); b != GBps(24) {
		t.Errorf("0→1→3 bandwidth = %.0f, want 24 GB/s", b)
	}
	if b := n.PathBandwidth([]int{0, 5}); b != 0 {
		t.Errorf("0→5 bandwidth = %.0f, want 0", b)
	}
}

func TestGPUToNICPaths(t *testing.T) {
	v := NewCluster(DGXV100(), 1).Node(0)
	// Local NIC: 2 links (x16 + nic tx).
	if p := v.GPUToNICLinks(0, 0); len(p) != 2 {
		t.Errorf("local NIC path = %v, want 2 links", p)
	}
	// Remote NIC: crosses the root complex.
	if p := v.GPUToNICLinks(0, 3); len(p) != 4 {
		t.Errorf("remote NIC path = %v, want 4 links", p)
	}
	if p := v.NICToGPULinks(0, 1); len(p) != 2 {
		t.Errorf("local NIC rx path = %v, want 2 links", p)
	}
}

func TestNVLinkPathsPropertySimpleAndConnected(t *testing.T) {
	n := NewCluster(DGXV100(), 1).Node(0)
	f := func(a, b uint8, hops uint8) bool {
		src := int(a) % 8
		dst := int(b) % 8
		if src == dst {
			return len(n.NVLinkPaths(src, dst, 3)) == 0
		}
		h := 1 + int(hops)%3
		for _, p := range n.NVLinkPaths(src, dst, h) {
			if len(p)-1 > h || p[0] != src || p[len(p)-1] != dst {
				return false
			}
			seen := map[int]bool{}
			for i, g := range p {
				if seen[g] {
					return false
				}
				seen[g] = true
				if i > 0 && n.Spec.NVAdj[p[i-1]][g] == 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHasNVLink(t *testing.T) {
	if !DGXV100().HasNVLink() {
		t.Error("DGX-V100 should have NVLink")
	}
	if !DGXA100().HasNVLink() {
		t.Error("DGX-A100 should have NVLink")
	}
	if QuadA10().HasNVLink() {
		t.Error("QuadA10 should not have NVLink")
	}
}

func TestNVLinkPathsCached(t *testing.T) {
	n := NewCluster(DGXV100(), 1).Node(0)
	first := n.NVLinkPaths(0, 5, 3)
	second := n.NVLinkPaths(0, 5, 3)
	if len(first) != len(second) {
		t.Fatal("cached result differs")
	}
	// Cached slices are shared — identity check proves the memo hit.
	if len(first) > 0 && &first[0][0] != &second[0][0] {
		t.Error("second call did not hit the cache")
	}
}
