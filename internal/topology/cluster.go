package topology

import "sort"

// Node is one server instance inside a cluster. It owns a namespace of link
// IDs derived from its node index.
type Node struct {
	ID   int
	Spec *Spec

	// pathCache memoizes NVLinkPaths results: path selection runs on every
	// transfer, and the paper's <10µs selection budget (§4.3.3) assumes the
	// loop-free search is amortized.
	pathCache map[pathKey][][]int
	// ln caches link IDs and canonical link paths (see names.go).
	ln *linkNames
}

type pathKey struct{ src, dst, maxHops int }

// Cluster is a set of identical nodes connected through their NICs.
type Cluster struct {
	Spec  *Spec
	Nodes []*Node
}

// NewCluster builds a cluster of n nodes of the given spec. It panics on an
// invalid spec, which is always a programming error.
func NewCluster(spec *Spec, n int) *Cluster {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	c := &Cluster{Spec: spec}
	for i := 0; i < n; i++ {
		c.Nodes = append(c.Nodes, &Node{ID: i, Spec: spec})
	}
	return c
}

// Node returns node i.
func (c *Cluster) Node(i int) *Node { return c.Nodes[i] }

// Links enumerates every directed link in the cluster, sorted by ID for
// determinism.
func (c *Cluster) Links() []Link {
	var out []Link
	for _, nd := range c.Nodes {
		out = append(out, nd.Links()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// --- link naming ---

// NVLinkTo names the directed NVLink link GPU i → GPU j on this node.
// Valid only for mesh topologies with a direct connection.
func (n *Node) NVLinkTo(i, j int) LinkID { return n.names().nvTo[i][j] }

// NVPortOut and NVPortIn name a GPU's NVSwitch injection/ejection ports.
func (n *Node) NVPortOut(g int) LinkID { return n.names().nvPortOut[g] }

// NVPortIn names GPU g's NVSwitch ejection port.
func (n *Node) NVPortIn(g int) LinkID { return n.names().nvPortIn[g] }

// PCIeGPUUp and PCIeGPUDown name GPU g's own x16 link (toward/from switch).
func (n *Node) PCIeGPUUp(g int) LinkID { return n.names().pcieUp[g] }

// PCIeGPUDown names GPU g's x16 link in the host→GPU direction.
func (n *Node) PCIeGPUDown(g int) LinkID { return n.names().pcieDown[g] }

// PCIeSwitchUp and PCIeSwitchDown name switch s's host uplink.
func (n *Node) PCIeSwitchUp(s int) LinkID { return n.names().swUp[s] }

// PCIeSwitchDown names switch s's uplink in the host→switch direction.
func (n *Node) PCIeSwitchDown(s int) LinkID { return n.names().swDown[s] }

// NICTx and NICRx name NIC k's transmit/receive sides.
func (n *Node) NICTx(k int) LinkID { return n.names().nicTx[k] }

// NICRx names NIC k's receive side.
func (n *Node) NICRx(k int) LinkID { return n.names().nicRx[k] }

// Links enumerates all directed links on this node.
func (n *Node) Links() []Link {
	s := n.Spec
	var out []Link
	if s.Switched {
		for g := 0; g < s.NumGPUs; g++ {
			out = append(out,
				Link{n.NVPortOut(g), KindNVSwitchPort, s.SwitchPortBps},
				Link{n.NVPortIn(g), KindNVSwitchPort, s.SwitchPortBps},
			)
		}
	} else {
		for i := 0; i < s.NumGPUs; i++ {
			for j := 0; j < s.NumGPUs; j++ {
				if i != j && s.NVAdj[i][j] > 0 {
					out = append(out, Link{n.NVLinkTo(i, j), KindNVLink, s.NVAdj[i][j]})
				}
			}
		}
	}
	for g := 0; g < s.NumGPUs; g++ {
		out = append(out,
			Link{n.PCIeGPUUp(g), KindPCIeGPU, s.PCIeBps},
			Link{n.PCIeGPUDown(g), KindPCIeGPU, s.PCIeBps},
		)
	}
	switches := map[int]bool{}
	for _, g := range s.PCIeGroup {
		switches[g] = true
	}
	var sws []int
	for sw := range switches {
		sws = append(sws, sw)
	}
	sort.Ints(sws)
	for _, sw := range sws {
		out = append(out,
			Link{n.PCIeSwitchUp(sw), KindPCIeSwitch, s.PCIeBps},
			Link{n.PCIeSwitchDown(sw), KindPCIeSwitch, s.PCIeBps},
		)
	}
	for k := 0; k < s.NICCount; k++ {
		out = append(out,
			Link{n.NICTx(k), KindNIC, s.NICBps},
			Link{n.NICRx(k), KindNIC, s.NICBps},
		)
	}
	return out
}

// --- path construction ---

// GPUToHostLinks returns the link path for staging data from GPU g to host
// memory: the GPU's own x16 link, then its switch's shared host uplink.
func (n *Node) GPUToHostLinks(g int) []LinkID { return n.names().gpuToHost[g] }

// HostToGPULinks is the reverse of GPUToHostLinks.
func (n *Node) HostToGPULinks(g int) []LinkID { return n.names().hostToGPU[g] }

// PCIeP2PLinks returns the PCIe peer-to-peer path GPU i → GPU j. Under the
// same switch, traffic stays below the switch (both x16 links only); across
// switches it additionally crosses both host uplinks.
func (n *Node) PCIeP2PLinks(i, j int) []LinkID { return n.names().p2p[i][j] }

// NVLinkPathLinks converts a GPU-hop sequence (e.g. [4 6 7 1]) into link IDs.
// On switched fabrics only direct two-GPU sequences are valid.
func (n *Node) NVLinkPathLinks(gpus []int) []LinkID {
	if len(gpus) < 2 {
		return nil
	}
	if n.Spec.Switched {
		if len(gpus) != 2 {
			panic("topology: multi-hop NVLink path on a switched fabric")
		}
		return n.names().nvPair[gpus[0]][gpus[1]]
	}
	if len(gpus) == 2 {
		return n.names().nvPair[gpus[0]][gpus[1]]
	}
	out := make([]LinkID, 0, len(gpus)-1)
	for i := 0; i+1 < len(gpus); i++ {
		out = append(out, n.NVLinkTo(gpus[i], gpus[i+1]))
	}
	return out
}

// NVLinkPairLinks is the single-hop NVLink path a → b, served from the
// node's path cache without allocating.
func (n *Node) NVLinkPairLinks(a, b int) []LinkID { return n.names().nvPair[a][b] }

// GPUToNICLinks returns the GPUDirect path from GPU g out through NIC k. A
// NIC under g's own PCIe switch is reached peer-to-peer over g's x16 link; a
// NIC under another switch additionally crosses both host uplinks.
func (n *Node) GPUToNICLinks(g, k int) []LinkID { return n.names().gpuToNIC[g][k] }

// NICToGPULinks is the receive-side mirror of GPUToNICLinks.
func (n *Node) NICToGPULinks(k, g int) []LinkID { return n.names().nicToGPU[k][g] }

// NVLinkPaths enumerates simple NVLink paths from src to dst with at most
// maxHops hops (maxHops=1 yields only the direct path). Paths are returned
// as GPU sequences sorted by (length, lexicographic order) for determinism.
// On switched fabrics the single switch path is returned.
func (n *Node) NVLinkPaths(src, dst, maxHops int) [][]int {
	s := n.Spec
	if src == dst {
		return nil
	}
	if s.Switched {
		return [][]int{{src, dst}}
	}
	key := pathKey{src, dst, maxHops}
	if cached, ok := n.pathCache[key]; ok {
		return cached
	}
	var paths [][]int
	visited := make([]bool, s.NumGPUs)
	visited[src] = true
	var dfs func(cur int, path []int)
	dfs = func(cur int, path []int) {
		if len(path)-1 > maxHops {
			return
		}
		if cur == dst {
			cp := make([]int, len(path))
			copy(cp, path)
			paths = append(paths, cp)
			return
		}
		if len(path)-1 == maxHops {
			return
		}
		for next := 0; next < s.NumGPUs; next++ {
			if !visited[next] && s.NVAdj[cur][next] > 0 {
				visited[next] = true
				dfs(next, append(path, next))
				visited[next] = false
			}
		}
	}
	dfs(src, []int{src})
	sort.Slice(paths, func(a, b int) bool {
		pa, pb := paths[a], paths[b]
		if len(pa) != len(pb) {
			return len(pa) < len(pb)
		}
		for i := range pa {
			if pa[i] != pb[i] {
				return pa[i] < pb[i]
			}
		}
		return false
	})
	if n.pathCache == nil {
		n.pathCache = make(map[pathKey][][]int)
	}
	n.pathCache[key] = paths
	return paths
}

// PathBandwidth returns the bottleneck NVLink bandwidth of a GPU-hop path.
func (n *Node) PathBandwidth(gpus []int) float64 {
	s := n.Spec
	if len(gpus) < 2 {
		return 0
	}
	min := -1.0
	for i := 0; i+1 < len(gpus); i++ {
		b := s.NVLinkBps(gpus[i], gpus[i+1])
		if b == 0 {
			return 0
		}
		if min < 0 || b < min {
			min = b
		}
	}
	return min
}
