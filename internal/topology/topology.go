// Package topology models GPU server and cluster interconnect topologies:
// NVLink meshes and NVSwitch fabrics, PCIe switches shared between GPUs, and
// NICs, with per-direction link bandwidths.
//
// A topology is a directed graph of capacity-annotated links. Higher layers
// (netsim, xfer) treat a transfer as a flow over an ordered list of LinkIDs;
// this package owns the naming of those links and the enumeration of paths
// between endpoints (GPU↔GPU over NVLink, GPU↔host over PCIe, GPU↔NIC for
// GPUDirect-RDMA-style cross-node transfers).
package topology

import (
	"fmt"
	"sort"
)

// GB is one gigabyte in bytes.
const GB = int64(1) << 30

// GBps converts GB/s to bytes per second.
func GBps(x float64) float64 { return x * 1e9 }

// Gbps converts Gb/s (network convention) to bytes per second.
func Gbps(x float64) float64 { return x * 1e9 / 8 }

// LinkID names one directed link in the cluster graph.
type LinkID string

// Kind classifies a link.
type Kind int

const (
	// KindNVLink is a direct GPU-to-GPU NVLink connection (mesh topologies).
	KindNVLink Kind = iota
	// KindNVSwitchPort is a GPU's injection/ejection port into an NVSwitch
	// fabric (switched topologies).
	KindNVSwitchPort
	// KindPCIeGPU is a GPU's own PCIe x16 link to its PCIe switch.
	KindPCIeGPU
	// KindPCIeSwitch is a PCIe switch's uplink to the host root complex;
	// GPUs sharing a switch share this link.
	KindPCIeSwitch
	// KindNIC is a network interface's tx or rx side.
	KindNIC
)

func (k Kind) String() string {
	switch k {
	case KindNVLink:
		return "nvlink"
	case KindNVSwitchPort:
		return "nvswitch-port"
	case KindPCIeGPU:
		return "pcie-gpu"
	case KindPCIeSwitch:
		return "pcie-switch"
	case KindNIC:
		return "nic"
	}
	return "unknown"
}

// Link is one directed, capacity-annotated edge.
type Link struct {
	ID   LinkID
	Kind Kind
	Bps  float64 // capacity in bytes per second
}

// Spec describes one GPU server model.
type Spec struct {
	Name    string
	NumGPUs int

	GPUMemBytes  int64
	HostMemBytes int64

	// NVAdj[i][j] is the direct NVLink bandwidth between GPU i and GPU j in
	// bytes/s per direction (0 = no direct NVLink). It must be symmetric.
	// Ignored when Switched is true.
	NVAdj [][]float64

	// Switched marks an NVSwitch fabric: every GPU pair communicates at
	// SwitchPortBps through the switch, and there is no multi-hop NVLink
	// routing (the switch is the single path).
	Switched      bool
	SwitchPortBps float64

	// PCIeGroup[i] is the PCIe switch index GPU i attaches to.
	PCIeGroup []int
	// PCIeBps is the per-direction bandwidth of both a GPU's x16 link and a
	// switch's host uplink.
	PCIeBps float64

	// NICCount NICs of NICBps each; NICGroup[k] is the PCIe switch NIC k
	// attaches to, and GPUNIC[i] is GPU i's nearest NIC.
	NICCount int
	NICBps   float64
	NICGroup []int
	GPUNIC   []int
}

// Validate checks internal consistency.
func (s *Spec) Validate() error {
	if s.NumGPUs <= 0 {
		return fmt.Errorf("topology %s: NumGPUs = %d", s.Name, s.NumGPUs)
	}
	if len(s.PCIeGroup) != s.NumGPUs {
		return fmt.Errorf("topology %s: PCIeGroup has %d entries, want %d", s.Name, len(s.PCIeGroup), s.NumGPUs)
	}
	if len(s.GPUNIC) != s.NumGPUs {
		return fmt.Errorf("topology %s: GPUNIC has %d entries, want %d", s.Name, len(s.GPUNIC), s.NumGPUs)
	}
	if len(s.NICGroup) != s.NICCount {
		return fmt.Errorf("topology %s: NICGroup has %d entries, want %d", s.Name, len(s.NICGroup), s.NICCount)
	}
	for i, k := range s.GPUNIC {
		if k < 0 || k >= s.NICCount {
			return fmt.Errorf("topology %s: GPU %d nearest NIC %d out of range", s.Name, i, k)
		}
	}
	if !s.Switched {
		if len(s.NVAdj) != s.NumGPUs {
			return fmt.Errorf("topology %s: NVAdj has %d rows, want %d", s.Name, len(s.NVAdj), s.NumGPUs)
		}
		for i := range s.NVAdj {
			if len(s.NVAdj[i]) != s.NumGPUs {
				return fmt.Errorf("topology %s: NVAdj row %d has %d cols", s.Name, i, len(s.NVAdj[i]))
			}
			for j := range s.NVAdj[i] {
				if s.NVAdj[i][j] != s.NVAdj[j][i] {
					return fmt.Errorf("topology %s: NVAdj not symmetric at (%d,%d)", s.Name, i, j)
				}
				if i == j && s.NVAdj[i][j] != 0 {
					return fmt.Errorf("topology %s: NVAdj self loop at %d", s.Name, i)
				}
			}
		}
	}
	return nil
}

// NVLinkBps returns the direct NVLink bandwidth between GPUs i and j in
// bytes/s per direction, or 0 if they are not directly connected. On switched
// fabrics every distinct pair is connected at the port bandwidth.
func (s *Spec) NVLinkBps(i, j int) float64 {
	if i == j {
		return 0
	}
	if s.Switched {
		return s.SwitchPortBps
	}
	return s.NVAdj[i][j]
}

// HasNVLink reports whether the topology has any NVLink connectivity at all.
func (s *Spec) HasNVLink() bool {
	if s.Switched {
		return s.SwitchPortBps > 0
	}
	for i := range s.NVAdj {
		for _, b := range s.NVAdj[i] {
			if b > 0 {
				return true
			}
		}
	}
	return false
}

// SwitchPeers returns the GPUs (other than g) that share g's PCIe switch.
func (s *Spec) SwitchPeers(g int) []int {
	var peers []int
	for i := 0; i < s.NumGPUs; i++ {
		if i != g && s.PCIeGroup[i] == s.PCIeGroup[g] {
			peers = append(peers, i)
		}
	}
	return peers
}

// nvlinkMesh builds a symmetric adjacency matrix from (i, j, GB/s) triples.
func nvlinkMesh(n int, edges [][3]float64) [][]float64 {
	adj := make([][]float64, n)
	for i := range adj {
		adj[i] = make([]float64, n)
	}
	for _, e := range edges {
		i, j := int(e[0]), int(e[1])
		adj[i][j] = GBps(e[2])
		adj[j][i] = GBps(e[2])
	}
	return adj
}

// DGXV100 returns the asymmetric hybrid-cube-mesh topology of a DGX-V100
// (p3.16xlarge-style) server: 8 GPUs with 6 NVLink2 bricks each (24 GB/s per
// brick per direction), two fully connected quads with doubled diagonals and
// doubled cube edges, 4 PCIe switches each shared by two GPUs, and 4×100 Gb
// NICs (one per switch).
//
// The resulting pair distribution matches the paper's Fig. 6(a): 8/28 pairs
// (28%) have a single brick (half bandwidth), 12/28 (42%) have no direct
// NVLink, and the rest have two bricks.
func DGXV100() *Spec {
	edges := [][3]float64{
		// quad 0: full mesh, diagonals doubled
		{0, 1, 24}, {0, 2, 24}, {0, 3, 48},
		{1, 2, 48}, {1, 3, 24},
		{2, 3, 24},
		// quad 1: mirror of quad 0
		{4, 5, 24}, {4, 6, 24}, {4, 7, 48},
		{5, 6, 48}, {5, 7, 24},
		{6, 7, 24},
		// cube edges between quads, doubled
		{0, 4, 48}, {1, 5, 48}, {2, 6, 48}, {3, 7, 48},
	}
	return &Spec{
		Name:         "dgx-v100",
		NumGPUs:      8,
		GPUMemBytes:  16 * GB,
		HostMemBytes: 244 * GB,
		NVAdj:        nvlinkMesh(8, edges),
		PCIeGroup:    []int{0, 0, 1, 1, 2, 2, 3, 3},
		PCIeBps:      GBps(12), // PCIe 3.0 x16 effective
		NICCount:     4,
		NICBps:       Gbps(100),
		NICGroup:     []int{0, 1, 2, 3},
		GPUNIC:       []int{0, 0, 1, 1, 2, 2, 3, 3},
	}
}

// DGXA100 returns the NVSwitch topology of a DGX-A100 (p4d.24xlarge-style)
// server: 8 GPUs all-to-all at 300 GB/s through NVSwitch, PCIe 4.0, and
// 8×200 Gb NICs (one per GPU, two per PCIe switch).
func DGXA100() *Spec {
	return &Spec{
		Name:          "dgx-a100",
		NumGPUs:       8,
		GPUMemBytes:   40 * GB,
		HostMemBytes:  1152 * GB,
		Switched:      true,
		SwitchPortBps: GBps(300),
		PCIeGroup:     []int{0, 0, 1, 1, 2, 2, 3, 3},
		PCIeBps:       GBps(24), // PCIe 4.0 x16 effective
		NICCount:      8,
		NICBps:        Gbps(200),
		NICGroup:      []int{0, 0, 1, 1, 2, 2, 3, 3},
		GPUNIC:        []int{0, 1, 2, 3, 4, 5, 6, 7},
	}
}

// H800x8 returns an 8×H800 node as used for the LLM experiments: NVSwitch at
// 200 GB/s per port and 8×200 Gb NICs.
func H800x8() *Spec {
	return &Spec{
		Name:          "h800x8",
		NumGPUs:       8,
		GPUMemBytes:   80 * GB,
		HostMemBytes:  2048 * GB,
		Switched:      true,
		SwitchPortBps: GBps(200),
		PCIeGroup:     []int{0, 0, 1, 1, 2, 2, 3, 3},
		PCIeBps:       GBps(50), // PCIe 5.0 x16 effective
		NICCount:      8,
		NICBps:        Gbps(200),
		NICGroup:      []int{0, 0, 1, 1, 2, 2, 3, 3},
		GPUNIC:        []int{0, 1, 2, 3, 4, 5, 6, 7},
	}
}

// QuadA10 returns a 4×A10 server with no NVLink: all GPU-to-GPU traffic
// crosses PCIe through the host root complex.
func QuadA10() *Spec {
	adj := make([][]float64, 4)
	for i := range adj {
		adj[i] = make([]float64, 4)
	}
	return &Spec{
		Name:         "quad-a10",
		NumGPUs:      4,
		GPUMemBytes:  24 * GB,
		HostMemBytes: 256 * GB,
		NVAdj:        adj,
		PCIeGroup:    []int{0, 1, 2, 3},
		PCIeBps:      GBps(20), // PCIe 4.0 x16 effective
		NICCount:     2,
		NICBps:       Gbps(100),
		NICGroup:     []int{0, 2},
		GPUNIC:       []int{0, 0, 1, 1},
	}
}

// SpecByName returns the named builtin spec, or nil.
func SpecByName(name string) *Spec {
	switch name {
	case "dgx-v100":
		return DGXV100()
	case "dgx-a100":
		return DGXA100()
	case "h800x8":
		return H800x8()
	case "quad-a10":
		return QuadA10()
	}
	return nil
}

// PairClass classifies a GPU pair's direct connectivity.
type PairClass int

const (
	// PairNoNVLink means the pair must use PCIe (or multi-hop NVLink).
	PairNoNVLink PairClass = iota
	// PairSingle is a single-brick (half-bandwidth) NVLink pair.
	PairSingle
	// PairDouble is a double-brick (full-bandwidth) NVLink pair.
	PairDouble
)

// PairClasses returns, for every unordered GPU pair, its connectivity class,
// using the maximum per-pair NVLink bandwidth in the spec as "full".
func (s *Spec) PairClasses() map[PairClass]int {
	max := 0.0
	for i := 0; i < s.NumGPUs; i++ {
		for j := i + 1; j < s.NumGPUs; j++ {
			if b := s.NVLinkBps(i, j); b > max {
				max = b
			}
		}
	}
	out := map[PairClass]int{}
	for i := 0; i < s.NumGPUs; i++ {
		for j := i + 1; j < s.NumGPUs; j++ {
			switch b := s.NVLinkBps(i, j); {
			case b == 0:
				out[PairNoNVLink]++
			case b < max:
				out[PairSingle]++
			default:
				out[PairDouble]++
			}
		}
	}
	return out
}

// NVNeighbors returns GPUs directly connected to g by NVLink, sorted.
func (s *Spec) NVNeighbors(g int) []int {
	var out []int
	for j := 0; j < s.NumGPUs; j++ {
		if s.NVLinkBps(g, j) > 0 {
			out = append(out, j)
		}
	}
	sort.Ints(out)
	return out
}
