package topology

import "fmt"

// linkNames caches every link ID a node can mint, plus the canonical link
// paths derived from them. Link IDs are formatted strings; before this cache
// each transfer's path construction re-formatted every ID on the route, which
// dominated the data plane's allocation profile at replay scale. The tables
// are built once per node, lazily, and the cached path slices are exact-sized
// (cap == len), so callers appending to a returned path always copy instead
// of clobbering the cache.
type linkNames struct {
	nvTo      [][]LinkID // mesh NVLink i→j (only meaningful where NVAdj > 0)
	nvPortOut []LinkID
	nvPortIn  []LinkID
	pcieUp    []LinkID
	pcieDown  []LinkID
	swUp      []LinkID
	swDown    []LinkID
	nicTx     []LinkID
	nicRx     []LinkID

	gpuToHost [][]LinkID   // [g]
	hostToGPU [][]LinkID   // [g]
	p2p       [][][]LinkID // [i][j]
	gpuToNIC  [][][]LinkID // [g][k]
	nicToGPU  [][][]LinkID // [k][g]
	nvPair    [][][]LinkID // [a][b] two-GPU NVLink hop
}

// names returns the node's link-name cache, building it on first use.
func (n *Node) names() *linkNames {
	if n.ln != nil {
		return n.ln
	}
	s := n.Spec
	ln := &linkNames{}

	ln.nvTo = make([][]LinkID, s.NumGPUs)
	ln.nvPair = make([][][]LinkID, s.NumGPUs)
	for i := 0; i < s.NumGPUs; i++ {
		ln.nvTo[i] = make([]LinkID, s.NumGPUs)
		ln.nvPair[i] = make([][]LinkID, s.NumGPUs)
		for j := 0; j < s.NumGPUs; j++ {
			ln.nvTo[i][j] = LinkID(fmt.Sprintf("n%d.nv.%d>%d", n.ID, i, j))
		}
	}
	ln.nvPortOut = make([]LinkID, s.NumGPUs)
	ln.nvPortIn = make([]LinkID, s.NumGPUs)
	ln.pcieUp = make([]LinkID, s.NumGPUs)
	ln.pcieDown = make([]LinkID, s.NumGPUs)
	for g := 0; g < s.NumGPUs; g++ {
		ln.nvPortOut[g] = LinkID(fmt.Sprintf("n%d.nvsw.g%d.out", n.ID, g))
		ln.nvPortIn[g] = LinkID(fmt.Sprintf("n%d.nvsw.g%d.in", n.ID, g))
		ln.pcieUp[g] = LinkID(fmt.Sprintf("n%d.pcie.g%d.up", n.ID, g))
		ln.pcieDown[g] = LinkID(fmt.Sprintf("n%d.pcie.g%d.down", n.ID, g))
	}
	groups := 0
	for _, g := range s.PCIeGroup {
		if g+1 > groups {
			groups = g + 1
		}
	}
	for _, g := range s.NICGroup {
		if g+1 > groups {
			groups = g + 1
		}
	}
	ln.swUp = make([]LinkID, groups)
	ln.swDown = make([]LinkID, groups)
	for sw := 0; sw < groups; sw++ {
		ln.swUp[sw] = LinkID(fmt.Sprintf("n%d.pcie.sw%d.up", n.ID, sw))
		ln.swDown[sw] = LinkID(fmt.Sprintf("n%d.pcie.sw%d.down", n.ID, sw))
	}
	ln.nicTx = make([]LinkID, s.NICCount)
	ln.nicRx = make([]LinkID, s.NICCount)
	for k := 0; k < s.NICCount; k++ {
		ln.nicTx[k] = LinkID(fmt.Sprintf("n%d.nic%d.tx", n.ID, k))
		ln.nicRx[k] = LinkID(fmt.Sprintf("n%d.nic%d.rx", n.ID, k))
	}

	ln.gpuToHost = make([][]LinkID, s.NumGPUs)
	ln.hostToGPU = make([][]LinkID, s.NumGPUs)
	for g := 0; g < s.NumGPUs; g++ {
		ln.gpuToHost[g] = []LinkID{ln.pcieUp[g], ln.swUp[s.PCIeGroup[g]]}
		ln.hostToGPU[g] = []LinkID{ln.swDown[s.PCIeGroup[g]], ln.pcieDown[g]}
	}
	ln.p2p = make([][][]LinkID, s.NumGPUs)
	for i := 0; i < s.NumGPUs; i++ {
		ln.p2p[i] = make([][]LinkID, s.NumGPUs)
		for j := 0; j < s.NumGPUs; j++ {
			if s.PCIeGroup[i] == s.PCIeGroup[j] {
				ln.p2p[i][j] = []LinkID{ln.pcieUp[i], ln.pcieDown[j]}
			} else {
				ln.p2p[i][j] = []LinkID{
					ln.pcieUp[i], ln.swUp[s.PCIeGroup[i]],
					ln.swDown[s.PCIeGroup[j]], ln.pcieDown[j],
				}
			}
			if s.Switched {
				ln.nvPair[i][j] = []LinkID{ln.nvPortOut[i], ln.nvPortIn[j]}
			} else {
				ln.nvPair[i][j] = []LinkID{ln.nvTo[i][j]}
			}
		}
	}
	ln.gpuToNIC = make([][][]LinkID, s.NumGPUs)
	for g := 0; g < s.NumGPUs; g++ {
		ln.gpuToNIC[g] = make([][]LinkID, s.NICCount)
		for k := 0; k < s.NICCount; k++ {
			if s.NICGroup[k] == s.PCIeGroup[g] {
				ln.gpuToNIC[g][k] = []LinkID{ln.pcieUp[g], ln.nicTx[k]}
			} else {
				ln.gpuToNIC[g][k] = []LinkID{
					ln.pcieUp[g], ln.swUp[s.PCIeGroup[g]],
					ln.swDown[s.NICGroup[k]], ln.nicTx[k],
				}
			}
		}
	}
	ln.nicToGPU = make([][][]LinkID, s.NICCount)
	for k := 0; k < s.NICCount; k++ {
		ln.nicToGPU[k] = make([][]LinkID, s.NumGPUs)
		for g := 0; g < s.NumGPUs; g++ {
			if s.NICGroup[k] == s.PCIeGroup[g] {
				ln.nicToGPU[k][g] = []LinkID{ln.nicRx[k], ln.pcieDown[g]}
			} else {
				ln.nicToGPU[k][g] = []LinkID{
					ln.nicRx[k], ln.swUp[s.NICGroup[k]],
					ln.swDown[s.PCIeGroup[g]], ln.pcieDown[g],
				}
			}
		}
	}

	n.ln = ln
	return ln
}
