package cluster

import (
	"errors"
	"testing"
	"time"

	"grouter/internal/obs"
	"grouter/internal/scheduler"
	"grouter/internal/sim"
	"grouter/internal/topology"
	"grouter/internal/workflow"
)

// scriptedAdmission deploys the traffic workflow with breakdown accounting
// and an Admit hook scripted per request Session:
//
//	session 1 — run immediately
//	session 2 — defer 5ms twice, then run (10ms of delay-queue time)
//	session 3 — defer 5ms once, then shed
//	session 4 — shed on first attempt (Submit must return ErrSLOShed)
func scriptedAdmission(e *sim.Engine) (*App, *Breakdown) {
	c := New(e, topology.DGXV100(), 1, grouterPlane)
	app := c.Deploy(workflow.Traffic(), 0, scheduler.Options{Node: -1})
	bd := app.EnableBreakdown()
	app.Admit = func(req Request, waited time.Duration) (AdmitAction, time.Duration) {
		switch req.Session {
		case 2:
			if waited < 10*time.Millisecond {
				return AdmitDefer, 5 * time.Millisecond
			}
		case 3:
			if waited == 0 {
				return AdmitDefer, 5 * time.Millisecond
			}
			return AdmitShed, 0
		case 4:
			return AdmitShed, 0
		}
		return AdmitRun, 0
	}
	return app, bd
}

// TestAdmissionBreakdownTiles: deferred and shed requests must still tile in
// the critical-path breakdown — a deferred request's delay-queue time lands
// in the defer-wait bucket and its bucket sum still equals E2E exactly; a
// shed request gets a single shed bucket spanning submission to drop.
func TestAdmissionBreakdownTiles(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	app, bd := scriptedAdmission(e)
	if _, err := app.Submit(Request{Session: 1}); err != nil {
		t.Fatalf("Submit(run): %v", err)
	}
	if _, err := app.Submit(Request{Session: 2}); err != nil {
		t.Fatalf("Submit(defer): %v", err)
	}
	if _, err := app.Submit(Request{Session: 3}); err != nil {
		t.Fatalf("Submit(defer-shed): %v", err)
	}
	if _, err := app.Submit(Request{Session: 4}); !errors.Is(err, ErrSLOShed) {
		t.Fatalf("Submit(immediate shed) error = %v, want ErrSLOShed", err)
	}
	e.Run(0)
	if app.Completed != 2 {
		t.Fatalf("completed %d requests, want 2 (sessions 1 and 2)", app.Completed)
	}
	if app.Shed != 2 {
		t.Fatalf("App.Shed = %d, want 2 (sessions 3 and 4)", app.Shed)
	}
	if len(bd.Requests) != 4 {
		t.Fatalf("breakdown recorded %d entries, want 4 (completions and sheds)", len(bd.Requests))
	}
	var deferred, shedWait, shedNow *RequestBreakdown
	for i := range bd.Requests {
		rb := &bd.Requests[i]
		if diff := rb.E2E() - rb.Sum(); diff < -time.Microsecond || diff > time.Microsecond {
			t.Errorf("seq %d: bucket sum %v != E2E %v", rb.Seq, rb.Sum(), rb.E2E())
		}
		switch {
		case rb.Buckets[obs.CatDeferWait] > 0:
			deferred = rb
		case rb.Buckets[obs.CatShed] > 0:
			shedWait = rb
		case rb.E2E() == 0 && rb.Buckets[obs.CatShed] == 0 && rb.Sum() == 0:
			shedNow = rb
		}
	}
	if deferred == nil {
		t.Fatal("no breakdown entry carries defer-wait time")
	}
	if got, want := deferred.Buckets[obs.CatDeferWait], 10*time.Millisecond; got != want {
		t.Errorf("defer-wait bucket = %v, want %v (two 5ms deferrals)", got, want)
	}
	if shedWait == nil {
		t.Fatal("no breakdown entry for the deferred-then-shed request")
	}
	if got, want := shedWait.Buckets[obs.CatShed], 5*time.Millisecond; got != want {
		t.Errorf("shed bucket = %v, want %v (submission to drop)", got, want)
	}
	if shedWait.Sum() != shedWait.Buckets[obs.CatShed] {
		t.Errorf("shed entry has extra buckets: sum %v, shed %v", shedWait.Sum(), shedWait.Buckets[obs.CatShed])
	}
	if shedNow == nil {
		t.Error("immediate shed left no zero-length breakdown entry")
	}
}

// TestDeferredShedFiresCompletion: a closed-loop submitter waiting on a
// request that is deferred and then shed must wake up — the drop fires the
// completion signal instead of leaving the waiter hung forever.
func TestDeferredShedFiresCompletion(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	app, _ := scriptedAdmission(e)
	woke := false
	e.Go("closed-loop", func(p *sim.Proc) {
		app.submit(Request{Session: 3}).Wait(p)
		woke = true
	})
	e.Run(0)
	if !woke {
		t.Fatal("waiter never woke after its request was shed")
	}
	if app.Shed != 1 || app.ShedByClass[QoSLow] != 1 {
		t.Fatalf("Shed/ShedByClass[low] = %d/%d, want 1/1", app.Shed, app.ShedByClass[QoSLow])
	}
}

// TestPerClassLatencyAccounting: completions land in the per-class E2E
// histograms by QoS, alongside the aggregate one.
func TestPerClassLatencyAccounting(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	c := New(e, topology.DGXV100(), 1, grouterPlane)
	app := c.Deploy(workflow.Traffic(), 0, scheduler.Options{Node: -1})
	e.Go("driver", func(p *sim.Proc) {
		app.submit(Request{}).Wait(p)
		app.submit(Request{QoS: QoSHigh}).Wait(p)
		app.submit(Request{QoS: QoSHigh}).Wait(p)
	})
	e.Run(0)
	if lo, hi := app.E2EClass[QoSLow].Count(), app.E2EClass[QoSHigh].Count(); lo != 1 || hi != 2 {
		t.Fatalf("per-class counts low=%d high=%d, want 1/2", lo, hi)
	}
	if app.E2E.Count() != 3 {
		t.Fatalf("aggregate count %d, want 3", app.E2E.Count())
	}
}
