package cluster

import (
	"testing"
	"time"

	"grouter/internal/core"
	"grouter/internal/dataplane"
	"grouter/internal/fabric"
	"grouter/internal/scheduler"
	"grouter/internal/sim"
	"grouter/internal/topology"
	"grouter/internal/trace"
	"grouter/internal/workflow"
)

// TestAllSpecsRunAllWorkflows is the wide integration sweep: every builtin
// topology runs every CNN workflow on GROUTER to completion.
func TestAllSpecsRunAllWorkflows(t *testing.T) {
	for _, spec := range []*topology.Spec{
		topology.DGXV100(), topology.DGXA100(), topology.QuadA10(), topology.H800x8(),
	} {
		for _, wf := range workflow.Suite() {
			e := sim.NewEngine()
			c := New(e, spec, 1, grouterPlane)
			app := c.Deploy(wf, 0, scheduler.Options{Node: 0})
			e.Go("driver", func(p *sim.Proc) {
				for i := 0; i < 3; i++ {
					app.submit(Request{}).Wait(p)
				}
			})
			e.Run(0)
			e.Close()
			if app.Completed != 3 {
				t.Errorf("%s/%s: completed %d of 3", spec.Name, wf.Name, app.Completed)
			}
		}
	}
}

// TestNoStorageLeakAfterTrace checks that after a full trace-driven run the
// GROUTER store holds no live data (everything freed by ref counting).
func TestNoStorageLeakAfterTrace(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	var pl *core.Plane
	c := New(e, topology.DGXV100(), 1, func(f *fabric.Fabric) dataplane.Plane {
		pl = core.New(f, core.FullConfig())
		return pl
	})
	app := c.Deploy(workflow.Traffic(), 0, scheduler.Options{Node: 0})
	app.RunTrace(trace.Generate(trace.Spec{
		Pattern: trace.Bursty, Duration: 8 * time.Second, MeanRPS: 10, Seed: 12,
	}))
	if used := pl.Store(0).TotalUsed(); used != 0 {
		t.Errorf("storage holds %d bytes after the trace drained", used)
	}
	// Host memory holds no leaked intermediate data either (ingress objects
	// are freed by their consumers).
	if hostUsed := c.Fabric.NodeF(0).Host.Used(); hostUsed != 0 {
		t.Errorf("host memory holds %d leaked bytes", hostUsed)
	}
}

// TestClusterDeterminism runs the same traced workload twice and demands
// bit-identical latency profiles.
func TestClusterDeterminism(t *testing.T) {
	run := func() []time.Duration {
		e := sim.NewEngine()
		defer e.Close()
		c := New(e, topology.DGXV100(), 1, grouterPlane)
		app := c.Deploy(workflow.Image(), 0, scheduler.Options{Node: 0, Seed: 4})
		app.RunTrace(trace.Generate(trace.Spec{
			Pattern: trace.Periodic, Duration: 5 * time.Second, MeanRPS: 12, Seed: 4,
		}))
		return app.E2E.Samples()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("sample counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("latency %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestSpatialSharingIncreasesThroughput checks NewSpatial semantics.
func TestSpatialSharingIncreasesThroughput(t *testing.T) {
	tput := func(slots int) float64 {
		e := sim.NewEngine()
		defer e.Close()
		c := NewSpatial(e, topology.DGXV100(), 1, slots, grouterPlane)
		app := c.Deploy(workflow.Image(), 0, scheduler.Options{Node: 0})
		return app.MeasureThroughput(16, 4*time.Second)
	}
	if t1, t2 := tput(1), tput(2); !(t2 > t1) {
		t.Errorf("spatial sharing did not increase throughput: %v vs %v", t1, t2)
	}
}

// TestConcurrentAppsShareCluster deploys all four workflows on one cluster
// and drives them simultaneously.
func TestConcurrentAppsShareCluster(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	c := New(e, topology.DGXV100(), 1, grouterPlane)
	var apps []*App
	for _, wf := range workflow.Suite() {
		apps = append(apps, c.Deploy(wf, 0, scheduler.Options{Node: 0}))
	}
	for i, app := range apps {
		app := app
		for _, at := range trace.Generate(trace.Spec{
			Pattern: trace.Sporadic, Duration: 5 * time.Second, MeanRPS: 3, Seed: int64(i),
		}) {
			at := at
			e.Schedule(at, func() { app.submit(Request{}) })
		}
	}
	e.Run(0)
	for i, app := range apps {
		if app.Completed == 0 {
			t.Errorf("app %d (%s) completed nothing", i, app.WF.Name)
		}
	}
}

// TestBatchOverride checks per-deployment batch sizing.
func TestBatchOverride(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	c := New(e, topology.DGXV100(), 1, grouterPlane)
	small := c.Deploy(workflow.Driving(), 1, scheduler.Options{Node: 0})
	big := c.Deploy(workflow.Driving(), 32, scheduler.Options{Node: 0})
	e.Go("driver", func(p *sim.Proc) {
		small.submit(Request{}).Wait(p)
		big.submit(Request{}).Wait(p)
	})
	e.Run(0)
	if !(big.E2E.Mean() > small.E2E.Mean()) {
		t.Errorf("batch 32 (%v) should be slower than batch 1 (%v)", big.E2E.Mean(), small.E2E.Mean())
	}
}
