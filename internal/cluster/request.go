package cluster

import (
	"errors"
	"fmt"

	"grouter/internal/sim"
)

// Typed request submission. The request-facing API had accreted ad-hoc
// knobs — Invoke, InvokeQoS, ReplayOptions.HighEvery — each carrying one
// attribute through its own entry point. Request folds every per-request
// attribute into one typed descriptor and Submit/Replay make it the single
// submission path; the old entry points survive as thin byte-compatible
// shims over it.

// Typed error sentinels for request and replay validation. Callers branch
// with errors.Is instead of matching message strings.
var (
	// ErrBadRequest: a Request field is out of range (negative batch, prompt,
	// output length or session, or an unknown PD mode).
	ErrBadRequest = errors.New("cluster: invalid request")
	// ErrNegativeHighEvery: ReplayOptions.HighEvery < 0 (a mix of "every
	// minus-n-th request" has no meaning; zero disables the mix).
	ErrNegativeHighEvery = errors.New("cluster: ReplayOptions.HighEvery must be >= 0")
	// ErrNegativeQuantum: a replay admission quantum < 0 (zero means exact
	// per-arrival admission; negative used to silently alias it).
	ErrNegativeQuantum = errors.New("cluster: replay quantum must be >= 0")
	// ErrNilTrace: a replay was handed a nil arrival trace (an empty non-nil
	// trace is a valid no-op replay).
	ErrNilTrace = errors.New("cluster: nil arrival trace")
)

// Request is the typed descriptor of one submitted request — the single
// submission path through façade, cluster, and router. Workflow apps consume
// Batch and QoS; LLM services additionally consume PromptTokens, OutTokens,
// Session, PD, and Model. The zero value is a valid default request
// everywhere.
type Request struct {
	// Batch overrides the app's deployed batch size; 0 uses the default.
	// LLM services ignore it.
	Batch int
	// QoS is the priority class carried into every GPU compute-slot
	// acquisition of the request.
	QoS QoS
	// PromptTokens is the LLM prompt length; it drives prefill time, KV-cache
	// size, and the PD routing policy's long-prompt split. 0 uses the
	// service default.
	PromptTokens int
	// OutTokens is the LLM output length (decode tokens). 0 uses the service
	// default.
	OutTokens int
	// Session groups requests of one conversation: the PD routing policy
	// pins a session's decode phases to one worker so its KV state stays
	// put. 0 means no session.
	Session int64
	// PD selects the prefill/decode placement mode; PDAuto (the zero value)
	// lets the routing policy decide.
	PD PDMode
	// Model names the target LLM for model-checked services; empty means the
	// service's deployed model. Workflow apps ignore it.
	Model string
}

// Validate reports the first out-of-range field as a typed error wrapping
// ErrBadRequest.
func (r Request) Validate() error {
	switch {
	case r.Batch < 0:
		return fmt.Errorf("%w: negative batch %d", ErrBadRequest, r.Batch)
	case r.QoS < QoSLow || r.QoS > QoSHigh:
		return fmt.Errorf("%w: unknown QoS class %d", ErrBadRequest, r.QoS)
	case r.PromptTokens < 0:
		return fmt.Errorf("%w: negative prompt length %d", ErrBadRequest, r.PromptTokens)
	case r.OutTokens < 0:
		return fmt.Errorf("%w: negative output length %d", ErrBadRequest, r.OutTokens)
	case r.Session < 0:
		return fmt.Errorf("%w: negative session id %d", ErrBadRequest, r.Session)
	case r.PD < PDAuto || r.PD > PDDisaggregated:
		return fmt.Errorf("%w: unknown PD mode %d", ErrBadRequest, r.PD)
	}
	return nil
}

// Submit starts one request described by the typed descriptor and returns a
// signal fired at completion. It is the single submission path; Invoke and
// InvokeQoS are byte-compatible shims over it. When SLO admission control is
// installed (see AdmitFn) and sheds the request synchronously, Submit
// returns ErrSLOShed; a request shed after deferral instead fires its
// completion signal and counts in App.Shed.
func (a *App) Submit(req Request) (*sim.Signal, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	done := sim.NewSignal(a.C.Engine)
	if a.startReq(req, done) {
		return nil, ErrSLOShed
	}
	return done, nil
}
