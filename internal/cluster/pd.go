package cluster

import (
	"fmt"
	"time"

	"grouter/internal/dataplane"
	"grouter/internal/fabric"
	"grouter/internal/metrics"
	"grouter/internal/models"
	"grouter/internal/obs"
	"grouter/internal/sim"
)

// Prefill/decode disaggregated LLM serving. An LLM request has two phases
// with opposite resource shapes (models.Serve): compute-bound prefill scaled
// by the prompt and bandwidth-bound decode scaled by the output. LLMService
// runs them either colocated (both phases in one GPU hold) or disaggregated —
// prefill on one GPU, the prompt's KV cache shipped to the decode GPU through
// the cluster's data plane (so coalescing, retry/replan, crash
// re-materialization, and obs spans all apply to the handoff), then decode.
// When a disaggregated decision lands both phases on the same GPU the
// executor collapses to the colocated path: the handoff would cost zero, so
// the two plans are byte-identical by construction (the differential oracle
// in pd_test.go pins this).

// PDDecision is one routing decision: the placement mode plus the chosen
// prefill and decode workers. Colocated runs entirely on Decode.
type PDDecision struct {
	Mode    PDMode
	Prefill fabric.Location
	Decode  fabric.Location
	// Overflow marks a decision the policy downgraded to colocated because
	// PD capacity or the transfer path was saturated.
	Overflow bool
}

// PDRouteFn decides one request's placement; seq is the service-local
// admission sequence number. It runs in event context and must be
// deterministic in virtual time. The PD router (internal/router) installs
// its policy here; without one the service round-robins.
type PDRouteFn func(req *Request, seq int64) PDDecision

// PDConfig sizes a DeployLLM service.
type PDConfig struct {
	// LLM is the served model (required).
	LLM *models.LLM
	// TP is the tensor-parallel degree per phase (0/1 = single GPU).
	TP int
	// PrefillWorkers/DecodeWorkers/MixedWorkers partition the cluster's GPUs
	// node-major: prefill pool first, then decode, then mixed (colocated)
	// workers. Prefill and decode counts must be both zero (pure colocated
	// service) or both positive.
	PrefillWorkers int
	DecodeWorkers  int
	MixedWorkers   int
	// DefaultPromptTokens/DefaultOutTokens replace zero Request lengths
	// (defaults 512/32).
	DefaultPromptTokens int
	DefaultOutTokens    int
	// SLOScale sets a request's latency objective as a multiple of its
	// unloaded colocated service time (default 2); the KV handoff inherits
	// the remaining budget as its transfer rate floor.
	SLOScale float64
	// ZeroKV skips the data-plane handoff entirely (the KV cache ships for
	// free). It isolates transfer cost in experiments and drives the
	// zero-cost-transfer differential oracle.
	ZeroKV bool
}

// PDStats counts an LLMService's placement and handoff activity.
type PDStats struct {
	// Colocated/Disaggregated count requests by executed plan; Collapsed
	// counts disaggregated decisions that landed both phases on one GPU and
	// ran the colocated plan. Collapsed requests are also in Colocated.
	Colocated     int64
	Disaggregated int64
	Collapsed     int64
	Overflows     int64
	// Recomputes counts KV handoffs that failed (evicted, crashed, lost) and
	// fell back to recomputing prefill on the decode GPU.
	Recomputes int64
	// KVTransfers/KVBytes count successful data-plane handoffs.
	KVTransfers int64
	KVBytes     int64
}

// LLMService is one deployed LLM serving app with prefill/decode phase
// execution. Deploy one with Cluster.DeployLLM.
type LLMService struct {
	C     *Cluster
	Cfg   PDConfig
	Model models.Serve
	Name  string

	// PrefillPool/DecodePool/MixedPool are the carved GPU worker pools.
	PrefillPool []fabric.Location
	DecodePool  []fabric.Location
	MixedPool   []fabric.Location

	// Route, when non-nil, decides every request's placement (the PD router
	// installs itself here).
	Route PDRouteFn

	// E2E records request latencies, TTFT time to first output token, and
	// KVXfer the data-plane KV handoff durations (disaggregated requests
	// with a successful transfer only).
	E2E    metrics.Latency
	TTFT   metrics.Latency
	KVXfer metrics.Latency

	Completed int
	Stats     PDStats

	// OnComplete, when non-nil, observes every completion (seq, instant,
	// e2e) in event context; it must not start simulation activity.
	OnComplete func(seq int64, at, e2e time.Duration)

	seq        int64
	pending    map[fabric.Location]int
	inflightKV int
}

// DeployLLM carves the cluster's GPUs into prefill/decode/mixed pools and
// returns the serving app. The service assumes pre-warmed weights (the
// paper's default): phase costs come from models.Serve, queueing from the
// cluster's shared per-GPU compute slots.
func (c *Cluster) DeployLLM(cfg PDConfig) (*LLMService, error) {
	if cfg.LLM == nil {
		return nil, fmt.Errorf("%w: PDConfig.LLM is required", ErrBadRequest)
	}
	if cfg.PrefillWorkers < 0 || cfg.DecodeWorkers < 0 || cfg.MixedWorkers < 0 {
		return nil, fmt.Errorf("%w: negative worker count", ErrBadRequest)
	}
	if (cfg.PrefillWorkers == 0) != (cfg.DecodeWorkers == 0) {
		return nil, fmt.Errorf("%w: prefill and decode pools must be sized together (%d/%d)",
			ErrBadRequest, cfg.PrefillWorkers, cfg.DecodeWorkers)
	}
	total := cfg.PrefillWorkers + cfg.DecodeWorkers + cfg.MixedWorkers
	if total == 0 {
		return nil, fmt.Errorf("%w: no workers", ErrBadRequest)
	}
	capacity := len(c.gpus) * c.Fabric.Spec().NumGPUs
	if total > capacity {
		return nil, fmt.Errorf("%w: %d workers exceed %d cluster GPUs", ErrBadRequest, total, capacity)
	}
	if cfg.DefaultPromptTokens <= 0 {
		cfg.DefaultPromptTokens = 512
	}
	if cfg.DefaultOutTokens <= 0 {
		cfg.DefaultOutTokens = 32
	}
	if cfg.SLOScale <= 0 {
		cfg.SLOScale = 2
	}
	s := &LLMService{
		C:       c,
		Cfg:     cfg,
		Model:   models.Serve{LLM: cfg.LLM, Class: c.Class, TP: cfg.TP},
		Name:    "llm/" + cfg.LLM.Name,
		pending: map[fabric.Location]int{},
	}
	// Node-major carve: prefill pool first, then decode, then mixed.
	locs := make([]fabric.Location, 0, total)
	for node := 0; node < len(c.gpus) && len(locs) < total; node++ {
		for g := 0; g < c.Fabric.Spec().NumGPUs && len(locs) < total; g++ {
			locs = append(locs, fabric.Location{Node: node, GPU: g})
		}
	}
	s.PrefillPool = locs[:cfg.PrefillWorkers]
	s.DecodePool = locs[cfg.PrefillWorkers : cfg.PrefillWorkers+cfg.DecodeWorkers]
	s.MixedPool = locs[cfg.PrefillWorkers+cfg.DecodeWorkers:]
	return s, nil
}

// SLO is the request's latency objective: SLOScale × its unloaded colocated
// service time.
func (s *LLMService) SLO(promptTokens, outTokens int) time.Duration {
	unloaded := s.Model.Prefill(promptTokens) + s.Model.Decode(outTokens)
	return time.Duration(s.Cfg.SLOScale * float64(unloaded))
}

// Load reports one worker's admission load: compute-slot queue plus holds
// plus decided-but-not-yet-acquired picks. It is the PD routing policy's
// least-loaded signal.
func (s *LLMService) Load(loc fabric.Location) int {
	waiting, held := s.C.GPULoad(loc.Node, loc.GPU)
	return waiting + held + s.pending[loc]
}

// InflightKV reports how many KV handoffs are currently in flight on the
// data plane — the routing policy's transfer-path saturation signal.
func (s *LLMService) InflightKV() int { return s.inflightKV }

// defaultRoute is the policy used when no router is installed: mixed-pool
// round-robin for auto/colocated, pool round-robin for disaggregated, and
// the opposite pool when the requested one does not exist.
func (s *LLMService) defaultRoute(req *Request, seq int64) PDDecision {
	rr := func(pool []fabric.Location) fabric.Location {
		return pool[int(seq%int64(len(pool)))]
	}
	wantPD := req.PD == PDDisaggregated
	if req.PD == PDAuto {
		wantPD = len(s.MixedPool) == 0
	}
	if wantPD && len(s.PrefillPool) > 0 {
		return PDDecision{Mode: PDDisaggregated, Prefill: rr(s.PrefillPool), Decode: rr(s.DecodePool)}
	}
	if len(s.MixedPool) > 0 {
		return PDDecision{Mode: PDColocated, Decode: rr(s.MixedPool)}
	}
	// Colocated request on a PD-only service: run both phases on a prefill
	// worker.
	return PDDecision{Mode: PDColocated, Decode: rr(s.PrefillPool)}
}

// Submit starts one typed request and returns a signal fired at completion.
func (s *LLMService) Submit(req Request) (*sim.Signal, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	if req.Model != "" && req.Model != s.Cfg.LLM.Name {
		return nil, fmt.Errorf("%w: model %q not served (service runs %q)",
			ErrBadRequest, req.Model, s.Cfg.LLM.Name)
	}
	done := sim.NewSignal(s.C.Engine)
	s.startReq(req, done)
	return done, nil
}

// pdReq is one in-flight request's working state.
type pdReq struct {
	svc    *LLMService
	req    Request
	seq    int64
	dec    PDDecision
	start  time.Duration
	done   *sim.Signal
	kv     int64
	slo    time.Duration
	prefil time.Duration
	perTok time.Duration
	decode time.Duration
}

// startReq decides the request's placement and spawns its execution process.
// Runs in event context; the descriptor is trusted (Submit validates).
func (s *LLMService) startReq(req Request, done *sim.Signal) {
	if req.PromptTokens <= 0 {
		req.PromptTokens = s.Cfg.DefaultPromptTokens
	}
	if req.OutTokens <= 0 {
		req.OutTokens = s.Cfg.DefaultOutTokens
	}
	s.seq++
	r := &pdReq{
		svc:    s,
		req:    req,
		seq:    s.seq,
		start:  s.C.Engine.Now(),
		done:   done,
		kv:     s.Model.KVBytes(req.PromptTokens),
		slo:    s.SLO(req.PromptTokens, req.OutTokens),
		prefil: s.Model.Prefill(req.PromptTokens),
		perTok: s.Model.DecodePerToken(),
		decode: s.Model.Decode(req.OutTokens),
	}
	if s.Route != nil {
		r.dec = s.Route(&r.req, r.seq)
	} else {
		r.dec = s.defaultRoute(&r.req, r.seq)
	}
	if r.dec.Overflow {
		s.Stats.Overflows++
	}
	// Same-GPU disaggregated decisions collapse: the handoff costs zero, so
	// the colocated plan is the same plan without the no-op transfer.
	if r.dec.Mode == PDDisaggregated && r.dec.Prefill == r.dec.Decode {
		r.dec.Mode = PDColocated
		s.Stats.Collapsed++
	}
	s.pending[r.dec.Decode]++
	if r.dec.Mode == PDDisaggregated {
		s.pending[r.dec.Prefill]++
		s.Stats.Disaggregated++
	} else {
		s.Stats.Colocated++
	}
	s.C.Engine.GoRun("llm-req", r)
}

// Run executes the request: one GPU hold for colocated, or
// prefill→handoff→decode for disaggregated.
func (r *pdReq) Run(p *sim.Proc) {
	s := r.svc
	c := s.C
	tr := obs.TracerOf(c.Engine)
	span := tr.BeginOn(obs.ReqTrack(r.seq), obs.CatRequest, s.Name)
	tr.SetAttrInt(span, "seq", r.seq)
	tr.SetAttrInt(span, "prompt", int64(r.req.PromptTokens))
	tr.SetAttrStr(span, "pd", r.dec.Mode.String())

	if r.dec.Mode == PDDisaggregated {
		r.runDisaggregated(p, tr)
	} else {
		r.runColocated(p, tr)
	}

	end := p.Now()
	s.E2E.Add(end - r.start)
	s.Completed++
	if s.OnComplete != nil {
		s.OnComplete(r.seq, end, end-r.start)
	}
	tr.End(span)
	if r.done != nil {
		r.done.Fire()
	}
}

// holdGPU acquires loc's compute slot at the request's QoS, retiring the
// pending pick, and returns the release closure plus the hold start.
func (r *pdReq) holdGPU(p *sim.Proc, loc fabric.Location) (*sim.Resource, time.Duration) {
	res := r.svc.C.resourceAt(loc)
	res.AcquirePri(p, int32(r.req.QoS))
	r.svc.pending[loc]--
	return res, p.Now()
}

// releaseGPU releases the hold and feeds the router's service-latency EWMA.
func (r *pdReq) releaseGPU(res *sim.Resource, loc fabric.Location, heldAt, now time.Duration) {
	res.Release()
	if c := r.svc.C; c.OnGPUService != nil {
		c.OnGPUService(loc.Node, loc.GPU, now-heldAt)
	}
}

// runColocated executes both phases in one hold on dec.Decode.
func (r *pdReq) runColocated(p *sim.Proc, tr *obs.Tracer) {
	loc := r.dec.Decode
	res, heldAt := r.holdGPU(p, loc)
	cs := tr.BeginOn(obs.ReqTrack(r.seq), obs.CatCompute, "prefill")
	p.Sleep(r.prefil)
	tr.End(cs)
	p.Sleep(r.perTok)
	r.svc.TTFT.Add(p.Now() - r.start)
	cs = tr.BeginOn(obs.ReqTrack(r.seq), obs.CatCompute, "decode")
	p.Sleep(r.decode - r.perTok)
	tr.End(cs)
	r.releaseGPU(res, loc, heldAt, p.Now())
}

// runDisaggregated executes prefill on dec.Prefill, ships the KV cache to
// dec.Decode through the data plane, then decodes. The handoff rides the
// full data-plane path — Put on the prefill GPU inside its hold (transfers
// run within a function's execution turn), Get on the decode GPU inside its
// hold — so coalescing, retry/replan, and spans apply. A failed handoff
// (evicted, crashed) falls back to recomputing prefill on the decode GPU.
func (r *pdReq) runDisaggregated(p *sim.Proc, tr *obs.Tracer) {
	s := r.svc
	c := s.C

	// Prefill phase.
	res, heldAt := r.holdGPU(p, r.dec.Prefill)
	cs := tr.BeginOn(obs.ReqTrack(r.seq), obs.CatCompute, "prefill")
	p.Sleep(r.prefil)
	tr.End(cs)
	var ref dataplane.DataRef
	var putErr error
	if !s.Cfg.ZeroKV {
		pctx := dataplane.FnCtx{
			Fn: s.Name + "/prefill", Workflow: s.Name,
			Loc: r.dec.Prefill, SLO: r.slo, InferLatency: r.prefil + r.decode,
			ConsumerSeq: r.seq,
		}
		s.inflightKV++
		ref, putErr = c.Plane.Put(p, &pctx, r.kv)
	}
	r.releaseGPU(res, r.dec.Prefill, heldAt, p.Now())

	// Decode phase: pull the KV cache at the decode GPU, recomputing the
	// prompt locally if the handoff cannot deliver it.
	res, heldAt = r.holdGPU(p, r.dec.Decode)
	if !s.Cfg.ZeroKV {
		recompute := putErr != nil
		if putErr == nil {
			dctx := dataplane.FnCtx{
				Fn: s.Name + "/decode", Workflow: s.Name,
				Loc: r.dec.Decode, SLO: r.slo, InferLatency: r.prefil + r.decode,
				ConsumerSeq: r.seq,
			}
			t0 := p.Now()
			if err := c.Plane.Get(p, &dctx, ref); err != nil {
				recompute = true
			} else {
				s.KVXfer.Add(p.Now() - t0)
				s.Stats.KVTransfers++
				s.Stats.KVBytes += r.kv
			}
			c.Plane.Free(ref)
		}
		s.inflightKV--
		if recompute {
			s.Stats.Recomputes++
			cs := tr.BeginOn(obs.ReqTrack(r.seq), obs.CatCompute, "prefill-recompute")
			p.Sleep(r.prefil)
			tr.End(cs)
		}
	}
	p.Sleep(r.perTok)
	s.TTFT.Add(p.Now() - r.start)
	cs = tr.BeginOn(obs.ReqTrack(r.seq), obs.CatCompute, "decode")
	p.Sleep(r.decode - r.perTok)
	tr.End(cs)
	r.releaseGPU(res, r.dec.Decode, heldAt, p.Now())
}

// Replay admits one typed request per arrival (offsets relative to now,
// sorted ascending; spec.RequestAt describes each) and runs the engine until
// it drains, with the same admission shapes and validation as App.Replay.
func (s *LLMService) Replay(arrivals []time.Duration, spec ReplaySpec) (ReplayStats, error) {
	if arrivals == nil {
		return ReplayStats{}, ErrNilTrace
	}
	if spec.Quantum < 0 {
		return ReplayStats{}, ErrNegativeQuantum
	}
	e := s.C.Engine
	base := e.Now()
	before := s.Completed
	reqAt := spec.RequestAt
	admitTrace(e, base, arrivals, spec.Quantum, func(i int) {
		var req Request
		if reqAt != nil {
			req = reqAt(i)
		}
		s.startReq(req, nil)
	})
	e.Run(0)
	st := ReplayStats{
		Requests:  len(arrivals),
		Completed: s.Completed - before,
		Duration:  e.Now() - base,
		P50:       s.E2E.P(0.5),
		P99:       s.E2E.P(0.99),
	}
	if st.Duration > 0 {
		st.Throughput = float64(st.Completed) / st.Duration.Seconds()
	}
	return st, nil
}
