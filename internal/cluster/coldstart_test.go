package cluster

import (
	"testing"
	"time"

	"grouter/internal/autoscale"
	"grouter/internal/scheduler"
	"grouter/internal/sim"
	"grouter/internal/topology"
	"grouter/internal/workflow"
)

func TestColdStartPenaltyAndWarmReuse(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	c := New(e, topology.DGXV100(), 1, grouterPlane)
	app := c.Deploy(workflow.Driving(), 0, scheduler.Options{Node: 0})
	app.SetColdStart(ColdStartPolicy{
		Enabled:          true,
		ContainerLatency: 500 * time.Millisecond,
		KeepAlive:        10 * time.Second,
	})
	e.Go("driver", func(p *sim.Proc) {
		app.submit(Request{}).Wait(p) // cold
		app.submit(Request{}).Wait(p) // warm
	})
	e.Run(0)
	if app.Completed != 2 {
		t.Fatalf("completed %d", app.Completed)
	}
	// Driving has 3 GPU stages: exactly 3 cold starts, paid once.
	if got := app.ColdStarts(); got != 3 {
		t.Errorf("cold starts = %d, want 3", got)
	}
	samples := app.E2E.Samples()
	cold, warm := samples[len(samples)-1], samples[0]
	if !(cold > warm+time.Second) {
		t.Errorf("cold request %v should exceed warm %v by container+load time", cold, warm)
	}
}

func TestKeepAliveExpiryRecolds(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	c := New(e, topology.DGXV100(), 1, grouterPlane)
	app := c.Deploy(workflow.Driving(), 0, scheduler.Options{Node: 0})
	app.SetColdStart(ColdStartPolicy{
		Enabled:          true,
		ContainerLatency: 100 * time.Millisecond,
		KeepAlive:        time.Second,
	})
	e.Go("driver", func(p *sim.Proc) {
		app.submit(Request{}).Wait(p)
		p.Sleep(5 * time.Second) // idle beyond keep-alive
		app.submit(Request{}).Wait(p)
	})
	e.Run(0)
	if got := app.ColdStarts(); got != 6 {
		t.Errorf("cold starts = %d, want 6 (3 stages × 2 cold rounds)", got)
	}
}

func TestPrewarmAvoidsColdStarts(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	c := New(e, topology.DGXV100(), 1, grouterPlane)
	app := c.Deploy(workflow.Driving(), 0, scheduler.Options{Node: 0})
	app.SetColdStart(ColdStartPolicy{
		Enabled:          true,
		ContainerLatency: 500 * time.Millisecond,
		KeepAlive:        time.Minute,
		Prewarm:          true,
	})
	e.Go("driver", func(p *sim.Proc) { app.submit(Request{}).Wait(p) })
	e.Run(0)
	if got := app.ColdStarts(); got != 0 {
		t.Errorf("cold starts with pre-warming = %d, want 0", got)
	}
}

func TestDefaultIsAlwaysWarm(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	c := New(e, topology.DGXV100(), 1, grouterPlane)
	app := c.Deploy(workflow.Driving(), 0, scheduler.Options{Node: 0})
	e.Go("driver", func(p *sim.Proc) { app.submit(Request{}).Wait(p) })
	e.Run(0)
	if got := app.ColdStarts(); got != 0 {
		t.Errorf("cold starts without policy = %d, want 0", got)
	}
}

func TestDefaultColdStartValues(t *testing.T) {
	p := DefaultColdStart()
	if !p.Enabled || p.ContainerLatency <= 0 || p.KeepAlive <= 0 || p.Prewarm {
		t.Errorf("unexpected defaults: %+v", p)
	}
}

func TestAutoscaledReplicaChargedColdStart(t *testing.T) {
	// Satellite pin: the first request routed to a freshly scaled replica is
	// actually charged the ColdStartPolicy latency, even when the deployed
	// base instances are pre-warmed.
	e := sim.NewEngine()
	defer e.Close()
	c := New(e, topology.DGXV100(), 1, grouterPlane)
	app := c.Deploy(workflow.Driving(), 0, scheduler.Options{Node: 0})
	const lat = 200 * time.Millisecond
	app.SetColdStart(ColdStartPolicy{Enabled: true, ContainerLatency: lat,
		KeepAlive: time.Minute, Prewarm: true})
	e2e := map[int64]time.Duration{}
	app.OnComplete = func(seq int64, _, d time.Duration) { e2e[seq] = d }
	app.EnableElastic(ElasticConfig{
		Scaler:   autoscale.Fixed{Replicas: 2},
		Min:      1,
		Max:      2,
		Interval: 50 * time.Millisecond,
	})
	e.Run(100 * time.Millisecond) // one controller step: every pool at 2
	if app.ColdStarts() != 0 {
		t.Fatalf("scale-out alone paid %d cold starts without Prewarm provisioning", app.ColdStarts())
	}
	// Round-robin over a 2-pool: seq 1 → member id 1 (the cold autoscaled
	// replica, for all 3 GPU stages), seq 2 → member id 0 (pre-warmed base).
	app.submit(Request{})
	app.submit(Request{})
	e.Run(0)
	if got := app.ColdStarts(); got != 3 {
		t.Fatalf("cold starts = %d, want 3 (one per stage of the cold-replica request)", got)
	}
	if e2e[1] < 3*lat {
		t.Errorf("cold-replica request e2e %v should pay 3 serial container latencies (>= %v)", e2e[1], 3*lat)
	}
	if e2e[2] >= lat {
		t.Errorf("pre-warmed-path request e2e %v should stay below one container latency %v", e2e[2], lat)
	}
}

func TestElasticPrewarmProvisioning(t *testing.T) {
	// Prewarm + autoscaler: a scaled replica provisions in the background —
	// not routable until ProvisionDelay elapses, and then already warm, so
	// no request is ever charged its cold start.
	e := sim.NewEngine()
	defer e.Close()
	c := New(e, topology.DGXV100(), 1, grouterPlane)
	app := c.Deploy(workflow.Driving(), 0, scheduler.Options{Node: 0})
	app.SetColdStart(ColdStartPolicy{Enabled: true, ContainerLatency: 200 * time.Millisecond,
		KeepAlive: time.Minute, Prewarm: true})
	ep := app.EnableElastic(ElasticConfig{
		Scaler:         autoscale.Fixed{Replicas: 2},
		Min:            1,
		Max:            2,
		Interval:       50 * time.Millisecond,
		Prewarm:        true,
		ProvisionDelay: 300 * time.Millisecond,
	})
	e.Run(60 * time.Millisecond) // scale-out ordered, still provisioning
	si := scheduler.StageInst{Stage: "segmentation", Replica: 0}
	if active, prov, _ := ep.Replicas("segmentation", 0); active != 1 || prov != 1 {
		t.Fatalf("active/prov = %d/%d during provisioning, want 1/1", active, prov)
	}
	if got := len(app.poolOf(si)); got != 1 {
		t.Fatalf("provisioning member already routable: pool size %d", got)
	}
	e.Run(500 * time.Millisecond) // provisioning delay elapsed
	if active, prov, _ := ep.Replicas("segmentation", 0); active != 2 || prov != 0 {
		t.Fatalf("active/prov = %d/%d after provisioning, want 2/0", active, prov)
	}
	app.submit(Request{})
	app.submit(Request{})
	e.Run(0)
	if app.Completed != 2 {
		t.Fatalf("completed %d", app.Completed)
	}
	if got := app.ColdStarts(); got != 0 {
		t.Errorf("cold starts = %d, want 0 — pre-warmed provisioning must absorb them", got)
	}
}
