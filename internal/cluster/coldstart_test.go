package cluster

import (
	"testing"
	"time"

	"grouter/internal/scheduler"
	"grouter/internal/sim"
	"grouter/internal/topology"
	"grouter/internal/workflow"
)

func TestColdStartPenaltyAndWarmReuse(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	c := New(e, topology.DGXV100(), 1, grouterPlane)
	app := c.Deploy(workflow.Driving(), 0, scheduler.Options{Node: 0})
	app.SetColdStart(ColdStartPolicy{
		Enabled:          true,
		ContainerLatency: 500 * time.Millisecond,
		KeepAlive:        10 * time.Second,
	})
	e.Go("driver", func(p *sim.Proc) {
		app.Invoke().Wait(p) // cold
		app.Invoke().Wait(p) // warm
	})
	e.Run(0)
	if app.Completed != 2 {
		t.Fatalf("completed %d", app.Completed)
	}
	// Driving has 3 GPU stages: exactly 3 cold starts, paid once.
	if got := app.ColdStarts(); got != 3 {
		t.Errorf("cold starts = %d, want 3", got)
	}
	samples := app.E2E.Samples()
	cold, warm := samples[len(samples)-1], samples[0]
	if !(cold > warm+time.Second) {
		t.Errorf("cold request %v should exceed warm %v by container+load time", cold, warm)
	}
}

func TestKeepAliveExpiryRecolds(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	c := New(e, topology.DGXV100(), 1, grouterPlane)
	app := c.Deploy(workflow.Driving(), 0, scheduler.Options{Node: 0})
	app.SetColdStart(ColdStartPolicy{
		Enabled:          true,
		ContainerLatency: 100 * time.Millisecond,
		KeepAlive:        time.Second,
	})
	e.Go("driver", func(p *sim.Proc) {
		app.Invoke().Wait(p)
		p.Sleep(5 * time.Second) // idle beyond keep-alive
		app.Invoke().Wait(p)
	})
	e.Run(0)
	if got := app.ColdStarts(); got != 6 {
		t.Errorf("cold starts = %d, want 6 (3 stages × 2 cold rounds)", got)
	}
}

func TestPrewarmAvoidsColdStarts(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	c := New(e, topology.DGXV100(), 1, grouterPlane)
	app := c.Deploy(workflow.Driving(), 0, scheduler.Options{Node: 0})
	app.SetColdStart(ColdStartPolicy{
		Enabled:          true,
		ContainerLatency: 500 * time.Millisecond,
		KeepAlive:        time.Minute,
		Prewarm:          true,
	})
	e.Go("driver", func(p *sim.Proc) { app.Invoke().Wait(p) })
	e.Run(0)
	if got := app.ColdStarts(); got != 0 {
		t.Errorf("cold starts with pre-warming = %d, want 0", got)
	}
}

func TestDefaultIsAlwaysWarm(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	c := New(e, topology.DGXV100(), 1, grouterPlane)
	app := c.Deploy(workflow.Driving(), 0, scheduler.Options{Node: 0})
	e.Go("driver", func(p *sim.Proc) { app.Invoke().Wait(p) })
	e.Run(0)
	if got := app.ColdStarts(); got != 0 {
		t.Errorf("cold starts without policy = %d, want 0", got)
	}
}

func TestDefaultColdStartValues(t *testing.T) {
	p := DefaultColdStart()
	if !p.Enabled || p.ContainerLatency <= 0 || p.KeepAlive <= 0 || p.Prewarm {
		t.Errorf("unexpected defaults: %+v", p)
	}
}
