package cluster

import (
	"time"

	"grouter/internal/metrics"
	"grouter/internal/obs"
	"grouter/internal/sim"
)

// Sharded trace replay: the scale-out execution mode behind the 10^6-request
// ext-scale cells.
//
// The simulated system is a fleet of `Pods` independent serving pods — each
// a complete cluster (fabric, netsim allocator, data plane, deployed app)
// built by the caller's build function — behind a front-door feeder that
// routes request i to pod i mod Pods and admits arrivals in Quantum windows
// with a fixed RouteLatency admission delay. Pods are grouped onto `Shards`
// shard event loops (pod j lives on shard j mod Shards), each owning one
// typed event heap and running on its own goroutine under the conservative
// lookahead protocol of sim.ShardGroup; the feeder's admissions are the
// cross-shard events, carried by per-pod ordered mailboxes whose
// RouteLatency is the lookahead bound. Every pod's netsim allocator state is
// shard-local by construction: a pod's fabric is its own connected
// component, owned entirely by the shard hosting the pod.
//
// Because pods interact only through the feeder's latency-bounded mailboxes,
// the merged result — the completion stream ordered by (completion time,
// pod, pod-local order) and every statistic derived from it — is a pure
// function of the trace and the pod layout. The shard count and the
// parallel/sequential execution mode change wall-clock time only: a replay
// at 1, 2, 4, or 8 shards, parallel or sequential, is byte-identical.
// ShardedReplay with Shards=1 (every pod on one event loop) is the retained
// single-shard determinism oracle.

// DefaultPods is the canonical scale-out fleet width. It is a fixed layout
// constant — results depend on it, so changing it changes the simulated
// system — chosen so every shard count in {1,2,4,8} divides it evenly.
const DefaultPods = 8

// ShardedOptions configures ShardedReplay.
type ShardedOptions struct {
	// Pods is the number of independent serving pods (default DefaultPods).
	// The trace is routed round-robin across pods, so Pods is part of the
	// simulated system, not an execution knob.
	Pods int
	// Shards is the number of shard event loops the pods are grouped onto
	// (default 1). Pure execution knob: results are byte-identical across
	// shard counts.
	Shards int
	// Sequential forces the single-goroutine oracle scheduler even for
	// Shards > 1 (differential tests compare it against the parallel run).
	Sequential bool
	// Quantum is the feeder's admission window (default 10ms): arrivals
	// inside a window are admitted together at its closing edge, mirroring
	// ReplayOptions.Quantum.
	Quantum time.Duration
	// RouteLatency is the front-door routing delay between the feeder and a
	// pod (default 10ms). It is also the cross-shard lookahead bound, so
	// smaller values mean more barriers per simulated second.
	RouteLatency time.Duration
	// Trace attaches a shard-tagged span tracer to every shard event loop;
	// the tracers are returned in ShardedStats.Tracers and merge into one
	// coherent trace with obs.ExportMerged.
	Trace bool
}

func (o *ShardedOptions) defaults() {
	if o.Pods <= 0 {
		o.Pods = DefaultPods
	}
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.Shards > o.Pods {
		o.Shards = o.Pods
	}
	if o.Quantum <= 0 {
		o.Quantum = 10 * time.Millisecond
	}
	if o.RouteLatency <= 0 {
		o.RouteLatency = 10 * time.Millisecond
	}
}

// PodReplay summarizes one pod's share of a sharded replay.
type PodReplay struct {
	Pod       int
	Shard     int
	Requests  int
	Completed int
	P50, P99  time.Duration
}

// ShardAlloc aggregates the netsim allocator work of every pod hosted on one
// shard — the shard-local allocator state. All values derive from virtual
// time, so they are deterministic.
type ShardAlloc struct {
	Shard        int
	Recomputes   int64
	FlowsTouched int64
}

// ShardedStats reports a sharded replay. The embedded ReplayStats and PerPod
// are virtual-time results: byte-identical across runs, shard counts, and
// scheduling modes. Util and Wall are wall-clock observations of this run
// only and vary run to run.
type ShardedStats struct {
	ReplayStats
	Pods   int
	Shards int
	PerPod []PodReplay
	// AllocByShard is the per-shard netsim allocator work (deterministic).
	AllocByShard []ShardAlloc
	// Util is per-shard wall-clock busy/barrier-wait utilization; Wall is
	// the whole run's wall-clock time.
	Util []sim.ShardUtil
	Wall time.Duration
	// Tracers holds one shard-tagged tracer per shard when Trace was set.
	Tracers []*obs.Tracer
}

// sample is one completion observation of one pod.
type sample struct {
	at  time.Duration
	e2e time.Duration
}

// ShardedReplay replays arrivals (sorted offsets, as for ReplayTrace) over a
// fleet of opt.Pods independent pods executed on opt.Shards shard event
// loops. build constructs pod `pod` on the given engine and returns its
// deployed app; it is called in pod order and must build each pod
// identically given the same index (pods must not share mutable state — each
// needs its own workflow, spec, and plane).
func ShardedReplay(arrivals []time.Duration, opt ShardedOptions, build func(pod int, e *sim.Engine) *App) ShardedStats {
	opt.defaults()
	g := sim.NewShardGroup(opt.Shards)
	defer g.Close()

	if opt.Trace {
		for i := 0; i < g.Shards(); i++ {
			obs.Attach(g.Shard(i).Engine()).SetShard(int32(i))
		}
	}

	// Build pods in index order; pod j lives on shard j mod Shards, so the
	// construction sequence on any one engine is the same whatever the
	// shard count.
	podShard := func(pod int) int { return pod % opt.Shards }
	apps := make([]*App, opt.Pods)
	samples := make([][]sample, opt.Pods)
	for j := range apps {
		j := j
		apps[j] = build(j, g.Shard(podShard(j)).Engine())
		apps[j].C.Fabric.Net.SetShard(int32(podShard(j)))
		apps[j].OnComplete = func(_ int64, at, e2e time.Duration) {
			samples[j] = append(samples[j], sample{at: at, e2e: e2e})
		}
	}

	// The feeder lives on shard 0 and admits arrivals through one ordered
	// mailbox per pod. A mailbox to a pod on shard 0 itself would be a
	// same-shard edge, which the group rejects; those pods are admitted by
	// scheduling directly on the shared engine with the same latency, which
	// is delivery-order-equivalent because the feeder fires before any
	// admission at the same instant.
	driver := g.Shard(0)
	boxes := make([]*sim.Mailbox, opt.Pods)
	admit := func(app *App) func(payload any) {
		return func(payload any) {
			for n := payload.(int); n > 0; n-- {
				app.start(app.Batch, nil)
			}
		}
	}
	for j := range apps {
		if sh := g.Shard(podShard(j)); sh != driver {
			boxes[j] = g.NewMailbox(driver, sh, opt.RouteLatency, admit(apps[j]))
		}
	}

	requests := make([]int, opt.Pods)
	for i := range arrivals {
		requests[i%opt.Pods]++
	}

	if len(arrivals) > 0 {
		q, lat := opt.Quantum, opt.RouteLatency
		counts := make([]int, opt.Pods)
		driver.Engine().Go("shard-feeder", func(p *sim.Proc) {
			i := 0
			for i < len(arrivals) {
				win := (arrivals[i]/q + 1) * q
				if wait := win - p.Now(); wait > 0 {
					p.Sleep(wait)
				}
				for j := range counts {
					counts[j] = 0
				}
				for i < len(arrivals) && arrivals[i] < win {
					counts[i%opt.Pods]++
					i++
				}
				for j, n := range counts {
					if n == 0 {
						continue
					}
					if boxes[j] != nil {
						boxes[j].Send(n)
					} else {
						app, n := apps[j], n
						p.Engine().Schedule(lat, func() {
							for ; n > 0; n-- {
								app.start(app.Batch, nil)
							}
						})
					}
				}
			}
			for _, b := range boxes {
				if b != nil {
					b.Close()
				}
			}
		})
	} else {
		for _, b := range boxes {
			if b != nil {
				b.Close()
			}
		}
	}

	if opt.Sequential || opt.Shards == 1 {
		g.RunSequential()
	} else {
		g.Run()
	}

	st := ShardedStats{
		Pods:   opt.Pods,
		Shards: opt.Shards,
	}
	st.Requests = len(arrivals)

	// Deterministic merge of the per-pod completion streams by
	// (completion time, pod, pod-local order). Pod-local streams are
	// already time-ordered (each pod's engine clock is monotone), so this
	// is a k-way merge; the merged order defines the fleet-level
	// percentile stream and the replay horizon.
	var merged metrics.Latency
	idx := make([]int, opt.Pods)
	var lastAt time.Duration
	for {
		best := -1
		for j := 0; j < opt.Pods; j++ {
			if idx[j] >= len(samples[j]) {
				continue
			}
			if best < 0 || samples[j][idx[j]].at < samples[best][idx[best]].at {
				best = j
			}
		}
		if best < 0 {
			break
		}
		s := samples[best][idx[best]]
		idx[best]++
		merged.Add(s.e2e)
		lastAt = s.at
	}
	st.Completed = merged.Count()
	st.Duration = lastAt
	st.P50 = merged.P(0.5)
	st.P99 = merged.P(0.99)
	if st.Duration > 0 {
		st.Throughput = float64(st.Completed) / st.Duration.Seconds()
	}

	st.AllocByShard = make([]ShardAlloc, opt.Shards)
	for j, app := range apps {
		sh := podShard(j)
		st.PerPod = append(st.PerPod, PodReplay{
			Pod: j, Shard: sh,
			Requests:  requests[j],
			Completed: app.Completed,
			P50:       app.E2E.P(0.5),
			P99:       app.E2E.P(0.99),
		})
		ns := app.C.Fabric.Net.NetStats()
		st.AllocByShard[sh].Shard = sh
		st.AllocByShard[sh].Recomputes += ns.Recomputes.Load()
		st.AllocByShard[sh].FlowsTouched += ns.FlowsTouched.Load()
	}
	if opt.Trace {
		for i := 0; i < g.Shards(); i++ {
			st.Tracers = append(st.Tracers, obs.TracerOf(g.Shard(i).Engine()))
		}
	}
	st.Util = g.Util()
	st.Wall = g.Wall()
	return st
}
