package cluster

import (
	"testing"
	"time"

	"grouter/internal/scheduler"
	"grouter/internal/sim"
	"grouter/internal/topology"
	"grouter/internal/workflow"
)

// qosApp deploys the driving workflow on one node with optional GPU-queue
// priority aging.
func qosApp(t *testing.T, aging time.Duration) (*sim.Engine, *App) {
	t.Helper()
	e := sim.NewEngine()
	c := New(e, topology.DGXV100(), 1, grouterPlane)
	if aging > 0 {
		c.SetQueueAging(aging)
	}
	return e, c.Deploy(workflow.Driving(), 1, scheduler.Options{Node: 0})
}

// timeDone waits for the signal and records completion time.
func timeDone(e *sim.Engine, name string, s *sim.Signal, out *time.Duration) {
	e.Go(name, func(p *sim.Proc) {
		s.Wait(p)
		*out = p.Now()
	})
}

// TestQoSHighSkipsLowQueue: with a backlog of QoSLow requests queued at the
// GPUs, a late-arriving QoSHigh request must overtake them.
func TestQoSHighSkipsLowQueue(t *testing.T) {
	e, app := qosApp(t, 0)
	defer e.Close()
	var high, low time.Duration
	e.Schedule(0, func() {
		for i := 0; i < 24; i++ {
			app.submit(Request{QoS: QoSLow})
		}
	})
	e.Schedule(5*time.Millisecond, func() {
		timeDone(e, "low", app.submit(Request{QoS: QoSLow}), &low)
		timeDone(e, "high", app.submit(Request{QoS: QoSHigh}), &high)
	})
	e.Run(0)
	if high == 0 || low == 0 {
		t.Fatalf("requests did not complete (high=%v low=%v)", high, low)
	}
	if !(high < low) {
		t.Errorf("QoSHigh finished at %v, not before the same-instant QoSLow at %v", high, low)
	}
}

// TestQoSAgingPreventsStarvation is the starvation regression: under a
// sustained QoSHigh flood, a lone QoSLow request starves behind the
// ever-refilling high-priority queue — unless aging bumps its effective
// class. With aging the low request must complete while the flood is still
// running, and far earlier than without.
func TestQoSAgingPreventsStarvation(t *testing.T) {
	const (
		floodEvery = 2 * time.Millisecond
		floodN     = 150
	)
	run := func(aging time.Duration) (low, lastHigh time.Duration) {
		e, app := qosApp(t, aging)
		defer e.Close()
		for i := 0; i < floodN; i++ {
			at := time.Duration(i) * floodEvery
			last := i == floodN-1
			e.Schedule(at, func() {
				s := app.submit(Request{QoS: QoSHigh})
				if last {
					timeDone(e, "last-high", s, &lastHigh)
				}
			})
		}
		e.Schedule(10*time.Millisecond, func() {
			timeDone(e, "low", app.submit(Request{QoS: QoSLow}), &low)
		})
		e.Run(0)
		if low == 0 || lastHigh == 0 {
			t.Fatalf("flood did not drain (low=%v lastHigh=%v)", low, lastHigh)
		}
		return low, lastHigh
	}
	starved, starvedEnd := run(0)
	aged, agedEnd := run(25 * time.Millisecond)
	// Without aging the low request drains only at the tail of the flood.
	if !(starved > starvedEnd*8/10) {
		t.Errorf("no-aging low completed at %v, expected to starve until near flood end %v",
			starved, starvedEnd)
	}
	// With aging it must complete mid-flood (its deadline), well before the
	// starved baseline.
	if !(aged < agedEnd/2) {
		t.Errorf("aged low completed at %v, want before half the flood (%v)", aged, agedEnd/2)
	}
	if !(aged < starved/2) {
		t.Errorf("aging did not help: aged %v vs starved %v", aged, starved)
	}
}

// TestQoSDefaultIsLow: the zero value admits as QoSLow, so all-default
// replays are byte-identical to the pre-QoS scheduler (every waiter equal
// priority, FIFO order).
func TestQoSDefaultIsLow(t *testing.T) {
	if QoSLow != 0 {
		t.Fatalf("QoSLow = %d, must be the zero value", QoSLow)
	}
	if !(QoSHigh > QoSLow) {
		t.Fatalf("QoSHigh (%d) must outrank QoSLow (%d)", QoSHigh, QoSLow)
	}
}
