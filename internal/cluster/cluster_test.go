package cluster

import (
	"testing"
	"time"

	"grouter/internal/baselines"
	"grouter/internal/core"
	"grouter/internal/dataplane"
	"grouter/internal/fabric"
	"grouter/internal/scheduler"
	"grouter/internal/sim"
	"grouter/internal/topology"
	"grouter/internal/trace"
	"grouter/internal/workflow"
)

func grouterPlane(f *fabric.Fabric) dataplane.Plane { return core.New(f, core.FullConfig()) }
func inflessPlane(f *fabric.Fabric) dataplane.Plane { return baselines.NewINFless(f) }

func runOne(t *testing.T, mk func(*fabric.Fabric) dataplane.Plane, wf *workflow.Workflow) *App {
	t.Helper()
	e := sim.NewEngine()
	defer e.Close()
	c := New(e, topology.DGXV100(), 1, mk)
	app := c.Deploy(wf, 0, scheduler.Options{Node: -1})
	e.Go("driver", func(p *sim.Proc) {
		app.submit(Request{}).Wait(p)
	})
	e.Run(0)
	return app
}

func TestAllWorkflowsCompleteOnAllPlanes(t *testing.T) {
	planes := map[string]func(*fabric.Fabric) dataplane.Plane{
		"grouter":  grouterPlane,
		"infless+": inflessPlane,
		"nvshmem+": func(f *fabric.Fabric) dataplane.Plane { return baselines.NewNVShmem(f, 5) },
		"deepplan": func(f *fabric.Fabric) dataplane.Plane { return baselines.NewDeepPlan(f, 5) },
	}
	for name, mk := range planes {
		for _, wf := range workflow.Suite() {
			app := runOne(t, mk, wf)
			if app.Completed != 1 {
				t.Errorf("%s/%s: completed %d requests, want 1", name, wf.Name, app.Completed)
			}
			if app.E2E.Count() != 1 || app.E2E.Mean() <= 0 {
				t.Errorf("%s/%s: bad E2E metrics", name, wf.Name)
			}
		}
	}
}

func TestGrouterBeatsINFlessEndToEnd(t *testing.T) {
	for _, wf := range workflow.Suite() {
		g := runOne(t, grouterPlane, wf)
		inf := runOne(t, inflessPlane, wf)
		if !(g.E2E.Mean() < inf.E2E.Mean()) {
			t.Errorf("%s: grouter %v not faster than infless+ %v", wf.Name, g.E2E.Mean(), inf.E2E.Mean())
		}
	}
}

func TestHostCentricDataPassingDominates(t *testing.T) {
	// Fig. 3: on INFless+ the data-passing share of (passing+compute) is
	// large for transfer-heavy workflows.
	app := runOne(t, inflessPlane, workflow.Traffic())
	pass := app.XferGPU.Mean() + app.XferHost.Mean()
	comp := app.Compute.Mean()
	frac := pass.Seconds() / (pass + comp).Seconds()
	if frac < 0.5 {
		t.Errorf("INFless+ traffic data-passing fraction = %.2f, want > 0.5", frac)
	}
	// GROUTER flips the balance.
	g := runOne(t, grouterPlane, workflow.Traffic())
	gpass := g.XferGPU.Mean() + g.XferHost.Mean()
	gfrac := gpass.Seconds() / (gpass + g.Compute.Mean()).Seconds()
	if gfrac >= frac {
		t.Errorf("grouter passing fraction %.2f not below infless+ %.2f", gfrac, frac)
	}
}

func TestConditionalStagesSometimesSkip(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	c := New(e, topology.DGXV100(), 1, grouterPlane)
	app := c.Deploy(workflow.Traffic(), 0, scheduler.Options{Node: -1, Seed: 3})
	e.Go("driver", func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			app.submit(Request{}).Wait(p)
		}
	})
	e.Run(0)
	if app.Completed != 20 {
		t.Fatalf("completed %d, want 20", app.Completed)
	}
	// With prob 0.7/0.8 sinks, some requests skip at least one recognizer,
	// so per-request compute varies.
	samples := app.Compute.Samples()
	allSame := true
	for _, s := range samples[1:] {
		if s != samples[0] {
			allSame = false
		}
	}
	if allSame {
		t.Error("conditional branches never varied over 20 requests")
	}
}

func TestTraceDrivenRun(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	c := New(e, topology.DGXV100(), 1, grouterPlane)
	app := c.Deploy(workflow.Driving(), 0, scheduler.Options{Node: -1})
	arrivals := trace.Generate(trace.Spec{
		Pattern: trace.Bursty, Duration: 10 * time.Second, MeanRPS: 4, Seed: 9,
	})
	app.RunTrace(arrivals)
	if app.Completed != len(arrivals) {
		t.Errorf("completed %d of %d traced requests", app.Completed, len(arrivals))
	}
	if app.E2E.P(0.99) <= 0 {
		t.Error("no P99 recorded")
	}
}

func TestThroughputMeasurement(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	c := New(e, topology.DGXV100(), 1, grouterPlane)
	app := c.Deploy(workflow.Driving(), 0, scheduler.Options{Node: -1})
	tput := app.MeasureThroughput(4, 5*time.Second)
	if tput <= 0 {
		t.Fatalf("throughput = %f", tput)
	}
	// Sanity: cannot exceed the single-GPU compute bound by much.
	lat := workflow.Driving().StandaloneLatency(c.Class, workflow.Driving().Batch)
	bound := 8 / lat.Seconds() * 4 // 8 GPUs, generous factor
	if tput > bound {
		t.Errorf("throughput %f exceeds physical bound %f", tput, bound)
	}
}

func TestSLOComplianceUnderLoad(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	c := New(e, topology.DGXV100(), 1, grouterPlane)
	app := c.Deploy(workflow.Driving(), 0, scheduler.Options{Node: -1})
	e.Go("driver", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			app.submit(Request{}).Wait(p)
		}
	})
	e.Run(0)
	if got := app.SLOCompliance(); got < 0 || got > 1 {
		t.Errorf("compliance = %f out of range", got)
	}
}

func TestSqueezeGPUMemory(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	c := New(e, topology.DGXV100(), 1, grouterPlane)
	c.SqueezeGPUMemory(1 << 30)
	for _, dev := range c.Fabric.NodeF(0).GPUs {
		if dev.Free() != 1<<30 {
			t.Errorf("device %s free = %d, want 1 GiB", dev.Name, dev.Free())
		}
	}
}

func TestCrossNodeDeploymentCompletes(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	c := New(e, topology.DGXV100(), 2, grouterPlane)
	app := c.Deploy(workflow.Traffic(), 0, scheduler.Options{Node: -1, SplitAcrossNodes: true})
	e.Go("driver", func(p *sim.Proc) { app.submit(Request{}).Wait(p) })
	e.Run(0)
	if app.Completed != 1 {
		t.Fatalf("cross-node request did not complete")
	}
}
