package cluster

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"grouter/internal/obs"
	"grouter/internal/scheduler"
	"grouter/internal/sim"
	"grouter/internal/topology"
	"grouter/internal/trace"
	"grouter/internal/workflow"
)

// buildScalePod is the canonical scale-out pod: the 2-node DGX-V100
// grouter-plane driving-workflow deployment the single-cluster scale
// benchmarks use, one instance per pod.
func buildScalePod(pod int, e *sim.Engine) *App {
	c := New(e, topology.DGXV100(), 2, grouterPlane)
	app := c.Deploy(workflow.Driving(), 1, scheduler.Options{Node: 0, SplitAcrossNodes: true})
	app.EnableAutoscale(DefaultAutoscale())
	return app
}

func shardArrivals(pattern trace.Pattern, requests int) []time.Duration {
	return trace.Generate(trace.Spec{
		Pattern:  pattern,
		Duration: time.Duration(float64(requests) / 500 * float64(time.Second)),
		MeanRPS:  500,
		Seed:     42,
	})
}

// statsKey renders everything deterministic about a sharded replay —
// fleet-level stats and the full per-pod breakdown — as one comparable
// string. Wall-clock fields (Util, Wall) are deliberately excluded.
func statsKey(st ShardedStats) string {
	s := fmt.Sprintf("req=%d done=%d dur=%v tput=%.6f p50=%v p99=%v pods=%d\n",
		st.Requests, st.Completed, st.Duration, st.Throughput, st.P50, st.P99, st.Pods)
	for _, p := range st.PerPod {
		s += fmt.Sprintf("pod %d: req=%d done=%d p50=%v p99=%v\n",
			p.Pod, p.Requests, p.Completed, p.P50, p.P99)
	}
	return s
}

// TestShardedReplayDifferential is the determinism acceptance test: for each
// trace pattern, replays at 1, 2, 4, and 8 shards — parallel and, for 4
// shards, also under the sequential oracle — must produce byte-identical
// deterministic stats.
func TestShardedReplayDifferential(t *testing.T) {
	requests := 2_000
	if testing.Short() {
		requests = 500
	}
	for _, pattern := range []trace.Pattern{trace.Sporadic, trace.Periodic, trace.Bursty} {
		pattern := pattern
		t.Run(pattern.String(), func(t *testing.T) {
			arrivals := shardArrivals(pattern, requests)
			oracle := ShardedReplay(arrivals, ShardedOptions{Shards: 1}, buildScalePod)
			if oracle.Completed != len(arrivals) {
				t.Fatalf("oracle completed %d of %d", oracle.Completed, len(arrivals))
			}
			want := statsKey(oracle)
			for _, shards := range []int{2, 4, 8} {
				got := statsKey(ShardedReplay(arrivals, ShardedOptions{Shards: shards}, buildScalePod))
				if got != want {
					t.Errorf("%d-shard parallel replay diverged from single-shard oracle:\n got: %s\nwant: %s", shards, got, want)
				}
			}
			got := statsKey(ShardedReplay(arrivals, ShardedOptions{Shards: 4, Sequential: true}, buildScalePod))
			if got != want {
				t.Errorf("4-shard sequential replay diverged from single-shard oracle:\n got: %s\nwant: %s", got, want)
			}
		})
	}
}

func TestShardedReplayStats(t *testing.T) {
	arrivals := shardArrivals(trace.Bursty, 500)
	st := ShardedReplay(arrivals, ShardedOptions{Shards: 4}, buildScalePod)
	if st.Completed != len(arrivals) {
		t.Fatalf("completed %d of %d", st.Completed, len(arrivals))
	}
	if st.Pods != DefaultPods || st.Shards != 4 {
		t.Fatalf("pods=%d shards=%d, want %d/4", st.Pods, st.Shards, DefaultPods)
	}
	if len(st.PerPod) != DefaultPods {
		t.Fatalf("per-pod rows %d, want %d", len(st.PerPod), DefaultPods)
	}
	sum, reqSum := 0, 0
	for _, p := range st.PerPod {
		if p.Requests != p.Completed {
			t.Fatalf("pod %d completed %d of %d", p.Pod, p.Completed, p.Requests)
		}
		if want := p.Pod % 4; p.Shard != want {
			t.Fatalf("pod %d on shard %d, want %d", p.Pod, p.Shard, want)
		}
		sum += p.Completed
		reqSum += p.Requests
	}
	if sum != st.Completed || reqSum != st.Requests {
		t.Fatalf("per-pod totals %d/%d, fleet %d/%d", sum, reqSum, st.Completed, st.Requests)
	}
	if len(st.Util) != 4 {
		t.Fatalf("util rows %d, want 4", len(st.Util))
	}
	var events int64
	for _, u := range st.Util {
		events += u.Events
	}
	if events == 0 {
		t.Fatal("no events recorded across shards")
	}
	if st.Wall <= 0 {
		t.Fatal("wall-clock not recorded")
	}
	if len(st.AllocByShard) != 4 {
		t.Fatalf("alloc rows %d, want 4", len(st.AllocByShard))
	}
	var recomputes int64
	for _, a := range st.AllocByShard {
		recomputes += a.Recomputes
	}
	if recomputes == 0 {
		t.Fatal("no allocator recomputes attributed to shards")
	}
	if st.P50 <= 0 || st.P99 < st.P50 {
		t.Fatalf("implausible percentiles p50=%v p99=%v", st.P50, st.P99)
	}
}

// TestShardedReplayTraceMerge checks that per-shard tracers are returned and
// merge into one deterministic Chrome trace.
func TestShardedReplayTraceMerge(t *testing.T) {
	arrivals := shardArrivals(trace.Bursty, 200)
	export := func() string {
		st := ShardedReplay(arrivals, ShardedOptions{Shards: 2, Trace: true}, buildScalePod)
		if len(st.Tracers) != 2 {
			t.Fatalf("tracers %d, want 2", len(st.Tracers))
		}
		for i, tr := range st.Tracers {
			if tr == nil || tr.Len() == 0 {
				t.Fatalf("shard %d tracer empty", i)
			}
			if tr.Shard() != int32(i) {
				t.Fatalf("tracer %d tagged shard %d", i, tr.Shard())
			}
		}
		var sb strings.Builder
		if err := obs.ExportMerged(&sb, st.Tracers...); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	a, b := export(), export()
	if a != b {
		t.Fatal("merged trace export not byte-identical across runs")
	}
	if !strings.Contains(a, "\"pid\":1") {
		t.Fatal("merged trace missing shard 1 process lane")
	}
}

// TestShardedReplayEmptyTrace exercises the zero-arrival path.
func TestShardedReplayEmptyTrace(t *testing.T) {
	st := ShardedReplay(nil, ShardedOptions{Shards: 2}, buildScalePod)
	if st.Completed != 0 || st.Requests != 0 {
		t.Fatalf("empty trace produced %d/%d", st.Completed, st.Requests)
	}
}
