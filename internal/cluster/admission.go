package cluster

import (
	"errors"
	"time"

	"grouter/internal/obs"
	"grouter/internal/sim"
)

// SLO-aware admission control. The front-door router installs an AdmitFn on
// the app; every submission path (Submit, the Invoke shims, trace replays)
// consults it before launching the request. The hook decides per attempt:
// launch now, park the request in a virtual-time delay queue and re-ask
// after a bounded wait, or shed it outright. With no hook installed the
// launch path is untouched — byte-identical to the pre-admission runtime,
// the differential oracle's configuration.

// ErrSLOShed reports a request dropped by SLO admission control: the
// predictor saw no worker able to finish it inside its class budget, and the
// deferral bound was exhausted (or deferral was disabled). Submit returns it
// when the drop is immediate; deferred drops fire the request's completion
// signal and count in App.Shed either way.
var ErrSLOShed = errors.New("cluster: request shed by SLO admission control")

// AdmitAction is one admission decision for one attempt.
type AdmitAction int8

const (
	// AdmitRun launches the request now.
	AdmitRun AdmitAction = iota
	// AdmitDefer parks the request and re-asks after the returned delay.
	AdmitDefer
	// AdmitShed drops the request.
	AdmitShed
)

// AdmitFn decides one admission attempt. waited is the request's cumulative
// delay-queue time (zero on first attempt); the delay return is consulted
// only for AdmitDefer and must be positive (a non-positive defer delay is
// treated as AdmitRun — the delay queue must make progress). The hook runs
// in event context and must be deterministic in virtual time.
type AdmitFn func(req Request, waited time.Duration) (action AdmitAction, delay time.Duration)

// admitReq runs one admission attempt for a request submitted at t0 that has
// already waited `waited` in the delay queue. It reports whether the request
// was shed synchronously on this attempt (Submit surfaces that as
// ErrSLOShed); deferred attempts re-enter here from a scheduled callback, so
// the delay queue is the engine's deterministic (time, seq) event order —
// re-admissions of one instant replay in defer order.
func (a *App) admitReq(req Request, done *sim.Signal, t0, waited time.Duration) bool {
	action, delay := a.Admit(req, waited)
	switch {
	case action == AdmitDefer && delay > 0:
		a.C.Engine.Schedule(delay, func() {
			a.admitReq(req, done, t0, waited+delay)
		})
		return false
	case action == AdmitShed:
		a.shedReq(req, done, t0)
		return true
	}
	a.launchReq(req, done, t0, waited)
	return false
}

// shedReq accounts one dropped request: the shed counters, a breakdown entry
// whose single CatShed bucket tiles the request's submission-to-drop
// lifetime, and the submitter's completion signal (a closed loop must not
// hang on a dropped request).
func (a *App) shedReq(req Request, done *sim.Signal, t0 time.Duration) {
	c := a.C
	c.seq++
	a.Shed++
	a.ShedByClass[qosIndex(req.QoS)]++
	if a.Breakdown != nil {
		rb := RequestBreakdown{Seq: c.seq, Start: t0, End: c.Engine.Now()}
		rb.Buckets[obs.CatShed] = rb.End - rb.Start
		a.Breakdown.Requests = append(a.Breakdown.Requests, rb)
	}
	if done != nil {
		done.Fire()
	}
}

// qosIndex clamps a QoS class onto the per-class counter index range, so
// adversarial descriptors on the unvalidated internal path cannot index out
// of bounds.
func qosIndex(q QoS) QoS {
	if q < QoSLow || q > QoSHigh {
		return QoSLow
	}
	return q
}
