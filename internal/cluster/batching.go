package cluster

import (
	"time"

	"grouter/internal/sim"
)

// Batcher implements adaptive request batching for an app, the mechanism the
// paper's substrate (INFless, following BATCH) uses to trade latency for
// throughput: logical requests queue at the workflow's front end and are
// dispatched as one batched invocation when either MaxBatch requests are
// waiting or MaxWait has elapsed since the oldest queued request.
type Batcher struct {
	App *App
	// MaxBatch caps the aggregated batch size.
	MaxBatch int
	// MaxWait bounds how long the first queued request waits for company.
	MaxWait time.Duration

	queue []*pendingReq
	// dispatching marks an armed timeout/dispatch cycle.
	dispatching bool

	// Dispatches counts batched invocations; Batched sums logical requests
	// served, so Batched/Dispatches is the achieved mean batch size.
	Dispatches int64
	Batched    int64
	// Latency records logical-request latency including queueing delay.
	Latency *timeLatency
}

// timeLatency is a tiny wrapper so Batcher can record per-request latency
// without exposing a second metrics dependency in this file's API surface.
type timeLatency struct {
	samples []time.Duration
}

func (l *timeLatency) add(d time.Duration) { l.samples = append(l.samples, d) }

// P returns the q-quantile of recorded latencies (nearest rank).
func (l *timeLatency) P(q float64) time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), l.samples...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	idx := int(q*float64(len(s))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// Count returns the number of completed logical requests.
func (l *timeLatency) Count() int { return len(l.samples) }

type pendingReq struct {
	arrived time.Duration
	done    *sim.Signal
}

// NewBatcher builds an adaptive batcher for app.
func NewBatcher(app *App, maxBatch int, maxWait time.Duration) *Batcher {
	if maxBatch < 1 {
		maxBatch = 1
	}
	return &Batcher{App: app, MaxBatch: maxBatch, MaxWait: maxWait, Latency: &timeLatency{}}
}

// Submit enqueues one logical request and returns a signal fired when its
// batch completes. Must be called from event or process context.
func (b *Batcher) Submit() *sim.Signal {
	e := b.App.C.Engine
	req := &pendingReq{arrived: e.Now(), done: sim.NewSignal(e)}
	b.queue = append(b.queue, req)
	if len(b.queue) >= b.MaxBatch {
		b.dispatch()
		return req.done
	}
	if !b.dispatching {
		b.dispatching = true
		e.Schedule(b.MaxWait, func() {
			b.dispatching = false
			if len(b.queue) > 0 {
				b.dispatch()
			}
		})
	}
	return req.done
}

// dispatch invokes the app once for every queued request.
func (b *Batcher) dispatch() {
	batch := b.queue
	if len(batch) > b.MaxBatch {
		batch = batch[:b.MaxBatch]
	}
	b.queue = b.queue[len(batch):]
	b.Dispatches++
	b.Batched += int64(len(batch))
	e := b.App.C.Engine
	done := b.App.InvokeBatch(len(batch))
	e.Go("batch-complete", func(p *sim.Proc) {
		done.Wait(p)
		now := p.Now()
		for _, r := range batch {
			b.Latency.add(now - r.arrived)
			r.done.Fire()
		}
	})
}

// MeanBatch returns the achieved mean batch size.
func (b *Batcher) MeanBatch() float64 {
	if b.Dispatches == 0 {
		return 0
	}
	return float64(b.Batched) / float64(b.Dispatches)
}
