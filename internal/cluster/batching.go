package cluster

import (
	"time"

	"grouter/internal/sim"
)

// Batcher implements adaptive request batching for an app, the mechanism the
// paper's substrate (INFless, following BATCH) uses to trade latency for
// throughput: logical requests queue at the workflow's front end and are
// dispatched as one batched invocation when either MaxBatch requests are
// waiting or MaxWait has elapsed since the oldest queued request.
type Batcher struct {
	App *App
	// MaxBatch caps the aggregated batch size.
	MaxBatch int
	// MaxWait bounds how long the first queued request waits for company.
	MaxWait time.Duration

	// Adaptive, when enabled, adapts the dispatch threshold and wait to
	// queue pressure instead of using the fixed MaxBatch/MaxWait corner.
	Adaptive AdaptiveBatching

	queue []*pendingReq
	// dispatching marks an armed timeout/dispatch cycle.
	dispatching bool
	// iaGap is the inter-arrival-gap EWMA (ns) driving the adaptive control
	// law; lastAt/seen track the previous arrival.
	iaGap  float64
	lastAt time.Duration
	seen   bool

	// Dispatches counts batched invocations; Batched sums logical requests
	// served, so Batched/Dispatches is the achieved mean batch size.
	Dispatches int64
	Batched    int64
	// EffBatch and EffWait expose the adaptive controller's latest dispatch
	// threshold and timeout (diagnostics; fixed MaxBatch/MaxWait otherwise).
	EffBatch int
	EffWait  time.Duration
	// Latency records logical-request latency including queueing delay.
	Latency *timeLatency
}

// AdaptiveBatching is the micro-batching control law: the dispatch threshold
// and timeout interpolate between (MinBatch, MinWait) and the batcher's
// (MaxBatch, MaxWait) corners as arrival pressure rises. Pressure is the
// expected number of arrivals in one MaxWait window — an EWMA of the
// arrival rate times MaxWait — normalized by MaxBatch and clamped to 1.
// Under light load a lone request dispatches immediately in a batch of one
// (latency); under a burst the threshold climbs toward MaxBatch so
// dispatches amortize (throughput), with the timeout as the backstop in
// between. Queue depth cannot drive the law — dispatch drains the queue at
// the threshold, capping any depth signal — so the rate is the input, as in
// BATCH-style serverless batchers.
type AdaptiveBatching struct {
	Enabled bool
	// MinBatch floors the adaptive dispatch threshold (default 1).
	MinBatch int
	// MinWait is the timeout at zero pressure (default MaxWait/4).
	MinWait time.Duration
	// Alpha is the arrival-gap EWMA smoothing factor in (0,1]; default 0.3.
	Alpha float64
}

// timeLatency is a tiny wrapper so Batcher can record per-request latency
// without exposing a second metrics dependency in this file's API surface.
type timeLatency struct {
	samples []time.Duration
}

func (l *timeLatency) add(d time.Duration) { l.samples = append(l.samples, d) }

// P returns the q-quantile of recorded latencies (nearest rank).
func (l *timeLatency) P(q float64) time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), l.samples...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	idx := int(q*float64(len(s))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// Count returns the number of completed logical requests.
func (l *timeLatency) Count() int { return len(l.samples) }

type pendingReq struct {
	arrived time.Duration
	done    *sim.Signal
}

// NewBatcher builds an adaptive batcher for app.
func NewBatcher(app *App, maxBatch int, maxWait time.Duration) *Batcher {
	if maxBatch < 1 {
		maxBatch = 1
	}
	return &Batcher{App: app, MaxBatch: maxBatch, MaxWait: maxWait, Latency: &timeLatency{}}
}

// SetAdaptive enables (or reconfigures) adaptive micro-batching.
func (b *Batcher) SetAdaptive(cfg AdaptiveBatching) { b.Adaptive = cfg }

// adapt folds the arrival at virtual time now into the gap EWMA and returns
// the dispatch threshold and timeout for the current pressure.
func (b *Batcher) adapt(now time.Duration) (thresh int, wait time.Duration) {
	a := b.Adaptive
	alpha := a.Alpha
	if alpha <= 0 || alpha > 1 {
		alpha = 0.3
	}
	if b.seen {
		gap := float64(now - b.lastAt)
		if b.iaGap == 0 {
			b.iaGap = gap
		} else {
			b.iaGap = (1-alpha)*b.iaGap + alpha*gap
		}
	}
	measured := b.seen
	b.lastAt, b.seen = now, true
	// pressure = expected arrivals per MaxWait window / MaxBatch. A zero
	// mean gap after at least one measurement means simultaneous arrivals —
	// saturation. Before any gap exists (the very first request) pressure
	// is zero, so a cold lone request departs immediately.
	pressure := 0.0
	if measured {
		if b.iaGap > 0 {
			pressure = float64(b.MaxWait) / b.iaGap / float64(b.MaxBatch)
		} else {
			pressure = 1
		}
	}
	if pressure > 1 {
		pressure = 1
	}
	minB := a.MinBatch
	if minB < 1 {
		minB = 1
	}
	if minB > b.MaxBatch {
		minB = b.MaxBatch
	}
	minW := a.MinWait
	if minW <= 0 {
		minW = b.MaxWait / 4
	}
	if minW > b.MaxWait {
		minW = b.MaxWait
	}
	thresh = minB + int(pressure*float64(b.MaxBatch-minB)+0.5)
	wait = minW + time.Duration(pressure*float64(b.MaxWait-minW))
	b.EffBatch, b.EffWait = thresh, wait
	return thresh, wait
}

// Submit enqueues one logical request and returns a signal fired when its
// batch completes. Must be called from event or process context.
func (b *Batcher) Submit() *sim.Signal {
	e := b.App.C.Engine
	req := &pendingReq{arrived: e.Now(), done: sim.NewSignal(e)}
	b.queue = append(b.queue, req)
	thresh, wait := b.MaxBatch, b.MaxWait
	if b.Adaptive.Enabled {
		thresh, wait = b.adapt(e.Now())
	}
	if len(b.queue) >= thresh {
		b.dispatch()
		return req.done
	}
	if !b.dispatching {
		b.dispatching = true
		e.Schedule(wait, func() {
			b.dispatching = false
			if len(b.queue) > 0 {
				b.dispatch()
			}
		})
	}
	return req.done
}

// dispatch invokes the app once for every queued request.
func (b *Batcher) dispatch() {
	batch := b.queue
	if len(batch) > b.MaxBatch {
		batch = batch[:b.MaxBatch]
	}
	b.queue = b.queue[len(batch):]
	b.Dispatches++
	b.Batched += int64(len(batch))
	e := b.App.C.Engine
	done := b.App.InvokeBatch(len(batch))
	e.Go("batch-complete", func(p *sim.Proc) {
		done.Wait(p)
		now := p.Now()
		for _, r := range batch {
			b.Latency.add(now - r.arrived)
			r.done.Fire()
		}
	})
}

// MeanBatch returns the achieved mean batch size.
func (b *Batcher) MeanBatch() float64 {
	if b.Dispatches == 0 {
		return 0
	}
	return float64(b.Batched) / float64(b.Dispatches)
}
