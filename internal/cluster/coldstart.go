package cluster

import (
	"time"

	"grouter/internal/fabric"
	"grouter/internal/scheduler"
	"grouter/internal/sim"
	"grouter/internal/xfer"
)

// ColdStartPolicy models serverless function provisioning. The paper's
// deployments pre-warm functions and models (§5, following SHEPHERD), which
// is the default here (Enabled=false ⇒ everything is always warm); enabling
// it lets experiments quantify what pre-warming buys.
type ColdStartPolicy struct {
	// Enabled turns cold starts on.
	Enabled bool
	// ContainerLatency is the container/runtime launch cost of a cold start
	// (sandbox boot, CUDA context creation).
	ContainerLatency time.Duration
	// KeepAlive is how long an idle instance stays warm.
	KeepAlive time.Duration
	// Prewarm starts every instance warm at deployment.
	Prewarm bool
}

// DefaultColdStart returns a realistic cold-start model for GPU functions.
func DefaultColdStart() ColdStartPolicy {
	return ColdStartPolicy{
		Enabled:          true,
		ContainerLatency: 800 * time.Millisecond,
		KeepAlive:        30 * time.Second,
		Prewarm:          false,
	}
}

// instanceState tracks one function instance's warmth.
type instanceState struct {
	warm     bool
	lastUsed time.Duration
}

// instKey identifies one pool replica of one stage instance. idx is the
// replica's stable member id — under elastic pools ids survive membership
// churn (a drain compacts the routable slice but never renumbers survivors),
// so warmth state always follows the same physical instance.
type instKey struct {
	si  scheduler.StageInst
	idx int
}

// SetColdStart configures the app's provisioning model; call before the
// first Invoke.
func (a *App) SetColdStart(p ColdStartPolicy) {
	a.Cold = p
	a.instances = make(map[instKey]*instanceState)
	for _, s := range a.WF.Stages {
		for r := 0; r < s.ReplicaCount(); r++ {
			si := scheduler.StageInst{Stage: s.Name, Replica: r}
			for idx := range a.poolOf(si) {
				a.instances[instKey{si, idx}] = &instanceState{warm: p.Prewarm}
			}
		}
	}
}

// ColdStarts returns how many cold starts the app has paid.
func (a *App) ColdStarts() int64 { return a.coldStarts }

// ensureWarm pays the cold-start penalty if the instance is cold or its
// keep-alive expired. It must run while the instance's compute slot is held.
// Model weights load from host memory over the instance's local PCIe route
// at full pinned bandwidth. loc is the activation's resolved location: the
// pool may have been rebuilt (drain, crash, scale) since the pick, so the
// member id must never be re-indexed into the current routable slice.
func (a *App) ensureWarm(p *sim.Proc, si scheduler.StageInst, memberID int, loc fabric.Location, weights int64) {
	if !a.Cold.Enabled || a.instances == nil {
		return
	}
	st := a.instances[instKey{si, memberID}]
	if st == nil {
		// Autoscaled instance created after SetColdStart: starts cold.
		st = &instanceState{}
		a.instances[instKey{si, memberID}] = st
	}
	now := p.Now()
	if st.warm && a.Cold.KeepAlive > 0 && now-st.lastUsed > a.Cold.KeepAlive {
		st.warm = false
	}
	if !st.warm {
		p.Sleep(a.Cold.ContainerLatency)
		if weights > 0 {
			if !loc.IsHost() {
				topo := a.C.Fabric.Topo(loc.Node)
				a.C.xm.Transfer(p, xfer.Request{
					Label: "model-load:" + si.Stage,
					Bytes: weights,
					Paths: []xfer.Path{xfer.PathOf(a.C.Fabric.Net, topo.HostToGPULinks(loc.GPU))},
				})
			}
		}
		st.warm = true
		a.coldStarts++
	}
	st.lastUsed = p.Now()
}
