package cluster

import (
	"time"

	"grouter/internal/obs"
)

// RequestBreakdown attributes one request's end-to-end latency to the
// obs bucket categories along its critical path.
type RequestBreakdown struct {
	Seq        int64
	Start, End time.Duration
	Buckets    [obs.NumBuckets]time.Duration
}

// E2E returns the request's end-to-end latency.
func (rb *RequestBreakdown) E2E() time.Duration { return rb.End - rb.Start }

// Sum returns the total attributed time; by construction it equals E2E.
func (rb *RequestBreakdown) Sum() time.Duration {
	var s time.Duration
	for _, d := range rb.Buckets {
		s += d
	}
	return s
}

// Breakdown collects per-request critical-path attributions for an app.
// Enable it with App.EnableBreakdown before invoking requests.
type Breakdown struct {
	Requests []RequestBreakdown
}

// EnableBreakdown switches on critical-path accounting for subsequent
// requests and returns the recorder.
func (a *App) EnableBreakdown() *Breakdown {
	a.Breakdown = &Breakdown{}
	return a.Breakdown
}

// instTrace is the per-stage-instance working state of one traced request.
// Instances are identified by their index in the app's execution plan, so a
// traced request allocates no per-request maps.
type instTrace struct {
	buckets *obs.Buckets
	readyAt time.Duration // all input futures resolved
	doneAt  time.Duration // output resolved
	// crit is the plan index of the input producer whose completion gated
	// readyAt (the instance's critical predecessor); hasCrit is false for
	// source stages.
	crit    int
	hasCrit bool
}

// record finalizes one request: it walks the critical chain backwards from
// the last-finishing instance, summing each chain member's buckets and
// charging the unattributed remainder of its [readyAt, doneAt] window to
// CatOther.
//
// The chain tiles [start, end] exactly: an instance becomes ready at the
// same virtual instant its critical predecessor resolves, source instances
// become ready at the request start, and the last instance finishes at the
// request end — so the recorded bucket sum equals the end-to-end latency.
func (b *Breakdown) record(st *reqState, last int, end time.Duration) {
	rb := RequestBreakdown{Seq: st.seq, Start: st.start, End: end}
	// Admission deferral precedes the launch: the chain below tiles
	// [launch, end], and the delay-queue wait tiles [start, launch].
	rb.Buckets[obs.CatDeferWait] = st.deferWait
	cur := last
	for {
		it := &st.insts[cur]
		window := it.doneAt - it.readyAt
		var acct time.Duration
		for c, d := range it.buckets.D {
			rb.Buckets[c] += d
			acct += d
		}
		if other := window - acct; other > 0 {
			rb.Buckets[obs.CatOther] += other
		}
		if !it.hasCrit {
			// Source instance: any gap back to the request's launch (none in
			// the current runtime, which starts sources immediately) is
			// unattributed. The launch instant is the submission plus any
			// admission deferral, already charged to CatDeferWait above.
			if gap := it.readyAt - st.start - st.deferWait; gap > 0 {
				rb.Buckets[obs.CatOther] += gap
			}
			break
		}
		cur = it.crit
	}
	b.Requests = append(b.Requests, rb)
}
