package cluster

import (
	"time"

	"grouter/internal/fabric"
	"grouter/internal/scheduler"
	"grouter/internal/sim"
)

// AutoscaleConfig drives per-stage instance scaling, the elasticity the
// paper's serverless substrate provides: when a stage's GPU queue stays deep,
// another instance of that function is provisioned on a lightly loaded GPU
// and invocations round-robin over the pool.
type AutoscaleConfig struct {
	// MaxReplicas caps the instance pool per stage (≥1).
	MaxReplicas int
	// QueueThreshold is the per-instance mean GPU queue depth that triggers
	// a scale-out.
	QueueThreshold int
	// Interval is the controller's evaluation period.
	Interval time.Duration
}

// DefaultAutoscale returns a responsive scaling policy.
func DefaultAutoscale() AutoscaleConfig {
	return AutoscaleConfig{MaxReplicas: 4, QueueThreshold: 2, Interval: 250 * time.Millisecond}
}

// pools returns (building lazily) the app's per-stage instance pools.
func (a *App) poolsMap() map[scheduler.StageInst][]fabric.Location {
	if a.pools == nil {
		a.pools = make(map[scheduler.StageInst][]fabric.Location)
		for si, loc := range a.Placement {
			a.pools[si] = []fabric.Location{loc}
		}
	}
	return a.pools
}

// poolOf returns the instance pool for one stage instance.
func (a *App) poolOf(si scheduler.StageInst) []fabric.Location {
	return a.poolsMap()[si]
}

// instanceFor picks the pool member serving request seq: the Route hook when
// one is installed (falling back on a declined pick), round-robin otherwise.
func (a *App) instanceFor(si scheduler.StageInst, seq int64) (fabric.Location, int) {
	pool := a.poolOf(si)
	if len(pool) == 0 {
		// Stage instances always have a base placement; an empty pool is a
		// deployment bug.
		panic("cluster: no instances for " + si.String())
	}
	if a.Route != nil {
		if idx, ok := a.Route(si, seq, pool); ok && idx >= 0 && idx < len(pool) {
			return pool[idx], idx
		}
	}
	idx := int(seq) % len(pool)
	return pool[idx], idx
}

// Replicas returns the current pool size of a stage instance.
func (a *App) Replicas(stage string, replica int) int {
	return len(a.poolOf(scheduler.StageInst{Stage: stage, Replica: replica}))
}

// ScaleEvents returns how many scale-outs the controller performed.
func (a *App) ScaleEvents() int64 { return a.scaleEvents }

// EnableAutoscale starts a daemon controller that scales GPU stages out when
// their instances' GPU queues stay above the threshold.
func (a *App) EnableAutoscale(cfg AutoscaleConfig) {
	if cfg.MaxReplicas < 1 {
		cfg.MaxReplicas = 1
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 250 * time.Millisecond
	}
	if cfg.QueueThreshold < 1 {
		cfg.QueueThreshold = 1
	}
	a.poolsMap() // materialize before the controller races with Invoke
	a.C.Engine.GoDaemon("autoscale-"+a.WF.Name, func(p *sim.Proc) {
		for {
			p.Sleep(cfg.Interval)
			a.evaluateScaling(cfg)
		}
	})
}

// evaluateScaling runs one controller step.
func (a *App) evaluateScaling(cfg AutoscaleConfig) {
	for _, s := range a.WF.Stages {
		if !s.IsGPU() {
			continue
		}
		for r := 0; r < s.ReplicaCount(); r++ {
			si := scheduler.StageInst{Stage: s.Name, Replica: r}
			pool := a.poolOf(si)
			if len(pool) >= cfg.MaxReplicas {
				continue
			}
			depth := 0
			for _, loc := range pool {
				depth += a.C.resourceAt(loc).QueueLen()
			}
			if depth/len(pool) < cfg.QueueThreshold {
				continue
			}
			// Scale out: provision one more instance on a lightly loaded GPU
			// of the same node (hierarchical control plane: local decision).
			loc := a.C.Placer.PlaceSingle(pool[0].Node)
			a.pools[si] = append(a.pools[si], loc)
			a.scaleEvents++
		}
	}
}
