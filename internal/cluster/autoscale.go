package cluster

import (
	"time"

	"grouter/internal/autoscale"
	"grouter/internal/fabric"
	"grouter/internal/scheduler"
)

// AutoscaleConfig drives per-stage instance scaling, the elasticity the
// paper's serverless substrate provides: when a stage's GPU queue stays deep,
// another instance of that function is provisioned on a lightly loaded GPU
// and invocations round-robin over the pool.
type AutoscaleConfig struct {
	// MaxReplicas caps the instance pool per stage (≥1).
	MaxReplicas int
	// QueueThreshold is the per-instance mean GPU queue depth that triggers
	// a scale-out.
	QueueThreshold int
	// Interval is the controller's evaluation period.
	Interval time.Duration
}

// DefaultAutoscale returns a responsive scaling policy.
func DefaultAutoscale() AutoscaleConfig {
	return AutoscaleConfig{MaxReplicas: 4, QueueThreshold: 2, Interval: 250 * time.Millisecond}
}

// pools returns (building lazily) the app's per-stage instance pools.
func (a *App) poolsMap() map[scheduler.StageInst][]fabric.Location {
	if a.pools == nil {
		a.pools = make(map[scheduler.StageInst][]fabric.Location)
		for si, loc := range a.Placement {
			a.pools[si] = []fabric.Location{loc}
		}
	}
	return a.pools
}

// poolOf returns the instance pool for one stage instance.
func (a *App) poolOf(si scheduler.StageInst) []fabric.Location {
	return a.poolsMap()[si]
}

// ForEachPoolMember calls fn for every member of every current routable
// pool. Iteration order is unspecified (map order); callers must fold the
// visits order-independently — the router builds its admission worker mask
// here, a pure membership set.
func (a *App) ForEachPoolMember(fn func(si scheduler.StageInst, loc fabric.Location)) {
	for si, pool := range a.poolsMap() {
		for _, loc := range pool {
			fn(si, loc)
		}
	}
}

// instanceFor picks the pool member serving one request's stage activation:
// the Route hook when one is installed (falling back on a declined pick),
// round-robin otherwise. The second return is the pick's stable member id
// (the cold-start state key); the caller must retire it with poolDone once
// the activation ends.
func (a *App) instanceFor(si scheduler.StageInst, ri RouteInfo) (fabric.Location, int) {
	pool := a.poolOf(si)
	if len(pool) == 0 {
		// Stage instances always have a base placement; an empty pool is a
		// deployment bug.
		panic("cluster: no instances for " + si.String())
	}
	if a.Route != nil {
		if idx, ok := a.Route(si, ri, pool); ok && idx >= 0 && idx < len(pool) {
			return pool[idx], a.poolPicked(si, idx)
		}
	}
	// Modulo in int64 before narrowing: int(seq) % len(pool) overflows on
	// 32-bit ints past seq 2^31 and yields a negative index (panic). The
	// clamp keeps the pick total for negative seq too.
	idx := int(ri.Seq % int64(len(pool)))
	if idx < 0 {
		idx += len(pool)
	}
	return pool[idx], a.poolPicked(si, idx)
}

// Replicas returns the current pool size of a stage instance.
func (a *App) Replicas(stage string, replica int) int {
	return len(a.poolOf(scheduler.StageInst{Stage: stage, Replica: replica}))
}

// ScaleEvents returns how many scale-outs the controller performed.
func (a *App) ScaleEvents() int64 { return a.scaleEvents }

// EnableAutoscale starts a daemon controller that scales GPU stages out when
// their instances' GPU queues stay above the threshold. It is a
// configuration of the elastic pool layer (see EnableElastic): scale-out
// only, no cooldowns, no pre-warming — new instances serve immediately and
// their first routed request pays the cold start.
func (a *App) EnableAutoscale(cfg AutoscaleConfig) {
	if cfg.MaxReplicas < 1 {
		cfg.MaxReplicas = 1
	}
	if cfg.QueueThreshold < 1 {
		cfg.QueueThreshold = 1
	}
	a.EnableElastic(ElasticConfig{
		Scaler:   autoscale.Reactive{ScaleOutDepth: cfg.QueueThreshold},
		Min:      1,
		Max:      cfg.MaxReplicas,
		Interval: cfg.Interval,
	})
}
