package cluster

import (
	"testing"
	"time"

	"grouter/internal/obs"
	"grouter/internal/scheduler"
	"grouter/internal/sim"
	"grouter/internal/topology"
	"grouter/internal/workflow"
)

// runWithBreakdown invokes n requests of wf on a fresh grouter cluster with
// critical-path accounting enabled.
func runWithBreakdown(t *testing.T, wf *workflow.Workflow, n int) *Breakdown {
	t.Helper()
	e := sim.NewEngine()
	defer e.Close()
	c := New(e, topology.DGXV100(), 1, grouterPlane)
	app := c.Deploy(wf, 0, scheduler.Options{Node: -1})
	bd := app.EnableBreakdown()
	e.Go("driver", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			app.submit(Request{}).Wait(p)
		}
	})
	e.Run(0)
	if app.Completed != n {
		t.Fatalf("completed %d requests, want %d", app.Completed, n)
	}
	return bd
}

func TestBreakdownSumMatchesE2E(t *testing.T) {
	for _, wf := range workflow.Suite() {
		bd := runWithBreakdown(t, wf, 3)
		if len(bd.Requests) != 3 {
			t.Fatalf("%s: recorded %d breakdowns, want 3", wf.Name, len(bd.Requests))
		}
		for _, rb := range bd.Requests {
			e2e, sum := rb.E2E(), rb.Sum()
			if e2e <= 0 {
				t.Errorf("%s seq %d: non-positive E2E %v", wf.Name, rb.Seq, e2e)
			}
			diff := e2e - sum
			if diff < 0 {
				diff = -diff
			}
			// The critical chain tiles [start, end]; allow only rounding slack.
			if diff > time.Microsecond {
				t.Errorf("%s seq %d: bucket sum %v != E2E %v (diff %v)",
					wf.Name, rb.Seq, sum, e2e, diff)
			}
		}
	}
}

func TestBreakdownAttributesComputeAndTransfer(t *testing.T) {
	bd := runWithBreakdown(t, workflow.Traffic(), 1)
	rb := bd.Requests[0]
	if rb.Buckets[obs.CatCompute] <= 0 {
		t.Errorf("compute bucket = %v, want > 0", rb.Buckets[obs.CatCompute])
	}
	if rb.Buckets[obs.CatTransfer] <= 0 {
		t.Errorf("transfer bucket = %v, want > 0", rb.Buckets[obs.CatTransfer])
	}
	for c, d := range rb.Buckets {
		if d < 0 {
			t.Errorf("bucket %v negative: %v", obs.Category(c), d)
		}
	}
}

func TestBreakdownDeterministic(t *testing.T) {
	a := runWithBreakdown(t, workflow.Traffic(), 2)
	b := runWithBreakdown(t, workflow.Traffic(), 2)
	if len(a.Requests) != len(b.Requests) {
		t.Fatalf("request counts differ: %d vs %d", len(a.Requests), len(b.Requests))
	}
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			t.Errorf("request %d differs across identical runs:\n%+v\n%+v",
				i, a.Requests[i], b.Requests[i])
		}
	}
}
