package cluster

import (
	"testing"
	"time"

	"grouter/internal/scheduler"
	"grouter/internal/sim"
	"grouter/internal/topology"
	"grouter/internal/trace"
	"grouter/internal/workflow"
)

func newBatchedApp(t *testing.T, maxBatch int, maxWait time.Duration) (*sim.Engine, *Batcher) {
	t.Helper()
	e := sim.NewEngine()
	c := New(e, topology.DGXV100(), 1, grouterPlane)
	app := c.Deploy(workflow.Driving(), 1, scheduler.Options{Node: 0})
	return e, NewBatcher(app, maxBatch, maxWait)
}

func TestBatcherAggregatesBurst(t *testing.T) {
	e, b := newBatchedApp(t, 8, 5*time.Millisecond)
	defer e.Close()
	// 8 requests at the same instant form exactly one batch of 8.
	for i := 0; i < 8; i++ {
		e.Schedule(0, func() { b.Submit() })
	}
	e.Run(0)
	if b.Dispatches != 1 {
		t.Errorf("dispatches = %d, want 1", b.Dispatches)
	}
	if b.MeanBatch() != 8 {
		t.Errorf("mean batch = %.1f, want 8", b.MeanBatch())
	}
	if b.Latency.Count() != 8 {
		t.Errorf("latency samples = %d, want 8", b.Latency.Count())
	}
}

func TestBatcherTimeoutFlushesPartialBatch(t *testing.T) {
	e, b := newBatchedApp(t, 32, 4*time.Millisecond)
	defer e.Close()
	e.Schedule(0, func() { b.Submit() })
	e.Schedule(time.Millisecond, func() { b.Submit() })
	e.Run(0)
	if b.Dispatches != 1 || b.Batched != 2 {
		t.Errorf("dispatches/batched = %d/%d, want 1/2", b.Dispatches, b.Batched)
	}
	// The first request waited the timeout before compute started.
	if got := b.Latency.P(0); got < 4*time.Millisecond {
		t.Errorf("min latency %v below the batching wait", got)
	}
}

func TestBatcherSplitsOversizedBurst(t *testing.T) {
	e, b := newBatchedApp(t, 4, 2*time.Millisecond)
	defer e.Close()
	for i := 0; i < 10; i++ {
		e.Schedule(0, func() { b.Submit() })
	}
	e.Run(0)
	if b.Batched != 10 {
		t.Fatalf("batched = %d, want 10", b.Batched)
	}
	if b.Dispatches < 3 {
		t.Errorf("dispatches = %d, want >= 3 with MaxBatch 4", b.Dispatches)
	}
}

func TestBatchingImprovesThroughputUnderLoad(t *testing.T) {
	// Offer more load than the unbatched pipeline can sustain (the
	// segmentation stage caps out under ~200 req/s at batch 1) and measure
	// completions within a fixed horizon.
	measure := func(maxBatch int) float64 {
		e := sim.NewEngine()
		defer e.Close()
		c := New(e, topology.DGXV100(), 1, grouterPlane)
		app := c.Deploy(workflow.Driving(), 1, scheduler.Options{Node: 0})
		b := NewBatcher(app, maxBatch, 3*time.Millisecond)
		dur := 10 * time.Second
		arrivals := trace.Generate(trace.Spec{
			Pattern: trace.Sporadic, Duration: dur, MeanRPS: 400, Seed: 17,
		})
		for _, at := range arrivals {
			at := at
			e.Schedule(at, func() { b.Submit() })
		}
		e.Run(dur)
		return float64(b.Latency.Count()) / dur.Seconds()
	}
	t1 := measure(1)
	t16 := measure(16)
	if !(t16 > t1*1.2) {
		t.Errorf("batching throughput %.1f not >1.2x unbatched %.1f", t16, t1)
	}
}

func TestBatcherMeanBatchEmpty(t *testing.T) {
	_, b := newBatchedApp(t, 4, time.Millisecond)
	if b.MeanBatch() != 0 {
		t.Error("empty batcher mean batch should be 0")
	}
	if b.Latency.P(0.5) != 0 {
		t.Error("empty latency percentile should be 0")
	}
}

func TestAdaptiveBatcherLoneRequestSkipsTheWait(t *testing.T) {
	// A lone request under light load must not pay the fixed batcher's full
	// MaxWait: at near-zero pressure the adaptive threshold floors at
	// MinBatch 1, so the request dispatches immediately.
	lat := func(adaptive bool) time.Duration {
		e, b := newBatchedApp(t, 16, 8*time.Millisecond)
		defer e.Close()
		if adaptive {
			b.SetAdaptive(AdaptiveBatching{Enabled: true})
		}
		e.Schedule(0, func() { b.Submit() })
		e.Run(0)
		return b.Latency.P(0)
	}
	fixed, adapt := lat(false), lat(true)
	if !(fixed >= 8*time.Millisecond) {
		t.Fatalf("fixed batcher latency %v did not include the %v wait", fixed, 8*time.Millisecond)
	}
	if !(adapt < fixed-7*time.Millisecond) {
		t.Errorf("adaptive lone-request latency %v did not skip the wait (fixed %v)", adapt, fixed)
	}
}

func TestAdaptiveBatcherBurstClimbsToMaxBatch(t *testing.T) {
	// Sustained backlog drives the pressure EWMA to 1, so the dispatch
	// threshold must climb to MaxBatch and batches amortize.
	e, b := newBatchedApp(t, 8, 5*time.Millisecond)
	defer e.Close()
	b.SetAdaptive(AdaptiveBatching{Enabled: true})
	const n = 120
	for i := 0; i < n; i++ {
		at := time.Duration(i) * 50 * time.Microsecond
		e.Schedule(at, func() { b.Submit() })
	}
	e.Run(0)
	if b.Batched != n {
		t.Fatalf("batched = %d, want %d", b.Batched, n)
	}
	if b.EffBatch != b.MaxBatch {
		t.Errorf("effective threshold = %d, want MaxBatch %d under sustained backlog", b.EffBatch, b.MaxBatch)
	}
	if mean := b.MeanBatch(); mean < float64(b.MaxBatch)/2 {
		t.Errorf("mean batch %.1f under burst, want >= %0.f", mean, float64(b.MaxBatch)/2)
	}
}

func TestAdaptiveBatcherDeterministic(t *testing.T) {
	// The control law is pure state over virtual time: two identical runs
	// must produce identical dispatch counts and latency percentiles.
	run := func() (int64, float64, time.Duration) {
		e, b := newBatchedApp(t, 8, 4*time.Millisecond)
		defer e.Close()
		b.SetAdaptive(AdaptiveBatching{Enabled: true, MinWait: time.Millisecond, Alpha: 0.3})
		arrivals := trace.Generate(trace.Spec{
			Pattern: trace.Bursty, Duration: 2 * time.Second, MeanRPS: 300, Seed: 9,
		})
		for _, at := range arrivals {
			at := at
			e.Schedule(at, func() { b.Submit() })
		}
		e.Run(0)
		return b.Dispatches, b.MeanBatch(), b.Latency.P(0.99)
	}
	d1, m1, p1 := run()
	d2, m2, p2 := run()
	if d1 != d2 || m1 != m2 || p1 != p2 {
		t.Errorf("adaptive batching diverged: (%d %.2f %v) vs (%d %.2f %v)", d1, m1, p1, d2, m2, p2)
	}
	if d1 == 0 {
		t.Fatal("no dispatches")
	}
}
