package cluster

import (
	"testing"
	"time"

	"grouter/internal/scheduler"
	"grouter/internal/sim"
	"grouter/internal/topology"
	"grouter/internal/trace"
	"grouter/internal/workflow"
)

func newBatchedApp(t *testing.T, maxBatch int, maxWait time.Duration) (*sim.Engine, *Batcher) {
	t.Helper()
	e := sim.NewEngine()
	c := New(e, topology.DGXV100(), 1, grouterPlane)
	app := c.Deploy(workflow.Driving(), 1, scheduler.Options{Node: 0})
	return e, NewBatcher(app, maxBatch, maxWait)
}

func TestBatcherAggregatesBurst(t *testing.T) {
	e, b := newBatchedApp(t, 8, 5*time.Millisecond)
	defer e.Close()
	// 8 requests at the same instant form exactly one batch of 8.
	for i := 0; i < 8; i++ {
		e.Schedule(0, func() { b.Submit() })
	}
	e.Run(0)
	if b.Dispatches != 1 {
		t.Errorf("dispatches = %d, want 1", b.Dispatches)
	}
	if b.MeanBatch() != 8 {
		t.Errorf("mean batch = %.1f, want 8", b.MeanBatch())
	}
	if b.Latency.Count() != 8 {
		t.Errorf("latency samples = %d, want 8", b.Latency.Count())
	}
}

func TestBatcherTimeoutFlushesPartialBatch(t *testing.T) {
	e, b := newBatchedApp(t, 32, 4*time.Millisecond)
	defer e.Close()
	e.Schedule(0, func() { b.Submit() })
	e.Schedule(time.Millisecond, func() { b.Submit() })
	e.Run(0)
	if b.Dispatches != 1 || b.Batched != 2 {
		t.Errorf("dispatches/batched = %d/%d, want 1/2", b.Dispatches, b.Batched)
	}
	// The first request waited the timeout before compute started.
	if got := b.Latency.P(0); got < 4*time.Millisecond {
		t.Errorf("min latency %v below the batching wait", got)
	}
}

func TestBatcherSplitsOversizedBurst(t *testing.T) {
	e, b := newBatchedApp(t, 4, 2*time.Millisecond)
	defer e.Close()
	for i := 0; i < 10; i++ {
		e.Schedule(0, func() { b.Submit() })
	}
	e.Run(0)
	if b.Batched != 10 {
		t.Fatalf("batched = %d, want 10", b.Batched)
	}
	if b.Dispatches < 3 {
		t.Errorf("dispatches = %d, want >= 3 with MaxBatch 4", b.Dispatches)
	}
}

func TestBatchingImprovesThroughputUnderLoad(t *testing.T) {
	// Offer more load than the unbatched pipeline can sustain (the
	// segmentation stage caps out under ~200 req/s at batch 1) and measure
	// completions within a fixed horizon.
	measure := func(maxBatch int) float64 {
		e := sim.NewEngine()
		defer e.Close()
		c := New(e, topology.DGXV100(), 1, grouterPlane)
		app := c.Deploy(workflow.Driving(), 1, scheduler.Options{Node: 0})
		b := NewBatcher(app, maxBatch, 3*time.Millisecond)
		dur := 10 * time.Second
		arrivals := trace.Generate(trace.Spec{
			Pattern: trace.Sporadic, Duration: dur, MeanRPS: 400, Seed: 17,
		})
		for _, at := range arrivals {
			at := at
			e.Schedule(at, func() { b.Submit() })
		}
		e.Run(dur)
		return float64(b.Latency.Count()) / dur.Seconds()
	}
	t1 := measure(1)
	t16 := measure(16)
	if !(t16 > t1*1.2) {
		t.Errorf("batching throughput %.1f not >1.2x unbatched %.1f", t16, t1)
	}
}

func TestBatcherMeanBatchEmpty(t *testing.T) {
	_, b := newBatchedApp(t, 4, time.Millisecond)
	if b.MeanBatch() != 0 {
		t.Error("empty batcher mean batch should be 0")
	}
	if b.Latency.P(0.5) != 0 {
		t.Error("empty latency percentile should be 0")
	}
}
