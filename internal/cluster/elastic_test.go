package cluster

import (
	"math"
	"reflect"
	"testing"
	"time"

	"grouter/internal/autoscale"
	"grouter/internal/core"
	"grouter/internal/dataplane"
	"grouter/internal/fabric"
	"grouter/internal/faults"
	"grouter/internal/scheduler"
	"grouter/internal/sim"
	"grouter/internal/topology"
	"grouter/internal/trace"
	"grouter/internal/workflow"
)

// completion is one OnComplete observation, the byte-identity unit of the
// determinism and differential-oracle tests.
type completion struct {
	seq int64
	at  time.Duration
	e2e time.Duration
}

func recordCompletions(app *App) *[]completion {
	out := &[]completion{}
	app.OnComplete = func(seq int64, at, e2e time.Duration) {
		*out = append(*out, completion{seq, at, e2e})
	}
	return out
}

func burst(e *sim.Engine, app *App, spec trace.Spec) {
	for _, at := range trace.Generate(spec) {
		at := at
		e.Schedule(at, func() { app.submit(Request{}) })
	}
}

func TestInstanceForHugeSeq(t *testing.T) {
	// Regression: int(seq) % len(pool) overflows 32-bit ints past seq 2^31
	// and yields a negative index. The 10M-request regime reaches it.
	e := sim.NewEngine()
	defer e.Close()
	c := New(e, topology.DGXV100(), 1, grouterPlane)
	app := c.Deploy(workflow.Driving(), 0, scheduler.Options{Node: 0})
	si := scheduler.StageInst{Stage: "segmentation", Replica: 0}
	app.poolsMap()
	app.pools[si] = []fabric.Location{
		{Node: 0, GPU: 1}, {Node: 0, GPU: 2}, {Node: 0, GPU: 3},
	}
	pool := app.pools[si]
	for _, seq := range []int64{
		int64(math.MaxInt32) + 1, // the 32-bit overflow point
		int64(math.MaxInt32) * 7,
		math.MaxInt64,
		1 << 40,
	} {
		loc, id := app.instanceFor(si, RouteInfo{Seq: seq})
		want := int(seq % int64(len(pool)))
		if id != want || loc != pool[want] {
			t.Fatalf("seq %d: got (%v, %d), want (%v, %d)", seq, loc, id, pool[want], want)
		}
	}
	// Negative seq (no caller sends one today) must still pick, not panic.
	loc, id := app.instanceFor(si, RouteInfo{Seq: -5})
	if id < 0 || id >= len(pool) || loc != pool[id] {
		t.Fatalf("negative seq: got (%v, %d)", loc, id)
	}
}

func TestElasticScaleOutAndDrain(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	c := New(e, topology.DGXV100(), 1, grouterPlane)
	app := c.Deploy(workflow.Driving(), 0, scheduler.Options{Node: 0})
	ep := app.EnableElastic(ElasticConfig{
		Scaler:          autoscale.Reactive{ScaleOutDepth: 2, ScaleIn: true},
		Min:             1,
		Max:             4,
		Interval:        100 * time.Millisecond,
		ScaleInCooldown: 200 * time.Millisecond,
	})
	burst(e, app, trace.Spec{Pattern: trace.Sporadic, Duration: 3 * time.Second, MeanRPS: 80, Seed: 3})
	// Run past the burst so the idle controller can drain back down.
	e.Run(10 * time.Second)
	if ep.Stats.ScaleOuts == 0 {
		t.Fatal("no scale-out under overload")
	}
	if ep.Stats.ScaleIns == 0 {
		t.Fatal("no scale-in after the burst ended")
	}
	if ep.Stats.Drained != ep.Stats.ScaleIns {
		t.Fatalf("Drained = %d, ScaleIns = %d — every cordoned member must finish draining",
			ep.Stats.Drained, ep.Stats.ScaleIns)
	}
	if got := app.ScaleEvents(); got != ep.Stats.ScaleOuts {
		t.Fatalf("ScaleEvents() = %d, Stats.ScaleOuts = %d", got, ep.Stats.ScaleOuts)
	}
	// Idle pools are back at Min with nothing in flight or mid-drain.
	for _, st := range []string{"denoise", "segmentation", "colorize"} {
		active, prov, drain := ep.Replicas(st, 0)
		if active != 1 || prov != 0 || drain != 0 {
			t.Errorf("%s: active/prov/drain = %d/%d/%d, want 1/0/0", st, active, prov, drain)
		}
	}
	if ep.GPUSeconds() <= 0 {
		t.Error("GPU-seconds accounting is empty")
	}
}

func TestElasticScaleOutCooldown(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	c := New(e, topology.DGXV100(), 1, grouterPlane)
	app := c.Deploy(workflow.Driving(), 0, scheduler.Options{Node: 0})
	ep := app.EnableElastic(ElasticConfig{
		Scaler:           autoscale.Reactive{ScaleOutDepth: 1},
		Min:              1,
		Max:              4,
		Interval:         50 * time.Millisecond,
		ScaleOutCooldown: time.Hour, // longer than the run: one scale-out per pool
	})
	burst(e, app, trace.Spec{Pattern: trace.Sporadic, Duration: 5 * time.Second, MeanRPS: 80, Seed: 3})
	e.Run(0)
	if ep.Stats.ScaleOuts == 0 {
		t.Fatal("no scale-out under overload")
	}
	if ep.Stats.ScaleOuts > 3 {
		t.Fatalf("ScaleOuts = %d with an uncooled window of one per pool (3 GPU pools)", ep.Stats.ScaleOuts)
	}
	for _, st := range []string{"denoise", "segmentation", "colorize"} {
		if active, _, _ := ep.Replicas(st, 0); active > 2 {
			t.Errorf("%s grew to %d actives inside one cooldown window", st, active)
		}
	}
}

func TestElasticMinFloor(t *testing.T) {
	// Min above the deployed size provisions up to the floor even when idle.
	e := sim.NewEngine()
	defer e.Close()
	c := New(e, topology.DGXV100(), 1, grouterPlane)
	app := c.Deploy(workflow.Driving(), 0, scheduler.Options{Node: 0})
	ep := app.EnableElastic(ElasticConfig{
		Scaler:   autoscale.Fixed{},
		Min:      2,
		Max:      2,
		Interval: 50 * time.Millisecond,
	})
	e.Run(time.Second)
	for _, st := range []string{"denoise", "segmentation", "colorize"} {
		if active, _, _ := ep.Replicas(st, 0); active != 2 {
			t.Errorf("%s actives = %d, want Min floor 2", st, active)
		}
	}
	if ep.Stats.ScaleOuts != 3 {
		t.Errorf("ScaleOuts = %d, want exactly one per pool", ep.Stats.ScaleOuts)
	}
}

func TestElasticDrainCordonSemantics(t *testing.T) {
	// White-box drain contract: a draining member takes no new picks, and
	// teardown waits for its last in-flight request.
	e := sim.NewEngine()
	defer e.Close()
	c := New(e, topology.DGXV100(), 1, grouterPlane)
	app := c.Deploy(workflow.Driving(), 0, scheduler.Options{Node: 0})
	ep := app.EnableElastic(ElasticConfig{
		Scaler:   autoscale.Fixed{},
		Min:      1,
		Max:      4,
		Interval: time.Hour, // controller never steps; the test drives directly
	})
	si := scheduler.StageInst{Stage: "segmentation", Replica: 0}
	ps := ep.pools[si]
	ep.scaleOut(ps, e.Now())
	if len(app.poolOf(si)) != 2 {
		t.Fatalf("pool size = %d after scale-out, want 2", len(app.poolOf(si)))
	}
	// Pick member id 1 (seq 1 → index 1) and leave it in flight.
	_, id := app.instanceFor(si, RouteInfo{Seq: 1})
	if id != 1 {
		t.Fatalf("pick id = %d, want 1", id)
	}
	ep.scaleIn(ps, 1, e.Now())
	if ep.Stats.ScaleIns != 1 {
		t.Fatalf("ScaleIns = %d, want 1", ep.Stats.ScaleIns)
	}
	if ep.Stats.Drained != 0 {
		t.Fatal("member torn down with a request still in flight")
	}
	if len(app.poolOf(si)) != 1 {
		t.Fatalf("draining member still routable: pool size %d", len(app.poolOf(si)))
	}
	// Every new pick lands on the surviving member.
	for seq := int64(2); seq < 8; seq++ {
		if _, id := app.instanceFor(si, RouteInfo{Seq: seq}); id != 0 {
			t.Fatalf("seq %d picked drained member %d", seq, id)
		}
		app.poolDone(si, 0)
	}
	// The in-flight request completing finalizes the teardown.
	app.poolDone(si, 1)
	if ep.Stats.Drained != 1 {
		t.Fatalf("Drained = %d after last in-flight completed, want 1", ep.Stats.Drained)
	}
	if _, _, draining := ep.Replicas("segmentation", 0); draining != 0 {
		t.Fatal("drained member still counted")
	}
}

func TestElasticCrashRecovery(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	var pl *core.Plane
	c := New(e, topology.DGXV100(), 1, func(f *fabric.Fabric) dataplane.Plane {
		pl = core.New(f, core.FullConfig())
		return pl
	})
	app := c.Deploy(workflow.Driving(), 0, scheduler.Options{Node: 0})
	ep := app.EnableElastic(ElasticConfig{
		Scaler:       autoscale.Fixed{},
		Min:          2,
		Max:          2,
		Interval:     50 * time.Millisecond,
		RecoverAfter: 300 * time.Millisecond,
	})
	in := faults.NewInjector(e, c.Fabric.Net)
	ep.WatchFaults(in)
	e.Run(200 * time.Millisecond)
	si := scheduler.StageInst{Stage: "segmentation", Replica: 0}
	ps := ep.pools[si]
	if len(ps.slots) != 2 {
		t.Fatalf("pool at %d members before crash, want 2", len(ps.slots))
	}
	victim := ps.members[1]
	in.CrashGPUAt(210*time.Millisecond, pl, victim.loc.Node, victim.loc.GPU)
	e.Run(250 * time.Millisecond)
	if victim.healthy {
		t.Fatal("member still healthy after its GPU crashed")
	}
	if ep.Stats.Crashes == 0 {
		t.Fatal("crash not counted")
	}
	for _, m := range ps.slots {
		if m == victim {
			t.Fatal("crashed member still routable")
		}
	}
	// RecoverAfter elapses → back in the pool.
	e.Run(600 * time.Millisecond)
	if !victim.healthy {
		t.Fatal("member never recovered")
	}
	if ep.Stats.Recoveries == 0 {
		t.Fatal("recovery not counted")
	}
	if len(ps.slots) != 2 {
		t.Fatalf("pool at %d members after recovery, want 2", len(ps.slots))
	}
}

// TestElasticDifferentialOracle pins the tentpole's oracle: the elastic
// machinery at a pinned pool size (Fixed, Min=Max=initial) must reproduce
// the plain fixed-pool replay byte for byte — member ids, in-flight
// accounting, and the controller daemon change nothing observable.
func TestElasticDifferentialOracle(t *testing.T) {
	spec := trace.Spec{Pattern: trace.Bursty, Duration: 3 * time.Second, MeanRPS: 60, Seed: 7}
	run := func(elastic bool) []completion {
		e := sim.NewEngine()
		defer e.Close()
		c := New(e, topology.DGXV100(), 1, grouterPlane)
		app := c.Deploy(workflow.Driving(), 0, scheduler.Options{Node: 0})
		out := recordCompletions(app)
		if elastic {
			app.EnableElastic(ElasticConfig{
				Scaler:   autoscale.Fixed{Replicas: 1},
				Min:      1,
				Max:      1,
				Interval: 100 * time.Millisecond,
			})
		}
		burst(e, app, spec)
		e.Run(0)
		return *out
	}
	plain := run(false)
	pinned := run(true)
	if len(plain) == 0 {
		t.Fatal("no completions")
	}
	if !reflect.DeepEqual(plain, pinned) {
		t.Fatalf("pinned elastic replay diverged from plain replay: %d vs %d completions",
			len(pinned), len(plain))
	}
}

func TestElasticDoubleRunDeterminism(t *testing.T) {
	run := func() ([]completion, ElasticStats) {
		e := sim.NewEngine()
		defer e.Close()
		c := New(e, topology.DGXV100(), 1, grouterPlane)
		app := c.Deploy(workflow.Driving(), 0, scheduler.Options{Node: 0})
		out := recordCompletions(app)
		app.SetColdStart(ColdStartPolicy{Enabled: true, ContainerLatency: 200 * time.Millisecond,
			KeepAlive: time.Minute, Prewarm: true})
		ep := app.EnableElastic(ElasticConfig{
			Scaler:          autoscale.Predictive{PerInstance: 1.5},
			Min:             1,
			Max:             4,
			Interval:        100 * time.Millisecond,
			ScaleInCooldown: 300 * time.Millisecond,
			Prewarm:         true,
		})
		burst(e, app, trace.Spec{Pattern: trace.Bursty, Duration: 4 * time.Second, MeanRPS: 80, Seed: 11})
		e.Run(8 * time.Second)
		return *out, ep.Stats
	}
	c1, s1 := run()
	c2, s2 := run()
	if len(c1) == 0 {
		t.Fatal("no completions")
	}
	if !reflect.DeepEqual(c1, c2) {
		t.Fatal("elastic replay is not byte-identical across runs")
	}
	if s1 != s2 {
		t.Fatalf("controller stats diverged: %+v vs %+v", s1, s2)
	}
}

// TestElasticScaleOutMemoryPressure pins the placement bugfix: when the home
// node's GPUs lack the free memory a replica needs, scale-out falls back to
// another node instead of piling onto a memory-starved GPU, and evictions on
// the starved node do not regress versus not scaling at all.
func TestElasticScaleOutMemoryPressure(t *testing.T) {
	spec := trace.Spec{Pattern: trace.Sporadic, Duration: 4 * time.Second, MeanRPS: 80, Seed: 3}
	run := func(elastic bool) (node0Evicts int64, ep *ElasticPools, app *App) {
		e := sim.NewEngine()
		defer e.Close()
		var pl *core.Plane
		c := New(e, topology.DGXV100(), 2, func(f *fabric.Fabric) dataplane.Plane {
			pl = core.New(f, core.FullConfig())
			return pl
		})
		app = c.Deploy(workflow.Driving(), 0, scheduler.Options{Node: 0})
		// Starve node 0: leave 100 MB per GPU — activations fit, but a
		// segmentation replica (240 MB of weights + activations) does not.
		for _, dev := range c.Fabric.Nodes[0].GPUs {
			if free := dev.Free(); free > 100<<20 {
				if _, err := dev.Alloc(free - 100<<20); err != nil {
					t.Fatal(err)
				}
			}
		}
		if elastic {
			ep = app.EnableElastic(ElasticConfig{
				Scaler:   autoscale.Reactive{ScaleOutDepth: 2},
				Min:      1,
				Max:      4,
				Interval: 100 * time.Millisecond,
			})
		}
		burst(e, app, spec)
		e.Run(0)
		return pl.Store(0).Evictions.N, ep, app
	}
	fixedEvicts, _, _ := run(false)
	elasticEvicts, ep, app := run(true)
	if ep.Stats.ScaleOuts == 0 {
		t.Fatal("no scale-out under overload")
	}
	// The segmentation replica cannot fit on node 0: every scaled member of
	// that pool must have crossed to node 1.
	si := scheduler.StageInst{Stage: "segmentation", Replica: 0}
	ps := ep.pools[si]
	if len(ps.members) < 2 {
		t.Fatal("segmentation pool never grew")
	}
	for _, m := range ps.members[1:] {
		if m.loc.Node != 1 {
			t.Errorf("scaled segmentation replica landed on starved node %d GPU %d", m.loc.Node, m.loc.GPU)
		}
	}
	// Offloading work to node 1 must not add eviction pressure on node 0.
	slack := fixedEvicts/10 + 5
	if elasticEvicts > fixedEvicts+slack {
		t.Errorf("node-0 evictions regressed under scale-out: %d (elastic) vs %d (fixed)",
			elasticEvicts, fixedEvicts)
	}
	if app.Completed == 0 {
		t.Fatal("no completions under memory pressure")
	}
}
