package cluster

// PDMode selects how one LLM request's prefill and decode phases are placed.
type PDMode int

const (
	// PDAuto lets the routing policy pick per request (the zero value).
	PDAuto PDMode = iota
	// PDColocated runs both phases back to back on one GPU; no KV handoff.
	PDColocated
	// PDDisaggregated runs prefill and decode on the pools the routing
	// decision names, shipping the prompt's KV cache between them over the
	// data plane. When the decision lands both phases on the same GPU the
	// executor collapses to the colocated path.
	PDDisaggregated
)

// String names the mode for stats tables and span attributes.
func (m PDMode) String() string {
	switch m {
	case PDAuto:
		return "auto"
	case PDColocated:
		return "colocated"
	case PDDisaggregated:
		return "disaggregated"
	default:
		return "invalid"
	}
}
