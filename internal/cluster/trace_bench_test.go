package cluster

import (
	"testing"
	"time"

	"grouter/internal/obs"
	"grouter/internal/scheduler"
	"grouter/internal/sim"
	"grouter/internal/topology"
	"grouter/internal/workflow"
)

// benchArrivals is a fixed 16-request bursty-ish schedule.
func benchArrivals() []time.Duration {
	out := make([]time.Duration, 16)
	for i := range out {
		out[i] = time.Duration(i) * 125 * time.Millisecond
	}
	return out
}

func benchRunTrace(b *testing.B, traced bool) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := sim.NewEngine()
		if traced {
			obs.Attach(e)
		}
		c := New(e, topology.DGXV100(), 1, grouterPlane)
		app := c.Deploy(workflow.Traffic(), 0, scheduler.Options{Node: -1})
		app.RunTrace(benchArrivals())
		if app.Completed != 16 {
			b.Fatalf("completed %d, want 16", app.Completed)
		}
		e.Close()
	}
}

// BenchmarkRunTraceDisabled / BenchmarkRunTraceEnabled measure the span
// tracer's overhead on a full 16-request workflow run; the pair backs the
// tracing-overhead table in EXPERIMENTS.md.
func BenchmarkRunTraceDisabled(b *testing.B) { benchRunTrace(b, false) }
func BenchmarkRunTraceEnabled(b *testing.B)  { benchRunTrace(b, true) }
