package cluster

import (
	"time"

	"grouter/internal/sim"
)

// ReplayOptions configures App.ReplayTrace.
type ReplayOptions struct {
	// Quantum groups arrivals into fixed admission windows: every request
	// whose offset falls inside a window is admitted together at the
	// window's closing edge by a single feeder process. Batched admission
	// amortizes per-request control work — the engine pays one timer per
	// window instead of one per arrival, and the autoscaler and placer see
	// whole batches instead of reacting to each request. Zero (or negative)
	// replays every arrival at its exact offset.
	Quantum time.Duration
	// HighEvery admits every n-th request (1-indexed, in trace order) as
	// QoSHigh, so a replay carries a deterministic priority mix; zero
	// admits everything QoSLow, the pre-QoS behavior.
	HighEvery int
}

// ReplayStats summarizes one replayed trace in virtual time.
type ReplayStats struct {
	Requests  int
	Completed int
	// Duration spans replay start to engine drain.
	Duration time.Duration
	// Throughput is completed requests per second of virtual time.
	Throughput float64
	P50, P99   time.Duration
}

// ReplayTrace submits every arrival (offsets relative to now, sorted
// ascending) and runs the engine until it drains, returning summary stats.
// With a positive Quantum, arrivals are admitted in batches at window
// boundaries; admission order within a batch follows trace order, so the
// replay stays deterministic. Percentiles cover every sample the app has
// recorded, so call this on a freshly deployed app for per-replay numbers.
func (a *App) ReplayTrace(arrivals []time.Duration, opt ReplayOptions) ReplayStats {
	e := a.C.Engine
	base := e.Now()
	before := a.Completed
	qosOf := func(i int) QoS {
		if opt.HighEvery > 0 && (i+1)%opt.HighEvery == 0 {
			return QoSHigh
		}
		return QoSLow
	}
	if opt.Quantum <= 0 {
		e.Reserve(len(arrivals) + 64)
		for i, at := range arrivals {
			i, at := i, at
			e.Schedule(at, func() { a.startQoS(a.Batch, nil, qosOf(i)) })
		}
	} else if len(arrivals) > 0 {
		q := opt.Quantum
		e.Go("replay-feeder", func(p *sim.Proc) {
			i := 0
			for i < len(arrivals) {
				// Close of the window holding the next pending arrival.
				win := (arrivals[i]/q + 1) * q
				if wait := base + win - p.Now(); wait > 0 {
					p.Sleep(wait)
				}
				for i < len(arrivals) && arrivals[i] < win {
					a.startQoS(a.Batch, nil, qosOf(i))
					i++
				}
			}
		})
	}
	e.Run(0)
	st := ReplayStats{
		Requests:  len(arrivals),
		Completed: a.Completed - before,
		Duration:  e.Now() - base,
		P50:       a.E2E.P(0.5),
		P99:       a.E2E.P(0.99),
	}
	if st.Duration > 0 {
		st.Throughput = float64(st.Completed) / st.Duration.Seconds()
	}
	return st
}
