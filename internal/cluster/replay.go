package cluster

import (
	"time"

	"grouter/internal/sim"
)

// ReplayOptions configures App.ReplayTrace.
type ReplayOptions struct {
	// Quantum groups arrivals into fixed admission windows: every request
	// whose offset falls inside a window is admitted together at the
	// window's closing edge by a single feeder process. Batched admission
	// amortizes per-request control work — the engine pays one timer per
	// window instead of one per arrival, and the autoscaler and placer see
	// whole batches instead of reacting to each request. Zero replays every
	// arrival at its exact offset; negative is rejected by Validate.
	Quantum time.Duration
	// HighEvery admits every n-th request (1-indexed, in trace order) as
	// QoSHigh, so a replay carries a deterministic priority mix; zero
	// admits everything QoSLow, the pre-QoS behavior.
	//
	// Deprecated: use App.Replay with a ReplaySpec.RequestAt that returns
	// Request{QoS: QoSHigh} for the mixed-in requests — the typed descriptor
	// carries any per-request attribute, not just the priority class.
	HighEvery int
}

// Validate reports out-of-range options as typed sentinels. ReplayTrace used
// to accept them silently: a negative HighEvery quietly disabled the priority
// mix and a negative Quantum quietly aliased exact admission.
func (o ReplayOptions) Validate() error {
	if o.HighEvery < 0 {
		return ErrNegativeHighEvery
	}
	if o.Quantum < 0 {
		return ErrNegativeQuantum
	}
	return nil
}

// ReplaySpec configures App.Replay, the typed-request trace replay.
type ReplaySpec struct {
	// Quantum batches arrivals into fixed admission windows exactly as
	// ReplayOptions.Quantum does; zero replays each arrival at its offset.
	Quantum time.Duration
	// RequestAt returns the typed descriptor of the i-th admitted request
	// (0-indexed, trace order). Nil admits the zero-value Request for every
	// arrival. Descriptors are trusted — replays skip per-request Validate
	// on the admission fast path.
	RequestAt func(i int) Request
}

// ReplayStats summarizes one replayed trace in virtual time.
type ReplayStats struct {
	Requests  int
	Completed int
	// Shed counts requests dropped by SLO admission control during the
	// replay; Requests == Completed + Shed when admission control is the
	// only drop source (and Shed is zero without it).
	Shed int
	// Duration spans replay start to engine drain.
	Duration time.Duration
	// Throughput is completed requests per second of virtual time.
	Throughput float64
	P50, P99   time.Duration
}

// admitTrace schedules one admission callback per arrival (offsets relative
// to base, sorted ascending). With quantum <= 0 every arrival is scheduled at
// its exact offset; otherwise a single feeder process admits each fixed
// window's arrivals together at the window's closing edge, in trace order.
// Both shapes are shared verbatim by every replay entry point so they stay
// byte-identical.
func admitTrace(e *sim.Engine, base time.Duration, arrivals []time.Duration, quantum time.Duration, admit func(i int)) {
	if quantum <= 0 {
		e.Reserve(len(arrivals) + 64)
		for i := range arrivals {
			i := i
			e.Schedule(arrivals[i], func() { admit(i) })
		}
	} else if len(arrivals) > 0 {
		q := quantum
		e.Go("replay-feeder", func(p *sim.Proc) {
			i := 0
			for i < len(arrivals) {
				// Close of the window holding the next pending arrival.
				win := (arrivals[i]/q + 1) * q
				if wait := base + win - p.Now(); wait > 0 {
					p.Sleep(wait)
				}
				for i < len(arrivals) && arrivals[i] < win {
					admit(i)
					i++
				}
			}
		})
	}
}

// Replay submits every arrival (offsets relative to now, sorted ascending)
// as the typed request spec.RequestAt describes and runs the engine until it
// drains, returning summary stats. A nil trace and a negative quantum are
// rejected with ErrNilTrace / ErrNegativeQuantum (an empty non-nil trace is
// a valid no-op replay). Admission order within a quantum window follows
// trace order, so the replay stays deterministic. Percentiles cover every
// sample the app has recorded, so call this on a freshly deployed app for
// per-replay numbers.
func (a *App) Replay(arrivals []time.Duration, spec ReplaySpec) (ReplayStats, error) {
	if arrivals == nil {
		return ReplayStats{}, ErrNilTrace
	}
	if spec.Quantum < 0 {
		return ReplayStats{}, ErrNegativeQuantum
	}
	e := a.C.Engine
	base := e.Now()
	before := a.Completed
	shedBefore := a.Shed
	reqAt := spec.RequestAt
	admitTrace(e, base, arrivals, spec.Quantum, func(i int) {
		var req Request
		if reqAt != nil {
			req = reqAt(i)
		}
		a.startReq(req, nil)
	})
	e.Run(0)
	st := ReplayStats{
		Requests:  len(arrivals),
		Completed: a.Completed - before,
		Shed:      a.Shed - shedBefore,
		Duration:  e.Now() - base,
		P50:       a.E2E.P(0.5),
		P99:       a.E2E.P(0.99),
	}
	if st.Duration > 0 {
		st.Throughput = float64(st.Completed) / st.Duration.Seconds()
	}
	return st, nil
}

// ReplayTrace is the untyped replay entry point, kept byte-compatible as a
// thin shim over Replay. It panics on the option misuse Validate rejects —
// conditions the old code accepted silently (negative HighEvery quietly
// disabled the mix; negative Quantum aliased exact admission). A nil trace
// stays a no-op here for compatibility; the validated Replay rejects it.
// New code should call Replay, whose ReplaySpec carries any per-request
// attribute.
func (a *App) ReplayTrace(arrivals []time.Duration, opt ReplayOptions) ReplayStats {
	if err := opt.Validate(); err != nil {
		panic(err)
	}
	if arrivals == nil {
		arrivals = []time.Duration{}
	}
	spec := ReplaySpec{Quantum: opt.Quantum}
	if he := opt.HighEvery; he > 0 {
		spec.RequestAt = func(i int) Request {
			if (i+1)%he == 0 {
				return Request{QoS: QoSHigh}
			}
			return Request{}
		}
	}
	st, err := a.Replay(arrivals, spec)
	if err != nil {
		panic(err)
	}
	return st
}
