package cluster

// Differential oracles for the deprecated submission shims: every old entry
// point (Invoke, InvokeQoS, ReplayTrace with HighEvery) must stay
// byte-identical to the typed-Request path it now delegates to. The shims are
// same-package here, so the deliberate deprecated calls below do not trip
// staticcheck's SA1019; the repo-root deprecation scan allowlists this file.

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"grouter/internal/scheduler"
	"grouter/internal/sim"
	"grouter/internal/topology"
	"grouter/internal/trace"
	"grouter/internal/workflow"
)

// shimResult captures everything observable about one driven app.
type shimResult struct {
	completed int
	samples   []time.Duration
	p50, p99  time.Duration
}

// driveApp deploys the driving workflow and admits one request per arrival
// via submit (old or new path), waiting for the engine to drain.
func driveApp(arrivals []time.Duration, submit func(a *App, i int)) shimResult {
	e := sim.NewEngine()
	defer e.Close()
	c := New(e, topology.DGXV100(), 1, grouterPlane)
	app := c.Deploy(workflow.Driving(), 0, scheduler.Options{Node: -1})
	for i, at := range arrivals {
		i := i
		e.Schedule(at, func() { submit(app, i) })
	}
	e.Run(0)
	return shimResult{
		completed: app.Completed,
		samples:   app.E2E.Samples(),
		p50:       app.E2E.P(0.5),
		p99:       app.E2E.P(0.99),
	}
}

func shimArrivals(n int) []time.Duration {
	arrivals := make([]time.Duration, n)
	for i := range arrivals {
		arrivals[i] = time.Duration(i) * 3 * time.Millisecond
	}
	return arrivals
}

// TestInvokeShimByteIdentical: Invoke() ≡ Submit(Request{}).
func TestInvokeShimByteIdentical(t *testing.T) {
	arrivals := shimArrivals(200)
	old := driveApp(arrivals, func(a *App, i int) { a.Invoke() })
	new_ := driveApp(arrivals, func(a *App, i int) {
		if _, err := a.Submit(Request{}); err != nil {
			t.Errorf("Submit: %v", err)
		}
	})
	if !reflect.DeepEqual(old, new_) {
		t.Errorf("Invoke shim diverged from Submit:\nold %+v\nnew %+v", old, new_)
	}
	if old.completed != len(arrivals) {
		t.Fatalf("completed %d of %d", old.completed, len(arrivals))
	}
}

// TestInvokeQoSShimByteIdentical: InvokeQoS(q) ≡ Submit(Request{QoS: q}),
// with a deterministic priority mix so both classes exercise the queues.
func TestInvokeQoSShimByteIdentical(t *testing.T) {
	arrivals := shimArrivals(200)
	qosOf := func(i int) QoS {
		if i%7 == 0 {
			return QoSHigh
		}
		return QoSLow
	}
	old := driveApp(arrivals, func(a *App, i int) { a.InvokeQoS(qosOf(i)) })
	new_ := driveApp(arrivals, func(a *App, i int) {
		if _, err := a.Submit(Request{QoS: qosOf(i)}); err != nil {
			t.Errorf("Submit: %v", err)
		}
	})
	if !reflect.DeepEqual(old, new_) {
		t.Errorf("InvokeQoS shim diverged from Submit:\nold %+v\nnew %+v", old, new_)
	}
}

// replayApp replays one trace on a fresh app via run.
func replayApp(run func(a *App) ReplayStats) (ReplayStats, []time.Duration) {
	e := sim.NewEngine()
	defer e.Close()
	c := New(e, topology.DGXV100(), 1, grouterPlane)
	app := c.Deploy(workflow.Driving(), 0, scheduler.Options{Node: -1})
	st := run(app)
	return st, app.E2E.Samples()
}

// TestReplayTraceShimByteIdentical: ReplayTrace{Quantum, HighEvery} ≡
// Replay{Quantum, RequestAt} for both admission shapes (exact and batched).
func TestReplayTraceShimByteIdentical(t *testing.T) {
	arrivals := trace.Generate(trace.Spec{
		Pattern: trace.Bursty, Duration: 2 * time.Second, MeanRPS: 150, Seed: 7,
	})
	for _, q := range []time.Duration{0, 10 * time.Millisecond} {
		oldSt, oldSamples := replayApp(func(a *App) ReplayStats {
			return a.ReplayTrace(arrivals, ReplayOptions{Quantum: q, HighEvery: 5})
		})
		newSt, newSamples := replayApp(func(a *App) ReplayStats {
			st, err := a.Replay(arrivals, ReplaySpec{Quantum: q, RequestAt: func(i int) Request {
				if (i+1)%5 == 0 {
					return Request{QoS: QoSHigh}
				}
				return Request{}
			}})
			if err != nil {
				t.Fatalf("Replay: %v", err)
			}
			return st
		})
		if !reflect.DeepEqual(oldSt, newSt) {
			t.Errorf("quantum %v: replay stats diverged:\nold %+v\nnew %+v", q, oldSt, newSt)
		}
		if !reflect.DeepEqual(oldSamples, newSamples) {
			t.Errorf("quantum %v: per-request latency samples diverged", q)
		}
		if oldSt.Completed == 0 {
			t.Fatalf("quantum %v: replay completed nothing", q)
		}
	}
}

// TestRequestValidation covers every Validate rejection plus the valid zero
// value; Submit must surface the same sentinels.
func TestRequestValidation(t *testing.T) {
	cases := []struct {
		name string
		req  Request
	}{
		{"negative batch", Request{Batch: -1}},
		{"low QoS", Request{QoS: QoSLow - 1}},
		{"high QoS", Request{QoS: QoSHigh + 1}},
		{"negative prompt", Request{PromptTokens: -1}},
		{"negative output", Request{OutTokens: -8}},
		{"negative session", Request{Session: -3}},
		{"low PD mode", Request{PD: PDAuto - 1}},
		{"high PD mode", Request{PD: PDDisaggregated + 1}},
	}
	for _, tc := range cases {
		if err := tc.req.Validate(); !errors.Is(err, ErrBadRequest) {
			t.Errorf("%s: Validate = %v, want ErrBadRequest", tc.name, err)
		}
	}
	if err := (Request{}).Validate(); err != nil {
		t.Errorf("zero request: Validate = %v, want nil", err)
	}

	e := sim.NewEngine()
	defer e.Close()
	c := New(e, topology.DGXV100(), 1, grouterPlane)
	app := c.Deploy(workflow.Driving(), 0, scheduler.Options{Node: -1})
	if _, err := app.Submit(Request{Batch: -1}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("Submit invalid = %v, want ErrBadRequest", err)
	}
}

// TestReplayValidation: each replay misuse maps to its typed sentinel — the
// conditions the old ReplayTrace accepted silently.
func TestReplayValidation(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	c := New(e, topology.DGXV100(), 1, grouterPlane)
	app := c.Deploy(workflow.Driving(), 0, scheduler.Options{Node: -1})

	if err := (ReplayOptions{HighEvery: -1}).Validate(); !errors.Is(err, ErrNegativeHighEvery) {
		t.Errorf("HighEvery -1: Validate = %v, want ErrNegativeHighEvery", err)
	}
	if err := (ReplayOptions{Quantum: -time.Millisecond}).Validate(); !errors.Is(err, ErrNegativeQuantum) {
		t.Errorf("Quantum -1ms: Validate = %v, want ErrNegativeQuantum", err)
	}
	if err := (ReplayOptions{}).Validate(); err != nil {
		t.Errorf("zero options: Validate = %v, want nil", err)
	}

	if _, err := app.Replay(nil, ReplaySpec{}); !errors.Is(err, ErrNilTrace) {
		t.Errorf("Replay nil trace = %v, want ErrNilTrace", err)
	}
	if _, err := app.Replay([]time.Duration{}, ReplaySpec{Quantum: -time.Second}); !errors.Is(err, ErrNegativeQuantum) {
		t.Errorf("Replay negative quantum = %v, want ErrNegativeQuantum", err)
	}
	st, err := app.Replay([]time.Duration{}, ReplaySpec{})
	if err != nil || st.Requests != 0 {
		t.Errorf("empty trace: st=%+v err=%v, want valid no-op", st, err)
	}

	// ReplayTrace panics with the same sentinels (it cannot return an error).
	mustPanic := func(name string, want error, f func()) {
		defer func() {
			r := recover()
			err, ok := r.(error)
			if !ok || !errors.Is(err, want) {
				t.Errorf("%s: panic = %v, want %v", name, r, want)
			}
		}()
		f()
	}
	mustPanic("HighEvery", ErrNegativeHighEvery, func() {
		app.ReplayTrace([]time.Duration{0}, ReplayOptions{HighEvery: -2})
	})
	mustPanic("Quantum", ErrNegativeQuantum, func() {
		app.ReplayTrace([]time.Duration{0}, ReplayOptions{Quantum: -time.Second})
	})
	// A nil trace stays a compatible no-op on the untyped entry point.
	if st := app.ReplayTrace(nil, ReplayOptions{}); st.Requests != 0 {
		t.Errorf("ReplayTrace nil trace = %+v, want no-op", st)
	}
}
