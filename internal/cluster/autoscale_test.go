package cluster

import (
	"testing"
	"time"

	"grouter/internal/scheduler"
	"grouter/internal/sim"
	"grouter/internal/topology"
	"grouter/internal/trace"
	"grouter/internal/workflow"
)

func TestAutoscaleScalesOutUnderOverload(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	c := New(e, topology.DGXV100(), 1, grouterPlane)
	app := c.Deploy(workflow.Driving(), 0, scheduler.Options{Node: 0})
	app.EnableAutoscale(AutoscaleConfig{MaxReplicas: 4, QueueThreshold: 2, Interval: 100 * time.Millisecond})
	// Overload: far more than one segmentation instance can sustain.
	for _, at := range trace.Generate(trace.Spec{
		Pattern: trace.Sporadic, Duration: 5 * time.Second, MeanRPS: 80, Seed: 3,
	}) {
		at := at
		e.Schedule(at, func() { app.submit(Request{}) })
	}
	e.Run(0)
	if app.ScaleEvents() == 0 {
		t.Fatal("controller never scaled out under overload")
	}
	// The bottleneck stage (segmentation) should have grown its pool.
	if got := app.Replicas("segmentation", 0); got < 2 {
		t.Errorf("segmentation replicas = %d, want >= 2", got)
	}
	if app.Replicas("segmentation", 0) > 4 {
		t.Error("pool exceeded MaxReplicas")
	}
}

func TestAutoscaleIdleAppStaysAtOne(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	c := New(e, topology.DGXV100(), 1, grouterPlane)
	app := c.Deploy(workflow.Driving(), 0, scheduler.Options{Node: 0})
	app.EnableAutoscale(DefaultAutoscale())
	e.Go("driver", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			app.submit(Request{}).Wait(p)
			p.Sleep(200 * time.Millisecond)
		}
	})
	e.Run(0)
	if app.ScaleEvents() != 0 {
		t.Errorf("idle app scaled out %d times", app.ScaleEvents())
	}
	if app.Replicas("denoise", 0) != 1 {
		t.Errorf("replicas = %d, want 1", app.Replicas("denoise", 0))
	}
}

func TestAutoscaleImprovesThroughput(t *testing.T) {
	measure := func(auto bool) int {
		e := sim.NewEngine()
		defer e.Close()
		c := New(e, topology.DGXV100(), 1, grouterPlane)
		app := c.Deploy(workflow.Driving(), 0, scheduler.Options{Node: 0})
		if auto {
			app.EnableAutoscale(AutoscaleConfig{MaxReplicas: 4, QueueThreshold: 2, Interval: 100 * time.Millisecond})
		}
		for _, at := range trace.Generate(trace.Spec{
			Pattern: trace.Sporadic, Duration: 8 * time.Second, MeanRPS: 80, Seed: 3,
		}) {
			at := at
			e.Schedule(at, func() { app.submit(Request{}) })
		}
		e.Run(8 * time.Second) // fixed horizon: count completions inside it
		return app.Completed
	}
	fixed := measure(false)
	scaled := measure(true)
	if !(scaled > fixed) {
		t.Errorf("autoscaling completed %d, fixed %d — expected improvement", scaled, fixed)
	}
}

func TestAutoscaledColdInstances(t *testing.T) {
	// New instances provisioned by the autoscaler start cold when cold
	// starts are enabled.
	e := sim.NewEngine()
	defer e.Close()
	c := New(e, topology.DGXV100(), 1, grouterPlane)
	app := c.Deploy(workflow.Driving(), 0, scheduler.Options{Node: 0})
	app.SetColdStart(ColdStartPolicy{Enabled: true, ContainerLatency: 200 * time.Millisecond,
		KeepAlive: time.Minute, Prewarm: true})
	app.EnableAutoscale(AutoscaleConfig{MaxReplicas: 3, QueueThreshold: 2, Interval: 100 * time.Millisecond})
	for _, at := range trace.Generate(trace.Spec{
		Pattern: trace.Sporadic, Duration: 5 * time.Second, MeanRPS: 80, Seed: 9,
	}) {
		at := at
		e.Schedule(at, func() { app.submit(Request{}) })
	}
	e.Run(0)
	if app.ScaleEvents() == 0 {
		t.Skip("no scale-out under this seed")
	}
	// Pre-warmed base instances plus cold autoscaled ones → some cold starts.
	if app.ColdStarts() == 0 {
		t.Error("autoscaled instances should cold-start")
	}
}
