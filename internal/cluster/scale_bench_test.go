package cluster

import (
	"fmt"
	"testing"
	"time"

	"grouter/internal/scheduler"
	"grouter/internal/sim"
	"grouter/internal/topology"
	"grouter/internal/trace"
	"grouter/internal/workflow"
)

// scaleArrivals generates the canonical scale-replay schedule: a bursty
// Azure-pattern trace sized to ~`requests` arrivals at 500 req/s mean.
func scaleArrivals(requests int) []time.Duration {
	return trace.Generate(trace.Spec{
		Pattern:  trace.Bursty,
		Duration: time.Duration(float64(requests) / 500 * float64(time.Second)),
		MeanRPS:  500,
		Seed:     42,
	})
}

// BenchmarkScaleReplay replays a ~100k-request bursty trace (5k under
// -short) through the driving workflow split across a 2-node DGX-V100
// cluster. It is the acceptance benchmark for the engine/cluster/netsim
// fast path; before/after numbers live in EXPERIMENTS.md.
func BenchmarkScaleReplay(b *testing.B) {
	requests := 100_000
	if testing.Short() {
		requests = 5_000
	}
	arrivals := scaleArrivals(requests)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := sim.NewEngine()
		c := New(e, topology.DGXV100(), 2, grouterPlane)
		app := c.Deploy(workflow.Driving(), 1, scheduler.Options{Node: 0, SplitAcrossNodes: true})
		app.EnableAutoscale(DefaultAutoscale())
		app.RunTrace(arrivals)
		if app.Completed != len(arrivals) {
			b.Fatalf("completed %d of %d", app.Completed, len(arrivals))
		}
		e.Close()
	}
}

// BenchmarkScaleReplaySharded replays the same canonical bursty trace over
// the 8-pod scale-out fleet at varying shard counts. Deterministic output is
// identical across sub-benchmarks (ShardedReplay's differential tests assert
// it); only wall-clock changes, so the shards=1 / shards=N ns/op ratio is
// the parallel speedup on the host. On a single-core host expect ~1× plus
// barrier overhead; see EXPERIMENTS.md for multi-core numbers.
func BenchmarkScaleReplaySharded(b *testing.B) {
	requests := 100_000
	if testing.Short() {
		requests = 5_000
	}
	arrivals := scaleArrivals(requests)
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				st := ShardedReplay(arrivals, ShardedOptions{Shards: shards}, buildScalePod)
				if st.Completed != len(arrivals) {
					b.Fatalf("completed %d of %d", st.Completed, len(arrivals))
				}
			}
		})
	}
}
