package cluster

import (
	"math/rand"
	"time"

	"grouter/internal/dataplane"
	"grouter/internal/fabric"
	"grouter/internal/obs"
	"grouter/internal/scheduler"
	"grouter/internal/sim"
	"grouter/internal/workflow"
)

// Request fast path. The original InvokeBatch rebuilt the request's entire
// working set per call — future/refcount maps keyed by StageInst, a closure
// and formatted process name per stage instance, and a seeded RNG even for
// workflows with no probabilistic stages. At replay scale (10^5..10^6
// requests) that allocation traffic dominated. The plan below precomputes
// everything request-invariant once per app (instance order, input wiring,
// consumer refcounts, edge kinds, process/function names, per-batch
// latencies), and per-request state lives in pooled reqState values whose
// activations are handed to the engine as sim.Runner values — a request
// allocates nothing on the steady path. Event ordering is identical to the
// original per-request code, so simulations remain byte-for-byte
// deterministic across the rewrite.

// planInput wires one input edge of a stage instance: the producer's index
// in invokePlan.insts plus the edge classification for latency attribution.
type planInput struct {
	prod int
	kind EdgeKind
}

// planInst is the request-invariant description of one stage instance.
type planInst struct {
	si    scheduler.StageInst
	stage *workflow.Stage
	// name is the engine process name; fn the data-plane function name.
	name string
	fn   string
	// inputs lists producer edges; the instance's resolved input refs live
	// at reqState.inRefs[inOff : inOff+len(inputs)].
	inputs []planInput
	inOff  int
	// refs is how many consumer instances read this instance's output.
	refs int
	// ingress marks a GPU source stage that fetches its request payload from
	// host memory.
	ingress bool
	// hasOut marks an instance whose output is published to the data plane.
	hasOut  bool
	putKind EdgeKind
}

// instCost caches the per-batch model costs of one instance.
type instCost struct {
	lat      time.Duration
	slo      time.Duration
	inBytes  int64
	outBytes int64
}

// invokePlan is the request-invariant execution plan of one app.
type invokePlan struct {
	insts []planInst
	// inTotal is the summed input count (size of reqState.inRefs).
	inTotal int
	// hasProb marks a workflow with at least one probabilistic stage; only
	// those need the per-request seeded RNG (a skip draw against probability
	// one can never skip, so prob-free workflows elide the RNG entirely).
	hasProb bool
	// ingressFn is the shared data-plane name for ingress Puts.
	ingressFn string
	// costs caches per-batch instance costs, keyed by batch size.
	costs map[int][]instCost
}

// plan returns the app's execution plan, building it on first use.
func (a *App) plan() *invokePlan {
	if a.reqPlan != nil {
		return a.reqPlan
	}
	pl := &invokePlan{
		ingressFn: a.WF.Name + "/ingress",
		costs:     map[int][]instCost{},
	}
	idx := map[scheduler.StageInst]int{}
	for _, s := range a.WF.Stages {
		for r := 0; r < s.ReplicaCount(); r++ {
			si := scheduler.StageInst{Stage: s.Name, Replica: r}
			idx[si] = len(pl.insts)
			pl.insts = append(pl.insts, planInst{
				si:      si,
				stage:   s,
				name:    a.WF.Name + "/" + si.String(),
				fn:      a.WF.Name + "/" + s.Name,
				ingress: len(s.Deps) == 0 && s.IsGPU(),
				hasOut:  len(a.WF.Consumers(s)) > 0,
				putKind: a.putKind(s),
			})
			if s.ProbOrOne() < 1 {
				pl.hasProb = true
			}
		}
	}
	for i := range pl.insts {
		pi := &pl.insts[i]
		pi.inOff = pl.inTotal
		for _, in := range a.inputsOf(pi.stage, pi.si.Replica) {
			j := idx[in.prod]
			pi.inputs = append(pi.inputs, planInput{prod: j, kind: in.kind})
			pl.insts[j].refs++
			pl.inTotal++
		}
	}
	a.reqPlan = pl
	return pl
}

// costsFor returns (caching) the per-instance model costs at one batch size.
func (pl *invokePlan) costsFor(a *App, batch int) []instCost {
	if c, ok := pl.costs[batch]; ok {
		return c
	}
	c := make([]instCost, len(pl.insts))
	for i := range pl.insts {
		s := pl.insts[i].stage
		c[i] = instCost{
			lat:      s.Model.Latency(a.C.Class, batch),
			slo:      a.WF.StageSLO(s, a.C.Class, batch),
			inBytes:  s.Model.InBytes(batch),
			outBytes: s.Model.OutBytes(batch),
		}
	}
	pl.costs[batch] = c
	return c
}

// outSlot is one instance's output: a reusable signal plus the resolved ref
// and the remaining consumer count for Free.
type outSlot struct {
	sig  sim.Signal
	val  dataplane.DataRef
	refs int
}

// activation is one stage instance's execution of one request. It implements
// sim.Runner so spawning it allocates nothing, and embeds the FnCtx values
// passed to the data plane (valid for the request's duration; the state pool
// recycles them only after every process of the request has finished).
type activation struct {
	st      *reqState
	idx     int
	loc     fabric.Location
	poolIdx int
	ctx     dataplane.FnCtx
	ictx    dataplane.FnCtx
}

// reqState is the pooled per-request working state.
type reqState struct {
	app       *App
	seq       int64
	batch     int
	qos       QoS
	start     time.Duration
	// deferWait is the request's cumulative admission-deferral time; the
	// breakdown charges it to CatDeferWait so bucket sums still tile E2E.
	deferWait time.Duration
	remaining int
	// done fires at request completion; nil when the submitter doesn't wait
	// (trace replays), eliding the per-request signal.
	done    *sim.Signal
	rng     *rand.Rand
	reqSpan obs.SpanID
	costs   []instCost

	xferGPU, xferHost, compute time.Duration

	slots  []outSlot
	acts   []activation
	inRefs []dataplane.DataRef
	// insts holds breakdown working state; nil while breakdown is disabled.
	insts []instTrace
}

// takeReqState pops a recycled request state or builds a fresh one.
func (a *App) takeReqState() *reqState {
	if n := len(a.freeStates); n > 0 {
		st := a.freeStates[n-1]
		a.freeStates[n-1] = nil
		a.freeStates = a.freeStates[:n-1]
		return st
	}
	pl := a.plan()
	st := &reqState{
		app:    a,
		slots:  make([]outSlot, len(pl.insts)),
		acts:   make([]activation, len(pl.insts)),
		inRefs: make([]dataplane.DataRef, pl.inTotal),
	}
	for i := range st.slots {
		st.slots[i].sig = sim.MakeSignal(a.C.Engine)
	}
	for i := range st.acts {
		st.acts[i].st = st
		st.acts[i].idx = i
	}
	return st
}

// releaseReqState rearms the state and returns it to the pool. It must only
// run once every process of the request has finished with it — i.e. from the
// last instance, after stats are recorded.
func (a *App) releaseReqState(st *reqState) {
	for i := range st.slots {
		st.slots[i].sig.Reset()
		st.slots[i].val = dataplane.DataRef{}
	}
	st.done = nil
	st.rng = nil
	st.costs = nil
	st.qos = QoSLow
	st.deferWait = 0
	st.xferGPU, st.xferHost, st.compute = 0, 0, 0
	a.freeStates = append(a.freeStates, st)
}

// start launches one request at the given batch size. done may be nil when
// no submitter waits on completion.
func (a *App) start(batch int, done *sim.Signal) { a.startQoS(batch, done, QoSLow) }

// startQoS is start with an explicit priority class carried into every GPU
// compute-slot acquisition of the request.
func (a *App) startQoS(batch int, done *sim.Signal, qos QoS) {
	a.startReq(Request{Batch: batch, QoS: qos}, done)
}

// startReq admits one request described by the typed descriptor — the
// single entry point every submission path (Submit, the Invoke shims, trace
// replays) funnels into. The descriptor is trusted here; Submit validates,
// replays assume well-formed requests. done may be nil when no submitter
// waits on completion. With an Admit hook installed the request passes
// through SLO admission control first; the return reports a synchronous
// shed (Submit surfaces it as ErrSLOShed). Without a hook the request
// launches immediately — the pre-admission fast path, byte-identical.
func (a *App) startReq(req Request, done *sim.Signal) bool {
	if a.Admit == nil {
		a.launchReq(req, done, a.C.Engine.Now(), 0)
		return false
	}
	return a.admitReq(req, done, a.C.Engine.Now(), 0)
}

// launchReq launches one admitted request. t0 is its submission instant and
// waited its cumulative admission-deferral time (zero on the un-gated path);
// the request's end-to-end latency spans t0 to completion, so deferral is
// part of the measured latency and tiles the breakdown as CatDeferWait.
func (a *App) launchReq(req Request, done *sim.Signal, t0, waited time.Duration) {
	batch := req.Batch
	if batch <= 0 {
		batch = a.Batch
	}
	qos := req.QoS
	c := a.C
	pl := a.plan()
	c.seq++
	seq := c.seq
	st := a.takeReqState()
	st.seq = seq
	st.batch = batch
	st.qos = qos
	st.start = t0
	st.deferWait = waited
	st.done = done
	st.remaining = len(pl.insts)
	st.costs = pl.costsFor(a, batch)
	if pl.hasProb {
		st.rng = rand.New(rand.NewSource(a.seedBase + seq))
	}

	tr := obs.TracerOf(c.Engine)
	st.reqSpan = tr.BeginOn(obs.ReqTrack(seq), obs.CatRequest, a.WF.Name)
	tr.SetAttrInt(st.reqSpan, "seq", seq)
	tr.SetAttrInt(st.reqSpan, "batch", int64(batch))
	if a.Breakdown != nil {
		if st.insts == nil {
			st.insts = make([]instTrace, len(pl.insts))
			for i := range st.insts {
				st.insts[i].buckets = obs.NewBuckets()
			}
		}
		for i := range st.insts {
			it := &st.insts[i]
			it.buckets.Reset()
			it.readyAt, it.doneAt = 0, 0
			it.crit, it.hasCrit = 0, false
		}
	}

	ri := RouteInfo{Seq: seq, QoS: qos, Session: req.Session}
	for i := range pl.insts {
		pi := &pl.insts[i]
		st.slots[i].refs = pi.refs
		ac := &st.acts[i]
		ac.loc, ac.poolIdx = a.instanceFor(pi.si, ri)
		c.Engine.GoRun(pi.name, ac)
	}
}

// Run executes one stage instance for one request. It is the body the
// original InvokeBatch closure ran, operating on plan indices and pooled
// state instead of per-request maps; the sequence of engine interactions is
// unchanged.
func (ac *activation) Run(p *sim.Proc) {
	st := ac.st
	a := st.app
	c := a.C
	pl := a.reqPlan
	pi := &pl.insts[ac.idx]
	s := pi.stage
	cost := &st.costs[ac.idx]
	tr := obs.TracerOf(c.Engine)

	// Wait for every input future; the resolved refs land in this
	// instance's window of the flat scratch buffer.
	inputs := st.inRefs[pi.inOff : pi.inOff+len(pi.inputs)]
	for k := range pi.inputs {
		sl := &st.slots[pi.inputs[k].prod]
		sl.sig.Wait(p)
		inputs[k] = sl.val
	}
	var it *instTrace
	if st.insts != nil {
		// All input futures have resolved, so every producer's doneAt is
		// final; the one that resolved last is this instance's critical
		// predecessor.
		it = &st.insts[ac.idx]
		it.readyAt = p.Now()
		for _, in := range pi.inputs {
			if !it.hasCrit || st.insts[in.prod].doneAt > st.insts[it.crit].doneAt {
				it.crit, it.hasCrit = in.prod, true
			}
		}
		obs.UseBuckets(p, it.buckets)
	}
	skipped := false
	if st.rng != nil {
		skipped = st.rng.Float64() >= s.ProbOrOne()
	}

	// GPU source stages fetch their request payload from host memory (I/O
	// lands in the host-side store): the gFn-host ingress pattern of §2.2.
	var ingress dataplane.DataRef
	if pi.ingress && !skipped {
		ac.ictx = dataplane.FnCtx{
			Fn: pl.ingressFn, Workflow: a.WF.Name,
			Loc:         fabric.Location{Node: ac.loc.Node, GPU: fabric.HostGPU},
			ConsumerSeq: st.seq,
		}
		ref, err := c.Plane.Put(p, &ac.ictx, cost.inBytes)
		if err != nil {
			panic(err)
		}
		ingress = ref
	}
	ac.ctx = dataplane.FnCtx{
		Fn:           pi.fn,
		Workflow:     a.WF.Name,
		Loc:          ac.loc,
		SLO:          cost.slo,
		InferLatency: cost.lat,
		ConsumerSeq:  st.seq,
	}

	// A function instance occupies its compute slot for its whole
	// activation — pulling inputs, computing, and publishing its output —
	// matching time-multiplexed serverless GPU sharing, where a container's
	// transfers run within its execution turn. Input futures are awaited
	// *before* acquisition, so there is no hold-and-wait cycle.
	out := dataplane.DataRef{}
	if !skipped {
		res := c.resourceAt(ac.loc)
		qStart := p.Now()
		res.AcquirePri(p, int32(st.qos))
		heldAt := p.Now()
		obs.Account(p, obs.CatQueue, heldAt-qStart)
		wStart := p.Now()
		a.ensureWarm(p, pi.si, ac.poolIdx, ac.loc, s.Model.WeightsBytes)
		obs.Account(p, obs.CatSetup, p.Now()-wStart)
		if ingress.Bytes > 0 {
			t0 := p.Now()
			if err := c.Plane.Get(p, &ac.ctx, ingress); err != nil {
				panic(err)
			}
			st.xferHost += p.Now() - t0
			c.Plane.Free(ingress)
		}
		for k := range pi.inputs {
			if inputs[k].Bytes == 0 {
				continue
			}
			t0 := p.Now()
			if err := c.Plane.Get(p, &ac.ctx, inputs[k]); err != nil {
				panic(err)
			}
			dt := p.Now() - t0
			switch pi.inputs[k].kind {
			case EdgeGPUGPU:
				st.xferGPU += dt
			case EdgeGPUHost:
				st.xferHost += dt
			}
		}
		cs := tr.BeginOn(obs.ReqTrack(st.seq), obs.CatCompute, s.Name)
		p.Sleep(cost.lat)
		tr.End(cs)
		obs.Account(p, obs.CatCompute, cost.lat)
		st.compute += cost.lat
		if pi.hasOut {
			t0 := p.Now()
			ref, err := c.Plane.Put(p, &ac.ctx, cost.outBytes)
			if err != nil {
				panic(err)
			}
			dt := p.Now() - t0
			switch pi.putKind {
			case EdgeGPUGPU:
				st.xferGPU += dt
			case EdgeGPUHost:
				st.xferHost += dt
			}
			out = ref
		}
		res.Release()
		if c.OnGPUService != nil && !ac.loc.IsHost() {
			c.OnGPUService(ac.loc.Node, ac.loc.GPU, p.Now()-heldAt)
		}
	}
	// Retire the pool pick (in-flight accounting for cordon/drain) whether
	// the activation ran or was probabilistically skipped.
	a.poolDone(pi.si, ac.poolIdx)
	// Release inputs whether consumed or skipped.
	for k := range pi.inputs {
		sl := &st.slots[pi.inputs[k].prod]
		sl.refs--
		if sl.refs == 0 && inputs[k].Bytes > 0 {
			c.Plane.Free(inputs[k])
		}
	}
	if it != nil {
		// doneAt must be final before the future resolves: a consumer woken
		// by the fire reads it when picking its critical predecessor.
		it.doneAt = p.Now()
		obs.UseBuckets(p, nil)
	}
	sl := &st.slots[ac.idx]
	sl.val = out
	sl.sig.Fire()
	st.remaining--
	if st.remaining == 0 {
		end := p.Now()
		a.E2E.Add(end - st.start)
		a.E2EClass[qosIndex(st.qos)].Add(end - st.start)
		a.XferGPU.Add(st.xferGPU)
		a.XferHost.Add(st.xferHost)
		a.Compute.Add(st.compute)
		a.Completed++
		if a.OnComplete != nil {
			a.OnComplete(st.seq, end, end-st.start)
		}
		tr.End(st.reqSpan)
		if st.insts != nil {
			a.Breakdown.record(st, ac.idx, end)
		}
		if st.done != nil {
			st.done.Fire()
		}
		a.releaseReqState(st)
	}
}
