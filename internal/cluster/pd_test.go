package cluster

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"grouter/internal/core"
	"grouter/internal/dataplane"
	"grouter/internal/fabric"
	"grouter/internal/faults"
	"grouter/internal/models"
	"grouter/internal/sim"
	"grouter/internal/topology"
)

// newLLMService builds a one-node H800 cluster and deploys the llama-7b
// service with the given pool partition.
func newLLMService(t *testing.T, cfg PDConfig) (*sim.Engine, *Cluster, *LLMService) {
	t.Helper()
	e := sim.NewEngine()
	c := New(e, topology.H800x8(), 1, grouterPlane)
	if cfg.LLM == nil {
		cfg.LLM = models.MustLookupLLM("llama-7b")
	}
	svc, err := c.DeployLLM(cfg)
	if err != nil {
		t.Fatalf("DeployLLM: %v", err)
	}
	return e, c, svc
}

// pdOutcome captures everything observable about one driven service.
type pdOutcome struct {
	completed int
	e2e       []time.Duration
	ttft      []time.Duration
	stats     PDStats
}

// drivePD admits one request per arrival and drains the engine.
func drivePD(e *sim.Engine, svc *LLMService, arrivals []time.Duration, reqAt func(i int) Request) pdOutcome {
	for i, at := range arrivals {
		i := i
		e.Schedule(at, func() { svc.startReq(reqAt(i), nil) })
	}
	e.Run(0)
	return pdOutcome{
		completed: svc.Completed,
		e2e:       svc.E2E.Samples(),
		ttft:      svc.TTFT.Samples(),
		stats:     svc.Stats,
	}
}

func pdArrivals(n int, gap time.Duration) []time.Duration {
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = time.Duration(i) * gap
	}
	return out
}

// TestPDCollapseOracle is the zero-cost-transfer differential oracle: a
// disaggregated decision whose prefill and decode land on the same GPU ships
// nothing, so it must execute byte-identically to an explicit colocated
// decision on that GPU — under contention (arrivals faster than service).
func TestPDCollapseOracle(t *testing.T) {
	gpu0 := fabric.Location{Node: 0, GPU: 0}
	run := func(mode PDMode) pdOutcome {
		e, _, svc := newLLMService(t, PDConfig{MixedWorkers: 1})
		defer e.Close()
		svc.Route = func(req *Request, seq int64) PDDecision {
			return PDDecision{Mode: mode, Prefill: gpu0, Decode: gpu0}
		}
		return drivePD(e, svc, pdArrivals(60, 2*time.Millisecond), func(i int) Request {
			return Request{PromptTokens: 256 + 64*(i%5), OutTokens: 8}
		})
	}
	collapsed := run(PDDisaggregated)
	colocated := run(PDColocated)
	if collapsed.stats.Collapsed != 60 || collapsed.stats.Colocated != 60 {
		t.Fatalf("collapse stats = %+v, want 60 collapsed colocated runs", collapsed.stats)
	}
	collapsed.stats.Collapsed = colocated.stats.Collapsed
	if !reflect.DeepEqual(collapsed, colocated) {
		t.Errorf("same-GPU disaggregation diverged from colocated:\n%+v\n%+v", collapsed, colocated)
	}
}

// TestPDZeroKVSequentialOracle: with a free KV handoff (ZeroKV) and no
// queueing (closed-loop sequential drive), the disaggregated plan costs
// exactly prefill + decode — byte-identical latencies to colocated even
// across different GPUs.
func TestPDZeroKVSequentialOracle(t *testing.T) {
	run := func(cfg PDConfig, pd PDMode) pdOutcome {
		e, _, svc := newLLMService(t, cfg)
		defer e.Close()
		e.Go("driver", func(p *sim.Proc) {
			for i := 0; i < 40; i++ {
				sig, err := svc.Submit(Request{PD: pd, PromptTokens: 128 * (1 + i%6), OutTokens: 4})
				if err != nil {
					t.Errorf("Submit: %v", err)
					return
				}
				sig.Wait(p)
			}
		})
		e.Run(0)
		return pdOutcome{completed: svc.Completed, e2e: svc.E2E.Samples(), ttft: svc.TTFT.Samples()}
	}
	disagg := run(PDConfig{PrefillWorkers: 1, DecodeWorkers: 1, ZeroKV: true}, PDDisaggregated)
	coloc := run(PDConfig{MixedWorkers: 1}, PDColocated)
	if !reflect.DeepEqual(disagg, coloc) {
		t.Errorf("zero-cost-transfer PD diverged from colocated:\n%+v\n%+v", disagg, coloc)
	}
	if disagg.completed != 40 {
		t.Fatalf("completed %d, want 40", disagg.completed)
	}
}

// TestPDHandoffRidesDataPlane: a real disaggregated run moves every KV cache
// through the plane (bytes accounted, transfer latencies recorded) and costs
// more than the same run with a free handoff.
func TestPDHandoffRidesDataPlane(t *testing.T) {
	run := func(zero bool) (pdOutcome, *dataplane.Stats, *LLMService) {
		e, c, svc := newLLMService(t, PDConfig{PrefillWorkers: 2, DecodeWorkers: 2, ZeroKV: zero})
		defer e.Close()
		out := drivePD(e, svc, pdArrivals(50, 3*time.Millisecond), func(i int) Request {
			return Request{PD: PDDisaggregated, PromptTokens: 1024, OutTokens: 8}
		})
		return out, c.Plane.Stats(), svc
	}
	real_, planeStats, svc := run(false)
	free, _, _ := run(true)
	if real_.completed != 50 || free.completed != 50 {
		t.Fatalf("completed %d/%d, want 50/50", real_.completed, free.completed)
	}
	kv := svc.Model.KVBytes(1024)
	if real_.stats.KVTransfers != 50 || real_.stats.KVBytes != 50*kv {
		t.Errorf("handoff stats = %+v, want 50 transfers of %d bytes", real_.stats, kv)
	}
	if svc.KVXfer.Count() != 50 || svc.KVXfer.Mean() <= 0 {
		t.Errorf("KVXfer = %d samples mean %v, want 50 positive", svc.KVXfer.Count(), svc.KVXfer.Mean())
	}
	if planeStats.BytesMoved < 50*kv {
		t.Errorf("plane moved %d bytes, want >= %d", planeStats.BytesMoved, 50*kv)
	}
	if !(real_.e2e[0] > free.e2e[0]) {
		t.Errorf("real handoff e2e %v not above free-handoff %v", real_.e2e[0], free.e2e[0])
	}
}

// failEveryN wraps a plane, failing every n-th Get with a transfer error —
// the deterministic lost-KV case.
type failEveryN struct {
	dataplane.Plane
	n, gets int
}

func (f *failEveryN) Get(p *sim.Proc, ctx *dataplane.FnCtx, ref dataplane.DataRef) error {
	f.gets++
	if f.gets%f.n == 0 {
		return dataplane.ErrNotFound
	}
	return f.Plane.Get(p, ctx, ref)
}

// TestPDRecomputeOnLostKV: a failed handoff falls back to recomputing
// prefill on the decode GPU, and the request still completes.
func TestPDRecomputeOnLostKV(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	c := New(e, topology.H800x8(), 1, func(f *fabric.Fabric) dataplane.Plane {
		return &failEveryN{Plane: core.New(f, core.FullConfig()), n: 5}
	})
	svc, err := c.DeployLLM(PDConfig{LLM: models.MustLookupLLM("llama-7b"), PrefillWorkers: 1, DecodeWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	out := drivePD(e, svc, pdArrivals(20, 5*time.Millisecond), func(i int) Request {
		return Request{PD: PDDisaggregated, PromptTokens: 512, OutTokens: 4}
	})
	if out.completed != 20 {
		t.Fatalf("completed %d, want 20", out.completed)
	}
	if out.stats.Recomputes != 4 {
		t.Errorf("recomputes = %d, want 4 (every 5th Get fails)", out.stats.Recomputes)
	}
	if out.stats.KVTransfers != 16 {
		t.Errorf("transfers = %d, want 16", out.stats.KVTransfers)
	}
}

// pdChaosReplay replays a PD-mixed trace while a seeded fault schedule
// crashes the busiest prefill GPU mid-handoff window and flaps NVLinks,
// exercising the data plane's retry/replan and crash re-materialization
// under the handoff.
func pdChaosReplay(t *testing.T) (ReplayStats, pdOutcome) {
	t.Helper()
	e, c, svc := newLLMService(t, PDConfig{PrefillWorkers: 2, DecodeWorkers: 3, MixedWorkers: 3})
	defer e.Close()
	in := faults.NewInjector(e, c.Fabric.Net)
	crasher, ok := c.Plane.(faults.Crasher)
	if !ok {
		t.Fatal("core plane does not implement faults.Crasher")
	}
	in.CrashGPUAt(40*time.Millisecond, crasher, 0, 0)
	// H800x8 is an NVSwitch fabric: flap GPU injection/ejection ports.
	topo := c.Fabric.Topo(0)
	var links []topology.LinkID
	for g := 0; g < topo.Spec.NumGPUs; g++ {
		links = append(links, topo.NVPortOut(g), topo.NVPortIn(g))
	}
	in.RandomLinkFaults(7, links, time.Second, 100*time.Millisecond, 5*time.Millisecond)

	st, err := svc.Replay(pdArrivals(300, time.Millisecond), ReplaySpec{
		Quantum: 5 * time.Millisecond,
		RequestAt: func(i int) Request {
			if i%3 == 0 {
				return Request{PD: PDDisaggregated, PromptTokens: 2048, OutTokens: 8, Session: int64(i % 16)}
			}
			return Request{PD: PDColocated, PromptTokens: 256, OutTokens: 8}
		},
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return st, pdOutcome{completed: svc.Completed, e2e: svc.E2E.Samples(), ttft: svc.TTFT.Samples(), stats: svc.Stats}
}

// TestPDCrashMidHandoffDeterministic: the full PD chaos stack — GPU crash on
// a prefill worker, seeded link flaps, mixed colocated/disaggregated load —
// must complete every request and replay byte-identically.
func TestPDCrashMidHandoffDeterministic(t *testing.T) {
	stA, a := pdChaosReplay(t)
	stB, b := pdChaosReplay(t)
	if !reflect.DeepEqual(stA, stB) {
		t.Errorf("chaos replay stats diverged:\n%+v\n%+v", stA, stB)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("chaos PD outcomes diverged:\n%+v\n%+v", a.stats, b.stats)
	}
	if a.completed != 300 {
		t.Errorf("completed %d, want 300 (crash must not lose requests)", a.completed)
	}
	if a.stats.Disaggregated != 100 || a.stats.Colocated != 200 {
		t.Errorf("plan split = %+v, want 100 disaggregated / 200 colocated", a.stats)
	}
}

// TestDeployLLMValidation rejects malformed configs and model mismatches
// with ErrBadRequest, and LLMService.Replay validates like App.Replay.
func TestDeployLLMValidation(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	c := New(e, topology.H800x8(), 1, grouterPlane)
	llm := models.MustLookupLLM("llama-7b")
	bad := []PDConfig{
		{},                            // no LLM
		{LLM: llm},                    // no workers
		{LLM: llm, PrefillWorkers: 2}, // decode missing
		{LLM: llm, DecodeWorkers: 2},  // prefill missing
		{LLM: llm, MixedWorkers: 9},   // exceeds 8 GPUs
		{LLM: llm, MixedWorkers: -1},  // negative
		{LLM: llm, PrefillWorkers: 5, DecodeWorkers: 5}, // exceeds capacity
	}
	for i, cfg := range bad {
		if _, err := c.DeployLLM(cfg); !errors.Is(err, ErrBadRequest) {
			t.Errorf("bad config %d: err = %v, want ErrBadRequest", i, err)
		}
	}
	svc, err := c.DeployLLM(PDConfig{LLM: llm, PrefillWorkers: 2, DecodeWorkers: 2, MixedWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(svc.PrefillPool) != 2 || len(svc.DecodePool) != 2 || len(svc.MixedPool) != 2 {
		t.Fatalf("pools = %d/%d/%d, want 2/2/2", len(svc.PrefillPool), len(svc.DecodePool), len(svc.MixedPool))
	}
	if svc.DecodePool[0] == svc.PrefillPool[0] {
		t.Error("pools overlap")
	}
	if _, err := svc.Submit(Request{Model: "qwen-32b"}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("wrong model: err = %v, want ErrBadRequest", err)
	}
	if _, err := svc.Submit(Request{Batch: -1}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("invalid request: err = %v, want ErrBadRequest", err)
	}
	if _, err := svc.Replay(nil, ReplaySpec{}); !errors.Is(err, ErrNilTrace) {
		t.Errorf("nil trace: err = %v, want ErrNilTrace", err)
	}
	if _, err := svc.Replay([]time.Duration{}, ReplaySpec{Quantum: -1}); !errors.Is(err, ErrNegativeQuantum) {
		t.Errorf("negative quantum: err = %v, want ErrNegativeQuantum", err)
	}
}
