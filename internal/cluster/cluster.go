// Package cluster is the serverless runtime: it assembles a simulated GPU
// cluster with a data plane, deploys workflow apps with placed (pre-warmed)
// function instances, and executes requests as DAG instances — waiting on
// dependencies, pulling inputs through the data plane, time-multiplexing GPU
// compute, and publishing outputs.
package cluster

import (
	"fmt"
	"math/rand"
	"time"

	"grouter/internal/dataplane"
	"grouter/internal/fabric"
	"grouter/internal/metrics"
	"grouter/internal/models"
	"grouter/internal/obs"
	"grouter/internal/scheduler"
	"grouter/internal/sim"
	"grouter/internal/topology"
	"grouter/internal/workflow"
	"grouter/internal/xfer"
)

// HostSlots is the number of cFns a node's CPUs run concurrently.
const HostSlots = 16

// QoS is a request priority class. High-priority requests skip low-priority
// ones in GPU compute-slot queues (see sim.Resource.AcquirePri); with queue
// aging enabled (Cluster.SetQueueAging) skipped low-priority requests age up
// one class per aging period, bounding starvation.
type QoS int8

const (
	// QoSLow is the default class; it matches the pre-QoS FIFO behavior.
	QoSLow QoS = 0
	// QoSHigh skips QoSLow in worker queues.
	QoSHigh QoS = 1
)

// RouteInfo carries the per-request attributes a Route hook may consult:
// the request sequence number plus the descriptor fields routing policies
// key on (priority class, session identity).
type RouteInfo struct {
	Seq     int64
	QoS     QoS
	Session int64
}

// RouteFn picks the pool member serving one stage activation of one request:
// it returns an index into pool and true, or false to fall back to the
// default round-robin (seq mod pool size). The front-door router installs
// its scored pick here; the hook runs in event context and must be
// deterministic in virtual time.
type RouteFn func(si scheduler.StageInst, req RouteInfo, pool []fabric.Location) (int, bool)

// Cluster couples a fabric, a data plane, compute resources, and a placer.
type Cluster struct {
	Engine *sim.Engine
	Fabric *fabric.Fabric
	Plane  dataplane.Plane
	Placer *scheduler.Placer
	Class  models.Class

	// OnGPUService, when non-nil, observes every GPU compute-slot hold
	// (node, gpu, held duration) at release time. The request router feeds
	// its per-worker EWMA service latency and utilization from it; the hook
	// must not start simulation activity.
	OnGPUService func(node, gpu int, held time.Duration)

	gpus  [][]*sim.Resource
	hosts []*sim.Resource
	xm    *xfer.Manager
	seq   int64
	rng   *rand.Rand
}

// New builds a cluster of n nodes with the data plane returned by mkPlane.
// GPUs are time-multiplexed (one function at a time), the sharing model the
// paper adopts.
func New(e *sim.Engine, spec *topology.Spec, n int, mkPlane func(*fabric.Fabric) dataplane.Plane) *Cluster {
	return NewSpatial(e, spec, n, 1, mkPlane)
}

// NewSpatial builds a cluster whose GPUs each run `slots` functions
// concurrently (MPS-style spatial sharing, §7). Spatial sharing raises
// bandwidth and memory contention, which makes the data plane's partitioning
// and storage management more critical.
func NewSpatial(e *sim.Engine, spec *topology.Spec, n, slots int, mkPlane func(*fabric.Fabric) dataplane.Plane) *Cluster {
	return NewOnFabric(fabric.New(e, spec, n), slots, mkPlane)
}

// NewOnFabric builds the runtime over an existing fabric instead of creating
// its own, so a cluster can share the fabric with an already-attached tracer,
// fault injector, or externally-constructed data plane (the grouter façade's
// Sim.NewCluster uses this).
func NewOnFabric(f *fabric.Fabric, slots int, mkPlane func(*fabric.Fabric) dataplane.Plane) *Cluster {
	if slots < 1 {
		panic("cluster: GPU slots must be >= 1")
	}
	e := f.Engine
	c := &Cluster{
		Engine: e,
		Fabric: f,
		Plane:  mkPlane(f),
		Placer: scheduler.NewPlacer(f.Cluster),
		Class:  models.ClassOf(f.Spec()),
		xm:     xfer.NewManager(f),
		rng:    rand.New(rand.NewSource(97)),
	}
	for node := 0; node < len(f.Nodes); node++ {
		var row []*sim.Resource
		for g := 0; g < f.Spec().NumGPUs; g++ {
			row = append(row, sim.NewResource(e, slots))
		}
		c.gpus = append(c.gpus, row)
		c.hosts = append(c.hosts, sim.NewResource(e, HostSlots))
	}
	return c
}

// SqueezeGPUMemory consumes GPU memory on every node so that only `leave`
// bytes remain free per GPU (models co-resident models/functions for the
// limited-memory experiments).
func (c *Cluster) SqueezeGPUMemory(leave int64) {
	for _, nf := range c.Fabric.Nodes {
		for _, dev := range nf.GPUs {
			if dev.Free() > leave {
				if _, err := dev.Alloc(dev.Free() - leave); err != nil {
					panic(err)
				}
			}
		}
	}
}

// EdgeKind classifies a data-passing edge for latency breakdowns.
type EdgeKind int

const (
	// EdgeGPUGPU is gFn→gFn.
	EdgeGPUGPU EdgeKind = iota
	// EdgeGPUHost is any edge with exactly one GPU endpoint.
	EdgeGPUHost
	// EdgeCPUCPU is cFn→cFn.
	EdgeCPUCPU
)

// App is one deployed workflow application.
type App struct {
	C         *Cluster
	WF        *workflow.Workflow
	Batch     int
	Placement scheduler.Placement
	// SLO is the workflow-level objective (SLOScale × standalone critical
	// path).
	SLO time.Duration

	// E2E records request latencies; XferGPU/XferHost/Compute record the
	// per-request sums of gFn-gFn passing, gFn-host passing, and compute.
	E2E      metrics.Latency
	XferGPU  metrics.Latency
	XferHost metrics.Latency
	Compute  metrics.Latency
	// E2EClass records completion latencies split by QoS class (indexed by
	// QoS), feeding per-class SLO attainment.
	E2EClass [2]metrics.Latency

	Completed int
	// Shed counts requests dropped by SLO admission control; ShedByClass
	// splits the count by QoS class. Every submitted request either
	// completes or is shed — the counters account for every drop.
	Shed        int
	ShedByClass [2]int
	seedBase    int64

	// Admit, when non-nil, gates every request submission (the front-door
	// router's SLO admission control installs itself here; see AdmitFn). Nil
	// leaves the launch path byte-identical to the pre-admission runtime.
	Admit AdmitFn

	// SLOAttainment, when non-nil, reports the installing router's predicted
	// per-class SLO attainment in [0,1] (QoSLow, QoSHigh order). The elastic
	// pool controller folds its minimum into PoolMetrics.Attainment so
	// SLO-aware autoscalers can scale on predicted miss rate.
	SLOAttainment func() (low, high float64)

	// OnComplete, when non-nil, observes every request completion (sequence
	// number, completion instant, end-to-end latency) in event context.
	// Sharded replays use it to build the deterministically merged
	// completion stream; it must not start new simulation activity.
	OnComplete func(seq int64, at, e2e time.Duration)

	// Cold configures serverless provisioning (disabled = pre-warmed, the
	// paper's default per §5).
	Cold       ColdStartPolicy
	instances  map[instKey]*instanceState
	coldStarts int64

	// pools are per-stage instance pools managed by the autoscaler (nil
	// until first use: one instance per stage from Placement); elastic is
	// the elastic pool controller when EnableElastic has run.
	pools       map[scheduler.StageInst][]fabric.Location
	elastic     *ElasticPools
	scaleEvents int64

	// OnPoolChange, when non-nil, observes every routable-pool membership
	// change (scale-out completion, cordon, crash blacklist, recovery) in
	// event context. The front-door router refreshes its worker snapshot
	// from it; the hook must not start simulation activity.
	OnPoolChange func(si scheduler.StageInst, pool []fabric.Location)

	// Route, when non-nil, overrides the round-robin pool-member selection
	// for every stage activation (the front-door router installs itself
	// here; see RouteFn).
	Route RouteFn

	// Breakdown, when non-nil, records a per-request critical-path latency
	// attribution (see EnableBreakdown).
	Breakdown *Breakdown

	// reqPlan is the request-invariant execution plan (see plan.go) and
	// freeStates the pool of recycled per-request working states.
	reqPlan    *invokePlan
	freeStates []*reqState
}

// Deploy places wf's instances and returns the app. batch <= 0 uses the
// workflow default.
func (c *Cluster) Deploy(wf *workflow.Workflow, batch int, opt scheduler.Options) *App {
	if err := wf.Validate(); err != nil {
		panic(err)
	}
	if batch <= 0 {
		batch = wf.Batch
	}
	c.Placer.Trace = obs.TracerOf(c.Engine)
	app := &App{
		C:         c,
		WF:        wf,
		Batch:     batch,
		Placement: c.Placer.Place(wf, opt),
		seedBase:  opt.Seed,
	}
	scale := wf.SLOScale
	if scale == 0 {
		scale = 1.5
	}
	app.SLO = time.Duration(scale * float64(wf.StandaloneLatency(c.Class, batch)))
	return app
}

// instIn describes one input a stage instance pulls.
type instIn struct {
	fut  *sim.Future[dataplane.DataRef]
	prod scheduler.StageInst
	kind EdgeKind
}

// Invoke starts one request now (at the app's deployed batch size) and
// returns a signal fired at completion.
//
// Deprecated: use Submit(Request{}) — the typed descriptor is the single
// submission path and carries every per-request attribute. Invoke remains a
// byte-compatible shim over it.
func (a *App) Invoke() *sim.Signal { return a.submit(Request{}) }

// submit is the unvalidated internal submission used by the deprecated
// shims, which predate validation and cannot return an error.
func (a *App) submit(req Request) *sim.Signal {
	done := sim.NewSignal(a.C.Engine)
	a.startReq(req, done)
	return done
}

// InvokeBatch starts one request with an explicit batch size (used by the
// adaptive batcher, which aggregates queued logical requests). The request
// executes on the plan-based fast path (see plan.go).
func (a *App) InvokeBatch(batch int) *sim.Signal {
	done := sim.NewSignal(a.C.Engine)
	a.start(batch, done)
	return done
}

// InvokeQoS starts one request in the given priority class (at the app's
// deployed batch size) and returns a signal fired at completion. QoSHigh
// requests skip QoSLow ones in GPU compute-slot queues.
//
// Deprecated: use Submit(Request{QoS: q}) — the typed descriptor is the
// single submission path. InvokeQoS remains a byte-compatible shim over it.
func (a *App) InvokeQoS(q QoS) *sim.Signal { return a.submit(Request{QoS: q}) }

// inputsOf lists the producer instances feeding replica r of stage s.
func (a *App) inputsOf(s *workflow.Stage, r int) []instIn {
	var out []instIn
	for _, dn := range s.Deps {
		d := a.WF.Stage(dn)
		kind := edgeKind(d, s)
		if d.ReplicaCount() == s.ReplicaCount() && s.ReplicaCount() > 1 {
			out = append(out, instIn{prod: scheduler.StageInst{Stage: dn, Replica: r}, kind: kind})
			continue
		}
		for i := 0; i < d.ReplicaCount(); i++ {
			out = append(out, instIn{prod: scheduler.StageInst{Stage: dn, Replica: i}, kind: kind})
		}
	}
	return out
}

// putKind classifies a producer's Put by its first consumer.
func (a *App) putKind(s *workflow.Stage) EdgeKind {
	cons := a.WF.Consumers(s)
	if len(cons) == 0 {
		return EdgeCPUCPU
	}
	return edgeKind(s, cons[0])
}

func edgeKind(from, to *workflow.Stage) EdgeKind {
	switch {
	case from.IsGPU() && to.IsGPU():
		return EdgeGPUGPU
	case !from.IsGPU() && !to.IsGPU():
		return EdgeCPUCPU
	default:
		return EdgeGPUHost
	}
}

func (c *Cluster) resourceAt(loc fabric.Location) *sim.Resource {
	if loc.IsHost() {
		return c.hosts[loc.Node]
	}
	return c.gpus[loc.Node][loc.GPU]
}

// GPULoad reports one GPU's compute-slot load: processes waiting to acquire
// and slots currently held. It is the router's queue-depth signal.
func (c *Cluster) GPULoad(node, gpu int) (waiting, held int) {
	r := c.gpus[node][gpu]
	return r.QueueLen(), r.InUse()
}

// SetQueueAging enables priority aging on every GPU compute-slot queue: a
// waiting request's effective QoS class rises one level per d waited, so
// sustained QoSHigh load cannot starve QoSLow requests.
func (c *Cluster) SetQueueAging(d time.Duration) {
	for _, row := range c.gpus {
		for _, r := range row {
			r.SetAging(d)
		}
	}
}

// RunTrace submits one request per arrival offset and returns when the
// engine has drained (call from outside the engine; it runs the engine).
// No submitter waits per request, so the completion signal is elided. It is
// ReplayTrace with per-arrival admission and the stats discarded; use
// ReplayTrace directly for batched admission or the summary.
func (a *App) RunTrace(arrivals []time.Duration) {
	a.ReplayTrace(arrivals, ReplayOptions{})
}

// MeasureThroughput runs `concurrency` closed loops for dur of virtual time
// and returns completed requests per second.
func (a *App) MeasureThroughput(concurrency int, dur time.Duration) float64 {
	e := a.C.Engine
	base := e.Now()
	before := a.Completed
	for i := 0; i < concurrency; i++ {
		e.Go(fmt.Sprintf("loop-%d", i), func(p *sim.Proc) {
			for p.Now()-base < dur {
				a.submit(Request{}).Wait(p)
			}
		})
	}
	e.Run(base + dur)
	elapsed := e.Now() - base
	if elapsed <= 0 {
		return 0
	}
	return float64(a.Completed-before) / elapsed.Seconds()
}

// SLOCompliance returns the fraction of completed requests within the app's
// SLO.
func (a *App) SLOCompliance() float64 { return a.E2E.FractionUnder(a.SLO) }

// Spec returns the cluster's topology spec.
func (c *Cluster) Spec() *topology.Spec { return c.Fabric.Spec() }
