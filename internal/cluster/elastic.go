package cluster

import (
	"time"

	"grouter/internal/autoscale"
	"grouter/internal/fabric"
	"grouter/internal/faults"
	"grouter/internal/scheduler"
	"grouter/internal/sim"
	"grouter/internal/workflow"
)

// Elastic instance pools. EnableElastic upgrades the app's per-stage pools
// from the scale-out-only autoscaler to a full elastic layer: a pluggable
// Autoscaler strategy (internal/autoscale) evaluated on a virtual-time
// interval, min/max bounds, per-direction cooldowns, scale-in with
// cordon/drain (a draining replica takes no new picks and is torn down only
// once its in-flight requests complete), crash health tracking fed by
// faults.Injector, and provisioning that pays the cold-start machinery's
// latency. Pool members carry stable ids so warmth state (coldstart.go) and
// in-flight accounting survive membership churn; the routable slice handed to
// instanceFor and the Route hook is rebuilt on every membership change and
// announced through App.OnPoolChange so the front-door router can refresh.

// memberPhase is one pool replica's lifecycle state.
type memberPhase int8

const (
	// memberActive replicas are routable (when healthy).
	memberActive memberPhase = iota
	// memberProvisioning replicas are paying their provisioning delay; they
	// take no picks until it elapses (pre-warmed scale-out).
	memberProvisioning
	// memberDraining replicas are cordoned: no new picks, in-flight requests
	// complete, then teardown.
	memberDraining
	// memberGone replicas are torn down; the id is never reused.
	memberGone
)

// poolMember is one replica of one stage's instance pool.
type poolMember struct {
	id       int
	loc      fabric.Location
	phase    memberPhase
	healthy  bool
	inflight int
	// since is the provisioning instant; GPU-seconds accrue from here until
	// teardown (capacity is paid for while it provisions).
	since time.Duration
}

// poolState is the elastic state of one stage instance's pool.
type poolState struct {
	si    scheduler.StageInst
	stage *workflow.Stage
	// home is the stage's base placement node — scale-out prefers it.
	home int
	// need is the memory a replica must find free on its GPU: weights plus
	// the working set at the app's deployed batch.
	need int64
	// members is append-only (gone members stay, phase memberGone) so ids
	// stay stable; slots mirrors the routable slice in a.pools[si].
	members []*poolMember
	nextID  int
	slots   []*poolMember
	// lastOut/lastIn gate the per-direction cooldowns.
	lastOut, lastIn time.Duration
	// hist holds recent load observations for predictive strategies.
	hist []float64
	// gpuSeconds accumulates departed members' active time.
	gpuSeconds time.Duration
}

// ElasticConfig tunes the elastic pool layer.
type ElasticConfig struct {
	// Scaler is the scaling strategy (default Reactive{ScaleOutDepth: 2,
	// ScaleIn: true}).
	Scaler autoscale.Autoscaler
	// Min and Max bound each pool's desired active replica count. Min is
	// clamped to >= 1: a stage always keeps one routable instance (its base
	// placement); scale-to-zero of *warmth* is the cold-start policy's
	// KeepAlive job. Defaults: Min 1, Max 4.
	Min, Max int
	// Interval is the controller's evaluation period (default 250ms).
	Interval time.Duration
	// ScaleOutCooldown suppresses a scale-out within the window after the
	// previous one; ScaleInCooldown suppresses a scale-in within the window
	// after any scale event (so freshly ordered capacity is not immediately
	// shed). Both default to zero — every interval may act.
	ScaleOutCooldown time.Duration
	ScaleInCooldown  time.Duration
	// HistoryWindow bounds the per-pool load history handed to predictive
	// strategies (default 8 observations).
	HistoryWindow int
	// Prewarm provisions scaled-out replicas in the background: the new
	// member becomes routable only after ProvisionDelay, already warm, so no
	// request is charged its cold start. False (the default) makes the new
	// member routable immediately and the first routed request pays the
	// ColdStartPolicy latency — the legacy autoscaler's behavior.
	Prewarm bool
	// ProvisionDelay is the scale-out provisioning latency; zero defaults to
	// the app's ColdStartPolicy.ContainerLatency when cold starts are
	// enabled, else zero (instant).
	ProvisionDelay time.Duration
	// RecoverAfter is how long a crashed member stays out of the routable
	// set after a WatchFaults GPU-crash signal (default 500ms).
	RecoverAfter time.Duration
}

// DefaultElastic returns a responsive, scale-in-capable configuration.
func DefaultElastic() ElasticConfig {
	return ElasticConfig{
		Scaler:          autoscale.Reactive{ScaleOutDepth: 2, ScaleIn: true},
		Min:             1,
		Max:             4,
		Interval:        250 * time.Millisecond,
		ScaleInCooldown: 500 * time.Millisecond,
	}
}

// ElasticStats counts elastic controller activity, all in virtual time.
type ElasticStats struct {
	// ScaleOuts and ScaleIns count ordered provisions and cordons; Drained
	// counts completed teardowns (every ScaleIn eventually drains).
	ScaleOuts int64
	ScaleIns  int64
	Drained   int64
	// Crashes counts members blacklisted by fault signals; Recoveries counts
	// members returned to the routable set.
	Crashes    int64
	Recoveries int64
}

// ElasticPools is the handle EnableElastic returns: controller statistics,
// fault wiring, and the GPU-seconds cost axis of the ext-elastic experiment.
type ElasticPools struct {
	app   *App
	cfg   ElasticConfig
	pools map[scheduler.StageInst]*poolState
	// order fixes the controller's pool evaluation order (stage declaration
	// order, replicas ascending) for determinism.
	order []*poolState

	Stats ElasticStats
}

// EnableElastic starts the elastic pool controller. Call at most once per
// app (EnableAutoscale is a configuration of the same controller), before
// the first request.
func (a *App) EnableElastic(cfg ElasticConfig) *ElasticPools {
	if a.elastic != nil {
		panic("cluster: elastic pools already enabled")
	}
	if cfg.Scaler == nil {
		cfg.Scaler = autoscale.Reactive{ScaleOutDepth: 2, ScaleIn: true}
	}
	if cfg.Min < 1 {
		cfg.Min = 1
	}
	if cfg.Max < cfg.Min {
		cfg.Max = cfg.Min
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 250 * time.Millisecond
	}
	if cfg.HistoryWindow < 2 {
		cfg.HistoryWindow = 8
	}
	if cfg.RecoverAfter <= 0 {
		cfg.RecoverAfter = 500 * time.Millisecond
	}
	a.poolsMap() // materialize before the controller races with Invoke
	ep := &ElasticPools{app: a, cfg: cfg, pools: map[scheduler.StageInst]*poolState{}}
	now := a.C.Engine.Now()
	for _, s := range a.WF.Stages {
		if !s.IsGPU() {
			continue
		}
		need := s.Model.WeightsBytes + s.Model.InBytes(a.Batch) + s.Model.OutBytes(a.Batch)
		for r := 0; r < s.ReplicaCount(); r++ {
			si := scheduler.StageInst{Stage: s.Name, Replica: r}
			ps := &poolState{si: si, stage: s, home: a.Placement[si].Node, need: need}
			for _, loc := range a.poolOf(si) {
				m := &poolMember{id: ps.nextID, loc: loc, phase: memberActive, healthy: true, since: now}
				ps.nextID++
				ps.members = append(ps.members, m)
				ps.slots = append(ps.slots, m)
			}
			ep.pools[si] = ps
			ep.order = append(ep.order, ps)
		}
	}
	a.elastic = ep
	a.C.Engine.GoDaemon("elastic-"+a.WF.Name, func(p *sim.Proc) {
		for {
			p.Sleep(cfg.Interval)
			ep.step()
		}
	})
	return ep
}

// Elastic returns the app's elastic pool handle, or nil before EnableElastic.
func (a *App) Elastic() *ElasticPools { return a.elastic }

// provisionDelay is the scale-out latency a new member pays before serving.
func (ep *ElasticPools) provisionDelay() time.Duration {
	if ep.cfg.ProvisionDelay > 0 {
		return ep.cfg.ProvisionDelay
	}
	if ep.app.Cold.Enabled {
		return ep.app.Cold.ContainerLatency
	}
	return 0
}

// observe builds one pool's metrics snapshot and pushes the load history.
func (ep *ElasticPools) observe(ps *poolState) autoscale.PoolMetrics {
	m := autoscale.PoolMetrics{}
	for _, mem := range ps.members {
		switch mem.phase {
		case memberActive:
			if !mem.healthy {
				m.Unhealthy++
				continue
			}
			m.Active++
			r := ep.app.C.resourceAt(mem.loc)
			m.Queue += r.QueueLen()
			m.Busy += r.InUse()
		case memberProvisioning:
			m.Provisioning++
		case memberDraining:
			m.Draining++
		}
	}
	m.Load = float64(m.Queue + m.Busy)
	// Attainment is the router's predicted per-class SLO attainment; -1
	// (unknown) without an installed SLO probe, so strategies can fall back
	// to load signals instead of misreading "no signal" as "0% attained".
	m.Attainment = -1
	if ep.app.SLOAttainment != nil {
		low, high := ep.app.SLOAttainment()
		m.Attainment = low
		if high < low {
			m.Attainment = high
		}
	}
	ps.hist = append(ps.hist, m.Load)
	if n := len(ps.hist) - ep.cfg.HistoryWindow; n > 0 {
		ps.hist = ps.hist[n:]
	}
	m.History = ps.hist
	return m
}

// step runs one controller evaluation over every pool.
func (ep *ElasticPools) step() {
	now := ep.app.C.Engine.Now()
	for _, ps := range ep.order {
		m := ep.observe(ps)
		want := ep.cfg.Scaler.Desired(m)
		if want < ep.cfg.Min {
			want = ep.cfg.Min
		}
		if want > ep.cfg.Max {
			want = ep.cfg.Max
		}
		// Provisioning members count as ordered capacity: repeated ticks
		// inside the provisioning delay must not re-order it.
		live := m.Active + m.Provisioning
		switch {
		case want > live:
			if ep.cfg.ScaleOutCooldown > 0 && ps.lastOut > 0 && now-ps.lastOut < ep.cfg.ScaleOutCooldown {
				continue
			}
			for i := live; i < want; i++ {
				ep.scaleOut(ps, now)
			}
			ps.lastOut = now
		case want < m.Active:
			last := ps.lastOut
			if ps.lastIn > last {
				last = ps.lastIn
			}
			if ep.cfg.ScaleInCooldown > 0 && last > 0 && now-last < ep.cfg.ScaleInCooldown {
				continue
			}
			ep.scaleIn(ps, m.Active-want, now)
			ps.lastIn = now
		}
	}
}

// scaleOut provisions one new member for the pool.
func (ep *ElasticPools) scaleOut(ps *poolState, now time.Duration) {
	a := ep.app
	loc := a.C.Placer.PlaceSingleFit(ps.home, ps.need, func(l fabric.Location) int64 {
		return a.C.Fabric.Mem(l).Free()
	})
	m := &poolMember{id: ps.nextID, loc: loc, healthy: true, since: now}
	ps.nextID++
	ps.members = append(ps.members, m)
	a.scaleEvents++
	ep.Stats.ScaleOuts++
	delay := ep.provisionDelay()
	if ep.cfg.Prewarm && delay > 0 {
		// Background provisioning: routable after the delay, already warm.
		m.phase = memberProvisioning
		a.C.Engine.ScheduleDaemon(delay, func() {
			if m.phase != memberProvisioning {
				return
			}
			m.phase = memberActive
			ep.markWarm(ps.si, m)
			ep.rebuild(ps)
		})
		return
	}
	m.phase = memberActive
	if ep.cfg.Prewarm {
		ep.markWarm(ps.si, m)
	}
	// Without Prewarm the member is routable now and its first routed
	// request pays the cold start (ensureWarm finds no warmth state).
	ep.rebuild(ps)
}

// markWarm records a pre-warmed member's warmth so its first request is not
// charged a cold start.
func (ep *ElasticPools) markWarm(si scheduler.StageInst, m *poolMember) {
	a := ep.app
	if !a.Cold.Enabled || a.instances == nil {
		return
	}
	a.instances[instKey{si, m.id}] = &instanceState{warm: true, lastUsed: a.C.Engine.Now()}
}

// scaleIn cordons n members: unhealthy ones first, then newest (highest id),
// never touching draining/provisioning members or the last active one.
func (ep *ElasticPools) scaleIn(ps *poolState, n int, now time.Duration) {
	for ; n > 0; n-- {
		var victim *poolMember
		active := 0
		for _, m := range ps.members {
			if m.phase != memberActive {
				continue
			}
			active++
			if victim == nil {
				victim = m
				continue
			}
			// Unhealthy beats healthy; within a class, highest id (newest).
			if (!m.healthy && victim.healthy) || (m.healthy == victim.healthy && m.id > victim.id) {
				victim = m
			}
		}
		if victim == nil || active <= 1 {
			return
		}
		victim.phase = memberDraining
		ep.Stats.ScaleIns++
		ep.rebuild(ps)
		if victim.inflight <= 0 {
			ep.finalize(ps, victim, now)
		}
	}
}

// finalize tears down a fully drained member.
func (ep *ElasticPools) finalize(ps *poolState, m *poolMember, now time.Duration) {
	m.phase = memberGone
	ps.gpuSeconds += now - m.since
	ep.app.C.Placer.Unplace(m.loc)
	if ep.app.instances != nil {
		delete(ep.app.instances, instKey{ps.si, m.id})
	}
	ep.Stats.Drained++
}

// rebuild recomputes the pool's routable slice from member phases and
// health, and announces the change.
func (ep *ElasticPools) rebuild(ps *poolState) {
	a := ep.app
	slots := make([]*poolMember, 0, len(ps.members))
	for _, m := range ps.members {
		if m.phase == memberActive && m.healthy {
			slots = append(slots, m)
		}
	}
	if len(slots) == 0 {
		// Degraded: every active member is crash-blacklisted. Keep them
		// routable rather than emptying the pool — a request must always
		// have somewhere to run (the pre-elastic behavior under crashes).
		for _, m := range ps.members {
			if m.phase == memberActive {
				slots = append(slots, m)
			}
		}
	}
	if len(slots) == 0 {
		panic("cluster: elastic pool " + ps.si.String() + " has no active members")
	}
	locs := make([]fabric.Location, len(slots))
	for i, m := range slots {
		locs[i] = m.loc
	}
	ps.slots = slots
	a.pools[ps.si] = locs
	if a.OnPoolChange != nil {
		a.OnPoolChange(ps.si, locs)
	}
}

// WatchFaults subscribes the pools to the injector's GPU crash signals:
// members on a crashed GPU leave the routable set and return after
// RecoverAfter (their stored warmth is not touched — the data plane already
// models re-materialization).
func (ep *ElasticPools) WatchFaults(in *faults.Injector) {
	in.OnGPUCrash(func(node, gpu int) {
		for _, ps := range ep.order {
			changed := false
			for _, m := range ps.members {
				if m.loc.Node != node || m.loc.GPU != gpu || !m.healthy || m.phase == memberGone {
					continue
				}
				m.healthy = false
				ep.Stats.Crashes++
				changed = true
				m := m
				ps := ps
				ep.app.C.Engine.ScheduleDaemon(ep.cfg.RecoverAfter, func() {
					if m.healthy || m.phase == memberGone {
						return
					}
					m.healthy = true
					ep.Stats.Recoveries++
					ep.rebuild(ps)
				})
			}
			if changed {
				ep.rebuild(ps)
			}
		}
	})
}

// GPUSeconds returns the fleet's accumulated GPU cost: every member's active
// lifetime (provisioning included — capacity is paid for while it boots),
// departed members at their teardown instant, live members up to now. The
// ext-elastic experiment's cost axis.
func (ep *ElasticPools) GPUSeconds() float64 {
	now := ep.app.C.Engine.Now()
	var total time.Duration
	for _, ps := range ep.order {
		total += ps.gpuSeconds
		for _, m := range ps.members {
			if m.phase != memberGone {
				total += now - m.since
			}
		}
	}
	return total.Seconds()
}

// Replicas reports one pool's live member count (active + provisioning +
// draining), for tests and diagnostics.
func (ep *ElasticPools) Replicas(stage string, replica int) (active, provisioning, draining int) {
	ps := ep.pools[scheduler.StageInst{Stage: stage, Replica: replica}]
	if ps == nil {
		return 0, 0, 0
	}
	for _, m := range ps.members {
		switch m.phase {
		case memberActive:
			active++
		case memberProvisioning:
			provisioning++
		case memberDraining:
			draining++
		}
	}
	return active, provisioning, draining
}

// memberID maps a routable-slice index to the member's stable id (the
// cold-start state key); without elastic state ids equal indices.
func (a *App) memberID(si scheduler.StageInst, idx int) int {
	if a.elastic != nil {
		if ps := a.elastic.pools[si]; ps != nil && idx < len(ps.slots) {
			return ps.slots[idx].id
		}
	}
	return idx
}

// poolPicked records one pick against the member serving it (in-flight
// accounting for drain).
func (a *App) poolPicked(si scheduler.StageInst, idx int) int {
	if a.elastic != nil {
		if ps := a.elastic.pools[si]; ps != nil && idx < len(ps.slots) {
			m := ps.slots[idx]
			m.inflight++
			return m.id
		}
	}
	return idx
}

// poolDone retires one pick; the last in-flight request of a draining member
// triggers its teardown.
func (a *App) poolDone(si scheduler.StageInst, id int) {
	if a.elastic == nil {
		return
	}
	ps := a.elastic.pools[si]
	if ps == nil {
		return
	}
	for _, m := range ps.members {
		if m.id != id {
			continue
		}
		m.inflight--
		if m.phase == memberDraining && m.inflight <= 0 {
			a.elastic.finalize(ps, m, a.C.Engine.Now())
		}
		return
	}
}
