package experiments

import (
	"fmt"
	"time"

	"grouter/internal/cluster"
	"grouter/internal/core"
	"grouter/internal/dataplane"
	"grouter/internal/fabric"
	"grouter/internal/models"
	"grouter/internal/router"
	"grouter/internal/sim"
	"grouter/internal/topology"
	"grouter/internal/trace"
)

// ExtPD runs the prefill/decode disaggregation comparison at its smoke size;
// the CLI's -pd flag runs PDTable at -scale-requests.
func ExtPD() *Table { return PDTable(2_000) }

// pdScenario is one topology cell of the ext-pd comparison: a GPU class, a
// prompt mix, an offered load, and the PD pool partition the disaggregated
// systems use. The colocated baseline gets every GPU as a mixed worker.
type pdScenario struct {
	name string
	spec func() *topology.Spec
	llm  string
	// long/short are the two prompt lengths of the mix (every longEvery-th
	// request is long); out is the output length for both.
	long, short, out int
	longEvery        int
	meanRPS          float64
	// prefill/decode/mixed partition the node's GPUs for the PD systems.
	prefill, decode, mixed int
	policy                 router.PDPolicyConfig
}

// pdScenarios returns the two workload/topology cells of the comparison.
//
// "h800 x1" is the disaggregation-friendly regime: interactive traffic with
// rare (1/128) 8k-token prompts on an NVSwitch node. A 8k prefill holds a
// GPU for ~330 ms — colocated, any short request queued behind it blows its
// tail, and the least-loaded signal cannot see the difference (a GPU running
// a long prefill and one running a 44 ms short both count load 1). PD fences
// prefill onto its own worker and the NVSwitch handoff is cheap relative to
// the prefill it isolates, so the overall p99 (set by the short-request tail
// at this mix) improves.
//
// "quad-a10 x1" is the opposite regime: long-prompt-heavy (1/4) traffic on a
// PCIe-only box. The p99 tracks long requests, which disaggregation makes
// strictly worse there: half-gigabyte KV caches ship over the host PCIe
// path, and the static partition gives up pooled capacity the long prefills
// badly need.
func pdScenarios() []pdScenario {
	return []pdScenario{
		{
			name: "h800 x1", spec: topology.H800x8, llm: "llama-7b",
			long: 8192, short: 256, out: 8, longEvery: 128, meanRPS: 90,
			prefill: 1, decode: 1, mixed: 6,
			policy: router.PDPolicyConfig{
				LongPromptTokens: 1024, SaturationDepth: 6,
				MaxInflightKV: 8, SessionAffinity: true,
			},
		},
		{
			name: "quad-a10 x1", spec: topology.QuadA10, llm: "llama-7b",
			long: 1024, short: 128, out: 8, longEvery: 4, meanRPS: 3,
			prefill: 1, decode: 1, mixed: 2,
			policy: router.PDPolicyConfig{
				LongPromptTokens: 512, SaturationDepth: 6,
				MaxInflightKV: 8, SessionAffinity: true,
			},
		},
	}
}

// pdSystem is one compared serving arrangement.
type pdSystem struct {
	name string
	// disaggregated carves the PD partition; otherwise all GPUs are mixed.
	disaggregated bool
	mk            func(f *fabric.Fabric) dataplane.Plane
}

// pdSystems returns the three compared arrangements: colocated (every GPU a
// mixed worker, least-loaded routing), PD over the base data plane, and PD
// with fan-out-aware transfer coalescing on the handoff path. All three use
// the same router policy so the only variables are the partition and the
// plane.
func pdSystems() []pdSystem {
	grouter := func(f *fabric.Fabric) dataplane.Plane { return core.New(f, core.FullConfig()) }
	coalesce := func(f *fabric.Fabric) dataplane.Plane {
		cfg := core.FullConfig()
		cfg.Coalesce = true
		return core.New(f, cfg)
	}
	return []pdSystem{
		{"colocated", false, grouter},
		{"pd", true, grouter},
		{"pd+coalesce", true, coalesce},
	}
}

// pdMix describes request i of the replayed trace: every longEvery-th
// request is a long-prompt (session-tagged) request, the rest are short
// interactive ones. The mix is a pure function of i, so every system replays
// the identical workload.
func pdMix(sc pdScenario) func(i int) cluster.Request {
	return func(i int) cluster.Request {
		req := cluster.Request{PromptTokens: sc.short, OutTokens: sc.out}
		if i%sc.longEvery == 0 {
			req.PromptTokens = sc.long
			req.Session = int64(i%16) + 1
		}
		return req
	}
}

// pdResult is one (scenario, system) replay outcome.
type pdResult struct {
	st      cluster.ReplayStats
	ttftP99 time.Duration
	stats   cluster.PDStats
	rstats  router.PDRouterStats
}

// pdReplay replays one generated trace through one serving arrangement on a
// fresh single-node cluster.
func pdReplay(sc pdScenario, sys pdSystem, pattern trace.Pattern, requests int) pdResult {
	arrivals := trace.Generate(trace.Spec{
		Pattern:  pattern,
		Duration: time.Duration(float64(requests) / sc.meanRPS * float64(time.Second)),
		MeanRPS:  sc.meanRPS,
		Seed:     42,
	})
	if arrivals == nil {
		arrivals = []time.Duration{}
	}
	e := sim.NewEngine()
	defer e.Close()
	c := cluster.New(e, sc.spec(), 1, sys.mk)
	cfg := cluster.PDConfig{
		LLM:              models.MustLookupLLM(sc.llm),
		DefaultOutTokens: sc.out,
	}
	if sys.disaggregated {
		cfg.PrefillWorkers = sc.prefill
		cfg.DecodeWorkers = sc.decode
		cfg.MixedWorkers = sc.mixed
	} else {
		cfg.MixedWorkers = sc.prefill + sc.decode + sc.mixed
	}
	svc, err := c.DeployLLM(cfg)
	if err != nil {
		panic(err)
	}
	rt := router.NewPD(svc, sc.policy)
	st, err := svc.Replay(arrivals, cluster.ReplaySpec{Quantum: ScaleQuantum, RequestAt: pdMix(sc)})
	if err != nil {
		panic(err)
	}
	return pdResult{st: st, ttftP99: svc.TTFT.P(0.99), stats: svc.Stats, rstats: rt.Stats}
}

// PDStatsRun replays the disaggregation-friendly h800 cell (sporadic
// pattern, PD system) at the given request count and returns the replay
// stats plus the service's and the policy's counters, for grouter-bench
// -pd-stats.
func PDStatsRun(requests int) (cluster.ReplayStats, cluster.PDStats, router.PDRouterStats) {
	sc := pdScenarios()[0]
	r := pdReplay(sc, pdSystems()[1], trace.Sporadic, requests)
	return r.st, r.stats, r.rstats
}

// PDTable compares colocated vs prefill/decode-disaggregated serving on the
// same replayed traces, per topology and arrival pattern. Disaggregation
// ships each long prompt's KV cache through the data plane between the
// prefill and decode GPUs, so the handoff pays (and benefits from) the same
// transfer machinery as every other data pass. Everything is measured in
// virtual time, so the table is byte-identical across runs of the same
// build.
func PDTable(requests int) *Table {
	t := &Table{
		ID:    "ext-pd",
		Title: "Prefill/decode disaggregation (extension): colocated vs PD over the data plane",
		Columns: []string{"topo", "pattern", "system", "requests",
			"tput(req/s)", "p50(ms)", "p99(ms)", "ttft-p99(ms)",
			"disagg", "overflow", "kv-xfer", "recompute"},
	}
	for _, sc := range pdScenarios() {
		for _, pattern := range []trace.Pattern{trace.Sporadic, trace.Bursty} {
			for _, sys := range pdSystems() {
				r := pdReplay(sc, sys, pattern, requests)
				t.Rows = append(t.Rows, []string{
					sc.name, pattern.String(), sys.name, fmt.Sprint(r.st.Completed),
					fmt.Sprintf("%.1f", r.st.Throughput), ms(r.st.P50), ms(r.st.P99),
					ms(r.ttftP99),
					fmt.Sprint(r.stats.Disaggregated), fmt.Sprint(r.stats.Overflows),
					fmt.Sprint(r.stats.KVTransfers), fmt.Sprint(r.stats.Recomputes),
				})
			}
		}
	}
	t.Notes = append(t.Notes,
		"extension (not a paper figure): LLM prefill/decode disaggregation with the KV handoff on the data plane",
		"identical trace and prompt mix for every system of a cell (seed 42); long prompts are session-tagged",
		"colocated = all GPUs mixed; pd = static prefill/decode/mixed partition, long prompts split across a pair",
		"pd+coalesce adds fan-out-aware transfer coalescing on the handoff path",
		"h800 x1: interactive mix, rare 8k prompts (1/128) — colocated queues shorts behind 330 ms prefills",
		"quad-a10 x1: long-heavy mix (1/4) — PCIe KV shipping plus pooling loss make colocated win",
		"under saturating bursts pooled capacity beats isolation on both boxes: the partition's fenced-off workers are the bottleneck",
		fmt.Sprintf("arrivals admitted in %v windows; overflow falls back to colocated when PD pools saturate", ScaleQuantum))
	return t
}
