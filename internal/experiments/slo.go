package experiments

import (
	"fmt"
	"time"

	"grouter/internal/cluster"
	"grouter/internal/router"
	"grouter/internal/scheduler"
	"grouter/internal/sim"
	"grouter/internal/topology"
	"grouter/internal/trace"
	"grouter/internal/workflow"
)

// ExtSLO runs the SLO-admission replay at its smoke size (10k requests);
// the CLI's -slo flag runs SLOTable at -scale-requests.
func ExtSLO() *Table { return SLOTable(10_000) }

// SLO budgets for the driving workflow at the replay's 500 req/s on a
// 2-node DGX-V100: the high class targets a tight interactive budget just
// above the uncongested p50 (~9ms), the low class a looser one an order of
// magnitude up. Under the bursty pattern the pipeline predictor sees the
// bottleneck stage's queue during burst peaks and sheds, keeping admitted
// requests inside budget instead of letting the whole batch drag the tail
// past a second.
const (
	sloHighBudget = 25 * time.Millisecond
	sloLowBudget  = 150 * time.Millisecond
	sloHighDelay  = 4 * time.Millisecond
	sloLowDelay   = 20 * time.Millisecond
)

// sloMode selects one admission configuration of the comparison.
type sloMode int

const (
	sloBaseline sloMode = iota // PR 7 scored router, no SLO, no affinity
	sloAdmit                   // + per-class SLO admission control
	sloAffinity                // + session-affinity scoring term
)

func (m sloMode) String() string {
	switch m {
	case sloAdmit:
		return "slo"
	case sloAffinity:
		return "slo+affinity"
	}
	return "baseline"
}

// sloRun is one replay cell of the SLO comparison.
type sloRun struct {
	st      cluster.ReplayStats
	rs      router.Stats
	hiP99   time.Duration
	loP99   time.Duration
	hiAtt   float64 // fraction of completed high-class requests within budget
	goodput float64 // SLO-met completions per second of virtual time
}

// sloConfig returns the router configuration of one mode.
func sloConfig(m sloMode) router.Config {
	cfg := router.DefaultConfig()
	if m >= sloAdmit {
		cfg.SLO = router.SLOConfig{
			High: router.SLOClass{Budget: sloHighBudget, MaxDelay: sloHighDelay},
			Low:  router.SLOClass{Budget: sloLowBudget, MaxDelay: sloLowDelay},
		}
	}
	if m >= sloAffinity {
		cfg.Weights.Session = 2
	}
	return cfg
}

// sloReplay replays one generated trace through the driving workflow on a
// 2-node DGX-V100 cluster (autoscaler on, batched admission) behind a scored
// router in the given admission mode. Every 5th request is QoSHigh and every
// request carries one of 64 rotating session identities, so both the
// admission predictor and the affinity term see realistic traffic.
func sloReplay(pattern trace.Pattern, requests int, mode sloMode) sloRun {
	arrivals := trace.Generate(trace.Spec{
		Pattern:  pattern,
		Duration: time.Duration(float64(requests) / 500 * float64(time.Second)),
		MeanRPS:  500,
		Seed:     42,
	})
	if arrivals == nil {
		arrivals = []time.Duration{}
	}
	e := sim.NewEngine()
	defer e.Close()
	c := cluster.New(e, topology.DGXV100(), 2, systems(42)[3].mk)
	app := c.Deploy(workflow.Driving(), 1, scheduler.Options{Node: 0, SplitAcrossNodes: true})
	app.EnableAutoscale(cluster.DefaultAutoscale())
	rt := router.New(app, sloConfig(mode))
	st, err := app.Replay(arrivals, cluster.ReplaySpec{
		Quantum: ScaleQuantum,
		RequestAt: func(i int) cluster.Request {
			req := cluster.Request{Session: int64(i%64) + 1}
			if (i+1)%5 == 0 {
				req.QoS = cluster.QoSHigh
			}
			return req
		},
	})
	if err != nil {
		panic(err)
	}
	r := sloRun{st: st, rs: rt.Stats}
	hi := &app.E2EClass[cluster.QoSHigh]
	lo := &app.E2EClass[cluster.QoSLow]
	r.hiP99 = hi.P(0.99)
	r.loP99 = lo.P(0.99)
	if hi.Count() > 0 {
		r.hiAtt = hi.FractionUnder(sloHighBudget)
	}
	// Goodput is SLO-met completions per virtual second — the standard
	// admission-control figure of merit. Under overload, shedding hopeless
	// requests trades raw completions for completions that arrive inside
	// their budget, so raw throughput alone would hide the win.
	if st.Duration > 0 {
		met := hi.FractionUnder(sloHighBudget)*float64(hi.Count()) +
			lo.FractionUnder(sloLowBudget)*float64(lo.Count())
		r.goodput = met / st.Duration.Seconds()
	}
	return r
}

// SLOTable compares the PR 7 scored router against SLO-aware admission
// control (and the session-affinity scoring term) on the same traces: per
// pattern, the identical arrival trace replayed per mode. Everything is
// measured in virtual time, so the table is byte-identical across runs of
// the same build.
func SLOTable(requests int) *Table {
	t := &Table{
		ID:    "ext-slo",
		Title: "SLO-aware admission + session affinity (extension): shed/defer vs baseline router, driving workflow",
		Columns: []string{"pattern", "admission", "requests", "completed",
			"shed", "deferred", "goodput(met/s)", "hi-p99(ms)", "hi-attain",
			"lo-p99(ms)", "aff-hits"},
	}
	for _, p := range []trace.Pattern{trace.Sporadic, trace.Periodic, trace.Bursty} {
		for _, m := range []sloMode{sloBaseline, sloAdmit, sloAffinity} {
			r := sloReplay(p, requests, m)
			t.Rows = append(t.Rows, []string{
				p.String(), m.String(), fmt.Sprint(r.st.Requests),
				fmt.Sprint(r.st.Completed), fmt.Sprint(r.st.Shed),
				fmt.Sprint(r.rs.Defers), fmt.Sprintf("%.1f", r.goodput),
				ms(r.hiP99), fmt.Sprintf("%.3f", r.hiAtt), ms(r.loP99),
				fmt.Sprint(r.rs.AffinityHits),
			})
		}
	}
	t.Notes = append(t.Notes,
		"extension (not a paper figure): per-class SLO admission (predicted completion = per-stage min of (queue+pending+1) x EWMA, summed over the pipeline) with bounded deferral and shedding",
		fmt.Sprintf("budgets: high %v (defer <= %v), low %v (defer <= %v); every 5th request QoSHigh; 64 rotating sessions", sloHighBudget, sloHighDelay, sloLowBudget, sloLowDelay),
		"hi-attain = fraction of completed high-class requests inside budget; goodput = SLO-met completions per virtual second (sheds counted separately)",
		fmt.Sprintf("same traces per mode (seed 42, 500 req/s mean, %v admission windows); autoscaler on", ScaleQuantum))
	return t
}
