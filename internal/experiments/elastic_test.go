package experiments

import (
	"reflect"
	"strconv"
	"testing"

	"grouter/internal/trace"
)

func TestExtElasticRegistered(t *testing.T) {
	e := ByID("ext-elastic")
	if e == nil {
		t.Fatal("ext-elastic not registered")
	}
	if e.Run == nil || e.Title == "" {
		t.Fatal("ext-elastic registration incomplete")
	}
}

// TestElasticTableSmoke runs the strategy comparison at a tiny request
// count: three patterns times four strategies, identical request totals per
// pattern, the fixed fleet never scaling in, and elastic fleets recording
// scale activity.
func TestElasticTableSmoke(t *testing.T) {
	tbl := ElasticTable(1200)
	if got := len(tbl.Rows); got != 12 {
		t.Fatalf("rows = %d, want 12", got)
	}
	for i := 0; i < 12; i += 4 {
		group := tbl.Rows[i : i+4]
		for _, row := range group {
			if len(row) != len(tbl.Columns) {
				t.Fatalf("row %v has %d cells, want %d", row, len(row), len(tbl.Columns))
			}
			if row[2] != group[0][2] {
				t.Errorf("%s: request counts differ across strategies: %s vs %s",
					row[0], row[2], group[0][2])
			}
			if sec, err := strconv.ParseFloat(row[3], 64); err != nil || sec <= 0 {
				t.Errorf("%s/%s: gpu-sec = %q, want positive", row[0], row[1], row[3])
			}
		}
		if group[0][1] != "fixed" || group[0][8] != "0" {
			t.Errorf("%s: fixed fleet row malformed: %v", group[0][0], group[0])
		}
		if group[1][1] != "reactive" {
			t.Errorf("%s: strategy order broken: %v", group[1][0], group[1])
		}
	}
}

// TestElasticTableDeterminism: the whole strategy comparison is byte
// identical across two runs of the same build — virtual-time replays with
// controller, drain, provisioning, and cold starts all inside the engine.
func TestElasticTableDeterminism(t *testing.T) {
	a := ElasticTable(1200)
	b := ElasticTable(1200)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("ext-elastic table is not byte-identical across runs")
	}
}

// TestElasticBeatsFixedFleet pins the acceptance criterion: on at least one
// trace pattern, the reactive or predictive strategy consumes fewer
// GPU-seconds than the peak-provisioned fixed fleet at equal-or-better p99.
// The periodic pattern at 5k requests is the pinned regime: the fleet is
// saturated enough that queueing, not provisioning lag, dominates the tail,
// and the elastic fleet tracks the load cycle instead of idling at peak.
func TestElasticBeatsFixedFleet(t *testing.T) {
	const requests = 5000
	strategies := elasticStrategies()
	fixed := elasticReplay(trace.Periodic, requests, strategies[0].cfg)
	reactive := elasticReplay(trace.Periodic, requests, strategies[1].cfg)
	predictive := elasticReplay(trace.Periodic, requests, strategies[3].cfg)
	wins := func(r elasticResult) bool {
		return r.gpuSeconds < fixed.gpuSeconds && r.st.P99 <= fixed.st.P99
	}
	if !wins(reactive) && !wins(predictive) {
		t.Fatalf("no elastic win over the fixed fleet:\nfixed:      %.1f gpu-sec, p99 %v\nreactive:   %.1f gpu-sec, p99 %v\npredictive: %.1f gpu-sec, p99 %v",
			fixed.gpuSeconds, fixed.st.P99,
			reactive.gpuSeconds, reactive.st.P99,
			predictive.gpuSeconds, predictive.st.P99)
	}
	// The cost gap should be substantial, not marginal: the elastic fleet
	// pays for capacity only while the load cycle needs it.
	if predictive.gpuSeconds > 0.75*fixed.gpuSeconds {
		t.Errorf("predictive fleet cost %.1f gpu-sec is not meaningfully below fixed %.1f",
			predictive.gpuSeconds, fixed.gpuSeconds)
	}
}
