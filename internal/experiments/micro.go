package experiments

import (
	"fmt"
	"time"

	"grouter/internal/fabric"
	"grouter/internal/netsim"
	"grouter/internal/sim"
	"grouter/internal/topology"
)

// Fig13DataPassing reproduces Fig. 13: function-to-function data-passing
// latency for the three patterns (intra-node gFn-gFn, host-gFn, inter-node
// gFn-gFn) across data volumes and systems.
func Fig13DataPassing() *Table {
	sizes := []int64{1 << 20, 16 << 20, 64 << 20, 256 << 20, 1 << 30}
	patterns := []struct {
		name  string
		nodes int
		src   fabric.Location
		dst   fabric.Location
	}{
		{"intra-gfn-gfn", 1, fabric.Location{Node: 0, GPU: 0}, fabric.Location{Node: 0, GPU: 3}},
		{"host-gfn", 1, fabric.Location{Node: 0, GPU: fabric.HostGPU}, fabric.Location{Node: 0, GPU: 0}},
		{"inter-gfn-gfn", 2, fabric.Location{Node: 0, GPU: 2}, fabric.Location{Node: 1, GPU: 5}},
	}
	t := &Table{
		ID:      "fig13",
		Title:   "Data-passing latency (ms) on DGX-V100",
		Columns: []string{"pattern", "size(MiB)", "infless+", "nvshmem+", "deepplan+", "grouter", "reduction"},
	}
	for _, pat := range patterns {
		for _, size := range sizes {
			row := []string{pat.name, mib(size)}
			var best, grt time.Duration
			for _, sys := range systems(3) {
				lat := passOnce(sys, topology.DGXV100(), pat.nodes, pat.src, pat.dst, size, 3)
				row = append(row, ms(lat))
				if sys.name == "grouter" {
					grt = lat
				} else if best == 0 || lat < best {
					best = lat
				}
			}
			row = append(row, pct(1-grt.Seconds()/best.Seconds()))
			t.Rows = append(t.Rows, row)
		}
	}
	t.Notes = append(t.Notes,
		"paper: GROUTER cuts intra-node latency 75-95%, host-gFn 63-75%, inter-node 87-91%",
		"reduction column compares GROUTER against the best baseline per row")
	return t
}

// Fig6aPairBandwidth reproduces Fig. 6(a): the asymmetric point-to-point
// bandwidth distribution of a DGX-V100.
func Fig6aPairBandwidth() *Table {
	spec := topology.DGXV100()
	classes := spec.PairClasses()
	total := 0
	for _, c := range classes {
		total += c
	}
	// Measure one representative pair per class with a raw flow.
	measure := func(src, dst int) float64 {
		e := sim.NewEngine()
		defer e.Close()
		cl := topology.NewCluster(spec, 1)
		net := netsim.New(e, cl.Links())
		n := cl.Node(0)
		var links []topology.LinkID
		if spec.NVLinkBps(src, dst) > 0 {
			links = n.NVLinkPathLinks([]int{src, dst})
		} else {
			links = n.PCIeP2PLinks(src, dst)
		}
		bytes := int64(1) << 30
		var elapsed time.Duration
		e.Go("bw", func(p *sim.Proc) {
			start := p.Now()
			f := net.Start("bw", links, float64(bytes), netsim.Options{})
			f.Done().Wait(p)
			elapsed = p.Now() - start
		})
		e.Run(0)
		return float64(bytes) / elapsed.Seconds() / 1e9
	}
	t := &Table{
		ID:      "fig6a",
		Title:   "DGX-V100 GPU-pair connectivity (28 unordered pairs)",
		Columns: []string{"class", "pairs", "share", "example", "measured GB/s"},
	}
	t.Rows = append(t.Rows,
		[]string{"double NVLink", fmt.Sprint(classes[topology.PairDouble]), pct(float64(classes[topology.PairDouble]) / float64(total)),
			"0-3", fmt.Sprintf("%.1f", measure(0, 3))},
		[]string{"single NVLink", fmt.Sprint(classes[topology.PairSingle]), pct(float64(classes[topology.PairSingle]) / float64(total)),
			"0-1", fmt.Sprintf("%.1f", measure(0, 1))},
		[]string{"no NVLink (PCIe)", fmt.Sprint(classes[topology.PairNoNVLink]), pct(float64(classes[topology.PairNoNVLink]) / float64(total)),
			"0-5", fmt.Sprintf("%.1f", measure(0, 5))},
	)
	t.Notes = append(t.Notes,
		"paper: 28% of pairs reach only half bandwidth, 42% lack direct NVLink",
	)
	return t
}

// Fig20aNoNVLink reproduces Fig. 20(a): gFn-gFn data passing on a 4×A10
// server without NVLink.
func Fig20aNoNVLink() *Table {
	sizes := []int64{16 << 20, 64 << 20, 256 << 20}
	src := fabric.Location{Node: 0, GPU: 0}
	dst := fabric.Location{Node: 0, GPU: 2}
	t := &Table{
		ID:      "fig20a",
		Title:   "gFn-gFn data passing (ms) on 4xA10 (no NVLink)",
		Columns: []string{"size(MiB)", "infless+", "nvshmem+", "deepplan+", "grouter", "reduction"},
	}
	for _, size := range sizes {
		row := []string{mib(size)}
		var best, grt time.Duration
		for _, sys := range systems(5) {
			lat := passOnce(sys, topology.QuadA10(), 1, src, dst, size, 4)
			row = append(row, ms(lat))
			if sys.name == "grouter" {
				grt = lat
			} else if best == 0 || lat < best {
				best = lat
			}
		}
		row = append(row, pct(1-grt.Seconds()/best.Seconds()))
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"paper: GROUTER reduces latency ~51% via placement awareness (one PCIe copy instead of two)")
	return t
}
