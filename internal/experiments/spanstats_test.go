package experiments

import (
	"testing"
	"time"
)

func TestSpanStatsSumMatchesE2E(t *testing.T) {
	bd := SpanStats()
	if len(bd.Requests) == 0 {
		t.Fatal("no requests recorded")
	}
	for _, rb := range bd.Requests {
		diff := rb.E2E() - rb.Sum()
		if diff < 0 {
			diff = -diff
		}
		if diff > time.Microsecond {
			t.Errorf("seq %d: bucket sum %v != e2e %v", rb.Seq, rb.Sum(), rb.E2E())
		}
	}
}

func TestSpanStatsTableShape(t *testing.T) {
	tbl := SpanStatsTable()
	if len(tbl.Rows) == 0 {
		t.Fatal("empty table")
	}
	for _, row := range tbl.Rows {
		if len(row) != len(tbl.Columns) {
			t.Fatalf("row width %d != %d columns", len(row), len(tbl.Columns))
		}
	}
}
