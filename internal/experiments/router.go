package experiments

import (
	"fmt"
	"time"

	"grouter/internal/cluster"
	"grouter/internal/router"
	"grouter/internal/scheduler"
	"grouter/internal/sim"
	"grouter/internal/topology"
	"grouter/internal/trace"
	"grouter/internal/workflow"
)

// ExtRouter runs the routed-admission replay at its smoke size (10k
// requests); the CLI's -router flag runs RouterTable at -scale-requests.
func ExtRouter() *Table { return RouterTable(10_000) }

// routedReplay replays one generated trace through the driving workflow on
// a 2-node DGX-V100 cluster (autoscaler on, batched admission), optionally
// with the scored front-door router, and returns the replay stats plus the
// router's counters.
func routedReplay(pattern trace.Pattern, requests int, routed bool, highEvery int) (cluster.ReplayStats, router.Stats) {
	arrivals := trace.Generate(trace.Spec{
		Pattern:  pattern,
		Duration: time.Duration(float64(requests) / 500 * float64(time.Second)),
		MeanRPS:  500,
		Seed:     42,
	})
	e := sim.NewEngine()
	defer e.Close()
	c := cluster.New(e, topology.DGXV100(), 2, systems(42)[3].mk)
	app := c.Deploy(workflow.Driving(), 1, scheduler.Options{Node: 0, SplitAcrossNodes: true})
	app.EnableAutoscale(cluster.DefaultAutoscale())
	var rt *router.Router
	if routed {
		rt = router.New(app, router.DefaultConfig())
	}
	var reqAt func(int) cluster.Request
	if highEvery > 0 {
		reqAt = func(i int) cluster.Request {
			if (i+1)%highEvery == 0 {
				return cluster.Request{QoS: cluster.QoSHigh}
			}
			return cluster.Request{}
		}
	}
	if arrivals == nil {
		arrivals = []time.Duration{}
	}
	st, err := app.Replay(arrivals, cluster.ReplaySpec{Quantum: ScaleQuantum, RequestAt: reqAt})
	if err != nil {
		panic(err)
	}
	var rs router.Stats
	if rt != nil {
		rs = rt.Stats
	}
	return st, rs
}

// RouterTable compares placement-only admission (the cluster's round-robin
// instance selection) against the scored front-door router on the same
// traces: per pattern, the identical arrival trace replayed both ways.
// Everything is measured in virtual time, so the table is byte-identical
// across runs of the same build.
func RouterTable(requests int) *Table {
	t := &Table{
		ID:    "ext-router",
		Title: "Gateway-grade routing (extension): routed vs placement-only admission, driving workflow",
		Columns: []string{"pattern", "admission", "requests",
			"tput(req/s)", "p50(ms)", "p99(ms)", "routed", "refreshes"},
	}
	for _, p := range []trace.Pattern{trace.Sporadic, trace.Periodic, trace.Bursty} {
		for _, routed := range []bool{false, true} {
			name := "placement-only"
			if routed {
				name = "routed"
			}
			st, rs := routedReplay(p, requests, routed, 0)
			t.Rows = append(t.Rows, []string{
				p.String(), name, fmt.Sprint(st.Requests),
				fmt.Sprintf("%.1f", st.Throughput), ms(st.P50), ms(st.P99),
				fmt.Sprint(rs.Decisions), fmt.Sprint(rs.Refreshes),
			})
		}
	}
	t.Notes = append(t.Notes,
		"extension (not a paper figure): scored worker admission (free mem, queue depth, EWMA latency, util)",
		"placement-only = round-robin over autoscaled instance pools; routed = top-3 weighted-random scored pick",
		fmt.Sprintf("same traces both ways (seed 42, 500 req/s mean, %v admission windows); autoscaler on", ScaleQuantum))
	return t
}

// RouterStatsRun replays the bursty pattern routed (one request in ten
// QoSHigh) and returns the replay stats and router counters — the data
// behind grouter-bench -router-stats.
func RouterStatsRun(requests int) (cluster.ReplayStats, router.Stats) {
	return routedReplay(trace.Bursty, requests, true, 10)
}
