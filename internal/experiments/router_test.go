package experiments

import (
	"strconv"
	"testing"

	"grouter/internal/trace"
)

func TestExtRouterRegistered(t *testing.T) {
	e := ByID("ext-router")
	if e == nil {
		t.Fatal("ext-router not registered")
	}
	if e.Run == nil || e.Title == "" {
		t.Fatal("ext-router registration incomplete")
	}
}

// TestRouterTableSmoke runs the routed-vs-placement comparison at a tiny
// request count: six rows (three patterns, both admissions), routed rows
// with live decision counters, identical request totals per pattern pair.
func TestRouterTableSmoke(t *testing.T) {
	tbl := RouterTable(600)
	if got := len(tbl.Rows); got != 6 {
		t.Fatalf("rows = %d, want 6", got)
	}
	for i := 0; i < 6; i += 2 {
		placement, routed := tbl.Rows[i], tbl.Rows[i+1]
		if placement[1] != "placement-only" || routed[1] != "routed" {
			t.Fatalf("row pair %d has wrong admission labels: %v / %v", i, placement[1], routed[1])
		}
		if placement[2] != routed[2] {
			t.Errorf("%s: request counts differ between admissions: %s vs %s",
				placement[0], placement[2], routed[2])
		}
		if n, err := strconv.Atoi(routed[6]); err != nil || n == 0 {
			t.Errorf("%s routed row has no routing decisions: %q", routed[0], routed[6])
		}
		if placement[6] != "0" {
			t.Errorf("%s placement-only row counted decisions: %q", placement[0], placement[6])
		}
	}
}

func TestRouterStatsRunSmoke(t *testing.T) {
	st, rs := RouterStatsRun(400)
	if st.Completed != st.Requests || st.Requests == 0 {
		t.Fatalf("stats run completed %d of %d", st.Completed, st.Requests)
	}
	if rs.Decisions == 0 || rs.Refreshes == 0 {
		t.Errorf("router idle during stats run: %+v", rs)
	}
}

// Guard: RouterTable patterns must stay in paper order so the ext-router
// table remains comparable across builds.
func TestRouterTablePatternOrder(t *testing.T) {
	tbl := RouterTable(0)
	want := []trace.Pattern{trace.Sporadic, trace.Periodic, trace.Bursty}
	for i, p := range want {
		if tbl.Rows[i*2][0] != p.String() {
			t.Errorf("row %d pattern = %s, want %s", i*2, tbl.Rows[i*2][0], p)
		}
	}
}
