package experiments

import (
	"fmt"
	"time"

	"grouter/internal/core"
	"grouter/internal/dataplane"
	"grouter/internal/fabric"
	"grouter/internal/metrics"
	"grouter/internal/sim"
	"grouter/internal/topology"
)

// fanoutResult is one fan-out run's outcome: how many payload bytes the
// producer GPU's own links carried (origin), total bytes moved anywhere, and
// the distribution of consumer Get latencies.
type fanoutResult struct {
	origin int64
	moved  int64
	lat    metrics.Latency
	co     dataplane.CoalesceStats
}

// runFanout puts `rounds` objects on node 0 GPU 0 and has `fanout` consumers
// — spread round-robin across the cluster's other GPUs — Get each one
// near-simultaneously (arrivals staggered by tens of microseconds, the jitter
// of a scheduler dispatching one DAG stage's replicas). With coalesce off,
// this is the repo's baseline behaviour: every consumer pulls from the
// producer. With it on, the Gets join, chain, and hit replicas.
func runFanout(spec *topology.Spec, nodes, fanout, rounds int, bytes int64, coalesce bool) fanoutResult {
	e := sim.NewEngine()
	defer e.Close()
	f := fabric.New(e, spec, nodes)
	cfg := core.FullConfig()
	cfg.Coalesce = coalesce
	pl := core.New(f, cfg)

	// Consumer locations: remote nodes first (node 1 GPU 0, 1, ...), then the
	// producer's node. This is the paper's ensemble shape — the next stage's
	// replicas land where there is free capacity, i.e. away from the producer
	// — and it puts the producer node's NIC on the naive hot path.
	var locs []fabric.Location
	for n := 1; n <= nodes && len(locs) < fanout; n++ {
		node := n % nodes
		for g := 0; g < spec.NumGPUs && len(locs) < fanout; g++ {
			if node == 0 && g == 0 {
				continue
			}
			locs = append(locs, fabric.Location{Node: node, GPU: g})
		}
	}

	res := fanoutResult{}
	prod := &dataplane.FnCtx{Fn: "producer", Workflow: "fanout", Loc: fabric.Location{Node: 0, GPU: 0}}
	e.Go("fanout", func(p *sim.Proc) {
		for round := 0; round < rounds; round++ {
			ref, err := pl.Put(p, prod, bytes)
			if err != nil {
				panic(err)
			}
			done := sim.NewFuture[int](e)
			finished := 0
			for i, loc := range locs {
				i, loc := i, loc
				e.Go("consume", func(cp *sim.Proc) {
					cp.Sleep(time.Duration(i) * 25 * time.Microsecond)
					cons := &dataplane.FnCtx{Fn: "consumer", Workflow: "fanout", Loc: loc}
					start := cp.Now()
					if err := pl.Get(cp, cons, ref); err != nil {
						panic(err)
					}
					res.lat.Add(cp.Now() - start)
					if finished++; finished == len(locs) {
						done.Resolve(round)
					}
				})
			}
			done.Wait(p)
			pl.Free(ref)
			p.Sleep(time.Millisecond) // round gap
		}
	})
	e.Run(0)

	st := pl.Stats()
	res.co = st.Coalesce
	res.moved = st.BytesMoved
	if coalesce {
		res.origin = st.Coalesce.OriginBytes
	} else {
		// Without coalescing every Get pulls from the producer GPU.
		res.origin = st.BytesMoved
	}
	return res
}

// fanoutTopos are the two clusters the fan-out experiment runs on.
var fanoutTopos = []struct {
	name  string
	spec  func() *topology.Spec
	nodes int
}{
	{"dgx-v100 x2", topology.DGXV100, 2},
	{"h800x8 x2", topology.H800x8, 2},
}

// ExtFanout measures fan-out-aware transfer coalescing: N consumers of one
// 128 MiB object, naive (every consumer pulls from the producer) versus
// coalesced (join in-flight transfers, chain off replicas). The headline
// column is the bytes the producer GPU's links carry.
func ExtFanout() *Table {
	t := &Table{
		ID:      "ext-fanout",
		Title:   "Fan-out transfer coalescing (extension): N consumers of one 128 MiB object",
		Columns: []string{"topology", "fanout", "mode", "origin(MiB)", "saved", "p50(ms)", "p99(ms)"},
	}
	const (
		bytes  = 128 << 20
		rounds = 6
	)
	for _, topo := range fanoutTopos {
		for _, fanout := range []int{4, 8} {
			naive := runFanout(topo.spec(), topo.nodes, fanout, rounds, bytes, false)
			co := runFanout(topo.spec(), topo.nodes, fanout, rounds, bytes, true)
			saved := 1 - float64(co.origin)/float64(naive.origin)
			t.Rows = append(t.Rows,
				[]string{topo.name, fmt.Sprint(fanout), "naive",
					fmt.Sprintf("%d", naive.origin>>20), "-",
					ms(naive.lat.P(0.5)), ms(naive.lat.P(0.99))},
				[]string{topo.name, fmt.Sprint(fanout), "coalesced",
					fmt.Sprintf("%d", co.origin>>20), fmt.Sprintf("%.0f%%", saved*100),
					ms(co.lat.P(0.5)), ms(co.lat.P(0.99))})
		}
	}
	t.Notes = append(t.Notes,
		"extension (not a paper figure): same-object fan-out is the MoA/ensemble pattern of §2.2",
		"origin(MiB) is payload carried by the producer GPU's links; saved = 1 - coalesced/naive",
		"coalesced Gets join in-flight transfers (same dst), chain off in-flight copies (other",
		"dsts), or hit registered replicas; sources are scored by topology distance and free bw")
	return t
}
