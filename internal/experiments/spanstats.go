package experiments

import (
	"fmt"
	"time"

	"grouter/internal/cluster"
	"grouter/internal/core"
	"grouter/internal/dataplane"
	"grouter/internal/fabric"
	"grouter/internal/obs"
	"grouter/internal/scheduler"
	"grouter/internal/sim"
	"grouter/internal/topology"
	"grouter/internal/trace"
	"grouter/internal/workflow"
)

// SpanStats runs the traffic workflow under GROUTER with critical-path
// accounting enabled and reports, per request, how the end-to-end latency
// divides into the obs bucket categories. The bucket sum equals E2E by
// construction (the critical chain tiles the request window), which the
// trailing note verifies.
func SpanStats() *cluster.Breakdown {
	e := sim.NewEngine()
	defer e.Close()
	mk := func(f *fabric.Fabric) dataplane.Plane { return core.New(f, core.FullConfig()) }
	c := cluster.New(e, topology.DGXV100(), 1, mk)
	app := c.Deploy(workflow.Traffic(), 0, scheduler.Options{Node: -1})
	bd := app.EnableBreakdown()
	app.RunTrace(trace.Generate(trace.Spec{
		Pattern: trace.Bursty, Duration: 4 * time.Second, MeanRPS: 6, Seed: 1,
	}))
	return bd
}

// SpanStatsTable renders SpanStats as a printable per-request table.
func SpanStatsTable() *Table {
	bd := SpanStats()
	t := &Table{
		ID:    "span-stats",
		Title: "Per-request critical-path latency breakdown (traffic on grouter)",
		Columns: []string{"req", "e2e(ms)", "setup", "queue", "transfer",
			"retry", "migrate", "compute", "defer-wait", "shed", "other",
			"sum(ms)"},
	}
	var maxErr time.Duration
	for _, rb := range bd.Requests {
		row := []string{fmt.Sprintf("%d", rb.Seq), ms(rb.E2E())}
		for c := obs.Category(0); c < obs.NumBuckets; c++ {
			row = append(row, ms(rb.Buckets[c]))
		}
		row = append(row, ms(rb.Sum()))
		t.Rows = append(t.Rows, row)
		err := rb.E2E() - rb.Sum()
		if err < 0 {
			err = -err
		}
		if err > maxErr {
			maxErr = err
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d requests; max |e2e - bucket sum| = %v (buckets tile the critical path)",
			len(bd.Requests), maxErr))
	return t
}
