package experiments

import (
	"fmt"
	"time"

	"grouter/internal/baselines"
	"grouter/internal/cluster"
	"grouter/internal/core"
	"grouter/internal/dataplane"
	"grouter/internal/fabric"
	"grouter/internal/scheduler"
	"grouter/internal/sim"
	"grouter/internal/store"
	"grouter/internal/topology"
	"grouter/internal/workflow"
)

// Fig7aMemoryTimeline reproduces Fig. 7(a): GPU memory behaviour of the
// storage layer while the driving workflow runs under an Azure-like bursty
// trace on 16 GB GPUs.
func Fig7aMemoryTimeline() *Table {
	e := sim.NewEngine()
	var plane *core.Plane
	c := cluster.New(e, topology.DGXV100(), 1, func(f *fabric.Fabric) dataplane.Plane {
		plane = core.New(f, core.FullConfig())
		return plane
	})
	app := c.Deploy(workflow.Driving(), 0, scheduler.Options{Node: 0})
	app.RunTrace(burstyTrace(10, 30*time.Second, 77))
	end := e.Now() // run horizon: the last sample holds until here
	e.Close()

	st := plane.Store(0)
	t := &Table{
		ID:      "fig7a",
		Title:   "Storage memory behaviour, driving workflow, bursty trace (30s)",
		Columns: []string{"metric", "value"},
	}
	t.Rows = append(t.Rows,
		[]string{"requests completed", fmt.Sprint(app.Completed)},
		[]string{"peak storage used (MiB)", mib(int64(st.UsedTL.Peak()))},
		[]string{"peak storage reserved (MiB)", mib(int64(st.ReservedTL.Peak()))},
		[]string{"mean storage used (MiB)", mib(int64(st.UsedTL.MeanUntil(end)))},
		[]string{"mean storage reserved (MiB)", mib(int64(st.ReservedTL.MeanUntil(end)))},
		[]string{"timeline samples", fmt.Sprint(st.UsedTL.Len())},
	)
	t.Notes = append(t.Notes,
		"paper: idle GPU memory fluctuates with the trace; elastic storage tracks actual demand",
		"reserved = demand-driven reservations floored at the 300 MB/GPU minimum pool (§4.4.1);",
		"compare fig20c, where static/symmetric pools hold the full static reserve regardless of demand")
	return t
}

// fig18Systems are the four storage strategies of Fig. 18.
func fig18Systems() []planeMaker {
	mkPolicy := func(name string, pol store.Policy) planeMaker {
		return planeMaker{name, func(f *fabric.Fabric) dataplane.Plane {
			cfg := core.FullConfig()
			cfg.StoreOverride = &store.Config{Elastic: true, Policy: pol}
			return core.New(f, cfg)
		}}
	}
	return []planeMaker{
		{"infless+", func(f *fabric.Fabric) dataplane.Plane { return baselines.NewINFless(f) }},
		mkPolicy("lru", store.PolicyLRU),
		mkPolicy("rq", store.PolicyRQ),
		mkPolicy("grouter", store.PolicyRQProactive),
	}
}

// runSqueezed runs traffic with GPU memory squeezed so the storage budget is
// ratio × GPU capacity, under a closed loop deep enough to accumulate
// intermediate data (the paper's data-accumulation condition of Fig. 7/18).
func runSqueezed(mk planeMaker, ratio float64) *cluster.App {
	e := sim.NewEngine()
	defer e.Close()
	c := cluster.New(e, topology.DGXV100(), 1, mk.mk)
	// Storage limit = FreeFraction (0.5) × free memory, so leave 2×ratio×cap
	// free to budget ratio×cap for storage.
	leave := int64(2 * ratio * float64(c.Spec().GPUMemBytes))
	c.SqueezeGPUMemory(leave)
	app := c.Deploy(workflow.Traffic(), 16, scheduler.Options{Node: 0})
	app.MeasureThroughput(48, 10*time.Second)
	return app
}

// Fig18ElasticStorage reproduces Fig. 18: latency under constrained GPU
// memory for INFless+, LRU, RQ, and full GROUTER (RQ + proactive
// migration).
func Fig18ElasticStorage() *Table {
	t := &Table{
		ID:      "fig18",
		Title:   "Elastic storage under memory pressure (traffic, bursty)",
		Columns: []string{"mem-ratio", "system", "p50(ms)", "p99(ms)", "avg gfn-gfn passing(ms)"},
	}
	// (a)+(c): detailed comparison at 10% memory.
	for _, sys := range fig18Systems() {
		app := runSqueezed(sys, 0.10)
		t.Rows = append(t.Rows, []string{"10%", sys.name,
			ms(app.E2E.P(0.5)), ms(app.E2E.P(0.99)), ms(app.XferGPU.Mean())})
	}
	// (b): GROUTER-policy P99 across availability ratios.
	for _, ratio := range []float64{0.01, 0.05, 0.25, 0.50} {
		for _, sys := range fig18Systems() {
			if sys.name == "rq" {
				continue // keep the sweep compact: paper highlights the extremes
			}
			app := runSqueezed(sys, ratio)
			t.Rows = append(t.Rows, []string{pct(ratio), sys.name,
				ms(app.E2E.P(0.5)), ms(app.E2E.P(0.99)), ms(app.XferGPU.Mean())})
		}
	}
	t.Notes = append(t.Notes,
		"paper (10%): GROUTER cuts tail latency 46%/27%/7% vs INFless+/LRU/RQ",
		"paper (1%): 24%/14%/9% e2e reduction; passing latency down 83%/72%/49%")
	return t
}

// Fig20cMemoryOverhead reproduces Fig. 20(c): GPU memory consumed by the
// storage layer under identical load for NVSHMEM+ symmetric allocation, a
// static pool, and GROUTER's elastic storage.
func Fig20cMemoryOverhead() *Table {
	type probe struct {
		name     string
		mk       func(f *fabric.Fabric) dataplane.Plane
		reserved func() int64
		used     func() int64
	}
	var probes []*probe
	mkGrouter := func(name string, elastic bool) *probe {
		pr := &probe{name: name}
		pr.mk = func(f *fabric.Fabric) dataplane.Plane {
			cfg := core.FullConfig()
			cfg.ElasticStore = elastic
			pl := core.New(f, cfg)
			pr.reserved = func() int64 { return int64(pl.Store(0).ReservedTL.Peak()) }
			pr.used = func() int64 { return int64(pl.Store(0).UsedTL.Peak()) }
			return pl
		}
		return pr
	}
	nv := &probe{name: "nvshmem+ (symmetric)"}
	nv.mk = func(f *fabric.Fabric) dataplane.Plane {
		pl := baselines.NewNVShmem(f, 17)
		nv.reserved = func() int64 { return int64(pl.Store(0).ReservedTL.Peak()) }
		nv.used = func() int64 { return int64(pl.Store(0).UsedTL.Peak()) }
		return pl
	}
	probes = append(probes, nv, mkGrouter("static pool", false), mkGrouter("grouter (elastic)", true))

	t := &Table{
		ID:      "fig20c",
		Title:   "Peak storage reservation vs actual demand (driving, bursty)",
		Columns: []string{"system", "peak reserved (MiB)", "peak used (MiB)", "overprovision"},
	}
	for _, pr := range probes {
		e := sim.NewEngine()
		c := cluster.New(e, topology.DGXV100(), 1, pr.mk)
		app := c.Deploy(workflow.Driving(), 16, scheduler.Options{Node: 0})
		app.RunTrace(burstyTrace(30, 15*time.Second, 91))
		e.Close()
		res, used := pr.reserved(), pr.used()
		over := "-"
		if used > 0 {
			over = ratio(float64(res) / float64(used))
		}
		t.Rows = append(t.Rows, []string{pr.name, mib(res), mib(used), over})
	}
	t.Notes = append(t.Notes,
		"paper: NVSHMEM symmetric allocation wastes the most; static pools hold ~4x demand; GROUTER scales to need")
	return t
}
