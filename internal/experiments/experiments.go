// Package experiments reproduces every table and figure of the paper's
// evaluation (§2 motivation and §6). Each experiment builds a fresh
// simulated cluster, runs the workloads, and returns a Table with the same
// rows/series the paper reports plus notes comparing measured shape against
// the published numbers.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"grouter/internal/baselines"
	"grouter/internal/cluster"
	"grouter/internal/core"
	"grouter/internal/dataplane"
	"grouter/internal/fabric"
	"grouter/internal/sim"
	"grouter/internal/topology"
)

// Table is one experiment's result in printable form.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	// Notes record paper-vs-measured comparisons and caveats.
	Notes []string
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// Experiment couples an ID with its runner.
type Experiment struct {
	ID    string
	Title string
	Run   func() *Table
}

// All lists every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"fig3", "Host-centric data-passing latency breakdown", Fig3Breakdown},
		{"fig5b", "Parallel-PCIe interference without partitioning", Fig5bInterference},
		{"fig6a", "DGX-V100 point-to-point bandwidth classes", Fig6aPairBandwidth},
		{"fig7a", "Idle GPU memory under an Azure-like trace", Fig7aMemoryTimeline},
		{"tab1", "Capability matrix of GPU-side storage systems", Table1Capabilities},
		{"fig13", "Data-passing latency across systems and sizes", Fig13DataPassing},
		{"fig14", "End-to-end P99 latency on real workflows", Fig14EndToEnd},
		{"fig15", "Maximum throughput intra- and inter-node", Fig15Throughput},
		{"fig16", "Ablation of GROUTER optimizations", Fig16Ablation},
		{"fig17", "SLO-aware bandwidth partitioning", Fig17Partitioning},
		{"fig18", "Elastic storage under memory pressure", Fig18ElasticStorage},
		{"fig19", "LLM KV-cache passing TTFT", Fig19LLMTTFT},
		{"fig20a", "Data passing on a server without NVLink", Fig20aNoNVLink},
		{"fig20b", "Control-plane CPU overhead", Fig20bCPUOverhead},
		{"fig20c", "GPU memory overhead of storage", Fig20cMemoryOverhead},
		{"ext-coldstart", "Extension: function pre-warming sensitivity", ExtColdStart},
		{"ext-spatial", "Extension: spatial GPU sharing contention", ExtSpatialSharing},
		{"ext-faults", "Extension: self-healing transfers under link faults", ExtFaults},
		{"ext-fanout", "Extension: fan-out transfer coalescing", ExtFanout},
		{"ext-router", "Extension: gateway-grade routed admission vs placement-only", ExtRouter},
		{"ext-scale", "Extension: trace replay at scale with batched admission", ExtScale},
		{"ext-scale-shard", "Extension: scale-out fleet replay on the sharded engine", ExtScaleShard},
		{"ext-elastic", "Extension: elastic instance pools, GPU-seconds vs p99 per strategy", ExtElastic},
		{"ext-pd", "Extension: prefill/decode disaggregation over the data plane", ExtPD},
		{"ext-slo", "Extension: SLO-aware admission control and session affinity", ExtSLO},
	}
}

// ByID returns the experiment with the given ID, or nil.
func ByID(id string) *Experiment {
	for _, e := range All() {
		if e.ID == id {
			e := e
			return &e
		}
	}
	return nil
}

// IDs returns all experiment IDs in order.
func IDs() []string {
	var out []string
	for _, e := range All() {
		out = append(out, e.ID)
	}
	return out
}

// --- shared helpers ---

// planeMaker builds a plane on a fabric.
type planeMaker struct {
	name string
	mk   func(f *fabric.Fabric) dataplane.Plane
}

// systems returns the four comparison systems in paper order.
func systems(seed int64) []planeMaker {
	return []planeMaker{
		{"infless+", func(f *fabric.Fabric) dataplane.Plane { return baselines.NewINFless(f) }},
		{"nvshmem+", func(f *fabric.Fabric) dataplane.Plane { return baselines.NewNVShmem(f, seed) }},
		{"deepplan+", func(f *fabric.Fabric) dataplane.Plane { return baselines.NewDeepPlan(f, seed) }},
		{"grouter", func(f *fabric.Fabric) dataplane.Plane { return core.New(f, core.FullConfig()) }},
	}
}

// ms formats a duration in milliseconds.
func ms(d time.Duration) string { return fmt.Sprintf("%.2f", float64(d)/float64(time.Millisecond)) }

// pct formats a fraction as a percentage.
func pct(f float64) string { return fmt.Sprintf("%.0f%%", f*100) }

// ratio formats a speedup factor.
func ratio(f float64) string { return fmt.Sprintf("%.2fx", f) }

// mib formats bytes in MiB.
func mib(b int64) string { return fmt.Sprintf("%.0f", float64(b)/float64(1<<20)) }

// passOnce performs rounds Put+Get exchanges between src and dst on a fresh
// cluster (with one warm-up) and returns the mean latency.
func passOnce(mk planeMaker, spec *topology.Spec, nodes int, src, dst fabric.Location, bytes int64, rounds int) time.Duration {
	e := sim.NewEngine()
	defer e.Close()
	f := fabric.New(e, spec, nodes)
	pl := mk.mk(f)
	var mean time.Duration
	e.Go("pass", func(p *sim.Proc) {
		prod := &dataplane.FnCtx{Fn: "up", Workflow: "micro", Loc: src}
		cons := &dataplane.FnCtx{Fn: "down", Workflow: "micro", Loc: dst}
		once := func() {
			ref, err := pl.Put(p, prod, bytes)
			if err != nil {
				panic(err)
			}
			if err := pl.Get(p, cons, ref); err != nil {
				panic(err)
			}
			pl.Free(ref)
		}
		once() // warm pools
		start := p.Now()
		for i := 0; i < rounds; i++ {
			once()
		}
		mean = (p.Now() - start) / time.Duration(rounds)
	})
	e.Run(0)
	return mean
}

// appPlaneStats exposes the data-plane counters behind a cluster app.
func appPlaneStats(app *cluster.App) *dataplane.Stats { return app.C.Plane.Stats() }

// fabric0 names a GPU location on node `node`.
func fabric0(node, gpu int) fabric.Location { return fabric.Location{Node: node, GPU: gpu} }

// fabricHost names host memory on node `node`.
func fabricHost(node int) fabric.Location { return fabric.Location{Node: node, GPU: fabric.HostGPU} }
