package experiments

import (
	"reflect"
	"testing"

	"grouter/internal/trace"
)

func TestExtSLORegistered(t *testing.T) {
	e := ByID("ext-slo")
	if e == nil {
		t.Fatal("ext-slo not registered")
	}
	if e.Run == nil {
		t.Fatal("ext-slo has no runner")
	}
}

// TestSLOBurstyAcceptance pins the experiment's headline claim on the bursty
// pattern: SLO-aware admission must improve high-class attainment at
// equal-or-better goodput versus the baseline scored router. Shedding during
// burst peaks trades hopeless completions for in-budget ones, so both sides
// of the trade are asserted.
func TestSLOBurstyAcceptance(t *testing.T) {
	base := sloReplay(trace.Bursty, 5000, sloBaseline)
	admit := sloReplay(trace.Bursty, 5000, sloAdmit)
	t.Logf("baseline: hi-attain %.3f goodput %.1f hi-p99 %v", base.hiAtt, base.goodput, base.hiP99)
	t.Logf("slo:      hi-attain %.3f goodput %.1f hi-p99 %v shed %d", admit.hiAtt, admit.goodput, admit.hiP99, admit.st.Shed)
	if admit.st.Shed == 0 {
		t.Error("SLO admission shed nothing under the bursty pattern")
	}
	if admit.hiAtt <= base.hiAtt {
		t.Errorf("hi-attain did not improve: %.3f (slo) vs %.3f (baseline)", admit.hiAtt, base.hiAtt)
	}
	if admit.goodput < base.goodput {
		t.Errorf("goodput regressed: %.1f (slo) vs %.1f (baseline)", admit.goodput, base.goodput)
	}
	if admit.st.Requests != admit.st.Completed+admit.st.Shed {
		t.Errorf("accounting gap: %d requests != %d completed + %d shed",
			admit.st.Requests, admit.st.Completed, admit.st.Shed)
	}
}

// TestSLOAffinityActive: the affinity mode must actually land scored picks on
// pinned workers (a zero hit count would make the third column vacuous).
func TestSLOAffinityActive(t *testing.T) {
	r := sloReplay(trace.Sporadic, 2000, sloAffinity)
	if r.rs.AffinityHits == 0 {
		t.Error("slo+affinity mode recorded no affinity hits")
	}
}

// TestSLOTableDeterminism: the whole comparison is byte-identical across
// runs — virtual time only, fixed seeds.
func TestSLOTableDeterminism(t *testing.T) {
	a := SLOTable(2000)
	b := SLOTable(2000)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("SLOTable not deterministic across runs")
	}
}
