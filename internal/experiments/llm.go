package experiments

import (
	"fmt"
	"time"

	"grouter/internal/kvcache"
	"grouter/internal/models"
	"grouter/internal/sim"
)

// kvTTFT measures one receiver TTFT on a fresh 2-node H800 cluster.
func kvTTFT(sys kvcache.System, llmName string, tokens, tp int) time.Duration {
	e := sim.NewEngine()
	defer e.Close()
	c := kvcache.NewCluster(e, 2)
	var got time.Duration
	e.Go("ttft", func(p *sim.Proc) {
		got = c.TTFT(p, sys, models.MustLookupLLM(llmName), tokens, tp, 0, 1)
	})
	e.Run(0)
	return got
}

// Fig19LLMTTFT reproduces Fig. 19: time-to-first-token of the receiving LLM
// agent when the KV cache passes between Mixture-of-Agents stages on
// separate 8×H800 nodes — (a) across input lengths and (b) across models and
// tensor-parallel degrees.
func Fig19LLMTTFT() *Table {
	t := &Table{
		ID:      "fig19",
		Title:   "KV-cache passing TTFT (ms) between MoA stages (8xH800 nodes)",
		Columns: []string{"model", "input", "tp", "infless+", "mooncake+", "grouter", "vs infless+", "vs mooncake+"},
	}
	sys := []kvcache.System{kvcache.SysINFless, kvcache.SysMooncake, kvcache.SysGRouter}
	addRow := func(model string, tokens, tp int) {
		var lats [3]time.Duration
		for i, s := range sys {
			lats[i] = kvTTFT(s, model, tokens, tp)
		}
		t.Rows = append(t.Rows, []string{
			model, fmt.Sprintf("%dK", tokens/1024), fmt.Sprint(tp),
			ms(lats[0]), ms(lats[1]), ms(lats[2]),
			pct(1 - lats[2].Seconds()/lats[0].Seconds()),
			pct(1 - lats[2].Seconds()/lats[1].Seconds()),
		})
	}
	// (a) input-length sweep at TP=2 (llama-7b).
	for _, tokens := range []int{1024, 2048, 4096, 8192, 16384} {
		addRow("llama-7b", tokens, 2)
	}
	// (b) model × TP sweep at 4K input.
	for _, m := range []struct {
		name string
		tp   int
	}{
		{"llama-7b", 1}, {"llama-13b", 2}, {"qwen-32b", 4}, {"llama-70b", 8},
	} {
		addRow(m.name, 4096, m.tp)
	}
	t.Notes = append(t.Notes,
		"paper: at 4K input GROUTER cuts TTFT 66% vs INFless+ and 57% vs Mooncake+",
		"paper: the Mooncake+ gap narrows as TP rises (it gains NICs); at TP=8 the win is locality only")
	return t
}
