package experiments

import (
	"fmt"
	"time"

	"grouter/internal/cluster"
	"grouter/internal/core"
	"grouter/internal/dataplane"
	"grouter/internal/fabric"
	"grouter/internal/scheduler"
	"grouter/internal/sim"
	"grouter/internal/topology"
	"grouter/internal/trace"
	"grouter/internal/workflow"
)

// runWorkload deploys wf on a fresh cluster with the given plane and drives
// it with a trace; it returns the app with populated metrics.
func runWorkload(mk planeMaker, spec *topology.Spec, nodes int, wf *workflow.Workflow, batch int,
	opt scheduler.Options, arrivals []time.Duration) *cluster.App {
	e := sim.NewEngine()
	defer e.Close()
	c := cluster.New(e, spec, nodes, mk.mk)
	app := c.Deploy(wf, batch, opt)
	app.RunTrace(arrivals)
	return app
}

// burstyTrace is the shared workload driver (Azure-like bursty pattern).
func burstyTrace(rps float64, dur time.Duration, seed int64) []time.Duration {
	return trace.Generate(trace.Spec{Pattern: trace.Bursty, Duration: dur, MeanRPS: rps, Seed: seed})
}

// Fig3Breakdown reproduces Fig. 3: the latency breakdown of host-centric
// data passing on INFless+ — per workflow, and for Traffic across batch
// sizes.
func Fig3Breakdown() *Table {
	t := &Table{
		ID:      "fig3",
		Title:   "Host-centric (INFless+) latency breakdown on DGX-V100",
		Columns: []string{"workload", "batch", "gfn-host", "gfn-gfn", "compute", "passing-share"},
	}
	infless := systems(1)[0]
	addRow := func(wf *workflow.Workflow, batch int) {
		app := runWorkload(infless, topology.DGXV100(), 1, wf, batch,
			scheduler.Options{Node: -1}, burstyTrace(4, 10*time.Second, 21))
		host := app.XferHost.Mean()
		gpu := app.XferGPU.Mean()
		comp := app.Compute.Mean()
		total := host + gpu + comp
		share := 0.0
		if total > 0 {
			share = (host + gpu).Seconds() / total.Seconds()
		}
		b := batch
		if b <= 0 {
			b = wf.Batch
		}
		t.Rows = append(t.Rows, []string{wf.Name, fmt.Sprint(b), ms(host), ms(gpu), ms(comp), pct(share)})
	}
	for _, wf := range workflow.Suite() {
		addRow(wf, 0)
	}
	for _, batch := range []int{1, 16, 32, 64} {
		addRow(workflow.Traffic(), batch)
	}
	t.Notes = append(t.Notes,
		"paper: data passing accounts for up to 92% of end-to-end latency (63% gFn-gFn, 29% gFn-host)",
		"columns are per-request mean sums; passing-share = passing/(passing+compute)")
	return t
}

// Fig14EndToEnd reproduces Fig. 14: P99 end-to-end latency of the workflow
// suite on both testbeds across all four systems.
func Fig14EndToEnd() *Table {
	t := &Table{
		ID:      "fig14",
		Title:   "End-to-end P99 latency (ms) under a bursty Azure-like trace",
		Columns: []string{"testbed", "workload", "infless+", "nvshmem+", "deepplan+", "grouter", "reduction"},
	}
	for _, spec := range []*topology.Spec{topology.DGXV100(), topology.DGXA100()} {
		for _, wf := range workflow.Suite() {
			row := []string{spec.Name, wf.Name}
			var best, grt time.Duration
			for _, sys := range systems(7) {
				app := runWorkload(sys, spec, 1, wf, 0,
					scheduler.Options{Node: -1}, burstyTrace(6, 15*time.Second, 33))
				p99 := app.E2E.P(0.99)
				row = append(row, ms(p99))
				if sys.name == "grouter" {
					grt = p99
				} else if best == 0 || p99 < best {
					best = p99
				}
			}
			row = append(row, pct(1-grt.Seconds()/best.Seconds()))
			t.Rows = append(t.Rows, row)
		}
	}
	t.Notes = append(t.Notes,
		"paper: GROUTER cuts P99 by 48-61% (V100) and 30-53% (A100) vs baselines",
		"reduction compares GROUTER with the best baseline per row")
	return t
}

// Fig15Throughput reproduces Fig. 15: maximum sustained throughput with
// functions colocated on one node and split across two nodes.
func Fig15Throughput() *Table {
	t := &Table{
		ID:      "fig15",
		Title:   "Max throughput (req/s) on DGX-V100, closed loop",
		Columns: []string{"placement", "workload", "infless+", "nvshmem+", "deepplan+", "grouter", "speedup"},
	}
	for _, split := range []bool{false, true} {
		placement := "same-node"
		nodes := 1
		if split {
			placement = "cross-node"
			nodes = 2
		}
		for _, wf := range workflow.Suite() {
			row := []string{placement, wf.Name}
			var best, grt float64
			for _, sys := range systems(9) {
				e := sim.NewEngine()
				c := cluster.New(e, topology.DGXV100(), nodes, sys.mk)
				app := c.Deploy(wf, 0, scheduler.Options{Node: -1, SplitAcrossNodes: split})
				tput := app.MeasureThroughput(24, 10*time.Second)
				e.Close()
				row = append(row, fmt.Sprintf("%.1f", tput))
				if sys.name == "grouter" {
					grt = tput
				} else if tput > best {
					best = tput
				}
			}
			row = append(row, ratio(grt/best))
			t.Rows = append(t.Rows, row)
		}
	}
	t.Notes = append(t.Notes,
		"paper: same-node speedups 1.37-2.1x, cross-node 1.39-2.73x vs baselines",
		"speedup compares GROUTER with the best baseline per row")
	return t
}

// Fig16Ablation reproduces Fig. 16: disabling GROUTER's optimizations one by
// one (cumulative, in the paper's order ES → TA → BH → UF) and measuring the
// average data-passing latency under a bursty workload.
func Fig16Ablation() *Table {
	variants := []struct {
		name string
		cfg  core.Config
	}{
		{"grouter", core.FullConfig()},
		{"-ES", core.Config{UnifiedFramework: true, BandwidthHarvest: true, TopoAware: true}},
		{"-ES-TA", core.Config{UnifiedFramework: true, BandwidthHarvest: true}},
		{"-ES-TA-BH", core.Config{UnifiedFramework: true}},
		{"-ES-TA-BH-UF", core.Config{}},
	}
	t := &Table{
		ID:      "fig16",
		Title:   "Ablation: avg data-passing latency (ms) per request, bursty workload",
		Columns: []string{"testbed", "variant", "passing(ms)", "vs grouter"},
	}
	for _, spec := range []*topology.Spec{topology.DGXV100(), topology.DGXA100()} {
		var baseline time.Duration
		for _, v := range variants {
			v := v
			spec := spec
			mk := planeMaker{name: v.name, mk: func(f *fabric.Fabric) dataplane.Plane {
				cfg := v.cfg
				// Static pools are conventionally sized at a fixed fraction
				// of device memory.
				cfg.StaticReserve = spec.GPUMemBytes / 8
				return core.New(f, cfg)
			}}
			e := sim.NewEngine()
			c := cluster.New(e, spec, 1, mk.mk)
			// Co-resident models leave 20% of GPU memory free: real
			// multi-tenant pressure, so the storage policies matter.
			c.SqueezeGPUMemory(spec.GPUMemBytes / 4)
			app := c.Deploy(workflow.Traffic(), 16, scheduler.Options{Node: -1})
			app.MeasureThroughput(48, 10*time.Second)
			e.Close()
			passing := app.XferGPU.Mean() + app.XferHost.Mean()
			if v.name == "grouter" {
				baseline = passing
			}
			t.Rows = append(t.Rows, []string{spec.Name, v.name, ms(passing), ratio(passing.Seconds() / baseline.Seconds())})
		}
	}
	t.Notes = append(t.Notes,
		"paper: removing everything raises latency 1.57-1.82x (V100) and 1.30-1.61x (A100)")
	return t
}
