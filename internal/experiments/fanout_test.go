package experiments

import (
	"reflect"
	"testing"
)

// The PR's acceptance bar: for every topology and fan-out N >= 4, coalescing
// must cut the producer GPU's source-link bytes by at least 30% and must not
// raise the p99 consumer Get latency.
func TestFanoutAcceptance(t *testing.T) {
	const (
		bytes  = 128 << 20
		rounds = 3
	)
	for _, topo := range fanoutTopos {
		for _, fanout := range []int{4, 8} {
			naive := runFanout(topo.spec(), topo.nodes, fanout, rounds, bytes, false)
			co := runFanout(topo.spec(), topo.nodes, fanout, rounds, bytes, true)
			saved := 1 - float64(co.origin)/float64(naive.origin)
			if saved < 0.30 {
				t.Errorf("%s N=%d: origin bytes %d -> %d, saved %.0f%% < 30%%",
					topo.name, fanout, naive.origin, co.origin, saved*100)
			}
			if co.lat.P(0.99) > naive.lat.P(0.99) {
				t.Errorf("%s N=%d: coalesced p99 %v > naive p99 %v",
					topo.name, fanout, co.lat.P(0.99), naive.lat.P(0.99))
			}
			if got := co.co.Joined + co.co.Chained + co.co.ReplicaHits; got == 0 {
				t.Errorf("%s N=%d: coalescing enabled but no Get joined, chained, or hit a replica", topo.name, fanout)
			}
			if naive.moved != int64(fanout)*rounds*bytes {
				t.Errorf("%s N=%d: naive moved %d bytes, want %d", topo.name, fanout, naive.moved, int64(fanout)*rounds*bytes)
			}
		}
	}
}

// Coalesced fan-out must stay deterministic: two identical runs produce the
// same byte counts, stats, and latency distribution.
func TestFanoutDeterministic(t *testing.T) {
	for _, coalesce := range []bool{false, true} {
		a := runFanout(fanoutTopos[0].spec(), fanoutTopos[0].nodes, 6, 2, 64<<20, coalesce)
		b := runFanout(fanoutTopos[0].spec(), fanoutTopos[0].nodes, 6, 2, 64<<20, coalesce)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("coalesce=%v: runs differ:\n%+v\n%+v", coalesce, a, b)
		}
	}
}
