package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig3", "fig5b", "fig6a", "fig7a", "tab1", "fig13", "fig14",
		"fig15", "fig16", "fig17", "fig18", "fig19", "fig20a", "fig20b", "fig20c",
		"ext-coldstart", "ext-spatial", "ext-faults", "ext-fanout", "ext-router",
		"ext-scale", "ext-scale-shard", "ext-elastic", "ext-pd", "ext-slo"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("registry[%d] = %s, want %s", i, got[i], want[i])
		}
	}
	for _, id := range want {
		if ByID(id) == nil {
			t.Errorf("ByID(%s) = nil", id)
		}
	}
	if ByID("fig99") != nil {
		t.Error("unknown ID should be nil")
	}
}

func TestTableFormat(t *testing.T) {
	tbl := &Table{
		ID: "x", Title: "demo",
		Columns: []string{"a", "bee"},
		Rows:    [][]string{{"1", "2"}, {"longer", "3"}},
		Notes:   []string{"a note"},
	}
	out := tbl.Format()
	for _, want := range []string{"== x: demo ==", "longer", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted table missing %q:\n%s", want, out)
		}
	}
}

// cell parses a numeric table cell (strips %, x suffixes).
func cell(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(strings.TrimSuffix(s, "%"), "x")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q is not numeric: %v", s, err)
	}
	return v
}

func TestFig6aMatchesPaperDistribution(t *testing.T) {
	tbl := Fig6aPairBandwidth()
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// 8 double, 8 single, 12 none; measured 48/24/12 GB/s.
	wantPairs := []float64{8, 8, 12}
	wantBW := []float64{48, 24, 12}
	for i, row := range tbl.Rows {
		if got := cell(t, row[1]); got != wantPairs[i] {
			t.Errorf("row %d pairs = %v, want %v", i, got, wantPairs[i])
		}
		if got := cell(t, row[4]); got < wantBW[i]*0.95 || got > wantBW[i]*1.05 {
			t.Errorf("row %d bandwidth = %v, want ~%v", i, got, wantBW[i])
		}
	}
}

func TestFig13ShapeHolds(t *testing.T) {
	tbl := Fig13DataPassing()
	for _, row := range tbl.Rows {
		size := cell(t, row[1])
		infless, grt := cell(t, row[2]), cell(t, row[5])
		if !(grt < infless) {
			t.Errorf("%s @%vMiB: grouter %v not under infless+ %v", row[0], size, grt, infless)
		}
		// At ≥64 MiB, GROUTER must beat the best baseline by a wide margin.
		if size >= 64 {
			if red := cell(t, row[6]); red < 30 {
				t.Errorf("%s @%vMiB: reduction %v%%, want >= 30%%", row[0], size, red)
			}
		}
	}
}

func TestTab1OnlyGrouterHasAllCapabilities(t *testing.T) {
	tbl := Table1Capabilities()
	for _, row := range tbl.Rows {
		all := row[1] == "yes" && row[2] == "yes" && row[3] == "yes"
		if row[0] == "grouter" && !all {
			t.Errorf("grouter capabilities incomplete: %v", row)
		}
		if row[0] != "grouter" && all {
			t.Errorf("%s should not have every capability: %v", row[0], row)
		}
	}
}

func TestFig19OrderingAndTrend(t *testing.T) {
	tbl := Fig19LLMTTFT()
	var prev float64
	for i, row := range tbl.Rows {
		inf, moon, grt := cell(t, row[3]), cell(t, row[4]), cell(t, row[5])
		if !(grt < moon && moon < inf) {
			t.Errorf("row %v: ordering wrong (grouter %v mooncake %v infless %v)", row, grt, moon, inf)
		}
		// Input-length sweep (first 5 rows) must be monotone for grouter.
		if i > 0 && i < 5 && grt <= prev {
			t.Errorf("TTFT not increasing with input length at row %d", i)
		}
		prev = grt
	}
}

func TestFig20aGrouterWins(t *testing.T) {
	tbl := Fig20aNoNVLink()
	for _, row := range tbl.Rows {
		if red := cell(t, row[5]); red <= 0 {
			t.Errorf("no-NVLink reduction %v%% at %v MiB", red, row[0])
		}
	}
}

// TestWorkloadExperimentsSmoke runs the cheap workload experiments once and
// sanity-checks their structure (the expensive ones are exercised by the
// bench harness).
func TestWorkloadExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("workload experiments take seconds")
	}
	start := time.Now()
	for _, id := range []string{"fig3", "fig7a", "fig20b", "fig20c"} {
		tbl := ByID(id).Run()
		if len(tbl.Rows) == 0 {
			t.Errorf("%s: empty table", id)
		}
		if len(tbl.Notes) == 0 {
			t.Errorf("%s: missing paper-comparison notes", id)
		}
		for _, row := range tbl.Rows {
			if len(row) != len(tbl.Columns) {
				t.Errorf("%s: row width %d != %d columns", id, len(row), len(tbl.Columns))
			}
		}
	}
	t.Logf("smoke experiments in %v", time.Since(start))
}

func TestFig3PassingDominatesOnHostCentric(t *testing.T) {
	tbl := Fig3Breakdown()
	for _, row := range tbl.Rows {
		if share := cell(t, row[5]); share < 50 {
			t.Errorf("%s batch %s: passing share %v%%, want > 50%%", row[0], row[1], share)
		}
	}
}

func TestFig18OrderingAtTenPercent(t *testing.T) {
	if testing.Short() {
		t.Skip("pressure experiment takes seconds")
	}
	tbl := Fig18ElasticStorage()
	// First four rows are the 10% comparison in order infless+, lru, rq,
	// grouter; tail latency must be non-increasing down the list.
	if len(tbl.Rows) < 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	p99s := []float64{}
	for _, row := range tbl.Rows[:4] {
		p99s = append(p99s, cell(t, row[3]))
	}
	for i := 1; i < len(p99s); i++ {
		if p99s[i] > p99s[i-1]*1.02 { // small tolerance
			t.Errorf("10%% p99 not improving: %v", p99s)
		}
	}
}
