package experiments

import (
	"reflect"
	"strconv"
	"testing"
)

func TestExtPDRegistered(t *testing.T) {
	e := ByID("ext-pd")
	if e == nil {
		t.Fatal("ext-pd not registered")
	}
	if e.Run == nil {
		t.Fatal("ext-pd has no runner")
	}
}

// pdCell indexes one table row by its scenario/pattern/system key and
// returns the parsed p99 in milliseconds.
func pdCell(t *testing.T, tbl *Table, topo, pattern, system string) float64 {
	t.Helper()
	for _, row := range tbl.Rows {
		if row[0] == topo && row[1] == pattern && row[2] == system {
			v, err := strconv.ParseFloat(row[6], 64)
			if err != nil {
				t.Fatalf("bad p99 cell %q: %v", row[6], err)
			}
			return v
		}
	}
	t.Fatalf("no row for %s/%s/%s", topo, pattern, system)
	return 0
}

// TestPDTableCrossover pins the experiment's headline claim: at least one
// topology/pattern cell where disaggregation beats colocated serving on p99,
// and at least one where the KV transfer cost (and pooling loss) makes
// colocated win. The smoke size is large enough for stable percentiles.
func TestPDTableCrossover(t *testing.T) {
	tbl := PDTable(1200)
	if len(tbl.Rows) != 12 {
		t.Fatalf("rows = %d, want 12 (2 topologies x 2 patterns x 3 systems)", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[3] == "0" {
			t.Errorf("cell %s/%s/%s completed no requests", row[0], row[1], row[2])
		}
	}
	pdWins, colocWins := 0, 0
	for _, topo := range []string{"h800 x1", "quad-a10 x1"} {
		for _, pattern := range []string{"sporadic", "bursty"} {
			coloc := pdCell(t, tbl, topo, pattern, "colocated")
			pd := pdCell(t, tbl, topo, pattern, "pd")
			t.Logf("%s/%s: colocated p99 %.2fms, pd p99 %.2fms", topo, pattern, coloc, pd)
			if pd < coloc {
				pdWins++
			}
			if coloc < pd {
				colocWins++
			}
		}
	}
	if pdWins == 0 {
		t.Error("no cell where PD beats colocated on p99")
	}
	if colocWins == 0 {
		t.Error("no cell where colocated beats PD on p99")
	}
}

// TestPDTableDisaggregationActive guards against a policy regression that
// would silently route everything colocated (the comparison would then be
// vacuous): PD rows must disaggregate and ship KV on the cheap-handoff
// topology.
func TestPDTableDisaggregationActive(t *testing.T) {
	tbl := PDTable(400)
	for _, row := range tbl.Rows {
		if row[2] == "colocated" {
			if row[8] != "0" {
				t.Errorf("%s/%s colocated row disaggregated %s requests", row[0], row[1], row[8])
			}
			continue
		}
		if row[0] == "h800 x1" && (row[8] == "0" || row[10] == "0") {
			t.Errorf("%s/%s/%s: disagg=%s kv-xfer=%s, want both nonzero",
				row[0], row[1], row[2], row[8], row[10])
		}
	}
}

// TestPDTableDeterminism: the whole comparison is byte-identical across
// runs — virtual time only, fixed seeds.
func TestPDTableDeterminism(t *testing.T) {
	a := PDTable(400)
	b := PDTable(400)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("PDTable not deterministic across runs")
	}
}
