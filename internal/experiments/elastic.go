package experiments

import (
	"fmt"
	"time"

	"grouter/internal/autoscale"
	"grouter/internal/cluster"
	"grouter/internal/scheduler"
	"grouter/internal/sim"
	"grouter/internal/topology"
	"grouter/internal/trace"
	"grouter/internal/workflow"
)

// ExtElastic runs the elastic-pool replay at its smoke size (10k requests);
// the CLI's -elastic flag runs ElasticTable at -scale-requests.
func ExtElastic() *Table { return ElasticTable(10_000) }

// elasticStrategy is one fleet-sizing policy of the ext-elastic comparison.
type elasticStrategy struct {
	name string
	cfg  cluster.ElasticConfig
}

// elasticStrategies returns the compared policies: a peak-provisioned fixed
// fleet (Min = Max = 4, the capacity the reactive policy may grow into) and
// three elastic policies that pay for capacity only while load demands it.
func elasticStrategies() []elasticStrategy {
	const (
		maxReplicas = 4
		interval    = 100 * time.Millisecond
		inCooldown  = 500 * time.Millisecond
	)
	return []elasticStrategy{
		{"fixed", cluster.ElasticConfig{
			Scaler: autoscale.Fixed{Replicas: maxReplicas},
			Min:    maxReplicas, Max: maxReplicas, Interval: interval,
			Prewarm: true,
		}},
		{"reactive", cluster.ElasticConfig{
			Scaler: autoscale.Reactive{ScaleOutDepth: 2, ScaleIn: true},
			Min:    1, Max: maxReplicas, Interval: interval,
			ScaleInCooldown: inCooldown, Prewarm: true,
		}},
		{"target-util", cluster.ElasticConfig{
			Scaler: autoscale.TargetUtilization{PerInstance: 1.5},
			Min:    1, Max: maxReplicas, Interval: interval,
			ScaleInCooldown: inCooldown, Prewarm: true,
		}},
		{"predictive", cluster.ElasticConfig{
			Scaler: autoscale.Predictive{PerInstance: 1.5, Lead: 2},
			Min:    1, Max: maxReplicas, Interval: interval,
			ScaleInCooldown: inCooldown, Prewarm: true,
		}},
	}
}

// elasticResult is one strategy's replay outcome.
type elasticResult struct {
	st         cluster.ReplayStats
	es         cluster.ElasticStats
	gpuSeconds float64
	coldStarts int64
}

// elasticReplay replays one generated trace through the driving workflow on
// a 2-node DGX-V100 cluster under one elastic configuration. Cold starts are
// on (200 ms container latency, pre-warmed base instances) and scale-out
// provisions in the background, so elasticity pays realistic provisioning
// latency. A one-second settling window before the replay lets each strategy
// reach its declared floor — the fixed fleet is fully provisioned when the
// first request arrives, exactly the peak-provisioned baseline it models.
func elasticReplay(pattern trace.Pattern, requests int, cfg cluster.ElasticConfig) elasticResult {
	arrivals := trace.Generate(trace.Spec{
		Pattern:  pattern,
		Duration: time.Duration(float64(requests) / 500 * float64(time.Second)),
		MeanRPS:  500,
		Seed:     42,
	})
	e := sim.NewEngine()
	defer e.Close()
	c := cluster.New(e, topology.DGXV100(), 2, systems(42)[3].mk)
	app := c.Deploy(workflow.Driving(), 1, scheduler.Options{Node: 0, SplitAcrossNodes: true})
	app.SetColdStart(cluster.ColdStartPolicy{
		Enabled:          true,
		ContainerLatency: 200 * time.Millisecond,
		KeepAlive:        30 * time.Second,
		Prewarm:          true,
	})
	ep := app.EnableElastic(cfg)
	e.Run(time.Second)
	st := app.ReplayTrace(arrivals, cluster.ReplayOptions{Quantum: ScaleQuantum})
	return elasticResult{
		st:         st,
		es:         ep.Stats,
		gpuSeconds: ep.GPUSeconds(),
		coldStarts: app.ColdStarts(),
	}
}

// ElasticTable compares fleet-sizing strategies on the same replayed traces:
// per pattern, the identical arrival trace under a peak-provisioned fixed
// fleet and the three autoscalers, reporting the GPU-seconds each fleet
// consumed against the latency it delivered. Everything is measured in
// virtual time, so the table is byte-identical across runs of the same
// build.
func ElasticTable(requests int) *Table {
	t := &Table{
		ID:    "ext-elastic",
		Title: "Elastic pools (extension): GPU-seconds vs p99 per autoscale strategy, driving workflow",
		Columns: []string{"pattern", "strategy", "requests", "gpu-sec",
			"tput(req/s)", "p50(ms)", "p99(ms)", "scale-out", "scale-in", "cold"},
	}
	for _, p := range []trace.Pattern{trace.Sporadic, trace.Periodic, trace.Bursty} {
		for _, s := range elasticStrategies() {
			r := elasticReplay(p, requests, s.cfg)
			t.Rows = append(t.Rows, []string{
				p.String(), s.name, fmt.Sprint(r.st.Requests),
				fmt.Sprintf("%.1f", r.gpuSeconds),
				fmt.Sprintf("%.1f", r.st.Throughput), ms(r.st.P50), ms(r.st.P99),
				fmt.Sprint(r.es.ScaleOuts), fmt.Sprint(r.es.ScaleIns),
				fmt.Sprint(r.coldStarts),
			})
		}
	}
	t.Notes = append(t.Notes,
		"extension (not a paper figure): pluggable autoscalers over per-stage instance pools",
		"fixed = peak-provisioned fleet (4 replicas per GPU stage); elastic strategies bound [1, 4]",
		"cold starts on (200 ms container latency), scale-out pre-warms in the background",
		fmt.Sprintf("same traces for every strategy (seed 42, 500 req/s mean, %v admission windows)", ScaleQuantum))
	return t
}
