package experiments

import (
	"fmt"
	"time"

	"grouter/internal/cluster"
	"grouter/internal/faults"
	"grouter/internal/metrics"
	"grouter/internal/scheduler"
	"grouter/internal/sim"
	"grouter/internal/topology"
	"grouter/internal/trace"
	"grouter/internal/workflow"
)

// ExtColdStart quantifies what the pre-warming of §5 buys: the same
// sporadic workload with pre-warmed instances, cold starts with keep-alive,
// and cold starts without keep-alive reuse.
func ExtColdStart() *Table {
	t := &Table{
		ID:      "ext-coldstart",
		Title:   "Function pre-warming (extension): driving under a sporadic trace",
		Columns: []string{"policy", "cold starts", "p50(ms)", "p99(ms)"},
	}
	grouter := systems(29)[3]
	arrivals := trace.Generate(trace.Spec{
		Pattern: trace.Sporadic, Duration: 60 * time.Second, MeanRPS: 0.5, Seed: 29,
	})
	runPolicy := func(name string, pol cluster.ColdStartPolicy) {
		e := sim.NewEngine()
		c := cluster.New(e, topology.DGXV100(), 1, grouter.mk)
		app := c.Deploy(workflow.Driving(), 0, scheduler.Options{Node: 0})
		app.SetColdStart(pol)
		app.RunTrace(arrivals)
		e.Close()
		t.Rows = append(t.Rows, []string{name, fmt.Sprint(app.ColdStarts()),
			ms(app.E2E.P(0.5)), ms(app.E2E.P(0.99))})
	}
	runPolicy("pre-warmed (paper §5)", cluster.ColdStartPolicy{
		Enabled: true, ContainerLatency: 800 * time.Millisecond,
		KeepAlive: time.Minute, Prewarm: true,
	})
	runPolicy("cold + 30s keep-alive", cluster.ColdStartPolicy{
		Enabled: true, ContainerLatency: 800 * time.Millisecond,
		KeepAlive: 30 * time.Second,
	})
	runPolicy("cold + 1s keep-alive", cluster.ColdStartPolicy{
		Enabled: true, ContainerLatency: 800 * time.Millisecond,
		KeepAlive: time.Second,
	})
	t.Notes = append(t.Notes,
		"extension (not a paper figure): supports §5's choice to pre-warm functions and models",
		"container launch 800ms + model weights over PCIe per cold start")
	return t
}

// ExtSpatialSharing tests the §7 discussion claim: under MPS-style spatial
// GPU sharing, bandwidth/memory contention rises, making GROUTER's
// optimizations more — not less — valuable.
func ExtSpatialSharing() *Table {
	t := &Table{
		ID:      "ext-spatial",
		Title:   "Spatial GPU sharing (extension): traffic throughput, DGX-V100",
		Columns: []string{"gpu slots", "system", "throughput(req/s)", "grouter advantage"},
	}
	for _, slots := range []int{1, 2} {
		var grt, best float64
		rows := [][]string{}
		for _, sys := range []planeMaker{systems(31)[1], systems(31)[3]} { // nvshmem+, grouter
			e := sim.NewEngine()
			c := cluster.NewSpatial(e, topology.DGXV100(), 1, slots, sys.mk)
			app := c.Deploy(workflow.Traffic(), 0, scheduler.Options{Node: 0})
			tput := app.MeasureThroughput(24, 8*time.Second)
			e.Close()
			rows = append(rows, []string{fmt.Sprint(slots), sys.name, fmt.Sprintf("%.1f", tput), ""})
			if sys.name == "grouter" {
				grt = tput
			} else {
				best = tput
			}
		}
		adv := ratio(grt / best)
		for i := range rows {
			rows[i][3] = adv
		}
		t.Rows = append(t.Rows, rows...)
	}
	t.Notes = append(t.Notes,
		"extension (not a paper figure): §7 argues spatial sharing increases contention,",
		"so the GPU-centric data plane's advantage should hold or grow with more slots")
	return t
}

// ExtFaults measures graceful degradation under link faults: the traffic
// workflow on GROUTER, fault-free versus with the whole NVLink mesh flapping
// at a 10% duty cycle (down 15ms every 150ms). Transfers planned during an
// outage route around dead edges or degrade to PCIe; transfers caught
// mid-flight are killed by netsim, retried with backoff, and re-planned —
// so requests complete slower, not never.
func ExtFaults() *Table {
	t := &Table{
		ID:      "ext-faults",
		Title:   "Fault injection (extension): traffic under a 10% NVLink flap, DGX-V100",
		Columns: []string{"scenario", "p50(ms)", "p99(ms)", "retries", "replans", "degraded(MiB)", "slo met"},
	}
	grouter := systems(37)[3]
	arrivals := trace.Generate(trace.Spec{
		Pattern: trace.Sporadic, Duration: 30 * time.Second, MeanRPS: 8, Seed: 37,
	})
	run := func(name string, inject func(*faults.Injector, *cluster.Cluster)) {
		metrics.Faults().Reset()
		e := sim.NewEngine()
		c := cluster.New(e, topology.DGXV100(), 1, grouter.mk)
		app := c.Deploy(workflow.Traffic(), 0, scheduler.Options{Node: 0})
		if inject != nil {
			inject(faults.NewInjector(e, c.Fabric.Net), c)
		}
		app.RunTrace(arrivals)
		e.Close()
		fs := metrics.Faults()
		t.Rows = append(t.Rows, []string{name, ms(app.E2E.P(0.5)), ms(app.E2E.P(0.99)),
			fmt.Sprint(fs.Retries.Load()), fmt.Sprint(fs.Replans.Load()),
			mib(fs.DegradedBytes.Load()), pct(app.SLOCompliance())})
	}
	run("fault-free", nil)
	run("10% NVLink flap", func(in *faults.Injector, c *cluster.Cluster) {
		topo := c.Fabric.Topo(0)
		for i := 0; i < topo.Spec.NumGPUs; i++ {
			for j := 0; j < topo.Spec.NumGPUs; j++ {
				if topo.Spec.NVLinkBps(i, j) > 0 {
					in.FlapLink(topo.NVLinkTo(i, j),
						75*time.Millisecond, 15*time.Millisecond, 150*time.Millisecond, 30*time.Second)
				}
			}
		}
	})
	t.Notes = append(t.Notes,
		"extension (not a paper figure): transfers caught by an outage retry over PCIe",
		"degraded(MiB) counts bytes a transfer delivered on a retry attempt after its first plan failed")
	return t
}
