package experiments

import (
	"fmt"
	"time"

	"grouter/internal/cluster"
	"grouter/internal/obs"
	"grouter/internal/scheduler"
	"grouter/internal/sim"
	"grouter/internal/topology"
	"grouter/internal/trace"
	"grouter/internal/workflow"
)

// ScaleQuantum is the admission window ReplayTrace batches arrivals into for
// the scale replays: at the 500 req/s trace mean it folds a handful of
// arrivals into each window, which is enough to amortize per-request control
// work without distorting the arrival process at the latency scales measured.
const ScaleQuantum = 10 * time.Millisecond

// ExtScale runs the scale replay at its smoke size (10k requests); the CLI's
// -scale flag runs ScaleTable at full size.
func ExtScale() *Table { return ScaleTable(10_000) }

// ScaleTable replays generated traces through the driving workflow on a
// 2-node cluster and reports throughput, latency percentiles, and the
// aggregate critical-path shares per (pattern × system × scale) cell. Each
// pattern runs infless+ and grouter at requests/10 and grouter again at the
// full request count; a final bursty row moves grouter to H800 hardware.
// Everything is measured in virtual time, so the table is byte-identical
// across runs of the same build.
func ScaleTable(requests int) *Table {
	t := &Table{
		ID:    "ext-scale",
		Title: "Trace replay at scale (extension): driving workflow, batched admission",
		Columns: []string{"pattern", "system", "topology", "requests",
			"tput(req/s)", "p50(ms)", "p99(ms)", "queue", "xfer", "compute"},
	}
	small := requests / 10
	if small < 1 {
		small = 1
	}
	sys := systems(42)
	infless, grouter := sys[0], sys[3]
	type run struct {
		pattern trace.Pattern
		sys     planeMaker
		spec    *topology.Spec
		topo    string
		n       int
	}
	var runs []run
	for _, p := range []trace.Pattern{trace.Sporadic, trace.Periodic, trace.Bursty} {
		runs = append(runs,
			run{p, infless, topology.DGXV100(), "dgx-v100 x2", small},
			run{p, grouter, topology.DGXV100(), "dgx-v100 x2", small},
			run{p, grouter, topology.DGXV100(), "dgx-v100 x2", requests},
		)
	}
	runs = append(runs, run{trace.Bursty, grouter, topology.H800x8(), "h800 x2", requests})
	for _, r := range runs {
		arrivals := trace.Generate(trace.Spec{
			Pattern:  r.pattern,
			Duration: time.Duration(float64(r.n) / 500 * float64(time.Second)),
			MeanRPS:  500,
			Seed:     42,
		})
		e := sim.NewEngine()
		c := cluster.New(e, r.spec, 2, r.sys.mk)
		app := c.Deploy(workflow.Driving(), 1, scheduler.Options{Node: 0, SplitAcrossNodes: true})
		app.EnableAutoscale(cluster.DefaultAutoscale())
		bd := app.EnableBreakdown()
		st := app.ReplayTrace(arrivals, cluster.ReplayOptions{Quantum: ScaleQuantum})
		e.Close()
		queue, xfer, compute := breakdownShares(bd)
		t.Rows = append(t.Rows, []string{
			r.pattern.String(), r.sys.name, r.topo, fmt.Sprint(st.Requests),
			fmt.Sprintf("%.1f", st.Throughput), ms(st.P50), ms(st.P99),
			pct(queue), pct(xfer), pct(compute),
		})
	}
	t.Notes = append(t.Notes,
		"extension (not a paper figure): the replay scale experiment behind BenchmarkScaleReplay",
		fmt.Sprintf("arrivals admitted in %v windows (ReplayTrace batched admission); autoscaler on", ScaleQuantum),
		"queue/xfer/compute are critical-path shares aggregated over all completed requests")
	return t
}

// breakdownShares aggregates a Breakdown into critical-path time shares:
// queueing, data passing (setup + transfer + retry + migration), and compute.
func breakdownShares(b *cluster.Breakdown) (queue, xfer, compute float64) {
	var tot [obs.NumBuckets]time.Duration
	var sum time.Duration
	for i := range b.Requests {
		for c, d := range b.Requests[i].Buckets {
			tot[c] += d
			sum += d
		}
	}
	if sum <= 0 {
		return 0, 0, 0
	}
	x := tot[obs.CatSetup] + tot[obs.CatTransfer] + tot[obs.CatRetry] + tot[obs.CatMigrate]
	s := sum.Seconds()
	return tot[obs.CatQueue].Seconds() / s, x.Seconds() / s, tot[obs.CatCompute].Seconds() / s
}
