package experiments

import (
	"fmt"
	"time"

	"grouter/internal/scheduler"
	"grouter/internal/topology"
	"grouter/internal/workflow"
)

// Fig20bCPUOverhead reproduces Fig. 20(b): control-plane CPU consumption of
// each data plane under the same workload.
func Fig20bCPUOverhead() *Table {
	t := &Table{
		ID:      "fig20b",
		Title:   "Control-plane overhead (traffic, bursty, 15s)",
		Columns: []string{"system", "requests", "control ops", "ops/request", "cpu (ms total)", "core share"},
	}
	dur := 15 * time.Second
	for _, sys := range systems(19) {
		app := runWorkload(sys, topology.DGXV100(), 1, workflow.Traffic(), 0,
			scheduler.Options{Node: 0}, burstyTrace(8, dur, 19))
		st := appPlaneStats(app)
		perReq := "-"
		if app.Completed > 0 {
			perReq = fmt.Sprintf("%.1f", float64(st.ControlOps)/float64(app.Completed))
		}
		t.Rows = append(t.Rows, []string{
			sys.name,
			fmt.Sprint(app.Completed),
			fmt.Sprint(st.ControlOps),
			perReq,
			ms(st.ControlCPU),
			pct(st.ControlCPU.Seconds() / dur.Seconds()),
		})
	}
	t.Notes = append(t.Notes,
		"paper: GROUTER's monitoring and lookups add negligible CPU vs INFless+ (periodic / event-driven)")
	return t
}

// Table1Capabilities reproduces Table 1: the capability matrix, with each
// capability verified by a micro-measurement instead of asserted.
func Table1Capabilities() *Table {
	t := &Table{
		ID:      "tab1",
		Title:   "GPU-side storage capabilities (✓ measured, ✗ absent)",
		Columns: []string{"system", "data locality", "bandwidth harvesting", "elastic temp storage"},
	}
	// Data locality: a colocated same-GPU exchange should make zero copies.
	// Bandwidth harvesting: host→GPU at 512 MiB should beat the single
	// 12 GB/s PCIe link (~42 ms) clearly.
	// Elastic storage is exercised by Fig. 18/20(c); here we report design
	// capability per system as measured by those experiments' machinery.
	loc := fabric0(0, 4)
	hostLoc := fabricHost(0)
	check := func(cond bool) string {
		if cond {
			return "yes"
		}
		return "no"
	}
	singlePCIe := time.Duration(float64(512<<20) / topology.GBps(12) * float64(time.Second))
	for _, sys := range systems(23) {
		lat := passOnce(sys, topology.DGXV100(), 1, loc, loc, 64<<20, 3)
		locality := lat < 5*time.Millisecond // zero-copy is µs; any copy of 64 MiB is ≥ ~1.3 ms over NVLink + PCIe legs
		hostLat := passOnce(sys, topology.DGXV100(), 1, hostLoc, loc, 512<<20, 2)
		harvesting := hostLat < singlePCIe*8/10
		elastic := sys.name == "grouter"
		t.Rows = append(t.Rows, []string{sys.name, check(locality), check(harvesting), check(elastic)})
	}
	t.Notes = append(t.Notes,
		"paper Table 1: NCCL/UCX/NVSHMEM/DeepPlan lack all three; GROUTER provides all",
		"NVSHMEM+ stands in for the NCCL/UCX/NVSHMEM row (same storage design)")
	return t
}
