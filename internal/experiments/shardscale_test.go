package experiments

import "testing"

// TestShardedScaleTableShardInvariant asserts the sharded scale table's core
// contract: the formatted table is byte-identical for every shard count —
// sharding changes wall-clock only, never results.
func TestShardedScaleTableShardInvariant(t *testing.T) {
	requests := 2_000
	if testing.Short() {
		requests = 500
	}
	want := ShardedScaleTable(requests, 1).Format()
	for _, shards := range []int{2, 4, 8} {
		if got := ShardedScaleTable(requests, shards).Format(); got != want {
			t.Errorf("%d-shard table diverged from single-shard table:\n got:\n%s\nwant:\n%s", shards, got, want)
		}
	}
}

func TestExtScaleShardSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full smoke table is slow under -short")
	}
	tb := ExtScaleShard()
	if tb.ID != "ext-scale-shard" {
		t.Fatalf("table id %q", tb.ID)
	}
	if len(tb.Rows) != 6 {
		t.Fatalf("rows %d, want 6 (3 patterns x 2 scales)", len(tb.Rows))
	}
	if tb.Format() == "" {
		t.Fatal("empty table")
	}
}
