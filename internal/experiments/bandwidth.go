package experiments

import (
	"time"

	"grouter/internal/cluster"
	"grouter/internal/core"
	"grouter/internal/dataplane"
	"grouter/internal/fabric"
	"grouter/internal/scheduler"
	"grouter/internal/sim"
	"grouter/internal/topology"
	"grouter/internal/workflow"
)

// runPair deploys two apps on one shared cluster node and drives both with
// bursty traces concurrently, returning the two apps.
func runPair(mk planeMaker, wfA, wfB *workflow.Workflow, rpsA, rpsB float64, dur time.Duration) (*cluster.App, *cluster.App) {
	e := sim.NewEngine()
	defer e.Close()
	c := cluster.New(e, topology.DGXV100(), 1, mk.mk)
	appA := c.Deploy(wfA, 0, scheduler.Options{Node: 0})
	appB := c.Deploy(wfB, 0, scheduler.Options{Node: 0})
	for _, at := range burstyTrace(rpsA, dur, 71) {
		at := at
		e.Schedule(at, func() { appA.Submit(cluster.Request{}) })
	}
	for _, at := range burstyTrace(rpsB, dur, 72) {
		at := at
		e.Schedule(at, func() { appB.Submit(cluster.Request{}) })
	}
	e.Run(0)
	return appA, appB
}

// Fig5bInterference reproduces Fig. 5(b): parallel-PCIe transfers without
// bandwidth partitioning (NVSHMEM+ with DeepPlan-style loading) suffer heavy
// interference when a latency-critical workflow is colocated with a
// transfer-intensive one.
func Fig5bInterference() *Table {
	dp := systems(13)[2] // deepplan+
	dur := 12 * time.Second
	t := &Table{
		ID:      "fig5b",
		Title:   "gFn-host latency (ms) with DeepPlan-style parallel PCIe, alone vs colocated",
		Columns: []string{"workload", "alone", "together", "slowdown"},
	}
	aloneD := runWorkload(dp, topology.DGXV100(), 1, workflow.Driving(), 0,
		scheduler.Options{Node: 0}, burstyTrace(6, dur, 71))
	aloneV := runWorkload(dp, topology.DGXV100(), 1, workflow.Video(), 0,
		scheduler.Options{Node: 0}, burstyTrace(24, dur, 72))
	togetherD, togetherV := runPair(dp, workflow.Driving(), workflow.Video(), 6, 24, dur)
	rowFor := func(name string, alone, together *cluster.App) {
		a := alone.XferHost.Mean()
		b := together.XferHost.Mean()
		t.Rows = append(t.Rows, []string{name, ms(a), ms(b), ratio(b.Seconds() / a.Seconds())})
	}
	rowFor("driving", aloneD, togetherD)
	rowFor("video", aloneV, togetherV)
	t.Notes = append(t.Notes,
		"paper: colocating the I/O-intensive video workflow inflates driving's gFn-host latency 3.65x")
	return t
}

// Fig17Partitioning reproduces Fig. 17: SLO-aware bandwidth partitioning
// protects a latency-critical workflow from a transfer-intensive neighbour
// (high contention) while adding no overhead when contention is low.
func Fig17Partitioning() *Table {
	dur := 12 * time.Second
	t := &Table{
		ID:      "fig17",
		Title:   "Bandwidth partitioning: driving latency and SLO compliance",
		Columns: []string{"pair", "system", "driving-p99", "gfn-host(ms)", "slo-compliance"},
	}
	full := planeMaker{"grouter", func(f *fabric.Fabric) dataplane.Plane {
		return core.New(f, core.FullConfig())
	}}
	noPart := planeMaker{"grouter-BH", func(f *fabric.Fabric) dataplane.Plane {
		cfg := core.FullConfig()
		cfg.NoRateControl = true
		return core.New(f, cfg)
	}}
	for _, pair := range []struct {
		label string
		other *workflow.Workflow
		rps   float64
	}{
		{"driving+video (high contention)", workflow.Video(), 24},
		{"driving+image (low contention)", workflow.Image(), 6},
	} {
		for _, sys := range []planeMaker{full, noPart} {
			drv, _ := runPair(sys, workflow.Driving(), pair.other, 6, pair.rps, dur)
			t.Rows = append(t.Rows, []string{
				pair.label, sys.name, ms(drv.E2E.P(0.99)), ms(drv.XferHost.Mean()), pct(drv.SLOCompliance()),
			})
		}
	}
	t.Notes = append(t.Notes,
		"paper: partitioning cuts driving latency 32% under high contention and is free under low contention",
		"SLO = 1.5x standalone execution, as in GPUlet")
	return t
}
