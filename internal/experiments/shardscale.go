package experiments

import (
	"fmt"
	"time"

	"grouter/internal/cluster"
	"grouter/internal/scheduler"
	"grouter/internal/sim"
	"grouter/internal/topology"
	"grouter/internal/trace"
	"grouter/internal/workflow"
)

// ExtScaleShard runs the sharded scale-out replay at its smoke size (10k
// requests, 2 shards); the CLI's -scale -scale-shards flags run
// ShardedScaleTable at full size and any shard count.
func ExtScaleShard() *Table { return ShardedScaleTable(10_000, 2) }

// ShardedScaleTable replays generated traces over the scale-out fleet — 8
// independent grouter pods (2-node DGX-V100 each, driving workflow,
// autoscaler on) behind a round-robin front door — via the sharded parallel
// engine, and reports fleet-level throughput and latency percentiles plus
// the per-pod load spread per (pattern × scale) cell.
//
// The shard count is a pure execution knob: every value in the table derives
// from virtual time, so the table is byte-identical whatever `shards` is and
// whether the shards ran in parallel or sequentially —
// TestShardedScaleTableShardInvariant asserts exactly that. Wall-clock
// observations (per-shard utilization, speedup) intentionally never appear
// here; the CLI prints them separately under -shard-stats.
func ShardedScaleTable(requests, shards int) *Table {
	t := &Table{
		ID:    "ext-scale-shard",
		Title: "Trace replay on the scale-out fleet (extension): 8 grouter pods, sharded engine",
		Columns: []string{"pattern", "system", "topology", "pods", "requests",
			"tput(req/s)", "p50(ms)", "p99(ms)", "pod-p99 min(ms)", "pod-p99 max(ms)"},
	}
	small := requests / 10
	if small < 1 {
		small = 1
	}
	for _, pattern := range []trace.Pattern{trace.Sporadic, trace.Periodic, trace.Bursty} {
		for _, n := range []int{small, requests} {
			st := cluster.ShardedReplay(scaleArrivals(pattern, n), cluster.ShardedOptions{
				Shards:  shards,
				Quantum: ScaleQuantum,
			}, scalePod)
			lo, hi := st.PerPod[0].P99, st.PerPod[0].P99
			for _, p := range st.PerPod[1:] {
				if p.P99 < lo {
					lo = p.P99
				}
				if p.P99 > hi {
					hi = p.P99
				}
			}
			t.Rows = append(t.Rows, []string{
				pattern.String(), "grouter", "dgx-v100 x2", fmt.Sprint(st.Pods),
				fmt.Sprint(st.Requests), fmt.Sprintf("%.1f", st.Throughput),
				ms(st.P50), ms(st.P99), ms(lo), ms(hi),
			})
		}
	}
	t.Notes = append(t.Notes,
		"extension (not a paper figure): the fleet replay behind BenchmarkScaleReplaySharded",
		"front door routes request i to pod i mod 8; arrivals admitted in "+ScaleQuantum.String()+" windows with 10ms route latency",
		"values derive from virtual time only: the table is identical for any shard count and for parallel vs sequential execution")
	return t
}

// scalePod builds one pod of the scale-out fleet: the same 2-node DGX-V100
// grouter deployment the single-cluster ScaleTable replays.
func scalePod(pod int, e *sim.Engine) *cluster.App {
	c := cluster.New(e, topology.DGXV100(), 2, systems(42)[3].mk)
	app := c.Deploy(workflow.Driving(), 1, scheduler.Options{Node: 0, SplitAcrossNodes: true})
	app.EnableAutoscale(cluster.DefaultAutoscale())
	return app
}

func scaleArrivals(pattern trace.Pattern, requests int) []time.Duration {
	return trace.Generate(trace.Spec{
		Pattern:  pattern,
		Duration: time.Duration(float64(requests) / 500 * float64(time.Second)),
		MeanRPS:  500,
		Seed:     42,
	})
}

// ShardedScaleRun replays the canonical full-size bursty cell once at the
// given shard count and returns the complete stats — including the
// wall-clock per-shard utilization deliberately kept out of the
// deterministic table. The CLI's -shard-stats mode prints it.
func ShardedScaleRun(requests, shards int) cluster.ShardedStats {
	return cluster.ShardedReplay(scaleArrivals(trace.Bursty, requests), cluster.ShardedOptions{
		Shards:  shards,
		Quantum: ScaleQuantum,
	}, scalePod)
}
