package dataplane

import "errors"

// Sentinel errors returned by data-plane operations. They are re-exported
// through the grouter façade so callers can match with errors.Is instead of
// parsing internal error strings. (Transfer-level sentinels such as the
// deadline error live in internal/xfer and are likewise re-exported.)
var (
	// ErrNotFound is returned by Get for a DataRef that was never stored or
	// has already been freed.
	ErrNotFound = errors.New("dataplane: data not found")
	// ErrEvicted is returned when an object could not be held anywhere: the
	// eviction/spill path needed host memory and host memory was exhausted.
	ErrEvicted = errors.New("dataplane: eviction failed, host memory exhausted")
	// ErrGPUDown is returned by Get when the object's bytes were destroyed by
	// a GPU crash and re-materialization from the durable origin failed.
	ErrGPUDown = errors.New("dataplane: gpu down, object unrecoverable")
)
