// Package dataplane defines the interface every serverless data plane in
// this repository implements — GROUTER and the three baselines (INFless+,
// NVSHMEM+, DeepPlan+) — plus the per-plane statistics the experiments
// report. Experiments are written against Plane, so systems swap with one
// line.
package dataplane

import (
	"time"

	"grouter/internal/fabric"
	"grouter/internal/sim"
)

// DataID is a globally unique identifier for one intermediate-data object
// (§4.2.1: returned by Put, passed to downstream functions).
type DataID uint64

// DataRef names a stored object and its size.
type DataRef struct {
	ID    DataID
	Bytes int64
}

// FnCtx describes the invoking function instance to the data plane. GROUTER
// exploits every field; baselines ignore the ones their designs cannot see
// (most importantly Loc for placement-agnostic GPU stores).
type FnCtx struct {
	// Fn and Workflow identify the function for per-function statistics and
	// storage pre-warming.
	Fn       string
	Workflow string
	// Loc is the physical location of the function instance (GPU for gFns,
	// host for cFns).
	Loc fabric.Location
	// SLO is the function's latency objective and InferLatency its expected
	// compute time; together they define the minimum transfer rate
	// Rate_least = bytes/(SLO − InferLatency) of §4.3.2.
	SLO          time.Duration
	InferLatency time.Duration
	// ConsumerSeq orders the downstream invocation that will consume this
	// function's output in the global request queue; the queue-aware
	// eviction policy of §4.4.2 uses it.
	ConsumerSeq int64
}

// RateFloor computes Rate_least in bytes/s for moving the given payload
// within the context's SLO budget, or 0 when no SLO is set.
func (c *FnCtx) RateFloor(bytes int64) float64 {
	if c == nil || c.SLO <= 0 {
		return 0
	}
	budget := c.SLO - c.InferLatency
	if budget <= 0 {
		// SLO already consumed by compute; ask for the whole link.
		budget = time.Millisecond
	}
	return float64(bytes) / budget.Seconds()
}

// Plane is a serverless data plane: Put stores a function's output, Get
// makes a stored object available at the caller's location, Free drops it.
// All methods run in simulated time from a sim process.
type Plane interface {
	Name() string
	Put(p *sim.Proc, ctx *FnCtx, bytes int64) (DataRef, error)
	Get(p *sim.Proc, ctx *FnCtx, ref DataRef) error
	Free(ref DataRef)
	Stats() *Stats
}

// Stats aggregates a plane's activity for the overhead experiments
// (Fig. 20b/20c) and copy-count assertions.
type Stats struct {
	Puts int64
	Gets int64
	// Copies counts device-level data movements (the redundant-copy metric
	// of §3.1: the optimum for a gFn-gFn exchange is 1).
	Copies int64
	// BytesMoved totals payload bytes crossing any link.
	BytesMoved int64
	// ControlOps counts control-plane actions (lookups, placement queries,
	// monitor updates) for the CPU-overhead comparison.
	ControlOps int64
	// ControlCPU accumulates estimated control-plane CPU time.
	ControlCPU time.Duration

	// Coalesce counts fan-out-aware transfer coalescing activity; all zero
	// unless the plane runs with coalescing enabled.
	Coalesce CoalesceStats
}

// CoalesceStats breaks down how coalesced Gets were served. OriginBytes vs
// ReplicaBytes is the fan-out experiment's headline metric: every byte in
// ReplicaBytes is a byte the producer GPU's own links did not have to carry.
type CoalesceStats struct {
	// Joined counts Gets that attached to an in-flight transfer of the same
	// object to the same destination (true dedup: zero extra bytes moved).
	Joined int64
	// Chained counts Gets sourced from a destination whose copy was still in
	// flight when the source was chosen (the multicast-chain hop).
	Chained int64
	// ReplicaHits counts Gets served from a registered replica that was
	// already resident when the Get arrived.
	ReplicaHits int64
	// LocalHits counts Gets that found a replica already resident on the
	// requesting GPU (zero-copy map, like hitting the primary locally).
	LocalHits int64
	// OriginGets counts Gets that pulled from the object's primary location.
	OriginGets int64
	// OriginBytes / ReplicaBytes split transferred payload bytes by whether
	// the source was the primary copy or a replica/chained copy.
	OriginBytes  int64
	ReplicaBytes int64
}

// AddControl records n control operations at the given per-op CPU cost.
func (s *Stats) AddControl(n int64, perOp time.Duration) {
	s.ControlOps += n
	s.ControlCPU += time.Duration(n) * perOp
}
