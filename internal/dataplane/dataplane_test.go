package dataplane

import (
	"testing"
	"time"
)

func TestRateFloor(t *testing.T) {
	ctx := &FnCtx{SLO: 100 * time.Millisecond, InferLatency: 60 * time.Millisecond}
	got := ctx.RateFloor(40 << 20)
	want := float64(40<<20) / 0.04
	if got < want*0.99 || got > want*1.01 {
		t.Errorf("RateFloor = %f, want %f", got, want)
	}
}

func TestRateFloorNoSLO(t *testing.T) {
	if (&FnCtx{}).RateFloor(100) != 0 {
		t.Error("no SLO should mean no floor")
	}
	var nilCtx *FnCtx
	if nilCtx.RateFloor(100) != 0 {
		t.Error("nil ctx should mean no floor")
	}
}

func TestRateFloorExhaustedBudget(t *testing.T) {
	ctx := &FnCtx{SLO: 10 * time.Millisecond, InferLatency: 20 * time.Millisecond}
	got := ctx.RateFloor(1 << 20)
	// Budget clamps to 1ms: ask for the payload within a millisecond.
	want := float64(1<<20) / 0.001
	if got < want*0.99 || got > want*1.01 {
		t.Errorf("RateFloor with exhausted budget = %f, want %f", got, want)
	}
}

func TestStatsAddControl(t *testing.T) {
	var s Stats
	s.AddControl(3, 10*time.Microsecond)
	s.AddControl(1, 5*time.Microsecond)
	if s.ControlOps != 4 {
		t.Errorf("ops = %d", s.ControlOps)
	}
	if s.ControlCPU != 35*time.Microsecond {
		t.Errorf("cpu = %v", s.ControlCPU)
	}
}
