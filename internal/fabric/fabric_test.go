package fabric

import (
	"testing"

	"grouter/internal/sim"
	"grouter/internal/topology"
)

func TestNewFabricWiring(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	f := New(e, topology.DGXV100(), 2)
	if f.NumNodes() != 2 {
		t.Fatalf("nodes = %d", f.NumNodes())
	}
	if len(f.NodeF(0).GPUs) != 8 {
		t.Fatalf("gpus = %d", len(f.NodeF(0).GPUs))
	}
	// Every topology link must be registered in the network.
	for _, l := range f.Cluster.Links() {
		if !f.Net.HasLink(l.ID) {
			t.Errorf("link %s missing from netsim", l.ID)
		}
	}
	// Memory devices sized per spec.
	if got := f.NodeF(1).GPUs[3].Capacity; got != 16*topology.GB {
		t.Errorf("gpu capacity = %d", got)
	}
	if got := f.NodeF(0).Host.Capacity; got != 244*topology.GB {
		t.Errorf("host capacity = %d", got)
	}
	if f.NodeF(0).Pinned.Capacity() != DefaultPinnedBufferBytes {
		t.Error("pinned gate not sized")
	}
}

func TestLocationHelpers(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	f := New(e, topology.DGXV100(), 1)
	gpu := Location{Node: 0, GPU: 2}
	host := Location{Node: 0, GPU: HostGPU}
	if gpu.IsHost() || !host.IsHost() {
		t.Error("IsHost misclassifies")
	}
	if gpu.String() != "n0.gpu2" || host.String() != "n0.host" {
		t.Errorf("String() = %s / %s", gpu, host)
	}
	if f.Mem(gpu) != f.NodeF(0).GPUs[2] {
		t.Error("Mem(gpu) wrong device")
	}
	if f.Mem(host) != f.NodeF(0).Host {
		t.Error("Mem(host) wrong device")
	}
}

func TestSinglePathShapes(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	f := New(e, topology.DGXV100(), 2)
	cases := []struct {
		name      string
		from, to  Location
		wantLinks int
		hostStack bool
	}{
		{"same location", Location{0, 0}, Location{0, 0}, 0, false},
		{"nvlink pair", Location{0, 0}, Location{0, 3}, 1, false},
		{"pcie p2p pair", Location{0, 0}, Location{0, 5}, 4, false},
		{"gpu to host", Location{0, 1}, Location{0, HostGPU}, 2, false},
		{"host to gpu", Location{0, HostGPU}, Location{0, 1}, 2, false},
		{"cross-node gdr", Location{0, 0}, Location{1, 0}, 4, false},
		{"host to host", Location{0, HostGPU}, Location{1, HostGPU}, 2, true},
		{"host to remote gpu", Location{0, HostGPU}, Location{1, 2}, 3, true},
		{"gpu to remote host", Location{0, 2}, Location{1, HostGPU}, 3, true},
	}
	for _, c := range cases {
		links, hostStack := f.SinglePath(c.from, c.to)
		if len(links) != c.wantLinks {
			t.Errorf("%s: %d links (%v), want %d", c.name, len(links), links, c.wantLinks)
		}
		if hostStack != c.hostStack {
			t.Errorf("%s: hostStack = %v, want %v", c.name, hostStack, c.hostStack)
		}
		// All links must exist in the network.
		for _, id := range links {
			if !f.Net.HasLink(id) {
				t.Errorf("%s: unknown link %s", c.name, id)
			}
		}
	}
}
