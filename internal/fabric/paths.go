package fabric

import "grouter/internal/topology"

// SinglePath returns the canonical single-link-path between two locations —
// what a topology-oblivious system uses: direct NVLink when present, PCIe
// peer-to-peer otherwise, the local PCIe route for GPU↔host, one
// GPUDirect-RDMA NIC pair across nodes, and the kernel network stack for
// host↔host. hostStack reports whether the path is host-mediated (charged
// extra per-transfer latency by the transfer engine).
func (f *Fabric) SinglePath(from, to Location) (links []topology.LinkID, hostStack bool) {
	if from == to {
		return nil, false
	}
	src, dst := f.Topo(from.Node), f.Topo(to.Node)
	switch {
	case from.Node == to.Node && !from.IsHost() && !to.IsHost():
		if src.Spec.NVLinkBps(from.GPU, to.GPU) > 0 {
			return src.NVLinkPathLinks([]int{from.GPU, to.GPU}), false
		}
		return src.PCIeP2PLinks(from.GPU, to.GPU), false
	case from.Node == to.Node && from.IsHost():
		return src.HostToGPULinks(to.GPU), false
	case from.Node == to.Node && to.IsHost():
		return src.GPUToHostLinks(from.GPU), false
	case !from.IsHost() && !to.IsHost():
		// Cross-node gFn-gFn: GDR through the source GPU's nearest NIC.
		nic := src.Spec.GPUNIC[from.GPU]
		rnic := nic
		if rnic >= dst.Spec.NICCount {
			rnic = dst.Spec.NICCount - 1
		}
		links = append(links, src.GPUToNICLinks(from.GPU, nic)...)
		links = append(links, dst.NICToGPULinks(rnic, to.GPU)...)
		return links, false
	case from.IsHost() && to.IsHost():
		links = append(links, src.NICTx(0), dst.NICRx(0))
		return links, true
	case from.IsHost():
		// Host on one node to a GPU on another: NIC pair plus the remote
		// PCIe descent.
		nic := dst.Spec.GPUNIC[to.GPU]
		snic := nic
		if snic >= src.Spec.NICCount {
			snic = src.Spec.NICCount - 1
		}
		links = append(links, src.NICTx(snic))
		links = append(links, dst.NICToGPULinks(nic, to.GPU)...)
		return links, true
	default:
		// GPU to a remote host.
		nic := src.Spec.GPUNIC[from.GPU]
		rnic := nic
		if rnic >= dst.Spec.NICCount {
			rnic = dst.Spec.NICCount - 1
		}
		links = append(links, src.GPUToNICLinks(from.GPU, nic)...)
		links = append(links, dst.NICRx(rnic))
		return links, true
	}
}
