// Package fabric assembles a simulated GPU cluster: a topology's link graph
// registered in a flow-level network simulator, plus per-GPU and per-host
// memory devices and a shared pinned staging buffer per node.
//
// Fabric is the substrate every data plane in this repository runs on; it
// knows nothing about functions, workflows, or storage policy.
package fabric

import (
	"fmt"

	"grouter/internal/memsim"
	"grouter/internal/netsim"
	"grouter/internal/sim"
	"grouter/internal/topology"
)

// HostGPU is the Location.GPU value denoting host memory.
const HostGPU = -1

// Location identifies where a piece of data or a function lives.
type Location struct {
	Node int
	// GPU is the device index within the node, or HostGPU for host memory.
	GPU int
}

// IsHost reports whether the location is host memory.
func (l Location) IsHost() bool { return l.GPU == HostGPU }

func (l Location) String() string {
	if l.IsHost() {
		return fmt.Sprintf("n%d.host", l.Node)
	}
	return fmt.Sprintf("n%d.gpu%d", l.Node, l.GPU)
}

// NodeFabric is the simulated hardware of one server.
type NodeFabric struct {
	Node *topology.Node
	GPUs []*memsim.Device
	Host *memsim.Device
	// Pinned models the circular pinned host buffer shared by concurrent
	// PCIe transfers (§4.3.2 "batched data transfer").
	Pinned *memsim.ByteGate
}

// DefaultPinnedBufferBytes sizes each node's shared pinned staging buffer.
const DefaultPinnedBufferBytes = 2 * topology.GB

// Fabric is the simulated cluster.
type Fabric struct {
	Engine  *sim.Engine
	Cluster *topology.Cluster
	Net     *netsim.Network
	Nodes   []*NodeFabric
}

// New builds a fabric of n nodes of the given spec on engine e.
func New(e *sim.Engine, spec *topology.Spec, n int) *Fabric {
	cluster := topology.NewCluster(spec, n)
	f := &Fabric{
		Engine:  e,
		Cluster: cluster,
		Net:     netsim.New(e, cluster.Links()),
	}
	for _, nd := range cluster.Nodes {
		nf := &NodeFabric{
			Node:   nd,
			Host:   memsim.NewDevice(fmt.Sprintf("n%d.host", nd.ID), spec.HostMemBytes),
			Pinned: memsim.NewByteGate(e, DefaultPinnedBufferBytes),
		}
		for g := 0; g < spec.NumGPUs; g++ {
			nf.GPUs = append(nf.GPUs, memsim.NewDevice(fmt.Sprintf("n%d.gpu%d", nd.ID, g), spec.GPUMemBytes))
		}
		f.Nodes = append(f.Nodes, nf)
	}
	return f
}

// Spec returns the cluster's server spec.
func (f *Fabric) Spec() *topology.Spec { return f.Cluster.Spec }

// NumNodes returns the node count.
func (f *Fabric) NumNodes() int { return len(f.Nodes) }

// NodeF returns node i's fabric.
func (f *Fabric) NodeF(i int) *NodeFabric { return f.Nodes[i] }

// Mem returns the memory device at a location.
func (f *Fabric) Mem(l Location) *memsim.Device {
	nf := f.Nodes[l.Node]
	if l.IsHost() {
		return nf.Host
	}
	return nf.GPUs[l.GPU]
}

// Topo returns node i's topology handle.
func (f *Fabric) Topo(i int) *topology.Node { return f.Cluster.Node(i) }
