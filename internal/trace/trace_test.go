package trace

import (
	"testing"
	"time"
)

func TestDeterministicPerSeed(t *testing.T) {
	s := Spec{Pattern: Bursty, Duration: time.Minute, MeanRPS: 10, Seed: 7}
	a := Generate(s)
	b := Generate(s)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces differ at %d: %v vs %v", i, a[i], b[i])
		}
	}
	s.Seed = 8
	c := Generate(s)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestArrivalsSortedAndInRange(t *testing.T) {
	for _, p := range []Pattern{Sporadic, Periodic, Bursty} {
		s := Spec{Pattern: p, Duration: 30 * time.Second, MeanRPS: 20, Seed: 1}
		arr := Generate(s)
		if len(arr) == 0 {
			t.Fatalf("%v: empty trace", p)
		}
		for i, a := range arr {
			if a < 0 || a >= s.Duration {
				t.Fatalf("%v: arrival %v out of range", p, a)
			}
			if i > 0 && a < arr[i-1] {
				t.Fatalf("%v: arrivals not sorted at %d", p, i)
			}
		}
	}
}

func TestMeanRateApproximatelyHonored(t *testing.T) {
	for _, p := range []Pattern{Sporadic, Periodic, Bursty} {
		s := Spec{Pattern: p, Duration: 10 * time.Minute, MeanRPS: 50, Seed: 3}
		st := Summarize(Generate(s), s.Duration)
		if st.Mean < 30 || st.Mean > 75 {
			t.Errorf("%v: mean rate %.1f, want ≈50", p, st.Mean)
		}
	}
}

func TestBurstyIsBurstier(t *testing.T) {
	dur := 10 * time.Minute
	spor := Summarize(Generate(Spec{Pattern: Sporadic, Duration: dur, MeanRPS: 20, Seed: 5}), dur)
	burst := Summarize(Generate(Spec{Pattern: Bursty, Duration: dur, MeanRPS: 20, Seed: 5}), dur)
	if !(burst.CV > spor.CV) {
		t.Errorf("bursty CV %.2f should exceed sporadic CV %.2f", burst.CV, spor.CV)
	}
	if !(burst.PeakRPS > spor.PeakRPS) {
		t.Errorf("bursty peak %.0f should exceed sporadic peak %.0f", burst.PeakRPS, spor.PeakRPS)
	}
}

func TestEmptySpecs(t *testing.T) {
	if got := Generate(Spec{Pattern: Sporadic, Duration: 0, MeanRPS: 10}); got != nil {
		t.Errorf("zero duration trace = %v", got)
	}
	if got := Generate(Spec{Pattern: Sporadic, Duration: time.Second, MeanRPS: 0}); got != nil {
		t.Errorf("zero rate trace = %v", got)
	}
	st := Summarize(nil, time.Minute)
	if st.Count != 0 || st.Mean != 0 {
		t.Errorf("empty summarize = %+v", st)
	}
}

func TestParsePattern(t *testing.T) {
	for _, name := range []string{"sporadic", "periodic", "bursty"} {
		p, err := ParsePattern(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.String() != name {
			t.Errorf("round trip %q → %q", name, p.String())
		}
	}
	if _, err := ParsePattern("wavy"); err == nil {
		t.Error("unknown pattern should error")
	}
}
