package trace

import (
	"testing"
	"time"
)

func TestDeterministicPerSeed(t *testing.T) {
	s := Spec{Pattern: Bursty, Duration: time.Minute, MeanRPS: 10, Seed: 7}
	a := Generate(s)
	b := Generate(s)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces differ at %d: %v vs %v", i, a[i], b[i])
		}
	}
	s.Seed = 8
	c := Generate(s)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestArrivalsSortedAndInRange(t *testing.T) {
	for _, p := range []Pattern{Sporadic, Periodic, Bursty} {
		s := Spec{Pattern: p, Duration: 30 * time.Second, MeanRPS: 20, Seed: 1}
		arr := Generate(s)
		if len(arr) == 0 {
			t.Fatalf("%v: empty trace", p)
		}
		for i, a := range arr {
			if a < 0 || a >= s.Duration {
				t.Fatalf("%v: arrival %v out of range", p, a)
			}
			if i > 0 && a < arr[i-1] {
				t.Fatalf("%v: arrivals not sorted at %d", p, i)
			}
		}
	}
}

func TestMeanRateApproximatelyHonored(t *testing.T) {
	for _, p := range []Pattern{Sporadic, Periodic, Bursty} {
		s := Spec{Pattern: p, Duration: 10 * time.Minute, MeanRPS: 50, Seed: 3}
		st := Summarize(Generate(s), s.Duration)
		if st.Mean < 30 || st.Mean > 75 {
			t.Errorf("%v: mean rate %.1f, want ≈50", p, st.Mean)
		}
	}
}

func TestBurstyIsBurstier(t *testing.T) {
	dur := 10 * time.Minute
	spor := Summarize(Generate(Spec{Pattern: Sporadic, Duration: dur, MeanRPS: 20, Seed: 5}), dur)
	burst := Summarize(Generate(Spec{Pattern: Bursty, Duration: dur, MeanRPS: 20, Seed: 5}), dur)
	if !(burst.CV > spor.CV) {
		t.Errorf("bursty CV %.2f should exceed sporadic CV %.2f", burst.CV, spor.CV)
	}
	if !(burst.PeakRPS > spor.PeakRPS) {
		t.Errorf("bursty peak %.0f should exceed sporadic peak %.0f", burst.PeakRPS, spor.PeakRPS)
	}
}

// TestPatternStatisticsBands sweeps each arrival pattern across three seeds
// and checks the summary statistics against tolerance bands derived from the
// generating processes:
//
//   - sporadic is homogeneous Poisson: at 30k expected arrivals the empirical
//     mean concentrates within ±10% of MeanRPS and the inter-arrival CV near
//     the exponential's 1;
//   - periodic thins a Poisson process by a sinusoid: the long-run mean stays
//     near MeanRPS (±20%) while rate modulation holds the CV at or above 1;
//   - bursty alternates a 0.2× baseline with 4× bursts: segment randomness
//     widens the mean band to ±40% and the CV clears the Poisson value by a
//     wide margin.
//
// Every generated trace must also be sorted, in [0, Duration), and
// regenerate byte-identically from its seed.
func TestPatternStatisticsBands(t *testing.T) {
	const dur = 10 * time.Minute
	const mean = 50.0
	cases := []struct {
		pattern          Pattern
		minMean, maxMean float64
		minCV, maxCV     float64
	}{
		{Sporadic, 45, 55, 0.90, 1.10},
		{Periodic, 40, 60, 1.00, 1.60},
		{Bursty, 30, 75, 1.30, 6.00},
	}
	for _, tc := range cases {
		for _, seed := range []int64{1, 7, 42} {
			spec := Spec{Pattern: tc.pattern, Duration: dur, MeanRPS: mean, Seed: seed}
			arr := Generate(spec)
			for i, a := range arr {
				if a < 0 || a >= dur {
					t.Fatalf("%v seed %d: arrival %v out of [0,%v)", tc.pattern, seed, a, dur)
				}
				if i > 0 && a < arr[i-1] {
					t.Fatalf("%v seed %d: arrivals not sorted at %d", tc.pattern, seed, i)
				}
			}
			again := Generate(spec)
			if len(again) != len(arr) {
				t.Fatalf("%v seed %d: regeneration length %d != %d", tc.pattern, seed, len(again), len(arr))
			}
			for i := range arr {
				if again[i] != arr[i] {
					t.Fatalf("%v seed %d: regeneration diverges at %d", tc.pattern, seed, i)
				}
			}
			st := Summarize(arr, dur)
			if st.Mean < tc.minMean || st.Mean > tc.maxMean {
				t.Errorf("%v seed %d: mean rate %.2f outside [%.0f, %.0f]",
					tc.pattern, seed, st.Mean, tc.minMean, tc.maxMean)
			}
			if st.CV < tc.minCV || st.CV > tc.maxCV {
				t.Errorf("%v seed %d: CV %.2f outside [%.2f, %.2f]",
					tc.pattern, seed, st.CV, tc.minCV, tc.maxCV)
			}
		}
	}
}

func TestEmptySpecs(t *testing.T) {
	if got := Generate(Spec{Pattern: Sporadic, Duration: 0, MeanRPS: 10}); got != nil {
		t.Errorf("zero duration trace = %v", got)
	}
	if got := Generate(Spec{Pattern: Sporadic, Duration: time.Second, MeanRPS: 0}); got != nil {
		t.Errorf("zero rate trace = %v", got)
	}
	st := Summarize(nil, time.Minute)
	if st.Count != 0 || st.Mean != 0 {
		t.Errorf("empty summarize = %+v", st)
	}
}

func TestParsePattern(t *testing.T) {
	for _, name := range []string{"sporadic", "periodic", "bursty"} {
		p, err := ParsePattern(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.String() != name {
			t.Errorf("round trip %q → %q", name, p.String())
		}
	}
	if _, err := ParsePattern("wavy"); err == nil {
		t.Error("unknown pattern should error")
	}
}
