// Package trace generates invocation traces with the three arrival patterns
// the paper samples from the Azure Functions production trace: sporadic,
// periodic, and bursty. Generation is deterministic per seed, so experiments
// are reproducible.
package trace

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// Pattern is an arrival-process shape.
type Pattern int

const (
	// Sporadic is a homogeneous Poisson process.
	Sporadic Pattern = iota
	// Periodic is a Poisson process with a sinusoidally modulated rate
	// (diurnal-style load).
	Periodic
	// Bursty alternates a low baseline with short high-rate bursts.
	Bursty
)

func (p Pattern) String() string {
	switch p {
	case Sporadic:
		return "sporadic"
	case Periodic:
		return "periodic"
	case Bursty:
		return "bursty"
	}
	return "unknown"
}

// ParsePattern parses a pattern name.
func ParsePattern(s string) (Pattern, error) {
	switch s {
	case "sporadic":
		return Sporadic, nil
	case "periodic":
		return Periodic, nil
	case "bursty":
		return Bursty, nil
	}
	return 0, fmt.Errorf("trace: unknown pattern %q", s)
}

// Spec parameterizes a trace.
type Spec struct {
	Pattern  Pattern
	Duration time.Duration
	// MeanRPS is the long-run average request rate.
	MeanRPS float64
	Seed    int64

	// Period is the modulation period for Periodic (default 60s).
	Period time.Duration
	// BurstFactor is the burst-to-mean rate ratio for Bursty (default 4).
	BurstFactor float64
	// BurstLen is the mean burst duration for Bursty (default 5s).
	BurstLen time.Duration
}

// Generate returns sorted arrival offsets in [0, Duration).
func Generate(s Spec) []time.Duration {
	if s.Duration <= 0 || s.MeanRPS <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(s.Seed))
	var out []time.Duration
	switch s.Pattern {
	case Sporadic:
		out = poisson(rng, s.MeanRPS, s.Duration)
	case Periodic:
		period := s.Period
		if period == 0 {
			period = time.Minute
		}
		// Thinning: candidate Poisson at peak rate, accept with rate(t)/peak.
		peak := s.MeanRPS * 1.8
		for _, t := range poisson(rng, peak, s.Duration) {
			phase := 2 * math.Pi * t.Seconds() / period.Seconds()
			rate := s.MeanRPS * (1 + 0.8*math.Sin(phase))
			if rng.Float64() < rate/peak {
				out = append(out, t)
			}
		}
	case Bursty:
		factor := s.BurstFactor
		if factor == 0 {
			factor = 4
		}
		burstLen := s.BurstLen
		if burstLen == 0 {
			burstLen = 5 * time.Second
		}
		baseline := s.MeanRPS * 0.2
		// Choose the off-period so the long-run mean matches MeanRPS:
		// mean = (base·off + factor·mean·on) / (off + on).
		on := burstLen.Seconds()
		off := on * (factor*s.MeanRPS - s.MeanRPS) / (s.MeanRPS - baseline)
		if off <= 0 {
			off = on
		}
		t := 0.0
		end := s.Duration.Seconds()
		inBurst := false
		for t < end {
			var segLen, rate float64
			if inBurst {
				segLen = expo(rng, on)
				rate = factor * s.MeanRPS
			} else {
				segLen = expo(rng, off)
				rate = baseline
			}
			segEnd := math.Min(t+segLen, end)
			for _, a := range poissonWindow(rng, rate, t, segEnd) {
				out = append(out, a)
			}
			t = segEnd
			inBurst = !inBurst
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// poisson draws a homogeneous Poisson process over [0, dur).
func poisson(rng *rand.Rand, rate float64, dur time.Duration) []time.Duration {
	return poissonWindow(rng, rate, 0, dur.Seconds())
}

func poissonWindow(rng *rand.Rand, rate, from, to float64) []time.Duration {
	var out []time.Duration
	if rate <= 0 {
		return out
	}
	t := from
	for {
		t += expo(rng, 1/rate)
		if t >= to {
			return out
		}
		out = append(out, time.Duration(t*float64(time.Second)))
	}
}

// expo draws an exponential variate with the given mean.
func expo(rng *rand.Rand, mean float64) float64 {
	return rng.ExpFloat64() * mean
}

// Stats summarizes a trace for sanity checks and CLI inspection.
type Stats struct {
	Count   int
	Mean    float64 // requests/s
	PeakRPS float64 // max over 1s windows
	CV      float64 // coefficient of variation of inter-arrival times
}

// Summarize computes Stats over a trace of the given duration.
func Summarize(arrivals []time.Duration, dur time.Duration) Stats {
	st := Stats{Count: len(arrivals)}
	if dur <= 0 || len(arrivals) == 0 {
		return st
	}
	st.Mean = float64(len(arrivals)) / dur.Seconds()
	// Peak over 1-second windows.
	buckets := make(map[int64]int)
	for _, a := range arrivals {
		buckets[int64(a/time.Second)]++
	}
	for _, c := range buckets {
		if f := float64(c); f > st.PeakRPS {
			st.PeakRPS = f
		}
	}
	if len(arrivals) > 2 {
		var gaps []float64
		for i := 1; i < len(arrivals); i++ {
			gaps = append(gaps, (arrivals[i] - arrivals[i-1]).Seconds())
		}
		mean, sd := meanStd(gaps)
		if mean > 0 {
			st.CV = sd / mean
		}
	}
	return st
}

func meanStd(xs []float64) (mean, sd float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		sd += (x - mean) * (x - mean)
	}
	sd = math.Sqrt(sd / float64(len(xs)))
	return mean, sd
}
