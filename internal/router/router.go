package router

import (
	"math/rand"
	"time"

	"grouter/internal/cluster"
	"grouter/internal/fabric"
	"grouter/internal/faults"
	"grouter/internal/obs"
	"grouter/internal/scheduler"
)

// Config tunes one Router.
type Config struct {
	// Weights are the worker-scoring coefficients.
	Weights Weights
	// TopK is the weighted-random candidate pool size (default 1; the
	// scored DefaultConfig uses 3 to spread near-ties).
	TopK int
	// Refresh is the snapshot cache period in virtual time: picks between
	// refreshes reuse the cached worker metrics (cached-metrics admission,
	// so a burst of picks costs one metrics sweep). Zero refreshes every
	// pick.
	Refresh time.Duration
	// Seed drives the weighted-random pick stream.
	Seed int64
	// AgingAfter, when positive, enables priority aging on the cluster's
	// GPU queues: a waiting request's effective QoS class rises one level
	// per period, so QoSHigh load cannot starve QoSLow requests.
	AgingAfter time.Duration
	// RecoverAfter is how long a crashed worker stays blacklisted.
	RecoverAfter time.Duration
	// EWMAAlpha smooths the per-worker service-latency EWMA (default 0.2).
	EWMAAlpha float64
	// SLO configures per-class admission control; the zero value disables
	// it (no AdmitFn is installed — the launch path stays byte-identical to
	// the admission-free router).
	SLO SLOConfig
	// AffinityTTL is the staleness horizon of session-affinity pins: a
	// pin's bias decays linearly from 1 to 0 over the TTL and the pin is
	// dropped once fully decayed (default 500ms). Used only with a positive
	// Weights.Session.
	AffinityTTL time.Duration
}

// DefaultConfig returns the scored production configuration: queue depth
// dominates (it is the freshest congestion signal), latency EWMA second,
// free memory and utilization as slow-moving tie-breakers.
func DefaultConfig() Config {
	return Config{
		Weights:      Weights{FreeMem: 1, Queue: 4, Latency: 2, Util: 1},
		TopK:         3,
		Refresh:      2 * time.Millisecond,
		AgingAfter:   20 * time.Millisecond,
		RecoverAfter: 500 * time.Millisecond,
		EWMAAlpha:    0.2,
	}
}

// Uniform returns the degenerate configuration whose routing is provably
// identical to placement-only admission: zero weights score every worker
// equally and k=1 resolves the tie round-robin, reproducing the cluster's
// seq-mod-pool instance selection byte for byte (the differential oracle).
func Uniform() Config { return Config{TopK: 1} }

// Stats counts routing activity. All counters are deterministic in virtual
// time.
type Stats struct {
	// Decisions counts routed stage activations (scored picks served).
	Decisions int64
	// Refreshes counts metrics-snapshot rebuilds.
	Refreshes int64
	// Failovers counts decisions where at least one unhealthy candidate
	// was skipped; Retries counts the skipped candidates.
	Failovers int64
	Retries   int64
	// Fallbacks counts decisions with no healthy candidate (ErrNoWorker),
	// where admission fell back to the cluster's round-robin.
	Fallbacks int64
	// Crashes counts worker-down signals received from the fault injector.
	Crashes int64
	// PoolChanges counts elastic pool-membership announcements received;
	// Seeded counts workers whose zero EWMA was seeded from the pool mean on
	// arrival (see poolChanged).
	PoolChanges int64
	Seeded      int64
	// Admission-control counters (all zero without an SLO configuration).
	// Admits counts attempts that launched, Defers delay-queue parks, and
	// ShedLow/ShedHigh dropped requests per QoS class — together they
	// account for every admission decision: no request is dropped without
	// a shed counter recording it.
	Admits   int64
	Defers   int64
	ShedLow  int64
	ShedHigh int64
	// AffinityHits counts scored picks that landed on the session's pinned
	// worker; AffinityInvalidations counts pins dropped because their
	// worker crashed, was cordoned out of the stage's pool, or fully
	// decayed.
	AffinityHits          int64
	AffinityInvalidations int64
}

// Router scores a cluster's GPUs and routes one app's stage activations.
type Router struct {
	app *cluster.App
	c   *cluster.Cluster
	cfg Config
	rng *rand.Rand
	tr  *obs.Tracer

	numGPUs int
	// Per-worker accounting, indexed node*numGPUs+gpu.
	ewma      []time.Duration
	busy      []time.Duration
	lastBusy  []time.Duration
	downUntil []time.Duration
	// pending counts picks routed to a worker since the last snapshot
	// refresh. Added to the cached queue depth, it keeps a burst of picks
	// inside one refresh window from herding onto the same stale-best
	// worker — the pending discount of cached-metrics routing.
	pending []int

	snap   []WorkerState
	snapAt time.Duration
	fresh  bool
	// cstates is the per-pick candidate scratch buffer; astates the
	// per-admission effective-snapshot scratch buffer.
	cstates []WorkerState
	astates []WorkerState

	// sessions holds per-(session, stage) affinity pins; nil until the
	// first pinned pick (sessionless traffic allocates nothing).
	sessions map[sessionKey]sessionPin

	// poolStages holds, per current routable stage pool, the snapshot
	// indices of its GPU workers — the per-stage worker sets admission
	// predicts over (the global snapshot also covers GPUs the app cannot
	// route to, whose idleness must not veto a shed; and one pool's idle
	// workers must not hide another pool's queue). Rebuilt lazily after
	// every pool change. agroups is the matching per-admission scratch.
	poolStages      [][]int
	poolStagesValid bool
	agroups         [][]WorkerState

	// attain holds the per-class predicted-attainment rings feeding the
	// autoscaler (QoSLow, QoSHigh order).
	attain [2]attainRing

	Stats Stats
}

// sessionKey identifies one session's pin for one stage instance: requests
// traverse every stage, so affinity is per (session, stage) — one shared pin
// would thrash across the workflow's pools.
type sessionKey struct {
	sid int64
	si  scheduler.StageInst
}

// sessionPin records where a session's state last landed and when.
type sessionPin struct {
	w  int
	at time.Duration
}

// attainRing is a fixed-window ring of admission outcomes: true samples were
// predicted to meet their class budget. Its mean is the predicted SLO
// attainment fed back to the autoscaler; an empty ring reads 1 (no evidence
// of misses).
type attainRing struct {
	meets []bool
	idx   int
	n     int
	hits  int
}

func (r *attainRing) push(meet bool) {
	if len(r.meets) == 0 {
		return
	}
	if r.n < len(r.meets) {
		r.n++
	} else if r.meets[r.idx] {
		r.hits--
	}
	r.meets[r.idx] = meet
	if meet {
		r.hits++
	}
	r.idx = (r.idx + 1) % len(r.meets)
}

func (r *attainRing) value() float64 {
	if r.n == 0 {
		return 1
	}
	return float64(r.hits) / float64(r.n)
}

// New builds a router over the app's cluster and installs it as the app's
// Route hook, taking over the cluster's OnGPUService accounting hook. With a
// positive AgingAfter it also enables priority aging on the cluster's GPU
// queues. One router per cluster.
func New(app *cluster.App, cfg Config) *Router {
	if cfg.EWMAAlpha <= 0 || cfg.EWMAAlpha > 1 {
		cfg.EWMAAlpha = 0.2
	}
	if cfg.RecoverAfter <= 0 {
		cfg.RecoverAfter = 500 * time.Millisecond
	}
	if cfg.AffinityTTL <= 0 {
		cfg.AffinityTTL = 500 * time.Millisecond
	}
	if cfg.SLO.Window <= 0 {
		cfg.SLO.Window = 64
	}
	c := app.C
	n := c.Fabric.NumNodes() * c.Spec().NumGPUs
	r := &Router{
		app:       app,
		c:         c,
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed + 101)),
		tr:        obs.TracerOf(c.Engine),
		numGPUs:   c.Spec().NumGPUs,
		ewma:      make([]time.Duration, n),
		busy:      make([]time.Duration, n),
		lastBusy:  make([]time.Duration, n),
		downUntil: make([]time.Duration, n),
		pending:   make([]int, n),
		snap:      make([]WorkerState, n),
	}
	c.OnGPUService = r.onService
	if cfg.AgingAfter > 0 {
		c.SetQueueAging(cfg.AgingAfter)
	}
	app.Route = r.route
	app.OnPoolChange = r.poolChanged
	if cfg.SLO.Enabled() {
		r.attain[0] = attainRing{meets: make([]bool, cfg.SLO.Window)}
		r.attain[1] = attainRing{meets: make([]bool, cfg.SLO.Window)}
		app.Admit = r.admit
		app.SLOAttainment = r.attainment
	}
	return r
}

// Attainment returns the router's predicted SLO attainment for one QoS
// class: the fraction of the last SLO.Window admission attempts of that
// class predicted to meet their budget (1 with no samples, or without an
// SLO configuration).
func (r *Router) Attainment(q cluster.QoS) float64 {
	if q == cluster.QoSHigh {
		return r.attain[1].value()
	}
	return r.attain[0].value()
}

// attainment is the App.SLOAttainment hook feeding PoolMetrics.
func (r *Router) attainment() (low, high float64) {
	return r.attain[0].value(), r.attain[1].value()
}

// admit is the App.Admit hook: it folds the pending-pick discount into the
// cached snapshot, groups it by the stage pools the app actually routes to,
// and delegates the decision to the pure AdmitPipeline. Classes without a
// budget bypass the predictor and record no attainment sample.
func (r *Router) admit(req cluster.Request, waited time.Duration) (cluster.AdmitAction, time.Duration) {
	if r.cfg.SLO.Class(req.QoS).Budget <= 0 {
		return cluster.AdmitRun, 0
	}
	snap := r.Snapshot()
	stages := r.stageGroups()
	total := 0
	for _, g := range stages {
		total += len(g)
	}
	if total == 0 {
		// No routable GPU pool (host-only workflow): nothing to predict
		// over, so admission cannot justify a drop.
		return cluster.AdmitRun, 0
	}
	// Pre-size the flat scratch so the per-stage subslices below never span
	// a reallocation.
	if cap(r.astates) < total {
		r.astates = make([]WorkerState, 0, total)
	}
	r.astates = r.astates[:0]
	r.agroups = r.agroups[:0]
	for _, g := range stages {
		start := len(r.astates)
		for _, i := range g {
			ws := snap[i]
			ws.QueueDepth += r.pending[i]
			r.astates = append(r.astates, ws)
		}
		r.agroups = append(r.agroups, r.astates[start:len(r.astates)])
	}
	action, delay := AdmitPipeline(r.agroups, r.cfg.SLO, req.QoS, waited)
	ci := 0
	if req.QoS == cluster.QoSHigh {
		ci = 1
	}
	r.attain[ci].push(action == cluster.AdmitRun)
	switch action {
	case cluster.AdmitDefer:
		r.Stats.Defers++
	case cluster.AdmitShed:
		if ci == 1 {
			r.Stats.ShedHigh++
		} else {
			r.Stats.ShedLow++
		}
	default:
		r.Stats.Admits++
	}
	return action, delay
}

// stageGroups returns (rebuilding lazily after pool changes) the snapshot
// indices of every current routable stage pool's GPU workers. Group order
// follows map iteration and is not deterministic, but every consumer folds
// the groups commutatively (a saturating sum of non-negative per-stage
// estimates, an all-stages-idle conjunction), so admission decisions are.
func (r *Router) stageGroups() [][]int {
	if !r.poolStagesValid {
		groups := make(map[scheduler.StageInst][]int)
		r.app.ForEachPoolMember(func(si scheduler.StageInst, loc fabric.Location) {
			if !loc.IsHost() {
				groups[si] = append(groups[si], r.widx(loc.Node, loc.GPU))
			}
		})
		r.poolStages = r.poolStages[:0]
		for _, g := range groups {
			r.poolStages = append(r.poolStages, g)
		}
		r.poolStagesValid = true
	}
	return r.poolStages
}

// Config returns the router's (defaulted) configuration.
func (r *Router) Config() Config { return r.cfg }

// widx flattens a worker location.
func (r *Router) widx(node, gpu int) int { return node*r.numGPUs + gpu }

// onService folds one compute-slot hold into the worker's EWMA service
// latency and cumulative busy time.
func (r *Router) onService(node, gpu int, held time.Duration) {
	i := r.widx(node, gpu)
	if r.ewma[i] == 0 {
		r.ewma[i] = held
	} else {
		a := r.cfg.EWMAAlpha
		r.ewma[i] = time.Duration(a*float64(held) + (1-a)*float64(r.ewma[i]))
	}
	r.busy[i] += held
}

// MarkDown blacklists a worker until RecoverAfter elapses (the fault
// injector's crash signal lands here via WatchFaults). Session pins on the
// crashed worker are invalidated: its KV/replica state is gone, so steering
// the session back to it after recovery would be affinity to nothing.
func (r *Router) MarkDown(node, gpu int) {
	w := r.widx(node, gpu)
	r.downUntil[w] = r.c.Engine.Now() + r.cfg.RecoverAfter
	// Health must be visible to the next pick even inside a refresh window.
	r.fresh = false
	for k, pin := range r.sessions {
		if pin.w == w {
			delete(r.sessions, k)
			r.Stats.AffinityInvalidations++
		}
	}
}

// WatchFaults subscribes the router to the injector's GPU crash signals, so
// picks fail over away from crashed workers while they re-materialize.
func (r *Router) WatchFaults(in *faults.Injector) {
	in.OnGPUCrash(func(node, gpu int) {
		r.Stats.Crashes++
		r.MarkDown(node, gpu)
	})
}

// poolChanged is the App.OnPoolChange hook: an elastic pool grew, shrank, or
// failed over. The cached snapshot is invalidated so the next pick sees the
// new membership, and workers arriving with no service history get their
// EWMA seeded from the mean of the pool's seasoned workers — a zero EWMA
// scores as infinitely fast and would aim the whole burst that triggered the
// scale-out at the cold replica.
func (r *Router) poolChanged(si scheduler.StageInst, pool []fabric.Location) {
	r.Stats.PoolChanges++
	// The announcement must invalidate caches even for a host pool: the old
	// code returned from inside the seeding loop on the first host location,
	// leaving the snapshot marked fresh — a pick inside the refresh window
	// could then race the stale EWMA/membership view against the change.
	r.fresh = false
	r.poolStagesValid = false
	host := false
	var sum time.Duration
	n := 0
	for _, loc := range pool {
		if loc.IsHost() {
			host = true
			break
		}
		if e := r.ewma[r.widx(loc.Node, loc.GPU)]; e > 0 {
			sum += e
			n++
		}
	}
	if !host && n > 0 {
		mean := sum / time.Duration(n)
		for _, loc := range pool {
			if i := r.widx(loc.Node, loc.GPU); r.ewma[i] == 0 {
				r.ewma[i] = mean
				r.Stats.Seeded++
			}
		}
	}
	// Drop this stage's session pins to workers that left the pool: a
	// cordoned (draining) or failed-over worker must not keep receiving
	// affinity-pinned picks through a stale pin.
	if len(r.sessions) > 0 {
		for k, pin := range r.sessions {
			if k.si != si {
				continue
			}
			present := false
			for _, loc := range pool {
				if !loc.IsHost() && r.widx(loc.Node, loc.GPU) == pin.w {
					present = true
					break
				}
			}
			if !present {
				delete(r.sessions, k)
				r.Stats.AffinityInvalidations++
			}
		}
	}
}

// Snapshot returns the current cached worker states, refreshing if stale
// (exported for tests and the -router-stats diagnostics).
func (r *Router) Snapshot() []WorkerState {
	now := r.c.Engine.Now()
	if r.fresh && now-r.snapAt < r.cfg.Refresh {
		return r.snap
	}
	elapsed := now - r.snapAt
	for node := 0; node < r.c.Fabric.NumNodes(); node++ {
		for gpu := 0; gpu < r.numGPUs; gpu++ {
			i := r.widx(node, gpu)
			waiting, held := r.c.GPULoad(node, gpu)
			util := 0.0
			if elapsed > 0 {
				util = float64(r.busy[i]-r.lastBusy[i]) / float64(elapsed)
				if util > 1 {
					util = 1
				}
			}
			r.lastBusy[i] = r.busy[i]
			r.pending[i] = 0
			r.snap[i] = WorkerState{
				Node:        node,
				GPU:         gpu,
				Healthy:     r.downUntil[i] <= now,
				FreeMem:     r.c.Fabric.Mem(fabric.Location{Node: node, GPU: gpu}).Free(),
				QueueDepth:  waiting + held,
				EWMALatency: r.ewma[i],
				Utilization: util,
			}
		}
	}
	r.snapAt = now
	r.fresh = true
	r.Stats.Refreshes++
	return r.snap
}

// route is the App.Route hook: it maps the stage's instance pool onto worker
// states and delegates the pick to RouteRequest. Host pools (cFns) and
// no-healthy-worker picks decline, falling back to round-robin — a
// simulation must still run every request, so total failure degrades to the
// placement-only path and is counted in Stats.Fallbacks.
//
// With a positive Weights.Session, a session-carrying request biases the
// pick toward the worker holding the session's state: the pin's decayed
// affinity lands in the candidate's WorkerState.Affinity and the scorer
// weighs it against load. The bias applies only to candidates present in
// the stage's current pool — a cordoned or crashed worker is absent from it
// (or unhealthy), so stale pins cannot steer picks to it — and every scored
// pick re-pins the session where it actually landed.
func (r *Router) route(si scheduler.StageInst, ri cluster.RouteInfo, pool []fabric.Location) (int, bool) {
	snap := r.Snapshot()
	useAff := ri.Session != 0 && saneWeight(r.cfg.Weights.Session) > 0
	pinned := -1
	aff := 0.0
	if useAff {
		pinned, aff = r.sessionBias(sessionKey{ri.Session, si})
	}
	r.cstates = r.cstates[:0]
	unhealthy := 0
	for _, loc := range pool {
		if loc.IsHost() {
			return 0, false
		}
		w := r.widx(loc.Node, loc.GPU)
		ws := snap[w]
		ws.QueueDepth += r.pending[w]
		if w == pinned && ws.Healthy {
			ws.Affinity = aff
		}
		if !ws.Healthy {
			unhealthy++
		}
		r.cstates = append(r.cstates, ws)
	}
	r.Stats.Decisions++
	if unhealthy > 0 {
		r.Stats.Failovers++
		r.Stats.Retries += int64(unhealthy)
	}
	idx, err := RouteRequest(r.cstates, r.cfg, ri.Seq, r.rng)
	if err != nil {
		r.Stats.Fallbacks++
		return 0, false
	}
	picked := r.widx(pool[idx].Node, pool[idx].GPU)
	r.pending[picked]++
	if useAff {
		if picked == pinned {
			r.Stats.AffinityHits++
		}
		if r.sessions == nil {
			r.sessions = make(map[sessionKey]sessionPin)
		}
		r.sessions[sessionKey{ri.Session, si}] = sessionPin{w: picked, at: r.c.Engine.Now()}
	}
	if ev := r.tr.InstantOn(obs.TrackSched, obs.CatPlace, "route:"+si.Stage); ev != 0 {
		r.tr.SetAttrInt(ev, "seq", ri.Seq)
		r.tr.SetAttrInt(ev, "node", int64(pool[idx].Node))
		r.tr.SetAttrInt(ev, "gpu", int64(pool[idx].GPU))
		r.tr.SetAttrInt(ev, "queue", int64(r.cstates[idx].QueueDepth))
	}
	return idx, true
}

// sessionBias resolves one session pin: the pinned worker index and its
// staleness-decayed affinity (1 just after use, linear to 0 at AffinityTTL).
// Fully decayed and crash-blacklisted pins are dropped; absent pins return
// (-1, 0).
func (r *Router) sessionBias(k sessionKey) (int, float64) {
	pin, ok := r.sessions[k]
	if !ok {
		return -1, 0
	}
	now := r.c.Engine.Now()
	if r.downUntil[pin.w] > now {
		delete(r.sessions, k)
		r.Stats.AffinityInvalidations++
		return -1, 0
	}
	age := now - pin.at
	if age >= r.cfg.AffinityTTL {
		delete(r.sessions, k)
		r.Stats.AffinityInvalidations++
		return -1, 0
	}
	return pin.w, 1 - float64(age)/float64(r.cfg.AffinityTTL)
}
