package router

import (
	"math/rand"
	"time"

	"grouter/internal/cluster"
	"grouter/internal/fabric"
	"grouter/internal/faults"
	"grouter/internal/obs"
	"grouter/internal/scheduler"
)

// Config tunes one Router.
type Config struct {
	// Weights are the worker-scoring coefficients.
	Weights Weights
	// TopK is the weighted-random candidate pool size (default 1; the
	// scored DefaultConfig uses 3 to spread near-ties).
	TopK int
	// Refresh is the snapshot cache period in virtual time: picks between
	// refreshes reuse the cached worker metrics (cached-metrics admission,
	// so a burst of picks costs one metrics sweep). Zero refreshes every
	// pick.
	Refresh time.Duration
	// Seed drives the weighted-random pick stream.
	Seed int64
	// AgingAfter, when positive, enables priority aging on the cluster's
	// GPU queues: a waiting request's effective QoS class rises one level
	// per period, so QoSHigh load cannot starve QoSLow requests.
	AgingAfter time.Duration
	// RecoverAfter is how long a crashed worker stays blacklisted.
	RecoverAfter time.Duration
	// EWMAAlpha smooths the per-worker service-latency EWMA (default 0.2).
	EWMAAlpha float64
}

// DefaultConfig returns the scored production configuration: queue depth
// dominates (it is the freshest congestion signal), latency EWMA second,
// free memory and utilization as slow-moving tie-breakers.
func DefaultConfig() Config {
	return Config{
		Weights:      Weights{FreeMem: 1, Queue: 4, Latency: 2, Util: 1},
		TopK:         3,
		Refresh:      2 * time.Millisecond,
		AgingAfter:   20 * time.Millisecond,
		RecoverAfter: 500 * time.Millisecond,
		EWMAAlpha:    0.2,
	}
}

// Uniform returns the degenerate configuration whose routing is provably
// identical to placement-only admission: zero weights score every worker
// equally and k=1 resolves the tie round-robin, reproducing the cluster's
// seq-mod-pool instance selection byte for byte (the differential oracle).
func Uniform() Config { return Config{TopK: 1} }

// Stats counts routing activity. All counters are deterministic in virtual
// time.
type Stats struct {
	// Decisions counts routed stage activations (scored picks served).
	Decisions int64
	// Refreshes counts metrics-snapshot rebuilds.
	Refreshes int64
	// Failovers counts decisions where at least one unhealthy candidate
	// was skipped; Retries counts the skipped candidates.
	Failovers int64
	Retries   int64
	// Fallbacks counts decisions with no healthy candidate (ErrNoWorker),
	// where admission fell back to the cluster's round-robin.
	Fallbacks int64
	// Crashes counts worker-down signals received from the fault injector.
	Crashes int64
	// PoolChanges counts elastic pool-membership announcements received;
	// Seeded counts workers whose zero EWMA was seeded from the pool mean on
	// arrival (see poolChanged).
	PoolChanges int64
	Seeded      int64
}

// Router scores a cluster's GPUs and routes one app's stage activations.
type Router struct {
	app *cluster.App
	c   *cluster.Cluster
	cfg Config
	rng *rand.Rand
	tr  *obs.Tracer

	numGPUs int
	// Per-worker accounting, indexed node*numGPUs+gpu.
	ewma      []time.Duration
	busy      []time.Duration
	lastBusy  []time.Duration
	downUntil []time.Duration
	// pending counts picks routed to a worker since the last snapshot
	// refresh. Added to the cached queue depth, it keeps a burst of picks
	// inside one refresh window from herding onto the same stale-best
	// worker — the pending discount of cached-metrics routing.
	pending []int

	snap   []WorkerState
	snapAt time.Duration
	fresh  bool
	// cstates is the per-pick candidate scratch buffer.
	cstates []WorkerState

	Stats Stats
}

// New builds a router over the app's cluster and installs it as the app's
// Route hook, taking over the cluster's OnGPUService accounting hook. With a
// positive AgingAfter it also enables priority aging on the cluster's GPU
// queues. One router per cluster.
func New(app *cluster.App, cfg Config) *Router {
	if cfg.EWMAAlpha <= 0 || cfg.EWMAAlpha > 1 {
		cfg.EWMAAlpha = 0.2
	}
	if cfg.RecoverAfter <= 0 {
		cfg.RecoverAfter = 500 * time.Millisecond
	}
	c := app.C
	n := c.Fabric.NumNodes() * c.Spec().NumGPUs
	r := &Router{
		app:       app,
		c:         c,
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed + 101)),
		tr:        obs.TracerOf(c.Engine),
		numGPUs:   c.Spec().NumGPUs,
		ewma:      make([]time.Duration, n),
		busy:      make([]time.Duration, n),
		lastBusy:  make([]time.Duration, n),
		downUntil: make([]time.Duration, n),
		pending:   make([]int, n),
		snap:      make([]WorkerState, n),
	}
	c.OnGPUService = r.onService
	if cfg.AgingAfter > 0 {
		c.SetQueueAging(cfg.AgingAfter)
	}
	app.Route = r.route
	app.OnPoolChange = r.poolChanged
	return r
}

// Config returns the router's (defaulted) configuration.
func (r *Router) Config() Config { return r.cfg }

// widx flattens a worker location.
func (r *Router) widx(node, gpu int) int { return node*r.numGPUs + gpu }

// onService folds one compute-slot hold into the worker's EWMA service
// latency and cumulative busy time.
func (r *Router) onService(node, gpu int, held time.Duration) {
	i := r.widx(node, gpu)
	if r.ewma[i] == 0 {
		r.ewma[i] = held
	} else {
		a := r.cfg.EWMAAlpha
		r.ewma[i] = time.Duration(a*float64(held) + (1-a)*float64(r.ewma[i]))
	}
	r.busy[i] += held
}

// MarkDown blacklists a worker until RecoverAfter elapses (the fault
// injector's crash signal lands here via WatchFaults).
func (r *Router) MarkDown(node, gpu int) {
	r.downUntil[r.widx(node, gpu)] = r.c.Engine.Now() + r.cfg.RecoverAfter
	// Health must be visible to the next pick even inside a refresh window.
	r.fresh = false
}

// WatchFaults subscribes the router to the injector's GPU crash signals, so
// picks fail over away from crashed workers while they re-materialize.
func (r *Router) WatchFaults(in *faults.Injector) {
	in.OnGPUCrash(func(node, gpu int) {
		r.Stats.Crashes++
		r.MarkDown(node, gpu)
	})
}

// poolChanged is the App.OnPoolChange hook: an elastic pool grew, shrank, or
// failed over. The cached snapshot is invalidated so the next pick sees the
// new membership, and workers arriving with no service history get their
// EWMA seeded from the mean of the pool's seasoned workers — a zero EWMA
// scores as infinitely fast and would aim the whole burst that triggered the
// scale-out at the cold replica.
func (r *Router) poolChanged(si scheduler.StageInst, pool []fabric.Location) {
	r.Stats.PoolChanges++
	var sum time.Duration
	n := 0
	for _, loc := range pool {
		if loc.IsHost() {
			return
		}
		if e := r.ewma[r.widx(loc.Node, loc.GPU)]; e > 0 {
			sum += e
			n++
		}
	}
	if n > 0 {
		mean := sum / time.Duration(n)
		for _, loc := range pool {
			if i := r.widx(loc.Node, loc.GPU); r.ewma[i] == 0 {
				r.ewma[i] = mean
				r.Stats.Seeded++
			}
		}
	}
	r.fresh = false
}

// Snapshot returns the current cached worker states, refreshing if stale
// (exported for tests and the -router-stats diagnostics).
func (r *Router) Snapshot() []WorkerState {
	now := r.c.Engine.Now()
	if r.fresh && now-r.snapAt < r.cfg.Refresh {
		return r.snap
	}
	elapsed := now - r.snapAt
	for node := 0; node < r.c.Fabric.NumNodes(); node++ {
		for gpu := 0; gpu < r.numGPUs; gpu++ {
			i := r.widx(node, gpu)
			waiting, held := r.c.GPULoad(node, gpu)
			util := 0.0
			if elapsed > 0 {
				util = float64(r.busy[i]-r.lastBusy[i]) / float64(elapsed)
				if util > 1 {
					util = 1
				}
			}
			r.lastBusy[i] = r.busy[i]
			r.pending[i] = 0
			r.snap[i] = WorkerState{
				Node:        node,
				GPU:         gpu,
				Healthy:     r.downUntil[i] <= now,
				FreeMem:     r.c.Fabric.Mem(fabric.Location{Node: node, GPU: gpu}).Free(),
				QueueDepth:  waiting + held,
				EWMALatency: r.ewma[i],
				Utilization: util,
			}
		}
	}
	r.snapAt = now
	r.fresh = true
	r.Stats.Refreshes++
	return r.snap
}

// route is the App.Route hook: it maps the stage's instance pool onto worker
// states and delegates the pick to RouteRequest. Host pools (cFns) and
// no-healthy-worker picks decline, falling back to round-robin — a
// simulation must still run every request, so total failure degrades to the
// placement-only path and is counted in Stats.Fallbacks.
func (r *Router) route(si scheduler.StageInst, seq int64, pool []fabric.Location) (int, bool) {
	snap := r.Snapshot()
	r.cstates = r.cstates[:0]
	unhealthy := 0
	for _, loc := range pool {
		if loc.IsHost() {
			return 0, false
		}
		ws := snap[r.widx(loc.Node, loc.GPU)]
		ws.QueueDepth += r.pending[r.widx(loc.Node, loc.GPU)]
		if !ws.Healthy {
			unhealthy++
		}
		r.cstates = append(r.cstates, ws)
	}
	r.Stats.Decisions++
	if unhealthy > 0 {
		r.Stats.Failovers++
		r.Stats.Retries += int64(unhealthy)
	}
	idx, err := RouteRequest(r.cstates, r.cfg, seq, r.rng)
	if err != nil {
		r.Stats.Fallbacks++
		return 0, false
	}
	r.pending[r.widx(pool[idx].Node, pool[idx].GPU)]++
	if ev := r.tr.InstantOn(obs.TrackSched, obs.CatPlace, "route:"+si.Stage); ev != 0 {
		r.tr.SetAttrInt(ev, "seq", seq)
		r.tr.SetAttrInt(ev, "node", int64(pool[idx].Node))
		r.tr.SetAttrInt(ev, "gpu", int64(pool[idx].GPU))
		r.tr.SetAttrInt(ev, "queue", int64(r.cstates[idx].QueueDepth))
	}
	return idx, true
}
