// Package router is the serving front door: it admits requests to the
// cluster through multi-objective worker scoring instead of the placer's
// implicit round-robin. Workers (GPUs) are scored from a cached metrics
// snapshot — free memory, queue depth, EWMA service latency, utilization —
// refreshed in virtual time; picks go weighted-random among the top-k to
// avoid thundering herds, skip unhealthy workers (fault-injector crash
// signals), and carry per-request QoS classes into the workers' compute-slot
// queues. The scoring core below is pure (no engine, no cluster) so the
// property and fuzz harnesses can pin its behavior directly.
package router

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"time"
)

// ErrNoWorker is returned when routing finds no healthy placement: zero
// workers, or every candidate unhealthy.
var ErrNoWorker = errors.New("router: no healthy worker")

// WorkerState is one worker's entry in the cached metrics snapshot.
type WorkerState struct {
	// Node and GPU locate the worker.
	Node, GPU int
	// Healthy is false while the worker is blacklisted after a crash.
	Healthy bool
	// FreeMem is the GPU's free memory in bytes (more is better).
	FreeMem int64
	// QueueDepth counts compute-slot waiters plus held slots (less is
	// better).
	QueueDepth int
	// EWMALatency smooths recent compute-slot service times (less is
	// better).
	EWMALatency time.Duration
	// Utilization is the busy fraction since the previous snapshot, in
	// [0,1] (less is better). NaN or out-of-range inputs are sanitized to
	// the worst value rather than poisoning the scores.
	Utilization float64
	// Affinity is the requesting session's decayed affinity for this worker
	// in [0,1]: 1 when the session's state (KV cache, warm replica) was
	// touched here just now, decaying to 0 with staleness. Zero for workers
	// the session never used and for sessionless requests. Unlike the other
	// metrics it is already normalized, so Score uses it raw (no min-max):
	// a lone pinned candidate must still outscore strangers.
	Affinity float64
}

// Weights are the scorer's multi-objective coefficients. Negative, NaN, or
// infinite weights count as zero; all-zero weights score every worker
// equally (uniform scoring, the differential oracle's configuration).
type Weights struct {
	FreeMem, Queue, Latency, Util float64
	// Session weights the session-affinity term (WorkerState.Affinity).
	// Zero — the default, and every pre-affinity configuration — leaves
	// scoring byte-identical to the affinity-free scorer.
	Session float64
}

// saneWeight clamps a weight to a usable non-negative finite value.
func saneWeight(w float64) float64 {
	if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
		return 0
	}
	return w
}

// saneUtil maps utilization onto [0,1], sending NaN and +Inf to the worst
// value (fully busy) and negative or -Inf to idle.
func saneUtil(u float64) float64 {
	if math.IsNaN(u) || math.IsInf(u, 1) {
		return 1
	}
	if u < 0 || math.IsInf(u, -1) {
		return 0
	}
	if u > 1 {
		return 1
	}
	return u
}

// Score returns each worker's score in [0,1]: a weighted sum of per-metric
// min-max normalizations over the candidate set (free memory scored high =
// good; queue depth, EWMA latency, and utilization inverted). A metric with
// no spread across candidates contributes a neutral 0.5, and an all-zero
// weight vector scores every worker 0.5 — uniform.
func Score(states []WorkerState, w Weights) []float64 {
	n := len(states)
	scores := make([]float64, n)
	if n == 0 {
		return scores
	}
	wf, wq, wl, wu := saneWeight(w.FreeMem), saneWeight(w.Queue), saneWeight(w.Latency), saneWeight(w.Util)
	ws := saneWeight(w.Session)
	sumW := wf + wq + wl + wu + ws
	if sumW == 0 {
		for i := range scores {
			scores[i] = 0.5
		}
		return scores
	}
	// Per-metric bounds over the candidate set.
	var loF, hiF, loQ, hiQ, loL, hiL, loU, hiU float64
	for i, s := range states {
		f := float64(max64(s.FreeMem, 0))
		q := float64(maxInt(s.QueueDepth, 0))
		l := float64(max64(int64(s.EWMALatency), 0))
		u := saneUtil(s.Utilization)
		if i == 0 {
			loF, hiF, loQ, hiQ, loL, hiL, loU, hiU = f, f, q, q, l, l, u, u
			continue
		}
		loF, hiF = math.Min(loF, f), math.Max(hiF, f)
		loQ, hiQ = math.Min(loQ, q), math.Max(hiQ, q)
		loL, hiL = math.Min(loL, l), math.Max(hiL, l)
		loU, hiU = math.Min(loU, u), math.Max(hiU, u)
	}
	norm := func(v, lo, hi float64) float64 {
		if hi <= lo {
			return 0.5
		}
		return (v - lo) / (hi - lo)
	}
	for i, s := range states {
		fm := norm(float64(max64(s.FreeMem, 0)), loF, hiF)
		q := 1 - norm(float64(maxInt(s.QueueDepth, 0)), loQ, hiQ)
		l := 1 - norm(float64(max64(int64(s.EWMALatency), 0)), loL, hiL)
		u := 1 - norm(saneUtil(s.Utilization), loU, hiU)
		// Affinity is used raw (already in [0,1], saneUtil reuses the clamp):
		// min-max normalizing it would hand every candidate 0.5 whenever the
		// session has no pin among them, and 1.0 to the pinned worker even as
		// its affinity decays toward zero.
		aff := saneUtil(s.Affinity)
		scores[i] = (wf*fm + wq*q + wl*l + wu*u + ws*aff) / sumW
	}
	return scores
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// RouteRequest picks a worker index (into states) for request seq:
//
//  1. unhealthy workers are filtered out (ErrNoWorker if none remain);
//  2. the survivors are scored (Score) and their order rotated by seq, so
//     equal scores degrade to round-robin — with k=1 and uniform weights the
//     pick is exactly seq mod workers, the cluster's placement-only
//     admission (the differential oracle relies on this);
//  3. a stable sort by descending score keeps the rotation as tie-break;
//  4. the pick goes weighted-random (score-proportional with a floor, so
//     near-ties spread instead of herding) among the top k.
//
// rng is consulted only when more than one candidate survives to step 4; a
// nil rng degrades to the top-scored candidate. The function never panics on
// adversarial snapshots — that is FuzzRouteRequest's contract.
func RouteRequest(states []WorkerState, cfg Config, seq int64, rng *rand.Rand) (int, error) {
	healthy := make([]int, 0, len(states))
	for i := range states {
		if states[i].Healthy {
			healthy = append(healthy, i)
		}
	}
	n := len(healthy)
	if n == 0 {
		return 0, ErrNoWorker
	}
	sub := make([]WorkerState, n)
	for j, i := range healthy {
		sub[j] = states[i]
	}
	scores := Score(sub, cfg.Weights)

	// Rotate the candidate order by seq: ties resolve round-robin.
	start := int(((seq % int64(n)) + int64(n)) % int64(n))
	order := make([]int, n)
	for j := range order {
		order[j] = (start + j) % n
	}
	sort.SliceStable(order, func(a, b int) bool { return scores[order[a]] > scores[order[b]] })

	k := cfg.TopK
	if k <= 0 {
		k = 1
	}
	if k > n {
		k = n
	}
	if k == 1 || rng == nil {
		return healthy[order[0]], nil
	}
	// An idle top candidate cannot herd — it starts serving immediately and
	// the pending discount makes the very next pick see it busy — so take it
	// deterministically; randomizing here only adds placement variance at
	// low load.
	if sub[order[0]].QueueDepth <= 0 {
		return healthy[order[0]], nil
	}
	// Weighted-random among the top k. The floor keeps zero-scored
	// candidates drawable so a herd cannot form on the single best worker.
	const floor = 0.05
	total := 0.0
	for _, j := range order[:k] {
		total += scores[j] + floor
	}
	draw := rng.Float64() * total
	for _, j := range order[:k] {
		draw -= scores[j] + floor
		if draw < 0 {
			return healthy[j], nil
		}
	}
	return healthy[order[k-1]], nil
}
