package router_test

import (
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"grouter/internal/router"
)

// decodeWorkers turns fuzz bytes into a worker snapshot plus routing config:
// a 17-byte header (weights, top-k, seq) followed by 26-byte worker records.
// The decoder is intentionally permissive — truncated records, NaN bit
// patterns, and negative values all pass straight through to RouteRequest,
// which must tolerate them.
func decodeWorkers(data []byte) ([]router.WorkerState, router.Config, int64) {
	f64 := func(off int) float64 {
		if off+8 > len(data) {
			return 0
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(data[off : off+8]))
	}
	i64 := func(off int) int64 {
		if off+8 > len(data) {
			return 0
		}
		return int64(binary.LittleEndian.Uint64(data[off : off+8]))
	}
	cfg := router.Config{
		Weights: router.Weights{FreeMem: f64(0), Queue: f64(8) / 4, Latency: f64(8) / 2, Util: f64(8)},
		TopK:    int(int8(byteAt(data, 16))),
	}
	seq := i64(8)
	const hdr, rec = 17, 26
	var states []router.WorkerState
	for off := hdr; off+rec <= len(data) && len(states) < 64; off += rec {
		states = append(states, router.WorkerState{
			Node:        int(byteAt(data, off)) % 8,
			GPU:         int(byteAt(data, off+1)) % 8,
			Healthy:     byteAt(data, off+1)&1 == 1,
			FreeMem:     i64(off + 2),
			QueueDepth:  int(int32(binary.LittleEndian.Uint32(data[off+10 : off+14]))),
			EWMALatency: time.Duration(i64(off + 14)),
			Utilization: f64(off + 18),
		})
	}
	return states, cfg, seq
}

func byteAt(data []byte, i int) byte {
	if i >= len(data) {
		return 0
	}
	return data[i]
}

// FuzzRouteRequest pins the routing core's safety contract on adversarial
// snapshots: it never panics, a nil error always comes with a valid healthy
// index, and every failure is the typed ErrNoWorker.
func FuzzRouteRequest(f *testing.F) {
	// Zero workers (header only).
	zero := make([]byte, 17)
	f.Add(zero)
	// Two workers, both unhealthy (second byte even ⇒ Healthy false).
	allDown := make([]byte, 17+2*26)
	f.Add(allDown)
	// One healthy worker with NaN utilization and negative queue depth.
	nan := make([]byte, 17+26)
	nan[17+1] = 1 // healthy
	binary.LittleEndian.PutUint64(nan[17+18:], math.Float64bits(math.NaN()))
	binary.LittleEndian.PutUint32(nan[17+10:], 0xFFFFFFFF) // QueueDepth -1
	f.Add(nan)
	// Infinite weights, huge seq, negative top-k.
	hostile := make([]byte, 17+3*26)
	binary.LittleEndian.PutUint64(hostile[0:], math.Float64bits(math.Inf(1)))
	binary.LittleEndian.PutUint64(hostile[8:], 0xFFFFFFFFFFFFFFFF)
	hostile[16] = 0x80 // TopK = -128
	hostile[17+1] = 1
	f.Add(hostile)

	f.Fuzz(func(t *testing.T, data []byte) {
		states, cfg, seq := decodeWorkers(data)
		rng := rand.New(rand.NewSource(1))
		idx, err := router.RouteRequest(states, cfg, seq, rng)
		if err != nil {
			if !errors.Is(err, router.ErrNoWorker) {
				t.Fatalf("error is not ErrNoWorker: %v", err)
			}
			for i := range states {
				if states[i].Healthy {
					t.Fatalf("ErrNoWorker with healthy worker %d present", i)
				}
			}
			return
		}
		if idx < 0 || idx >= len(states) {
			t.Fatalf("index %d out of range [0,%d)", idx, len(states))
		}
		if !states[idx].Healthy {
			t.Fatalf("picked unhealthy worker %d", idx)
		}
		// Scores backing the pick must be finite and bounded.
		for i, s := range router.Score(states, cfg.Weights) {
			if math.IsNaN(s) || s < 0 || s > 1 {
				t.Fatalf("score[%d] = %v out of [0,1]", i, s)
			}
		}
	})
}
