package router_test

import (
	"reflect"
	"testing"
	"time"

	"grouter/internal/cluster"
	"grouter/internal/fabric"
	"grouter/internal/models"
	"grouter/internal/router"
	"grouter/internal/sim"
	"grouter/internal/topology"
)

// newPDService builds a one-node H800 cluster, deploys llama-7b with the
// given pool partition, and installs the PD policy.
func newPDService(t *testing.T, cfg cluster.PDConfig, pol router.PDPolicyConfig) (*sim.Engine, *cluster.LLMService, *router.PDRouter) {
	t.Helper()
	e := sim.NewEngine()
	c := cluster.New(e, topology.H800x8(), 1, grouterPlane)
	if cfg.LLM == nil {
		cfg.LLM = models.MustLookupLLM("llama-7b")
	}
	svc, err := c.DeployLLM(cfg)
	if err != nil {
		t.Fatalf("DeployLLM: %v", err)
	}
	return e, svc, router.NewPD(svc, pol)
}

// recordDecisions wraps the installed policy to capture every decision.
func recordDecisions(svc *cluster.LLMService) *[]cluster.PDDecision {
	var out []cluster.PDDecision
	orig := svc.Route
	svc.Route = func(req *cluster.Request, seq int64) cluster.PDDecision {
		d := orig(req, seq)
		out = append(out, d)
		return d
	}
	return &out
}

// TestPDPolicyLongShortSplit: PDAuto requests split on the prompt-length
// threshold — long prompts to prefill/decode pairs, short to the mixed pool.
func TestPDPolicyLongShortSplit(t *testing.T) {
	e, svc, rt := newPDService(t, cluster.PDConfig{PrefillWorkers: 2, DecodeWorkers: 2, MixedWorkers: 2},
		router.DefaultPDPolicy())
	defer e.Close()
	decs := recordDecisions(svc)
	e.Go("driver", func(p *sim.Proc) {
		for i := 0; i < 12; i++ {
			prompt := 256
			if i%2 == 0 {
				prompt = 2048
			}
			sig, err := svc.Submit(cluster.Request{PromptTokens: prompt, OutTokens: 4})
			if err != nil {
				t.Errorf("Submit: %v", err)
				return
			}
			sig.Wait(p)
		}
	})
	e.Run(0)
	if rt.Stats.Long != 6 || rt.Stats.Short != 6 {
		t.Fatalf("long/short = %d/%d, want 6/6", rt.Stats.Long, rt.Stats.Short)
	}
	if rt.Stats.Disaggregated != 6 || rt.Stats.Colocated != 6 || rt.Stats.Overflows != 0 {
		t.Fatalf("stats = %+v, want 6 disaggregated, 6 colocated, 0 overflow", rt.Stats)
	}
	mixed := map[fabric.Location]bool{}
	for _, loc := range svc.MixedPool {
		mixed[loc] = true
	}
	for i, d := range *decs {
		if i%2 == 0 {
			if d.Mode != cluster.PDDisaggregated {
				t.Errorf("decision %d: long prompt mode %v, want disaggregated", i, d.Mode)
			}
		} else if d.Mode != cluster.PDColocated || !mixed[d.Decode] {
			t.Errorf("decision %d: short prompt = %+v, want colocated on mixed pool", i, d)
		}
	}
	if svc.Stats.Disaggregated != 6 || svc.Stats.Colocated != 6 {
		t.Errorf("service executed %+v, want 6/6 split", svc.Stats)
	}
}

// TestPDPolicyExplicitModes: explicit Request.PD overrides the prompt-length
// heuristic in both directions.
func TestPDPolicyExplicitModes(t *testing.T) {
	e, svc, rt := newPDService(t, cluster.PDConfig{PrefillWorkers: 1, DecodeWorkers: 1, MixedWorkers: 1},
		router.DefaultPDPolicy())
	defer e.Close()
	e.Go("driver", func(p *sim.Proc) {
		long, _ := svc.Submit(cluster.Request{PD: cluster.PDColocated, PromptTokens: 4096, OutTokens: 4})
		long.Wait(p)
		short, _ := svc.Submit(cluster.Request{PD: cluster.PDDisaggregated, PromptTokens: 64, OutTokens: 4})
		short.Wait(p)
	})
	e.Run(0)
	if rt.Stats.Colocated != 1 || rt.Stats.Disaggregated != 1 {
		t.Errorf("stats = %+v, want one of each mode", rt.Stats)
	}
	if rt.Stats.Long != 0 || rt.Stats.Short != 0 {
		t.Errorf("explicit modes counted as auto: %+v", rt.Stats)
	}
	if svc.Stats.Colocated != 1 || svc.Stats.Disaggregated != 1 {
		t.Errorf("service executed %+v, want one of each", svc.Stats)
	}
}

// TestPDPolicyOverflow: a burst of long-prompt PDAuto requests saturates the
// single prefill/decode pair and overflows to the mixed pool instead of
// queueing.
func TestPDPolicyOverflow(t *testing.T) {
	e, svc, rt := newPDService(t, cluster.PDConfig{PrefillWorkers: 1, DecodeWorkers: 1, MixedWorkers: 2},
		router.PDPolicyConfig{SaturationDepth: 2, MaxInflightKV: 1 << 30})
	defer e.Close()
	for i := 0; i < 12; i++ {
		e.Schedule(0, func() {
			if _, err := svc.Submit(cluster.Request{PromptTokens: 4096, OutTokens: 4}); err != nil {
				t.Errorf("Submit: %v", err)
			}
		})
	}
	e.Run(0)
	if svc.Completed != 12 {
		t.Fatalf("completed %d, want 12", svc.Completed)
	}
	if rt.Stats.Overflows == 0 {
		t.Fatalf("no overflows under a 12-request burst on depth-2 pools: %+v", rt.Stats)
	}
	if rt.Stats.Disaggregated == 0 {
		t.Fatalf("everything overflowed; want some disaggregated first: %+v", rt.Stats)
	}
	if svc.Stats.Overflows != rt.Stats.Overflows {
		t.Errorf("service overflow count %d != router %d", svc.Stats.Overflows, rt.Stats.Overflows)
	}
}

// TestPDPolicyInflightKVOverflow: with the transfer path capped at one
// in-flight handoff, a long request arriving during another's KV handoff is
// downgraded to colocated.
func TestPDPolicyInflightKVOverflow(t *testing.T) {
	e, svc, rt := newPDService(t, cluster.PDConfig{PrefillWorkers: 1, DecodeWorkers: 1, MixedWorkers: 1},
		router.PDPolicyConfig{SaturationDepth: 1 << 30, MaxInflightKV: 1})
	defer e.Close()
	submit := func() {
		if _, err := svc.Submit(cluster.Request{PromptTokens: 4096, OutTokens: 4}); err != nil {
			t.Errorf("Submit: %v", err)
		}
	}
	e.Schedule(0, submit)
	// The first request's handoff is in flight from prefill completion until
	// the decode-side Get finishes; admit the second inside that window.
	e.Schedule(svc.Model.Prefill(4096)+time.Millisecond, submit)
	e.Run(0)
	if rt.Stats.Overflows != 1 {
		t.Fatalf("overflows = %d, want 1 (second request hits MaxInflightKV): %+v", rt.Stats.Overflows, rt.Stats)
	}
	if svc.Completed != 2 || svc.Stats.KVTransfers != 1 {
		t.Errorf("completed %d transfers %d, want 2/1", svc.Completed, svc.Stats.KVTransfers)
	}
}

// TestPDPolicySessionAffinity: a session's decode picks pin to one decode
// worker while it is unsaturated, and abandon the pin once it saturates.
func TestPDPolicySessionAffinity(t *testing.T) {
	e, svc, rt := newPDService(t, cluster.PDConfig{PrefillWorkers: 1, DecodeWorkers: 3, MixedWorkers: 1},
		router.PDPolicyConfig{SessionAffinity: true, SaturationDepth: 4, MaxInflightKV: 1 << 30})
	defer e.Close()
	decs := recordDecisions(svc)
	e.Go("driver", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			sig, _ := svc.Submit(cluster.Request{PD: cluster.PDDisaggregated, PromptTokens: 2048, OutTokens: 4, Session: 5})
			sig.Wait(p)
		}
	})
	e.Run(0)
	pinned := svc.DecodePool[5%3]
	if rt.Stats.Affinity != 5 {
		t.Fatalf("affinity = %d, want 5", rt.Stats.Affinity)
	}
	for i, d := range *decs {
		if d.Decode != pinned {
			t.Errorf("decision %d decode = %v, want pinned %v", i, d.Decode, pinned)
		}
	}

	// Saturate the pinned worker with a same-instant burst: pending picks
	// push its load past the threshold, and later decisions spill to the
	// least-loaded decode worker.
	e2, svc2, rt2 := newPDService(t, cluster.PDConfig{PrefillWorkers: 1, DecodeWorkers: 3, MixedWorkers: 1},
		router.PDPolicyConfig{SessionAffinity: true, SaturationDepth: 2, MaxInflightKV: 1 << 30})
	defer e2.Close()
	decs2 := recordDecisions(svc2)
	for i := 0; i < 10; i++ {
		e2.Schedule(0, func() {
			if _, err := svc2.Submit(cluster.Request{PD: cluster.PDDisaggregated, PromptTokens: 2048, OutTokens: 4, Session: 5}); err != nil {
				t.Errorf("Submit: %v", err)
			}
		})
	}
	e2.Run(0)
	if rt2.Stats.Affinity >= 10 {
		t.Fatalf("affinity = %d, want < 10 (pin abandoned at saturation)", rt2.Stats.Affinity)
	}
	pinned2 := svc2.DecodePool[5%3]
	spilled := false
	for _, d := range *decs2 {
		if d.Decode != pinned2 {
			spilled = true
		}
	}
	if !spilled {
		t.Error("no decode pick spilled off the saturated pinned worker")
	}
}

// TestPDPolicyDefaultsAndColocatedOnlyService: a zero config fills the
// production defaults (split at 1024), and a service with no PD pools routes
// everything colocated.
func TestPDPolicyDefaultsAndColocatedOnlyService(t *testing.T) {
	e, svc, rt := newPDService(t, cluster.PDConfig{PrefillWorkers: 1, DecodeWorkers: 1, MixedWorkers: 1},
		router.PDPolicyConfig{})
	defer e.Close()
	e.Go("driver", func(p *sim.Proc) {
		a, _ := svc.Submit(cluster.Request{PromptTokens: 1024, OutTokens: 4})
		a.Wait(p)
		b, _ := svc.Submit(cluster.Request{PromptTokens: 1023, OutTokens: 4})
		b.Wait(p)
	})
	e.Run(0)
	if rt.Stats.Long != 1 || rt.Stats.Short != 1 {
		t.Errorf("default threshold: long/short = %d/%d, want 1/1 at 1024", rt.Stats.Long, rt.Stats.Short)
	}

	e2, svc2, rt2 := newPDService(t, cluster.PDConfig{MixedWorkers: 4}, router.DefaultPDPolicy())
	defer e2.Close()
	e2.Go("driver", func(p *sim.Proc) {
		sig, _ := svc2.Submit(cluster.Request{PromptTokens: 8192, OutTokens: 4})
		sig.Wait(p)
	})
	e2.Run(0)
	if rt2.Stats.Colocated != 1 || rt2.Stats.Disaggregated != 0 {
		t.Errorf("colocated-only service stats = %+v, want 1 colocated", rt2.Stats)
	}
	if svc2.Stats.Colocated != 1 {
		t.Errorf("service executed %+v, want 1 colocated", svc2.Stats)
	}
}

// TestPDRoutedReplayDeterministic: the routed PD stack replays
// byte-identically across two independent runs.
func TestPDRoutedReplayDeterministic(t *testing.T) {
	run := func() (cluster.ReplayStats, []time.Duration, router.PDRouterStats, cluster.PDStats) {
		e, svc, rt := newPDService(t, cluster.PDConfig{PrefillWorkers: 2, DecodeWorkers: 3, MixedWorkers: 3},
			router.DefaultPDPolicy())
		defer e.Close()
		arrivals := make([]time.Duration, 400)
		for i := range arrivals {
			arrivals[i] = time.Duration(i) * 700 * time.Microsecond
		}
		st, err := svc.Replay(arrivals, cluster.ReplaySpec{
			Quantum: 5 * time.Millisecond,
			RequestAt: func(i int) cluster.Request {
				if i%4 == 0 {
					return cluster.Request{PromptTokens: 4096, OutTokens: 8, Session: int64(i % 32)}
				}
				return cluster.Request{PromptTokens: 256, OutTokens: 8}
			},
		})
		if err != nil {
			t.Fatalf("Replay: %v", err)
		}
		return st, svc.E2E.Samples(), rt.Stats, svc.Stats
	}
	stA, sA, rA, cA := run()
	stB, sB, rB, cB := run()
	if !reflect.DeepEqual(stA, stB) || !reflect.DeepEqual(rA, rB) || !reflect.DeepEqual(cA, cB) {
		t.Errorf("routed PD replay diverged:\n%+v %+v %+v\n%+v %+v %+v", stA, rA, cA, stB, rB, cB)
	}
	if !reflect.DeepEqual(sA, sB) {
		t.Error("per-request latency samples diverged")
	}
	if stA.Completed != 400 {
		t.Fatalf("completed %d, want 400", stA.Completed)
	}
	if rA.Disaggregated == 0 || rA.Colocated == 0 {
		t.Errorf("degenerate routing mix: %+v", rA)
	}
}
