package router_test

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"grouter/internal/router"
)

// randomStates generates n workers with metrics drawn from rng, all healthy.
func randomStates(rng *rand.Rand, n int) []router.WorkerState {
	out := make([]router.WorkerState, n)
	for i := range out {
		out[i] = router.WorkerState{
			Node:        i / 8,
			GPU:         i % 8,
			Healthy:     true,
			FreeMem:     rng.Int63n(32 << 30),
			QueueDepth:  rng.Intn(64),
			EWMALatency: time.Duration(rng.Int63n(int64(time.Second))),
			Utilization: rng.Float64(),
		}
	}
	return out
}

// TestScoreBoundsProperty: every score is a weighted mean of normalized
// terms, so it must land in [0,1] for any candidate set and any weights —
// including hostile ones (negative, NaN, infinite).
func TestScoreBoundsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	weights := []router.Weights{
		{},
		{FreeMem: 1, Queue: 4, Latency: 2, Util: 1},
		{FreeMem: 100},
		{Queue: 0.001},
		{FreeMem: math.NaN(), Queue: 1},
		{Latency: math.Inf(1), Util: 2},
		{FreeMem: -5, Queue: -1, Latency: 3},
	}
	for trial := 0; trial < 200; trial++ {
		states := randomStates(rng, 1+rng.Intn(32))
		w := weights[trial%len(weights)]
		for i, s := range router.Score(states, w) {
			if math.IsNaN(s) || s < 0 || s > 1 {
				t.Fatalf("trial %d: score[%d] = %v out of [0,1] (weights %+v)", trial, i, s, w)
			}
		}
	}
}

// TestScoreMonotonicityProperty: a worker strictly better on every metric
// (more free memory, shorter queue, lower latency, lower utilization) must
// score strictly higher than a strictly worse one, for any all-positive
// weights.
func TestScoreMonotonicityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		states := randomStates(rng, 2+rng.Intn(16))
		// Make worker 0 strictly dominate worker 1 on every metric.
		states[0].FreeMem = states[1].FreeMem + 1 + rng.Int63n(1<<30)
		states[1].QueueDepth = states[0].QueueDepth + 1 + rng.Intn(16)
		states[1].EWMALatency = states[0].EWMALatency + time.Duration(1+rng.Int63n(int64(time.Second)))
		states[0].Utilization = states[1].Utilization * rng.Float64() * 0.99
		w := router.Weights{
			FreeMem: 0.1 + rng.Float64(),
			Queue:   0.1 + rng.Float64(),
			Latency: 0.1 + rng.Float64(),
			Util:    0.1 + rng.Float64(),
		}
		scores := router.Score(states, w)
		if !(scores[0] > scores[1]) {
			t.Fatalf("trial %d: dominating worker scored %v, dominated %v (weights %+v)",
				trial, scores[0], scores[1], w)
		}
	}
}

// TestScoreUniformWhenWeightless: all-zero (or all-invalid) weights must
// score every worker exactly 0.5 — the uniform configuration the
// differential oracle depends on.
func TestScoreUniformWhenWeightless(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, w := range []router.Weights{{}, {FreeMem: math.NaN(), Queue: -1, Latency: math.Inf(-1)}} {
		for _, s := range router.Score(randomStates(rng, 12), w) {
			if s != 0.5 {
				t.Fatalf("weightless score = %v, want 0.5 (weights %+v)", s, w)
			}
		}
	}
}

// TestRouteRequestUniformIsRoundRobin: with k=1 and zero weights the pick is
// exactly seq mod workers — the closed-form half of the differential oracle.
func TestRouteRequestUniformIsRoundRobin(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	states := randomStates(rng, 6)
	cfg := router.Uniform()
	for seq := int64(0); seq < 50; seq++ {
		idx, err := router.RouteRequest(states, cfg, seq, rng)
		if err != nil {
			t.Fatalf("seq %d: %v", seq, err)
		}
		if want := int(seq % 6); idx != want {
			t.Fatalf("seq %d: picked %d, want round-robin %d", seq, idx, want)
		}
	}
}

// TestRouteRequestSkipsUnhealthy: unhealthy workers must never be picked,
// and the round-robin tie-break runs over the healthy survivors.
func TestRouteRequestSkipsUnhealthy(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	states := randomStates(rng, 8)
	down := map[int]bool{1: true, 4: true, 5: true}
	for i := range states {
		states[i].Healthy = !down[i]
	}
	cfg := router.DefaultConfig()
	for seq := int64(0); seq < 100; seq++ {
		idx, err := router.RouteRequest(states, cfg, seq, rng)
		if err != nil {
			t.Fatalf("seq %d: %v", seq, err)
		}
		if down[idx] {
			t.Fatalf("seq %d: picked blacklisted worker %d", seq, idx)
		}
	}
}

// TestTopKPickDeterminism: with a fixed seed, the full scored pick sequence
// (weighted-random among top-k over evolving snapshots) must be identical
// across 10 independent runs.
func TestTopKPickDeterminism(t *testing.T) {
	cfg := router.DefaultConfig()
	run := func() []int {
		rng := rand.New(rand.NewSource(23))
		gen := rand.New(rand.NewSource(29))
		states := randomStates(gen, 10)
		picks := make([]int, 0, 300)
		for seq := int64(0); seq < 300; seq++ {
			// Evolve the snapshot deterministically so picks exercise
			// changing scores, not one frozen ranking.
			j := int(seq) % len(states)
			states[j].QueueDepth = gen.Intn(64)
			states[j].EWMALatency = time.Duration(gen.Int63n(int64(time.Second)))
			idx, err := router.RouteRequest(states, cfg, seq, rng)
			if err != nil {
				t.Fatalf("seq %d: %v", seq, err)
			}
			picks = append(picks, idx)
		}
		return picks
	}
	first := run()
	for i := 0; i < 9; i++ {
		if got := run(); !reflect.DeepEqual(got, first) {
			t.Fatalf("run %d diverged from the first pick sequence", i+2)
		}
	}
	// The weighted-random stage must actually spread: more than one worker
	// picked across the sequence.
	seen := map[int]bool{}
	for _, p := range first {
		seen[p] = true
	}
	if len(seen) < 2 {
		t.Errorf("top-%d weighted-random picked only %d distinct workers", cfg.TopK, len(seen))
	}
}

// TestRouteRequestNilRngTakesTop: a nil rng must degrade to the top-scored
// candidate instead of panicking.
func TestRouteRequestNilRngTakesTop(t *testing.T) {
	states := []router.WorkerState{
		{Healthy: true, QueueDepth: 50},
		{Healthy: true, QueueDepth: 1},
	}
	cfg := router.DefaultConfig()
	idx, err := router.RouteRequest(states, cfg, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 1 {
		t.Errorf("picked %d, want the short-queue worker 1", idx)
	}
}
