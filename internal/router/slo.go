package router

import (
	"math"
	"time"

	"grouter/internal/cluster"
)

// SLO-aware admission control. The router installs an AdmitFn on its app
// when the configuration carries at least one class budget; every submission
// then passes through Admit below before launching. The predictor estimates
// the completion time a request admitted now would see from the same cached
// worker snapshot the scorer picks from (queue depth with the pending-pick
// discount folded in, times the worker's EWMA service latency), and a
// request predicted to bust its class budget is parked in a bounded
// virtual-time delay queue — or shed once the bound is spent. The functions
// here are pure (no engine, no cluster state) so the property and fuzz
// harnesses can pin their behavior directly.

// SLOClass is one QoS class's admission objective.
type SLOClass struct {
	// Budget is the class's end-to-end latency objective, counted from
	// submission. Zero (or negative) disables admission control for the
	// class — its requests always run.
	Budget time.Duration
	// MaxDelay bounds a request's cumulative delay-queue time: a request
	// still predicted to miss after waiting MaxDelay is shed. Zero sheds
	// predicted misses immediately (no deferral).
	MaxDelay time.Duration
}

// SLOConfig is the router's per-class admission configuration. The zero
// value disables admission control entirely.
type SLOConfig struct {
	// Low and High configure the QoSLow and QoSHigh classes.
	Low, High SLOClass
	// Recheck is the delay-queue re-admission period (default 1ms): a
	// deferred request re-runs admission every Recheck until it is admitted
	// or its class MaxDelay is spent.
	Recheck time.Duration
	// Window is the per-class attainment ring size — how many recent
	// admission decisions the predicted-attainment feedback to the
	// autoscaler averages over (default 64).
	Window int
}

// Enabled reports whether any class carries a budget.
func (c SLOConfig) Enabled() bool { return c.Low.Budget > 0 || c.High.Budget > 0 }

// Class returns the admission objective for one QoS class; unknown classes
// (possible only on the unvalidated internal path) fall back to Low.
func (c SLOConfig) Class(q cluster.QoS) SLOClass {
	if q == cluster.QoSHigh {
		return c.High
	}
	return c.Low
}

// recheck returns the sanitized delay-queue period.
func (c SLOConfig) recheck() time.Duration {
	if c.Recheck <= 0 {
		return time.Millisecond
	}
	return c.Recheck
}

// maxDuration caps predicted completion estimates so arithmetic on
// adversarial snapshots (huge queues × huge EWMAs) saturates instead of
// overflowing.
const maxDuration = time.Duration(math.MaxInt64)

// PredictCompletion estimates the completion time of a request admitted
// against the snapshot now: the minimum over healthy workers of
// (QueueDepth+1) × EWMA service latency — the queued work ahead of the
// request plus its own service, on the emptiest-fastest worker. Queue depths
// include the caller's pending-pick discount when the caller folded it in.
// The estimate is monotone non-decreasing in every worker's queue depth and
// EWMA, saturates at the maximum Duration instead of overflowing, and
// returns the maximum when no healthy worker exists (nothing can complete).
// A worker with no service history (zero EWMA) predicts zero — an optimistic
// cold-start assumption, matching the scorer's treatment of unseasoned
// workers as fast.
func PredictCompletion(states []WorkerState) time.Duration {
	best := maxDuration
	for i := range states {
		if !states[i].Healthy {
			continue
		}
		q := float64(maxInt(states[i].QueueDepth, 0)) + 1
		l := float64(max64(int64(states[i].EWMALatency), 0))
		est := q * l
		if est >= float64(maxDuration) {
			est = float64(maxDuration)
		}
		if d := time.Duration(est); d < best {
			best = d
		}
	}
	return best
}

// anyIdleHealthy reports whether some healthy worker has an empty queue.
func anyIdleHealthy(states []WorkerState) bool {
	for i := range states {
		if states[i].Healthy && states[i].QueueDepth <= 0 {
			return true
		}
	}
	return false
}

// PredictPipeline estimates the completion time of a request that must
// traverse every stage pool in turn: the saturating sum of PredictCompletion
// over the stages. A min over the union of all pools would be wrong — an
// idle worker in a cheap post-processing pool would hide a 200-deep queue at
// the bottleneck stage — so each stage contributes its own emptiest-worker
// estimate. Empty stages contribute nothing; a stage with no healthy worker
// saturates the whole estimate (the pipeline cannot complete).
func PredictPipeline(stages [][]WorkerState) time.Duration {
	var total time.Duration
	for _, st := range stages {
		if len(st) == 0 {
			continue
		}
		p := PredictCompletion(st)
		if p >= maxDuration-total {
			return maxDuration
		}
		total += p
	}
	return total
}

// pipelineIdle reports whether every non-empty stage pool has an idle healthy
// worker — free capacity end to end, where shedding can never help.
func pipelineIdle(stages [][]WorkerState) bool {
	for _, st := range stages {
		if len(st) > 0 && !anyIdleHealthy(st) {
			return false
		}
	}
	return true
}

// Admit is the pure admission decision for one attempt: a request of class q
// that has already waited `waited` in the delay queue, against the given
// worker snapshot (one stage pool). The rules, in order:
//
//  1. a class without a budget always runs;
//  2. a snapshot with an idle healthy worker always runs — shedding while
//     capacity sits free can never improve attainment (the fuzz harness
//     pins this: Admit never sheds when any worker is idle);
//  3. a request predicted to complete within its remaining budget
//     (Budget − waited) runs;
//  4. a predicted miss defers by Recheck while cumulative wait stays inside
//     the class MaxDelay, and is shed once the bound is spent.
//
// The decision is deterministic and never panics on adversarial
// configurations or snapshots — that is FuzzAdmission's contract.
func Admit(states []WorkerState, cfg SLOConfig, q cluster.QoS, waited time.Duration) (cluster.AdmitAction, time.Duration) {
	return AdmitPipeline([][]WorkerState{states}, cfg, q, waited)
}

// AdmitPipeline is Admit over a multi-stage pipeline: the prediction is
// PredictPipeline's per-stage sum, and the idle short-circuit requires free
// capacity at every stage (idle capacity in one pool does not absorb a queue
// in another). Admit is exactly the single-stage special case.
func AdmitPipeline(stages [][]WorkerState, cfg SLOConfig, q cluster.QoS, waited time.Duration) (cluster.AdmitAction, time.Duration) {
	cls := cfg.Class(q)
	if cls.Budget <= 0 {
		return cluster.AdmitRun, 0
	}
	if pipelineIdle(stages) {
		return cluster.AdmitRun, 0
	}
	if waited < 0 {
		waited = 0
	}
	remaining := cls.Budget - waited
	if PredictPipeline(stages) <= remaining {
		return cluster.AdmitRun, 0
	}
	step := cfg.recheck()
	if cls.MaxDelay > 0 && waited+step <= cls.MaxDelay {
		return cluster.AdmitDefer, step
	}
	return cluster.AdmitShed, 0
}
