package router_test

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"grouter/internal/cluster"
	"grouter/internal/fabric"
	"grouter/internal/router"
	"grouter/internal/scheduler"
	"grouter/internal/sim"
	"grouter/internal/topology"
	"grouter/internal/trace"
	"grouter/internal/workflow"
)

// testSLO is the admission configuration the SLO replay tests share: budgets
// calibrated to the driving workflow at the replayOnce load (uncongested p50
// ~9ms), tight deferral bounds so bursty congestion actually sheds.
func testSLO() router.SLOConfig {
	return router.SLOConfig{
		High: router.SLOClass{Budget: 25 * time.Millisecond, MaxDelay: 4 * time.Millisecond},
		Low:  router.SLOClass{Budget: 150 * time.Millisecond, MaxDelay: 20 * time.Millisecond},
	}
}

// sloReplayResult extends replayResult with the per-class completion counts
// the fairness assertions need.
type sloReplayResult struct {
	replayResult
	loCompleted, hiCompleted int
}

// replaySLO is replayOnce with an SLO-enabled scored router and a trace
// carrying both a QoS mix (every 5th request high) and rotating session IDs.
func replaySLO(t *testing.T, pattern trace.Pattern, requests int, cfg router.Config) sloReplayResult {
	t.Helper()
	arrivals := trace.Generate(trace.Spec{
		Pattern:  pattern,
		Duration: time.Duration(float64(requests) / 500 * float64(time.Second)),
		MeanRPS:  500,
		Seed:     42,
	})
	e := sim.NewEngine()
	defer e.Close()
	c := cluster.New(e, topology.DGXV100(), 2, grouterPlane)
	app := c.Deploy(workflow.Driving(), 1, scheduler.Options{Node: 0, SplitAcrossNodes: true})
	app.EnableAutoscale(cluster.DefaultAutoscale())
	rt := router.New(app, cfg)
	st, err := app.Replay(arrivals, cluster.ReplaySpec{
		Quantum: 10 * time.Millisecond,
		RequestAt: func(i int) cluster.Request {
			req := cluster.Request{Session: int64(i%32) + 1}
			if (i+1)%5 == 0 {
				req.QoS = cluster.QoSHigh
			}
			return req
		},
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return sloReplayResult{
		replayResult: replayResult{st: st, samples: app.E2E.Samples(), rs: rt.Stats},
		loCompleted:  app.E2EClass[cluster.QoSLow].Count(),
		hiCompleted:  app.E2EClass[cluster.QoSHigh].Count(),
	}
}

// TestSLOInertConfigMatchesBaseline is the PR's differential oracle: a
// configuration that carries every new knob in its disabled form — SLO window
// and recheck set but no class budget, an affinity TTL but zero session
// weight — must replay byte-identically to the plain scored router on every
// trace pattern. No AdmitFn may be installed (no admission counters), and the
// score stream must not shift (identical per-request samples), proving the
// new subsystems are inert until explicitly enabled.
func TestSLOInertConfigMatchesBaseline(t *testing.T) {
	for _, p := range []trace.Pattern{trace.Sporadic, trace.Periodic, trace.Bursty} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			base := router.DefaultConfig()
			inert := router.DefaultConfig()
			inert.SLO.Window = 32
			inert.SLO.Recheck = 2 * time.Millisecond
			inert.AffinityTTL = 123 * time.Millisecond
			inert.Weights.Session = 0
			a := replayOnce(t, p, 1200, &base, 5, nil)
			b := replayOnce(t, p, 1200, &inert, 5, nil)
			if !reflect.DeepEqual(a.st, b.st) {
				t.Errorf("replay stats diverged:\nbaseline: %+v\ninert-slo: %+v", a.st, b.st)
			}
			if !reflect.DeepEqual(a.samples, b.samples) {
				t.Error("latency samples diverged — disabled SLO/affinity changed behavior")
			}
			if b.rs.Admits != 0 || b.rs.Defers != 0 || b.rs.ShedLow != 0 || b.rs.ShedHigh != 0 {
				t.Errorf("inert config recorded admission activity: %+v", b.rs)
			}
			if b.st.Shed != 0 {
				t.Errorf("inert config shed %d requests", b.st.Shed)
			}
		})
	}
}

// TestSLOAdmissionShedsAndAccounts: under the bursty overload pattern the
// admission controller must actually shed, and every drop must be accounted
// for — Requests == Completed + Shed, the per-class shed counters sum to the
// replay's shed count, and the low class keeps completing (shed, never
// silently starved).
func TestSLOAdmissionShedsAndAccounts(t *testing.T) {
	cfg := router.DefaultConfig()
	cfg.SLO = testSLO()
	res := replaySLO(t, trace.Bursty, 5000, cfg)
	if res.st.Shed == 0 {
		t.Fatal("bursty overload shed nothing — admission control is not engaging")
	}
	if res.st.Requests != res.st.Completed+res.st.Shed {
		t.Errorf("drop accounting leak: %d requests != %d completed + %d shed",
			res.st.Requests, res.st.Completed, res.st.Shed)
	}
	if got := res.rs.ShedLow + res.rs.ShedHigh; got != int64(res.st.Shed) {
		t.Errorf("router shed counters (%d low + %d high) != replay shed %d",
			res.rs.ShedLow, res.rs.ShedHigh, res.st.Shed)
	}
	if res.rs.ShedLow == 0 {
		t.Error("no low-class sheds under overload — QoS classes are not differentiated")
	}
	if res.loCompleted == 0 {
		t.Error("low class fully starved: zero completions")
	}
	if res.hiCompleted == 0 {
		t.Error("high class fully starved: zero completions")
	}
	if res.rs.Admits == 0 || res.rs.Defers == 0 {
		t.Errorf("admission pipeline unexercised: admits=%d defers=%d", res.rs.Admits, res.rs.Defers)
	}
}

// TestSLOShedDeterministic pins the double-run invariant with shedding and
// session affinity both active: deferral re-admission rides the engine's
// event queue and affinity the deterministic pin map, so two identical runs
// must agree on every stat, sample, and counter byte for byte.
func TestSLOShedDeterministic(t *testing.T) {
	cfg := router.DefaultConfig()
	cfg.SLO = testSLO()
	cfg.Weights.Session = 2
	a := replaySLO(t, trace.Bursty, 5000, cfg)
	b := replaySLO(t, trace.Bursty, 5000, cfg)
	if !reflect.DeepEqual(a.st, b.st) {
		t.Errorf("replay stats diverged:\n%+v\n%+v", a.st, b.st)
	}
	if !reflect.DeepEqual(a.samples, b.samples) {
		t.Error("latency samples diverged across identical shedding runs")
	}
	if !reflect.DeepEqual(a.rs, b.rs) {
		t.Errorf("router stats diverged:\n%+v\n%+v", a.rs, b.rs)
	}
	if a.st.Shed == 0 || a.rs.AffinityHits == 0 {
		t.Errorf("determinism run unexercised: shed=%d affinityHits=%d", a.st.Shed, a.rs.AffinityHits)
	}
}

// randStates builds a reproducible random snapshot for the predictor
// property tests.
func randStates(rng *rand.Rand, n int) []router.WorkerState {
	states := make([]router.WorkerState, n)
	for i := range states {
		states[i] = router.WorkerState{
			Healthy:     rng.Intn(4) != 0,
			QueueDepth:  rng.Intn(50),
			EWMALatency: time.Duration(rng.Intn(40)) * time.Millisecond,
		}
	}
	return states
}

// TestPredictCompletionMonotone: raising any single worker's queue depth or
// EWMA never lowers the predicted completion (the estimate is a min of
// per-worker products, each monotone in both inputs).
func TestPredictCompletionMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		states := randStates(rng, 1+rng.Intn(8))
		before := router.PredictCompletion(states)
		i := rng.Intn(len(states))
		if rng.Intn(2) == 0 {
			states[i].QueueDepth += 1 + rng.Intn(10)
		} else {
			states[i].EWMALatency += time.Duration(1+rng.Intn(10)) * time.Millisecond
		}
		if after := router.PredictCompletion(states); after < before {
			t.Fatalf("trial %d: prediction dropped %v -> %v after loading worker %d", trial, before, after, i)
		}
	}
}

// TestPredictPipelineMonotone extends monotonicity to the multi-stage sum:
// loading any worker of any stage never lowers the pipeline estimate, and
// the pipeline estimate is never below any single stage's.
func TestPredictPipelineMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 500; trial++ {
		stages := make([][]router.WorkerState, 1+rng.Intn(4))
		for s := range stages {
			stages[s] = randStates(rng, 1+rng.Intn(5))
		}
		before := router.PredictPipeline(stages)
		for s := range stages {
			if got := router.PredictCompletion(stages[s]); before < got && before != router.PredictCompletion(nil) {
				t.Fatalf("trial %d: pipeline %v below stage %d estimate %v", trial, before, s, got)
			}
		}
		s := rng.Intn(len(stages))
		i := rng.Intn(len(stages[s]))
		stages[s][i].QueueDepth += 1 + rng.Intn(10)
		stages[s][i].EWMALatency += time.Duration(rng.Intn(5)) * time.Millisecond
		if after := router.PredictPipeline(stages); after < before {
			t.Fatalf("trial %d: pipeline prediction dropped %v -> %v", trial, before, after)
		}
	}
}

// TestAdmitNeverShedsWhenIdle: for any configuration and any waited value,
// Admit must run (not defer, not shed) whenever some healthy worker is idle —
// shedding with free capacity can never improve attainment.
func TestAdmitNeverShedsWhenIdle(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	cfgs := []router.SLOConfig{
		testSLO(),
		{High: router.SLOClass{Budget: time.Nanosecond}, Low: router.SLOClass{Budget: time.Nanosecond}},
		{High: router.SLOClass{Budget: time.Hour, MaxDelay: time.Hour}},
	}
	for trial := 0; trial < 500; trial++ {
		states := randStates(rng, 1+rng.Intn(8))
		i := rng.Intn(len(states))
		states[i].Healthy = true
		states[i].QueueDepth = 0
		cfg := cfgs[rng.Intn(len(cfgs))]
		q := cluster.QoS(rng.Intn(2))
		waited := time.Duration(rng.Int63n(int64(time.Second)))
		if action, _ := router.Admit(states, cfg, q, waited); action != cluster.AdmitRun {
			t.Fatalf("trial %d: action %d with an idle healthy worker, want run", trial, action)
		}
	}
}

// TestAdmitDeferThenShed pins the delay-queue state machine on a saturated
// snapshot: predicted misses defer by Recheck while cumulative wait stays
// inside MaxDelay, then shed; a class without MaxDelay sheds immediately; a
// class without a budget always runs.
func TestAdmitDeferThenShed(t *testing.T) {
	sat := []router.WorkerState{{Healthy: true, QueueDepth: 100, EWMALatency: 10 * time.Millisecond}}
	cfg := router.SLOConfig{
		High:    router.SLOClass{Budget: 20 * time.Millisecond, MaxDelay: 3 * time.Millisecond},
		Recheck: time.Millisecond,
	}
	if a, d := router.Admit(sat, cfg, cluster.QoSHigh, 0); a != cluster.AdmitDefer || d != time.Millisecond {
		t.Errorf("waited 0: got (%d, %v), want defer by 1ms", a, d)
	}
	if a, _ := router.Admit(sat, cfg, cluster.QoSHigh, 2*time.Millisecond); a != cluster.AdmitDefer {
		t.Errorf("waited 2ms of 3ms: got %d, want defer", a)
	}
	if a, _ := router.Admit(sat, cfg, cluster.QoSHigh, 3*time.Millisecond); a != cluster.AdmitShed {
		t.Errorf("waited 3ms of 3ms: got %d, want shed (next recheck would overshoot)", a)
	}
	// Zero MaxDelay sheds a predicted miss immediately.
	nodefer := router.SLOConfig{High: router.SLOClass{Budget: 20 * time.Millisecond}}
	if a, _ := router.Admit(sat, nodefer, cluster.QoSHigh, 0); a != cluster.AdmitShed {
		t.Errorf("zero MaxDelay: got %d, want immediate shed", a)
	}
	// The un-budgeted low class always runs, even saturated.
	if a, _ := router.Admit(sat, cfg, cluster.QoSLow, time.Hour); a != cluster.AdmitRun {
		t.Errorf("budget-less class: got %d, want run", a)
	}
	// An idle worker overrides the predicted miss.
	idle := append([]router.WorkerState{{Healthy: true}}, sat...)
	if a, _ := router.Admit(idle, cfg, cluster.QoSHigh, 0); a != cluster.AdmitRun {
		t.Errorf("idle worker present: got %d, want run", a)
	}
}

// TestHostPoolChangeInvalidatesSnapshot is the scale-in drain race
// regression: a pool announcement — including one for a host pool, which the
// old code skipped out of early — must invalidate the cached snapshot so no
// pick inside the refresh window routes on stale EWMA/membership state.
func TestHostPoolChangeInvalidatesSnapshot(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	c := cluster.New(e, topology.DGXV100(), 1, grouterPlane)
	app := c.Deploy(workflow.Driving(), 1, scheduler.Options{Node: 0})
	rt := router.New(app, router.DefaultConfig())
	rt.Snapshot()
	if rt.Stats.Refreshes != 1 {
		t.Fatalf("first snapshot: refreshes = %d, want 1", rt.Stats.Refreshes)
	}
	rt.Snapshot()
	if rt.Stats.Refreshes != 1 {
		t.Fatalf("cached snapshot unexpectedly refreshed (refreshes = %d)", rt.Stats.Refreshes)
	}
	app.OnPoolChange(scheduler.StageInst{Stage: "fusion"}, []fabric.Location{{Node: 0, GPU: fabric.HostGPU}})
	rt.Snapshot()
	if rt.Stats.Refreshes != 2 {
		t.Errorf("host pool change left snapshot fresh (refreshes = %d, want 2) — stale-EWMA race", rt.Stats.Refreshes)
	}
}

// TestAffinityPinInvalidation drives the session pin lifecycle through the
// route hook directly: a pick pins the session, the next pick for the same
// session hits the pin, a pool change cordoning the pinned worker
// invalidates it (no affinity pick can land on a draining worker), and a
// crash or full TTL decay does the same.
func TestAffinityPinInvalidation(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	c := cluster.New(e, topology.DGXV100(), 1, grouterPlane)
	app := c.Deploy(workflow.Driving(), 1, scheduler.Options{Node: 0})
	cfg := router.Config{Weights: router.Weights{Session: 1}, TopK: 1, AffinityTTL: 500 * time.Millisecond}
	rt := router.New(app, cfg)
	si := scheduler.StageInst{Stage: "segmentation"}
	pool := []fabric.Location{{Node: 0, GPU: 0}, {Node: 0, GPU: 1}, {Node: 0, GPU: 2}}

	// First pick: no pin yet, all scores equal, seq rotation breaks the tie.
	first, ok := app.Route(si, cluster.RouteInfo{Seq: 0, Session: 9}, pool)
	if !ok {
		t.Fatal("route declined on a healthy pool")
	}
	// Second pick, different seq: without affinity the rotation would move
	// on; the pin must hold it in place.
	second, ok := app.Route(si, cluster.RouteInfo{Seq: 1, Session: 9}, pool)
	if !ok || second != first {
		t.Fatalf("session not pinned: first pick %d, second %d", first, second)
	}
	if rt.Stats.AffinityHits != 1 {
		t.Fatalf("AffinityHits = %d, want 1", rt.Stats.AffinityHits)
	}

	// Cordon the pinned worker out of the stage's pool: the pin must die
	// with it, and the next pick must land elsewhere.
	w := pool[first]
	var drained []fabric.Location
	for _, loc := range pool {
		if loc != w {
			drained = append(drained, loc)
		}
	}
	app.OnPoolChange(si, drained)
	if rt.Stats.AffinityInvalidations != 1 {
		t.Fatalf("cordon did not invalidate the pin (invalidations = %d)", rt.Stats.AffinityInvalidations)
	}
	third, ok := app.Route(si, cluster.RouteInfo{Seq: 2, Session: 9}, drained)
	if !ok {
		t.Fatal("route declined after cordon")
	}
	if drained[third] == w {
		t.Fatalf("affinity steered a pick onto the cordoned worker %v", w)
	}
	if rt.Stats.AffinityHits != 1 {
		t.Fatalf("post-cordon pick counted as an affinity hit (hits = %d)", rt.Stats.AffinityHits)
	}

	// Crash the newly pinned worker: MarkDown must drop the pin too.
	app.Route(si, cluster.RouteInfo{Seq: 3, Session: 9}, drained) // re-pin
	rt.MarkDown(drained[third].Node, drained[third].GPU)
	if rt.Stats.AffinityInvalidations != 2 {
		t.Fatalf("crash did not invalidate the pin (invalidations = %d)", rt.Stats.AffinityInvalidations)
	}

	// A fresh pin fully decays after AffinityTTL of idleness.
	pinIdx, _ := app.Route(si, cluster.RouteInfo{Seq: 4, Session: 11}, pool)
	_ = pinIdx
	e.Schedule(600*time.Millisecond, func() {})
	e.Run(0)
	before := rt.Stats.AffinityInvalidations
	app.Route(si, cluster.RouteInfo{Seq: 5, Session: 11}, pool)
	if rt.Stats.AffinityInvalidations != before+1 {
		t.Errorf("fully decayed pin not dropped (invalidations = %d, want %d)",
			rt.Stats.AffinityInvalidations, before+1)
	}
}

// FuzzAdmission hammers the pure admission decision with adversarial
// configurations and snapshots: zero, negative, and near-overflow budgets,
// saturated and unhealthy pools, absurd waited values. The contract under
// fuzz: never panic, always return a defined action, only defer with a
// positive delay, and never shed while any healthy worker is idle.
func FuzzAdmission(f *testing.F) {
	f.Add(int64(25e6), int64(4e6), int64(150e6), int64(20e6), int64(1e6), int64(0), uint8(1), 30, int64(5e6), true)
	f.Add(int64(0), int64(0), int64(0), int64(0), int64(0), int64(0), uint8(0), 0, int64(0), false)
	f.Add(int64(-1), int64(-1), int64(-1), int64(-1), int64(-1), int64(-1), uint8(3), -5, int64(-1), true)
	f.Add(int64(1<<62), int64(1<<62), int64(1), int64(1<<62), int64(1<<62), int64(1<<62), uint8(1), 1000000, int64(1<<62), false)
	f.Add(int64(1), int64(0), int64(1), int64(0), int64(7), int64(3), uint8(0), 0, int64(1<<62), true)
	f.Fuzz(func(t *testing.T, hiBudget, hiDelay, loBudget, loDelay, recheck, waited int64, qos uint8, qdepth int, ewma int64, idle bool) {
		cfg := router.SLOConfig{
			High:    router.SLOClass{Budget: time.Duration(hiBudget), MaxDelay: time.Duration(hiDelay)},
			Low:     router.SLOClass{Budget: time.Duration(loBudget), MaxDelay: time.Duration(loDelay)},
			Recheck: time.Duration(recheck),
		}
		states := []router.WorkerState{
			{Healthy: true, QueueDepth: qdepth, EWMALatency: time.Duration(ewma)},
			{Healthy: false, QueueDepth: -qdepth, EWMALatency: time.Duration(-ewma)},
			{Healthy: idle, QueueDepth: 0},
		}
		q := cluster.QoS(qos % 2)
		action, delay := router.Admit(states, cfg, q, time.Duration(waited))
		switch action {
		case cluster.AdmitRun, cluster.AdmitShed:
			if delay != 0 {
				t.Fatalf("action %d returned non-zero delay %v", action, delay)
			}
		case cluster.AdmitDefer:
			if delay <= 0 {
				t.Fatalf("defer with non-positive delay %v", delay)
			}
		default:
			t.Fatalf("undefined admission action %d", action)
		}
		if idle && action == cluster.AdmitShed {
			t.Fatal("shed despite an idle healthy worker")
		}
		// The pipeline form must satisfy the same contract on a split of the
		// same workers.
		pa, pd := router.AdmitPipeline([][]router.WorkerState{states[:1], states[1:]}, cfg, q, time.Duration(waited))
		if pa == cluster.AdmitDefer && pd <= 0 {
			t.Fatalf("pipeline defer with non-positive delay %v", pd)
		}
	})
}
