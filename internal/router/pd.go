package router

import (
	"grouter/internal/cluster"
	"grouter/internal/fabric"
)

// Prefill/decode routing policy. The PD router decides, per typed request,
// whether the LLM service runs it colocated or disaggregated and on which
// workers: long-prompt requests go to prefill/decode worker pairs (prefill
// dominates their cost, and isolating it stops head-of-line blocking of
// short interactive requests), short ones to the mixed pool, with overflow
// fallback to colocated execution when PD capacity or the KV transfer path
// is saturated. All signals are virtual-time deterministic, so routed runs
// replay byte-identically.

// PDPolicyConfig tunes a PD routing policy.
type PDPolicyConfig struct {
	// LongPromptTokens is the disaggregation threshold: a PDAuto request at
	// or above it is split across a prefill/decode pair (default 1024).
	LongPromptTokens int
	// SaturationDepth is the per-worker load (queue + holds + pending picks)
	// above which a pool counts as saturated: PDAuto requests overflow to
	// colocated execution instead of queueing on a saturated pair, and a
	// session-affine decode pick is abandoned for the least-loaded worker
	// (default 4).
	SaturationDepth int
	// MaxInflightKV bounds concurrent KV handoffs on the data plane; at the
	// bound PDAuto requests overflow to colocated execution (default 8).
	MaxInflightKV int
	// SessionAffinity pins a session's decode phases to one decode worker
	// (session id mod pool) while that worker is below SaturationDepth, so a
	// conversation's KV state stays put.
	SessionAffinity bool
}

// DefaultPDPolicy returns the production PD policy: split at 1024 prompt
// tokens, overflow above depth 4 or 8 in-flight handoffs, session affinity
// on.
func DefaultPDPolicy() PDPolicyConfig {
	return PDPolicyConfig{
		LongPromptTokens: 1024,
		SaturationDepth:  4,
		MaxInflightKV:    8,
		SessionAffinity:  true,
	}
}

// PDRouterStats counts PD routing activity; all counters are deterministic
// in virtual time.
type PDRouterStats struct {
	// Decisions counts routed requests; Long/Short split the PDAuto ones by
	// the prompt-length threshold.
	Decisions int64
	Long      int64
	Short     int64
	// Disaggregated/Colocated count decisions by returned mode.
	Disaggregated int64
	Colocated     int64
	// Overflows counts PDAuto long-prompt requests downgraded to colocated
	// because the PD pools or the transfer path were saturated.
	Overflows int64
	// Affinity counts decode picks pinned by session affinity.
	Affinity int64
}

// PDRouter routes one LLM service's requests. Build with NewPD.
type PDRouter struct {
	svc *cluster.LLMService
	cfg PDPolicyConfig

	Stats PDRouterStats
}

// NewPD builds the PD routing policy and installs it as the service's Route
// hook. One policy per service.
func NewPD(svc *cluster.LLMService, cfg PDPolicyConfig) *PDRouter {
	if cfg.LongPromptTokens <= 0 {
		cfg.LongPromptTokens = 1024
	}
	if cfg.SaturationDepth <= 0 {
		cfg.SaturationDepth = 4
	}
	if cfg.MaxInflightKV <= 0 {
		cfg.MaxInflightKV = 8
	}
	r := &PDRouter{svc: svc, cfg: cfg}
	svc.Route = r.Decide
	return r
}

// leastLoaded picks the pool's lowest-load worker (lowest index on ties —
// the deterministic tie-break) and returns it with its load.
func (r *PDRouter) leastLoaded(pool []fabric.Location) (fabric.Location, int) {
	best, bestLoad := pool[0], r.svc.Load(pool[0])
	for _, loc := range pool[1:] {
		if l := r.svc.Load(loc); l < bestLoad {
			best, bestLoad = loc, l
		}
	}
	return best, bestLoad
}

// colocatedPool is where colocated requests run: the mixed pool, or the
// prefill pool on a PD-only service.
func (r *PDRouter) colocatedPool() []fabric.Location {
	if len(r.svc.MixedPool) > 0 {
		return r.svc.MixedPool
	}
	return r.svc.PrefillPool
}

// Decide is the service's PDRouteFn. It runs in event context and reads only
// virtual-time-deterministic load signals.
func (r *PDRouter) Decide(req *cluster.Request, seq int64) cluster.PDDecision {
	r.Stats.Decisions++
	wantPD := req.PD == cluster.PDDisaggregated
	if req.PD == cluster.PDAuto {
		if req.PromptTokens >= r.cfg.LongPromptTokens {
			r.Stats.Long++
			wantPD = true
		} else {
			r.Stats.Short++
		}
	}
	if wantPD && len(r.svc.PrefillPool) > 0 {
		prefill, pLoad := r.leastLoaded(r.svc.PrefillPool)
		decode, dLoad := r.leastLoaded(r.svc.DecodePool)
		if r.cfg.SessionAffinity && req.Session > 0 {
			pinned := r.svc.DecodePool[int(req.Session%int64(len(r.svc.DecodePool)))]
			if r.svc.Load(pinned) <= r.cfg.SaturationDepth {
				decode, dLoad = pinned, r.svc.Load(pinned)
				r.Stats.Affinity++
			}
		}
		// Overflow: an auto-split request does not queue on a saturated PD
		// pair or a saturated transfer path when colocated capacity exists;
		// an explicit PDDisaggregated request is honored regardless.
		saturated := pLoad > r.cfg.SaturationDepth || dLoad > r.cfg.SaturationDepth ||
			r.svc.InflightKV() >= r.cfg.MaxInflightKV
		if req.PD == cluster.PDAuto && saturated && len(r.svc.MixedPool) > 0 {
			r.Stats.Overflows++
			r.Stats.Colocated++
			loc, _ := r.leastLoaded(r.svc.MixedPool)
			return cluster.PDDecision{Mode: cluster.PDColocated, Decode: loc, Overflow: true}
		}
		r.Stats.Disaggregated++
		return cluster.PDDecision{Mode: cluster.PDDisaggregated, Prefill: prefill, Decode: decode}
	}
	r.Stats.Colocated++
	loc, _ := r.leastLoaded(r.colocatedPool())
	return cluster.PDDecision{Mode: cluster.PDColocated, Decode: loc}
}
