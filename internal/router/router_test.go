package router_test

import (
	"reflect"
	"testing"
	"time"

	"grouter/internal/cluster"
	"grouter/internal/core"
	"grouter/internal/dataplane"
	"grouter/internal/fabric"
	"grouter/internal/router"
	"grouter/internal/scheduler"
	"grouter/internal/sim"
	"grouter/internal/topology"
	"grouter/internal/trace"
	"grouter/internal/workflow"
)

func grouterPlane(f *fabric.Fabric) dataplane.Plane { return core.New(f, core.FullConfig()) }

// replayResult captures everything observable about one replayed trace: the
// summary stats, every per-request latency sample, and the router counters.
type replayResult struct {
	st      cluster.ReplayStats
	samples []time.Duration
	rs      router.Stats
}

// highMix returns a ReplaySpec.RequestAt admitting every n-th request (in
// trace order) QoSHigh — the typed-request replacement for the deprecated
// ReplayOptions.HighEvery knob. n <= 0 means no mix (all QoSLow).
func highMix(n int) func(int) cluster.Request {
	if n <= 0 {
		return nil
	}
	return func(i int) cluster.Request {
		if (i+1)%n == 0 {
			return cluster.Request{QoS: cluster.QoSHigh}
		}
		return cluster.Request{}
	}
}

// replayOnce replays a generated trace through the driving workflow on a
// 2-node cluster (autoscaler on, batched admission — the ext-router setup at
// test scale). cfg nil means placement-only; otherwise the router is
// installed with that config. mutate, when non-nil, runs against the router
// before the replay starts.
func replayOnce(t *testing.T, pattern trace.Pattern, requests int, cfg *router.Config,
	highEvery int, mutate func(*router.Router)) replayResult {
	t.Helper()
	arrivals := trace.Generate(trace.Spec{
		Pattern:  pattern,
		Duration: time.Duration(float64(requests) / 500 * float64(time.Second)),
		MeanRPS:  500,
		Seed:     42,
	})
	e := sim.NewEngine()
	defer e.Close()
	c := cluster.New(e, topology.DGXV100(), 2, grouterPlane)
	app := c.Deploy(workflow.Driving(), 1, scheduler.Options{Node: 0, SplitAcrossNodes: true})
	app.EnableAutoscale(cluster.DefaultAutoscale())
	var rt *router.Router
	if cfg != nil {
		rt = router.New(app, *cfg)
		if mutate != nil {
			mutate(rt)
		}
	}
	st, err := app.Replay(arrivals, cluster.ReplaySpec{Quantum: 10 * time.Millisecond, RequestAt: highMix(highEvery)})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	res := replayResult{st: st, samples: app.E2E.Samples()}
	if rt != nil {
		res.rs = rt.Stats
	}
	return res
}

// TestUniformRoutingMatchesPlacementOnly is the differential oracle: the
// degenerate router configuration (all-zero weights, k=1) must reproduce the
// cluster's placement-only round-robin admission byte for byte — same
// summary stats and the same per-request latency samples — on every trace
// pattern. Uniform weights score all workers equally and the seq-rotation
// tie-break resolves equal scores to seq mod pool, which IS round-robin, so
// any divergence here means the router changed simulation behavior beyond
// pick selection.
func TestUniformRoutingMatchesPlacementOnly(t *testing.T) {
	for _, p := range []trace.Pattern{trace.Sporadic, trace.Periodic, trace.Bursty} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			base := replayOnce(t, p, 1200, nil, 0, nil)
			uni := router.Uniform()
			routed := replayOnce(t, p, 1200, &uni, 0, nil)
			if !reflect.DeepEqual(base.st, routed.st) {
				t.Errorf("replay stats diverged:\nplacement-only: %+v\nuniform-routed: %+v", base.st, routed.st)
			}
			if !reflect.DeepEqual(base.samples, routed.samples) {
				t.Errorf("latency samples diverged: %d vs %d samples", len(base.samples), len(routed.samples))
				for i := range base.samples {
					if i < len(routed.samples) && base.samples[i] != routed.samples[i] {
						t.Errorf("first divergence at sample %d: %v vs %v", i, base.samples[i], routed.samples[i])
						break
					}
				}
			}
			if routed.rs.Decisions == 0 {
				t.Error("uniform router made no decisions — the hook was not exercised")
			}
			if routed.rs.Fallbacks != 0 || routed.rs.Failovers != 0 {
				t.Errorf("uniform run saw fallbacks=%d failovers=%d, want 0/0 on a healthy cluster",
					routed.rs.Fallbacks, routed.rs.Failovers)
			}
		})
	}
}

// TestScoredRoutingDeterministic pins the double-run invariant for the full
// scored configuration (weighted-random among top-3, QoS mix, adaptive
// refresh): two replays of the same trace must agree on every stat, every
// latency sample, and every router counter.
func TestScoredRoutingDeterministic(t *testing.T) {
	cfg := router.DefaultConfig()
	a := replayOnce(t, trace.Bursty, 1500, &cfg, 7, nil)
	b := replayOnce(t, trace.Bursty, 1500, &cfg, 7, nil)
	if !reflect.DeepEqual(a.st, b.st) {
		t.Errorf("replay stats diverged across identical runs:\n%+v\n%+v", a.st, b.st)
	}
	if !reflect.DeepEqual(a.samples, b.samples) {
		t.Error("latency samples diverged across identical runs")
	}
	if !reflect.DeepEqual(a.rs, b.rs) {
		t.Errorf("router stats diverged across identical runs:\n%+v\n%+v", a.rs, b.rs)
	}
	if a.rs.Decisions == 0 || a.rs.Refreshes == 0 {
		t.Errorf("scored run did not route (decisions=%d refreshes=%d)", a.rs.Decisions, a.rs.Refreshes)
	}
}

// TestFailoverSkipsDownWorker: a blacklisted worker is reported unhealthy in
// the snapshot, routed around (failovers counted), and the replay still
// completes every request.
func TestFailoverSkipsDownWorker(t *testing.T) {
	cfg := router.DefaultConfig()
	cfg.RecoverAfter = time.Hour // stays down for the whole replay
	res := replayOnce(t, trace.Sporadic, 800, &cfg, 0, func(rt *router.Router) {
		rt.MarkDown(0, 0)
		for _, ws := range rt.Snapshot() {
			if ws.Node == 0 && ws.GPU == 0 {
				if ws.Healthy {
					t.Fatal("marked-down worker still reported healthy")
				}
			} else if !ws.Healthy {
				t.Fatalf("worker %d/%d unexpectedly unhealthy", ws.Node, ws.GPU)
			}
		}
	})
	if res.st.Completed != res.st.Requests {
		t.Errorf("completed %d of %d requests with one worker down", res.st.Completed, res.st.Requests)
	}
	if res.rs.Failovers == 0 || res.rs.Retries == 0 {
		t.Errorf("no failovers recorded (failovers=%d retries=%d) — down worker never appeared in a pool",
			res.rs.Failovers, res.rs.Retries)
	}
}

// TestAllWorkersDownFallsBack: with every worker blacklisted routing returns
// ErrNoWorker internally and admission falls back to the cluster's
// round-robin — requests must still complete, counted as fallbacks.
func TestAllWorkersDownFallsBack(t *testing.T) {
	cfg := router.DefaultConfig()
	cfg.RecoverAfter = time.Hour
	res := replayOnce(t, trace.Sporadic, 300, &cfg, 0, func(rt *router.Router) {
		spec := topology.DGXV100()
		for node := 0; node < 2; node++ {
			for gpu := 0; gpu < spec.NumGPUs; gpu++ {
				rt.MarkDown(node, gpu)
			}
		}
	})
	if res.st.Completed != res.st.Requests {
		t.Errorf("completed %d of %d requests with all workers down", res.st.Completed, res.st.Requests)
	}
	if res.rs.Fallbacks == 0 {
		t.Errorf("no fallbacks recorded (%+v) — ErrNoWorker path never taken", res.rs)
	}
}

// TestPoolChangeSeedsNewWorkerEWMA pins the mid-interval scale-out bugfix: a
// worker entering the pool with no service history must not score as
// infinitely fast. The pool-change hook seeds its EWMA from the mean of the
// pool's seasoned workers and invalidates the snapshot cache.
func TestPoolChangeSeedsNewWorkerEWMA(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	c := cluster.New(e, topology.DGXV100(), 1, grouterPlane)
	app := c.Deploy(workflow.Driving(), 1, scheduler.Options{Node: 0})
	rt := router.New(app, router.DefaultConfig())
	// Season two workers through the service hook the cluster normally fires.
	c.OnGPUService(0, 0, 10*time.Millisecond)
	c.OnGPUService(0, 1, 20*time.Millisecond)
	// Before any pool change, the zero-history worker is the scorer's
	// latency favorite — the bug this test pins.
	snap := rt.Snapshot()
	pre := []router.WorkerState{snap[0], snap[1], snap[2]}
	scores := router.Score(pre, router.Weights{Latency: 1})
	if !(scores[2] > scores[0] && scores[2] > scores[1]) {
		t.Fatalf("precondition: zero-EWMA worker should look fastest, scores %v", scores)
	}
	// The autoscaler announces worker (0,2) joining the pool.
	pool := []fabric.Location{{Node: 0, GPU: 0}, {Node: 0, GPU: 1}, {Node: 0, GPU: 2}}
	app.OnPoolChange(scheduler.StageInst{Stage: "segmentation"}, pool)
	if rt.Stats.PoolChanges != 1 || rt.Stats.Seeded != 1 {
		t.Fatalf("PoolChanges/Seeded = %d/%d, want 1/1", rt.Stats.PoolChanges, rt.Stats.Seeded)
	}
	snap = rt.Snapshot()
	if got, want := snap[2].EWMALatency, 15*time.Millisecond; got != want {
		t.Fatalf("new worker EWMA = %v, want pool mean %v", got, want)
	}
	if snap[0].EWMALatency != 10*time.Millisecond || snap[1].EWMALatency != 20*time.Millisecond {
		t.Fatalf("seasoned workers perturbed: %v, %v", snap[0].EWMALatency, snap[1].EWMALatency)
	}
	// Post-seed, the newcomer no longer dominates on latency.
	post := []router.WorkerState{snap[0], snap[1], snap[2]}
	scores = router.Score(post, router.Weights{Latency: 1})
	if scores[2] > scores[0] {
		t.Fatalf("seeded worker still outranks the fastest seasoned one: %v", scores)
	}
}

// TestPoolChangeAllColdLeavesEWMAUnseeded covers the degenerate pool with no
// seasoned member: there is no mean to seed from, so EWMAs stay zero (all
// workers equally unknown — uniform, not skewed).
func TestPoolChangeAllColdLeavesEWMAUnseeded(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	c := cluster.New(e, topology.DGXV100(), 1, grouterPlane)
	app := c.Deploy(workflow.Driving(), 1, scheduler.Options{Node: 0})
	rt := router.New(app, router.DefaultConfig())
	pool := []fabric.Location{{Node: 0, GPU: 3}, {Node: 0, GPU: 4}}
	app.OnPoolChange(scheduler.StageInst{Stage: "segmentation"}, pool)
	if rt.Stats.Seeded != 0 {
		t.Fatalf("Seeded = %d on an all-cold pool, want 0", rt.Stats.Seeded)
	}
	snap := rt.Snapshot()
	if snap[3].EWMALatency != 0 || snap[4].EWMALatency != 0 {
		t.Fatal("all-cold pool got a fabricated EWMA")
	}
}
