package router_test

import (
	"reflect"
	"testing"
	"time"

	"grouter/internal/cluster"
	"grouter/internal/faults"
	"grouter/internal/metrics"
	"grouter/internal/router"
	"grouter/internal/scheduler"
	"grouter/internal/sim"
	"grouter/internal/topology"
	"grouter/internal/trace"
	"grouter/internal/workflow"
)

// chaosReplay replays a bursty QoS-mixed trace while a seeded fault schedule
// crashes GPUs and flaps links, with the router failing over on the
// injector's crash signals. Everything — the schedule, the crashes, the
// weighted-random picks — is derived from fixed seeds in virtual time.
func chaosReplay(t *testing.T, mutate func(*router.Config)) replayResult {
	t.Helper()
	metrics.Faults().Reset()
	arrivals := trace.Generate(trace.Spec{
		Pattern: trace.Bursty, Duration: 2 * time.Second, MeanRPS: 500, Seed: 42,
	})
	e := sim.NewEngine()
	defer e.Close()
	c := cluster.New(e, topology.DGXV100(), 2, grouterPlane)
	app := c.Deploy(workflow.Driving(), 1, scheduler.Options{Node: 0, SplitAcrossNodes: true})
	app.EnableAutoscale(cluster.DefaultAutoscale())
	cfg := router.DefaultConfig()
	cfg.RecoverAfter = 200 * time.Millisecond
	if mutate != nil {
		mutate(&cfg)
	}
	rt := router.New(app, cfg)

	in := faults.NewInjector(e, c.Fabric.Net)
	rt.WatchFaults(in)
	crasher, ok := c.Plane.(faults.Crasher)
	if !ok {
		t.Fatal("core plane does not implement faults.Crasher")
	}
	// Seeded schedule: two GPU crashes plus random NVLink outages.
	in.CrashGPUAt(300*time.Millisecond, crasher, 0, 0)
	in.CrashGPUAt(900*time.Millisecond, crasher, 1, 1)
	topo := c.Fabric.Topo(0)
	var links []topology.LinkID
	for i := 0; i < topo.Spec.NumGPUs; i++ {
		for j := 0; j < topo.Spec.NumGPUs; j++ {
			if topo.Spec.NVLinkBps(i, j) > 0 {
				links = append(links, topo.NVLinkTo(i, j))
			}
		}
	}
	in.RandomLinkFaults(42, links, 2*time.Second, 400*time.Millisecond, 20*time.Millisecond)

	// Sessioned QoS mix: inert under the default config (affinity weight 0)
	// but lets SLO variants pin sessions and lose pins to the crashes.
	st, err := app.Replay(arrivals, cluster.ReplaySpec{
		Quantum: 10 * time.Millisecond,
		RequestAt: func(i int) cluster.Request {
			req := cluster.Request{Session: int64(i%32) + 1}
			if (i+1)%5 == 0 {
				req.QoS = cluster.QoSHigh
			}
			return req
		},
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return replayResult{st: st, samples: app.E2E.Samples(), rs: rt.Stats}
}

// TestChaosRoutingDeterministic: the full chaos stack — seeded fault
// schedule, crash-driven failover, QoS priorities, scored weighted-random
// routing — must replay byte-identically across two independent runs, and
// the faults must actually have fired.
func TestChaosRoutingDeterministic(t *testing.T) {
	a := chaosReplay(t, nil)
	b := chaosReplay(t, nil)
	if !reflect.DeepEqual(a.st, b.st) {
		t.Errorf("chaos replay stats diverged:\n%+v\n%+v", a.st, b.st)
	}
	if !reflect.DeepEqual(a.samples, b.samples) {
		t.Error("chaos latency samples diverged across identical runs")
	}
	if !reflect.DeepEqual(a.rs, b.rs) {
		t.Errorf("chaos router stats diverged:\n%+v\n%+v", a.rs, b.rs)
	}
	if a.rs.Crashes != 2 {
		t.Errorf("router saw %d crash signals, want 2", a.rs.Crashes)
	}
	if a.rs.Failovers == 0 {
		t.Error("no failovers despite crashed workers")
	}
	if a.st.Completed != a.st.Requests {
		t.Errorf("chaos run completed %d of %d requests", a.st.Completed, a.st.Requests)
	}
}

// TestChaosSheddingDeterministic layers SLO admission and session affinity on
// top of the full chaos stack: crashes invalidate affinity pins and shrink
// the capacity the predictor sees, so the shed/defer decisions themselves
// depend on the fault schedule — and must still replay byte-identically.
func TestChaosSheddingDeterministic(t *testing.T) {
	slo := func(cfg *router.Config) {
		cfg.SLO = router.SLOConfig{
			High: router.SLOClass{Budget: 25 * time.Millisecond, MaxDelay: 4 * time.Millisecond},
			Low:  router.SLOClass{Budget: 150 * time.Millisecond, MaxDelay: 20 * time.Millisecond},
		}
		cfg.Weights.Session = 2
	}
	a := chaosReplay(t, slo)
	b := chaosReplay(t, slo)
	if !reflect.DeepEqual(a.st, b.st) {
		t.Errorf("chaos+SLO replay stats diverged:\n%+v\n%+v", a.st, b.st)
	}
	if !reflect.DeepEqual(a.samples, b.samples) {
		t.Error("chaos+SLO latency samples diverged across identical runs")
	}
	if !reflect.DeepEqual(a.rs, b.rs) {
		t.Errorf("chaos+SLO router stats diverged:\n%+v\n%+v", a.rs, b.rs)
	}
	if a.rs.Crashes != 2 {
		t.Errorf("router saw %d crash signals, want 2", a.rs.Crashes)
	}
	if a.st.Shed == 0 {
		t.Error("no sheds under chaos burst despite SLO admission")
	}
	if a.st.Completed+a.st.Shed != a.st.Requests {
		t.Errorf("accounting gap: %d completed + %d shed != %d requests",
			a.st.Completed, a.st.Shed, a.st.Requests)
	}
	if a.rs.ShedLow+a.rs.ShedHigh != int64(a.st.Shed) {
		t.Errorf("per-class shed counters %d+%d don't cover %d total sheds",
			a.rs.ShedLow, a.rs.ShedHigh, a.st.Shed)
	}
	if a.rs.AffinityHits == 0 {
		t.Error("no affinity hits despite sessioned traffic and Session weight")
	}
	if a.rs.AffinityInvalidations == 0 {
		t.Error("crashes and decay never invalidated a session pin")
	}
}
