// Package workflow defines serverless inference workflows as DAGs of stages
// and provides the paper's application suite (Fig. 12): Traffic
// (conditional), Driving (sequence), Video (fan-in), and Image (fan-out).
// The Mixture-of-Agents LLM workflow lives in internal/kvcache because of
// its specialized KV-cache passing.
package workflow

import (
	"fmt"
	"time"

	"grouter/internal/models"
)

// Stage is one function in a workflow DAG.
type Stage struct {
	Name  string
	Model *models.Profile
	// Deps are upstream stage names whose outputs this stage consumes.
	Deps []string
	// Prob is the probability the stage executes for a given request
	// (conditional branching); 0 means 1.0.
	Prob float64
	// Replicas fans the stage into k parallel instances per request
	// (fan-out); 0 means 1. A stage with the same replica count as its
	// dependency pairs with it one-to-one; otherwise replicas broadcast or
	// fan in.
	Replicas int
}

// ReplicaCount returns the effective replica count.
func (s *Stage) ReplicaCount() int {
	if s.Replicas <= 0 {
		return 1
	}
	return s.Replicas
}

// ProbOrOne returns the effective execution probability.
func (s *Stage) ProbOrOne() float64 {
	if s.Prob <= 0 || s.Prob > 1 {
		return 1
	}
	return s.Prob
}

// IsGPU reports whether the stage runs on a GPU.
func (s *Stage) IsGPU() bool { return !s.Model.CPUOnly }

// Workflow is a DAG of stages in topological order.
type Workflow struct {
	Name   string
	Stages []*Stage
	// Batch is the default request batch size.
	Batch int
	// SLOScale sets per-stage SLOs at scale × standalone compute latency
	// (§4.3.2: 1.5–2×).
	SLOScale float64
}

// Validate checks that dependencies exist, precede their consumers, and that
// stage names are unique.
func (w *Workflow) Validate() error {
	seen := map[string]bool{}
	for _, s := range w.Stages {
		if seen[s.Name] {
			return fmt.Errorf("workflow %s: duplicate stage %q", w.Name, s.Name)
		}
		for _, d := range s.Deps {
			if !seen[d] {
				return fmt.Errorf("workflow %s: stage %q depends on %q which does not precede it", w.Name, s.Name, d)
			}
		}
		seen[s.Name] = true
	}
	if len(w.Stages) == 0 {
		return fmt.Errorf("workflow %s: empty", w.Name)
	}
	return nil
}

// Stage returns the named stage or nil.
func (w *Workflow) Stage(name string) *Stage {
	for _, s := range w.Stages {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Consumers returns the stages that consume s's output.
func (w *Workflow) Consumers(s *Stage) []*Stage {
	var out []*Stage
	for _, c := range w.Stages {
		for _, d := range c.Deps {
			if d == s.Name {
				out = append(out, c)
				break
			}
		}
	}
	return out
}

// Sinks returns stages nobody consumes.
func (w *Workflow) Sinks() []*Stage {
	var out []*Stage
	for _, s := range w.Stages {
		if len(w.Consumers(s)) == 0 {
			out = append(out, s)
		}
	}
	return out
}

// StandaloneLatency estimates the workflow's critical-path compute time on
// one device class at the given batch (transfer-free; the basis for SLOs).
func (w *Workflow) StandaloneLatency(c models.Class, batch int) time.Duration {
	finish := map[string]time.Duration{}
	var max time.Duration
	for _, s := range w.Stages {
		var start time.Duration
		for _, d := range s.Deps {
			if finish[d] > start {
				start = finish[d]
			}
		}
		end := start + s.Model.Latency(c, batch)
		finish[s.Name] = end
		if end > max {
			max = end
		}
	}
	return max
}

// sloTransferBps is the reference bandwidth used to budget a stage's input
// transfer inside its SLO. The paper derives SLOs from measured standalone
// execution, which includes moving inputs at uncontended link speed.
const sloTransferBps = 10e9

// StageInputBytes sums the bytes one instance of s pulls per request:
// ingress payload for GPU sources plus every dependency edge.
func (w *Workflow) StageInputBytes(s *Stage, batch int) int64 {
	var total int64
	if len(s.Deps) == 0 && s.IsGPU() {
		total += s.Model.InBytes(batch)
	}
	for _, dn := range s.Deps {
		d := w.Stage(dn)
		n := 1
		if !(d.ReplicaCount() == s.ReplicaCount() && s.ReplicaCount() > 1) {
			n = d.ReplicaCount()
		}
		total += EdgeBytes(d, batch) * int64(n)
	}
	return total
}

// StageSLO returns the stage's latency objective: scale × its standalone
// execution time (compute plus input transfer at uncontended bandwidth).
func (w *Workflow) StageSLO(s *Stage, c models.Class, batch int) time.Duration {
	scale := w.SLOScale
	if scale == 0 {
		scale = 1.5
	}
	standalone := s.Model.Latency(c, batch) +
		time.Duration(float64(w.StageInputBytes(s, batch))/sloTransferBps*float64(time.Second))
	return time.Duration(scale * float64(standalone))
}

// EdgeBytes returns the data volume one instance of consumer pulls from one
// instance of producer at the given batch.
func EdgeBytes(producer *Stage, batch int) int64 {
	return producer.Model.OutBytes(batch)
}

func mk(name string, batch int, stages ...*Stage) *Workflow {
	w := &Workflow{Name: name, Stages: stages, Batch: batch, SLOScale: 1.5}
	if err := w.Validate(); err != nil {
		panic(err)
	}
	return w
}

// Traffic is the Fig. 1 traffic-monitoring workflow (Boggart-style): video
// decode → preprocess → detection → postprocess, then conditional person and
// car recognition.
func Traffic() *Workflow {
	return mk("traffic", 8,
		&Stage{Name: "video-decode", Model: models.MustLookup("video-decode")},
		&Stage{Name: "preprocess", Model: models.MustLookup("preprocess"), Deps: []string{"video-decode"}},
		&Stage{Name: "yolo-det", Model: models.MustLookup("yolo-det"), Deps: []string{"preprocess"}},
		&Stage{Name: "postprocess", Model: models.MustLookup("postprocess"), Deps: []string{"yolo-det"}},
		&Stage{Name: "person-recog", Model: models.MustLookup("person-recog"), Deps: []string{"postprocess"}, Prob: 0.7},
		&Stage{Name: "car-recog", Model: models.MustLookup("car-recog"), Deps: []string{"postprocess"}, Prob: 0.8},
	)
}

// Driving is the AdaInf-style road-segmentation sequence: denoise →
// segmentation → colorize.
func Driving() *Workflow {
	return mk("driving", 8,
		&Stage{Name: "denoise", Model: models.MustLookup("denoise")},
		&Stage{Name: "segmentation", Model: models.MustLookup("segmentation"), Deps: []string{"denoise"}},
		&Stage{Name: "colorize", Model: models.MustLookup("colorize"), Deps: []string{"segmentation"}},
	)
}

// Video is the Aquatope-style fan-in pipeline: four parallel chunk loaders
// and face detectors feeding one recognizer.
func Video() *Workflow {
	return mk("video", 4,
		&Stage{Name: "chunk-load", Model: models.MustLookup("chunk-load"), Replicas: 4},
		&Stage{Name: "face-det", Model: models.MustLookup("face-det"), Deps: []string{"chunk-load"}, Replicas: 4},
		&Stage{Name: "face-recog", Model: models.MustLookup("face-recog"), Deps: []string{"face-det"}},
	)
}

// Image is the Cocktail-style classification ensemble: denoise fans out to
// four classifiers whose votes aggregate.
func Image() *Workflow {
	return mk("image", 8,
		&Stage{Name: "denoise", Model: models.MustLookup("denoise")},
		&Stage{Name: "resnet50", Model: models.MustLookup("resnet50"), Deps: []string{"denoise"}},
		&Stage{Name: "resnet101", Model: models.MustLookup("resnet101"), Deps: []string{"denoise"}},
		&Stage{Name: "efficientnet", Model: models.MustLookup("efficientnet"), Deps: []string{"denoise"}},
		&Stage{Name: "inception", Model: models.MustLookup("inception"), Deps: []string{"denoise"}},
		&Stage{Name: "aggregate", Model: models.MustLookup("aggregate"),
			Deps: []string{"resnet50", "resnet101", "efficientnet", "inception"}},
	)
}

// Suite returns the four CNN workflows evaluated in Figs. 13–18.
func Suite() []*Workflow {
	return []*Workflow{Traffic(), Driving(), Video(), Image()}
}

// ByName returns the named workflow or nil.
func ByName(name string) *Workflow {
	for _, w := range Suite() {
		if w.Name == name {
			return w
		}
	}
	return nil
}
