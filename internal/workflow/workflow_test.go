package workflow

import (
	"strings"
	"testing"
	"time"

	"grouter/internal/models"
)

func TestSuiteValidates(t *testing.T) {
	suite := Suite()
	if len(suite) != 4 {
		t.Fatalf("suite size = %d, want 4", len(suite))
	}
	for _, w := range suite {
		if err := w.Validate(); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	if ByName("traffic") == nil || ByName("video") == nil {
		t.Error("known workflows not found")
	}
	if ByName("nope") != nil {
		t.Error("unknown workflow should be nil")
	}
}

func TestValidateRejectsBadDeps(t *testing.T) {
	w := &Workflow{Name: "bad", Stages: []*Stage{
		{Name: "a", Model: models.MustLookup("denoise"), Deps: []string{"missing"}},
	}}
	if err := w.Validate(); err == nil {
		t.Error("missing dep should fail validation")
	}
	w2 := &Workflow{Name: "dup", Stages: []*Stage{
		{Name: "a", Model: models.MustLookup("denoise")},
		{Name: "a", Model: models.MustLookup("denoise")},
	}}
	if err := w2.Validate(); err == nil {
		t.Error("duplicate stage should fail validation")
	}
	if err := (&Workflow{Name: "empty"}).Validate(); err == nil {
		t.Error("empty workflow should fail validation")
	}
}

func TestConsumersAndSinks(t *testing.T) {
	w := Traffic()
	post := w.Stage("postprocess")
	cons := w.Consumers(post)
	if len(cons) != 2 {
		t.Errorf("postprocess consumers = %d, want 2", len(cons))
	}
	sinks := w.Sinks()
	if len(sinks) != 2 {
		t.Errorf("traffic sinks = %d, want 2 (the recognizers)", len(sinks))
	}
}

func TestPatterns(t *testing.T) {
	// Traffic has conditional stages.
	cond := false
	for _, s := range Traffic().Stages {
		if s.ProbOrOne() < 1 {
			cond = true
		}
	}
	if !cond {
		t.Error("traffic should have conditional stages")
	}
	// Video has replicas (fan-in).
	if Video().Stage("face-det").ReplicaCount() != 4 {
		t.Error("video face-det should have 4 replicas")
	}
	// Image fans out from denoise to 4 classifiers.
	if n := len(Image().Consumers(Image().Stage("denoise"))); n != 4 {
		t.Errorf("image fan-out = %d, want 4", n)
	}
	// Driving is a pure sequence.
	for i, s := range Driving().Stages {
		if i > 0 && len(s.Deps) != 1 {
			t.Error("driving should be a chain")
		}
	}
}

func TestStandaloneLatencyCriticalPath(t *testing.T) {
	w := Driving()
	var sum time.Duration
	for _, s := range w.Stages {
		sum += s.Model.Latency(models.ClassV100, w.Batch)
	}
	if got := w.StandaloneLatency(models.ClassV100, w.Batch); got != sum {
		t.Errorf("chain critical path = %v, want sum %v", got, sum)
	}
	// Fan-out: critical path is shorter than the stage-latency sum.
	img := Image()
	var imgSum time.Duration
	for _, s := range img.Stages {
		imgSum += s.Model.Latency(models.ClassV100, img.Batch)
	}
	if got := img.StandaloneLatency(models.ClassV100, img.Batch); got >= imgSum {
		t.Errorf("fan-out critical path %v should be < stage sum %v", got, imgSum)
	}
}

func TestStageSLOScale(t *testing.T) {
	w := Driving()
	s := w.Stage("segmentation")
	slo := w.StageSLO(s, models.ClassV100, w.Batch)
	lat := s.Model.Latency(models.ClassV100, w.Batch)
	xfer := time.Duration(float64(w.StageInputBytes(s, w.Batch)) / sloTransferBps * float64(time.Second))
	if want := time.Duration(1.5 * float64(lat+xfer)); slo != want {
		t.Errorf("SLO = %v, want %v (1.5 × (compute + transfer))", slo, want)
	}
	if slo <= time.Duration(1.5*float64(lat)) {
		t.Error("SLO should budget input transfer beyond compute")
	}
}

func TestStageInputBytes(t *testing.T) {
	w := Driving()
	den := w.Stage("denoise") // GPU source: ingress payload
	if got := w.StageInputBytes(den, 8); got != den.Model.InBytes(8) {
		t.Errorf("source input bytes = %d", got)
	}
	seg := w.Stage("segmentation")
	if got := w.StageInputBytes(seg, 8); got != den.Model.OutBytes(8) {
		t.Errorf("chain input bytes = %d", got)
	}
	// Fan-in: face-recog pulls from all 4 face-det replicas.
	v := Video()
	fr := v.Stage("face-recog")
	fd := v.Stage("face-det")
	if got := v.StageInputBytes(fr, 4); got != 4*fd.Model.OutBytes(4) {
		t.Errorf("fan-in input bytes = %d, want %d", got, 4*fd.Model.OutBytes(4))
	}
}

func TestEdgeBytes(t *testing.T) {
	w := Traffic()
	pre := w.Stage("preprocess")
	if got := EdgeBytes(pre, 8); got != pre.Model.OutBytes(8) {
		t.Errorf("EdgeBytes = %d", got)
	}
}

func TestDOTExport(t *testing.T) {
	for _, w := range Suite() {
		dot := w.DOT()
		for _, s := range w.Stages {
			if !strings.Contains(dot, "\""+s.Name+"\"") {
				t.Errorf("%s: DOT missing stage %s", w.Name, s.Name)
			}
		}
		if !strings.Contains(dot, "digraph") || !strings.Contains(dot, "->") && len(w.Stages) > 1 {
			t.Errorf("%s: malformed DOT:\n%s", w.Name, dot)
		}
	}
	// Replicas and probabilities are annotated.
	v := Video().DOT()
	if !strings.Contains(v, "×4") {
		t.Error("video DOT missing replica annotation")
	}
	tr := Traffic().DOT()
	if !strings.Contains(tr, "p=0.7") {
		t.Error("traffic DOT missing probability annotation")
	}
}

func TestHumanBytes(t *testing.T) {
	cases := map[int64]string{
		512:     "512 B",
		2 << 10: "2.0 KiB",
		3 << 20: "3.0 MiB",
		5 << 30: "5.0 GiB",
	}
	for n, want := range cases {
		if got := humanBytes(n); got != want {
			t.Errorf("humanBytes(%d) = %q, want %q", n, got, want)
		}
	}
}
