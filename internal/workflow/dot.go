package workflow

import (
	"fmt"
	"strings"
)

// DOT renders the workflow as a Graphviz digraph: GPU functions as boxes,
// CPU functions as ellipses, edges labeled with the per-request data volume
// at the default batch.
func (w *Workflow) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", w.Name)
	b.WriteString("  rankdir=LR;\n")
	for _, s := range w.Stages {
		shape := "box"
		fill := "#a5d6a7" // green: gFn
		if !s.IsGPU() {
			shape = "ellipse"
			fill = "#fff59d" // yellow: cFn
		}
		label := s.Name
		if s.ReplicaCount() > 1 {
			label = fmt.Sprintf("%s ×%d", s.Name, s.ReplicaCount())
		}
		if p := s.ProbOrOne(); p < 1 {
			label = fmt.Sprintf("%s (p=%.1f)", label, p)
		}
		fmt.Fprintf(&b, "  %q [shape=%s style=filled fillcolor=%q label=%q];\n",
			s.Name, shape, fill, label)
	}
	for _, s := range w.Stages {
		for _, dn := range s.Deps {
			d := w.Stage(dn)
			fmt.Fprintf(&b, "  %q -> %q [label=\"%s\"];\n",
				dn, s.Name, humanBytes(EdgeBytes(d, w.Batch)))
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func humanBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(n)/float64(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/float64(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/float64(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}
