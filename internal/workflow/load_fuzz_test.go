package workflow

import (
	"strings"
	"testing"
)

// FuzzLoadWorkflow feeds arbitrary bytes through the JSON workflow loader.
// Parse must never panic: malformed JSON, dependency cycles (a dep naming a
// later or the same stage), dangling dependency references, and duplicate
// stage names all have to surface as errors. Whenever Parse does accept an
// input, the returned workflow must re-validate cleanly.
func FuzzLoadWorkflow(f *testing.F) {
	seeds := []string{
		sampleJSON,
		`{"name":"d","stages":[{"name":"a","model":"denoise"}]}`,
		// Malformed JSON.
		`{{{`,
		`{"name":"x","stages":[`,
		`null`,
		`"just a string"`,
		// Unknown fields are rejected by DisallowUnknownFields.
		`{"name":"x","wat":1,"stages":[{"name":"a","model":"denoise"}]}`,
		// Self- and forward-referencing deps (the cycle cases: deps must
		// name a preceding stage).
		`{"name":"x","stages":[{"name":"a","model":"denoise","deps":["a"]}]}`,
		`{"name":"x","stages":[{"name":"a","model":"denoise","deps":["b"]},{"name":"b","model":"denoise","deps":["a"]}]}`,
		// Dangling dependency reference.
		`{"name":"x","stages":[{"name":"a","model":"denoise","deps":["ghost"]}]}`,
		// Duplicate stage names.
		`{"name":"x","stages":[{"name":"a","model":"denoise"},{"name":"a","model":"denoise"}]}`,
		// Both model forms, bad custom profile, unknown model.
		`{"name":"x","stages":[{"name":"a","model":"denoise","custom":{"per_item_us":1,"in_bytes":1,"out_bytes":1}}]}`,
		`{"name":"x","stages":[{"name":"a","custom":{"per_item_us":0,"in_bytes":-1,"out_bytes":1}}]}`,
		`{"name":"x","stages":[{"name":"a","model":"nope"}]}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		w, err := Parse(strings.NewReader(src))
		if err != nil {
			return
		}
		if w == nil {
			t.Fatal("Parse returned nil workflow without error")
		}
		if err := w.Validate(); err != nil {
			t.Fatalf("accepted workflow fails Validate: %v", err)
		}
	})
}
