package workflow

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleJSON = `{
  "name": "custom-pipeline",
  "batch": 4,
  "slo_scale": 2.0,
  "stages": [
    {"name": "load", "custom": {"base_us": 1000, "per_item_us": 500,
      "in_bytes": 1048576, "out_bytes": 4194304, "cpu_only": true}},
    {"name": "detect", "model": "yolo-det", "deps": ["load"]},
    {"name": "classify", "model": "resnet50", "deps": ["detect"], "prob": 0.5, "replicas": 2}
  ]
}`

func TestParseWorkflowJSON(t *testing.T) {
	w, err := Parse(strings.NewReader(sampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "custom-pipeline" || w.Batch != 4 || w.SLOScale != 2.0 {
		t.Errorf("header = %q/%d/%v", w.Name, w.Batch, w.SLOScale)
	}
	if len(w.Stages) != 3 {
		t.Fatalf("stages = %d", len(w.Stages))
	}
	load := w.Stage("load")
	if !load.Model.CPUOnly || load.Model.OutBytesPerItem != 4<<20 {
		t.Errorf("custom profile wrong: %+v", load.Model)
	}
	if w.Stage("detect").Model.Name != "yolo-det" {
		t.Error("builtin model reference not resolved")
	}
	cls := w.Stage("classify")
	if cls.ProbOrOne() != 0.5 || cls.ReplicaCount() != 2 {
		t.Errorf("classify prob/replicas = %v/%d", cls.ProbOrOne(), cls.ReplicaCount())
	}
}

func TestParseDefaults(t *testing.T) {
	w, err := Parse(strings.NewReader(`{"name":"d","stages":[{"name":"a","model":"denoise"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if w.Batch != 1 || w.SLOScale != 1.5 {
		t.Errorf("defaults = %d/%v, want 1/1.5", w.Batch, w.SLOScale)
	}
}

func TestParseRejectsBadSpecs(t *testing.T) {
	cases := map[string]string{
		"missing name":     `{"stages":[{"name":"a","model":"denoise"}]}`,
		"unknown model":    `{"name":"x","stages":[{"name":"a","model":"nope"}]}`,
		"both model forms": `{"name":"x","stages":[{"name":"a","model":"denoise","custom":{"per_item_us":1,"in_bytes":1,"out_bytes":1}}]}`,
		"bad custom":       `{"name":"x","stages":[{"name":"a","custom":{"per_item_us":0,"in_bytes":1,"out_bytes":1}}]}`,
		"bad dep":          `{"name":"x","stages":[{"name":"a","model":"denoise","deps":["ghost"]}]}`,
		"unknown field":    `{"name":"x","wat":1,"stages":[{"name":"a","model":"denoise"}]}`,
		"not json":         `{{{`,
	}
	for label, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected error", label)
		}
	}
}

func TestLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wf.json")
	if err := os.WriteFile(path, []byte(sampleJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	w, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "custom-pipeline" {
		t.Errorf("loaded name = %q", w.Name)
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file should error")
	}
}
