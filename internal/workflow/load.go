package workflow

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"grouter/internal/models"
)

// fileSpec is the on-disk JSON schema for user-defined workflows.
type fileSpec struct {
	Name     string      `json:"name"`
	Batch    int         `json:"batch"`
	SLOScale float64     `json:"slo_scale"`
	Stages   []stageSpec `json:"stages"`
}

type stageSpec struct {
	Name string `json:"name"`
	// Model names a builtin profile (see models.Names), or Custom defines
	// one inline.
	Model    string      `json:"model"`
	Custom   *customSpec `json:"custom"`
	Deps     []string    `json:"deps"`
	Prob     float64     `json:"prob"`
	Replicas int         `json:"replicas"`
}

type customSpec struct {
	// Latencies in microseconds on the V100 baseline.
	BaseUS    int64 `json:"base_us"`
	PerItemUS int64 `json:"per_item_us"`
	// Tensor sizes in bytes per batch item.
	InBytes  int64 `json:"in_bytes"`
	OutBytes int64 `json:"out_bytes"`
	CPUOnly  bool  `json:"cpu_only"`
	// WeightsBytes sizes the model loaded on a cold start.
	WeightsBytes int64 `json:"weights_bytes"`
}

// Parse reads a workflow definition from JSON. Stages may reference builtin
// model profiles by name or define custom ones inline; the result is
// validated before being returned.
func Parse(r io.Reader) (*Workflow, error) {
	var spec fileSpec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("workflow: parse: %w", err)
	}
	if spec.Name == "" {
		return nil, fmt.Errorf("workflow: missing name")
	}
	w := &Workflow{Name: spec.Name, Batch: spec.Batch, SLOScale: spec.SLOScale}
	if w.Batch <= 0 {
		w.Batch = 1
	}
	if w.SLOScale == 0 {
		w.SLOScale = 1.5
	}
	for _, ss := range spec.Stages {
		var prof *models.Profile
		switch {
		case ss.Custom != nil && ss.Model != "":
			return nil, fmt.Errorf("workflow: stage %q sets both model and custom", ss.Name)
		case ss.Custom != nil:
			c := ss.Custom
			if c.PerItemUS <= 0 || c.InBytes <= 0 || c.OutBytes <= 0 {
				return nil, fmt.Errorf("workflow: stage %q custom profile needs positive per_item_us/in_bytes/out_bytes", ss.Name)
			}
			prof = &models.Profile{
				Name:            ss.Name,
				Base:            microseconds(c.BaseUS),
				PerItem:         microseconds(c.PerItemUS),
				InBytesPerItem:  c.InBytes,
				OutBytesPerItem: c.OutBytes,
				CPUOnly:         c.CPUOnly,
				WeightsBytes:    c.WeightsBytes,
			}
		default:
			p, err := models.Lookup(ss.Model)
			if err != nil {
				return nil, fmt.Errorf("workflow: stage %q: %w", ss.Name, err)
			}
			prof = p
		}
		w.Stages = append(w.Stages, &Stage{
			Name:     ss.Name,
			Model:    prof,
			Deps:     ss.Deps,
			Prob:     ss.Prob,
			Replicas: ss.Replicas,
		})
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return w, nil
}

// LoadFile parses a workflow definition from a JSON file.
func LoadFile(path string) (*Workflow, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("workflow: %w", err)
	}
	defer f.Close()
	return Parse(f)
}

func microseconds(us int64) time.Duration { return time.Duration(us) * time.Microsecond }
