package memsim

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"grouter/internal/sim"
)

func TestDeviceAllocFree(t *testing.T) {
	d := NewDevice("gpu0", 1000)
	b, err := d.Alloc(600)
	if err != nil {
		t.Fatal(err)
	}
	if d.Used() != 600 || d.Free() != 400 {
		t.Errorf("used/free = %d/%d, want 600/400", d.Used(), d.Free())
	}
	if _, err := d.Alloc(500); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("over-allocation error = %v, want ErrOutOfMemory", err)
	}
	b.Free()
	if d.Used() != 0 {
		t.Errorf("used after free = %d, want 0", d.Used())
	}
	if d.Peak() != 600 {
		t.Errorf("peak = %d, want 600", d.Peak())
	}
}

func TestDoubleFreePanics(t *testing.T) {
	d := NewDevice("gpu0", 100)
	b, _ := d.Alloc(10)
	b.Free()
	defer func() {
		if recover() == nil {
			t.Error("double free should panic")
		}
	}()
	b.Free()
}

func TestPoolGrowAllocReleaseShrink(t *testing.T) {
	d := NewDevice("gpu0", 1000)
	p := NewPool(d)
	warm, err := p.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if warm {
		t.Error("first alloc should be a cold grow")
	}
	if p.Reserved() != 100 || p.Used() != 100 || d.Used() != 100 {
		t.Errorf("reserved/used/dev = %d/%d/%d", p.Reserved(), p.Used(), d.Used())
	}
	p.Release(100)
	if p.Idle() != 100 {
		t.Errorf("idle = %d, want 100", p.Idle())
	}
	// Now a same-size alloc is warm.
	warm, err = p.Alloc(80)
	if err != nil || !warm {
		t.Errorf("warm alloc = %v/%v, want true/nil", warm, err)
	}
	p.Release(80)
	if got := p.Shrink(1000); got != 100 {
		t.Errorf("shrink released %d, want 100 (all idle)", got)
	}
	if d.Used() != 0 {
		t.Errorf("device used after shrink = %d, want 0", d.Used())
	}
}

func TestPoolShrinkOnlyIdle(t *testing.T) {
	d := NewDevice("gpu0", 1000)
	p := NewPool(d)
	if _, err := p.Alloc(200); err != nil {
		t.Fatal(err)
	}
	// All 200 are live; shrink must release nothing.
	if got := p.Shrink(200); got != 0 {
		t.Errorf("shrink released %d live bytes", got)
	}
}

func TestPoolGrowOOM(t *testing.T) {
	d := NewDevice("gpu0", 100)
	p := NewPool(d)
	if _, err := p.Alloc(50); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Alloc(60); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("err = %v, want ErrOutOfMemory", err)
	}
}

func TestPoolInvariantProperty(t *testing.T) {
	// Property: for any sequence of alloc/release, 0 <= used <= reserved <=
	// device capacity, and device.used == reserved.
	f := func(ops []int16) bool {
		d := NewDevice("gpu0", 1<<20)
		p := NewPool(d)
		live := []int64{}
		for _, op := range ops {
			n := int64(op)
			if n >= 0 {
				if _, err := p.Alloc(n); err == nil {
					live = append(live, n)
				}
			} else if len(live) > 0 {
				p.Release(live[len(live)-1])
				live = live[:len(live)-1]
				p.Shrink(-n)
			}
			if p.Used() < 0 || p.Used() > p.Reserved() || p.Reserved() > d.Capacity {
				return false
			}
			if d.Used() != p.Reserved() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestByteGateBlocksUntilRelease(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	g := NewByteGate(e, 100)
	var acquiredAt time.Duration
	e.Go("holder", func(p *sim.Proc) {
		g.Acquire(p, 80)
		p.Sleep(5 * time.Second)
		g.Release(80)
	})
	e.GoAfter(time.Second, "waiter", func(p *sim.Proc) {
		g.Acquire(p, 50)
		acquiredAt = p.Now()
		g.Release(50)
	})
	e.Run(0)
	if acquiredAt != 5*time.Second {
		t.Errorf("waiter acquired at %v, want 5s", acquiredAt)
	}
}

func TestByteGateFIFO(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	g := NewByteGate(e, 100)
	var order []string
	e.Go("holder", func(p *sim.Proc) {
		g.Acquire(p, 100)
		p.Sleep(time.Second)
		g.Release(100)
	})
	// big arrives first and must be served before small, even though small
	// would fit earlier.
	e.GoAfter(10*time.Millisecond, "big", func(p *sim.Proc) {
		g.Acquire(p, 90)
		order = append(order, "big")
		p.Sleep(time.Second)
		g.Release(90)
	})
	e.GoAfter(20*time.Millisecond, "small", func(p *sim.Proc) {
		g.Acquire(p, 10)
		order = append(order, "small")
		g.Release(10)
	})
	e.Run(0)
	if len(order) != 2 || order[0] != "big" || order[1] != "small" {
		t.Errorf("order = %v, want [big small]", order)
	}
}

func TestByteGateClampsOversizedRequest(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	g := NewByteGate(e, 100)
	var got int64
	e.Go("p", func(p *sim.Proc) {
		got = g.Acquire(p, 500)
		g.Release(got)
	})
	e.Run(0)
	if got != 100 {
		t.Errorf("clamped acquire = %d, want 100", got)
	}
}
