// Package memsim models device (GPU) and host memory: capacity accounting,
// raw allocations with cudaMalloc-like latency, reusable memory pools with
// µs-level suballocation, and byte-granular gates for shared pinned staging
// buffers.
//
// The package tracks bytes only — there is no backing storage. That is all
// the data-plane logic needs: placement, eviction, and elasticity decisions
// are driven by byte counts and allocation latencies.
package memsim

import (
	"errors"
	"fmt"
	"time"

	"grouter/internal/sim"
)

// Allocation latencies observed on real CUDA stacks and used by the paper's
// argument for pooling (§4.4.1): native cudaMalloc/cudaFree are
// millisecond-level, pool suballocation is microsecond-level.
const (
	// RawAllocLatency is the cost of a native device allocation.
	RawAllocLatency = 1 * time.Millisecond
	// RawFreeLatency is the cost of a native device free.
	RawFreeLatency = 500 * time.Microsecond
	// PoolAllocLatency is the cost of suballocating from a warm pool.
	PoolAllocLatency = 10 * time.Microsecond
)

// ErrOutOfMemory is returned when a device cannot satisfy an allocation.
var ErrOutOfMemory = errors.New("memsim: out of memory")

// Device is one memory device (a GPU's HBM or the host's DRAM).
type Device struct {
	Name     string
	Capacity int64

	used int64
	peak int64
}

// NewDevice returns a device with the given capacity in bytes.
func NewDevice(name string, capacity int64) *Device {
	if capacity <= 0 {
		panic(fmt.Sprintf("memsim: device %s capacity %d", name, capacity))
	}
	return &Device{Name: name, Capacity: capacity}
}

// Used returns the allocated byte count.
func (d *Device) Used() int64 { return d.used }

// Free returns the unallocated byte count.
func (d *Device) Free() int64 { return d.Capacity - d.used }

// Peak returns the high-water mark of allocated bytes.
func (d *Device) Peak() int64 { return d.peak }

// Alloc reserves size bytes, or returns ErrOutOfMemory.
func (d *Device) Alloc(size int64) (*Block, error) {
	if size < 0 {
		panic(fmt.Sprintf("memsim: negative allocation %d on %s", size, d.Name))
	}
	if d.used+size > d.Capacity {
		return nil, fmt.Errorf("%w: %s needs %d, free %d", ErrOutOfMemory, d.Name, size, d.Free())
	}
	d.used += size
	if d.used > d.peak {
		d.peak = d.used
	}
	return &Block{dev: d, size: size}, nil
}

// Block is one reservation on a device.
type Block struct {
	dev   *Device
	size  int64
	freed bool
}

// Size returns the block's byte count.
func (b *Block) Size() int64 { return b.size }

// Device returns the owning device.
func (b *Block) Device() *Device { return b.dev }

// Free releases the block. Double-free panics: it is always a bug.
func (b *Block) Free() {
	if b.freed {
		panic("memsim: double free")
	}
	b.freed = true
	b.dev.used -= b.size
}

// Pool is a growable region of device memory from which data items are
// suballocated without touching the native allocator. Reserved-but-unused
// bytes are the "memory bloat" the paper's elastic storage eliminates.
type Pool struct {
	dev      *Device
	reserved int64
	used     int64
	peakRes  int64
	// Quantum rounds cold grows up to block granularity, so a burst of
	// allocations pays one native allocation instead of one per item
	// (PyTorch-style block growth). Zero grows exactly to need.
	Quantum int64
}

// NewPool returns an empty pool on dev.
func NewPool(dev *Device) *Pool { return &Pool{dev: dev} }

// Device returns the pool's device.
func (p *Pool) Device() *Device { return p.dev }

// Reserved returns the bytes held from the device (used + idle).
func (p *Pool) Reserved() int64 { return p.reserved }

// Used returns the bytes suballocated to live data.
func (p *Pool) Used() int64 { return p.used }

// Idle returns reserved bytes not backing live data.
func (p *Pool) Idle() int64 { return p.reserved - p.used }

// PeakReserved returns the pool's reservation high-water mark.
func (p *Pool) PeakReserved() int64 { return p.peakRes }

// Grow reserves size more bytes from the device.
func (p *Pool) Grow(size int64) error {
	if size < 0 {
		panic("memsim: negative pool grow")
	}
	if p.dev.used+size > p.dev.Capacity {
		return fmt.Errorf("%w: pool grow %d on %s, free %d", ErrOutOfMemory, size, p.dev.Name, p.dev.Free())
	}
	p.dev.used += size
	if p.dev.used > p.dev.peak {
		p.dev.peak = p.dev.used
	}
	p.reserved += size
	if p.reserved > p.peakRes {
		p.peakRes = p.reserved
	}
	return nil
}

// Shrink returns idle bytes to the device, at most the requested size.
// It returns the bytes actually released.
func (p *Pool) Shrink(size int64) int64 {
	if size < 0 {
		panic("memsim: negative pool shrink")
	}
	idle := p.Idle()
	if size > idle {
		size = idle
	}
	p.reserved -= size
	p.dev.used -= size
	return size
}

// Alloc suballocates from the pool, growing it if needed. It reports whether
// the allocation hit the warm pool (true) or required a native grow (false),
// so callers can charge the right latency.
func (p *Pool) Alloc(size int64) (warm bool, err error) {
	if size < 0 {
		panic("memsim: negative pool alloc")
	}
	if p.used+size <= p.reserved {
		p.used += size
		return true, nil
	}
	need := p.used + size - p.reserved
	if p.Quantum > need {
		// Round up to the block quantum when the device has room.
		if extra := p.Quantum; p.dev.used+extra <= p.dev.Capacity {
			need = extra
		}
	}
	if err := p.Grow(need); err != nil {
		return false, err
	}
	p.used += size
	return false, nil
}

// Release returns size suballocated bytes to the pool (they stay reserved).
func (p *Pool) Release(size int64) {
	if size < 0 || size > p.used {
		panic(fmt.Sprintf("memsim: pool release %d with used %d", size, p.used))
	}
	p.used -= size
}

// ByteGate is a FIFO byte-granular semaphore, used to model a fixed circular
// pinned staging buffer shared by concurrent transfers: acquiring more bytes
// than are free blocks the caller until earlier users release.
type ByteGate struct {
	engine   *sim.Engine
	capacity int64
	inUse    int64
	waiters  []*gateWaiter
}

type gateWaiter struct {
	p    *sim.Proc
	want int64
}

// NewByteGate returns a gate with the given byte capacity.
func NewByteGate(e *sim.Engine, capacity int64) *ByteGate {
	if capacity <= 0 {
		panic("memsim: byte gate capacity must be positive")
	}
	return &ByteGate{engine: e, capacity: capacity}
}

// Capacity returns the gate's total bytes.
func (g *ByteGate) Capacity() int64 { return g.capacity }

// InUse returns the currently held bytes.
func (g *ByteGate) InUse() int64 { return g.inUse }

// Acquire takes want bytes, suspending p until available. Requests larger
// than the capacity are clamped to the capacity (a transfer bigger than the
// staging buffer cycles through it; the caller models that by acquiring at
// most the buffer size at a time).
func (g *ByteGate) Acquire(p *sim.Proc, want int64) int64 {
	if want <= 0 {
		return 0
	}
	if want > g.capacity {
		want = g.capacity
	}
	// FIFO: block behind earlier waiters even if our request would fit.
	if len(g.waiters) == 0 && g.inUse+want <= g.capacity {
		g.inUse += want
		return want
	}
	w := &gateWaiter{p: p, want: want}
	g.waiters = append(g.waiters, w)
	p.Suspend()
	return want
}

// Release returns bytes to the gate and wakes waiters whose requests now fit
// (in FIFO order).
func (g *ByteGate) Release(bytes int64) {
	if bytes < 0 || bytes > g.inUse {
		panic(fmt.Sprintf("memsim: gate release %d with inUse %d", bytes, g.inUse))
	}
	g.inUse -= bytes
	for len(g.waiters) > 0 {
		w := g.waiters[0]
		if g.inUse+w.want > g.capacity {
			break
		}
		g.inUse += w.want
		g.waiters = g.waiters[1:]
		proc := w.p
		g.engine.ScheduleWake(proc)
	}
}
