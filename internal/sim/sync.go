package sim

import "time"

// Signal is a one-shot broadcast event. Processes that Wait before Fire are
// suspended; Fire wakes all of them (in wait order) and any later Wait
// returns immediately. The zero Signal is not usable; use NewSignal.
type Signal struct {
	engine  *Engine
	fired   bool
	waiters []*Proc
}

// NewSignal returns an unfired signal bound to e.
func NewSignal(e *Engine) *Signal { return &Signal{engine: e} }

// MakeSignal returns an unfired signal value bound to e. Embedding the value
// in a pooled struct (and rearming it with Reset) avoids the per-use
// allocation of NewSignal on hot paths.
func MakeSignal(e *Engine) Signal { return Signal{engine: e} }

// Reset rearms the signal for reuse. It must only be called once every
// waiter woken by the previous Fire has resumed — i.e. when the owner knows
// the signal's last cycle is fully drained.
func (s *Signal) Reset() {
	s.fired = false
	s.waiters = s.waiters[:0]
}

// Fired reports whether the signal has fired.
func (s *Signal) Fired() bool { return s.fired }

// Wait suspends p until the signal fires. If it has already fired, Wait
// returns immediately.
func (s *Signal) Wait(p *Proc) {
	if s.fired {
		return
	}
	s.waiters = append(s.waiters, p)
	p.suspend()
}

// Fire marks the signal fired and schedules all waiters to resume at the
// current instant. Firing an already-fired signal is a no-op.
func (s *Signal) Fire() {
	if s.fired {
		return
	}
	s.fired = true
	for i, p := range s.waiters {
		s.engine.ScheduleWake(p)
		s.waiters[i] = nil
	}
	// Keep the backing array: pooled signals (Reset) re-fill it on the next
	// cycle without reallocating.
	s.waiters = s.waiters[:0]
}

// Future is a Signal that carries a value of type T.
type Future[T any] struct {
	sig *Signal
	val T
}

// NewFuture returns an unresolved future bound to e.
func NewFuture[T any](e *Engine) *Future[T] { return &Future[T]{sig: NewSignal(e)} }

// Resolve sets the value and fires the underlying signal. Resolving twice is
// a no-op (the first value wins).
func (f *Future[T]) Resolve(v T) {
	if f.sig.fired {
		return
	}
	f.val = v
	f.sig.Fire()
}

// Wait blocks p until the future resolves and returns its value.
func (f *Future[T]) Wait(p *Proc) T {
	f.sig.Wait(p)
	return f.val
}

// Resolved reports whether the future has a value.
func (f *Future[T]) Resolved() bool { return f.sig.fired }

// resWaiter is one queued acquirer: the process plus its priority class and
// enqueue instant (the instant feeds priority aging).
type resWaiter struct {
	p   *Proc
	pri int32
	at  time.Duration
}

// Resource is a FIFO counting resource (e.g. a GPU compute slot). Acquire
// blocks when capacity is exhausted; Release hands the slot to the oldest
// waiter. AcquirePri adds QoS classes: higher-priority waiters are granted
// slots before lower-priority ones, with optional aging (SetAging) so a
// sustained high-priority stream cannot starve low-priority work.
type Resource struct {
	engine  *Engine
	cap     int
	inUse   int
	aging   time.Duration
	waiters []resWaiter
}

// NewResource returns a resource with the given capacity (must be >= 1).
func NewResource(e *Engine, capacity int) *Resource {
	if capacity < 1 {
		panic("sim: resource capacity must be >= 1")
	}
	return &Resource{engine: e, cap: capacity}
}

// InUse returns the number of held slots.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of processes waiting to acquire.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// SetAging sets the priority-aging period: a queued waiter's effective
// priority rises one level per d waited, so low-priority requests overtaken
// by a high-priority stream eventually rank equal and drain in FIFO order.
// Zero (the default) disables aging.
func (r *Resource) SetAging(d time.Duration) { r.aging = d }

// effectivePri is a waiter's priority after aging at the given instant.
// Effective priorities of queued waiters all grow at the same rate, so their
// relative order never inverts after insertion and the queue stays sorted.
func (r *Resource) effectivePri(w *resWaiter, now time.Duration) int32 {
	if r.aging <= 0 {
		return w.pri
	}
	return w.pri + int32((now-w.at)/r.aging)
}

// Acquire obtains a slot at the default (lowest) priority, suspending p
// until one is available.
func (r *Resource) Acquire(p *Proc) { r.AcquirePri(p, 0) }

// AcquirePri obtains a slot at the given priority. When capacity is
// exhausted, the waiter is inserted behind every queued waiter whose
// effective (aged) priority is at least its own and ahead of the rest —
// equal priorities keep FIFO order, so a fleet of priority-0 acquirers
// behaves exactly like Acquire.
func (r *Resource) AcquirePri(p *Proc, pri int32) {
	if r.inUse < r.cap {
		r.inUse++
		return
	}
	now := r.engine.Now()
	idx := len(r.waiters)
	for idx > 0 && r.effectivePri(&r.waiters[idx-1], now) < pri {
		idx--
	}
	r.waiters = append(r.waiters, resWaiter{})
	copy(r.waiters[idx+1:], r.waiters[idx:])
	r.waiters[idx] = resWaiter{p: p, pri: pri, at: now}
	p.suspend()
}

// Release returns a slot. If processes are waiting, the slot transfers to
// the frontmost waiter (oldest within the highest effective priority).
func (r *Resource) Release() {
	if len(r.waiters) > 0 {
		next := r.waiters[0].p
		r.waiters[0] = resWaiter{}
		r.waiters = r.waiters[1:]
		r.engine.ScheduleWake(next)
		return
	}
	if r.inUse <= 0 {
		panic("sim: Release without matching Acquire")
	}
	r.inUse--
}

// Queue is an unbounded FIFO channel between processes. Pop suspends the
// caller while the queue is empty.
type Queue[T any] struct {
	engine *Engine
	items  []T
	// waiters are processes blocked in Pop, each with a slot to receive into.
	waiters []*queueWaiter[T]
}

type queueWaiter[T any] struct {
	p   *Proc
	val T
	ok  bool
}

// NewQueue returns an empty queue bound to e.
func NewQueue[T any](e *Engine) *Queue[T] { return &Queue[T]{engine: e} }

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Push appends v; if a process is blocked in Pop, it is scheduled to resume
// with v at the current instant.
func (q *Queue[T]) Push(v T) {
	if len(q.waiters) > 0 {
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		w.val, w.ok = v, true
		q.engine.ScheduleWake(w.p)
		return
	}
	q.items = append(q.items, v)
}

// Pop removes and returns the oldest item, suspending p while the queue is
// empty.
func (q *Queue[T]) Pop(p *Proc) T {
	if len(q.items) > 0 {
		v := q.items[0]
		q.items = q.items[1:]
		return v
	}
	w := &queueWaiter[T]{p: p}
	q.waiters = append(q.waiters, w)
	p.suspend()
	if !w.ok {
		panic("sim: queue waiter woken without a value")
	}
	return w.val
}

// WaitAll suspends p until every signal in sigs has fired.
func WaitAll(p *Proc, sigs ...*Signal) {
	for _, s := range sigs {
		s.Wait(p)
	}
}

// After returns a Signal that fires after d of virtual time.
func After(e *Engine, d time.Duration) *Signal {
	s := NewSignal(e)
	e.Schedule(d, s.Fire)
	return s
}
