// Package sim provides a deterministic discrete-event simulation engine with
// SimPy-style cooperative processes.
//
// The engine maintains a virtual clock and an event heap ordered by
// (time, sequence number). Processes are goroutines that run strictly one at
// a time: the engine wakes a process, the process runs until it blocks on a
// primitive (Sleep, Signal.Wait, Resource.Acquire, ...), and control returns
// to the engine. Because only one goroutine is ever runnable and ties are
// broken by monotonically increasing sequence numbers, a simulation is fully
// deterministic: the same inputs produce bit-identical schedules.
//
// The engine is built for scale replays (10^5..10^6 requests): the event heap
// is a concrete-typed binary heap (no container/heap interface boxing),
// process wake-ups are value events carrying the target process instead of a
// fresh closure, and finished process goroutines park in a free list so a new
// Go reuses a warm goroutine instead of spawning one.
package sim

import (
	"fmt"
	"sync"
	"time"
)

// Engine is a discrete-event simulation engine. The zero value is not usable;
// use NewEngine.
type Engine struct {
	now    time.Duration
	seq    int64
	events eventHeap

	// yield is the handshake channel on which the currently running process
	// signals that it has blocked (or finished) and the engine may proceed.
	yield chan struct{}
	// kill is closed by Close to terminate processes that are still blocked
	// when the simulation ends.
	kill   chan struct{}
	closed bool
	wg     sync.WaitGroup

	// nonDaemon counts queued non-daemon events; Run(0) stops at zero.
	nonDaemon int
	// executed counts executed events (ShardUtil reporting).
	executed int64

	// free holds retired process shells whose goroutines are parked awaiting
	// reuse. Access follows the same single-runner discipline as the event
	// heap: a process only touches it while it holds the conceptual run lock
	// (between being resumed and yielding), so no mutex is needed.
	free []*Proc

	// Obs is an opaque observability slot. Higher layers (internal/obs)
	// attach a tracer here without the engine depending on them; a nil slot
	// means tracing is disabled and costs only a nil check at call sites.
	Obs any
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{
		yield: make(chan struct{}),
		kill:  make(chan struct{}),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// NextEventAt returns the virtual time of the earliest pending event (daemon
// or not) and whether one exists. Shard coordinators use it to derive the
// next conservative lookahead window.
func (e *Engine) NextEventAt() (time.Duration, bool) {
	if len(e.events) == 0 {
		return 0, false
	}
	return e.events[0].at, true
}

// PendingNonDaemon returns the number of queued non-daemon events — the
// work that keeps Run(0) (and a ShardGroup run) alive.
func (e *Engine) PendingNonDaemon() int { return e.nonDaemon }

// Executed returns the cumulative count of events this engine has executed.
func (e *Engine) Executed() int64 { return e.executed }

// Reserve pre-sizes the event heap for at least events pending entries, so a
// large replay does not grow the heap incrementally.
func (e *Engine) Reserve(events int) {
	if cap(e.events) < events {
		grown := make(eventHeap, len(e.events), events)
		copy(grown, e.events)
		e.events = grown
	}
}

type event struct {
	at  time.Duration
	seq int64
	// daemon events do not keep Run alive: Run(0) returns when only daemon
	// events remain (background maintenance loops must not prevent a
	// simulation from completing).
	daemon bool
	fn     func()
	// wake, when non-nil, makes this a process wake-up event: the engine
	// resumes the process directly instead of calling fn. gen snapshots the
	// process's incarnation at scheduling time so a wake-up that outlives its
	// process cannot leak into a recycled one.
	wake *Proc
	gen  uint64
}

// eventHeap is a concrete-typed binary min-heap over (at, seq). It
// deliberately does not implement container/heap: pushing through that
// interface boxes every event into an allocation, which dominates the event
// loop at replay scale.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{} // drop fn/wake references so retired entries don't pin memory
	s = s[:n]
	*h = s
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && s.less(r, l) {
			m = r
		}
		if !s.less(m, i) {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	return top
}

// Schedule arranges for fn to run at now+delay. A negative delay is treated
// as zero. Events at equal times fire in scheduling order.
func (e *Engine) Schedule(delay time.Duration, fn func()) {
	e.schedule(delay, false, fn)
}

// ScheduleDaemon schedules a background-maintenance event that does not keep
// Run(0) alive.
func (e *Engine) ScheduleDaemon(delay time.Duration, fn func()) {
	e.schedule(delay, true, fn)
}

func (e *Engine) schedule(delay time.Duration, daemon bool, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.seq++
	if !daemon {
		e.nonDaemon++
	}
	e.events.push(event{at: e.now + delay, seq: e.seq, daemon: daemon, fn: fn})
}

// scheduleWake schedules a closure-free wake-up event for p at now+delay,
// inheriting p's daemon status. The event snapshots p's generation; if p
// finishes (and its shell is recycled) before the event fires, delivery
// panics instead of silently resuming an unrelated process.
func (e *Engine) scheduleWake(delay time.Duration, p *Proc) {
	if delay < 0 {
		delay = 0
	}
	e.seq++
	if !p.Daemon {
		e.nonDaemon++
	}
	e.events.push(event{at: e.now + delay, seq: e.seq, daemon: p.Daemon, wake: p, gen: p.gen})
}

// ScheduleWake schedules p to resume at the current instant, inheriting p's
// daemon status. External synchronization primitives use it to hand a slot
// or value to a parked process.
func (e *Engine) ScheduleWake(p *Proc) {
	e.scheduleWake(0, p)
}

// Run executes events until only daemon events remain, the heap is empty, or
// the clock would pass until. A zero until runs to completion of all
// non-daemon activity and returns at the time of the last executed event.
//
// The clock is monotone: Run never rewinds it. Calling Run with a positive
// until at or before the current time executes nothing and returns the
// current time unchanged. With until beyond the current time, Run returns
// with the clock at exactly until — including when the event heap drains
// before the horizon (virtual time still passes in an idle simulation).
func (e *Engine) Run(until time.Duration) time.Duration {
	if until > 0 && until <= e.now {
		return e.now
	}
	for len(e.events) > 0 {
		if until == 0 && e.nonDaemon == 0 {
			return e.now
		}
		if until > 0 && e.events[0].at > until {
			e.now = until
			return e.now
		}
		next := e.events.pop()
		e.executed++
		if !next.daemon {
			e.nonDaemon--
		}
		if next.at > e.now {
			e.now = next.at
		}
		if next.wake != nil {
			if next.wake.gen != next.gen {
				panic(fmt.Sprintf("sim: stale wake-up for recycled process (scheduled as %q)", next.wake.Name))
			}
			e.wake(next.wake)
		} else {
			next.fn()
		}
	}
	if until > e.now {
		e.now = until
	}
	return e.now
}

// Close terminates any processes still blocked on simulation primitives and
// waits for their goroutines to exit. It must only be called when Run has
// returned (no process is mid-step). Close is idempotent.
func (e *Engine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	close(e.kill)
	e.wg.Wait()
}

// procKilled is the panic value used to unwind a process goroutine when the
// engine shuts down while the process is blocked.
type procKilled struct{}

// Runner is a process body carried by a value the caller already owns.
// Engine.GoRun uses it to start a process without allocating a closure —
// pooled per-request state implements Runner and is handed to the engine
// directly.
type Runner interface {
	Run(p *Proc)
}

// Proc is a cooperative simulation process. All Proc methods must be called
// from within the process's own body function.
type Proc struct {
	Name string
	// Daemon marks a background-maintenance process whose timer events do
	// not keep Run(0) alive.
	Daemon bool
	// Acct is an opaque per-process accounting slot. Higher layers
	// (internal/obs) attach latency-bucket accumulators here; a nil slot
	// means accounting is disabled and costs only a nil check at call sites.
	Acct   any
	engine *Engine
	resume chan struct{}

	// gen counts incarnations of this shell. It bumps when a body finishes
	// and the shell parks in the free list; pending wake events carry the gen
	// they were scheduled against, so a wake crossing a recycle boundary is
	// detected instead of resuming the wrong process.
	gen    uint64
	body   func(p *Proc)
	runner Runner
}

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.engine }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.engine.now }

// Go spawns a new process whose body starts at the current virtual time
// (after already-pending events at this time).
func (e *Engine) Go(name string, body func(p *Proc)) *Proc {
	return e.GoAfter(0, name, body)
}

// GoDaemon spawns a daemon process: its sleeps and wakeups never keep
// Run(0) alive. Use it for periodic maintenance loops.
func (e *Engine) GoDaemon(name string, body func(p *Proc)) *Proc {
	p := e.newProc(name)
	p.body = body
	p.Daemon = true
	e.scheduleWake(0, p)
	return p
}

// GoAfter spawns a new process whose body starts after delay.
func (e *Engine) GoAfter(delay time.Duration, name string, body func(p *Proc)) *Proc {
	p := e.newProc(name)
	p.body = body
	e.scheduleWake(delay, p)
	return p
}

// GoRun spawns a process that executes r.Run, starting at the current
// virtual time. Unlike Go it takes a caller-owned value rather than a
// closure, so repeated spawns of pooled work items allocate nothing.
func (e *Engine) GoRun(name string, r Runner) *Proc {
	p := e.newProc(name)
	p.runner = r
	e.scheduleWake(0, p)
	return p
}

// newProc returns a process shell ready to receive a body: recycled from the
// free list when possible, otherwise freshly spawned with a parked goroutine.
func (e *Engine) newProc(name string) *Proc {
	if n := len(e.free); n > 0 {
		p := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		p.Name = name
		return p
	}
	p := &Proc{Name: name, engine: e, resume: make(chan struct{})}
	e.wg.Add(1)
	started := make(chan struct{})
	go func() {
		defer e.wg.Done()
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(procKilled); ok {
					return
				}
				panic(fmt.Sprintf("sim: process %q panicked: %v", p.Name, r))
			}
		}()
		close(started)
		for {
			p.block()
			if p.body != nil {
				p.body(p)
			} else {
				p.runner.Run(p)
			}
			p.retire()
			e.yield <- struct{}{}
		}
	}()
	<-started
	return p
}

// retire resets the shell after its body returns and parks it in the free
// list. It runs on the process goroutine, but only in the window where the
// process still holds the run lock (the engine is blocked on yield), so the
// free-list append is ordered with all engine-side accesses.
func (p *Proc) retire() {
	p.gen++
	p.body = nil
	p.runner = nil
	p.Daemon = false
	p.Acct = nil
	e := p.engine
	e.free = append(e.free, p)
}

// wake resumes p and waits for it to block again or finish. It must only be
// called from event context (i.e. while the engine loop is executing an
// event), never from another process.
func (e *Engine) wake(p *Proc) {
	p.resume <- struct{}{}
	<-e.yield
}

// block parks the calling goroutine until the engine wakes it. Unlike
// suspend, it does not notify the engine first; it is used only for process
// startup, where the engine is not yet waiting on the yield channel.
func (p *Proc) block() {
	select {
	case <-p.resume:
	case <-p.engine.kill:
		panic(procKilled{})
	}
}

// suspend yields control to the engine and parks until woken.
func (p *Proc) suspend() {
	p.engine.yield <- struct{}{}
	p.block()
}

// Suspend parks the process until some other event wakes it via Engine.Wake.
// It is the extension point for synchronization primitives built outside
// this package.
func (p *Proc) Suspend() { p.suspend() }

// Wake resumes a process parked by Suspend (or any blocking primitive). It
// must be called from event context — i.e. from a function scheduled on the
// engine — never directly from another process.
func (e *Engine) Wake(p *Proc) { e.wake(p) }

// Sleep suspends the process for d of virtual time. A daemon process's
// sleep does not keep Run(0) alive.
func (p *Proc) Sleep(d time.Duration) {
	p.engine.scheduleWake(d, p)
	p.suspend()
}

// Yield suspends the process until all events already scheduled for the
// current instant have run.
func (p *Proc) Yield() { p.Sleep(0) }
