// Package sim provides a deterministic discrete-event simulation engine with
// SimPy-style cooperative processes.
//
// The engine maintains a virtual clock and an event heap ordered by
// (time, sequence number). Processes are goroutines that run strictly one at
// a time: the engine wakes a process, the process runs until it blocks on a
// primitive (Sleep, Signal.Wait, Resource.Acquire, ...), and control returns
// to the engine. Because only one goroutine is ever runnable and ties are
// broken by monotonically increasing sequence numbers, a simulation is fully
// deterministic: the same inputs produce bit-identical schedules.
package sim

import (
	"container/heap"
	"fmt"
	"sync"
	"time"
)

// Engine is a discrete-event simulation engine. The zero value is not usable;
// use NewEngine.
type Engine struct {
	now    time.Duration
	seq    int64
	events eventHeap

	// yield is the handshake channel on which the currently running process
	// signals that it has blocked (or finished) and the engine may proceed.
	yield chan struct{}
	// kill is closed by Close to terminate processes that are still blocked
	// when the simulation ends.
	kill   chan struct{}
	closed bool
	wg     sync.WaitGroup

	// nonDaemon counts queued non-daemon events; Run(0) stops at zero.
	nonDaemon int

	// Obs is an opaque observability slot. Higher layers (internal/obs)
	// attach a tracer here without the engine depending on them; a nil slot
	// means tracing is disabled and costs only a nil check at call sites.
	Obs any
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{
		yield: make(chan struct{}),
		kill:  make(chan struct{}),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

type event struct {
	at  time.Duration
	seq int64
	// daemon events do not keep Run alive: Run(0) returns when only daemon
	// events remain (background maintenance loops must not prevent a
	// simulation from completing).
	daemon bool
	fn     func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// Schedule arranges for fn to run at now+delay. A negative delay is treated
// as zero. Events at equal times fire in scheduling order.
func (e *Engine) Schedule(delay time.Duration, fn func()) {
	e.schedule(delay, false, fn)
}

// ScheduleDaemon schedules a background-maintenance event that does not keep
// Run(0) alive.
func (e *Engine) ScheduleDaemon(delay time.Duration, fn func()) {
	e.schedule(delay, true, fn)
}

func (e *Engine) schedule(delay time.Duration, daemon bool, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.seq++
	if !daemon {
		e.nonDaemon++
	}
	heap.Push(&e.events, event{at: e.now + delay, seq: e.seq, daemon: daemon, fn: fn})
}

// ScheduleWake schedules p to resume at the current instant, inheriting p's
// daemon status. External synchronization primitives use it to hand a slot
// or value to a parked process.
func (e *Engine) ScheduleWake(p *Proc) {
	e.schedule(0, p.Daemon, func() { e.wake(p) })
}

// Run executes events until only daemon events remain, the heap is empty, or
// the clock would pass until. A zero until runs to completion of all
// non-daemon activity and returns at the time of the last executed event.
//
// The clock is monotone: Run never rewinds it. Calling Run with a positive
// until at or before the current time executes nothing and returns the
// current time unchanged. With until beyond the current time, Run returns
// with the clock at exactly until — including when the event heap drains
// before the horizon (virtual time still passes in an idle simulation).
func (e *Engine) Run(until time.Duration) time.Duration {
	if until > 0 && until <= e.now {
		return e.now
	}
	for e.events.Len() > 0 {
		if until == 0 && e.nonDaemon == 0 {
			return e.now
		}
		next := e.events[0]
		if until > 0 && next.at > until {
			e.now = until
			return e.now
		}
		heap.Pop(&e.events)
		if !next.daemon {
			e.nonDaemon--
		}
		if next.at > e.now {
			e.now = next.at
		}
		next.fn()
	}
	if until > e.now {
		e.now = until
	}
	return e.now
}

// Close terminates any processes still blocked on simulation primitives and
// waits for their goroutines to exit. It must only be called when Run has
// returned (no process is mid-step). Close is idempotent.
func (e *Engine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	close(e.kill)
	e.wg.Wait()
}

// procKilled is the panic value used to unwind a process goroutine when the
// engine shuts down while the process is blocked.
type procKilled struct{}

// Proc is a cooperative simulation process. All Proc methods must be called
// from within the process's own body function.
type Proc struct {
	Name string
	// Daemon marks a background-maintenance process whose timer events do
	// not keep Run(0) alive.
	Daemon bool
	// Acct is an opaque per-process accounting slot. Higher layers
	// (internal/obs) attach latency-bucket accumulators here; a nil slot
	// means accounting is disabled and costs only a nil check at call sites.
	Acct   any
	engine *Engine
	resume chan struct{}
}

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.engine }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.engine.now }

// Go spawns a new process whose body starts at the current virtual time
// (after already-pending events at this time).
func (e *Engine) Go(name string, body func(p *Proc)) *Proc {
	return e.GoAfter(0, name, body)
}

// GoDaemon spawns a daemon process: its sleeps and wakeups never keep
// Run(0) alive. Use it for periodic maintenance loops.
func (e *Engine) GoDaemon(name string, body func(p *Proc)) *Proc {
	p := e.newProc(name, body)
	p.Daemon = true
	e.schedule(0, true, func() { e.wake(p) })
	return p
}

// GoAfter spawns a new process whose body starts after delay.
func (e *Engine) GoAfter(delay time.Duration, name string, body func(p *Proc)) *Proc {
	p := e.newProc(name, body)
	e.Schedule(delay, func() { e.wake(p) })
	return p
}

func (e *Engine) newProc(name string, body func(p *Proc)) *Proc {
	p := &Proc{Name: name, engine: e, resume: make(chan struct{})}
	e.wg.Add(1)
	started := make(chan struct{})
	go func() {
		defer e.wg.Done()
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(procKilled); ok {
					return
				}
				panic(fmt.Sprintf("sim: process %q panicked: %v", p.Name, r))
			}
		}()
		close(started)
		p.block()
		body(p)
		e.yield <- struct{}{}
	}()
	<-started
	return p
}

// wake resumes p and waits for it to block again or finish. It must only be
// called from event context (i.e. while the engine loop is executing an
// event), never from another process.
func (e *Engine) wake(p *Proc) {
	p.resume <- struct{}{}
	<-e.yield
}

// block parks the calling goroutine until the engine wakes it. Unlike
// suspend, it does not notify the engine first; it is used only for process
// startup, where the engine is not yet waiting on the yield channel.
func (p *Proc) block() {
	select {
	case <-p.resume:
	case <-p.engine.kill:
		panic(procKilled{})
	}
}

// suspend yields control to the engine and parks until woken.
func (p *Proc) suspend() {
	p.engine.yield <- struct{}{}
	p.block()
}

// Suspend parks the process until some other event wakes it via Engine.Wake.
// It is the extension point for synchronization primitives built outside
// this package.
func (p *Proc) Suspend() { p.suspend() }

// Wake resumes a process parked by Suspend (or any blocking primitive). It
// must be called from event context — i.e. from a function scheduled on the
// engine — never directly from another process.
func (e *Engine) Wake(p *Proc) { e.wake(p) }

// Sleep suspends the process for d of virtual time. A daemon process's
// sleep does not keep Run(0) alive.
func (p *Proc) Sleep(d time.Duration) {
	p.engine.schedule(d, p.Daemon, func() { p.engine.wake(p) })
	p.suspend()
}

// Yield suspends the process until all events already scheduled for the
// current instant have run.
func (p *Proc) Yield() { p.Sleep(0) }
