// Sharded parallel execution.
//
// A ShardGroup partitions a simulation into shards, each owning its own
// Engine — its own typed event heap, clock, and proc pool — so shards can
// execute on separate goroutines. Shards interact only through Mailboxes:
// per-pair ordered queues whose messages are delivered after a fixed,
// positive minimum latency. That latency is the conservative lookahead
// bound: because a message sent at virtual time s cannot take effect before
// s+latency, every shard may safely advance `lookahead` (the minimum latency
// over all open mailboxes) past the globally earliest pending event without
// missing an incoming message.
//
// Execution proceeds in lookahead windows. Each round the coordinator
//
//  1. finds t, the earliest pending event or undelivered message across the
//     group, and sets the window end E = t + lookahead;
//  2. delivers every queued message with delivery time <= E, in
//     (time, destination shard, mailbox, send sequence) order, by scheduling
//     it on the destination engine;
//  3. steps every shard's engine to exactly E — concurrently in parallel
//     mode, in shard-ID order in sequential mode — and barriers.
//
// Once every mailbox is closed and drained no message can ever arrive, so
// the lookahead becomes unbounded and each shard drains to completion in a
// single final window.
//
// Determinism: message delivery order is a pure function of virtual times
// and sequence numbers, each engine is single-threaded and deterministic
// within a window, and window boundaries are derived from virtual time only.
// Parallel and sequential runs of the same group are therefore
// byte-identical — RunSequential is the oracle that parallel executions are
// differentially tested against — and results never depend on goroutine
// scheduling or worker count.
package sim

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// farFuture is an unreachable virtual time.
const farFuture = time.Duration(math.MaxInt64)

// drainWindow is the sentinel "window end" used when no open mailbox
// remains: shards run to completion instead of to a horizon.
const drainWindow = time.Duration(-1)

// Shard is one member of a ShardGroup: an engine plus its synchronization
// state.
type Shard struct {
	id     int
	engine *Engine
	group  *ShardGroup

	work chan time.Duration

	busy    time.Duration
	windows int64
}

// ID returns the shard's index within its group.
func (s *Shard) ID() int { return s.id }

// Engine returns the shard's private engine. Simulation state built on it
// must not be shared with other shards; cross-shard interaction goes through
// mailboxes.
func (s *Shard) Engine() *Engine { return s.engine }

// ShardUtil reports one shard's wall-clock utilization over a group run:
// Busy is time spent executing the shard's event windows, Wait is the rest
// of the run (barrier waits and coordinator time). Busy/(Busy+Wait) low on
// one shard and high on another means the partition is imbalanced; Wait
// dominated by many small windows means the lookahead bound is too tight.
type ShardUtil struct {
	Shard   int
	Busy    time.Duration
	Wait    time.Duration
	Windows int64
	// Events is the cumulative event count the shard's engine executed.
	Events int64
}

// String renders the utilization as a one-line summary.
func (u ShardUtil) String() string {
	total := u.Busy + u.Wait
	pct := 0.0
	if total > 0 {
		pct = 100 * float64(u.Busy) / float64(total)
	}
	return fmt.Sprintf("shard %d: busy %v wait %v (%.0f%% busy) windows=%d events=%d",
		u.Shard, u.Busy.Round(time.Millisecond), u.Wait.Round(time.Millisecond),
		pct, u.Windows, u.Events)
}

// envelope is one queued cross-shard message.
type envelope struct {
	at      time.Duration // delivery time: send time + mailbox latency
	seq     int64         // per-mailbox send sequence
	payload any
}

// Mailbox is an ordered, latency-bounded message queue from one shard to
// another. Send may only be called from event context on the sending shard
// (i.e. while its engine is executing an event); the handler runs in event
// context on the destination shard at exactly send time + latency.
type Mailbox struct {
	id       int
	from, to *Shard
	latency  time.Duration
	handler  func(payload any)
	queue    []envelope
	seq      int64
	closed   bool
}

// Close marks the mailbox as finished: no further Send is allowed, and once
// every queued message is delivered the mailbox no longer bounds the group's
// lookahead. Call it from the sending shard (or before the run starts).
func (m *Mailbox) Close() { m.closed = true }

// Closed reports whether the mailbox has been closed.
func (m *Mailbox) Closed() bool { return m.closed }

// Latency returns the mailbox's delivery latency (its lookahead
// contribution).
func (m *Mailbox) Latency() time.Duration { return m.latency }

// Send queues payload for delivery to the destination shard at the current
// virtual time plus the mailbox latency. Messages on one mailbox are
// delivered in send order.
func (m *Mailbox) Send(payload any) {
	if m.closed {
		panic(fmt.Sprintf("sim: send on closed mailbox %d->%d", m.from.id, m.to.id))
	}
	m.seq++
	m.queue = append(m.queue, envelope{at: m.from.engine.now + m.latency, seq: m.seq, payload: payload})
}

// delivery pairs an envelope with its mailbox for the global merge sort.
type delivery struct {
	env envelope
	box *Mailbox
}

// ShardGroup coordinates a set of shards under the conservative lookahead
// protocol. Construct with NewShardGroup, wire mailboxes, build per-shard
// simulation state on each shard's engine, then call Run (parallel) or
// RunSequential (the determinism oracle).
type ShardGroup struct {
	shards []*Shard
	mail   []*Mailbox

	started bool
	workers bool
	done    chan struct{}
	wg      sync.WaitGroup

	wall    time.Duration
	scratch []delivery
}

// NewShardGroup builds a group of n shards, each with a fresh engine.
func NewShardGroup(n int) *ShardGroup {
	if n < 1 {
		panic("sim: shard group needs at least one shard")
	}
	g := &ShardGroup{}
	for i := 0; i < n; i++ {
		g.shards = append(g.shards, &Shard{id: i, engine: NewEngine(), group: g})
	}
	return g
}

// Shards returns the number of shards in the group.
func (g *ShardGroup) Shards() int { return len(g.shards) }

// Shard returns the i-th shard.
func (g *ShardGroup) Shard(i int) *Shard { return g.shards[i] }

// NewMailbox registers an ordered message queue from one shard to another
// with the given delivery latency. The latency must be positive — it is the
// lookahead this mailbox imposes on the whole group — and both shards must
// belong to this group. Mailboxes must be wired before the first run.
func (g *ShardGroup) NewMailbox(from, to *Shard, latency time.Duration, handler func(payload any)) *Mailbox {
	switch {
	case g.started:
		panic("sim: mailboxes must be wired before the group runs")
	case from == nil || to == nil || from.group != g || to.group != g:
		panic("sim: mailbox endpoints must be shards of this group")
	case from == to:
		panic("sim: mailbox endpoints must be distinct shards")
	case latency <= 0:
		panic("sim: mailbox latency must be positive (it bounds the lookahead)")
	case handler == nil:
		panic("sim: mailbox needs a delivery handler")
	}
	m := &Mailbox{id: len(g.mail), from: from, to: to, latency: latency, handler: handler}
	g.mail = append(g.mail, m)
	return m
}

// Lookahead returns the group's current conservative lookahead: the minimum
// latency over open mailboxes, or 0 when every mailbox is closed (shards may
// then drain freely).
func (g *ShardGroup) Lookahead() time.Duration {
	look := time.Duration(0)
	for _, m := range g.mail {
		if !m.closed && (look == 0 || m.latency < look) {
			look = m.latency
		}
	}
	return look
}

// Run executes the group to completion with one goroutine per shard,
// synchronized at window barriers. Output is byte-identical to
// RunSequential.
func (g *ShardGroup) Run() { g.run(true) }

// RunSequential executes the identical window protocol on the calling
// goroutine, stepping shards in ID order: the single-threaded determinism
// oracle for Run.
func (g *ShardGroup) RunSequential() { g.run(false) }

func (g *ShardGroup) run(parallel bool) {
	g.started = true
	t0 := time.Now()
	if parallel && len(g.shards) > 1 && !g.workers {
		g.startWorkers()
	}
	useWorkers := g.workers && parallel
	for {
		// Earliest pending work: the soonest engine event or queued message.
		next := farFuture
		pendingWork := 0
		for _, sh := range g.shards {
			if at, ok := sh.engine.NextEventAt(); ok && at < next {
				next = at
			}
			pendingWork += sh.engine.PendingNonDaemon()
		}
		look := time.Duration(0) // 0 = unbounded (no open mailbox)
		for _, m := range g.mail {
			if len(m.queue) > 0 {
				pendingWork += len(m.queue)
				if m.queue[0].at < next {
					next = m.queue[0].at
				}
			}
			if !m.closed && (look == 0 || m.latency < look) {
				look = m.latency
			}
		}
		if pendingWork == 0 {
			break
		}
		until := drainWindow
		if look > 0 {
			until = next + look
		}
		g.deliver(until)
		if useWorkers {
			for _, sh := range g.shards {
				sh.work <- until
			}
			for range g.shards {
				<-g.done
			}
		} else {
			for _, sh := range g.shards {
				sh.step(until)
			}
		}
	}
	g.wall += time.Since(t0)
}

// deliver injects every queued message with delivery time at or before the
// window end (all of them for a drain window) into its destination engine,
// in (time, destination shard, mailbox, send sequence) order. Injection
// happens at the barrier, before any shard enters the window, so a
// destination engine always receives the event before its clock can pass
// the delivery time.
func (g *ShardGroup) deliver(until time.Duration) {
	due := g.scratch[:0]
	for _, m := range g.mail {
		n := 0
		for n < len(m.queue) && (until == drainWindow || m.queue[n].at <= until) {
			due = append(due, delivery{env: m.queue[n], box: m})
			n++
		}
		if n > 0 {
			m.queue = m.queue[n:]
		}
	}
	sort.Slice(due, func(i, j int) bool {
		a, b := &due[i], &due[j]
		if a.env.at != b.env.at {
			return a.env.at < b.env.at
		}
		if a.box.to.id != b.box.to.id {
			return a.box.to.id < b.box.to.id
		}
		if a.box.id != b.box.id {
			return a.box.id < b.box.id
		}
		return a.env.seq < b.env.seq
	})
	for i := range due {
		d := due[i]
		eng := d.box.to.engine
		if d.env.at < eng.now {
			panic(fmt.Sprintf("sim: lookahead violated: delivery at %v behind shard %d clock %v",
				d.env.at, d.box.to.id, eng.now))
		}
		handler, payload := d.box.handler, d.env.payload
		eng.Schedule(d.env.at-eng.now, func() { handler(payload) })
	}
	g.scratch = due[:0]
}

// step advances the shard's engine through one window: to exactly `until`,
// or to completion of all its non-daemon work for a drain window.
func (sh *Shard) step(until time.Duration) {
	t0 := time.Now()
	if until == drainWindow {
		sh.engine.Run(0)
	} else {
		sh.engine.Run(until)
	}
	sh.busy += time.Since(t0)
	sh.windows++
}

// startWorkers spawns one persistent goroutine per shard. Workers block on
// their work channel between windows; Close tears them down.
func (g *ShardGroup) startWorkers() {
	g.workers = true
	g.done = make(chan struct{}, len(g.shards))
	for _, sh := range g.shards {
		sh.work = make(chan time.Duration, 1)
		g.wg.Add(1)
		go func(sh *Shard) {
			defer g.wg.Done()
			for until := range sh.work {
				sh.step(until)
				g.done <- struct{}{}
			}
		}(sh)
	}
}

// Wall returns the total wall-clock time spent inside Run/RunSequential.
func (g *ShardGroup) Wall() time.Duration { return g.wall }

// Util reports per-shard wall-clock utilization for the runs so far: each
// shard's busy time inside its event windows, with the remainder of the
// group's wall time counted as barrier wait.
func (g *ShardGroup) Util() []ShardUtil {
	out := make([]ShardUtil, len(g.shards))
	for i, sh := range g.shards {
		wait := g.wall - sh.busy
		if wait < 0 {
			wait = 0
		}
		out[i] = ShardUtil{
			Shard: sh.id, Busy: sh.busy, Wait: wait,
			Windows: sh.windows, Events: sh.engine.Executed(),
		}
	}
	return out
}

// Close stops the worker goroutines and closes every shard engine. Like
// Engine.Close it must only be called once runs have returned.
func (g *ShardGroup) Close() {
	if g.workers {
		g.workers = false
		for _, sh := range g.shards {
			close(sh.work)
		}
		g.wg.Wait()
	}
	for _, sh := range g.shards {
		sh.engine.Close()
	}
}
