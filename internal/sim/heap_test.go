package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"
)

// refHeap is a container/heap reference implementation with the engine's
// (at, seq) ordering, used to cross-check the concrete-typed eventHeap.
type refHeap []event

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)         { *h = append(*h, x.(event)) }
func (h *refHeap) Pop() any {
	old := *h
	n := len(old) - 1
	ev := old[n]
	*h = old[:n]
	return ev
}

// TestEventHeapMatchesReference drives the concrete-typed event heap and a
// container/heap reference through identical random push/pop interleavings
// (times drawn from a tiny set to force heavy ties) and requires the same pop
// order — in particular FIFO among equal-time events, the property the
// engine's determinism guarantee rests on.
func TestEventHeapMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		var h eventHeap
		ref := &refHeap{}
		var seq int64
		check := func() {
			got := h.pop()
			want := heap.Pop(ref).(event)
			if got.at != want.at || got.seq != want.seq {
				t.Fatalf("trial %d: pop (%v, %d), reference (%v, %d)",
					trial, got.at, got.seq, want.at, want.seq)
			}
		}
		for step := 0; step < 400; step++ {
			if len(h) == 0 || rng.Intn(3) < 2 {
				seq++
				ev := event{at: time.Duration(rng.Intn(6)) * time.Millisecond, seq: seq}
				h.push(ev)
				heap.Push(ref, ev)
			} else {
				check()
			}
		}
		prev := event{at: -1}
		for len(h) > 0 {
			got := h[0]
			check()
			if got.at < prev.at || (got.at == prev.at && got.seq <= prev.seq) {
				t.Fatalf("trial %d: pop order (%v, %d) after (%v, %d)",
					trial, got.at, got.seq, prev.at, prev.seq)
			}
			prev = got
		}
		if ref.Len() != 0 {
			t.Fatalf("trial %d: reference has %d leftover events", trial, ref.Len())
		}
	}
}

// TestRecycledProcReceivesNoStaleWake pins down the proc-pool safety
// property: a wake-up event scheduled against one incarnation of a process
// shell must never resume a later incarnation. The victim finishes while a
// second wake for it is still in the heap; a thief process then claims the
// recycled shell, so without the generation guard the stale wake would
// resume the thief. The engine must panic instead.
func TestRecycledProcReceivesNoStaleWake(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	victim := e.Go("victim", func(p *Proc) { p.Suspend() })
	thiefResumed := false
	var thief *Proc
	e.Schedule(0, func() {
		e.ScheduleWake(victim) // resumes the victim; its body returns and the shell retires
		e.Schedule(0, func() { // runs after the retire, before the stale wake below
			thief = e.Go("thief", func(p *Proc) {
				p.Suspend()
				thiefResumed = true
			})
			if thief != victim {
				t.Error("thief did not claim the recycled shell (regression target gone)")
			}
		})
		e.ScheduleWake(victim) // stale: fires with the thief holding the shell
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("stale wake-up across a recycled proc did not panic")
		}
		if !strings.Contains(fmt.Sprint(r), "stale wake-up") {
			t.Fatalf("unexpected panic: %v", r)
		}
		if thiefResumed {
			t.Fatal("stale wake-up leaked into the recycled shell's new body")
		}
	}()
	e.Run(0)
}

// TestRecycledProcRunsNewBody is the positive half of the recycle contract:
// after a body finishes, the next Go reuses the parked shell, and wake-ups
// scheduled for the new incarnation are delivered to the new body.
func TestRecycledProcRunsNewBody(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	first := e.Go("first", func(p *Proc) {})
	e.Run(0)
	ran := false
	second := e.Go("second", func(p *Proc) {
		p.Suspend()
		ran = true
	})
	if second != first {
		t.Fatalf("second Go did not reuse the retired shell (regression target gone)")
	}
	if second.gen == 0 {
		t.Fatal("recycled shell did not bump its generation")
	}
	e.Schedule(time.Millisecond, func() { e.ScheduleWake(second) })
	e.Run(0)
	if !ran {
		t.Fatal("recycled shell's new body never resumed")
	}
}
