package sim

import (
	"testing"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	var got []int
	e.Schedule(2*time.Millisecond, func() { got = append(got, 3) })
	e.Schedule(time.Millisecond, func() { got = append(got, 1) })
	e.Schedule(time.Millisecond, func() { got = append(got, 2) })
	e.Run(0)
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestRunUntilStopsClock(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	fired := false
	e.Schedule(10*time.Second, func() { fired = true })
	now := e.Run(time.Second)
	if fired {
		t.Fatal("event beyond horizon fired")
	}
	if now != time.Second {
		t.Fatalf("clock = %v, want 1s", now)
	}
	// Continuing the run executes the remaining event.
	e.Run(0)
	if !fired {
		t.Fatal("event not fired after resuming")
	}
	if e.Now() != 10*time.Second {
		t.Fatalf("clock = %v, want 10s", e.Now())
	}
}

// TestRunNeverRewindsClock is the regression test for the clock-rewind bug:
// Run(10s) followed by Run(5s) used to set the clock back to 5s, breaking
// monotonicity for every timeline sampled afterwards.
func TestRunNeverRewindsClock(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	e.Schedule(20*time.Second, func() {})
	if now := e.Run(10 * time.Second); now != 10*time.Second {
		t.Fatalf("clock = %v, want 10s", now)
	}
	if now := e.Run(5 * time.Second); now != 10*time.Second {
		t.Fatalf("Run(5s) after Run(10s) returned %v, want 10s (no rewind)", now)
	}
	if e.Now() != 10*time.Second {
		t.Fatalf("clock rewound to %v", e.Now())
	}
	// An exactly-equal horizon is also a no-op.
	if now := e.Run(10 * time.Second); now != 10*time.Second {
		t.Fatalf("Run(now) returned %v, want 10s", now)
	}
}

// TestRunDrainedHeapAdvancesToHorizon pins the drained-heap contract: when
// every event fires before the horizon, Run(until) still returns with the
// clock at exactly until — virtual time passes in an idle simulation.
func TestRunDrainedHeapAdvancesToHorizon(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	fired := time.Duration(-1)
	e.Schedule(time.Second, func() { fired = e.Now() })
	if now := e.Run(30 * time.Second); now != 30*time.Second {
		t.Fatalf("clock = %v, want 30s after heap drained", now)
	}
	if fired != time.Second {
		t.Fatalf("event fired at %v, want 1s", fired)
	}
	// Run(0) on an empty heap stays put: completion time is the last event.
	if now := e.Run(0); now != 30*time.Second {
		t.Fatalf("Run(0) on empty heap returned %v, want 30s", now)
	}
}

func TestNegativeDelayClampedToNow(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	var at time.Duration = -1
	e.Schedule(time.Second, func() {
		e.Schedule(-5*time.Second, func() { at = e.Now() })
	})
	e.Run(0)
	if at != time.Second {
		t.Fatalf("negative-delay event at %v, want 1s", at)
	}
}

func TestProcessSleep(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	var wake time.Duration
	e.Go("sleeper", func(p *Proc) {
		p.Sleep(3 * time.Second)
		wake = p.Now()
	})
	e.Run(0)
	if wake != 3*time.Second {
		t.Fatalf("woke at %v, want 3s", wake)
	}
}

func TestProcessesInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		e := NewEngine()
		defer e.Close()
		var log []string
		for _, name := range []string{"a", "b", "c"} {
			name := name
			e.Go(name, func(p *Proc) {
				for i := 0; i < 3; i++ {
					p.Sleep(time.Second)
					log = append(log, name)
				}
			})
		}
		e.Run(0)
		return log
	}
	first := run()
	if len(first) != 9 {
		t.Fatalf("log length = %d, want 9", len(first))
	}
	for trial := 0; trial < 10; trial++ {
		again := run()
		for i := range first {
			if first[i] != again[i] {
				t.Fatalf("nondeterministic interleaving: %v vs %v", first, again)
			}
		}
	}
}

func TestSignalBroadcast(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	s := NewSignal(e)
	var woke []string
	for _, name := range []string{"w1", "w2"} {
		name := name
		e.Go(name, func(p *Proc) {
			s.Wait(p)
			woke = append(woke, name)
		})
	}
	e.Go("firer", func(p *Proc) {
		p.Sleep(time.Second)
		s.Fire()
	})
	e.Run(0)
	if len(woke) != 2 || woke[0] != "w1" || woke[1] != "w2" {
		t.Fatalf("woke = %v, want [w1 w2]", woke)
	}
	// Waiting on a fired signal returns immediately.
	done := false
	e.Go("late", func(p *Proc) {
		s.Wait(p)
		done = true
	})
	e.Run(0)
	if !done {
		t.Fatal("late waiter did not return from fired signal")
	}
}

func TestFutureCarriesValue(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	f := NewFuture[int](e)
	var got int
	e.Go("consumer", func(p *Proc) { got = f.Wait(p) })
	e.Go("producer", func(p *Proc) {
		p.Sleep(time.Millisecond)
		f.Resolve(42)
		f.Resolve(99) // ignored: first value wins
	})
	e.Run(0)
	if got != 42 {
		t.Fatalf("future value = %d, want 42", got)
	}
}

func TestResourceFIFO(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	r := NewResource(e, 1)
	var order []string
	hold := func(name string, start, dur time.Duration) {
		e.GoAfter(start, name, func(p *Proc) {
			r.Acquire(p)
			order = append(order, name+"+")
			p.Sleep(dur)
			order = append(order, name+"-")
			r.Release()
		})
	}
	hold("a", 0, 10*time.Millisecond)
	hold("b", time.Millisecond, time.Millisecond)
	hold("c", 2*time.Millisecond, time.Millisecond)
	e.Run(0)
	want := []string{"a+", "a-", "b+", "b-", "c+", "c-"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestResourceCapacityTwo(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	r := NewResource(e, 2)
	maxInUse := 0
	for i := 0; i < 5; i++ {
		e.Go("worker", func(p *Proc) {
			r.Acquire(p)
			if r.InUse() > maxInUse {
				maxInUse = r.InUse()
			}
			p.Sleep(time.Millisecond)
			r.Release()
		})
	}
	e.Run(0)
	if maxInUse != 2 {
		t.Fatalf("max in use = %d, want 2", maxInUse)
	}
}

func TestQueueBlocksAndDelivers(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	q := NewQueue[int](e)
	var got []int
	e.Go("consumer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, q.Pop(p))
		}
	})
	e.Go("producer", func(p *Proc) {
		q.Push(1) // consumer already waiting
		p.Sleep(time.Second)
		q.Push(2)
		q.Push(3)
	})
	e.Run(0)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("got %v, want [1 2 3]", got)
	}
}

func TestCloseUnblocksStuckProcesses(t *testing.T) {
	e := NewEngine()
	s := NewSignal(e)
	e.Go("stuck", func(p *Proc) {
		s.Wait(p) // never fired
		t.Error("stuck process resumed unexpectedly")
	})
	e.Run(0)
	e.Close() // must not hang
	e.Close() // idempotent
}

func TestAfterSignal(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	s := After(e, 5*time.Second)
	var at time.Duration
	e.Go("waiter", func(p *Proc) {
		s.Wait(p)
		at = p.Now()
	})
	e.Run(0)
	if at != 5*time.Second {
		t.Fatalf("After fired at %v, want 5s", at)
	}
}

func TestWaitAll(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	s1 := After(e, time.Second)
	s2 := After(e, 3*time.Second)
	var at time.Duration
	e.Go("waiter", func(p *Proc) {
		WaitAll(p, s1, s2)
		at = p.Now()
	})
	e.Run(0)
	if at != 3*time.Second {
		t.Fatalf("WaitAll returned at %v, want 3s", at)
	}
}
