package sim

import (
	"testing"
	"time"
)

// grabAndHold occupies the resource's only slot for dur.
func grabAndHold(e *Engine, r *Resource, dur time.Duration) {
	e.Go("holder", func(p *Proc) {
		r.Acquire(p)
		p.Sleep(dur)
		r.Release()
	})
}

// acquireOrder runs the given (name, pri, enqueueAt) acquirers against a
// busy single-slot resource and returns the order they obtained the slot.
func acquireOrder(t *testing.T, aging time.Duration, holdFor time.Duration, reqs []struct {
	name string
	pri  int32
	at   time.Duration
}) []string {
	t.Helper()
	e := NewEngine()
	defer e.Close()
	r := NewResource(e, 1)
	r.SetAging(aging)
	grabAndHold(e, r, holdFor)
	var order []string
	for _, q := range reqs {
		q := q
		e.Schedule(q.at, func() {
			e.Go(q.name, func(p *Proc) {
				r.AcquirePri(p, q.pri)
				order = append(order, q.name)
				p.Sleep(time.Millisecond)
				r.Release()
			})
		})
	}
	e.Run(0)
	return order
}

func TestAcquirePriEqualPrioritiesKeepFIFO(t *testing.T) {
	order := acquireOrder(t, 0, 10*time.Millisecond, []struct {
		name string
		pri  int32
		at   time.Duration
	}{
		{"a", 0, 1 * time.Millisecond},
		{"b", 0, 2 * time.Millisecond},
		{"c", 0, 3 * time.Millisecond},
	})
	want := []string{"a", "b", "c"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v (FIFO must hold for equal priorities)", order, want)
		}
	}
}

func TestAcquirePriHighSkipsLow(t *testing.T) {
	order := acquireOrder(t, 0, 10*time.Millisecond, []struct {
		name string
		pri  int32
		at   time.Duration
	}{
		{"low1", 0, 1 * time.Millisecond},
		{"low2", 0, 2 * time.Millisecond},
		{"high", 1, 3 * time.Millisecond},
	})
	want := []string{"high", "low1", "low2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v (high skips queued lows)", order, want)
		}
	}
}

func TestAcquirePriHighsKeepFIFOAmongThemselves(t *testing.T) {
	order := acquireOrder(t, 0, 10*time.Millisecond, []struct {
		name string
		pri  int32
		at   time.Duration
	}{
		{"low", 0, 1 * time.Millisecond},
		{"high1", 1, 2 * time.Millisecond},
		{"high2", 1, 3 * time.Millisecond},
	})
	want := []string{"high1", "high2", "low"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestAcquirePriAgedLowIsNotSkipped(t *testing.T) {
	// With a 5ms aging period, a low waiter queued at 1ms has effective
	// priority 1 by the time the high arrives at 7ms — the high must queue
	// behind it, not skip it.
	order := acquireOrder(t, 5*time.Millisecond, 10*time.Millisecond, []struct {
		name string
		pri  int32
		at   time.Duration
	}{
		{"low-old", 0, 1 * time.Millisecond},
		{"low-new", 0, 6 * time.Millisecond},
		{"high", 1, 7 * time.Millisecond},
	})
	want := []string{"low-old", "high", "low-new"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v (aged low outranks fresh high)", order, want)
		}
	}
}

func TestAcquirePriUncontendedIsImmediate(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	r := NewResource(e, 2)
	got := 0
	e.Go("a", func(p *Proc) {
		r.AcquirePri(p, 1)
		got++
		r.Release()
	})
	e.Run(0)
	if got != 1 {
		t.Fatal("uncontended AcquirePri did not run")
	}
	if r.InUse() != 0 || r.QueueLen() != 0 {
		t.Fatalf("resource not drained: inUse=%d queue=%d", r.InUse(), r.QueueLen())
	}
}
