package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"
)

// logEntry records one observed handler/proc action for determinism
// comparisons. Each shard appends only to its own slice (single-threaded
// within a shard), and logs are merged by (time, shard, local order) — the
// same total order the group's mail merge defines.
type logEntry struct {
	at    time.Duration
	shard int
	msg   string
}

func mergeLogs(perShard [][]logEntry) []logEntry {
	var all []logEntry
	for _, l := range perShard {
		all = append(all, l...)
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].at != all[j].at {
			return all[i].at < all[j].at
		}
		return all[i].shard < all[j].shard
	})
	return all
}

func TestMailboxDeliveryTimeExact(t *testing.T) {
	g := NewShardGroup(2)
	defer g.Close()
	var got []time.Duration
	dst := g.Shard(1)
	box := g.NewMailbox(g.Shard(0), dst, 7*time.Millisecond, func(payload any) {
		got = append(got, dst.Engine().Now())
	})
	g.Shard(0).Engine().Go("sender", func(p *Proc) {
		box.Send(0)
		p.Sleep(3 * time.Millisecond)
		box.Send(1)
		box.Close()
	})
	g.RunSequential()
	want := []time.Duration{7 * time.Millisecond, 10 * time.Millisecond}
	if len(got) != len(want) {
		t.Fatalf("deliveries %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivery %d at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestMailboxPreservesSendOrder(t *testing.T) {
	g := NewShardGroup(2)
	defer g.Close()
	var got []int
	box := g.NewMailbox(g.Shard(0), g.Shard(1), time.Millisecond, func(payload any) {
		got = append(got, payload.(int))
	})
	g.Shard(0).Engine().Go("sender", func(p *Proc) {
		for i := 0; i < 10; i++ {
			box.Send(i)
		}
		box.Close()
	})
	g.Run()
	if len(got) != 10 {
		t.Fatalf("delivered %d messages, want 10", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("message %d = %d, want %d (send order violated)", i, v, i)
		}
	}
}

// pingPong wires two shards that bounce a counter back and forth across
// mailboxes until it reaches rounds, logging every receipt.
func pingPong(g *ShardGroup, rounds int, logs [][]logEntry) {
	a, b := g.Shard(0), g.Shard(1)
	var ab, ba *Mailbox
	ab = g.NewMailbox(a, b, 2*time.Millisecond, func(payload any) {
		n := payload.(int)
		logs[1] = append(logs[1], logEntry{b.Engine().Now(), 1, fmt.Sprintf("recv %d", n)})
		if n >= rounds {
			ba.Close()
			return
		}
		ba.Send(n + 1)
	})
	ba = g.NewMailbox(b, a, 3*time.Millisecond, func(payload any) {
		n := payload.(int)
		logs[0] = append(logs[0], logEntry{a.Engine().Now(), 0, fmt.Sprintf("recv %d", n)})
		if n >= rounds {
			ab.Close()
			return
		}
		ab.Send(n + 1)
	})
	a.Engine().Go("kick", func(p *Proc) { ab.Send(1) })
}

func TestShardGroupPingPong(t *testing.T) {
	run := func(parallel bool) []logEntry {
		g := NewShardGroup(2)
		defer g.Close()
		logs := make([][]logEntry, 2)
		pingPong(g, 20, logs)
		if parallel {
			g.Run()
		} else {
			g.RunSequential()
		}
		return mergeLogs(logs)
	}
	seq := run(false)
	par := run(true)
	if len(seq) != 20 {
		t.Fatalf("sequential run logged %d receipts, want 20", len(seq))
	}
	if len(par) != len(seq) {
		t.Fatalf("parallel logged %d receipts, sequential %d", len(par), len(seq))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("log %d: parallel %+v != sequential %+v", i, par[i], seq[i])
		}
	}
}

// TestShardGroupRandomizedDeterminism drives a randomized multi-shard
// messaging topology and checks that parallel and sequential executions
// produce identical merged logs for every seed.
func TestShardGroupRandomizedDeterminism(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		build := func(g *ShardGroup, logs [][]logEntry) {
			rng := rand.New(rand.NewSource(seed))
			n := g.Shards()
			// A ring of mailboxes plus a few random chords. outs[i] lists
			// shard i's outgoing mailboxes: a handler running on shard i may
			// only Send on those (the sender side of a mailbox is
			// single-threaded).
			outs := make([][]*Mailbox, n)
			handler := func(sh *Shard, hop int) func(any) {
				return func(payload any) {
					v := payload.(int)
					logs[sh.ID()] = append(logs[sh.ID()], logEntry{sh.Engine().Now(), sh.ID(), fmt.Sprintf("hop%d recv %d", hop, v)})
					if mine := outs[sh.ID()]; v > 0 && len(mine) > 0 {
						mine[(hop+v)%len(mine)].Send(v - 1)
					}
				}
			}
			add := func(from, to *Shard, hop int) {
				lat := time.Duration(1+rng.Intn(5)) * time.Millisecond
				outs[from.ID()] = append(outs[from.ID()], g.NewMailbox(from, to, lat, handler(to, hop)))
			}
			for i := 0; i < n; i++ {
				add(g.Shard(i), g.Shard((i+1)%n), i)
			}
			for i := 0; i < n; i++ {
				from, to := g.Shard(rng.Intn(n)), g.Shard(rng.Intn(n))
				if from != to {
					add(from, to, n+i)
				}
			}
			// Each shard runs local work, seeds the message flood on its own
			// outboxes, and closes them once the flood has provably died out
			// (hop counts drop to zero well before the 10s mark).
			for i := 0; i < n; i++ {
				sh := g.Shard(i)
				hops := 5 + rng.Intn(10)
				sh.Engine().Go("local", func(p *Proc) {
					for h := 0; h < hops; h++ {
						p.Sleep(time.Duration(1+h) * time.Millisecond)
						logs[sh.ID()] = append(logs[sh.ID()], logEntry{p.Now(), sh.ID(), "tick"})
					}
					for _, b := range outs[sh.ID()] {
						b.Send(200)
					}
					p.Sleep(10 * time.Second)
					for _, b := range outs[sh.ID()] {
						b.Close()
					}
				})
			}
		}
		run := func(parallel bool) []logEntry {
			g := NewShardGroup(4)
			defer g.Close()
			logs := make([][]logEntry, 4)
			build(g, logs)
			if parallel {
				g.Run()
			} else {
				g.RunSequential()
			}
			return mergeLogs(logs)
		}
		seq := run(false)
		par := run(true)
		if len(seq) == 0 {
			t.Fatalf("seed %d: empty log", seed)
		}
		if len(par) != len(seq) {
			t.Fatalf("seed %d: parallel %d entries, sequential %d", seed, len(par), len(seq))
		}
		for i := range seq {
			if seq[i] != par[i] {
				t.Fatalf("seed %d log %d: parallel %+v != sequential %+v", seed, i, par[i], seq[i])
			}
		}
	}
}

func TestShardGroupUtil(t *testing.T) {
	g := NewShardGroup(2)
	defer g.Close()
	logs := make([][]logEntry, 2)
	pingPong(g, 10, logs)
	g.Run()
	util := g.Util()
	if len(util) != 2 {
		t.Fatalf("got %d util rows, want 2", len(util))
	}
	for _, u := range util {
		if u.Windows == 0 {
			t.Fatalf("shard %d executed no windows", u.Shard)
		}
		if u.Events == 0 {
			t.Fatalf("shard %d executed no events", u.Shard)
		}
		if s := u.String(); s == "" {
			t.Fatal("empty util summary")
		}
	}
	if g.Wall() <= 0 {
		t.Fatal("group wall-clock time not recorded")
	}
}

func TestShardGroupSingleShardDrains(t *testing.T) {
	g := NewShardGroup(1)
	defer g.Close()
	ran := false
	g.Shard(0).Engine().Go("work", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		ran = true
	})
	g.Run()
	if !ran {
		t.Fatal("single-shard group did not drain its engine")
	}
	if now := g.Shard(0).Engine().Now(); now != 5*time.Millisecond {
		t.Fatalf("clock %v, want 5ms", now)
	}
}

func TestMailboxPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	g := NewShardGroup(2)
	defer g.Close()
	expectPanic("zero latency", func() {
		g.NewMailbox(g.Shard(0), g.Shard(1), 0, func(any) {})
	})
	expectPanic("same shard", func() {
		g.NewMailbox(g.Shard(0), g.Shard(0), time.Millisecond, func(any) {})
	})
	expectPanic("nil handler", func() {
		g.NewMailbox(g.Shard(0), g.Shard(1), time.Millisecond, nil)
	})
	other := NewShardGroup(1)
	defer other.Close()
	expectPanic("foreign shard", func() {
		g.NewMailbox(g.Shard(0), other.Shard(0), time.Millisecond, func(any) {})
	})
	box := g.NewMailbox(g.Shard(0), g.Shard(1), time.Millisecond, func(any) {})
	box.Close()
	if !box.Closed() {
		t.Fatal("mailbox not closed")
	}
	panicked := false
	g.Shard(0).Engine().Go("sender", func(p *Proc) {
		defer func() { panicked = recover() != nil }()
		box.Send(1)
	})
	g.Run()
	if !panicked {
		t.Fatal("send on closed mailbox did not panic")
	}
	expectPanic("zero shards", func() { NewShardGroup(0) })
	expectPanic("wire after run", func() {
		g.NewMailbox(g.Shard(0), g.Shard(1), time.Millisecond, func(any) {})
	})
}
