// Package store implements the paper's elastic GPU data storage (§4.4): a
// per-node manager of per-GPU memory pools that
//
//   - scales pool reservations with a histogram pre-warming policy
//     (R_window/R_size/R_con 99th-percentile trackers, §4.4.1),
//   - keeps a 300 MB floor during idle periods and caps storage at a fixed
//     fraction of free GPU memory,
//   - evicts intermediate data to host memory under pressure using either
//     LRU or the request-queue-aware policy of §4.4.2, and
//   - proactively restores migrated data to GPU memory when space returns.
//
// The manager is policy and bookkeeping only; actual data movement is
// delegated to a Migrator supplied by the data plane, so GROUTER migrates
// over harvested parallel PCIe links while baselines use the single local
// link.
package store

import (
	"fmt"
	"sort"
	"time"

	"grouter/internal/dataplane"
	"grouter/internal/fabric"
	"grouter/internal/memsim"
	"grouter/internal/metrics"
	"grouter/internal/obs"
	"grouter/internal/sim"
)

// Policy selects the eviction/migration strategy.
type Policy int

const (
	// PolicyLRU evicts the least recently accessed item (what NVSHMEM+'s
	// static store does).
	PolicyLRU Policy = iota
	// PolicyRQ evicts the item whose consumer sits deepest in the request
	// queue (RQ in Fig. 18), without proactive restoration.
	PolicyRQ
	// PolicyRQProactive is PolicyRQ plus proactive restoration of migrated
	// data when GPU memory frees up (full GROUTER).
	PolicyRQProactive
)

func (p Policy) String() string {
	switch p {
	case PolicyLRU:
		return "lru"
	case PolicyRQ:
		return "rq"
	case PolicyRQProactive:
		return "rq+proactive"
	}
	return "unknown"
}

// Config parameterizes a Manager.
type Config struct {
	Policy Policy
	// Elastic enables dynamic pool scaling; when false the pool grows to
	// StaticReserve per GPU up front and never shrinks (static pooling).
	Elastic       bool
	StaticReserve int64
	// Symmetric mimics NVSHMEM symmetric allocation: every pool grow is
	// mirrored on all GPUs of the node.
	Symmetric bool
	// MinPool is the idle-period floor (§4.4.1; default 300 MB).
	MinPool int64
	// FreeFraction caps storage at this fraction of a GPU's free memory
	// (§4.4.2; default 0.5).
	FreeFraction float64
	// ReclaimInterval is the sweep period for expired reservations.
	ReclaimInterval time.Duration
	// HistWindow is the sample window of the percentile trackers.
	HistWindow int
}

func (c Config) withDefaults() Config {
	if c.MinPool == 0 {
		c.MinPool = 300 << 20
	}
	if c.FreeFraction == 0 {
		c.FreeFraction = 0.5
	}
	if c.ReclaimInterval == 0 {
		c.ReclaimInterval = time.Second
	}
	if c.HistWindow == 0 {
		c.HistWindow = 64
	}
	return c
}

// Migrator moves item bytes between a GPU and host memory on behalf of the
// manager. Implementations block the calling process for the transfer time
// and report transfer failures (e.g. every PCIe path down mid-fault); the
// manager aborts the migration and leaves the item where it was.
type Migrator interface {
	ToHost(p *sim.Proc, gpu int, bytes int64) error
	ToGPU(p *sim.Proc, gpu int, bytes int64) error
}

// Item is one stored intermediate-data object.
type Item struct {
	ID    dataplane.DataID
	Fn    string
	Bytes int64
	// GPU is the item's home device on this node.
	GPU int
	// OnHost reports the item currently lives in host memory (evicted or
	// spilled).
	OnHost    bool
	hostBlock *memsim.Block

	LastAccess  time.Duration
	ConsumerSeq int64
	// Cache marks a replica cache entry created by PutCache: a reconstructible
	// copy of an object whose primary lives elsewhere. Under memory pressure a
	// cache is dropped (not migrated to host) and the registry is notified.
	Cache bool
	// CacheOf is the plane-level DataID the cache replicates (set when Cache).
	CacheOf dataplane.DataID
	// migrating guards against concurrent eviction/restoration.
	migrating bool
	freed     bool

	// heapIdx is the item's position in its GPU's eviction index while it is
	// GPU-resident and evictable (see Manager.caches/prims), or -1 while
	// absent (host-resident, mid-migration, or freed).
	heapIdx int
	// hostIdx is the item's position in Manager.onHost while host-resident,
	// or -1.
	hostIdx int
}

// Manager runs the elastic storage of one node.
type Manager struct {
	cfg   Config
	node  *fabric.NodeFabric
	eng   *sim.Engine
	mig   Migrator
	pools []*memsim.Pool
	items map[dataplane.DataID]*Item
	funcs map[string]*funcStats
	// reservations hold pre-warmed pool bytes per function until expiry.
	reservations []reservation
	nextID       dataplane.DataID

	// caches[g]/prims[g] hold GPU g's resident cache/primary items in
	// eviction order, so victim selection is O(log n) instead of a scan over
	// every stored item — the scan dominated CPU time at replay scale.
	caches []evictHeap
	prims  []evictHeap
	// onHost lists host-resident items for the proactive restore sweep.
	onHost []*Item

	// Evictions and Restores count migrations; UsedTL and ReservedTL sample
	// pool state for Fig. 7(a)/20(c). CacheDrops counts replica cache entries
	// discarded under eviction pressure.
	Evictions  metrics.Counter
	Restores   metrics.Counter
	Spills     metrics.Counter
	CacheDrops metrics.Counter
	UsedTL     metrics.Timeline
	ReservedTL metrics.Timeline

	// OnCacheDrop, when non-nil, is invoked whenever eviction pressure drops
	// a replica cache entry, so the data plane can invalidate its replica
	// registry. Crash invalidation takes the reverse path (the plane drops the
	// item), so OnCacheDrop fires only for store-initiated drops.
	OnCacheDrop func(id dataplane.DataID, gpu int)
}

type reservation struct {
	fn      string
	gpu     int
	bytes   int64
	expires time.Duration
}

type funcStats struct {
	lastArrival time.Duration
	intervals   *quantile
	sizes       *quantile
	concurrency *quantile
	live        int
}

// NewManager builds a manager over node's GPUs. When cfg.Elastic is false,
// pools are grown to StaticReserve immediately (static pre-reservation).
func NewManager(e *sim.Engine, node *fabric.NodeFabric, mig Migrator, cfg Config) *Manager {
	cfg = cfg.withDefaults()
	m := &Manager{
		cfg:   cfg,
		node:  node,
		eng:   e,
		mig:   mig,
		items: make(map[dataplane.DataID]*Item),
		funcs: make(map[string]*funcStats),
	}
	primLess := rqLess
	if cfg.Policy == PolicyLRU {
		primLess = lruLess
	}
	for _, dev := range node.GPUs {
		pool := memsim.NewPool(dev)
		if cfg.Elastic {
			pool.Quantum = 128 << 20 // block growth amortizes native allocs
		}
		m.pools = append(m.pools, pool)
		m.caches = append(m.caches, evictHeap{less: lruLess})
		m.prims = append(m.prims, evictHeap{less: primLess})
	}
	if !cfg.Elastic && cfg.StaticReserve > 0 {
		for _, p := range m.pools {
			if err := p.Grow(min64(cfg.StaticReserve, p.Device().Free())); err != nil {
				panic(fmt.Sprintf("store: static reserve: %v", err))
			}
		}
	}
	if cfg.Elastic {
		// The minimum pool exists from the start (§4.4.1), so first-touch
		// allocations are warm.
		for _, p := range m.pools {
			_ = p.Grow(min64(cfg.MinPool, p.Device().Free()/2))
		}
	}
	if cfg.Elastic {
		e.GoDaemon("store-reclaim", m.reclaimLoop)
	}
	if cfg.Policy == PolicyRQProactive {
		e.GoDaemon("store-restore", m.restoreLoop)
	}
	return m
}

// Pool returns GPU g's pool (for tests and memory-overhead reporting).
func (m *Manager) Pool(g int) *memsim.Pool { return m.pools[g] }

// TotalReserved sums pool reservations across GPUs.
func (m *Manager) TotalReserved() int64 {
	var t int64
	for _, p := range m.pools {
		t += p.Reserved()
	}
	return t
}

// TotalUsed sums live data bytes across GPU pools.
func (m *Manager) TotalUsed() int64 {
	var t int64
	for _, p := range m.pools {
		t += p.Used()
	}
	return t
}

// limit returns the storage budget on GPU g: FreeFraction of the memory not
// used by anything else (treating the pool's own reservation as available).
// A static pool is additionally a fixed-size region: it never holds more
// than its pre-reservation.
func (m *Manager) limit(g int) int64 {
	dev := m.node.GPUs[g]
	avail := dev.Free() + m.pools[g].Reserved()
	lim := int64(m.cfg.FreeFraction * float64(avail))
	if !m.cfg.Elastic && m.cfg.StaticReserve > 0 && lim > m.cfg.StaticReserve {
		lim = m.cfg.StaticReserve
	}
	return lim
}

// Put stores a new item of the given size on GPU g for function ctx.Fn,
// evicting under pressure per policy. The returned item may be OnHost when
// GPU capacity cannot be made (forced spill). Put blocks for allocation and
// migration latency.
func (m *Manager) Put(p *sim.Proc, ctx *dataplane.FnCtx, g int, bytes int64) (*Item, error) {
	m.nextID++
	it := &Item{
		ID:          m.nextID,
		Fn:          ctx.Fn,
		Bytes:       bytes,
		GPU:         g,
		LastAccess:  p.Now(),
		ConsumerSeq: ctx.ConsumerSeq,
		heapIdx:     -1,
		hostIdx:     -1,
	}
	m.recordArrival(ctx.Fn, p.Now(), bytes)

	if m.ensure(p, g, bytes) {
		warm, err := m.pools[g].Alloc(bytes)
		if err == nil {
			if warm {
				p.Sleep(memsim.PoolAllocLatency)
				obs.Account(p, obs.CatSetup, memsim.PoolAllocLatency)
			} else {
				p.Sleep(memsim.RawAllocLatency)
				obs.Account(p, obs.CatSetup, memsim.RawAllocLatency)
				m.mirrorSymmetric(g, bytes)
			}
			m.items[it.ID] = it
			m.prims[g].push(it)
			m.sample(p.Now())
			return it, nil
		}
	}
	// Forced spill to host.
	blk, err := m.node.Host.Alloc(bytes)
	if err != nil {
		return nil, fmt.Errorf("store: spill of %d bytes: %w: %w", bytes, dataplane.ErrEvicted, err)
	}
	if tr := obs.TracerOf(m.eng); tr != nil {
		ev := tr.InstantOn(m.track(), obs.CatStore, "spill")
		tr.SetAttrInt(ev, "bytes", bytes)
		tr.SetAttrInt(ev, "gpu", int64(g))
	}
	p.Sleep(memsim.PoolAllocLatency)
	obs.Account(p, obs.CatSetup, memsim.PoolAllocLatency)
	it.OnHost = true
	it.hostBlock = blk
	m.items[it.ID] = it
	m.hostAdd(it)
	m.Spills.Inc()
	m.sample(p.Now())
	return it, nil
}

// PutCache stores a replica cache copy of data object `id` on GPU g. Caches
// are strictly best-effort: they use room the pool can claim without
// disturbing primary items — only other caches are dropped to make space —
// and PutCache returns nil when no such room exists (the transfer still
// succeeded; there is simply no registered replica). Cache items never count
// toward pre-warming statistics: they are reconstructible copies, not fresh
// producer output.
func (m *Manager) PutCache(p *sim.Proc, id dataplane.DataID, fn string, g int, bytes int64) *Item {
	if bytes > m.limit(g) {
		return nil
	}
	pool := m.pools[g]
	for attempt := 0; attempt < 8; attempt++ {
		if pool.Used()+bytes <= m.limit(g) && bytes <= pool.Idle()+pool.Device().Free() {
			break
		}
		victim := m.pickCacheVictim(g)
		if victim == nil {
			return nil
		}
		m.dropCache(victim)
	}
	if pool.Used()+bytes > m.limit(g) || bytes > pool.Idle()+pool.Device().Free() {
		return nil
	}
	warm, err := pool.Alloc(bytes)
	if err != nil {
		return nil
	}
	if warm {
		p.Sleep(memsim.PoolAllocLatency)
		obs.Account(p, obs.CatSetup, memsim.PoolAllocLatency)
	} else {
		p.Sleep(memsim.RawAllocLatency)
		obs.Account(p, obs.CatSetup, memsim.RawAllocLatency)
	}
	m.nextID++
	it := &Item{
		ID:         m.nextID,
		Fn:         fn,
		Bytes:      bytes,
		GPU:        g,
		LastAccess: p.Now(),
		Cache:      true,
		CacheOf:    id,
		heapIdx:    -1,
		hostIdx:    -1,
	}
	m.items[it.ID] = it
	m.caches[g].push(it)
	m.sample(p.Now())
	return it
}

// pickCacheVictim selects the least recently used cache item on GPU g, or
// nil when the GPU holds no caches.
func (m *Manager) pickCacheVictim(g int) *Item {
	return m.caches[g].top()
}

// dropCache discards a replica cache entry under eviction pressure: the pool
// bytes are released immediately (the primary copy still exists elsewhere, so
// nothing migrates) and the data plane is notified to invalidate its replica
// registry.
func (m *Manager) dropCache(it *Item) {
	if it.freed {
		return
	}
	it.freed = true
	m.unindex(it)
	delete(m.items, it.ID)
	m.pools[it.GPU].Release(it.Bytes)
	m.CacheDrops.Inc()
	metrics.Coalesce().ReplicasDropped.Add(1)
	if tr := obs.TracerOf(m.eng); tr != nil {
		ev := tr.InstantOn(m.track(), obs.CatStore, "cache-drop")
		tr.SetAttrInt(ev, "bytes", it.Bytes)
		tr.SetAttrInt(ev, "gpu", int64(it.GPU))
	}
	if m.OnCacheDrop != nil {
		m.OnCacheDrop(it.CacheOf, it.GPU)
	}
	m.sample(m.eng.Now())
}

// track returns the manager's storage trace lane.
func (m *Manager) track() int32 { return obs.TrackStoreBase + int32(m.node.Node.ID) }

// mirrorSymmetric grows all other pools to match a symmetric allocation.
func (m *Manager) mirrorSymmetric(g int, bytes int64) {
	if !m.cfg.Symmetric {
		return
	}
	for i, pool := range m.pools {
		if i == g {
			continue
		}
		_ = pool.Grow(min64(bytes, pool.Device().Free()))
	}
}

// Lookup returns the item or nil.
func (m *Manager) Lookup(id dataplane.DataID) *Item {
	return m.items[id]
}

// Touch records an access for LRU bookkeeping and restores the item's
// position in its eviction index when the ordering depends on recency.
func (m *Manager) Touch(it *Item, now time.Duration) {
	it.LastAccess = now
	if it.heapIdx < 0 {
		return
	}
	if it.Cache {
		m.caches[it.GPU].fix(it.heapIdx)
	} else if m.cfg.Policy == PolicyLRU {
		m.prims[it.GPU].fix(it.heapIdx)
	}
}

// Free drops the item, releasing its memory. In elastic mode the freed pool
// bytes stay reserved for the producing function for R_window (pre-warming).
func (m *Manager) Free(it *Item) {
	if it.freed {
		return
	}
	it.freed = true
	delete(m.items, it.ID)
	if fs := m.funcs[it.Fn]; fs != nil && !it.Cache {
		fs.live--
	}
	if it.OnHost {
		m.hostRemove(it)
		it.hostBlock.Free()
		m.sample(m.eng.Now())
		return
	}
	m.unindex(it)
	m.pools[it.GPU].Release(it.Bytes)
	if m.cfg.Elastic && !it.Cache {
		m.reserve(it.Fn, it.GPU)
	}
	// Static pooling never shrinks (manual reclamation only).
	m.sample(m.eng.Now())
}

// Drop removes an item whose bytes were destroyed by a fault (GPU crash):
// the memory is released immediately with no pre-warm reservation — the
// data is gone, not consumed, so its history should not inflate future pool
// reservations. Safe against concurrent eviction/restoration: the freed
// flag makes the in-flight migration clean up after itself.
func (m *Manager) Drop(it *Item) {
	if it.freed {
		return
	}
	it.freed = true
	delete(m.items, it.ID)
	if fs := m.funcs[it.Fn]; fs != nil && !it.Cache {
		fs.live--
	}
	if it.OnHost {
		m.hostRemove(it)
		it.hostBlock.Free()
		it.hostBlock = nil
	} else {
		m.unindex(it)
		m.pools[it.GPU].Release(it.Bytes)
	}
	m.sample(m.eng.Now())
}

// ensure makes room for bytes on GPU g, migrating items per policy. It
// reports whether the pool can now hold the bytes within the storage limit.
func (m *Manager) ensure(p *sim.Proc, g int, bytes int64) bool {
	if bytes > m.limit(g) {
		return false
	}
	for attempt := 0; attempt < 8; attempt++ {
		pool := m.pools[g]
		if pool.Used()+bytes <= m.limit(g) && bytes <= pool.Idle()+pool.Device().Free() {
			return true
		}
		// Replica caches are the cheapest room: drop them (notifying the
		// plane's registry) before migrating any primary item to host.
		if cache := m.pickCacheVictim(g); cache != nil {
			m.dropCache(cache)
			continue
		}
		victim := m.pickVictim(g)
		if victim == nil {
			return false
		}
		m.evict(p, victim)
	}
	return m.pools[g].Used()+bytes <= m.limit(g)
}

// pickVictim selects an evictable primary item on GPU g per policy, or nil.
// Replica caches are never migration victims — they are dropped outright by
// pickCacheVictim/dropCache before this runs.
func (m *Manager) pickVictim(g int) *Item {
	return m.prims[g].top()
}

// evict migrates an item to host memory. The nested transfer's bucket
// accounting is redirected to CatMigrate so an eviction on a request's
// critical path reports as migration time, not as setup/queue/transfer.
func (m *Manager) evict(p *sim.Proc, it *Item) {
	it.migrating = true
	m.unindex(it)
	blk, err := m.node.Host.Alloc(it.Bytes)
	if err != nil {
		it.migrating = false
		m.index(it)
		return
	}
	var span obs.SpanID
	tr := obs.TracerOf(m.eng)
	if tr != nil {
		span = tr.BeginOn(m.track(), obs.CatMigrate, "evict")
		tr.SetAttrInt(span, "bytes", it.Bytes)
		tr.SetAttrInt(span, "gpu", int64(it.GPU))
	}
	prev := obs.PushOverride(p, obs.CatMigrate)
	migErr := m.mig.ToHost(p, it.GPU, it.Bytes)
	obs.PopOverride(p, prev)
	if tr != nil {
		if migErr != nil {
			tr.SetAttrStr(span, "error", migErr.Error())
		}
		tr.End(span)
	}
	if it.freed {
		// Consumed while migrating; the pool bytes were already released.
		blk.Free()
		return
	}
	if migErr != nil {
		// Transfer failed: the item stays GPU-resident.
		blk.Free()
		it.migrating = false
		m.index(it)
		return
	}
	m.pools[it.GPU].Release(it.Bytes)
	it.OnHost = true
	it.hostBlock = blk
	it.migrating = false
	m.hostAdd(it)
	m.Evictions.Inc()
	m.sample(p.Now())
}

// Restore brings an evicted item back to its home GPU (used by Get when the
// consumer needs host-resident data on-GPU, and by the proactive loop).
// It reports whether the item is GPU-resident afterwards.
func (m *Manager) Restore(p *sim.Proc, it *Item) bool {
	if !it.OnHost || it.migrating || it.freed {
		return !it.OnHost
	}
	it.migrating = true
	pool := m.pools[it.GPU]
	if pool.Used()+it.Bytes > m.limit(it.GPU) {
		it.migrating = false
		return false
	}
	warm, err := pool.Alloc(it.Bytes)
	if err != nil {
		it.migrating = false
		return false
	}
	var span obs.SpanID
	tr := obs.TracerOf(m.eng)
	if tr != nil {
		span = tr.BeginOn(m.track(), obs.CatMigrate, "restore")
		tr.SetAttrInt(span, "bytes", it.Bytes)
		tr.SetAttrInt(span, "gpu", int64(it.GPU))
	}
	prev := obs.PushOverride(p, obs.CatMigrate)
	if !warm {
		p.Sleep(memsim.RawAllocLatency)
	}
	migErr := m.mig.ToGPU(p, it.GPU, it.Bytes)
	obs.PopOverride(p, prev)
	if tr != nil {
		if migErr != nil {
			tr.SetAttrStr(span, "error", migErr.Error())
		}
		tr.End(span)
	}
	if it.freed {
		pool.Release(it.Bytes)
		return false
	}
	if migErr != nil {
		// Transfer failed: the item stays host-resident.
		pool.Release(it.Bytes)
		it.migrating = false
		return false
	}
	m.hostRemove(it)
	it.hostBlock.Free()
	it.hostBlock = nil
	it.OnHost = false
	it.migrating = false
	m.index(it)
	m.Restores.Inc()
	m.sample(p.Now())
	return true
}

// --- elastic scaling (§4.4.1) ---

func (m *Manager) recordArrival(fn string, now time.Duration, bytes int64) {
	fs := m.funcs[fn]
	if fs == nil {
		fs = &funcStats{
			intervals:   newQuantile(m.cfg.HistWindow),
			sizes:       newQuantile(m.cfg.HistWindow),
			concurrency: newQuantile(m.cfg.HistWindow),
		}
		m.funcs[fn] = fs
	}
	if fs.lastArrival > 0 || fs.intervals.n > 0 {
		fs.intervals.add((now - fs.lastArrival).Seconds())
	}
	fs.lastArrival = now
	fs.sizes.add(float64(bytes))
	fs.live++
	fs.concurrency.add(float64(fs.live))
}

// reserve records a pre-warmed reservation R_size·R_con for R_window.
func (m *Manager) reserve(fn string, gpu int) {
	fs := m.funcs[fn]
	if fs == nil {
		return
	}
	window := time.Duration(fs.intervals.p(0.99) * float64(time.Second))
	if window <= 0 {
		window = m.cfg.ReclaimInterval
	}
	bytes := int64(fs.sizes.p(0.99) * fs.concurrency.p(0.99))
	if bytes <= 0 {
		return
	}
	m.reservations = append(m.reservations, reservation{
		fn: fn, gpu: gpu, bytes: bytes, expires: m.eng.Now() + window,
	})
}

// target returns the elastic pool-size target for GPU g: live usage plus
// unexpired reservations, floored at MinPool (when memory is plentiful).
func (m *Manager) target(g int) int64 {
	t := m.pools[g].Used()
	for _, r := range m.reservations {
		if r.gpu == g && r.expires > m.eng.Now() {
			t += r.bytes
		}
	}
	if t < m.cfg.MinPool && m.node.GPUs[g].Free() > m.cfg.MinPool {
		t = m.cfg.MinPool
	}
	if lim := m.limit(g); t > lim {
		t = lim
	}
	return t
}

// reclaimLoop periodically shrinks pools to their targets and drops expired
// reservations.
func (m *Manager) reclaimLoop(p *sim.Proc) {
	for {
		p.Sleep(m.cfg.ReclaimInterval)
		now := p.Now()
		live := m.reservations[:0]
		for _, r := range m.reservations {
			if r.expires > now {
				live = append(live, r)
			}
		}
		m.reservations = live
		for g, pool := range m.pools {
			if over := pool.Reserved() - m.target(g); over > 0 {
				pool.Shrink(over)
			}
		}
		m.sample(now)
	}
}

// restoreLoop proactively restores evicted items in consumer-queue order
// when GPU memory frees up (§4.4.2).
func (m *Manager) restoreLoop(p *sim.Proc) {
	for {
		p.Sleep(m.cfg.ReclaimInterval / 2)
		var cands []*Item
		for _, it := range m.onHost {
			if !it.migrating {
				cands = append(cands, it)
			}
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].ConsumerSeq != cands[j].ConsumerSeq {
				return cands[i].ConsumerSeq < cands[j].ConsumerSeq
			}
			return cands[i].ID < cands[j].ID
		})
		for _, it := range cands {
			pool := m.pools[it.GPU]
			if pool.Used()+it.Bytes > m.limit(it.GPU) {
				continue
			}
			m.Restore(p, it)
		}
	}
}

func (m *Manager) sample(now time.Duration) {
	if tr := obs.TracerOf(m.eng); tr != nil {
		tr.Counter("store-used", float64(m.TotalUsed()))
		tr.Counter("store-reserved", float64(m.TotalReserved()))
	}
	if n := m.UsedTL.Len(); n > 0 && m.UsedTL.Times[n-1] == now {
		m.UsedTL.Values[n-1] = float64(m.TotalUsed())
		m.ReservedTL.Values[n-1] = float64(m.TotalReserved())
		return
	}
	m.UsedTL.Add(now, float64(m.TotalUsed()))
	m.ReservedTL.Add(now, float64(m.TotalReserved()))
}

// --- small helpers ---

type quantile struct {
	buf     []float64
	scratch []float64
	cap     int
	n       int
}

func newQuantile(capacity int) *quantile { return &quantile{cap: capacity} }

func (q *quantile) add(v float64) {
	if len(q.buf) < q.cap {
		q.buf = append(q.buf, v)
	} else {
		q.buf[q.n%q.cap] = v
	}
	q.n++
}

func (q *quantile) p(f float64) float64 {
	if len(q.buf) == 0 {
		return 0
	}
	s := append(q.scratch[:0], q.buf...)
	q.scratch = s
	sort.Float64s(s)
	idx := int(f*float64(len(s))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
