package store

// Eviction indexes. Victim selection used to scan every stored item on the
// node per eviction attempt; under replay-scale pressure (thousands of live
// intermediates, an eviction attempt per Put) that scan dominated the whole
// simulation. Each GPU instead keeps two binary min-heaps — replica caches
// and primary items — whose top is exactly the item the old scan would have
// chosen, so policy behavior is unchanged while selection drops to O(log n).

// lruLess orders items least-recently-accessed first (ID breaks ties, so
// selection is unique and deterministic).
func lruLess(a, b *Item) bool {
	if a.LastAccess != b.LastAccess {
		return a.LastAccess < b.LastAccess
	}
	return a.ID < b.ID
}

// rqLess orders items deepest-queued-consumer first (§4.4.2).
func rqLess(a, b *Item) bool {
	if a.ConsumerSeq != b.ConsumerSeq {
		return a.ConsumerSeq > b.ConsumerSeq
	}
	return a.ID < b.ID
}

// evictHeap is a binary min-heap of GPU-resident items in eviction order:
// the top is the next victim. Items track their own position via heapIdx so
// removal and reordering are O(log n) without a lookup table.
type evictHeap struct {
	items []*Item
	less  func(a, b *Item) bool
}

func (h *evictHeap) top() *Item {
	if len(h.items) == 0 {
		return nil
	}
	return h.items[0]
}

func (h *evictHeap) push(it *Item) {
	it.heapIdx = len(h.items)
	h.items = append(h.items, it)
	h.up(it.heapIdx)
}

func (h *evictHeap) remove(it *Item) {
	i := it.heapIdx
	if i < 0 {
		return
	}
	it.heapIdx = -1
	n := len(h.items) - 1
	last := h.items[n]
	h.items[n] = nil
	h.items = h.items[:n]
	if i == n {
		return
	}
	h.items[i] = last
	last.heapIdx = i
	h.fix(i)
}

// fix restores heap order after the item at position i changed its key.
func (h *evictHeap) fix(i int) {
	if !h.down(i) {
		h.up(i)
	}
}

func (h *evictHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.items[i], h.items[parent]) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *evictHeap) down(i int) bool {
	moved := false
	n := len(h.items)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && h.less(h.items[r], h.items[l]) {
			m = r
		}
		if !h.less(h.items[m], h.items[i]) {
			break
		}
		h.swap(i, m)
		i = m
		moved = true
	}
	return moved
}

func (h *evictHeap) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.items[i].heapIdx = i
	h.items[j].heapIdx = j
}

// index registers a GPU-resident item with its GPU's eviction index.
func (m *Manager) index(it *Item) {
	if it.Cache {
		m.caches[it.GPU].push(it)
	} else {
		m.prims[it.GPU].push(it)
	}
}

// unindex removes the item from its eviction index; a no-op when absent.
func (m *Manager) unindex(it *Item) {
	if it.heapIdx < 0 {
		return
	}
	if it.Cache {
		m.caches[it.GPU].remove(it)
	} else {
		m.prims[it.GPU].remove(it)
	}
}

// hostAdd registers a host-resident item with the restore sweep list.
func (m *Manager) hostAdd(it *Item) {
	it.hostIdx = len(m.onHost)
	m.onHost = append(m.onHost, it)
}

// hostRemove drops the item from the restore sweep list (swap-remove; the
// restore loop sorts its own snapshot, so order here does not matter).
func (m *Manager) hostRemove(it *Item) {
	i := it.hostIdx
	if i < 0 {
		return
	}
	it.hostIdx = -1
	n := len(m.onHost) - 1
	last := m.onHost[n]
	m.onHost[n] = nil
	m.onHost = m.onHost[:n]
	if i == n {
		return
	}
	m.onHost[i] = last
	last.hostIdx = i
}
