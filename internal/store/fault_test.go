package store

import (
	"errors"
	"testing"
	"time"

	"grouter/internal/fabric"
	"grouter/internal/sim"
	"grouter/internal/topology"
)

func newTestNode(e *sim.Engine) *fabric.NodeFabric {
	return fabric.New(e, topology.DGXV100(), 1).NodeF(0)
}

// failMigrator rejects transfers in the selected directions, modeling every
// migration path down mid-fault.
type failMigrator struct {
	failToHost, failToGPU bool
	toHost, toGPU         int
}

var errMigration = errors.New("migration path down")

func (f *failMigrator) ToHost(p *sim.Proc, gpu int, bytes int64) error {
	f.toHost++
	if f.failToHost {
		return errMigration
	}
	return nil
}
func (f *failMigrator) ToGPU(p *sim.Proc, gpu int, bytes int64) error {
	f.toGPU++
	if f.failToGPU {
		return errMigration
	}
	return nil
}

func TestDropReleasesGPUMemory(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	m, _ := testManager(e, Config{Elastic: true, MinPool: 1})
	e.Go("p", func(p *sim.Proc) {
		it, err := m.Put(p, ctxFor("f", 1), 0, 10*MB)
		if err != nil {
			t.Fatalf("Put: %v", err)
		}
		reservedBefore := m.Pool(0).Reserved()
		m.Drop(it)
		if m.Lookup(it.ID) != nil {
			t.Error("dropped item still resolvable")
		}
		if m.TotalUsed() != 0 {
			t.Errorf("used after drop = %d", m.TotalUsed())
		}
		// Unlike Free, Drop leaves no pre-warm reservation behind: the pool's
		// reserved bytes must not grow past what the item itself held.
		if got := m.Pool(0).Reserved(); got > reservedBefore {
			t.Errorf("drop grew the reservation: %d > %d", got, reservedBefore)
		}
		m.Drop(it) // double drop must be a no-op
		if m.TotalUsed() != 0 {
			t.Errorf("used after double drop = %d", m.TotalUsed())
		}
	})
	e.Run(0)
}

func TestDropHostResidentItem(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	m, _ := testManager(e, Config{Elastic: true, MinPool: 1})
	squeeze(t, m, 0, 40*MB) // limit = 20MB → 30MB item spills to host
	e.Go("p", func(p *sim.Proc) {
		it, err := m.Put(p, ctxFor("big", 1), 0, 30*MB)
		if err != nil {
			t.Fatalf("Put: %v", err)
		}
		if !it.OnHost {
			t.Fatal("precondition: item spilled to host")
		}
		hostUsed := m.node.Host.Used()
		m.Drop(it)
		if m.node.Host.Used() >= hostUsed {
			t.Errorf("host bytes not released: %d -> %d", hostUsed, m.node.Host.Used())
		}
	})
	e.Run(0)
}

// TestEvictionAbortsWhenMigrationFails drives the eviction path with a
// migrator whose host-bound transfers fail: the victim must stay GPU-resident
// and remain usable, and the Put that triggered the eviction spills instead.
func TestEvictionAbortsWhenMigrationFails(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	mig := &failMigrator{failToHost: true}
	m := NewManager(e, newTestNode(e), mig, Config{Elastic: true, MinPool: 1, Policy: PolicyLRU})
	squeeze(t, m, 0, 100*MB) // limit = 50MB
	e.Go("p", func(p *sim.Proc) {
		a, _ := m.Put(p, ctxFor("a", 1), 0, 30*MB)
		b, err := m.Put(p, ctxFor("b", 2), 0, 30*MB) // wants an eviction; it fails
		if err != nil {
			t.Fatalf("Put b: %v", err)
		}
		if a.OnHost {
			t.Error("victim moved to host despite the failed migration")
		}
		if a.migrating {
			t.Error("victim left in migrating state after the abort")
		}
		if !b.OnHost {
			t.Error("b should have spilled once eviction could not make room")
		}
	})
	e.Run(0)
	if mig.toHost == 0 {
		t.Error("eviction path never attempted a migration")
	}
}

// TestRestoreAbortsWhenMigrationFails evicts an item normally, then breaks
// the GPU-bound direction: Restore must report failure, release the pool
// bytes it grabbed, and leave the item host-resident and intact.
func TestRestoreAbortsWhenMigrationFails(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	mig := &failMigrator{}
	m := NewManager(e, newTestNode(e), mig, Config{Elastic: true, MinPool: 1, Policy: PolicyRQ})
	squeeze(t, m, 0, 100*MB)
	e.Go("p", func(p *sim.Proc) {
		a, _ := m.Put(p, ctxFor("a", 1), 0, 30*MB)
		b, _ := m.Put(p, ctxFor("b", 9), 0, 15*MB)
		_, _ = m.Put(p, ctxFor("c", 5), 0, 30*MB) // evicts b
		if !b.OnHost {
			t.Fatal("precondition: b evicted")
		}
		m.Free(a)
		mig.failToGPU = true
		used := m.TotalUsed()
		if m.Restore(p, b) {
			t.Error("Restore reported success despite the failed transfer")
		}
		if !b.OnHost {
			t.Error("item no longer host-resident after the aborted restore")
		}
		if b.migrating {
			t.Error("item left in migrating state after the abort")
		}
		if m.TotalUsed() != used {
			t.Errorf("aborted restore leaked pool bytes: %d -> %d", used, m.TotalUsed())
		}
		// Once the path heals, the same restore succeeds.
		mig.failToGPU = false
		if !m.Restore(p, b) {
			t.Error("restore still failing after the path healed")
		}
		if b.OnHost {
			t.Error("item not GPU-resident after the healed restore")
		}
	})
	e.Run(0)
}

// TestDropDuringEviction drops the victim while its migration is in flight
// (via a migrator that drops it mid-transfer): the eviction must clean up
// after itself without double-releasing.
func TestDropDuringEviction(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	var m *Manager
	var victim *Item
	mig := &hookMigrator{}
	m = NewManager(e, newTestNode(e), mig, Config{Elastic: true, MinPool: 1, Policy: PolicyLRU})
	mig.onToHost = func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		if victim != nil {
			m.Drop(victim) // crash lands mid-migration
		}
	}
	squeeze(t, m, 0, 100*MB)
	e.Go("p", func(p *sim.Proc) {
		var err error
		victim, err = m.Put(p, ctxFor("a", 1), 0, 30*MB)
		if err != nil {
			t.Fatalf("Put: %v", err)
		}
		p.Sleep(time.Millisecond)
		if _, err := m.Put(p, ctxFor("b", 2), 0, 30*MB); err != nil {
			t.Fatalf("Put b: %v", err)
		}
		if m.Lookup(victim.ID) != nil {
			t.Error("dropped victim still resolvable")
		}
	})
	e.Run(0)
}

// hookMigrator lets a test interleave events with a migration in flight.
type hookMigrator struct {
	onToHost func(p *sim.Proc)
}

func (h *hookMigrator) ToHost(p *sim.Proc, gpu int, bytes int64) error {
	if h.onToHost != nil {
		h.onToHost(p)
	}
	return nil
}
func (h *hookMigrator) ToGPU(p *sim.Proc, gpu int, bytes int64) error { return nil }
