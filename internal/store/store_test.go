package store

import (
	"testing"
	"time"

	"grouter/internal/dataplane"
	"grouter/internal/fabric"
	"grouter/internal/sim"
	"grouter/internal/topology"
)

const MB = int64(1) << 20

// sleepMigrator models migration at 10 GB/s.
type sleepMigrator struct{ toHost, toGPU int }

func (s *sleepMigrator) ToHost(p *sim.Proc, gpu int, bytes int64) error {
	s.toHost++
	p.Sleep(time.Duration(float64(bytes) / 10e9 * float64(time.Second)))
	return nil
}
func (s *sleepMigrator) ToGPU(p *sim.Proc, gpu int, bytes int64) error {
	s.toGPU++
	p.Sleep(time.Duration(float64(bytes) / 10e9 * float64(time.Second)))
	return nil
}

func testManager(e *sim.Engine, cfg Config) (*Manager, *sleepMigrator) {
	f := fabric.New(e, topology.DGXV100(), 1)
	mig := &sleepMigrator{}
	return NewManager(e, f.NodeF(0), mig, cfg), mig
}

func ctxFor(fn string, seq int64) *dataplane.FnCtx {
	return &dataplane.FnCtx{Fn: fn, Workflow: "wf", ConsumerSeq: seq}
}

func TestPutLookupFree(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	m, _ := testManager(e, Config{Elastic: true, Policy: PolicyRQ})
	e.Go("p", func(p *sim.Proc) {
		it, err := m.Put(p, ctxFor("f", 1), 0, 10*MB)
		if err != nil {
			t.Errorf("Put: %v", err)
			return
		}
		if m.Lookup(it.ID) != it {
			t.Error("Lookup failed")
		}
		if it.OnHost {
			t.Error("small item should be GPU-resident")
		}
		if m.TotalUsed() != 10*MB {
			t.Errorf("used = %d, want %d", m.TotalUsed(), 10*MB)
		}
		m.Free(it)
		if m.Lookup(it.ID) != nil {
			t.Error("freed item still resolvable")
		}
		if m.TotalUsed() != 0 {
			t.Errorf("used after free = %d", m.TotalUsed())
		}
	})
	e.Run(0)
}

func TestDoubleFreeIsNoop(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	m, _ := testManager(e, Config{Elastic: true})
	e.Go("p", func(p *sim.Proc) {
		it, _ := m.Put(p, ctxFor("f", 1), 0, MB)
		m.Free(it)
		m.Free(it) // must not panic or corrupt accounting
		if m.TotalUsed() != 0 {
			t.Errorf("used = %d", m.TotalUsed())
		}
	})
	e.Run(0)
}

func TestElasticReservationThenReclaim(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	m, _ := testManager(e, Config{Elastic: true, MinPool: 1, ReclaimInterval: 100 * time.Millisecond})
	e.Go("p", func(p *sim.Proc) {
		// Repeated arrivals at 50ms intervals establish a short R_window.
		for i := 0; i < 10; i++ {
			it, err := m.Put(p, ctxFor("f", int64(i)), 0, 10*MB)
			if err != nil {
				t.Errorf("Put: %v", err)
				return
			}
			p.Sleep(50 * time.Millisecond)
			m.Free(it)
		}
		// While hot, the pool keeps a reservation.
		if m.Pool(0).Reserved() == 0 {
			t.Error("expected warm reservation after frees")
		}
		// After the window plus reclaim sweeps, the pool shrinks to ~MinPool.
		p.Sleep(3 * time.Second)
		if got := m.Pool(0).Reserved(); got > 10*MB {
			t.Errorf("idle pool reserved = %d, want reclaimed", got)
		}
	})
	e.Run(0)
}

func TestStaticPoolDoesNotShrink(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	m, _ := testManager(e, Config{Elastic: false, StaticReserve: 512 * MB})
	e.Go("p", func(p *sim.Proc) {
		if m.Pool(0).Reserved() != 512*MB {
			t.Errorf("static reserve = %d", m.Pool(0).Reserved())
		}
		it, _ := m.Put(p, ctxFor("f", 1), 0, 10*MB)
		m.Free(it)
		p.Sleep(5 * time.Second)
		if m.Pool(0).Reserved() != 512*MB {
			t.Errorf("static pool changed to %d", m.Pool(0).Reserved())
		}
	})
	e.Run(0)
}

func TestSymmetricGrowMirrorsAllGPUs(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	m, _ := testManager(e, Config{Elastic: true, MinPool: 1, Symmetric: true})
	e.Go("p", func(p *sim.Proc) {
		_, err := m.Put(p, ctxFor("f", 1), 0, 64*MB)
		if err != nil {
			t.Fatalf("Put: %v", err)
		}
		for g := 1; g < 8; g++ {
			if m.Pool(g).Reserved() < 64*MB {
				t.Errorf("GPU %d pool = %d, want mirrored >= %d", g, m.Pool(g).Reserved(), 64*MB)
			}
		}
	})
	e.Run(0)
}

// squeeze fills a GPU with non-storage allocations so the storage limit
// becomes small.
func squeeze(t *testing.T, m *Manager, g int, leave int64) {
	t.Helper()
	dev := m.node.GPUs[g]
	if _, err := dev.Alloc(dev.Free() - leave); err != nil {
		t.Fatal(err)
	}
}

func TestEvictionUnderPressureLRU(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	m, mig := testManager(e, Config{Elastic: true, MinPool: 1, Policy: PolicyLRU})
	squeeze(t, m, 0, 100*MB) // storage limit = 50MB
	e.Go("p", func(p *sim.Proc) {
		a, _ := m.Put(p, ctxFor("a", 10), 0, 25*MB)
		p.Sleep(time.Millisecond)
		b, _ := m.Put(p, ctxFor("b", 5), 0, 15*MB)
		p.Sleep(time.Millisecond)
		// Touch a so b becomes LRU.
		m.Touch(a, p.Now())
		c, _ := m.Put(p, ctxFor("c", 20), 0, 20*MB)
		if c.OnHost {
			t.Error("c should fit after eviction")
		}
		if !b.OnHost {
			t.Error("LRU should have evicted b (least recently accessed)")
		}
		if a.OnHost && b.OnHost {
			t.Error("should not evict more than needed")
		}
	})
	e.Run(0)
	if mig.toHost == 0 {
		t.Error("no migration happened")
	}
}

func TestEvictionQueueAware(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	m, _ := testManager(e, Config{Elastic: true, MinPool: 1, Policy: PolicyRQ})
	squeeze(t, m, 0, 100*MB)
	e.Go("p", func(p *sim.Proc) {
		// a1's consumer is early in the queue (seq 1), a2's is late (seq 9).
		a1, _ := m.Put(p, ctxFor("a", 1), 0, 20*MB)
		p.Sleep(time.Millisecond)
		a2, _ := m.Put(p, ctxFor("a", 9), 0, 20*MB)
		p.Sleep(time.Millisecond)
		// LRU would evict a1 (older access); queue-aware must evict a2.
		_, _ = m.Put(p, ctxFor("b", 5), 0, 20*MB)
		if a1.OnHost {
			t.Error("queue-aware policy evicted imminently needed a1")
		}
		if !a2.OnHost {
			t.Error("queue-aware policy should have evicted a2")
		}
	})
	e.Run(0)
}

func TestProactiveRestore(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	m, mig := testManager(e, Config{
		Elastic: true, MinPool: 1, Policy: PolicyRQProactive,
		ReclaimInterval: 50 * time.Millisecond,
	})
	squeeze(t, m, 0, 100*MB)
	var evicted *Item
	e.Go("p", func(p *sim.Proc) {
		a, _ := m.Put(p, ctxFor("a", 2), 0, 30*MB)
		b, _ := m.Put(p, ctxFor("b", 8), 0, 15*MB)
		// Force pressure: b gets evicted (deeper in queue).
		c, _ := m.Put(p, ctxFor("c", 5), 0, 30*MB)
		if !b.OnHost {
			t.Error("b should be evicted")
			return
		}
		evicted = b
		// Free a and c: room returns; proactive loop should restore b.
		m.Free(a)
		m.Free(c)
		p.Sleep(time.Second)
	})
	e.Run(2 * time.Second)
	if evicted == nil {
		return
	}
	if evicted.OnHost {
		t.Error("proactive restoration did not bring b back to GPU")
	}
	if mig.toGPU == 0 {
		t.Error("no restore transfer happened")
	}
}

func TestSpillWhenItemExceedsLimit(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	m, _ := testManager(e, Config{Elastic: true, MinPool: 1})
	squeeze(t, m, 0, 40*MB) // limit = 20MB
	e.Go("p", func(p *sim.Proc) {
		it, err := m.Put(p, ctxFor("big", 1), 0, 30*MB)
		if err != nil {
			t.Fatalf("Put: %v", err)
		}
		if !it.OnHost {
			t.Error("oversized item should spill to host")
		}
		m.Free(it)
	})
	e.Run(0)
	if m.Spills.N == 0 {
		t.Error("spill counter not incremented")
	}
}

func TestRestoreExplicit(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	m, _ := testManager(e, Config{Elastic: true, MinPool: 1, Policy: PolicyRQ})
	squeeze(t, m, 0, 100*MB)
	e.Go("p", func(p *sim.Proc) {
		a, _ := m.Put(p, ctxFor("a", 1), 0, 30*MB)
		b, _ := m.Put(p, ctxFor("b", 9), 0, 15*MB)
		_, _ = m.Put(p, ctxFor("c", 5), 0, 30*MB) // evicts b
		if !b.OnHost {
			t.Fatal("precondition: b evicted")
		}
		m.Free(a) // make room
		if !m.Restore(p, b) {
			t.Error("explicit restore failed with free space")
		}
		if b.OnHost {
			t.Error("b still on host after restore")
		}
	})
	e.Run(0)
}

func TestUsageTimelineSampled(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	m, _ := testManager(e, Config{Elastic: true, MinPool: 1})
	e.Go("p", func(p *sim.Proc) {
		it, _ := m.Put(p, ctxFor("f", 1), 0, 10*MB)
		p.Sleep(time.Second)
		m.Free(it)
	})
	e.Run(0)
	if m.UsedTL.Len() < 2 {
		t.Fatalf("timeline samples = %d, want >= 2", m.UsedTL.Len())
	}
	if m.UsedTL.Peak() != float64(10*MB) {
		t.Errorf("peak usage = %f, want %d", m.UsedTL.Peak(), 10*MB)
	}
}
