package store

import (
	"testing"

	"grouter/internal/dataplane"
	"grouter/internal/fabric"
	"grouter/internal/sim"
)

func loc(n, g int) fabric.Location { return fabric.Location{Node: n, GPU: g} }

func TestRegistryAddRemove(t *testing.T) {
	r := NewRegistry()
	r.Add(1, loc(1, 3))
	r.Add(1, loc(0, 2))
	r.Add(1, loc(1, 3)) // duplicate ignored
	r.Add(1, loc(0, fabric.HostGPU))
	if got := r.Count(1); got != 2 {
		t.Fatalf("Count = %d, want 2 (dupes and host locations ignored)", got)
	}
	// Locations come back sorted by (node, GPU) regardless of Add order.
	ls := r.Locations(1)
	if ls[0] != loc(0, 2) || ls[1] != loc(1, 3) {
		t.Fatalf("Locations not sorted: %v", ls)
	}
	if !r.Has(1, loc(1, 3)) || r.Has(1, loc(1, 4)) || r.Has(2, loc(1, 3)) {
		t.Fatal("Has gives wrong membership")
	}
	r.Remove(1, loc(1, 3))
	if r.Has(1, loc(1, 3)) || r.Count(1) != 1 {
		t.Fatal("Remove left the location registered")
	}
	r.Remove(1, loc(0, 2))
	if r.Len() != 0 {
		t.Fatalf("empty object should be dropped from the map, Len = %d", r.Len())
	}
}

func TestRegistryDropGPU(t *testing.T) {
	r := NewRegistry()
	r.Add(5, loc(0, 1))
	r.Add(3, loc(0, 1))
	r.Add(7, loc(0, 2))
	r.Add(3, loc(1, 1))
	ids := r.DropGPU(0, 1)
	if len(ids) != 2 || ids[0] != 3 || ids[1] != 5 {
		t.Fatalf("DropGPU ids = %v, want [3 5] in ascending order", ids)
	}
	if r.Has(3, loc(0, 1)) || r.Has(5, loc(0, 1)) {
		t.Fatal("crashed-GPU copies still registered")
	}
	if !r.Has(7, loc(0, 2)) || !r.Has(3, loc(1, 1)) {
		t.Fatal("copies on other GPUs were dropped")
	}
	if ids := r.DropGPU(4, 4); len(ids) != 0 {
		t.Fatalf("DropGPU on empty GPU returned %v", ids)
	}
}

func TestRegistryDropID(t *testing.T) {
	r := NewRegistry()
	r.Add(9, loc(0, 0))
	r.Add(9, loc(1, 5))
	r.DropID(9)
	if r.Count(9) != 0 || r.Len() != 0 {
		t.Fatal("DropID left copies behind")
	}
}

// TestPutCacheBestEffort checks that replica caches never displace primary
// items: with the static pool full of primaries, PutCache returns nil; with
// room, it succeeds and the item is marked Cache.
func TestPutCacheBestEffort(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	m, _ := testManager(e, Config{Elastic: false, StaticReserve: 64 * MB, Policy: PolicyLRU})
	e.Go("p", func(p *sim.Proc) {
		it := m.PutCache(p, dataplane.DataID(1), "f", 0, 16*MB)
		if it == nil {
			t.Fatal("PutCache with free pool failed")
		}
		if !it.Cache || it.CacheOf != 1 {
			t.Fatalf("cache item not marked: Cache=%v CacheOf=%d", it.Cache, it.CacheOf)
		}
		// Fill the rest of the pool with primaries. The cache is dropped to
		// make room (caches are the preferred victims) …
		if _, err := m.Put(p, ctxFor("f", 1), 0, 60*MB); err != nil {
			t.Fatalf("Put should displace the cache, got %v", err)
		}
		if m.Lookup(it.ID) != nil {
			t.Fatal("cache item survived primary pressure")
		}
		// … and with the pool now full of primaries, PutCache must refuse
		// rather than evict one.
		if it2 := m.PutCache(p, dataplane.DataID(2), "f", 0, 16*MB); it2 != nil {
			t.Fatal("PutCache displaced a primary item")
		}
	})
	e.Run(0)
}

// TestPutCacheDropNotifies checks the OnCacheDrop invalidation hook: a
// store-initiated cache drop reports (object, GPU) so the plane can unhook
// its registry, while an explicit Drop by the owner does not re-notify.
func TestPutCacheDropNotifies(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	m, _ := testManager(e, Config{Elastic: false, StaticReserve: 64 * MB, Policy: PolicyLRU})
	var dropped []dataplane.DataID
	m.OnCacheDrop = func(id dataplane.DataID, gpu int) {
		if gpu != 0 {
			t.Errorf("OnCacheDrop gpu = %d, want 0", gpu)
		}
		dropped = append(dropped, id)
	}
	e.Go("p", func(p *sim.Proc) {
		old := m.PutCache(p, dataplane.DataID(10), "f", 0, 30*MB)
		if old == nil {
			t.Fatal("first PutCache failed")
		}
		// A second cache that needs the space drops the older cache (LRU).
		fresh := m.PutCache(p, dataplane.DataID(11), "f", 0, 50*MB)
		if fresh == nil {
			t.Fatal("second PutCache failed")
		}
		if len(dropped) != 1 || dropped[0] != 10 {
			t.Fatalf("OnCacheDrop calls = %v, want [10]", dropped)
		}
		if m.CacheDrops.N != 1 {
			t.Fatalf("CacheDrops = %d, want 1", m.CacheDrops.N)
		}
		// Owner-initiated Drop must not re-notify.
		m.Drop(fresh)
		if len(dropped) != 1 {
			t.Fatalf("owner Drop fired OnCacheDrop: %v", dropped)
		}
	})
	e.Run(0)
}
