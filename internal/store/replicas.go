// Replica registry: the bookkeeping half of fan-out-aware transfer
// coalescing. Every time a consumer Get materializes an object's bytes on a
// GPU, the data plane may register that copy here; later consumers of the
// same object can then pull from the nearest fresh replica instead of
// re-loading the producer GPU's links.
//
// The registry is metadata only — replica bytes are held as cache items in
// the per-node Managers (see PutCache), which is what ties invalidation into
// the existing fault paths: store eviction pressure drops cache items (and
// notifies the plane via OnCacheDrop), and GPU crashes destroy them like any
// other resident object.
//
// Invariants:
//   - a registered location never duplicates within one object's set;
//   - locations are kept sorted (node, then GPU), so iteration order — and
//     therefore replica-aware source selection — is deterministic;
//   - only GPU locations are registered (host copies are the primary's
//     eviction home, not replicas);
//   - an entry is removed the moment its backing bytes become unusable:
//     object freed, cache item evicted, or GPU crashed.
package store

import (
	"sort"

	"grouter/internal/dataplane"
	"grouter/internal/fabric"
)

// Registry records the live GPU-resident copies of data objects.
type Registry struct {
	locs map[dataplane.DataID][]fabric.Location
}

// NewRegistry returns an empty replica registry.
func NewRegistry() *Registry {
	return &Registry{locs: make(map[dataplane.DataID][]fabric.Location)}
}

func locLess(a, b fabric.Location) bool {
	if a.Node != b.Node {
		return a.Node < b.Node
	}
	return a.GPU < b.GPU
}

// Add registers a live copy of id at loc. Host locations and duplicates are
// ignored.
func (r *Registry) Add(id dataplane.DataID, loc fabric.Location) {
	if loc.IsHost() || r.Has(id, loc) {
		return
	}
	ls := append(r.locs[id], loc)
	sort.Slice(ls, func(i, j int) bool { return locLess(ls[i], ls[j]) })
	r.locs[id] = ls
}

// Has reports whether a copy of id is registered at loc.
func (r *Registry) Has(id dataplane.DataID, loc fabric.Location) bool {
	for _, l := range r.locs[id] {
		if l == loc {
			return true
		}
	}
	return false
}

// Remove drops the copy of id at loc, if registered.
func (r *Registry) Remove(id dataplane.DataID, loc fabric.Location) {
	ls := r.locs[id]
	for i, l := range ls {
		if l == loc {
			ls = append(ls[:i], ls[i+1:]...)
			if len(ls) == 0 {
				delete(r.locs, id)
			} else {
				r.locs[id] = ls
			}
			return
		}
	}
}

// DropID removes every copy of id (object freed).
func (r *Registry) DropID(id dataplane.DataID) { delete(r.locs, id) }

// DropGPU removes every copy resident on the given GPU (crash invalidation)
// and returns the affected object IDs in ascending order.
func (r *Registry) DropGPU(node, gpu int) []dataplane.DataID {
	var ids []dataplane.DataID
	loc := fabric.Location{Node: node, GPU: gpu}
	for id := range r.locs {
		if r.Has(id, loc) {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		r.Remove(id, loc)
	}
	return ids
}

// Locations returns id's registered copies in deterministic (node, GPU)
// order. The returned slice is shared; callers must not mutate it.
func (r *Registry) Locations(id dataplane.DataID) []fabric.Location {
	return r.locs[id]
}

// Count returns the number of registered copies of id.
func (r *Registry) Count(id dataplane.DataID) int { return len(r.locs[id]) }

// Len returns the number of objects with at least one registered copy.
func (r *Registry) Len() int { return len(r.locs) }
