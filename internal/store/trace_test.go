package store

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"grouter/internal/obs"
	"grouter/internal/sim"
)

// TestTracedStorageLifecycle forces a spill, an eviction, and a restore with
// a tracer attached and checks each emits its trace event on the node's
// storage lane, alongside the store-used/store-reserved counter samples.
func TestTracedStorageLifecycle(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	tr := obs.Attach(e)
	m, _ := testManager(e, Config{Elastic: true, MinPool: 1, Policy: PolicyLRU})
	squeeze(t, m, 0, 100*MB) // storage limit = 50MB
	e.Go("p", func(p *sim.Proc) {
		a, _ := m.Put(p, ctxFor("a", 10), 0, 30*MB)
		p.Sleep(time.Millisecond)
		// Over the limit: a is evicted to host to make room.
		b, _ := m.Put(p, ctxFor("b", 5), 0, 30*MB)
		if !a.OnHost {
			t.Error("a should have been evicted")
		}
		// Larger than the whole budget: forced spill straight to host.
		c, _ := m.Put(p, ctxFor("c", 20), 0, 80*MB)
		if !c.OnHost {
			t.Error("oversized put should spill to host")
		}
		// Room returns; the evicted item restores to GPU.
		m.Free(b)
		if !m.Restore(p, a) {
			t.Error("restore failed with free capacity")
		}
	})
	e.Run(0)
	if m.Evictions.N == 0 || m.Spills.N == 0 || m.Restores.N == 0 {
		t.Fatalf("lifecycle incomplete: evictions=%d spills=%d restores=%d",
			m.Evictions.N, m.Spills.N, m.Restores.N)
	}
	var buf bytes.Buffer
	if err := tr.Export(&buf); err != nil {
		t.Fatalf("export: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		`"name":"evict"`, `"name":"restore"`, `"name":"spill"`,
		`"name":"store-used"`, `"name":"store-reserved"`,
		`"tid":100`, // TrackStoreBase + node 0
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %s", want)
		}
	}
}
