// Package netsim is a flow-level network simulator over a topology link
// graph. A Flow moves a byte count across an ordered set of directed links;
// the simulator continuously assigns each flow a rate using max-min fair
// water-filling with three extensions needed by GROUTER's transfer
// scheduling:
//
//   - min-rate reservations (SLO guarantees, granted greedily in priority
//     order before fair sharing),
//   - max-rate caps (bandwidth partitioning of background traffic), and
//   - priority tiers (idle bandwidth goes to the tightest-SLO tier first).
//
// Rates are recomputed whenever the flow set or any flow's constraints
// change; flow progress is advanced lazily between recomputations, so the
// model is exact for piecewise-constant rate schedules.
//
// The allocator is incremental and component-scoped: a flow event only
// recomputes rates inside the connected component of links and flows
// reachable from the changed flow. Flows sharing no links with the component
// keep their rates and completion schedules, which is exact for max-min
// fairness because disjoint components impose no constraints on each other
// (see alloc.go for the allocator and the retained reference oracle, and
// index.go for the dense link index backing it).
package netsim

import (
	"fmt"
	"math"
	"time"

	"grouter/internal/metrics"
	"grouter/internal/obs"
	"grouter/internal/sim"
	"grouter/internal/topology"
)

// finishEpsilon is the residual byte count below which a flow is complete
// (absorbs floating-point drift).
const finishEpsilon = 0.5

// farFuture marks a flow with no projected completion (zero rate).
const farFuture = time.Duration(math.MaxInt64)

// global aggregates allocator counters across every Network in the process,
// so harnesses like cmd/grouter-bench can report allocator work without
// reaching into each experiment's private simulator.
var global metrics.AllocatorStats

// Stats returns the process-wide allocator counters.
func Stats() *metrics.AllocatorStats { return &global }

// Network simulates a set of capacity-annotated links shared by flows.
//
// Sharded execution: a Network is single-threaded state owned by one engine.
// In a sharded replay (internal/sim's ShardGroup) every Network — and with
// it the whole incremental allocator: link graph, flow set, dirty
// components — lives on exactly one shard, because a pod's fabric is its
// own connected component and never shares links with another shard's.
// NetStats is therefore shard-local allocator work by construction; only
// the process-wide Stats() aggregate crosses shards, which is why its
// counters are atomic.
type Network struct {
	engine *sim.Engine
	stats  metrics.AllocatorStats

	// shard tags this network's flow spans with the engine shard hosting it
	// in sharded runs (-1 = unsharded, no tag emitted).
	shard int32

	// Dense link table; see index.go.
	linkIndex map[topology.LinkID]int
	links     []linkState

	// order holds the active flows sorted by (priority desc, seq asc) — the
	// allocation order — and is maintained incrementally so recomputes never
	// re-sort the population.
	order []*Flow
	seq   int64

	// Single outstanding allocator event: the debounce for mutation bursts
	// and the next projected completion share one engine timer. Superseded
	// timers still in the engine heap detect staleness by comparing their
	// fire instant against eventAt (see fireTimer). timerFn is the one timer
	// callback, allocated once — scheduling an event captures nothing.
	eventScheduled bool
	eventAt        time.Duration
	timerFn        func()

	// Seeds for the next recompute: flows that arrived or changed options,
	// and links whose flow set shrank (cancellations).
	dirtyFlows []*Flow
	dirtyLinks []int

	// completions is a min-heap of active flows by projected finish time.
	completions []*Flow

	// epoch stamps component membership per recompute; stamp marks per-link
	// counts per water-fill iteration. Both only ever increase, so scratch
	// state needs no clearing between recomputes.
	epoch int64
	stamp int64

	// Reusable scratch for recomputes (steady-state allocation-free).
	compFlows  []*Flow // BFS queue and collected component members
	compLinks  []int
	compSorted []*Flow
	finished   []*Flow
	wfLinks    []int
}

// Flow is one in-flight transfer over a fixed link path.
type Flow struct {
	label    string
	pathIdx  []int32 // dense link indices of the path
	linkPos  []int32 // position of this flow in each link's flow list
	seq      int64
	minRate  float64
	maxRate  float64 // 0 = unlimited
	priority int

	rate       float64
	total      float64
	remaining  float64
	lastUpdate time.Duration
	done       sim.Signal
	canceled   bool
	failed     bool
	active     bool
	net        *Network

	// Allocator bookkeeping.
	visited  int64 // == net.epoch when inside the current component
	frozen   bool  // water-fill scratch
	dirty    bool  // queued in net.dirtyFlows
	finishAt time.Duration
	heapIdx  int // position in net.completions, -1 when absent

	// Tracing (zero when the engine has no tracer attached).
	span     obs.SpanID
	prevRate float64 // rate before the current recompute, for re-rate instants
}

// Options constrain a flow's rate allocation.
type Options struct {
	// MinRate is a reserved rate in bytes/s (best-effort guaranteed before
	// fair sharing).
	MinRate float64
	// MaxRate caps the flow's rate in bytes/s; 0 means unlimited.
	MaxRate float64
	// Priority orders tiers for idle-bandwidth distribution; higher tiers
	// fill first.
	Priority int
}

// New builds a network over the given links.
func New(e *sim.Engine, links []topology.Link) *Network {
	n := &Network{
		engine:    e,
		shard:     -1,
		linkIndex: make(map[topology.LinkID]int, len(links)),
	}
	n.timerFn = n.fireTimer
	for _, l := range links {
		n.AddLink(l)
	}
	return n
}

// SetShard tags the network with the engine shard hosting it; subsequent
// flow spans carry a "shard" attribute. Sharded replays call it at pod
// construction; unsharded simulations leave the network untagged.
func (n *Network) SetShard(shard int32) { n.shard = shard }

// AddLink registers a link, assigning it a dense index. Re-adding an
// existing ID replaces its capacity.
func (n *Network) AddLink(l topology.Link) {
	if l.Bps <= 0 {
		panic(fmt.Sprintf("netsim: link %s has non-positive capacity", l.ID))
	}
	if i, ok := n.linkIndex[l.ID]; ok {
		n.links[i].capacity = l.Bps
		return
	}
	n.linkIndex[l.ID] = len(n.links)
	n.links = append(n.links, linkState{id: l.ID, capacity: l.Bps})
}

// HasLink reports whether id is registered.
func (n *Network) HasLink(id topology.LinkID) bool {
	_, ok := n.linkIndex[id]
	return ok
}

// Capacity returns a link's capacity in bytes/s.
func (n *Network) Capacity(id topology.LinkID) float64 {
	i, ok := n.linkIndex[id]
	if !ok {
		return 0
	}
	return n.links[i].capacity
}

// PathBps returns the bottleneck capacity over a link path, or 0 if the path
// is empty or crosses an unknown link.
func (n *Network) PathBps(links []topology.LinkID) float64 {
	min := 0.0
	for i, id := range links {
		c := n.Capacity(id)
		if i == 0 || c < min {
			min = c
		}
	}
	return min
}

// NetStats returns this network's allocator counters.
func (n *Network) NetStats() *metrics.AllocatorStats { return &n.stats }

// Start launches a flow of the given byte size over path. A zero-byte flow
// completes at the current instant. Start panics on an unknown link, which
// indicates a path-construction bug.
func (n *Network) Start(label string, path []topology.LinkID, bytes float64, opt Options) *Flow {
	for _, id := range path {
		if _, ok := n.linkIndex[id]; !ok {
			panic(fmt.Sprintf("netsim: flow %q uses unknown link %s", label, id))
		}
	}
	if bytes < 0 {
		panic(fmt.Sprintf("netsim: flow %q has negative size", label))
	}
	n.seq++
	f := &Flow{
		label:      label,
		seq:        n.seq,
		minRate:    opt.MinRate,
		maxRate:    opt.MaxRate,
		priority:   opt.Priority,
		total:      bytes,
		remaining:  bytes,
		lastUpdate: n.engine.Now(),
		done:       sim.MakeSignal(n.engine),
		net:        n,
		finishAt:   farFuture,
		heapIdx:    -1,
	}
	if bytes <= finishEpsilon || len(path) == 0 {
		f.remaining = 0
		n.engine.Schedule(0, f.done.Fire)
		return f
	}
	for _, id := range path {
		if n.links[n.linkIndex[id]].down {
			// The path crosses a failed link: the flow fails at the current
			// instant without moving a byte. Callers observe Failed() after
			// the done signal and retry or re-plan.
			f.failed = true
			metrics.Faults().FlowsKilled.Add(1)
			if tr := obs.TracerOf(n.engine); tr != nil {
				id := tr.InstantOn(obs.FlowTrack(f.seq), obs.CatFlow, label)
				tr.SetAttrStr(id, "outcome", "dead-path")
			}
			n.engine.Schedule(0, f.done.Fire)
			return f
		}
	}
	slab := make([]int32, 2*len(path))
	f.pathIdx = slab[:len(path):len(path)]
	f.linkPos = slab[len(path):]
	for i, id := range path {
		f.pathIdx[i] = int32(n.linkIndex[id])
	}
	n.insertFlow(f)
	n.markDirty(f)
	if tr := obs.TracerOf(n.engine); tr != nil {
		f.span = tr.BeginOn(obs.FlowTrack(f.seq), obs.CatFlow, label)
		tr.SetAttrInt(f.span, "bytes", int64(bytes))
		if n.shard >= 0 {
			tr.SetAttrInt(f.span, "shard", int64(n.shard))
		}
	}
	n.requestEvent(n.engine.Now())
	return f
}

// Done returns the flow's terminal signal; it fires on completion AND on
// failure (check Failed after waiting).
func (f *Flow) Done() *sim.Signal { return &f.done }

// Label returns the flow's label.
func (f *Flow) Label() string { return f.label }

// Rate returns the flow's current allocated rate in bytes/s.
func (f *Flow) Rate() float64 { return f.rate }

// Failed reports whether the flow was terminated by a link failure before
// delivering all its bytes.
func (f *Flow) Failed() bool { return f.failed }

// Remaining returns the bytes left to transfer as of the current instant.
// For a failed flow this is the undelivered byte count frozen at the failure
// instant (the amount a retry must re-send); for a completed or canceled
// flow it is 0.
func (f *Flow) Remaining() float64 {
	if f.failed {
		return f.remaining
	}
	if f.done.Fired() || f.canceled {
		return 0
	}
	elapsed := (f.net.engine.Now() - f.lastUpdate).Seconds()
	rem := f.remaining - f.rate*elapsed
	if rem < 0 {
		return 0
	}
	return rem
}

// Transferred returns the bytes delivered so far. Failure and cancellation
// freeze progress at the terminating instant, so for every flow
// Transferred + undelivered bytes == the size it was started with.
func (f *Flow) Transferred() float64 {
	if f.active {
		return f.total - f.Remaining()
	}
	if f.done.Fired() && !f.failed {
		return f.total
	}
	return f.total - f.remaining
}

// SetOptions updates the flow's constraints and triggers a rate
// recomputation of the flow's component.
func (f *Flow) SetOptions(opt Options) {
	if f.done.Fired() || f.canceled {
		return
	}
	if f.active && opt.Priority != f.priority {
		// Priority determines the flow's slot in the allocation order.
		f.net.removeFromOrder(f)
		f.priority = opt.Priority
		f.net.insertIntoOrder(f)
	} else {
		f.priority = opt.Priority
	}
	f.minRate = opt.MinRate
	f.maxRate = opt.MaxRate
	if f.active {
		f.net.markDirty(f)
		f.net.requestEvent(f.net.engine.Now())
	}
}

// Cancel aborts the flow without firing its done signal.
func (n *Network) Cancel(f *Flow) {
	if !f.active {
		return
	}
	f.canceled = true
	f.advance(n.engine.Now())
	// The canceled flow's own progress no longer matters; its peers keep
	// their rates until the recompute this schedules (same instant), so
	// their lazily-advanced progress is unaffected.
	n.removeFlow(f)
	f.rate = 0
	n.endFlowSpan(f, "canceled")
	for _, li := range f.pathIdx {
		n.dirtyLinks = append(n.dirtyLinks, int(li))
	}
	n.requestEvent(n.engine.Now())
}

// advance moves the flow's lazily-tracked progress to now at its current
// rate.
func (f *Flow) advance(now time.Duration) {
	elapsed := (now - f.lastUpdate).Seconds()
	if elapsed > 0 {
		f.remaining -= f.rate * elapsed
		if f.remaining < 0 {
			f.remaining = 0
		}
	}
	f.lastUpdate = now
}

// --- fault operations (driven by internal/faults) ---

// LinkUp reports whether id is registered and not failed.
func (n *Network) LinkUp(id topology.LinkID) bool {
	i, ok := n.linkIndex[id]
	return ok && !n.links[i].down
}

// PathUp reports whether every link of the path is registered and up.
func (n *Network) PathUp(links []topology.LinkID) bool {
	if len(links) == 0 {
		return false
	}
	for _, id := range links {
		if !n.LinkUp(id) {
			return false
		}
	}
	return true
}

// SetLinkBps changes a link's capacity at the current instant (degradation or
// recovery). Crossing flows keep their lazily-advanced progress and are
// re-rated by the recompute this schedules. Panics on an unknown link or
// non-positive capacity, like AddLink.
func (n *Network) SetLinkBps(id topology.LinkID, bps float64) {
	i, ok := n.linkIndex[id]
	if !ok {
		panic(fmt.Sprintf("netsim: SetLinkBps on unknown link %s", id))
	}
	if bps <= 0 {
		panic(fmt.Sprintf("netsim: link %s capacity %f (use FailLink for outages)", id, bps))
	}
	if n.links[i].capacity == bps {
		return
	}
	n.links[i].capacity = bps
	n.dirtyLinks = append(n.dirtyLinks, i)
	n.requestEvent(n.engine.Now())
}

// FailLink takes a link down. Every flow crossing it is terminated at the
// current instant with its progress frozen (Failed() true, Done() fired);
// new flows whose path crosses the link fail immediately until RestoreLink.
// Failing an already-down link is a no-op.
func (n *Network) FailLink(id topology.LinkID) {
	i, ok := n.linkIndex[id]
	if !ok {
		panic(fmt.Sprintf("netsim: FailLink on unknown link %s", id))
	}
	l := &n.links[i]
	if l.down {
		return
	}
	l.down = true
	now := n.engine.Now()
	// Snapshot and order the victims by seq so the done signals fire in a
	// deterministic order regardless of link-list layout.
	victims := make([]*Flow, 0, len(l.flows))
	for _, s := range l.flows {
		victims = append(victims, s.f)
	}
	sortFlowsBySeq(victims)
	for _, f := range victims {
		n.failFlow(f, now)
	}
	n.dirtyLinks = append(n.dirtyLinks, i)
	n.requestEvent(now)
}

// RestoreLink brings a failed link back at its current capacity. Flows killed
// by the outage stay failed; only new Starts see the restored link.
func (n *Network) RestoreLink(id topology.LinkID) {
	i, ok := n.linkIndex[id]
	if !ok {
		panic(fmt.Sprintf("netsim: RestoreLink on unknown link %s", id))
	}
	n.links[i].down = false
}

// failFlow terminates one flow at a link failure: progress is advanced to the
// failure instant and frozen, peers sharing any of its links are queued for
// recompute, and the done signal fires. A flow that had already delivered all
// its bytes at the failure instant completes normally instead.
func (n *Network) failFlow(f *Flow, now time.Duration) {
	if !f.active {
		return
	}
	f.advance(now)
	n.removeFlow(f)
	f.rate = 0
	for _, li := range f.pathIdx {
		n.dirtyLinks = append(n.dirtyLinks, int(li))
	}
	if f.remaining <= finishEpsilon {
		f.remaining = 0
		n.endFlowSpan(f, "completed")
	} else {
		f.failed = true
		metrics.Faults().FlowsKilled.Add(1)
		n.endFlowSpan(f, "failed")
	}
	f.done.Fire()
}

// endFlowSpan closes a flow's trace span with its delivered byte count and
// terminal outcome. No-op when tracing is disabled or the flow never opened
// a span.
func (n *Network) endFlowSpan(f *Flow, outcome string) {
	if f.span == 0 {
		return
	}
	if tr := obs.TracerOf(n.engine); tr != nil {
		tr.SetAttrInt(f.span, "transferred", int64(f.total-f.remaining))
		tr.SetAttrStr(f.span, "outcome", outcome)
		tr.End(f.span)
	}
}

// ActiveFlows returns the number of in-flight flows.
func (n *Network) ActiveFlows() int { return len(n.order) }

// AllocatedOn returns the total rate currently allocated on a link, from
// maintained per-link totals (O(1)).
func (n *Network) AllocatedOn(id topology.LinkID) float64 {
	i, ok := n.linkIndex[id]
	if !ok {
		return 0
	}
	return n.links[i].alloc
}

// Utilization snapshots every link's allocated fraction (0..1). Useful for
// debugging contention in experiments.
func (n *Network) Utilization() map[topology.LinkID]float64 {
	out := make(map[topology.LinkID]float64, len(n.links))
	for i := range n.links {
		l := &n.links[i]
		out[l.id] = 0
		if l.capacity > 0 {
			out[l.id] = l.alloc / l.capacity
		}
	}
	return out
}

// FreeOn returns a link's unallocated capacity (O(1)).
func (n *Network) FreeOn(id topology.LinkID) float64 {
	i, ok := n.linkIndex[id]
	if !ok {
		return 0
	}
	free := n.links[i].capacity - n.links[i].alloc
	if free < 0 {
		return 0
	}
	return free
}

// markDirty queues f as a seed for the next recompute.
func (n *Network) markDirty(f *Flow) {
	if f.dirty {
		return
	}
	f.dirty = true
	n.dirtyFlows = append(n.dirtyFlows, f)
}

// requestEvent ensures the allocator's single engine timer fires no later
// than at. Mutation bursts and completion timers coalesce here: a burst of N
// Start calls at one instant schedules one event, and a completion timer
// already due at or before the requested time is reused as-is. Superseded
// timers are invalidated by generation and fire as no-ops.
func (n *Network) requestEvent(at time.Duration) {
	if n.eventScheduled && n.eventAt <= at {
		return
	}
	n.eventScheduled = true
	n.eventAt = at
	n.stats.EventsScheduled.Add(1)
	global.EventsScheduled.Add(1)
	n.engine.Schedule(at-n.engine.Now(), n.timerFn)
}

// fireTimer is the allocator's timer callback. A timer is current only if an
// event is still pending for exactly this instant; a superseded timer (one
// re-armed for an earlier fire already handled its instant, or the pending
// event moved) is a no-op. When a stale timer and its replacement share an
// instant, the first to fire runs the recompute and clears eventScheduled, so
// the recompute still happens exactly once.
func (n *Network) fireTimer() {
	if !n.eventScheduled || n.eventAt != n.engine.Now() {
		return
	}
	n.eventScheduled = false
	n.recompute()
}

// recompute is the allocator event body: it gathers the recompute seeds (due
// completions, dirty flows, links with departed flows), expands them to
// connected components, advances and retires those components' flows,
// reallocates their rates, and re-arms the completion timer.
func (n *Network) recompute() {
	now := n.engine.Now()

	// Flows whose projected completion has arrived seed a recompute of
	// their components; they are retired after advancing confirms it.
	for len(n.completions) > 0 && n.completions[0].finishAt <= now {
		n.markDirty(n.heapPop())
	}

	if len(n.dirtyFlows) > 0 || len(n.dirtyLinks) > 0 {
		n.recomputeComponents(now)
	}

	if len(n.completions) > 0 && n.completions[0].finishAt != farFuture {
		n.requestEvent(n.completions[0].finishAt)
	}
}

// recomputeComponents performs one component-scoped recompute pass.
func (n *Network) recomputeComponents(now time.Duration) {
	components := n.collectComponents()

	// Advance component flows to the current instant and find the finished.
	n.finished = n.finished[:0]
	for _, f := range n.compFlows {
		f.advance(now)
		if f.remaining <= finishEpsilon {
			n.finished = append(n.finished, f)
		}
	}
	// Retire in seq order for deterministic completion signalling.
	sortFlowsBySeq(n.finished)
	for _, f := range n.finished {
		f.remaining = 0
		n.removeFlow(f)
		f.rate = 0
		n.endFlowSpan(f, "completed")
		f.done.Fire()
	}

	// Collect the surviving component members in allocation order by
	// filtering the maintained order slice — no sorting.
	ep := n.epoch
	n.compSorted = n.compSorted[:0]
	for _, f := range n.order {
		if f.visited == ep {
			n.compSorted = append(n.compSorted, f)
		}
	}

	n.stats.ObserveRecompute(components, len(n.compSorted))
	global.ObserveRecompute(components, len(n.compSorted))

	tr := obs.TracerOf(n.engine)
	if tr != nil {
		for _, f := range n.compSorted {
			f.prevRate = f.rate
		}
	}

	n.allocateComponent()

	if tr != nil {
		// Sampled rates: one instant per flow whose allocation changed.
		for _, f := range n.compSorted {
			if f.rate != f.prevRate {
				id := tr.InstantOn(obs.FlowTrack(f.seq), obs.CatFlow, "rerate")
				tr.SetAttrInt(id, "bps", int64(f.rate))
			}
		}
		tr.Counter("flows-active", float64(len(n.order)))
	}

	// Refresh completion projections for every touched flow.
	for _, f := range n.compSorted {
		n.updateCompletion(f, now)
	}
}

// updateCompletion recomputes f's projected finish time and fixes the heap.
func (n *Network) updateCompletion(f *Flow, now time.Duration) {
	if f.rate <= 0 {
		f.finishAt = farFuture
		n.heapFix(f)
		return
	}
	sec := f.remaining / f.rate
	// Round the completion up to the next nanosecond: rounding down can
	// schedule the event at the current instant with zero progress, looping
	// forever.
	if sec >= (farFuture - now).Seconds() {
		f.finishAt = farFuture
		n.heapFix(f)
		return
	}
	d := time.Duration(math.Ceil(sec * float64(time.Second)))
	if d <= 0 {
		d = 1
	}
	f.finishAt = now + d
	n.heapFix(f)
}

func sortFlowsBySeq(flows []*Flow) {
	// Insertion sort: the finished set per recompute is almost always 0 or 1
	// flows, and this avoids the sort.Slice closure allocation.
	for i := 1; i < len(flows); i++ {
		f := flows[i]
		j := i - 1
		for j >= 0 && flows[j].seq > f.seq {
			flows[j+1] = flows[j]
			j--
		}
		flows[j+1] = f
	}
}
