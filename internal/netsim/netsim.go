// Package netsim is a flow-level network simulator over a topology link
// graph. A Flow moves a byte count across an ordered set of directed links;
// the simulator continuously assigns each flow a rate using max-min fair
// water-filling with three extensions needed by GROUTER's transfer
// scheduling:
//
//   - min-rate reservations (SLO guarantees, granted greedily in priority
//     order before fair sharing),
//   - max-rate caps (bandwidth partitioning of background traffic), and
//   - priority tiers (idle bandwidth goes to the tightest-SLO tier first).
//
// Rates are recomputed whenever the flow set or any flow's constraints
// change; flow progress is advanced lazily between recomputations, so the
// model is exact for piecewise-constant rate schedules.
package netsim

import (
	"fmt"
	"math"
	"sort"
	"time"

	"grouter/internal/sim"
	"grouter/internal/topology"
)

// finishEpsilon is the residual byte count below which a flow is complete
// (absorbs floating-point drift).
const finishEpsilon = 0.5

// Network simulates a set of capacity-annotated links shared by flows.
type Network struct {
	engine *sim.Engine
	links  map[topology.LinkID]*link
	flows  map[*Flow]struct{}
	seq    int64

	recomputePending bool
	completionGen    int64
}

type link struct {
	id       topology.LinkID
	capacity float64
}

// Flow is one in-flight transfer over a fixed link path.
type Flow struct {
	label    string
	path     []topology.LinkID
	seq      int64
	minRate  float64
	maxRate  float64 // 0 = unlimited
	priority int

	rate       float64
	remaining  float64
	lastUpdate time.Duration
	done       *sim.Signal
	canceled   bool
	net        *Network
}

// Options constrain a flow's rate allocation.
type Options struct {
	// MinRate is a reserved rate in bytes/s (best-effort guaranteed before
	// fair sharing).
	MinRate float64
	// MaxRate caps the flow's rate in bytes/s; 0 means unlimited.
	MaxRate float64
	// Priority orders tiers for idle-bandwidth distribution; higher tiers
	// fill first.
	Priority int
}

// New builds a network over the given links.
func New(e *sim.Engine, links []topology.Link) *Network {
	n := &Network{
		engine: e,
		links:  make(map[topology.LinkID]*link, len(links)),
		flows:  make(map[*Flow]struct{}),
	}
	for _, l := range links {
		n.AddLink(l)
	}
	return n
}

// AddLink registers a link. Re-adding an existing ID replaces its capacity.
func (n *Network) AddLink(l topology.Link) {
	if l.Bps <= 0 {
		panic(fmt.Sprintf("netsim: link %s has non-positive capacity", l.ID))
	}
	n.links[l.ID] = &link{id: l.ID, capacity: l.Bps}
}

// HasLink reports whether id is registered.
func (n *Network) HasLink(id topology.LinkID) bool {
	_, ok := n.links[id]
	return ok
}

// Capacity returns a link's capacity in bytes/s.
func (n *Network) Capacity(id topology.LinkID) float64 {
	l, ok := n.links[id]
	if !ok {
		return 0
	}
	return l.capacity
}

// Start launches a flow of the given byte size over path. A zero-byte flow
// completes at the current instant. Start panics on an unknown link, which
// indicates a path-construction bug.
func (n *Network) Start(label string, path []topology.LinkID, bytes float64, opt Options) *Flow {
	for _, id := range path {
		if _, ok := n.links[id]; !ok {
			panic(fmt.Sprintf("netsim: flow %q uses unknown link %s", label, id))
		}
	}
	if bytes < 0 {
		panic(fmt.Sprintf("netsim: flow %q has negative size", label))
	}
	n.seq++
	f := &Flow{
		label:      label,
		path:       append([]topology.LinkID(nil), path...),
		seq:        n.seq,
		minRate:    opt.MinRate,
		maxRate:    opt.MaxRate,
		priority:   opt.Priority,
		remaining:  bytes,
		lastUpdate: n.engine.Now(),
		done:       sim.NewSignal(n.engine),
		net:        n,
	}
	if bytes <= finishEpsilon || len(path) == 0 {
		f.remaining = 0
		n.engine.Schedule(0, f.done.Fire)
		return f
	}
	n.flows[f] = struct{}{}
	n.scheduleRecompute()
	return f
}

// Done returns the flow's completion signal.
func (f *Flow) Done() *sim.Signal { return f.done }

// Label returns the flow's label.
func (f *Flow) Label() string { return f.label }

// Rate returns the flow's current allocated rate in bytes/s.
func (f *Flow) Rate() float64 { return f.rate }

// Remaining returns the bytes left to transfer as of the current instant.
func (f *Flow) Remaining() float64 {
	if f.done.Fired() || f.canceled {
		return 0
	}
	elapsed := (f.net.engine.Now() - f.lastUpdate).Seconds()
	rem := f.remaining - f.rate*elapsed
	if rem < 0 {
		return 0
	}
	return rem
}

// SetOptions updates the flow's constraints and triggers a rate
// recomputation.
func (f *Flow) SetOptions(opt Options) {
	if f.done.Fired() || f.canceled {
		return
	}
	f.minRate = opt.MinRate
	f.maxRate = opt.MaxRate
	f.priority = opt.Priority
	f.net.scheduleRecompute()
}

// Cancel aborts the flow without firing its done signal.
func (n *Network) Cancel(f *Flow) {
	if _, ok := n.flows[f]; !ok {
		return
	}
	n.advanceAll()
	f.canceled = true
	delete(n.flows, f)
	n.scheduleRecompute()
}

// ActiveFlows returns the number of in-flight flows.
func (n *Network) ActiveFlows() int { return len(n.flows) }

// AllocatedOn returns the total rate currently allocated on a link.
func (n *Network) AllocatedOn(id topology.LinkID) float64 {
	total := 0.0
	for f := range n.flows {
		for _, lid := range f.path {
			if lid == id {
				total += f.rate
				break
			}
		}
	}
	return total
}

// Utilization snapshots every link's allocated fraction (0..1). Useful for
// debugging contention in experiments.
func (n *Network) Utilization() map[topology.LinkID]float64 {
	out := make(map[topology.LinkID]float64, len(n.links))
	for id, l := range n.links {
		out[id] = 0
		if l.capacity > 0 {
			out[id] = n.AllocatedOn(id) / l.capacity
		}
	}
	return out
}

// FreeOn returns a link's unallocated capacity.
func (n *Network) FreeOn(id topology.LinkID) float64 {
	l, ok := n.links[id]
	if !ok {
		return 0
	}
	free := l.capacity - n.AllocatedOn(id)
	if free < 0 {
		return 0
	}
	return free
}

// scheduleRecompute debounces rate recomputation to once per instant.
func (n *Network) scheduleRecompute() {
	if n.recomputePending {
		return
	}
	n.recomputePending = true
	n.engine.Schedule(0, func() {
		n.recomputePending = false
		n.recompute()
	})
}

// advanceAll credits every flow's progress up to the current instant.
func (n *Network) advanceAll() {
	now := n.engine.Now()
	for f := range n.flows {
		elapsed := (now - f.lastUpdate).Seconds()
		if elapsed > 0 {
			f.remaining -= f.rate * elapsed
			if f.remaining < 0 {
				f.remaining = 0
			}
		}
		f.lastUpdate = now
	}
}

// recompute advances progress, retires finished flows, reassigns rates, and
// schedules the next completion event.
func (n *Network) recompute() {
	n.advanceAll()

	var finished []*Flow
	for f := range n.flows {
		if f.remaining <= finishEpsilon {
			finished = append(finished, f)
		}
	}
	sort.Slice(finished, func(i, j int) bool { return finished[i].seq < finished[j].seq })
	for _, f := range finished {
		f.remaining = 0
		f.rate = 0
		delete(n.flows, f)
		f.done.Fire()
	}

	n.allocate()

	// Schedule the earliest completion. A generation counter invalidates
	// stale events from previous schedules.
	n.completionGen++
	gen := n.completionGen
	earliest := math.Inf(1)
	for f := range n.flows {
		if f.rate > 0 {
			if t := f.remaining / f.rate; t < earliest {
				earliest = t
			}
		}
	}
	if math.IsInf(earliest, 1) {
		return
	}
	// Round the completion up to the next nanosecond: rounding down can
	// schedule the event at the current instant with zero progress, looping
	// forever.
	delay := time.Duration(math.Ceil(earliest * float64(time.Second)))
	if delay <= 0 {
		delay = 1
	}
	n.engine.Schedule(delay, func() {
		if gen != n.completionGen {
			return
		}
		n.recompute()
	})
}

// allocate assigns rates: greedy min-rate reservations in (priority, seq)
// order, then per-tier max-min water-filling of the residual capacity.
func (n *Network) allocate() {
	if len(n.flows) == 0 {
		return
	}
	free := make(map[topology.LinkID]float64, len(n.links))
	for id, l := range n.links {
		free[id] = l.capacity
	}

	flows := make([]*Flow, 0, len(n.flows))
	for f := range n.flows {
		f.rate = 0
		flows = append(flows, f)
	}
	sort.Slice(flows, func(i, j int) bool {
		if flows[i].priority != flows[j].priority {
			return flows[i].priority > flows[j].priority
		}
		return flows[i].seq < flows[j].seq
	})

	// Phase 1: reservations.
	for _, f := range flows {
		want := f.minRate
		if f.maxRate > 0 && want > f.maxRate {
			want = f.maxRate
		}
		if want <= 0 {
			continue
		}
		grant := want
		for _, id := range f.path {
			if free[id] < grant {
				grant = free[id]
			}
		}
		if grant <= 0 {
			continue
		}
		f.rate = grant
		for _, id := range f.path {
			free[id] -= grant
		}
	}

	// Phase 2: per-tier water-filling, highest priority first.
	for lo := 0; lo < len(flows); {
		hi := lo
		for hi < len(flows) && flows[hi].priority == flows[lo].priority {
			hi++
		}
		waterFill(flows[lo:hi], free)
		lo = hi
	}
}

// waterFill distributes residual link capacity among tier flows by
// progressive filling: repeatedly raise all unfrozen flows by the largest
// uniform increment any link or cap allows, freezing flows that hit a cap or
// a saturated link.
func waterFill(tier []*Flow, free map[topology.LinkID]float64) {
	type state struct {
		f      *Flow
		frozen bool
	}
	states := make([]state, len(tier))
	active := 0
	for i, f := range tier {
		states[i].f = f
		if f.maxRate > 0 && f.rate >= f.maxRate {
			states[i].frozen = true
		} else {
			active++
		}
	}
	// Rates are resolved to 1 byte/s; below that, further filling is
	// floating-point noise.
	const eps = 1.0
	for active > 0 {
		// Freeze flows that can make no further progress: at their cap, or
		// crossing a saturated link.
		for i := range states {
			if states[i].frozen {
				continue
			}
			f := states[i].f
			if f.maxRate > 0 && f.rate >= f.maxRate-eps {
				states[i].frozen = true
				active--
				continue
			}
			for _, id := range f.path {
				if free[id] <= eps {
					states[i].frozen = true
					active--
					break
				}
			}
		}
		if active == 0 {
			return
		}
		linkCount := map[topology.LinkID]int{}
		for _, s := range states {
			if s.frozen {
				continue
			}
			for _, id := range s.f.path {
				linkCount[id]++
			}
		}
		// delta = largest uniform rate increment all constraints allow.
		delta := math.Inf(1)
		for id, cnt := range linkCount {
			if d := free[id] / float64(cnt); d < delta {
				delta = d
			}
		}
		for _, s := range states {
			if s.frozen {
				continue
			}
			if s.f.maxRate > 0 {
				if d := s.f.maxRate - s.f.rate; d < delta {
					delta = d
				}
			}
		}
		if math.IsInf(delta, 1) || delta <= eps {
			return
		}
		for i := range states {
			if states[i].frozen {
				continue
			}
			states[i].f.rate += delta
			for _, id := range states[i].f.path {
				free[id] -= delta
			}
		}
	}
}
