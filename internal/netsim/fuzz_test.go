package netsim

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"grouter/internal/sim"
	"grouter/internal/topology"
)

// FuzzFaultSchedule interleaves a seeded random schedule of fault operations
// (FailLink / RestoreLink / SetLinkBps) with flow churn (Start / Cancel /
// SetOptions) over randomized multi-component topologies, and checks the
// fault-tolerance invariants:
//
//   - byte conservation: every flow ends with Transferred + undelivered
//     bytes equal to the payload it was started with, whether it completed,
//     failed mid-flight, or was dead on arrival;
//   - allocation sanity: no negative rate, and the maintained per-link
//     totals pass checkIntegrity after every event;
//   - allocator agreement: at settled instants the incremental allocator's
//     rates match the from-scratch reference (down links carry no flows, so
//     the reference needs no fault awareness);
//   - liveness: once every link is restored, all surviving flows drain.
//
// `go test` runs the seed corpus below deterministically; `-fuzz` explores.
func FuzzFaultSchedule(f *testing.F) {
	for _, seed := range []int64{1, 7, 42, 1234, 987654321, -17} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		e := sim.NewEngine()
		defer e.Close()
		links := diffTopology(rng)
		net := New(e, links)

		type started struct {
			flow  *Flow
			bytes float64
		}
		var all []*started
		var live []*Flow
		downSet := map[topology.LinkID]bool{}
		randLink := func() topology.LinkID { return links[rng.Intn(len(links))].ID }

		nEvents := 40 + rng.Intn(40)
		var horizon time.Duration
		for i := 0; i < nEvents; i++ {
			at := time.Duration(rng.Intn(5000)) * time.Millisecond
			if at > horizon {
				horizon = at
			}
			op := rng.Intn(20)
			e.Schedule(at, func() {
				switch {
				case op < 8 || len(live) == 0:
					// Paths may legitimately cross down links: such flows must
					// fail at this instant with zero bytes moved.
					fl := net.Start("fz", diffPath(rng, links),
						float64(100+rng.Intn(300000)), diffOptions(rng))
					all = append(all, &started{fl, fl.total})
					live = append(live, fl)
				case op < 10:
					net.Cancel(live[rng.Intn(len(live))])
				case op < 12:
					live[rng.Intn(len(live))].SetOptions(diffOptions(rng))
				case op < 15:
					id := randLink()
					net.FailLink(id)
					downSet[id] = true
				case op < 18:
					id := randLink()
					net.RestoreLink(id)
					delete(downSet, id)
				default:
					net.SetLinkBps(randLink(), float64(20+rng.Intn(2000)))
				}
			})
			e.Schedule(at+time.Nanosecond, func() {
				if err := net.checkIntegrity(); err != nil {
					t.Errorf("seed %d event %d: %v", seed, i, err)
				}
				if !net.ratesSettled() {
					return
				}
				ref := net.allocateReference()
				for _, fl := range net.order {
					if fl.rate < 0 {
						t.Errorf("seed %d: flow seq %d has negative rate %f", seed, fl.seq, fl.rate)
					}
					if d := fl.rate - ref[fl]; d > 1.0 || d < -1.0 {
						t.Errorf("seed %d: flow %q(seq %d) incremental rate %f, reference %f",
							seed, fl.label, fl.seq, fl.rate, ref[fl])
					}
				}
			})
		}
		// Heal the fabric after the last event so surviving flows can drain
		// and Run(0) terminates.
		e.Schedule(horizon+time.Millisecond, func() {
			for _, l := range links {
				net.RestoreLink(l.ID)
			}
		})
		e.Run(0)

		if net.ActiveFlows() != 0 {
			t.Errorf("seed %d: %d flows still active after drain", seed, net.ActiveFlows())
		}
		for i, s := range all {
			fl := s.flow
			if fl.canceled {
				// Cancellation reports Remaining()==0 by contract; progress is
				// frozen in Transferred.
				if tr := fl.Transferred(); tr < 0 || tr > s.bytes+1e-6 {
					t.Errorf("seed %d: canceled flow %d transferred %f of %f", seed, i, tr, s.bytes)
				}
				continue
			}
			if !fl.Done().Fired() {
				t.Errorf("seed %d: flow %d never terminated", seed, i)
				continue
			}
			got := fl.Transferred() + fl.Remaining()
			// Completion forgives up to finishEpsilon undelivered bytes.
			if math.Abs(got-s.bytes) > finishEpsilon+1e-6 {
				t.Errorf("seed %d: flow %d bytes not conserved: transferred+remaining = %f, want %f (failed=%v)",
					seed, i, got, s.bytes, fl.Failed())
			}
			if fl.Transferred() < 0 || fl.Remaining() < 0 {
				t.Errorf("seed %d: flow %d negative byte count (t=%f r=%f)",
					seed, i, fl.Transferred(), fl.Remaining())
			}
		}
	})
}
