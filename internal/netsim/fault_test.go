package netsim

import (
	"math"
	"testing"
	"time"

	"grouter/internal/sim"
	"grouter/internal/topology"
)

func TestFailLinkKillsMidFlightFlow(t *testing.T) {
	e := sim.NewEngine()
	n := testNet(e, map[topology.LinkID]float64{"l1": 100})
	var f *Flow
	var at time.Duration
	e.Go("xfer", func(p *sim.Proc) {
		f = n.Start("doomed", []topology.LinkID{"l1"}, 1000, Options{})
		f.Done().Wait(p)
		at = p.Now()
	})
	e.Go("fault", func(p *sim.Proc) {
		p.Sleep(4 * time.Second)
		n.FailLink("l1")
	})
	run(t, e)
	if !f.Failed() {
		t.Fatal("flow on failed link not marked failed")
	}
	approx(t, at, 4*time.Second, 1e-6, "done fires at the failure instant")
	// Progress up to the failure is frozen, not lost: 4s at 100 B/s.
	if got := f.Transferred(); math.Abs(got-400) > 1 {
		t.Errorf("Transferred = %f, want 400", got)
	}
	if got := f.Remaining(); math.Abs(got-600) > 1 {
		t.Errorf("Remaining = %f, want 600", got)
	}
	if got := f.Transferred() + f.Remaining(); math.Abs(got-1000) > 1e-6 {
		t.Errorf("bytes not conserved: transferred+remaining = %f", got)
	}
	if n.ActiveFlows() != 0 {
		t.Errorf("failed flow still active: %d", n.ActiveFlows())
	}
}

func TestFailLinkReratesSurvivors(t *testing.T) {
	e := sim.NewEngine()
	n := testNet(e, map[topology.LinkID]float64{"a": 1000, "b": 100})
	var victim, survivor *Flow
	var dSurvivor time.Duration
	e.Go("victim", func(p *sim.Proc) {
		victim = n.Start("victim", []topology.LinkID{"a", "b"}, 1000, Options{})
		victim.Done().Wait(p)
	})
	e.Go("survivor", func(p *sim.Proc) {
		survivor = n.Start("survivor", []topology.LinkID{"b"}, 1000, Options{})
		survivor.Done().Wait(p)
		dSurvivor = p.Now()
	})
	e.Go("fault", func(p *sim.Proc) {
		p.Sleep(4 * time.Second)
		n.FailLink("a")
	})
	run(t, e)
	if !victim.Failed() {
		t.Error("flow crossing the failed link not killed")
	}
	if survivor.Failed() {
		t.Error("flow on surviving link was killed")
	}
	// Both share b 50/50 for 4s (200 B each); the survivor then takes the
	// whole 100 B/s for its remaining 800 B → 4 + 8 = 12s.
	approx(t, dSurvivor, 12*time.Second, 1e-6, "survivor inherits freed bandwidth")
}

func TestStartOnDownPathFailsImmediately(t *testing.T) {
	e := sim.NewEngine()
	n := testNet(e, map[topology.LinkID]float64{"up": 100, "down": 100})
	var f *Flow
	e.Go("xfer", func(p *sim.Proc) {
		n.FailLink("down")
		f = n.Start("dead-on-arrival", []topology.LinkID{"up", "down"}, 500, Options{})
		f.Done().Wait(p)
		if p.Now() != 0 {
			t.Errorf("down-path start failed at %v, want the same instant", p.Now())
		}
	})
	run(t, e)
	if !f.Failed() {
		t.Fatal("start on a down path did not fail the flow")
	}
	if got := f.Remaining(); got != 500 {
		t.Errorf("Remaining = %f, want all 500 bytes undelivered", got)
	}
	if got := f.Transferred(); got != 0 {
		t.Errorf("Transferred = %f, want 0", got)
	}
}

func TestRestoreLinkAllowsNewFlows(t *testing.T) {
	e := sim.NewEngine()
	n := testNet(e, map[topology.LinkID]float64{"l1": 100})
	var d time.Duration
	e.Go("xfer", func(p *sim.Proc) {
		n.FailLink("l1")
		if n.LinkUp("l1") {
			t.Error("LinkUp true for a failed link")
		}
		if n.PathUp([]topology.LinkID{"l1"}) {
			t.Error("PathUp true for a path crossing a failed link")
		}
		p.Sleep(time.Second)
		n.RestoreLink("l1")
		if !n.LinkUp("l1") {
			t.Error("LinkUp false after restore")
		}
		f := n.Start("retry", []topology.LinkID{"l1"}, 1000, Options{})
		f.Done().Wait(p)
		d = p.Now()
	})
	run(t, e)
	// Started at t=1s, full 100 B/s after restore → finishes at 11s.
	approx(t, d, 11*time.Second, 1e-6, "flow after restore runs at full rate")
}

func TestSetLinkBpsReratesMidFlight(t *testing.T) {
	e := sim.NewEngine()
	n := testNet(e, map[topology.LinkID]float64{"l1": 100})
	var d time.Duration
	e.Go("xfer", func(p *sim.Proc) {
		f := n.Start("degraded", []topology.LinkID{"l1"}, 1000, Options{})
		f.Done().Wait(p)
		d = p.Now()
	})
	e.Go("fault", func(p *sim.Proc) {
		p.Sleep(5 * time.Second)
		n.SetLinkBps("l1", 50)
		if got := n.Capacity("l1"); got != 50 {
			t.Errorf("Capacity after degrade = %f, want 50", got)
		}
	})
	run(t, e)
	// 500 B at 100 B/s, then 500 B at 50 B/s → 5 + 10 = 15s.
	approx(t, d, 15*time.Second, 1e-6, "degraded link slows the flow")
}

func TestSetLinkBpsRestoreSpeedsUp(t *testing.T) {
	e := sim.NewEngine()
	n := testNet(e, map[topology.LinkID]float64{"l1": 50})
	var d time.Duration
	e.Go("xfer", func(p *sim.Proc) {
		f := n.Start("boosted", []topology.LinkID{"l1"}, 1000, Options{})
		f.Done().Wait(p)
		d = p.Now()
	})
	e.Go("fault", func(p *sim.Proc) {
		p.Sleep(10 * time.Second)
		n.SetLinkBps("l1", 100)
	})
	run(t, e)
	// 500 B at 50 B/s, then 500 B at 100 B/s → 10 + 5 = 15s.
	approx(t, d, 15*time.Second, 1e-6, "restored capacity speeds the flow up")
}

func TestPathUpEdgeCases(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	n := testNet(e, map[topology.LinkID]float64{"a": 100, "b": 100})
	if n.PathUp(nil) {
		t.Error("PathUp(nil) = true, want false")
	}
	if !n.PathUp([]topology.LinkID{"a", "b"}) {
		t.Error("PathUp for healthy path = false")
	}
	n.FailLink("b")
	if n.PathUp([]topology.LinkID{"a", "b"}) {
		t.Error("PathUp true with one hop down")
	}
	if !n.PathUp([]topology.LinkID{"a"}) {
		t.Error("PathUp false for a path avoiding the down link")
	}
}

func TestFailLinkIdempotentRestorePairs(t *testing.T) {
	e := sim.NewEngine()
	n := testNet(e, map[topology.LinkID]float64{"l1": 100})
	var d time.Duration
	e.Go("xfer", func(p *sim.Proc) {
		n.FailLink("l1")
		n.FailLink("l1") // double fail is a no-op
		n.RestoreLink("l1")
		n.RestoreLink("l1") // double restore is a no-op
		f := n.Start("after", []topology.LinkID{"l1"}, 100, Options{})
		f.Done().Wait(p)
		d = p.Now()
	})
	run(t, e)
	approx(t, d, time.Second, 1e-6, "link healthy after fail/restore churn")
}

func TestSetLinkBpsValidation(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	n := testNet(e, map[topology.LinkID]float64{"l1": 100})
	for name, fn := range map[string]func(){
		"unknown link": func() { n.SetLinkBps("nope", 10) },
		"zero bps":     func() { n.SetLinkBps("l1", 0) },
		"negative bps": func() { n.SetLinkBps("l1", -5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestFailureByteConservationUnderChurn kills links under a randomized-looking
// but fixed schedule and checks every flow ends with transferred + remaining
// equal to its payload, failed or not.
func TestFailureByteConservationUnderChurn(t *testing.T) {
	e := sim.NewEngine()
	caps := map[topology.LinkID]float64{"a": 100, "b": 50, "c": 200}
	n := testNet(e, caps)
	paths := [][]topology.LinkID{
		{"a"}, {"b"}, {"c"}, {"a", "b"}, {"b", "c"}, {"a", "b", "c"},
	}
	var flows []*Flow
	var totals []float64
	for i := 0; i < 24; i++ {
		i := i
		e.GoAfter(time.Duration(i*137)*time.Millisecond, "churn", func(p *sim.Proc) {
			total := float64(50 + i*13)
			f := n.Start("f", paths[i%len(paths)], total, Options{})
			flows = append(flows, f)
			totals = append(totals, total)
			f.Done().Wait(p)
		})
	}
	faults := []struct {
		at   time.Duration
		down bool
		id   topology.LinkID
	}{
		{500 * time.Millisecond, true, "b"},
		{900 * time.Millisecond, false, "b"},
		{1300 * time.Millisecond, true, "a"},
		{2100 * time.Millisecond, false, "a"},
		{2500 * time.Millisecond, true, "c"},
		{3300 * time.Millisecond, false, "c"},
	}
	for _, fa := range faults {
		fa := fa
		e.GoAfter(fa.at, "fault", func(p *sim.Proc) {
			if fa.down {
				n.FailLink(fa.id)
			} else {
				n.RestoreLink(fa.id)
			}
		})
	}
	run(t, e)
	if len(flows) != 24 {
		t.Fatalf("only %d flows started", len(flows))
	}
	anyFailed := false
	for i, f := range flows {
		if f.Failed() {
			anyFailed = true
		}
		got := f.Transferred() + f.Remaining()
		if math.Abs(got-totals[i]) > 1e-6 {
			t.Errorf("flow %d: transferred+remaining = %f, want %f (failed=%v)",
				i, got, totals[i], f.Failed())
		}
		if f.Transferred() < 0 || f.Remaining() < 0 {
			t.Errorf("flow %d: negative byte count (t=%f r=%f)", i, f.Transferred(), f.Remaining())
		}
	}
	if !anyFailed {
		t.Error("fault schedule killed no flows; schedule no longer exercises failures")
	}
	if n.ActiveFlows() != 0 {
		t.Errorf("flows left active: %d", n.ActiveFlows())
	}
}
