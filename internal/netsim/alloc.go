package netsim

import (
	"math"
	"sort"
)

// waterFillEps is the rate resolution in bytes/s: below one byte per second,
// further progressive filling is floating-point noise.
const waterFillEps = 1.0

// allocateComponent reassigns rates for the flows collected by the current
// recompute pass (n.compSorted, in allocation order) over the component's
// links (n.compLinks). It is the incremental counterpart of
// allocateReference: because every flow crossing a component link is inside
// the component, the component's links can be refilled from full capacity and
// the result is exactly what a global recompute would produce — flows outside
// the component see none of these links and keep their rates.
//
// The steady path allocates nothing: link scratch (free, cnt) lives in the
// dense link table, per-flow scratch (frozen) on the Flow, and the only
// growable buffer (wfLinks) is reused across recomputes.
func (n *Network) allocateComponent() {
	flows := n.compSorted
	for _, li := range n.compLinks {
		l := &n.links[li]
		l.free = l.capacity
		l.alloc = 0
	}
	for _, f := range flows {
		f.rate = 0
	}

	// Phase 1: min-rate reservations, granted greedily in allocation order.
	for _, f := range flows {
		want := f.minRate
		if f.maxRate > 0 && want > f.maxRate {
			want = f.maxRate
		}
		if want <= 0 {
			continue
		}
		grant := want
		for _, li := range f.pathIdx {
			if free := n.links[li].free; free < grant {
				grant = free
			}
		}
		if grant <= 0 {
			continue
		}
		f.rate = grant
		for _, li := range f.pathIdx {
			n.links[li].free -= grant
		}
	}

	// Phase 2: per-tier water-filling of the residual, highest priority
	// first. flows is ordered (priority desc, seq asc), so tiers are
	// contiguous runs.
	for lo := 0; lo < len(flows); {
		hi := lo
		for hi < len(flows) && flows[hi].priority == flows[lo].priority {
			hi++
		}
		n.waterFill(flows[lo:hi])
		lo = hi
	}

	// Rebuild the maintained per-link totals from the final rates.
	for _, f := range flows {
		for _, li := range f.pathIdx {
			n.links[li].alloc += f.rate
		}
	}
}

// waterFill distributes residual link capacity among one priority tier by
// progressive filling: repeatedly raise all unfrozen flows by the largest
// uniform increment any link or cap allows, freezing flows that hit their
// cap or a saturated link. Link scratch counters are stamped rather than
// cleared, so iterations allocate nothing.
func (n *Network) waterFill(tier []*Flow) {
	active := 0
	for _, f := range tier {
		f.frozen = f.maxRate > 0 && f.rate >= f.maxRate
		if !f.frozen {
			active++
		}
	}
	iters := int64(0)
	for active > 0 {
		iters++
		// Freeze flows that can make no further progress: at their cap, or
		// crossing a saturated link.
		for _, f := range tier {
			if f.frozen {
				continue
			}
			if f.maxRate > 0 && f.rate >= f.maxRate-waterFillEps {
				f.frozen = true
				active--
				continue
			}
			for _, li := range f.pathIdx {
				if n.links[li].free <= waterFillEps {
					f.frozen = true
					active--
					break
				}
			}
		}
		if active == 0 {
			break
		}
		// Count unfrozen flows per link. The stamp distinguishes this
		// iteration's counts from stale ones without clearing.
		n.stamp++
		st := n.stamp
		n.wfLinks = n.wfLinks[:0]
		for _, f := range tier {
			if f.frozen {
				continue
			}
			for _, li := range f.pathIdx {
				l := &n.links[li]
				if l.cntStamp != st {
					l.cntStamp = st
					l.cnt = 0
					n.wfLinks = append(n.wfLinks, int(li))
				}
				l.cnt++
			}
		}
		// delta = largest uniform rate increment all constraints allow.
		delta := math.Inf(1)
		for _, li := range n.wfLinks {
			l := &n.links[li]
			if d := l.free / float64(l.cnt); d < delta {
				delta = d
			}
		}
		for _, f := range tier {
			if f.frozen || f.maxRate <= 0 {
				continue
			}
			if d := f.maxRate - f.rate; d < delta {
				delta = d
			}
		}
		// Apply even a sub-eps delta: it saturates the binding constraint
		// (the argmin link drops to ~0 free, a binding cap is reached), so
		// the next freeze pass retires at least one flow and the loop
		// terminates. Stopping the whole tier on a tiny delta instead would
		// starve flows whose own links still have capacity (they share no
		// link with the binding one and deserve their fill).
		if math.IsInf(delta, 1) || delta <= 0 {
			break
		}
		for _, f := range tier {
			if f.frozen {
				continue
			}
			f.rate += delta
			for _, li := range f.pathIdx {
				n.links[li].free -= delta
			}
		}
	}
	n.stats.WaterFillIters.Add(iters)
	global.WaterFillIters.Add(iters)
}

// allocateReference recomputes every active flow's rate from scratch using
// the pre-incremental global allocator (fresh maps, full sort, all flows,
// all links) and returns the result without touching simulator state. It is
// retained as a differential oracle: property tests assert the incremental
// component-scoped allocator produces identical rates. Keep its semantics
// frozen — it is the specification the fast path is tested against.
func (n *Network) allocateReference() map[*Flow]float64 {
	free := make(map[int]float64, len(n.links))
	for i := range n.links {
		free[i] = n.links[i].capacity
	}
	flows := make([]*Flow, len(n.order))
	copy(flows, n.order)
	sort.Slice(flows, func(i, j int) bool {
		if flows[i].priority != flows[j].priority {
			return flows[i].priority > flows[j].priority
		}
		return flows[i].seq < flows[j].seq
	})
	rate := make(map[*Flow]float64, len(flows))
	for _, f := range flows {
		rate[f] = 0
	}

	// Phase 1: reservations.
	for _, f := range flows {
		want := f.minRate
		if f.maxRate > 0 && want > f.maxRate {
			want = f.maxRate
		}
		if want <= 0 {
			continue
		}
		grant := want
		for _, li := range f.pathIdx {
			if free[int(li)] < grant {
				grant = free[int(li)]
			}
		}
		if grant <= 0 {
			continue
		}
		rate[f] = grant
		for _, li := range f.pathIdx {
			free[int(li)] -= grant
		}
	}

	// Phase 2: per-tier water-filling, highest priority first.
	for lo := 0; lo < len(flows); {
		hi := lo
		for hi < len(flows) && flows[hi].priority == flows[lo].priority {
			hi++
		}
		referenceWaterFill(flows[lo:hi], free, rate)
		lo = hi
	}
	return rate
}

// referenceWaterFill is the oracle's tier water-fill, a transliteration of
// the original map-based implementation.
func referenceWaterFill(tier []*Flow, free map[int]float64, rate map[*Flow]float64) {
	frozen := make(map[*Flow]bool, len(tier))
	active := 0
	for _, f := range tier {
		if f.maxRate > 0 && rate[f] >= f.maxRate {
			frozen[f] = true
		} else {
			active++
		}
	}
	for active > 0 {
		for _, f := range tier {
			if frozen[f] {
				continue
			}
			if f.maxRate > 0 && rate[f] >= f.maxRate-waterFillEps {
				frozen[f] = true
				active--
				continue
			}
			for _, li := range f.pathIdx {
				if free[int(li)] <= waterFillEps {
					frozen[f] = true
					active--
					break
				}
			}
		}
		if active == 0 {
			return
		}
		linkCount := map[int]int{}
		for _, f := range tier {
			if frozen[f] {
				continue
			}
			for _, li := range f.pathIdx {
				linkCount[int(li)]++
			}
		}
		delta := math.Inf(1)
		for li, cnt := range linkCount {
			if d := free[li] / float64(cnt); d < delta {
				delta = d
			}
		}
		for _, f := range tier {
			if frozen[f] {
				continue
			}
			if f.maxRate > 0 {
				if d := f.maxRate - rate[f]; d < delta {
					delta = d
				}
			}
		}
		// Mirror waterFill: apply sub-eps deltas so only the binding link's
		// flows freeze; a tier-wide stop would starve flows in unrelated
		// components of the tier (the incremental allocator fills those
		// components independently, and this oracle must agree with it).
		if math.IsInf(delta, 1) || delta <= 0 {
			return
		}
		for _, f := range tier {
			if frozen[f] {
				continue
			}
			rate[f] += delta
			for _, li := range f.pathIdx {
				free[int(li)] -= delta
			}
		}
	}
}
