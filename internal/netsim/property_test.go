package netsim

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"grouter/internal/sim"
	"grouter/internal/topology"
)

// TestPropertyConservationAndCompletion drives randomized flow sets over a
// random small link graph and checks the two core invariants of the flow
// simulator: (1) at every observation instant no link carries more than its
// capacity, and (2) every flow eventually completes and its completion time
// is at least bytes / bottleneck-capacity.
func TestPropertyConservationAndCompletion(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := sim.NewEngine()
		defer e.Close()

		links := make([]topology.Link, 0, 4)
		caps := map[topology.LinkID]float64{}
		for i := 0; i < 2+rng.Intn(3); i++ {
			id := topology.LinkID(string(rune('a' + i)))
			c := float64(10 + rng.Intn(1000))
			links = append(links, topology.Link{ID: id, Bps: c})
			caps[id] = c
		}
		net := New(e, links)

		type flowInfo struct {
			flow   *Flow
			bytes  float64
			minCap float64
			start  time.Duration
			end    time.Duration
		}
		var flows []*flowInfo
		nFlows := 1 + rng.Intn(6)
		for i := 0; i < nFlows; i++ {
			// Random subpath of the links.
			var path []topology.LinkID
			minCap := math.Inf(1)
			for _, l := range links {
				if rng.Intn(2) == 0 || len(path) == 0 {
					path = append(path, l.ID)
					if caps[l.ID] < minCap {
						minCap = caps[l.ID]
					}
				}
			}
			bytes := float64(1 + rng.Intn(100000))
			fi := &flowInfo{bytes: bytes, minCap: minCap}
			delay := time.Duration(rng.Intn(1000)) * time.Millisecond
			e.GoAfter(delay, "flow", func(p *sim.Proc) {
				fi.start = p.Now()
				fi.flow = net.Start("f", path, bytes, Options{})
				fi.flow.Done().Wait(p)
				fi.end = p.Now()
			})
			flows = append(flows, fi)
		}
		// Observer checks conservation periodically.
		ok := true
		e.GoAfter(0, "observer", func(p *sim.Proc) {
			for i := 0; i < 50; i++ {
				p.Sleep(100 * time.Millisecond)
				for id, c := range caps {
					if net.AllocatedOn(id) > c*1.001 {
						ok = false
					}
				}
			}
		})
		e.Run(0)
		if !ok {
			return false
		}
		for _, fi := range flows {
			if fi.flow == nil || !fi.flow.Done().Fired() {
				return false
			}
			minTime := fi.bytes / fi.minCap
			if (fi.end - fi.start).Seconds() < minTime*0.999 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// diffTopology builds a randomized link set exercising the allocator's
// component structure: several disjoint islands of links (so incremental
// recomputes rarely span the whole graph) plus a few shared "backbone" links
// that random paths can cross to merge islands into one component.
func diffTopology(rng *rand.Rand) []topology.Link {
	var links []topology.Link
	islands := 2 + rng.Intn(3)
	for i := 0; i < islands; i++ {
		for j := 0; j < 2+rng.Intn(3); j++ {
			links = append(links, topology.Link{
				ID:  topology.LinkID(fmt.Sprintf("i%d-l%d", i, j)),
				Bps: float64(50 + rng.Intn(2000)),
			})
		}
	}
	for b := 0; b < rng.Intn(3); b++ {
		links = append(links, topology.Link{
			ID:  topology.LinkID(fmt.Sprintf("bb%d", b)),
			Bps: float64(100 + rng.Intn(1000)),
		})
	}
	return links
}

// diffPath picks a random path: usually within one island (keeping
// components disjoint), sometimes crossing a backbone link (merging them).
func diffPath(rng *rand.Rand, links []topology.Link) []topology.LinkID {
	var path []topology.LinkID
	seen := map[topology.LinkID]bool{}
	n := 1 + rng.Intn(3)
	for len(path) < n {
		id := links[rng.Intn(len(links))].ID
		if !seen[id] {
			seen[id] = true
			path = append(path, id)
		}
	}
	return path
}

func diffOptions(rng *rand.Rand) Options {
	var opt Options
	switch rng.Intn(4) {
	case 0:
		opt.MaxRate = float64(10 + rng.Intn(200))
	case 1:
		opt.MinRate = float64(5 + rng.Intn(100))
	case 2:
		opt.MinRate = float64(5 + rng.Intn(50))
		opt.MaxRate = opt.MinRate + float64(rng.Intn(100))
	}
	opt.Priority = rng.Intn(3)
	return opt
}

// TestDifferentialIncrementalVsReference interleaves randomized
// Start/Cancel/SetOptions events over randomized multi-component topologies
// and, at every settled instant, asserts that the incremental
// component-scoped allocator left every active flow at exactly the rate the
// retained from-scratch reference allocator computes (within 1 byte/s, the
// water-fill resolution).
func TestDifferentialIncrementalVsReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := sim.NewEngine()
		defer e.Close()
		links := diffTopology(rng)
		net := New(e, links)

		var live []*Flow
		failed := false
		compared := 0
		nEvents := 10 + rng.Intn(40)
		for i := 0; i < nEvents; i++ {
			at := time.Duration(rng.Intn(5000)) * time.Millisecond
			op := rng.Intn(10)
			e.Schedule(at, func() {
				switch {
				case op < 6 || len(live) == 0:
					f := net.Start("df", diffPath(rng, links),
						float64(100+rng.Intn(500000)), diffOptions(rng))
					live = append(live, f)
				case op < 8:
					live[rng.Intn(len(live))].SetOptions(diffOptions(rng))
				default:
					net.Cancel(live[rng.Intn(len(live))])
				}
			})
			// Compare incremental vs reference 1ns after the mutation
			// instant: the debounced recompute at `at` has fired by then
			// (skip the rare instants where another event is pending).
			e.Schedule(at+time.Nanosecond, func() {
				if !net.ratesSettled() {
					return
				}
				compared++
				ref := net.allocateReference()
				for _, f := range net.order {
					if d := f.rate - ref[f]; d > 1.0 || d < -1.0 {
						t.Errorf("seed %d: flow %q(seq %d) incremental rate %f, reference %f",
							seed, f.label, f.seq, f.rate, ref[f])
						failed = true
					}
				}
				if err := net.checkIntegrity(); err != nil {
					t.Errorf("seed %d: %v", seed, err)
					failed = true
				}
			})
		}
		e.Run(0)
		if compared == 0 {
			t.Errorf("seed %d: no settled instant was ever compared", seed)
			failed = true
		}
		return !failed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestFuzzInterleavedMutations hammers one network with a long randomized
// interleaving of Start/Cancel/SetOptions and asserts the maintained-index
// invariants (per-link allocated <= capacity, alloc totals match member
// rates, back-pointers consistent, order sorted) after every event.
func TestFuzzInterleavedMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	e := sim.NewEngine()
	defer e.Close()
	links := diffTopology(rng)
	net := New(e, links)

	var live []*Flow
	for i := 0; i < 400; i++ {
		at := time.Duration(i) * 3 * time.Millisecond
		op := rng.Intn(10)
		e.Schedule(at, func() {
			switch {
			case op < 5 || len(live) == 0:
				live = append(live, net.Start("fz", diffPath(rng, links),
					float64(50+rng.Intn(200000)), diffOptions(rng)))
			case op < 8:
				live[rng.Intn(len(live))].SetOptions(diffOptions(rng))
			default:
				net.Cancel(live[rng.Intn(len(live))])
			}
		})
		// Integrity must hold both mid-mutation (same instant, before the
		// debounced recompute) and once settled 1ns later.
		e.Schedule(at, func() {
			if err := net.checkIntegrity(); err != nil {
				t.Fatalf("event %d (unsettled): %v", i, err)
			}
		})
		e.Schedule(at+time.Nanosecond, func() {
			if err := net.checkIntegrity(); err != nil {
				t.Fatalf("event %d (settled): %v", i, err)
			}
		})
	}
	e.Run(0)
	if err := net.checkIntegrity(); err != nil {
		t.Fatal(err)
	}
	if net.ActiveFlows() != 0 {
		t.Errorf("flows left after drain: %d", net.ActiveFlows())
	}
}

// TestStartBurstSchedulesOneEvent is the event-churn regression test: a
// batch of N simultaneous Start calls must coalesce into a single scheduled
// allocator event, not one Schedule(0) closure per mutation.
func TestStartBurstSchedulesOneEvent(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	net := New(e, []topology.Link{{ID: "l1", Bps: 1000}})
	net.NetStats().Reset()
	const burst = 100
	for i := 0; i < burst; i++ {
		net.Start("b", []topology.LinkID{"l1"}, 1000, Options{})
	}
	if got := net.NetStats().EventsScheduled.Load(); got != 1 {
		t.Errorf("burst of %d Starts scheduled %d events, want 1", burst, got)
	}
	e.Run(0)
	// The whole simulation (burst recompute + identical completions) should
	// stay within a handful of events — far below one per mutation.
	if got := net.NetStats().EventsScheduled.Load(); got > 10 {
		t.Errorf("full run scheduled %d events, want <= 10", got)
	}
	if net.ActiveFlows() != 0 {
		t.Errorf("flows left: %d", net.ActiveFlows())
	}
}

// TestStaggeredBurstCoalescesWithCompletionTimer verifies the second half of
// the coalescing contract: a mutation arriving while a completion timer is
// already armed for a later instant reuses the allocator's single event slot
// (rescheduling it earlier) rather than stacking an independent timer per
// mutation.
func TestStaggeredBurstCoalescesWithCompletionTimer(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	net := New(e, []topology.Link{{ID: "l1", Bps: 100}})
	net.Start("long", []topology.LinkID{"l1"}, 1e6, Options{})
	const arrivals = 50
	for i := 0; i < arrivals; i++ {
		e.Schedule(time.Duration(i+1)*time.Millisecond, func() {
			net.Start("s", []topology.LinkID{"l1"}, 10, Options{})
		})
	}
	e.Run(0)
	// Each arrival instant needs at most one reschedule, plus one event per
	// completion wave: O(arrivals), with a small constant.
	if got := net.NetStats().EventsScheduled.Load(); got > 3*arrivals {
		t.Errorf("staggered arrivals scheduled %d events, want <= %d", got, 3*arrivals)
	}
	if net.ActiveFlows() != 0 {
		t.Errorf("flows left: %d", net.ActiveFlows())
	}
}
