package netsim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"grouter/internal/sim"
	"grouter/internal/topology"
)

// TestPropertyConservationAndCompletion drives randomized flow sets over a
// random small link graph and checks the two core invariants of the flow
// simulator: (1) at every observation instant no link carries more than its
// capacity, and (2) every flow eventually completes and its completion time
// is at least bytes / bottleneck-capacity.
func TestPropertyConservationAndCompletion(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := sim.NewEngine()
		defer e.Close()

		links := make([]topology.Link, 0, 4)
		caps := map[topology.LinkID]float64{}
		for i := 0; i < 2+rng.Intn(3); i++ {
			id := topology.LinkID(string(rune('a' + i)))
			c := float64(10 + rng.Intn(1000))
			links = append(links, topology.Link{ID: id, Bps: c})
			caps[id] = c
		}
		net := New(e, links)

		type flowInfo struct {
			flow   *Flow
			bytes  float64
			minCap float64
			start  time.Duration
			end    time.Duration
		}
		var flows []*flowInfo
		nFlows := 1 + rng.Intn(6)
		for i := 0; i < nFlows; i++ {
			// Random subpath of the links.
			var path []topology.LinkID
			minCap := math.Inf(1)
			for _, l := range links {
				if rng.Intn(2) == 0 || len(path) == 0 {
					path = append(path, l.ID)
					if caps[l.ID] < minCap {
						minCap = caps[l.ID]
					}
				}
			}
			bytes := float64(1 + rng.Intn(100000))
			fi := &flowInfo{bytes: bytes, minCap: minCap}
			delay := time.Duration(rng.Intn(1000)) * time.Millisecond
			e.GoAfter(delay, "flow", func(p *sim.Proc) {
				fi.start = p.Now()
				fi.flow = net.Start("f", path, bytes, Options{})
				fi.flow.Done().Wait(p)
				fi.end = p.Now()
			})
			flows = append(flows, fi)
		}
		// Observer checks conservation periodically.
		ok := true
		e.GoAfter(0, "observer", func(p *sim.Proc) {
			for i := 0; i < 50; i++ {
				p.Sleep(100 * time.Millisecond)
				for id, c := range caps {
					if net.AllocatedOn(id) > c*1.001 {
						ok = false
					}
				}
			}
		})
		e.Run(0)
		if !ok {
			return false
		}
		for _, fi := range flows {
			if fi.flow == nil || !fi.flow.Done().Fired() {
				return false
			}
			minTime := fi.bytes / fi.minCap
			if (fi.end - fi.start).Seconds() < minTime*0.999 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
