package netsim

import (
	"fmt"

	"grouter/internal/topology"
)

// linkState is one registered link in the dense link table. Scratch fields
// are epoch/stamp-guarded so recomputes never clear them between passes.
type linkState struct {
	id       topology.LinkID
	capacity float64
	// down marks a failed link: no active flow ever crosses a down link
	// (FailLink kills the crossing flows, Start fails new ones immediately),
	// so the allocator never needs to special-case it.
	down bool
	// alloc is the maintained total rate of active flows crossing the link;
	// it makes AllocatedOn/FreeOn O(1) and Utilization O(links).
	alloc float64
	// flows lists the active flows crossing the link, with each entry's
	// position mirrored in Flow.linkPos for O(1) swap-removal.
	flows []flowSlot

	visited  int64   // == Network.epoch when in the current component
	free     float64 // water-fill scratch: residual capacity
	cnt      int32   // water-fill scratch: unfrozen flows this iteration
	cntStamp int64   // == Network.stamp when cnt is current
}

// flowSlot is one link's reference to a crossing flow; slot is the index of
// this link within the flow's path, so the back-pointer in Flow.linkPos can
// be fixed when a swap-removal moves the entry.
type flowSlot struct {
	f    *Flow
	slot int32
}

// insertFlow registers f in the order slice and every path link's flow list.
func (n *Network) insertFlow(f *Flow) {
	f.active = true
	n.insertIntoOrder(f)
	for i, li := range f.pathIdx {
		l := &n.links[li]
		f.linkPos[i] = int32(len(l.flows))
		l.flows = append(l.flows, flowSlot{f: f, slot: int32(i)})
	}
}

// removeFlow unregisters f from the order slice, link flow lists, maintained
// allocation totals, and the completion heap.
func (n *Network) removeFlow(f *Flow) {
	f.active = false
	n.removeFromOrder(f)
	for i, li := range f.pathIdx {
		l := &n.links[li]
		pos := f.linkPos[i]
		last := len(l.flows) - 1
		if int(pos) != last {
			moved := l.flows[last]
			l.flows[pos] = moved
			moved.f.linkPos[moved.slot] = pos
		}
		l.flows = l.flows[:last]
		l.alloc -= f.rate
		if l.alloc < 0 {
			l.alloc = 0
		}
	}
	n.heapRemove(f)
}

// orderLess is the allocation order: priority tiers descending, FIFO within
// a tier.
func orderLess(a, b *Flow) bool {
	if a.priority != b.priority {
		return a.priority > b.priority
	}
	return a.seq < b.seq
}

// insertIntoOrder places f into the maintained allocation-order slice by
// binary search (no re-sorting of the population).
func (n *Network) insertIntoOrder(f *Flow) {
	lo, hi := 0, len(n.order)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if orderLess(n.order[mid], f) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	n.order = append(n.order, nil)
	copy(n.order[lo+1:], n.order[lo:])
	n.order[lo] = f
}

// removeFromOrder deletes f from the allocation-order slice.
func (n *Network) removeFromOrder(f *Flow) {
	lo, hi := 0, len(n.order)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if orderLess(n.order[mid], f) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(n.order) || n.order[lo] != f {
		panic(fmt.Sprintf("netsim: flow %q (seq %d) not at its order slot", f.label, f.seq))
	}
	copy(n.order[lo:], n.order[lo+1:])
	n.order[len(n.order)-1] = nil
	n.order = n.order[:len(n.order)-1]
}

// collectComponents expands the dirty seeds into their connected components
// over the flow-link bipartite graph. On return compFlows holds every
// reachable flow (including flows about to be retired), compLinks every
// reachable link, both stamped with the new epoch. The returned count is the
// number of disjoint components spanned.
func (n *Network) collectComponents() int {
	n.epoch++
	ep := n.epoch
	n.compFlows = n.compFlows[:0]
	n.compLinks = n.compLinks[:0]
	components := 0

	for _, f := range n.dirtyFlows {
		f.dirty = false
		if !f.active || f.visited == ep {
			continue
		}
		components++
		f.visited = ep
		n.compFlows = append(n.compFlows, f)
		n.expandComponent(len(n.compFlows) - 1)
	}
	for _, li := range n.dirtyLinks {
		l := &n.links[li]
		if l.visited == ep {
			continue
		}
		components++
		l.visited = ep
		n.compLinks = append(n.compLinks, li)
		head := len(n.compFlows)
		for _, s := range l.flows {
			if s.f.visited != ep {
				s.f.visited = ep
				n.compFlows = append(n.compFlows, s.f)
			}
		}
		n.expandComponent(head)
	}
	n.dirtyFlows = n.dirtyFlows[:0]
	n.dirtyLinks = n.dirtyLinks[:0]
	return components
}

// expandComponent runs the BFS from compFlows[head:] until closure,
// appending discovered flows and links stamped with the current epoch.
func (n *Network) expandComponent(head int) {
	ep := n.epoch
	for ; head < len(n.compFlows); head++ {
		f := n.compFlows[head]
		for _, li := range f.pathIdx {
			l := &n.links[li]
			if l.visited == ep {
				continue
			}
			l.visited = ep
			n.compLinks = append(n.compLinks, int(li))
			for _, s := range l.flows {
				if s.f.visited != ep {
					s.f.visited = ep
					n.compFlows = append(n.compFlows, s.f)
				}
			}
		}
	}
}

// --- completion heap: min-heap of active flows by (finishAt, seq) ---

func completionLess(a, b *Flow) bool {
	if a.finishAt != b.finishAt {
		return a.finishAt < b.finishAt
	}
	return a.seq < b.seq
}

// heapFix inserts f or restores its position after finishAt changed.
func (n *Network) heapFix(f *Flow) {
	if f.heapIdx < 0 {
		f.heapIdx = len(n.completions)
		n.completions = append(n.completions, f)
		n.heapUp(f.heapIdx)
		return
	}
	if !n.heapUp(f.heapIdx) {
		n.heapDown(f.heapIdx)
	}
}

// heapRemove deletes f from the heap if present.
func (n *Network) heapRemove(f *Flow) {
	i := f.heapIdx
	if i < 0 {
		return
	}
	last := len(n.completions) - 1
	if i != last {
		n.completions[i] = n.completions[last]
		n.completions[i].heapIdx = i
	}
	n.completions[last] = nil
	n.completions = n.completions[:last]
	f.heapIdx = -1
	if i < last {
		if !n.heapUp(i) {
			n.heapDown(i)
		}
	}
}

// heapPop removes and returns the earliest-finishing flow.
func (n *Network) heapPop() *Flow {
	f := n.completions[0]
	n.heapRemove(f)
	return f
}

func (n *Network) heapUp(i int) bool {
	moved := false
	for i > 0 {
		parent := (i - 1) / 2
		if !completionLess(n.completions[i], n.completions[parent]) {
			break
		}
		n.heapSwap(i, parent)
		i = parent
		moved = true
	}
	return moved
}

func (n *Network) heapDown(i int) {
	for {
		left := 2*i + 1
		if left >= len(n.completions) {
			return
		}
		least := left
		if right := left + 1; right < len(n.completions) && completionLess(n.completions[right], n.completions[left]) {
			least = right
		}
		if !completionLess(n.completions[least], n.completions[i]) {
			return
		}
		n.heapSwap(i, least)
		i = least
	}
}

func (n *Network) heapSwap(i, j int) {
	n.completions[i], n.completions[j] = n.completions[j], n.completions[i]
	n.completions[i].heapIdx = i
	n.completions[j].heapIdx = j
}

// checkIntegrity validates the maintained indexes against first principles:
// per-link totals match the member rates, back-pointers are consistent, and
// no link is over capacity. Test-only (called from property tests); the
// check is O(flows x pathlen).
func (n *Network) checkIntegrity() error {
	for i := range n.links {
		l := &n.links[i]
		sum := 0.0
		for pos, s := range l.flows {
			if !s.f.active {
				return fmt.Errorf("link %s lists inactive flow %q", l.id, s.f.label)
			}
			if s.f.pathIdx[s.slot] != int32(i) || s.f.linkPos[s.slot] != int32(pos) {
				return fmt.Errorf("link %s slot %d back-pointer mismatch for %q", l.id, pos, s.f.label)
			}
			sum += s.f.rate
		}
		if diff := l.alloc - sum; diff > 1e-6 || diff < -1e-6 {
			return fmt.Errorf("link %s alloc drift: maintained %f vs summed %f", l.id, l.alloc, sum)
		}
		if l.alloc > l.capacity*(1+1e-9)+1e-6 {
			return fmt.Errorf("link %s over capacity: %f > %f", l.id, l.alloc, l.capacity)
		}
	}
	for i, f := range n.completions {
		if f.heapIdx != i {
			return fmt.Errorf("completion heap index mismatch at %d for %q", i, f.label)
		}
	}
	for i := 1; i < len(n.order); i++ {
		if orderLess(n.order[i], n.order[i-1]) {
			return fmt.Errorf("order slice out of order at %d", i)
		}
	}
	return nil
}

// ratesSettled reports whether no recompute is pending at the current
// instant, i.e. flow rates reflect the current flow set. Test helper.
func (n *Network) ratesSettled() bool {
	if len(n.dirtyFlows) > 0 || len(n.dirtyLinks) > 0 {
		return false
	}
	return !(n.eventScheduled && n.eventAt <= n.engine.Now())
}
