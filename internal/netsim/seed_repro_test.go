package netsim

import (
	"math/rand"
	"testing"
	"time"

	"grouter/internal/sim"
)

// TestWaterFillTierStarvationSeed pins the randomized-schedule seed that
// exposed a tier-wide water-fill cutoff bug: a sub-eps uniform increment on
// one crowded link used to stop the whole priority tier, starving a flow
// that sat alone on an otherwise-idle link (the incremental allocator filled
// it per component; the reference oracle returned 0). Both water-fills now
// apply sub-eps deltas so only the binding link's flows freeze.
func TestWaterFillTierStarvationSeed(t *testing.T) {
	seed := int64(5113539033122448203)
	rng := rand.New(rand.NewSource(seed))
	e := sim.NewEngine()
	defer e.Close()
	links := diffTopology(rng)
	net := New(e, links)

	var live []*Flow
	nEvents := 10 + rng.Intn(40)
	for i := 0; i < nEvents; i++ {
		at := time.Duration(rng.Intn(5000)) * time.Millisecond
		op := rng.Intn(10)
		e.Schedule(at, func() {
			switch {
			case op < 6 || len(live) == 0:
				f := net.Start("df", diffPath(rng, links),
					float64(100+rng.Intn(500000)), diffOptions(rng))
				live = append(live, f)
			case op < 8:
				live[rng.Intn(len(live))].SetOptions(diffOptions(rng))
			default:
				net.Cancel(live[rng.Intn(len(live))])
			}
		})
		e.Schedule(at+time.Nanosecond, func() {
			if !net.ratesSettled() {
				return
			}
			ref := net.allocateReference()
			for _, f := range net.order {
				if d := f.rate - ref[f]; d > 1.0 || d < -1.0 {
					t.Errorf("at %v flow %q(seq %d) incremental rate %f, reference %f",
						e.Now(), f.label, f.seq, f.rate, ref[f])
				}
			}
			if err := net.checkIntegrity(); err != nil {
				t.Error(err)
			}
		})
	}
	e.Run(0)
}
