package netsim

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"grouter/internal/obs"
	"grouter/internal/sim"
	"grouter/internal/topology"
)

// TestTracedFlowLifecycles drives every flow outcome with a tracer attached
// and checks each lands in the export: completion, cancellation, mid-flight
// failure, dead-path rejection, plus re-rate instants and the active-flow
// counter.
func TestTracedFlowLifecycles(t *testing.T) {
	e := sim.NewEngine()
	tr := obs.Attach(e)
	n := testNet(e, map[topology.LinkID]float64{"l1": 100, "l2": 100})
	e.Go("driver", func(p *sim.Proc) {
		a := n.Start("flow-a", []topology.LinkID{"l1"}, 1000, Options{})
		p.Sleep(2 * time.Second)
		// Contends with a on l1: both get re-rated.
		b := n.Start("flow-b", []topology.LinkID{"l1"}, 500, Options{})
		a.Done().Wait(p)
		b.Done().Wait(p)

		c := n.Start("flow-c", []topology.LinkID{"l2"}, 800, Options{})
		p.Sleep(time.Second)
		n.Cancel(c)

		d := n.Start("flow-d", []topology.LinkID{"l2"}, 800, Options{})
		p.Sleep(time.Second)
		n.FailLink("l2") // kills d mid-flight
		d.Done().Wait(p)

		// l2 is still down: a new flow over it dies at birth.
		n.Start("flow-dead", []topology.LinkID{"l2"}, 100, Options{})
	})
	run(t, e)

	var buf bytes.Buffer
	if err := tr.Export(&buf); err != nil {
		t.Fatalf("export: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		`"outcome":"completed"`,
		`"outcome":"canceled"`,
		`"outcome":"failed"`,
		`"outcome":"dead-path"`,
		`"name":"rerate"`,
		`"name":"flows-active"`,
		`"transferred"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %s", want)
		}
	}
}
