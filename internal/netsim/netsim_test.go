package netsim

import (
	"math"
	"testing"
	"time"

	"grouter/internal/sim"
	"grouter/internal/topology"
)

func testNet(e *sim.Engine, caps map[topology.LinkID]float64) *Network {
	var links []topology.Link
	for id, bps := range caps {
		links = append(links, topology.Link{ID: id, Kind: topology.KindNVLink, Bps: bps})
	}
	return New(e, links)
}

// run runs the engine to completion and returns the final time.
func run(t *testing.T, e *sim.Engine) time.Duration {
	t.Helper()
	end := e.Run(0)
	e.Close()
	return end
}

func approx(t *testing.T, got, want time.Duration, tol float64, msg string) {
	t.Helper()
	g, w := got.Seconds(), want.Seconds()
	if w == 0 {
		if g != 0 {
			t.Errorf("%s: got %v, want 0", msg, got)
		}
		return
	}
	if math.Abs(g-w)/w > tol {
		t.Errorf("%s: got %v, want %v (±%.1f%%)", msg, got, want, tol*100)
	}
}

func TestSingleFlowCompletionTime(t *testing.T) {
	e := sim.NewEngine()
	n := testNet(e, map[topology.LinkID]float64{"l1": 100})
	var done time.Duration
	e.Go("xfer", func(p *sim.Proc) {
		f := n.Start("f", []topology.LinkID{"l1"}, 1000, Options{})
		f.Done().Wait(p)
		done = p.Now()
	})
	run(t, e)
	approx(t, done, 10*time.Second, 1e-6, "1000B over 100B/s")
}

func TestTwoFlowsShareLinkFairly(t *testing.T) {
	e := sim.NewEngine()
	n := testNet(e, map[topology.LinkID]float64{"l1": 100})
	var d1, d2 time.Duration
	e.Go("a", func(p *sim.Proc) {
		f := n.Start("a", []topology.LinkID{"l1"}, 500, Options{})
		f.Done().Wait(p)
		d1 = p.Now()
	})
	e.Go("b", func(p *sim.Proc) {
		f := n.Start("b", []topology.LinkID{"l1"}, 500, Options{})
		f.Done().Wait(p)
		d2 = p.Now()
	})
	run(t, e)
	// Both get 50 B/s, both finish at 10s.
	approx(t, d1, 10*time.Second, 1e-6, "flow a")
	approx(t, d2, 10*time.Second, 1e-6, "flow b")
}

func TestShortFlowReleasesBandwidth(t *testing.T) {
	e := sim.NewEngine()
	n := testNet(e, map[topology.LinkID]float64{"l1": 100})
	var dLong time.Duration
	e.Go("long", func(p *sim.Proc) {
		f := n.Start("long", []topology.LinkID{"l1"}, 1000, Options{})
		f.Done().Wait(p)
		dLong = p.Now()
	})
	e.Go("short", func(p *sim.Proc) {
		f := n.Start("short", []topology.LinkID{"l1"}, 100, Options{})
		f.Done().Wait(p)
	})
	run(t, e)
	// Share 50/50 until short finishes at t=2s (100B at 50B/s); long then has
	// 900B left at 100B/s → finishes at 2 + 9 = 11s.
	approx(t, dLong, 11*time.Second, 1e-6, "long flow with departing competitor")
}

func TestDisjointPathsDoNotContend(t *testing.T) {
	e := sim.NewEngine()
	n := testNet(e, map[topology.LinkID]float64{"l1": 100, "l2": 100})
	var d1, d2 time.Duration
	e.Go("a", func(p *sim.Proc) {
		f := n.Start("a", []topology.LinkID{"l1"}, 1000, Options{})
		f.Done().Wait(p)
		d1 = p.Now()
	})
	e.Go("b", func(p *sim.Proc) {
		f := n.Start("b", []topology.LinkID{"l2"}, 1000, Options{})
		f.Done().Wait(p)
		d2 = p.Now()
	})
	run(t, e)
	approx(t, d1, 10*time.Second, 1e-6, "disjoint a")
	approx(t, d2, 10*time.Second, 1e-6, "disjoint b")
}

func TestMultiHopBottleneck(t *testing.T) {
	e := sim.NewEngine()
	n := testNet(e, map[topology.LinkID]float64{"fast": 1000, "slow": 10})
	var d time.Duration
	e.Go("a", func(p *sim.Proc) {
		f := n.Start("a", []topology.LinkID{"fast", "slow"}, 100, Options{})
		f.Done().Wait(p)
		d = p.Now()
	})
	run(t, e)
	approx(t, d, 10*time.Second, 1e-6, "bottleneck link governs")
}

func TestMaxRateCap(t *testing.T) {
	e := sim.NewEngine()
	n := testNet(e, map[topology.LinkID]float64{"l1": 100})
	var d time.Duration
	e.Go("a", func(p *sim.Proc) {
		f := n.Start("a", []topology.LinkID{"l1"}, 100, Options{MaxRate: 10})
		f.Done().Wait(p)
		d = p.Now()
	})
	run(t, e)
	approx(t, d, 10*time.Second, 1e-6, "capped flow")
}

func TestCapFreesBandwidthForOthers(t *testing.T) {
	e := sim.NewEngine()
	n := testNet(e, map[topology.LinkID]float64{"l1": 100})
	var dFree time.Duration
	e.Go("capped", func(p *sim.Proc) {
		n.Start("capped", []topology.LinkID{"l1"}, 1e9, Options{MaxRate: 20})
	})
	e.Go("free", func(p *sim.Proc) {
		f := n.Start("free", []topology.LinkID{"l1"}, 800, Options{})
		f.Done().Wait(p)
		dFree = p.Now()
	})
	e.Run(20 * time.Second)
	e.Close()
	// Uncapped flow gets 100-20=80 B/s → 10s.
	approx(t, dFree, 10*time.Second, 1e-6, "uncapped beneficiary")
}

func TestMinRateReservationSurvivesContention(t *testing.T) {
	e := sim.NewEngine()
	n := testNet(e, map[topology.LinkID]float64{"l1": 100})
	var dReserved time.Duration
	// 8 background flows + 1 reserved flow. Without the reservation the
	// reserved flow would get 100/9 ≈ 11 B/s; with MinRate 60 it must finish
	// 600 bytes in ~10s.
	for i := 0; i < 8; i++ {
		e.Go("bg", func(p *sim.Proc) {
			n.Start("bg", []topology.LinkID{"l1"}, 1e9, Options{})
		})
	}
	e.Go("res", func(p *sim.Proc) {
		f := n.Start("res", []topology.LinkID{"l1"}, 600, Options{MinRate: 60})
		f.Done().Wait(p)
		dReserved = p.Now()
	})
	e.Run(30 * time.Second)
	e.Close()
	if dReserved == 0 {
		t.Fatal("reserved flow did not finish")
	}
	// MinRate 60 plus a fair share of the remaining 40/9 → slightly faster
	// than 10s.
	if dReserved > 10*time.Second {
		t.Errorf("reserved flow took %v, want <= 10s", dReserved)
	}
}

func TestPriorityTierFillsFirst(t *testing.T) {
	e := sim.NewEngine()
	n := testNet(e, map[topology.LinkID]float64{"l1": 100})
	var dHigh, dLow time.Duration
	e.Go("low", func(p *sim.Proc) {
		f := n.Start("low", []topology.LinkID{"l1"}, 1000, Options{Priority: 0})
		f.Done().Wait(p)
		dLow = p.Now()
	})
	e.Go("high", func(p *sim.Proc) {
		f := n.Start("high", []topology.LinkID{"l1"}, 1000, Options{Priority: 1})
		f.Done().Wait(p)
		dHigh = p.Now()
	})
	run(t, e)
	// High tier takes the whole link: finishes at 10s; low runs after: 20s.
	approx(t, dHigh, 10*time.Second, 1e-6, "high tier")
	approx(t, dLow, 20*time.Second, 1e-6, "low tier")
}

func TestZeroByteFlowCompletesImmediately(t *testing.T) {
	e := sim.NewEngine()
	n := testNet(e, map[topology.LinkID]float64{"l1": 100})
	var d time.Duration = -1
	e.Go("z", func(p *sim.Proc) {
		f := n.Start("z", []topology.LinkID{"l1"}, 0, Options{})
		f.Done().Wait(p)
		d = p.Now()
	})
	run(t, e)
	if d != 0 {
		t.Errorf("zero-byte flow finished at %v, want 0", d)
	}
}

func TestCancelStopsFlow(t *testing.T) {
	e := sim.NewEngine()
	n := testNet(e, map[topology.LinkID]float64{"l1": 100})
	var f *Flow
	e.Go("starter", func(p *sim.Proc) {
		f = n.Start("doomed", []topology.LinkID{"l1"}, 1000, Options{})
		p.Sleep(time.Second)
		n.Cancel(f)
	})
	run(t, e)
	if f.Done().Fired() {
		t.Error("canceled flow fired done")
	}
	if n.ActiveFlows() != 0 {
		t.Errorf("active flows = %d, want 0", n.ActiveFlows())
	}
}

func TestSetOptionsRepartitions(t *testing.T) {
	e := sim.NewEngine()
	n := testNet(e, map[topology.LinkID]float64{"l1": 100})
	var d time.Duration
	e.Go("a", func(p *sim.Proc) {
		f := n.Start("a", []topology.LinkID{"l1"}, 1000, Options{MaxRate: 50})
		p.Sleep(10 * time.Second) // 500 bytes done
		f.SetOptions(Options{})   // uncap
		f.Done().Wait(p)
		d = p.Now()
	})
	run(t, e)
	// 500B at 50B/s, then 500B at 100B/s → 10 + 5 = 15s.
	approx(t, d, 15*time.Second, 1e-6, "uncapped mid-flight")
}

func TestRemainingAndRateObservers(t *testing.T) {
	e := sim.NewEngine()
	n := testNet(e, map[topology.LinkID]float64{"l1": 100})
	e.Go("a", func(p *sim.Proc) {
		f := n.Start("a", []topology.LinkID{"l1"}, 1000, Options{})
		p.Sleep(4 * time.Second)
		if r := f.Remaining(); math.Abs(r-600) > 1 {
			t.Errorf("Remaining at 4s = %f, want 600", r)
		}
		if f.Rate() != 100 {
			t.Errorf("Rate = %f, want 100", f.Rate())
		}
		if got := n.AllocatedOn("l1"); got != 100 {
			t.Errorf("AllocatedOn = %f, want 100", got)
		}
		if got := n.FreeOn("l1"); got != 0 {
			t.Errorf("FreeOn = %f, want 0", got)
		}
		f.Done().Wait(p)
	})
	run(t, e)
}

func TestUnknownLinkPanics(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	n := testNet(e, map[topology.LinkID]float64{"l1": 100})
	defer func() {
		if recover() == nil {
			t.Error("expected panic on unknown link")
		}
	}()
	n.Start("bad", []topology.LinkID{"nope"}, 10, Options{})
}

// TestConservation checks a randomized scenario for capacity conservation:
// at no recompute instant may a link carry more than its capacity.
func TestConservationUnderChurn(t *testing.T) {
	e := sim.NewEngine()
	caps := map[topology.LinkID]float64{"a": 100, "b": 50, "c": 200}
	n := testNet(e, caps)
	paths := [][]topology.LinkID{
		{"a"}, {"b"}, {"c"}, {"a", "b"}, {"b", "c"}, {"a", "b", "c"},
	}
	for i := 0; i < 30; i++ {
		i := i
		delay := time.Duration(i*137) * time.Millisecond
		e.GoAfter(delay, "churn", func(p *sim.Proc) {
			path := paths[i%len(paths)]
			opt := Options{}
			if i%4 == 0 {
				opt.MaxRate = 30
			}
			if i%5 == 0 {
				opt.MinRate = 10
			}
			if i%3 == 0 {
				opt.Priority = 1
			}
			f := n.Start("f", path, float64(50+i*13), opt)
			p.Sleep(time.Duration(i%7) * 100 * time.Millisecond)
			// Check conservation on every link at this instant.
			for id, cap := range caps {
				if got := n.AllocatedOn(id); got > cap*1.0001 {
					t.Errorf("link %s over capacity: %f > %f", id, got, cap)
				}
			}
			f.Done().Wait(p)
		})
	}
	run(t, e)
	if n.ActiveFlows() != 0 {
		t.Errorf("flows left: %d", n.ActiveFlows())
	}
}

func TestUtilizationSnapshot(t *testing.T) {
	e := sim.NewEngine()
	n := testNet(e, map[topology.LinkID]float64{"l1": 100, "l2": 50})
	e.Go("a", func(p *sim.Proc) {
		n.Start("a", []topology.LinkID{"l1"}, 500, Options{MaxRate: 60})
		p.Sleep(time.Second)
		u := n.Utilization()
		if math.Abs(u["l1"]-0.6) > 0.01 {
			t.Errorf("l1 utilization = %.2f, want 0.60", u["l1"])
		}
		if u["l2"] != 0 {
			t.Errorf("l2 utilization = %.2f, want 0", u["l2"])
		}
	})
	run(t, e)
}
