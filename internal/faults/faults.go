// Package faults injects failures into a simulated cluster at exact virtual
// timestamps: link outages and degradations (netsim), memory-pressure spikes
// (memsim), and node/GPU crashes that invalidate stored objects (data
// planes). Because the sim engine is deterministic, a fault schedule replays
// bit-identically, which makes chaos scenarios usable as regression tests
// rather than flaky add-ons.
//
// Injection events are scheduled as daemon events: a fault armed past the
// natural end of the workload never fires and never keeps Run(0) alive.
package faults

import (
	"math/rand"
	"time"

	"grouter/internal/memsim"
	"grouter/internal/metrics"
	"grouter/internal/netsim"
	"grouter/internal/sim"
	"grouter/internal/topology"
)

// Crasher is the data-plane hook for crash injection: invalidate every
// object resident on the given GPU and report how many were lost.
// (*core.Plane) implements it.
type Crasher interface {
	CrashGPU(node, gpu int) int
}

// Injector schedules faults on one simulated cluster.
type Injector struct {
	eng *sim.Engine
	net *netsim.Network
	// onCrash subscribers observe every injected GPU crash at fire time
	// (the request router marks the worker unhealthy from here).
	onCrash []func(node, gpu int)
}

// NewInjector returns an injector over the engine and network.
func NewInjector(e *sim.Engine, net *netsim.Network) *Injector {
	return &Injector{eng: e, net: net}
}

// At schedules an arbitrary fault action at the given virtual time (from the
// current instant if the engine is already running).
func (in *Injector) At(at time.Duration, fn func()) {
	in.eng.ScheduleDaemon(at-in.eng.Now(), fn)
}

// FailLinkAt takes the link down at the given virtual time.
func (in *Injector) FailLinkAt(at time.Duration, id topology.LinkID) {
	in.At(at, func() {
		in.net.FailLink(id)
		metrics.Faults().LinksFailed.Add(1)
	})
}

// RestoreLinkAt brings the link back at the given virtual time.
func (in *Injector) RestoreLinkAt(at time.Duration, id topology.LinkID) {
	in.At(at, func() {
		in.net.RestoreLink(id)
		metrics.Faults().LinksRestored.Add(1)
	})
}

// LinkDownFor schedules an outage window: the link fails at `at` and is
// restored dur later (dur <= 0 means the outage is permanent).
func (in *Injector) LinkDownFor(at, dur time.Duration, id topology.LinkID) {
	in.FailLinkAt(at, id)
	if dur > 0 {
		in.RestoreLinkAt(at+dur, id)
	}
}

// DegradeLinkFor shrinks the link to fraction of its capacity at `at`,
// restoring the original capacity dur later (dur <= 0 = permanent). The
// original capacity is captured at fire time so stacked degradations of the
// same link do not compound on restore.
func (in *Injector) DegradeLinkFor(at, dur time.Duration, id topology.LinkID, fraction float64) {
	if fraction <= 0 || fraction >= 1 {
		panic("faults: degrade fraction must be in (0,1)")
	}
	in.At(at, func() {
		orig := in.net.Capacity(id)
		in.net.SetLinkBps(id, orig*fraction)
		metrics.Faults().LinksDegraded.Add(1)
		if dur > 0 {
			in.At(in.eng.Now()+dur, func() {
				in.net.SetLinkBps(id, orig)
				metrics.Faults().LinksRestored.Add(1)
			})
		}
	})
}

// FlapLink schedules a periodic outage: starting at `first`, the link goes
// down for downFor at the start of every period, until the horizon.
func (in *Injector) FlapLink(id topology.LinkID, first, downFor, period, until time.Duration) {
	if downFor <= 0 || period <= downFor {
		panic("faults: flap needs 0 < downFor < period")
	}
	for at := first; at < until; at += period {
		in.LinkDownFor(at, downFor, id)
	}
}

// MemPressureFor squeezes the device by up to bytes for dur (dur <= 0 =
// permanent), modeling a co-located tenant's allocation spike. The grab is
// clamped to the device's free bytes at fire time, so the spike pressures
// the storage layer without crashing the simulation.
func (in *Injector) MemPressureFor(at, dur time.Duration, dev *memsim.Device, bytes int64) {
	in.At(at, func() {
		grab := bytes
		if free := dev.Free(); grab > free {
			grab = free
		}
		metrics.Faults().MemPressure.Add(1)
		if grab <= 0 {
			return
		}
		blk, err := dev.Alloc(grab)
		if err != nil {
			return
		}
		if dur > 0 {
			in.At(in.eng.Now()+dur, blk.Free)
		}
	})
}

// OnGPUCrash registers a subscriber notified (in event context, at fire
// time) of every GPU crash this injector schedules. Health-aware layers —
// the request router's failover — use it as their crash signal.
func (in *Injector) OnGPUCrash(fn func(node, gpu int)) {
	in.onCrash = append(in.onCrash, fn)
}

// CrashGPUAt invalidates every object stored on the GPU at the given virtual
// time, via the data plane's Crasher hook.
func (in *Injector) CrashGPUAt(at time.Duration, c Crasher, node, gpu int) {
	in.At(at, func() {
		metrics.Faults().Crashes.Add(1)
		metrics.Faults().ObjectsLost.Add(int64(c.CrashGPU(node, gpu)))
		for _, fn := range in.onCrash {
			fn(node, gpu)
		}
	})
}

// RandomLinkFaults seeds a reproducible random outage schedule over the
// given links: each fault picks a link uniformly, fails it after an
// exponential gap with mean meanUp, and restores it after an exponential
// outage with mean meanDown, until the horizon. The same seed produces the
// same schedule.
func (in *Injector) RandomLinkFaults(seed int64, links []topology.LinkID, horizon, meanUp, meanDown time.Duration) {
	if len(links) == 0 {
		return
	}
	rng := rand.New(rand.NewSource(seed))
	at := time.Duration(0)
	for {
		at += time.Duration(rng.ExpFloat64() * float64(meanUp))
		if at >= horizon {
			return
		}
		id := links[rng.Intn(len(links))]
		down := time.Duration(rng.ExpFloat64() * float64(meanDown))
		if down < time.Microsecond {
			down = time.Microsecond
		}
		in.LinkDownFor(at, down, id)
	}
}
