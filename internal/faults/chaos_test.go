package faults_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"grouter/internal/core"
	"grouter/internal/dataplane"
	"grouter/internal/fabric"
	"grouter/internal/faults"
	"grouter/internal/metrics"
	"grouter/internal/sim"
	"grouter/internal/topology"
)

const mb = int64(1) << 20

// chaosEnv is one freshly-built simulated cluster a scenario runs against.
type chaosEnv struct {
	e   *sim.Engine
	f   *fabric.Fabric
	pl  *core.Plane
	in  *faults.Injector
	log *strings.Builder
}

func (c *chaosEnv) logf(at time.Duration, format string, args ...interface{}) {
	fmt.Fprintf(c.log, "[%v] %s\n", at, fmt.Sprintf(format, args...))
}

// runScenario builds a fresh engine/fabric/plane, executes the scenario, and
// returns its event log plus the fault counters accumulated during the run.
func runScenario(t *testing.T, scenario func(*chaosEnv)) (string, string) {
	t.Helper()
	metrics.Faults().Reset()
	env := &chaosEnv{e: sim.NewEngine(), log: &strings.Builder{}}
	env.f = fabric.New(env.e, topology.DGXV100(), 1)
	env.pl = core.New(env.f, core.FullConfig())
	env.in = faults.NewInjector(env.e, env.f.Net)
	scenario(env)
	env.e.Run(0)
	env.e.Close()
	return env.log.String(), metrics.Faults().String()
}

// requireDeterministic runs the scenario twice on fresh simulations and fails
// unless both the event logs and the fault counters are byte-identical — the
// property that makes chaos scenarios usable as regression tests.
func requireDeterministic(t *testing.T, scenario func(*chaosEnv)) (string, string) {
	t.Helper()
	log1, stats1 := runScenario(t, scenario)
	log2, stats2 := runScenario(t, scenario)
	if log1 != log2 {
		t.Errorf("two identical runs diverged:\n--- first ---\n%s--- second ---\n%s", log1, log2)
	}
	if stats1 != stats2 {
		t.Errorf("fault counters diverged:\nfirst:  %s\nsecond: %s", stats1, stats2)
	}
	return log1, stats1
}

// gpuFn returns a function context pinned to a GPU.
func gpuFn(name string, gpu int) *dataplane.FnCtx {
	return &dataplane.FnCtx{Fn: name, Workflow: "chaos", Loc: fabric.Location{Node: 0, GPU: gpu}}
}

// failAllNVLinksFrom schedules an outage of every NVLink out-edge of the GPU,
// cutting it off from the NVLink mesh (PCIe stays up).
func failAllNVLinksFrom(env *chaosEnv, at time.Duration, gpu int) {
	topo := env.f.Topo(gpu / env.f.Spec().NumGPUs)
	for j := 0; j < env.f.Spec().NumGPUs; j++ {
		if env.f.Spec().NVLinkBps(gpu, j) > 0 {
			env.in.FailLinkAt(at, topo.NVLinkTo(gpu, j))
		}
	}
}

// TestChaosNVLinkDiesMidTransfer is the headline self-healing scenario: a
// GPU0→GPU3 transfer loses every NVLink out of GPU0 mid-flight. The transfer
// must complete anyway — killed flows are retried with backoff, the re-plan
// finds no live NVLink path and degrades to PCIe — and the whole episode must
// replay deterministically.
func TestChaosNVLinkDiesMidTransfer(t *testing.T) {
	scenario := func(env *chaosEnv) {
		// The outage lands at 1.3ms, inside the ~1ms transfer the consumer
		// starts at t=1ms (48 MB at 48-72 GB/s aggregate NVLink).
		failAllNVLinksFrom(env, 1300*time.Microsecond, 0)
		env.e.Go("consumer", func(p *sim.Proc) {
			ref, err := env.pl.Put(p, gpuFn("producer", 0), 48*mb)
			if err != nil {
				env.logf(p.Now(), "put failed: %v", err)
				return
			}
			env.logf(p.Now(), "put done")
			p.Sleep(time.Millisecond - p.Now())
			if err := env.pl.Get(p, gpuFn("consumer", 3), ref); err != nil {
				env.logf(p.Now(), "get failed: %v", err)
				return
			}
			env.logf(p.Now(), "get done (transfer survived the outage)")
			env.pl.Free(ref)
		})
	}
	log, stats := requireDeterministic(t, scenario)
	if !strings.Contains(log, "get done") {
		t.Fatalf("transfer did not survive the NVLink outage:\n%s\nfaults: %s", log, stats)
	}
	fs := metrics.Faults()
	if fs.FlowsKilled.Load() == 0 {
		t.Error("outage killed no flows — the fault was not mid-flight")
	}
	if fs.Retries.Load() == 0 {
		t.Error("no retry recorded")
	}
	if fs.Replans.Load() == 0 {
		t.Error("no re-plan recorded")
	}
	if fs.DegradedBytes.Load() == 0 {
		t.Error("no degraded bytes recorded for the PCIe fallback delivery")
	}
	if fs.TransfersFailed.Load() != 0 {
		t.Errorf("transfers-failed = %d, want 0", fs.TransfersFailed.Load())
	}
}

// TestChaosFlappingLink drives a sequence of transfers across a link flapping
// at a 25% duty cycle; every transfer must eventually deliver (routing around
// the outage, retrying, or degrading) and the run must be deterministic.
func TestChaosFlappingLink(t *testing.T) {
	scenario := func(env *chaosEnv) {
		topo := env.f.Topo(0)
		env.in.FlapLink(topo.NVLinkTo(0, 3), 200*time.Microsecond, 250*time.Microsecond,
			time.Millisecond, 20*time.Millisecond)
		env.e.Go("consumer", func(p *sim.Proc) {
			for i := 0; i < 8; i++ {
				ref, err := env.pl.Put(p, gpuFn("producer", 0), 24*mb)
				if err != nil {
					env.logf(p.Now(), "put %d failed: %v", i, err)
					return
				}
				if err := env.pl.Get(p, gpuFn("consumer", 3), ref); err != nil {
					env.logf(p.Now(), "get %d failed: %v", i, err)
					return
				}
				env.logf(p.Now(), "round %d delivered", i)
				env.pl.Free(ref)
			}
		})
	}
	log, stats := requireDeterministic(t, scenario)
	for i := 0; i < 8; i++ {
		if !strings.Contains(log, fmt.Sprintf("round %d delivered", i)) {
			t.Fatalf("round %d lost under the flap:\n%s\nfaults: %s", i, log, stats)
		}
	}
	if metrics.Faults().LinksFailed.Load() == 0 {
		t.Error("flap schedule injected no outages")
	}
}

// TestChaosDegradedLink shrinks the direct NVLink to 5% of its capacity
// mid-transfer: the transfer finishes (slower) without any retry — capacity
// changes re-rate flows instead of killing them.
func TestChaosDegradedLink(t *testing.T) {
	scenario := func(env *chaosEnv) {
		topo := env.f.Topo(0)
		env.in.DegradeLinkFor(1200*time.Microsecond, 10*time.Millisecond, topo.NVLinkTo(0, 3), 0.05)
		env.e.Go("consumer", func(p *sim.Proc) {
			ref, err := env.pl.Put(p, gpuFn("producer", 0), 48*mb)
			if err != nil {
				env.logf(p.Now(), "put failed: %v", err)
				return
			}
			p.Sleep(time.Millisecond - p.Now())
			start := p.Now()
			if err := env.pl.Get(p, gpuFn("consumer", 3), ref); err != nil {
				env.logf(p.Now(), "get failed: %v", err)
				return
			}
			env.logf(p.Now(), "get done in %v", p.Now()-start)
			env.pl.Free(ref)
		})
	}
	log, stats := requireDeterministic(t, scenario)
	if !strings.Contains(log, "get done") {
		t.Fatalf("transfer lost under degradation:\n%s\nfaults: %s", log, stats)
	}
	fs := metrics.Faults()
	if fs.LinksDegraded.Load() == 0 {
		t.Error("no degradation recorded")
	}
	if fs.FlowsKilled.Load() != 0 {
		t.Errorf("degradation killed %d flows; capacity changes must re-rate, not kill", fs.FlowsKilled.Load())
	}
}

// TestChaosMemoryPressureDuringStorage squeezes GPU0's memory while the
// store holds objects on it: subsequent Puts/Gets must keep working (the
// elastic store spills to host under pressure) and the run stays
// deterministic.
func TestChaosMemoryPressureDuringStorage(t *testing.T) {
	scenario := func(env *chaosEnv) {
		dev := env.f.Mem(fabric.Location{Node: 0, GPU: 0})
		// Grab nearly everything that is free 1ms in, for the rest of the run.
		env.in.MemPressureFor(time.Millisecond, 0, dev, dev.Free())
		env.e.Go("workload", func(p *sim.Proc) {
			var refs []dataplane.DataRef
			for i := 0; i < 6; i++ {
				ref, err := env.pl.Put(p, gpuFn("producer", 0), 256*mb)
				if err != nil {
					env.logf(p.Now(), "put %d failed: %v", i, err)
					return
				}
				refs = append(refs, ref)
				p.Sleep(500 * time.Microsecond)
			}
			for i, ref := range refs {
				if err := env.pl.Get(p, gpuFn("consumer", 3), ref); err != nil {
					env.logf(p.Now(), "get %d failed: %v", i, err)
					return
				}
				env.logf(p.Now(), "object %d readable under pressure", i)
				env.pl.Free(ref)
			}
		})
	}
	log, stats := requireDeterministic(t, scenario)
	for i := 0; i < 6; i++ {
		if !strings.Contains(log, fmt.Sprintf("object %d readable", i)) {
			t.Fatalf("object %d lost under memory pressure:\n%s\nfaults: %s", i, log, stats)
		}
	}
	if metrics.Faults().MemPressure.Load() == 0 {
		t.Error("no memory-pressure event recorded")
	}
}

// TestChaosEvictionStorm squeezes GPU0 until barely two objects fit, then
// streams Puts at it so the store must pick an eviction victim on every
// subsequent Put. The storm must not lose data — the oldest (evicted) objects
// stay readable from host — and the whole episode, including the store's
// eviction/restore/spill counters, must replay byte-identically.
func TestChaosEvictionStorm(t *testing.T) {
	const storms = 12
	scenario := func(env *chaosEnv) {
		dev := env.f.Mem(fabric.Location{Node: 0, GPU: 0})
		// Leave ~640MB free before any Put: two 256MB objects fit, the third
		// forces an eviction, and every later Put keeps the pressure on.
		env.in.MemPressureFor(0, 0, dev, dev.Free()-640*mb)
		env.e.Go("storm", func(p *sim.Proc) {
			var refs []dataplane.DataRef
			for i := 0; i < storms; i++ {
				ref, err := env.pl.Put(p, gpuFn("producer", 0), 256*mb)
				if err != nil {
					env.logf(p.Now(), "put %d failed: %v", i, err)
					return
				}
				env.logf(p.Now(), "put %d done", i)
				refs = append(refs, ref)
			}
			// The oldest objects were evicted to host; they must still be
			// readable (restore / host-path transfer), not lost.
			for i := 0; i < 4; i++ {
				if err := env.pl.Get(p, gpuFn("consumer", 3), refs[i]); err != nil {
					env.logf(p.Now(), "get %d failed: %v", i, err)
					return
				}
				env.logf(p.Now(), "object %d survived the storm", i)
			}
			st := env.pl.Store(0)
			env.logf(p.Now(), "store: evictions=%d restores=%d spills=%d",
				st.Evictions.N, st.Restores.N, st.Spills.N)
		})
	}
	log, stats := requireDeterministic(t, scenario)
	for i := 0; i < storms; i++ {
		if !strings.Contains(log, fmt.Sprintf("put %d done", i)) {
			t.Fatalf("put %d did not complete:\n%s\nfaults: %s", i, log, stats)
		}
	}
	for i := 0; i < 4; i++ {
		if !strings.Contains(log, fmt.Sprintf("object %d survived", i)) {
			t.Fatalf("object %d lost in the eviction storm:\n%s\nfaults: %s", i, log, stats)
		}
	}
	if !strings.Contains(log, "evictions=") || strings.Contains(log, "evictions=0 ") {
		t.Fatalf("storm forced no evictions:\n%s", log)
	}
}

// TestChaosCrashRematerialize crashes GPU0 after an object is stored there:
// the object is lost, and the next Get must re-materialize it from its
// durable origin (paying RematerializeLatency + a host→GPU move) instead of
// failing.
func TestChaosCrashRematerialize(t *testing.T) {
	scenario := func(env *chaosEnv) {
		env.e.Go("workload", func(p *sim.Proc) {
			ref, err := env.pl.Put(p, gpuFn("producer", 0), 48*mb)
			if err != nil {
				env.logf(p.Now(), "put failed: %v", err)
				return
			}
			env.logf(p.Now(), "put done")
			p.Sleep(time.Millisecond - p.Now())
			p.Sleep(time.Millisecond) // crash fires at 1.5ms, between put and get
			start := p.Now()
			if err := env.pl.Get(p, gpuFn("consumer", 3), ref); err != nil {
				env.logf(p.Now(), "get failed: %v", err)
				return
			}
			elapsed := p.Now() - start
			env.logf(p.Now(), "get done in %v", elapsed)
			if elapsed < core.RematerializeLatency {
				env.logf(p.Now(), "BUG: get faster than re-materialization latency")
			}
			env.pl.Free(ref)
		})
		env.in.CrashGPUAt(1500*time.Microsecond, env.pl, 0, 0)
	}
	log, stats := requireDeterministic(t, scenario)
	if !strings.Contains(log, "get done") || strings.Contains(log, "BUG") {
		t.Fatalf("crash recovery broken:\n%s\nfaults: %s", log, stats)
	}
	fs := metrics.Faults()
	if fs.Crashes.Load() == 0 {
		t.Error("no crash recorded")
	}
	if fs.ObjectsLost.Load() == 0 {
		t.Error("crash lost no objects — the scenario no longer covers recovery")
	}
	if fs.Rematerialized.Load() == 0 {
		t.Error("no re-materialization recorded")
	}
}

// TestChaosRandomScheduleDeterministic seeds a random fault schedule over the
// whole NVLink mesh under a steady transfer workload and requires two runs to
// agree byte-for-byte — the same guarantee the table-driven scenarios pin,
// but over an adversarial schedule nobody hand-picked.
func TestChaosRandomScheduleDeterministic(t *testing.T) {
	scenario := func(env *chaosEnv) {
		topo := env.f.Topo(0)
		var links []topology.LinkID
		for i := 0; i < env.f.Spec().NumGPUs; i++ {
			for j := 0; j < env.f.Spec().NumGPUs; j++ {
				if env.f.Spec().NVLinkBps(i, j) > 0 {
					links = append(links, topo.NVLinkTo(i, j))
				}
			}
		}
		env.in.RandomLinkFaults(99, links, 30*time.Millisecond, 2*time.Millisecond, time.Millisecond)
		env.e.Go("workload", func(p *sim.Proc) {
			for i := 0; i < 10; i++ {
				src, dst := i%4, (i+3)%4
				ref, err := env.pl.Put(p, gpuFn("producer", src), 24*mb)
				if err != nil {
					env.logf(p.Now(), "put %d failed: %v", i, err)
					continue
				}
				if err := env.pl.Get(p, gpuFn("consumer", dst), ref); err != nil {
					env.logf(p.Now(), "get %d failed: %v", i, err)
				} else {
					env.logf(p.Now(), "round %d delivered %d->%d", i, src, dst)
				}
				env.pl.Free(ref)
				p.Sleep(time.Millisecond)
			}
		})
	}
	log, _ := requireDeterministic(t, scenario)
	if strings.Count(log, "delivered") == 0 {
		t.Fatalf("no transfer delivered under the random schedule:\n%s", log)
	}
}

// TestInjectorValidation pins the injector's argument checking.
func TestInjectorValidation(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	f := fabric.New(e, topology.DGXV100(), 1)
	in := faults.NewInjector(e, f.Net)
	id := f.Topo(0).NVLinkTo(0, 1)
	for name, fn := range map[string]func(){
		"degrade fraction 0":  func() { in.DegradeLinkFor(0, 0, id, 0) },
		"degrade fraction 1":  func() { in.DegradeLinkFor(0, 0, id, 1) },
		"flap zero downtime":  func() { in.FlapLink(id, 0, 0, time.Millisecond, time.Second) },
		"flap period too low": func() { in.FlapLink(id, 0, time.Millisecond, time.Millisecond, time.Second) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
