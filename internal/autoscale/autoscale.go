// Package autoscale holds the pluggable scaling strategies behind the
// cluster's elastic instance pools. A strategy is a pure function from one
// pool observation (PoolMetrics) to a desired active replica count; the
// elastic controller in internal/cluster owns everything stateful around it —
// min/max clamping, cooldowns, cordon/drain, provisioning delay, health. Pure
// strategies keep the decision logic directly unit-testable and deterministic:
// the same observation stream always yields the same scaling decisions.
//
// Three strategies ship, mirroring the progression the serverless-GPU
// literature motivates (Torpor's SLO-aware scaling over purely reactive
// policies): Reactive (queue-depth thresholds, the classic serverless
// controller), TargetUtilization (size the pool so per-instance demand sits at
// a setpoint), and Predictive (trend-extrapolate demand history and provision
// ahead of it, hiding provisioning latency). Fixed pins the pool for
// differential oracles and fixed-fleet cost baselines.
package autoscale

import "math"

// PoolMetrics is one controller observation of one instance pool, taken at a
// single virtual-time instant.
type PoolMetrics struct {
	// Active counts routable healthy instances; Provisioning counts
	// instances paying their provisioning delay (capacity already ordered
	// but not yet serving); Draining counts cordoned instances finishing
	// in-flight work; Unhealthy counts crash-blacklisted instances.
	Active       int
	Provisioning int
	Draining     int
	Unhealthy    int
	// Queue sums compute-slot waiters across active instances; Busy sums
	// held slots. Load = Queue + Busy is the pool's outstanding work in
	// instance-slots.
	Queue int
	Busy  int
	Load  float64
	// History holds the most recent Load samples, oldest first, the current
	// observation last. The controller bounds its length (HistoryWindow).
	History []float64
	// Attainment is the front-door router's predicted SLO attainment in
	// [0,1] — the minimum across QoS classes of the fraction of recent
	// admission decisions predicted to meet their class budget. Negative
	// means unknown (no SLO-aware router installed); strategies must treat
	// that as "no signal", not as zero attainment.
	Attainment float64
}

// Autoscaler decides a pool's desired active replica count. Desired may
// return any value; the controller clamps it to [Min, Max] and applies
// per-direction cooldowns, so strategies express intent, not mechanism.
type Autoscaler interface {
	Name() string
	Desired(m PoolMetrics) int
}

// Fixed pins the pool at a constant size — the fixed-fleet baseline of the
// ext-elastic cost comparison, and (at the pool's initial size) the
// differential oracle proving the elastic machinery itself changes nothing.
type Fixed struct {
	// Replicas is the pinned pool size; <= 0 holds the current size.
	Replicas int
}

func (f Fixed) Name() string { return "fixed" }

func (f Fixed) Desired(m PoolMetrics) int {
	if f.Replicas <= 0 {
		return m.Active + m.Provisioning
	}
	return f.Replicas
}

// Reactive is the queue-depth threshold controller: scale out one instance
// when the mean per-instance queue reaches ScaleOutDepth, scale in one when
// the pool is completely idle. It reproduces the legacy EnableAutoscale
// trigger exactly (integer mean, waiters only) so the shim stays
// byte-compatible.
type Reactive struct {
	// ScaleOutDepth is the per-instance mean waiter count that triggers a
	// scale-out (< 1 is clamped to 1).
	ScaleOutDepth int
	// ScaleIn enables idle scale-in; the legacy shim leaves it false
	// (scale-out only, the pre-elastic behavior).
	ScaleIn bool
}

func (r Reactive) Name() string { return "reactive" }

func (r Reactive) Desired(m PoolMetrics) int {
	depth := r.ScaleOutDepth
	if depth < 1 {
		depth = 1
	}
	if m.Active < 1 {
		return 1
	}
	if m.Queue/m.Active >= depth {
		return m.Active + m.Provisioning + 1
	}
	if r.ScaleIn && m.Queue == 0 && m.Busy == 0 && m.Provisioning == 0 {
		return m.Active - 1
	}
	return m.Active + m.Provisioning
}

// SLOAware scales on the router's predicted SLO miss rate instead of raw
// queue depth (Torpor-style): while predicted attainment sits below Target
// the pool grows, one instance per observation, regardless of how shallow
// the queues look — a shallow queue on a slow worker still misses budgets.
// Without an attainment signal (PoolMetrics.Attainment < 0) it degrades to
// the Reactive queue-depth trigger, so the strategy is safe to install on
// pools whose app has no SLO-aware router. Scale-in follows Reactive's idle
// rule, additionally gated on attainment meeting Target: capacity is never
// shed while the predictor still sees misses.
type SLOAware struct {
	// Target is the attainment objective in (0,1] (default 0.95).
	Target float64
	// ScaleOutDepth is the fallback per-instance queue trigger used when no
	// attainment signal flows (< 1 clamps to 2, Reactive's default trigger).
	ScaleOutDepth int
	// ScaleIn enables idle scale-in once attainment meets Target.
	ScaleIn bool
}

func (s SLOAware) Name() string { return "slo-aware" }

func (s SLOAware) target() float64 {
	if s.Target <= 0 || s.Target > 1 || math.IsNaN(s.Target) {
		return 0.95
	}
	return s.Target
}

func (s SLOAware) Desired(m PoolMetrics) int {
	if m.Active < 1 {
		return 1
	}
	known := m.Attainment >= 0 && !math.IsNaN(m.Attainment)
	if known && m.Attainment < s.target() {
		return m.Active + m.Provisioning + 1
	}
	if !known {
		depth := s.ScaleOutDepth
		if depth < 1 {
			depth = 2
		}
		if m.Queue/m.Active >= depth {
			return m.Active + m.Provisioning + 1
		}
	}
	if s.ScaleIn && m.Queue == 0 && m.Busy == 0 && m.Provisioning == 0 {
		return m.Active - 1
	}
	return m.Active + m.Provisioning
}

// TargetUtilization sizes the pool so per-instance demand (Load / replicas)
// sits at a setpoint: desired = ceil(Load / PerInstance). Unlike Reactive it
// can order several instances in one step when a burst lands, and it scales
// in proportionally as load recedes.
type TargetUtilization struct {
	// PerInstance is the demand setpoint per instance in slot units
	// (default 0.75: an instance ~3/4 occupied with no standing queue).
	PerInstance float64
}

func (t TargetUtilization) Name() string { return "target-util" }

func (t TargetUtilization) setpoint() float64 {
	if t.PerInstance <= 0 || math.IsNaN(t.PerInstance) || math.IsInf(t.PerInstance, 0) {
		return 0.75
	}
	return t.PerInstance
}

func (t TargetUtilization) Desired(m PoolMetrics) int {
	return sizeFor(m.Load, t.setpoint())
}

// Predictive extrapolates the pool's demand history with a least-squares
// linear trend and sizes the pool for the forecast Lead observations ahead,
// so capacity is ordered before the burst peaks instead of after — the
// provisioning delay hides inside the forecast horizon. It never sizes below
// what current load requires (forecast-only scale-in cannot shed capacity a
// standing queue still needs).
type Predictive struct {
	// PerInstance is the demand setpoint per instance (default 0.75).
	PerInstance float64
	// Lead is how many observation intervals ahead to forecast (default 2).
	Lead int
}

func (p Predictive) Name() string { return "predictive" }

func (p Predictive) Desired(m PoolMetrics) int {
	set := TargetUtilization{PerInstance: p.PerInstance}.setpoint()
	lead := p.Lead
	if lead < 1 {
		lead = 2
	}
	// Size for whichever is larger, present load or forecast demand: the
	// forecast orders capacity ahead of a rising trend, and a standing queue
	// is never shed on a falling one.
	load := m.Load
	if f := Forecast(m.History, lead); f > load {
		load = f
	}
	return sizeFor(load, set)
}

// Forecast returns the least-squares linear extrapolation of the sample
// series lead steps past its final point. Fewer than two samples (or a
// degenerate fit) forecast the last sample; a negative extrapolation clamps
// to zero.
func Forecast(samples []float64, lead int) float64 {
	n := len(samples)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return samples[0]
	}
	// x = 0..n-1; least squares slope/intercept.
	var sumX, sumY, sumXY, sumXX float64
	for i, y := range samples {
		x := float64(i)
		sumX += x
		sumY += y
		sumXY += x * y
		sumXX += x * x
	}
	fn := float64(n)
	den := fn*sumXX - sumX*sumX
	if den == 0 {
		return samples[n-1]
	}
	slope := (fn*sumXY - sumX*sumY) / den
	intercept := (sumY - slope*sumX) / fn
	y := intercept + slope*float64(n-1+lead)
	if y < 0 || math.IsNaN(y) || math.IsInf(y, 0) {
		if y > 0 { // +Inf
			return samples[n-1]
		}
		return 0
	}
	return y
}

// sizeFor is the replica count that serves `load` at `perInstance` demand
// each: ceil(load / perInstance), never negative.
func sizeFor(load, perInstance float64) int {
	if load <= 0 {
		return 0
	}
	return int(math.Ceil(load / perInstance))
}
