package autoscale

import (
	"math"
	"testing"
)

func TestFixedPins(t *testing.T) {
	f := Fixed{Replicas: 3}
	if f.Name() != "fixed" {
		t.Fatalf("name = %q", f.Name())
	}
	for _, m := range []PoolMetrics{
		{Active: 1},
		{Active: 5, Queue: 100, Busy: 5, Load: 105},
		{Active: 3, Provisioning: 2},
	} {
		if got := f.Desired(m); got != 3 {
			t.Fatalf("Fixed{3}.Desired(%+v) = %d, want 3", m, got)
		}
	}
}

func TestFixedZeroHoldsCurrent(t *testing.T) {
	f := Fixed{}
	if got := f.Desired(PoolMetrics{Active: 2, Provisioning: 1}); got != 3 {
		t.Fatalf("Fixed{0} on 2 active + 1 provisioning = %d, want 3", got)
	}
}

func TestReactiveScaleOutAtDepth(t *testing.T) {
	r := Reactive{ScaleOutDepth: 2}
	if r.Name() != "reactive" {
		t.Fatalf("name = %q", r.Name())
	}
	// Mean queue below depth: hold.
	if got := r.Desired(PoolMetrics{Active: 2, Queue: 3, Busy: 2}); got != 2 {
		t.Fatalf("below threshold: desired = %d, want 2", got)
	}
	// Mean queue at depth: one more (the legacy trigger uses integer mean).
	if got := r.Desired(PoolMetrics{Active: 2, Queue: 4, Busy: 2}); got != 3 {
		t.Fatalf("at threshold: desired = %d, want 3", got)
	}
	// Provisioning capacity counts toward the new total, so repeated
	// observations during the provisioning delay don't re-order.
	if got := r.Desired(PoolMetrics{Active: 2, Provisioning: 1, Queue: 4}); got != 4 {
		t.Fatalf("with provisioning: desired = %d, want 4", got)
	}
}

func TestReactiveDepthClamp(t *testing.T) {
	r := Reactive{ScaleOutDepth: 0}
	// Clamped to depth 1: any standing queue per instance scales out.
	if got := r.Desired(PoolMetrics{Active: 1, Queue: 1}); got != 2 {
		t.Fatalf("depth-clamped trigger: desired = %d, want 2", got)
	}
}

func TestReactiveScaleInOnlyWhenIdle(t *testing.T) {
	r := Reactive{ScaleOutDepth: 2, ScaleIn: true}
	if got := r.Desired(PoolMetrics{Active: 3}); got != 2 {
		t.Fatalf("idle pool: desired = %d, want 2", got)
	}
	// Any busy slot, queued work, or in-flight provisioning holds the pool
	// at its ordered capacity (active + provisioning).
	for _, m := range []PoolMetrics{
		{Active: 3, Busy: 1},
		{Active: 3, Queue: 1},
		{Active: 3, Provisioning: 1},
	} {
		if got, want := r.Desired(m), m.Active+m.Provisioning; got != want {
			t.Fatalf("non-idle %+v: desired = %d, want %d", m, got, want)
		}
	}
	// Without ScaleIn an idle pool holds (the legacy scale-out-only shim).
	if got := (Reactive{ScaleOutDepth: 2}).Desired(PoolMetrics{Active: 3}); got != 3 {
		t.Fatalf("scale-in disabled: desired = %d, want 3", got)
	}
}

func TestReactiveEmptyPool(t *testing.T) {
	if got := (Reactive{ScaleOutDepth: 2}).Desired(PoolMetrics{}); got != 1 {
		t.Fatalf("empty pool: desired = %d, want 1", got)
	}
}

func TestTargetUtilizationSizing(t *testing.T) {
	u := TargetUtilization{PerInstance: 1}
	if u.Name() != "target-util" {
		t.Fatalf("name = %q", u.Name())
	}
	cases := []struct {
		load float64
		want int
	}{
		{0, 0}, {0.5, 1}, {1, 1}, {1.5, 2}, {4, 4}, {4.01, 5},
	}
	for _, c := range cases {
		if got := u.Desired(PoolMetrics{Load: c.load}); got != c.want {
			t.Fatalf("load %v: desired = %d, want %d", c.load, got, c.want)
		}
	}
	// A burst can order several instances in one step — the step-at-a-time
	// Reactive can't.
	if got := u.Desired(PoolMetrics{Active: 1, Load: 7}); got != 7 {
		t.Fatalf("burst: desired = %d, want 7", got)
	}
}

func TestTargetUtilizationSetpointDefaults(t *testing.T) {
	for _, bad := range []float64{0, -1, math.NaN(), math.Inf(1), math.Inf(-1)} {
		u := TargetUtilization{PerInstance: bad}
		// Default setpoint 0.75: load 3 → ceil(3/0.75) = 4.
		if got := u.Desired(PoolMetrics{Load: 3}); got != 4 {
			t.Fatalf("PerInstance=%v: desired = %d, want 4", bad, got)
		}
	}
}

func TestPredictiveOrdersAheadOfTrend(t *testing.T) {
	p := Predictive{PerInstance: 1, Lead: 2}
	if p.Name() != "predictive" {
		t.Fatalf("name = %q", p.Name())
	}
	// Rising ramp 0,1,2,3: slope 1, forecast at lead 2 = 5 → five instances
	// ordered while current load alone would only ask for three.
	rising := PoolMetrics{Active: 1, Load: 3, History: []float64{0, 1, 2, 3}}
	if got := p.Desired(rising); got != 5 {
		t.Fatalf("rising trend: desired = %d, want 5", got)
	}
	cur := TargetUtilization{PerInstance: 1}.Desired(PoolMetrics{Load: 3})
	if got := p.Desired(rising); got <= cur {
		t.Fatalf("predictive (%d) should order ahead of target-util (%d)", got, cur)
	}
}

func TestPredictiveNeverShedsStandingLoad(t *testing.T) {
	// Falling trend forecasts below current load; a standing queue must win.
	m := PoolMetrics{Active: 4, Load: 4, History: []float64{10, 8, 6, 4}}
	if got := (Predictive{PerInstance: 1, Lead: 2}).Desired(m); got != 4 {
		t.Fatalf("falling trend with standing load: desired = %d, want 4", got)
	}
}

func TestPredictiveLeadDefault(t *testing.T) {
	// Lead <= 0 defaults to 2: ramp 1,2,3 → forecast 3 + 2 = 5.
	m := PoolMetrics{Load: 3, History: []float64{1, 2, 3}}
	if got := (Predictive{PerInstance: 1}).Desired(m); got != 5 {
		t.Fatalf("default lead: desired = %d, want 5", got)
	}
}

func TestForecast(t *testing.T) {
	approx := func(got, want float64) bool { return math.Abs(got-want) < 1e-9 }
	if got := Forecast(nil, 2); got != 0 {
		t.Fatalf("empty: %v", got)
	}
	if got := Forecast([]float64{7}, 3); got != 7 {
		t.Fatalf("single sample: %v", got)
	}
	if got := Forecast([]float64{2, 4, 6}, 1); !approx(got, 8) {
		t.Fatalf("linear ramp lead 1: %v, want 8", got)
	}
	if got := Forecast([]float64{2, 4, 6}, 3); !approx(got, 12) {
		t.Fatalf("linear ramp lead 3: %v, want 12", got)
	}
	// Flat series extrapolates flat.
	if got := Forecast([]float64{5, 5, 5, 5}, 4); !approx(got, 5) {
		t.Fatalf("flat: %v, want 5", got)
	}
	// Falling below zero clamps.
	if got := Forecast([]float64{3, 2, 1}, 5); got != 0 {
		t.Fatalf("negative extrapolation: %v, want 0", got)
	}
	// Non-finite samples must not escape as NaN.
	if got := Forecast([]float64{1, math.NaN(), 3}, 2); math.IsNaN(got) {
		t.Fatal("NaN escaped Forecast")
	}
	if got := Forecast([]float64{1, math.Inf(1)}, 2); math.IsNaN(got) || math.IsInf(got, 0) {
		t.Fatalf("Inf escaped Forecast: %v", got)
	}
}

func TestSizeForNeverNegative(t *testing.T) {
	if got := sizeFor(-3, 0.75); got != 0 {
		t.Fatalf("negative load: %d", got)
	}
	if got := sizeFor(0, 0.75); got != 0 {
		t.Fatalf("zero load: %d", got)
	}
}

func TestSLOAwareScalesOnMissRate(t *testing.T) {
	s := SLOAware{Target: 0.95}
	if s.Name() != "slo-aware" {
		t.Fatalf("name = %q", s.Name())
	}
	// Empty pool always orders the first instance.
	if got := s.Desired(PoolMetrics{Attainment: 1}); got != 1 {
		t.Fatalf("empty pool: desired = %d, want 1", got)
	}
	// Attainment below target grows the pool even with shallow queues — a
	// shallow queue on a slow worker still misses budgets.
	if got := s.Desired(PoolMetrics{Active: 2, Queue: 0, Attainment: 0.8}); got != 3 {
		t.Fatalf("missing SLO: desired = %d, want 3", got)
	}
	// Provisioning capacity counts toward the new total.
	if got := s.Desired(PoolMetrics{Active: 2, Provisioning: 1, Attainment: 0.5}); got != 4 {
		t.Fatalf("missing SLO with provisioning: desired = %d, want 4", got)
	}
	// Attainment at or above target holds, deep queue or not: admission
	// control is already shedding what the pool can't serve in budget.
	if got := s.Desired(PoolMetrics{Active: 2, Queue: 50, Busy: 2, Attainment: 0.97}); got != 2 {
		t.Fatalf("meeting SLO: desired = %d, want 2", got)
	}
}

func TestSLOAwareUnknownFallsBackToReactive(t *testing.T) {
	// Attainment < 0 means "no signal": degrade to the queue-depth trigger
	// so the strategy is safe on pools without an SLO-aware router.
	s := SLOAware{ScaleOutDepth: 2}
	if got := s.Desired(PoolMetrics{Active: 2, Queue: 3, Attainment: -1}); got != 2 {
		t.Fatalf("unknown below depth: desired = %d, want 2", got)
	}
	if got := s.Desired(PoolMetrics{Active: 2, Queue: 4, Attainment: -1}); got != 3 {
		t.Fatalf("unknown at depth: desired = %d, want 3", got)
	}
	// Fallback depth clamps to Reactive's default trigger of 2.
	if got := (SLOAware{}).Desired(PoolMetrics{Active: 1, Queue: 1, Attainment: -1}); got != 1 {
		t.Fatalf("clamped depth 2, queue 1: desired = %d, want 1", got)
	}
	if got := (SLOAware{}).Desired(PoolMetrics{Active: 1, Queue: 2, Attainment: -1}); got != 2 {
		t.Fatalf("clamped depth 2, queue 2: desired = %d, want 2", got)
	}
}

func TestSLOAwareScaleIn(t *testing.T) {
	s := SLOAware{Target: 0.9, ScaleIn: true}
	// Idle and meeting target: release one instance.
	if got := s.Desired(PoolMetrics{Active: 3, Attainment: 0.95}); got != 2 {
		t.Fatalf("idle above target: desired = %d, want 2", got)
	}
	// Idle but missing target: never shed capacity while the predictor
	// still sees misses.
	if got := s.Desired(PoolMetrics{Active: 3, Attainment: 0.5}); got != 4 {
		t.Fatalf("idle below target: desired = %d, want 4", got)
	}
	// ScaleIn off: idle pool holds.
	if got := (SLOAware{}).Desired(PoolMetrics{Active: 3, Attainment: 1}); got != 3 {
		t.Fatalf("idle, no scale-in: desired = %d, want 3", got)
	}
}

func TestSLOAwareTargetDefaults(t *testing.T) {
	for _, bad := range []float64{0, -1, 1.5, math.NaN()} {
		s := SLOAware{Target: bad}
		// Default 0.95: attainment 0.94 scales out, 0.96 holds.
		if got := s.Desired(PoolMetrics{Active: 1, Attainment: 0.94}); got != 2 {
			t.Fatalf("Target=%v, attain 0.94: desired = %d, want 2", bad, got)
		}
		if got := s.Desired(PoolMetrics{Active: 1, Busy: 1, Attainment: 0.96}); got != 1 {
			t.Fatalf("Target=%v, attain 0.96: desired = %d, want 1", bad, got)
		}
	}
	// NaN attainment is "unknown", not a miss.
	s := SLOAware{ScaleOutDepth: 5}
	if got := s.Desired(PoolMetrics{Active: 2, Queue: 1, Busy: 2, Attainment: math.NaN()}); got != 2 {
		t.Fatalf("NaN attainment: desired = %d, want 2", got)
	}
}
