package obs

import (
	"bufio"
	"io"
	"sort"
	"strconv"
	"time"
)

// Export writes the recorded events as Chrome trace-event JSON (the
// "JSON Array Format" with a traceEvents wrapper), loadable in Perfetto and
// chrome://tracing.
//
// Determinism: events are emitted in (virtual start time, engine sequence)
// order with fixed-precision timestamps, attribute order is append order,
// and no wall-clock or map-iteration state leaks into the output, so two
// runs of the same simulation produce byte-identical files. Spans still open
// at export time are emitted as running until the engine's current time.
// Exporting a nil tracer writes a valid empty trace.
func (t *Tracer) Export(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"traceEvents\":[")
	if t != nil {
		// Events are appended in nondecreasing virtual time (the engine
		// clock is monotone) with strictly increasing seq; the stable sort
		// is a guard, not a reordering, and is itself deterministic.
		order := make([]int, len(t.events))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool {
			ea, eb := &t.events[order[a]], &t.events[order[b]]
			if ea.start != eb.start {
				return ea.start < eb.start
			}
			return ea.seq < eb.seq
		})
		attrsByEvent := make(map[SpanID][]int, len(t.attrs))
		for i, a := range t.attrs {
			attrsByEvent[a.event] = append(attrsByEvent[a.event], i)
		}
		now := t.e.Now()
		for n, idx := range order {
			if n > 0 {
				bw.WriteByte(',')
			}
			t.writeEvent(bw, idx, attrsByEvent[SpanID(idx+1)], now)
		}
	}
	bw.WriteString("],\"displayTimeUnit\":\"ms\"}\n")
	return bw.Flush()
}

// ExportMerged writes the events of several tracers — typically one per
// shard of a sharded run, each tagged with SetShard — as a single Chrome
// trace. Events are merged in (virtual start time, shard tag, per-tracer
// sequence) order, the same total order the sharded engine's deterministic
// mail merge uses, so the merged file is byte-identical across runs and
// across parallel/sequential executions. Each tracer's shard tag becomes a
// process lane. Nil tracers are skipped; no tracers writes a valid empty
// trace.
func ExportMerged(w io.Writer, tracers ...*Tracer) error {
	type ref struct {
		t   *Tracer
		idx int
	}
	var order []ref
	attrsByTracer := make(map[*Tracer]map[SpanID][]int)
	nowByTracer := make(map[*Tracer]time.Duration)
	for _, t := range tracers {
		if t == nil {
			continue
		}
		for i := range t.events {
			order = append(order, ref{t: t, idx: i})
		}
		if _, ok := attrsByTracer[t]; !ok {
			m := make(map[SpanID][]int, len(t.attrs))
			for i, a := range t.attrs {
				m[a.event] = append(m[a.event], i)
			}
			attrsByTracer[t] = m
			nowByTracer[t] = t.e.Now()
		}
	}
	sort.SliceStable(order, func(a, b int) bool {
		ea, eb := &order[a].t.events[order[a].idx], &order[b].t.events[order[b].idx]
		if ea.start != eb.start {
			return ea.start < eb.start
		}
		if order[a].t.shard != order[b].t.shard {
			return order[a].t.shard < order[b].t.shard
		}
		return ea.seq < eb.seq
	})
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"traceEvents\":[")
	for n, r := range order {
		if n > 0 {
			bw.WriteByte(',')
		}
		r.t.writeEvent(bw, r.idx, attrsByTracer[r.t][SpanID(r.idx+1)], nowByTracer[r.t])
	}
	bw.WriteString("],\"displayTimeUnit\":\"ms\"}\n")
	return bw.Flush()
}

func (t *Tracer) writeEvent(bw *bufio.Writer, idx int, attrIdx []int, now time.Duration) {
	ev := &t.events[idx]
	bw.WriteString("\n{\"name\":")
	writeJSONString(bw, ev.name)
	bw.WriteString(",\"cat\":")
	writeJSONString(bw, ev.cat.String())
	switch ev.kind {
	case kindSpan:
		end := ev.end
		if ev.open {
			end = now
		}
		if end < ev.start {
			end = ev.start
		}
		bw.WriteString(",\"ph\":\"X\",\"ts\":")
		writeMicros(bw, ev.start)
		bw.WriteString(",\"dur\":")
		writeMicros(bw, end-ev.start)
	case kindInstant:
		bw.WriteString(",\"ph\":\"i\",\"s\":\"t\",\"ts\":")
		writeMicros(bw, ev.start)
	case kindCounter:
		bw.WriteString(",\"ph\":\"C\",\"ts\":")
		writeMicros(bw, ev.start)
	}
	bw.WriteString(",\"pid\":")
	bw.WriteString(strconv.FormatInt(int64(t.shard), 10))
	bw.WriteString(",\"tid\":")
	bw.WriteString(strconv.FormatInt(int64(ev.track), 10))
	if ev.kind == kindCounter {
		bw.WriteString(",\"args\":{\"value\":")
		bw.WriteString(strconv.FormatFloat(ev.val, 'g', -1, 64))
		bw.WriteString("}}")
		return
	}
	if len(attrIdx) > 0 {
		bw.WriteString(",\"args\":{")
		for i, ai := range attrIdx {
			if i > 0 {
				bw.WriteByte(',')
			}
			a := &t.attrs[ai]
			writeJSONString(bw, a.key)
			bw.WriteByte(':')
			if a.isStr {
				writeJSONString(bw, a.str)
			} else {
				bw.WriteString(strconv.FormatInt(a.num, 10))
			}
		}
		bw.WriteByte('}')
	}
	bw.WriteByte('}')
}

// writeMicros renders a virtual duration as microseconds with fixed
// millisecond-of-a-microsecond precision; nanosecond-granular sim times are
// exact in this representation.
func writeMicros(bw *bufio.Writer, d time.Duration) {
	bw.WriteString(strconv.FormatFloat(float64(d.Nanoseconds())/1e3, 'f', 3, 64))
}

// writeJSONString writes s as a JSON string literal, escaping the minimal
// set required for validity (quotes, backslash, control characters).
func writeJSONString(bw *bufio.Writer, s string) {
	bw.WriteByte('"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			bw.WriteByte('\\')
			bw.WriteByte(c)
		case c < 0x20:
			const hex = "0123456789abcdef"
			bw.WriteString("\\u00")
			bw.WriteByte(hex[c>>4])
			bw.WriteByte(hex[c&0xf])
		default:
			bw.WriteByte(c)
		}
	}
	bw.WriteByte('"')
}
