package obs

import (
	"time"

	"grouter/internal/sim"
)

// catNone marks an inactive category override.
const catNone Category = 0xFF

// Buckets accumulates a request's latency attribution across the
// NumBuckets categories. One Buckets is attached to each stage-instance
// process via UseBuckets; data-plane layers charge time to it with Account
// as the process sleeps through setup, queueing, transfers, retries, and
// migrations. The critical-path breakdown then sums buckets along the chain
// of stage instances that determined the request's end-to-end latency.
type Buckets struct {
	D [NumBuckets]time.Duration
	// override, when set, redirects every Account call to a single bucket.
	// Storage migration uses it so the transfer machinery nested inside an
	// eviction or restore lands in CatMigrate rather than double-reporting
	// as setup/queue/transfer.
	override Category
}

// NewBuckets returns an empty accumulator with no override active.
func NewBuckets() *Buckets { return &Buckets{override: catNone} }

// Reset clears the accumulator for reuse by pooled request state.
func (b *Buckets) Reset() { *b = Buckets{override: catNone} }

// Total returns the sum over all buckets.
func (b *Buckets) Total() time.Duration {
	var sum time.Duration
	for _, d := range b.D {
		sum += d
	}
	return sum
}

// UseBuckets attaches b to the process's accounting slot; pass nil to
// detach.
func UseBuckets(p *sim.Proc, b *Buckets) {
	if b == nil {
		p.Acct = nil
		return
	}
	p.Acct = b
}

// Account charges d of virtual time to the process's bucket for cat. It is
// the hot-path entry point: with no accumulator attached (p.Acct == nil) it
// is a nil check and returns without allocating. Non-positive durations and
// non-bucket categories charge nothing and CatOther respectively.
func Account(p *sim.Proc, cat Category, d time.Duration) {
	if p == nil || p.Acct == nil || d <= 0 {
		return
	}
	b, ok := p.Acct.(*Buckets)
	if !ok {
		return
	}
	if b.override != catNone {
		cat = b.override
	}
	if cat >= NumBuckets {
		cat = CatOther
	}
	b.D[cat] += d
}

// PushOverride redirects subsequent Account calls on the process to cat and
// returns the previous override for PopOverride. With no accumulator
// attached it is a no-op returning catNone.
func PushOverride(p *sim.Proc, cat Category) Category {
	if p == nil || p.Acct == nil {
		return catNone
	}
	b, ok := p.Acct.(*Buckets)
	if !ok {
		return catNone
	}
	prev := b.override
	b.override = cat
	return prev
}

// PopOverride restores the override returned by the matching PushOverride.
func PopOverride(p *sim.Proc, prev Category) {
	if p == nil || p.Acct == nil {
		return
	}
	if b, ok := p.Acct.(*Buckets); ok {
		b.override = prev
	}
}
