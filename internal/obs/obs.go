// Package obs is a deterministic span tracer for the simulator's data plane.
//
// Unlike internal/trace, which loads arrival workloads, obs records what the
// simulator did: spans (start, end, name, category, attrs), instants, and
// counters, all stamped with virtual time from the sim engine and a
// monotonically increasing event sequence. Because virtual time and the
// sequence are both deterministic functions of the simulation inputs, two
// runs of the same configuration produce byte-identical exports.
//
// A tracer is attached to an engine with Attach and recovered anywhere the
// engine is reachable with TracerOf. Every method is safe on a nil *Tracer
// and takes a fixed number of arguments, so the disabled path — the common
// case — is a nil check with zero allocations. Call sites that must build
// attributes or names guard the work with `if tr != nil`.
package obs

import (
	"time"

	"grouter/internal/sim"
)

// Category classifies spans and instants. The first NumBuckets categories
// double as the per-request latency buckets of the critical-path breakdown;
// the rest exist only to lane trace events.
type Category uint8

const (
	// CatSetup is fixed per-hop machinery: path selection, transfer setup,
	// batching, host-stack traversal, map/allocation latencies.
	CatSetup Category = iota
	// CatQueue is time spent waiting for a contended slot: pinned-buffer
	// gates and instance slots.
	CatQueue
	// CatTransfer is time flows spend moving bytes on the fabric.
	CatTransfer
	// CatRetry is backoff and replanning after transfer failures.
	CatRetry
	// CatMigrate is storage-induced data movement: evictions to host,
	// restores to GPU, and crash re-materialization.
	CatMigrate
	// CatCompute is GPU kernel execution.
	CatCompute
	// CatDeferWait is time a request spent parked in the admission
	// controller's delay queue before launching.
	CatDeferWait
	// CatShed is the lifetime of a request dropped by SLO admission control
	// (submission to shed); a shed request has no other buckets.
	CatShed
	// CatOther absorbs request time not attributed to any bucket above.
	CatOther

	// NumBuckets bounds the request-latency bucket categories.
	NumBuckets

	// CatRequest lanes whole-request spans.
	CatRequest
	// CatOp lanes data-plane operations (Get/Put lifecycles).
	CatOp
	// CatFlow lanes network-flow spans and re-rate instants.
	CatFlow
	// CatStore lanes storage events (evict/restore/spill).
	CatStore
	// CatPlace lanes scheduler placement decisions.
	CatPlace
	// CatCounter marks sampled counter series.
	CatCounter
)

var catNames = [...]string{
	CatSetup: "setup", CatQueue: "queue", CatTransfer: "transfer",
	CatRetry: "retry", CatMigrate: "migrate", CatCompute: "compute",
	CatDeferWait: "defer-wait", CatShed: "shed",
	CatOther: "other", NumBuckets: "invalid", CatRequest: "request",
	CatOp: "op", CatFlow: "flow", CatStore: "store", CatPlace: "place",
	CatCounter: "counter",
}

// String returns the category's lowercase name.
func (c Category) String() string {
	if int(c) < len(catNames) {
		return catNames[c]
	}
	return "unknown"
}

// Well-known track (Perfetto thread lane) assignments. Request-scoped spans
// use the request sequence number as their track so each request gets its own
// lane; infrastructure events use the fixed lanes below.
const (
	// TrackMain is the default lane for events with no natural owner.
	TrackMain int32 = 0
	// TrackSched is the scheduler placement lane.
	TrackSched int32 = 1
	// TrackStoreBase + node is the storage lane for a node.
	TrackStoreBase int32 = 100
	// TrackFlowBase + (flow seq % FlowLanes) lanes network flows.
	TrackFlowBase int32 = 1000
	// FlowLanes bounds the number of distinct flow lanes.
	FlowLanes int32 = 64
	// TrackReqBase + (request seq % ReqLanes) lanes request-scoped spans.
	TrackReqBase int32 = 2000
	// ReqLanes bounds the number of distinct request lanes.
	ReqLanes int32 = 256
)

// FlowTrack returns the lane for a network flow sequence number.
func FlowTrack(seq int64) int32 { return TrackFlowBase + int32(seq%int64(FlowLanes)) }

// ReqTrack returns the lane for a request (or consumer) sequence number.
func ReqTrack(seq int64) int32 {
	if seq < 0 {
		seq = -seq
	}
	return TrackReqBase + int32(seq%int64(ReqLanes))
}

// SpanID identifies a recorded event; the zero SpanID is invalid and every
// method accepting one treats it (and a nil tracer) as a no-op.
type SpanID int32

type kind uint8

const (
	kindSpan kind = iota
	kindInstant
	kindCounter
)

type tevent struct {
	kind  kind
	cat   Category
	open  bool // span begun but not ended
	track int32
	name  string
	start time.Duration
	end   time.Duration // spans only
	val   float64       // counters only
	seq   int64
}

type attr struct {
	event SpanID
	key   string
	str   string
	num   int64
	isStr bool
}

// Tracer records deterministic trace events against an engine's virtual
// clock. The zero value is not usable; use Attach. A nil *Tracer is the
// disabled tracer: every method no-ops without allocating.
type Tracer struct {
	e      *sim.Engine
	seq    int64
	shard  int32
	events []tevent
	attrs  []attr
}

// SetShard tags every event this tracer records with a shard identity. The
// tag becomes the Chrome-trace process ID on export, so a sharded run's
// per-shard tracers merge (ExportMerged) into one trace with one process
// lane per shard. Returns the tracer for chaining off Attach.
func (t *Tracer) SetShard(shard int32) *Tracer {
	if t != nil {
		t.shard = shard
	}
	return t
}

// Shard returns the tracer's shard tag (0 unless SetShard was called).
func (t *Tracer) Shard() int32 {
	if t == nil {
		return 0
	}
	return t.shard
}

// Attach creates a tracer, installs it in the engine's Obs slot, and returns
// it. Layers holding the engine recover it with TracerOf.
func Attach(e *sim.Engine) *Tracer {
	t := &Tracer{e: e}
	e.Obs = t
	return t
}

// TracerOf returns the tracer attached to e, or nil when tracing is
// disabled. The nil case costs a nil check and a type assertion — no
// allocation — so hot paths call it unconditionally.
func TracerOf(e *sim.Engine) *Tracer {
	if e == nil || e.Obs == nil {
		return nil
	}
	t, _ := e.Obs.(*Tracer)
	return t
}

// Len returns the number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// BeginOn opens a span on the given track at the current virtual time and
// returns its ID. On a nil tracer it returns 0 without allocating.
func (t *Tracer) BeginOn(track int32, cat Category, name string) SpanID {
	if t == nil {
		return 0
	}
	t.seq++
	t.events = append(t.events, tevent{
		kind: kindSpan, cat: cat, open: true, track: track,
		name: name, start: t.e.Now(), seq: t.seq,
	})
	return SpanID(len(t.events))
}

// Begin opens a span on the main track.
func (t *Tracer) Begin(cat Category, name string) SpanID {
	return t.BeginOn(TrackMain, cat, name)
}

// End closes a span at the current virtual time. Ending an already-closed or
// zero span is a no-op.
func (t *Tracer) End(id SpanID) {
	if t == nil || id <= 0 || int(id) > len(t.events) {
		return
	}
	ev := &t.events[id-1]
	if ev.kind != kindSpan || !ev.open {
		return
	}
	ev.open = false
	ev.end = t.e.Now()
}

// InstantOn records a point event on the given track and returns its ID so
// attributes can be attached.
func (t *Tracer) InstantOn(track int32, cat Category, name string) SpanID {
	if t == nil {
		return 0
	}
	t.seq++
	t.events = append(t.events, tevent{
		kind: kindInstant, cat: cat, track: track,
		name: name, start: t.e.Now(), seq: t.seq,
	})
	return SpanID(len(t.events))
}

// Instant records a point event on the main track.
func (t *Tracer) Instant(cat Category, name string) SpanID {
	return t.InstantOn(TrackMain, cat, name)
}

// Counter records a sampled value of a named series (rendered as a counter
// track in Perfetto).
func (t *Tracer) Counter(name string, v float64) {
	if t == nil {
		return
	}
	t.seq++
	t.events = append(t.events, tevent{
		kind: kindCounter, cat: CatCounter, track: TrackMain,
		name: name, start: t.e.Now(), val: v, seq: t.seq,
	})
}

// SetAttrInt attaches an integer attribute to an event.
func (t *Tracer) SetAttrInt(id SpanID, key string, v int64) {
	if t == nil || id <= 0 || int(id) > len(t.events) {
		return
	}
	t.attrs = append(t.attrs, attr{event: id, key: key, num: v})
}

// SetAttrStr attaches a string attribute to an event.
func (t *Tracer) SetAttrStr(id SpanID, key, v string) {
	if t == nil || id <= 0 || int(id) > len(t.events) {
		return
	}
	t.attrs = append(t.attrs, attr{event: id, key: key, str: v, isStr: true})
}

// Now returns the tracer's engine time (0 on a nil tracer); exported for
// call sites that want to account durations alongside spans.
func (t *Tracer) Now() time.Duration {
	if t == nil {
		return 0
	}
	return t.e.Now()
}
