package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"grouter/internal/sim"
)

func TestAttachAndTracerOf(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	if TracerOf(e) != nil {
		t.Fatal("fresh engine should have no tracer")
	}
	tr := Attach(e)
	if TracerOf(e) != tr {
		t.Fatal("TracerOf did not recover the attached tracer")
	}
	if TracerOf(nil) != nil {
		t.Fatal("TracerOf(nil engine) should be nil")
	}
}

func TestSpanLifecycle(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	tr := Attach(e)
	var id SpanID
	e.Go("worker", func(p *sim.Proc) {
		id = tr.BeginOn(7, CatTransfer, "xfer")
		tr.SetAttrInt(id, "bytes", 1024)
		p.Sleep(time.Millisecond)
		tr.End(id)
	})
	e.Run(0)
	if tr.Len() != 1 {
		t.Fatalf("event count = %d, want 1", tr.Len())
	}
	ev := tr.events[0]
	if ev.open || ev.start != 0 || ev.end != time.Millisecond {
		t.Fatalf("span = %+v, want closed [0, 1ms]", ev)
	}
	if ev.track != 7 || ev.cat != CatTransfer {
		t.Fatalf("span lane/cat = %d/%v", ev.track, ev.cat)
	}
	tr.End(id) // double End is a no-op
	if tr.events[0].end != time.Millisecond {
		t.Fatal("double End changed the span")
	}
}

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	id := tr.BeginOn(1, CatSetup, "x")
	if id != 0 {
		t.Fatalf("nil Begin returned %d, want 0", id)
	}
	tr.End(id)
	tr.SetAttrInt(id, "k", 1)
	tr.SetAttrStr(id, "k", "v")
	tr.Instant(CatFlow, "i")
	tr.Counter("c", 1)
	if tr.Len() != 0 || tr.Now() != 0 {
		t.Fatal("nil tracer should report empty state")
	}
}

// TestDisabledTracerZeroAlloc is the CI allocation guard: the full
// per-flow-event call sequence the data plane performs — recover the tracer
// from the engine, open/close a span, record an instant and a counter, and
// charge bucket accounting — must not allocate when tracing is disabled.
func TestDisabledTracerZeroAlloc(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	p := &sim.Proc{} // detached proc: only the Acct slot is exercised
	allocs := testing.AllocsPerRun(1000, func() {
		tr := TracerOf(e)
		if tr != nil {
			t.Fatal("tracer unexpectedly enabled")
		}
		id := tr.BeginOn(TrackMain, CatFlow, "flow")
		tr.SetAttrInt(id, "bytes", 4096)
		tr.End(id)
		tr.InstantOn(FlowTrack(3), CatFlow, "rerate")
		tr.Counter("flows-active", 1)
		Account(p, CatTransfer, time.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer allocated %.1f per flow event, want 0", allocs)
	}
}

func TestBucketsAccounting(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	var b *Buckets
	e.Go("req", func(p *sim.Proc) {
		b = NewBuckets()
		UseBuckets(p, b)
		Account(p, CatSetup, 2*time.Millisecond)
		Account(p, CatQueue, time.Millisecond)
		Account(p, CatSetup, time.Millisecond)
		Account(p, CatQueue, -time.Second)   // non-positive: ignored
		Account(p, CatRequest, time.Second)  // non-bucket: folds to other
		prev := PushOverride(p, CatMigrate)  // nested migration machinery
		Account(p, CatTransfer, time.Second) // lands in migrate
		PopOverride(p, prev)
		Account(p, CatTransfer, time.Millisecond)
		UseBuckets(p, nil)
		Account(p, CatCompute, time.Hour) // detached: dropped
	})
	e.Run(0)
	want := Buckets{}
	want.D[CatSetup] = 3 * time.Millisecond
	want.D[CatQueue] = time.Millisecond
	want.D[CatOther] = time.Second
	want.D[CatMigrate] = time.Second
	want.D[CatTransfer] = time.Millisecond
	if b.D != want.D {
		t.Fatalf("buckets = %v, want %v", b.D, want.D)
	}
	if b.Total() != 2*time.Second+5*time.Millisecond {
		t.Fatalf("Total = %v", b.Total())
	}
}

func TestOverrideOnDetachedProcIsNoOp(t *testing.T) {
	p := &sim.Proc{}
	if prev := PushOverride(p, CatMigrate); prev != catNone {
		t.Fatalf("PushOverride on detached proc = %v", prev)
	}
	PopOverride(p, catNone) // must not panic
	Account(nil, CatSetup, time.Second)
}

func TestCategoryNames(t *testing.T) {
	for c, want := range map[Category]string{
		CatSetup: "setup", CatQueue: "queue", CatTransfer: "transfer",
		CatRetry: "retry", CatMigrate: "migrate", CatCompute: "compute",
		CatOther: "other", CatRequest: "request", CatFlow: "flow",
		Category(200): "unknown",
	} {
		if got := c.String(); got != want {
			t.Errorf("Category(%d).String() = %q, want %q", c, got, want)
		}
	}
}

// chromeTrace mirrors the envelope Perfetto's JSON importer expects.
type chromeTrace struct {
	TraceEvents []map[string]any `json:"traceEvents"`
	DisplayUnit string           `json:"displayTimeUnit"`
}

func buildSample(t *testing.T) (*sim.Engine, *Tracer) {
	t.Helper()
	e := sim.NewEngine()
	tr := Attach(e)
	e.Go("worker", func(p *sim.Proc) {
		req := tr.BeginOn(2, CatRequest, "req-0")
		tr.SetAttrStr(req, "workflow", "traffic")
		s := tr.Begin(CatTransfer, "xfer a->b")
		tr.SetAttrInt(s, "bytes", 1<<20)
		p.Sleep(1500 * time.Microsecond)
		tr.End(s)
		tr.InstantOn(FlowTrack(0), CatFlow, "rerate")
		tr.Counter("flows-active", 2)
		tr.End(req)
		tr.Begin(CatOp, "open-at-export") // left open deliberately
	})
	e.Run(0)
	return e, tr
}

func TestExportValidChromeJSON(t *testing.T) {
	e, tr := buildSample(t)
	defer e.Close()
	var buf bytes.Buffer
	if err := tr.Export(&buf); err != nil {
		t.Fatalf("Export: %v", err)
	}
	var ct chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &ct); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.Bytes())
	}
	if len(ct.TraceEvents) != 5 {
		t.Fatalf("trace has %d events, want 5", len(ct.TraceEvents))
	}
	phases := map[string]int{}
	for _, ev := range ct.TraceEvents {
		for _, k := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := ev[k]; !ok {
				t.Fatalf("event missing %q: %v", k, ev)
			}
		}
		phases[ev["ph"].(string)]++
		if ev["ph"] == "X" {
			if dur, ok := ev["dur"].(float64); !ok || dur < 0 {
				t.Fatalf("complete event has bad dur: %v", ev)
			}
		}
	}
	if phases["X"] != 3 || phases["i"] != 1 || phases["C"] != 1 {
		t.Fatalf("phase histogram = %v, want 3 X / 1 i / 1 C", phases)
	}
	// The transfer span slept 1.5ms → dur 1500µs, ts in µs.
	if !strings.Contains(buf.String(), "\"dur\":1500.000") {
		t.Errorf("expected 1500.000µs duration in export:\n%s", buf.String())
	}
}

func TestExportDeterministic(t *testing.T) {
	render := func() []byte {
		e, tr := buildSample(t)
		defer e.Close()
		var buf bytes.Buffer
		if err := tr.Export(&buf); err != nil {
			t.Fatalf("Export: %v", err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed exports differ:\n--- a ---\n%s--- b ---\n%s", a, b)
	}
}

func TestExportNilTracerAndEscaping(t *testing.T) {
	var nilTr *Tracer
	var buf bytes.Buffer
	if err := nilTr.Export(&buf); err != nil {
		t.Fatalf("nil Export: %v", err)
	}
	var ct chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &ct); err != nil {
		t.Fatalf("nil export invalid: %v", err)
	}
	if len(ct.TraceEvents) != 0 {
		t.Fatal("nil export should be empty")
	}

	e := sim.NewEngine()
	defer e.Close()
	tr := Attach(e)
	id := tr.Begin(CatOp, "quote\" back\\slash \x01ctl")
	tr.SetAttrStr(id, "k", "a\"b")
	tr.End(id)
	buf.Reset()
	if err := tr.Export(&buf); err != nil {
		t.Fatalf("Export: %v", err)
	}
	var out chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("escaped export invalid: %v\n%s", err, buf.Bytes())
	}
	if got := out.TraceEvents[0]["name"]; got != "quote\" back\\slash \x01ctl" {
		t.Fatalf("name round-trip = %q", got)
	}
}

func TestSetShardAndExportMerged(t *testing.T) {
	mk := func(shard int32, offset time.Duration) (*sim.Engine, *Tracer) {
		e := sim.NewEngine()
		tr := Attach(e).SetShard(shard)
		e.Schedule(offset, func() {
			id := tr.Begin(CatCompute, "work")
			e.Schedule(time.Millisecond, func() { tr.End(id) })
		})
		e.Run(0)
		return e, tr
	}
	e0, t0 := mk(0, 2*time.Millisecond)
	defer e0.Close()
	e1, t1 := mk(1, time.Millisecond)
	defer e1.Close()
	if t0.Shard() != 0 || t1.Shard() != 1 {
		t.Fatalf("shard tags %d/%d, want 0/1", t0.Shard(), t1.Shard())
	}
	var nilTr *Tracer
	if nilTr.SetShard(3).Shard() != 0 {
		t.Fatal("nil tracer SetShard should no-op")
	}
	var buf bytes.Buffer
	if err := ExportMerged(&buf, t0, nil, t1); err != nil {
		t.Fatalf("ExportMerged: %v", err)
	}
	var ct chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &ct); err != nil {
		t.Fatalf("merged export is not valid JSON: %v\n%s", err, buf.Bytes())
	}
	if len(ct.TraceEvents) != 2 {
		t.Fatalf("merged trace has %d events, want 2", len(ct.TraceEvents))
	}
	// Shard 1's span starts earlier, so it must come first; each event's pid
	// is its tracer's shard tag.
	if pid := ct.TraceEvents[0]["pid"].(float64); pid != 1 {
		t.Fatalf("first merged event pid = %v, want 1 (earlier start)", pid)
	}
	if pid := ct.TraceEvents[1]["pid"].(float64); pid != 0 {
		t.Fatalf("second merged event pid = %v, want 0", pid)
	}
	// Single-tracer Export carries the shard tag as pid too.
	var single bytes.Buffer
	if err := t1.Export(&single); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(single.String(), "\"pid\":1") {
		t.Fatalf("single export missing shard pid:\n%s", single.String())
	}
	// Empty merge is a valid trace.
	var empty bytes.Buffer
	if err := ExportMerged(&empty); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(empty.String(), "traceEvents") {
		t.Fatalf("empty merge invalid: %s", empty.String())
	}
}
