package baselines

import (
	"testing"
	"time"

	"grouter/internal/dataplane"
	"grouter/internal/fabric"
	"grouter/internal/sim"
	"grouter/internal/topology"
)

const MB = int64(1) << 20

// exchange runs one warm-up plus one measured Put/Get/Free exchange.
func exchange(t *testing.T, pl dataplane.Plane, e *sim.Engine, src, dst fabric.Location, bytes int64) time.Duration {
	t.Helper()
	var elapsed time.Duration
	e.Go("exchange", func(p *sim.Proc) {
		up := &dataplane.FnCtx{Fn: "up", Workflow: "t", Loc: src}
		down := &dataplane.FnCtx{Fn: "down", Workflow: "t", Loc: dst}
		once := func() {
			ref, err := pl.Put(p, up, bytes)
			if err != nil {
				t.Errorf("Put: %v", err)
				return
			}
			if err := pl.Get(p, down, ref); err != nil {
				t.Errorf("Get: %v", err)
				return
			}
			pl.Free(ref)
		}
		once()
		start := p.Now()
		once()
		elapsed = p.Now() - start
	})
	e.Run(0)
	return elapsed
}

func TestINFlessAlwaysCrossesHost(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	f := fabric.New(e, topology.DGXV100(), 1)
	pl := NewINFless(f)
	loc := fabric.Location{Node: 0, GPU: 2}
	exchange(t, pl, e, loc, loc, 64*MB)
	// Even a same-GPU exchange makes two host copies per round (×2 rounds).
	if got := pl.Stats().Copies; got != 4 {
		t.Errorf("copies = %d, want 4 (D2H+H2D per exchange)", got)
	}
}

func TestINFlessSerializationCost(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	f := fabric.New(e, topology.DGXV100(), 1)
	pl := NewINFless(f)
	src := fabric.Location{Node: 0, GPU: 0}
	dst := fabric.Location{Node: 0, GPU: 1}
	lat := exchange(t, pl, e, src, dst, 120*MB)
	// Two pageable PCIe crossings at 3 GB/s plus two serialization passes
	// at 5 GB/s: at least ~130 ms.
	if lat < 100*time.Millisecond {
		t.Errorf("host-centric exchange of 120 MiB took %v, implausibly fast", lat)
	}
}

func TestINFlessCrossNodeRelaysThroughHosts(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	f := fabric.New(e, topology.DGXV100(), 2)
	pl := NewINFless(f)
	src := fabric.Location{Node: 0, GPU: 0}
	dst := fabric.Location{Node: 1, GPU: 0}
	exchange(t, pl, e, src, dst, 16*MB)
	// Per exchange: D2H, host→host, H2D = 3 copies (×2 rounds).
	if got := pl.Stats().Copies; got != 6 {
		t.Errorf("cross-node copies = %d, want 6", got)
	}
}

func TestNVShmemPlacementAgnostic(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	f := fabric.New(e, topology.DGXV100(), 1)
	pl := NewNVShmem(f, 11)
	src := fabric.Location{Node: 0, GPU: 0}
	dst := fabric.Location{Node: 0, GPU: 3}
	exchange(t, pl, e, src, dst, 64*MB)
	// Put copies to a random store GPU and Get copies out: 2 per exchange.
	if got := pl.Stats().Copies; got != 4 {
		t.Errorf("copies = %d, want 4", got)
	}
	if pl.Name() != "nvshmem+" {
		t.Errorf("name = %s", pl.Name())
	}
}

func TestNVShmemDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) time.Duration {
		e := sim.NewEngine()
		defer e.Close()
		f := fabric.New(e, topology.DGXV100(), 1)
		pl := NewNVShmem(f, seed)
		return exchange(t, pl, e,
			fabric.Location{Node: 0, GPU: 0}, fabric.Location{Node: 0, GPU: 5}, 32*MB)
	}
	if run(5) != run(5) {
		t.Error("same seed gave different latencies")
	}
}

func TestDeepPlanFasterHostTransfers(t *testing.T) {
	lat := func(mk func(f *fabric.Fabric) dataplane.Plane) time.Duration {
		e := sim.NewEngine()
		defer e.Close()
		f := fabric.New(e, topology.DGXV100(), 1)
		return exchange(t, mk(f), e,
			fabric.Location{Node: 0, GPU: fabric.HostGPU}, fabric.Location{Node: 0, GPU: 0}, 256*MB)
	}
	nv := lat(func(f *fabric.Fabric) dataplane.Plane { return NewNVShmem(f, 3) })
	dp := lat(func(f *fabric.Fabric) dataplane.Plane { return NewDeepPlan(f, 3) })
	if !(dp < nv) {
		t.Errorf("deepplan+ host transfer %v not faster than nvshmem+ %v", dp, nv)
	}
}

func TestNVShmemSymmetricPoolsMirrored(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	f := fabric.New(e, topology.DGXV100(), 1)
	pl := NewNVShmem(f, 7)
	// Static symmetric reserve exists on every GPU from the start.
	first := pl.Store(0).Pool(0).Reserved()
	if first == 0 {
		t.Fatal("no static reserve")
	}
	for g := 1; g < 8; g++ {
		if pl.Store(0).Pool(g).Reserved() != first {
			t.Errorf("pool %d not symmetric", g)
		}
	}
}

func TestCrossNodeGetRelays(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	f := fabric.New(e, topology.DGXV100(), 2)
	pl := NewNVShmem(f, 13)
	src := fabric.Location{Node: 0, GPU: 1}
	dst := fabric.Location{Node: 1, GPU: 6}
	exchange(t, pl, e, src, dst, 32*MB)
	// Put copy + cross-node relay + local delivery = 3 copies per exchange.
	if got := pl.Stats().Copies; got < 6 {
		t.Errorf("cross-node copies = %d, want >= 6 over two exchanges", got)
	}
}

func TestGetUnknownRefErrors(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	f := fabric.New(e, topology.DGXV100(), 1)
	for _, pl := range []dataplane.Plane{NewINFless(f), NewNVShmem(f, 1)} {
		pl := pl
		e.Go("bad-get", func(p *sim.Proc) {
			ctx := &dataplane.FnCtx{Fn: "f", Loc: fabric.Location{Node: 0, GPU: 0}}
			if err := pl.Get(p, ctx, dataplane.DataRef{ID: 4242, Bytes: 1}); err == nil {
				t.Errorf("%s: Get of unknown ref should error", pl.Name())
			}
		})
	}
	e.Run(0)
}

func TestPlaneNames(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	f := fabric.New(e, topology.DGXV100(), 1)
	if got := NewINFless(f).Name(); got != "infless+" {
		t.Errorf("Name = %q", got)
	}
	if got := NewDeepPlan(f, 1).Name(); got != "deepplan+" {
		t.Errorf("Name = %q", got)
	}
}

func TestEvictionMigratorPaths(t *testing.T) {
	// Force the NVSHMEM+ store under pressure so its single-link migrator's
	// ToHost path runs.
	e := sim.NewEngine()
	defer e.Close()
	f := fabric.New(e, topology.DGXV100(), 1)
	pl := NewNVShmem(f, 21)
	// Leave just enough room that the static pools bind.
	for _, dev := range f.NodeF(0).GPUs {
		if dev.Free() > 256<<20 {
			if _, err := dev.Alloc(dev.Free() - 256<<20); err != nil {
				t.Fatal(err)
			}
		}
	}
	e.Go("pressure", func(p *sim.Proc) {
		ctx := &dataplane.FnCtx{Fn: "f", Workflow: "wf", Loc: fabric.Location{Node: 0, GPU: 0}}
		var refs []dataplane.DataRef
		for i := 0; i < 72; i++ {
			ref, err := pl.Put(p, ctx, 150<<20)
			if err != nil {
				t.Fatalf("Put %d: %v", i, err)
			}
			refs = append(refs, ref)
		}
		for _, r := range refs {
			pl.Free(r)
		}
	})
	e.Run(0)
	evictions := int64(0)
	st := pl.Store(0)
	evictions = st.Evictions.N + st.Spills.N
	if evictions == 0 {
		t.Error("expected evictions or spills under pressure")
	}
}
