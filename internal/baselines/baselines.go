// Package baselines implements the paper's comparison systems on the same
// simulated fabric as GROUTER:
//
//   - INFless+ — host-centric passing through a host shared-memory store
//     (every gFn exchange crosses PCIe twice, §2.2);
//   - NVSHMEM+ — a GPU-side store on a randomly assigned GPU per object,
//     blind to function placement, single transfer path, static symmetric
//     memory pools with LRU eviction (§3);
//   - DeepPlan+ — NVSHMEM+ plus DeepPlan-style parallel PCIe for gFn-host
//     transfers, without topology awareness (§6 baselines).
//
// All three implement dataplane.Plane, so experiments swap systems freely.
package baselines

import (
	"fmt"
	"math/rand"
	"time"

	"grouter/internal/dataplane"
	"grouter/internal/fabric"
	"grouter/internal/harvest"
	"grouter/internal/memsim"
	"grouter/internal/netsim"
	"grouter/internal/sim"
	"grouter/internal/store"
	"grouter/internal/topology"
	"grouter/internal/xfer"
)

// PinnedAllocLatency is the per-transfer cost of allocating a pinned staging
// buffer; host-centric systems without a shared ring pay it on every PCIe
// crossing.
const PinnedAllocLatency = 300 * time.Microsecond

// SerializeBps is the CPU-side serialization/copy bandwidth of moving a
// tensor through a host shared-memory store (memcpy in, memcpy out, object
// metadata): host-centric planes pay it on both Put and Get.
const SerializeBps = 5e9

// serialize charges the host-store CPU copy for one object.
func serialize(p *sim.Proc, bytes int64) {
	p.Sleep(time.Duration(float64(bytes) / SerializeBps * float64(time.Second)))
}

// deviceCopyBps is intra-GPU device-to-device copy bandwidth (HBM).
const deviceCopyBps = 750e9

// PageableBps is the effective bandwidth of a host-mediated copy through a
// serverless storage layer: a pageable cudaMemcpy plus the shared-memory
// store copy and metadata handling. Measured serverless data planes (SONIC,
// Pheromone) land in the low GB/s; systems without a pinned staging ring
// (INFless+, NVSHMEM+ host spills) are capped here, while DeepPlan+ and
// GROUTER use pinned buffers at full link speed.
const PageableBps = 3e9

// rec tracks one stored object.
type rec struct {
	node    int
	it      *store.Item   // GPU-store object (NVSHMEM+/DeepPlan+)
	hostBlk *memsim.Block // host-store object (INFless+)
	bytes   int64
}

type base struct {
	f      *fabric.Fabric
	x      *xfer.Manager
	recs   map[dataplane.DataID]*rec
	nextID dataplane.DataID
	stats  dataplane.Stats
}

func newBase(f *fabric.Fabric) base {
	return base{f: f, x: xfer.NewManager(f), recs: make(map[dataplane.DataID]*rec)}
}

func (b *base) Stats() *dataplane.Stats { return &b.stats }

// copyOver runs one logical copy over explicit paths. pageable caps the
// transfer at PageableBps (host-mediated copies without pinned staging).
func (b *base) copyOver(p *sim.Proc, label string, bytes int64, hostStack, pageable bool, paths ...[]topology.LinkID) {
	b.stats.Copies++
	b.stats.BytesMoved += bytes
	req := xfer.Request{Label: label, Bytes: bytes, HostStack: hostStack}
	if pageable {
		req.Opt = netsim.Options{MaxRate: PageableBps}
	}
	for _, ls := range paths {
		req.Paths = append(req.Paths, xfer.PathOf(b.f.Net, ls))
	}
	b.x.Transfer(p, req)
}

// localCopy is an intra-device D2D copy (e.g. into a same-GPU symmetric
// heap): no link crossing, HBM bandwidth only.
func (b *base) localCopy(p *sim.Proc, bytes int64) {
	b.stats.Copies++
	b.stats.BytesMoved += bytes
	p.Sleep(time.Duration(float64(bytes) / deviceCopyBps * float64(time.Second)))
}

// --- INFless+ ---

// INFless is the host-centric baseline.
type INFless struct{ base }

var _ dataplane.Plane = (*INFless)(nil)

// NewINFless builds the host-centric plane.
func NewINFless(f *fabric.Fabric) *INFless { return &INFless{base: newBase(f)} }

// Name returns "infless+".
func (pl *INFless) Name() string { return "infless+" }

// Put copies the producer's output into the node's host shared-memory store.
func (pl *INFless) Put(p *sim.Proc, ctx *dataplane.FnCtx, bytes int64) (dataplane.DataRef, error) {
	pl.stats.Puts++
	pl.stats.AddControl(1, 2*time.Microsecond)
	node := ctx.Loc.Node
	blk, err := pl.f.NodeF(node).Host.Alloc(bytes)
	if err != nil {
		return dataplane.DataRef{}, fmt.Errorf("infless+: host store: %w", err)
	}
	if !ctx.Loc.IsHost() {
		p.Sleep(PinnedAllocLatency)
		pl.copyOver(p, "put:"+ctx.Fn, bytes, false, true, pl.f.Topo(node).GPUToHostLinks(ctx.Loc.GPU))
		serialize(p, bytes) // object copied into the shm store
	} else {
		p.Sleep(memsim.PoolAllocLatency)
		serialize(p, bytes) // shm copy within host memory
	}
	pl.nextID++
	pl.recs[pl.nextID] = &rec{node: node, hostBlk: blk, bytes: bytes}
	return dataplane.DataRef{ID: pl.nextID, Bytes: bytes}, nil
}

// Get copies the object from host storage to the consumer.
func (pl *INFless) Get(p *sim.Proc, ctx *dataplane.FnCtx, ref dataplane.DataRef) error {
	r := pl.recs[ref.ID]
	if r == nil {
		return fmt.Errorf("infless+: unknown data id %d", ref.ID)
	}
	pl.stats.Gets++
	pl.stats.AddControl(1, 2*time.Microsecond)
	node := ctx.Loc.Node
	if r.node != node {
		// Remote host store: pull host-to-host over the kernel stack first.
		src := pl.f.Topo(r.node)
		dst := pl.f.Topo(node)
		pl.copyOver(p, "get-net:"+ctx.Fn, r.bytes, true, true,
			[]topology.LinkID{src.NICTx(0), dst.NICRx(0)})
	}
	if ctx.Loc.IsHost() {
		p.Sleep(MapLatencyHost)
		serialize(p, r.bytes) // copy out of the shm store
		return nil
	}
	p.Sleep(PinnedAllocLatency)
	serialize(p, r.bytes) // copy out of the shm store into staging
	pl.copyOver(p, "get:"+ctx.Fn, r.bytes, false, true, pl.f.Topo(node).HostToGPULinks(ctx.Loc.GPU))
	return nil
}

// Free drops the object from the host store.
func (pl *INFless) Free(ref dataplane.DataRef) {
	if r := pl.recs[ref.ID]; r != nil {
		r.hostBlk.Free()
		delete(pl.recs, ref.ID)
	}
}

// MapLatencyHost is a same-host shared-memory attach.
const MapLatencyHost = 5 * time.Microsecond

// --- NVSHMEM+ / DeepPlan+ ---

// NVShmem is the GPU-side storage baseline; DeepPlan selects the enhanced
// variant with parallel (topology-oblivious) PCIe transfers.
type NVShmem struct {
	base
	deepPlan bool
	stores   []*store.Manager
	rng      *rand.Rand
}

var _ dataplane.Plane = (*NVShmem)(nil)

// StaticReserveDefault is the symmetric pool pre-reservation per GPU; the
// paper measures such static pools holding ~4× actual demand.
const StaticReserveDefault = 2 * topology.GB

// NewNVShmem builds the NVSHMEM+ plane.
func NewNVShmem(f *fabric.Fabric, seed int64) *NVShmem { return newGPUStore(f, seed, false) }

// NewDeepPlan builds the DeepPlan+ plane.
func NewDeepPlan(f *fabric.Fabric, seed int64) *NVShmem { return newGPUStore(f, seed, true) }

func newGPUStore(f *fabric.Fabric, seed int64, deepPlan bool) *NVShmem {
	pl := &NVShmem{base: newBase(f), deepPlan: deepPlan, rng: rand.New(rand.NewSource(seed + 2))}
	reserve := min64(StaticReserveDefault, f.Spec().GPUMemBytes/4)
	cfg := store.Config{Elastic: false, Symmetric: true, StaticReserve: reserve, Policy: store.PolicyLRU}
	for n := range f.Nodes {
		pl.stores = append(pl.stores, store.NewManager(f.Engine, f.Nodes[n], &singleLinkMigrator{pl: pl, node: n}, cfg))
	}
	return pl
}

// Name returns "nvshmem+" or "deepplan+".
func (pl *NVShmem) Name() string {
	if pl.deepPlan {
		return "deepplan+"
	}
	return "nvshmem+"
}

// Store returns node n's storage manager (for memory-overhead experiments).
func (pl *NVShmem) Store(n int) *store.Manager { return pl.stores[n] }

// hostMode returns the gFn-host transfer strategy: DeepPlan+ harvests PCIe
// links naively, NVSHMEM+ uses only the local link.
func (pl *NVShmem) hostMode() harvest.Mode {
	if pl.deepPlan {
		return harvest.ModeNaive
	}
	return harvest.ModeOff
}

// Put stores the output on a random GPU of the producer's node — the store
// cannot see function placement (§3.1) — incurring one copy.
func (pl *NVShmem) Put(p *sim.Proc, ctx *dataplane.FnCtx, bytes int64) (dataplane.DataRef, error) {
	pl.stats.Puts++
	pl.stats.AddControl(1, 2*time.Microsecond)
	node := ctx.Loc.Node
	gpu := pl.rng.Intn(pl.f.Spec().NumGPUs)
	it, err := pl.stores[node].Put(p, ctx, gpu, bytes)
	if err != nil {
		return dataplane.DataRef{}, err
	}
	topo := pl.f.Topo(node)
	switch {
	case it.OnHost:
		if !ctx.Loc.IsHost() {
			pl.copyOver(p, "put-spill:"+ctx.Fn, bytes, false, !pl.deepPlan, topo.GPUToHostLinks(ctx.Loc.GPU))
		}
	case ctx.Loc.IsHost():
		// cFn output staged up to the GPU store.
		var paths [][]topology.LinkID
		for _, ls := range harvest.HostToGPUPaths(topo, gpu, pl.hostMode(), pl.f.Net) {
			paths = append(paths, ls)
		}
		pl.copyOver(p, "put:"+ctx.Fn, bytes, false, !pl.deepPlan, paths...)
	case gpu == ctx.Loc.GPU:
		pl.localCopy(p, bytes) // same device: copy into the symmetric heap
	default:
		links, _ := pl.f.SinglePath(ctx.Loc, fabric.Location{Node: node, GPU: gpu})
		pl.copyOver(p, "put:"+ctx.Fn, bytes, false, false, links)
	}
	pl.nextID++
	pl.recs[pl.nextID] = &rec{node: node, it: it, bytes: bytes}
	return dataplane.DataRef{ID: pl.nextID, Bytes: bytes}, nil
}

// Get pulls the object from its store GPU over a single path; cross-node
// objects relay through a store GPU on the consumer's node (Fig. 4).
func (pl *NVShmem) Get(p *sim.Proc, ctx *dataplane.FnCtx, ref dataplane.DataRef) error {
	r := pl.recs[ref.ID]
	if r == nil {
		return fmt.Errorf("%s: unknown data id %d", pl.Name(), ref.ID)
	}
	pl.stats.Gets++
	pl.stats.AddControl(1, 2*time.Microsecond)
	pl.stores[r.node].Touch(r.it, p.Now())

	srcLoc := fabric.Location{Node: r.node, GPU: r.it.GPU}
	if r.it.OnHost {
		srcLoc = fabric.Location{Node: r.node, GPU: fabric.HostGPU}
	}

	if r.node != ctx.Loc.Node {
		// Relay via a store GPU on the consumer's node (functions can only
		// reach local storage), then deliver locally.
		relayGPU := pl.rng.Intn(pl.f.Spec().NumGPUs)
		relay := fabric.Location{Node: ctx.Loc.Node, GPU: relayGPU}
		links, hostStack := pl.f.SinglePath(srcLoc, relay)
		pl.copyOver(p, "get-relay:"+ctx.Fn, r.bytes, hostStack, false, links)
		srcLoc = relay
	}
	return pl.deliverLocal(p, ctx, srcLoc, r.bytes)
}

// deliverLocal moves the object from a location on the consumer's node to
// the consumer.
func (pl *NVShmem) deliverLocal(p *sim.Proc, ctx *dataplane.FnCtx, src fabric.Location, bytes int64) error {
	topo := pl.f.Topo(ctx.Loc.Node)
	switch {
	case src == ctx.Loc:
		if src.IsHost() {
			p.Sleep(MapLatencyHost)
		} else {
			pl.localCopy(p, bytes)
		}
	case src.IsHost() && !ctx.Loc.IsHost():
		var paths [][]topology.LinkID
		for _, ls := range harvest.HostToGPUPaths(topo, ctx.Loc.GPU, pl.hostMode(), pl.f.Net) {
			paths = append(paths, ls)
		}
		pl.copyOver(p, "get:"+ctx.Fn, bytes, false, !pl.deepPlan, paths...)
	case !src.IsHost() && ctx.Loc.IsHost():
		var paths [][]topology.LinkID
		for _, ls := range harvest.GPUToHostPaths(topo, src.GPU, pl.hostMode(), pl.f.Net) {
			paths = append(paths, ls)
		}
		pl.copyOver(p, "get:"+ctx.Fn, bytes, false, !pl.deepPlan, paths...)
	default:
		links, hostStack := pl.f.SinglePath(src, ctx.Loc)
		pl.copyOver(p, "get:"+ctx.Fn, bytes, hostStack, false, links)
	}
	return nil
}

// Free drops the object from its GPU store.
func (pl *NVShmem) Free(ref dataplane.DataRef) {
	if r := pl.recs[ref.ID]; r != nil {
		pl.stores[r.node].Free(r.it)
		delete(pl.recs, ref.ID)
	}
}

// singleLinkMigrator evicts over the local PCIe link only.
type singleLinkMigrator struct {
	pl   *NVShmem
	node int
}

func (m *singleLinkMigrator) ToHost(p *sim.Proc, gpu int, bytes int64) error {
	m.pl.copyOver(p, "migrate-out", bytes, false, !m.pl.deepPlan, m.pl.f.Topo(m.node).GPUToHostLinks(gpu))
	return nil
}

func (m *singleLinkMigrator) ToGPU(p *sim.Proc, gpu int, bytes int64) error {
	m.pl.copyOver(p, "migrate-in", bytes, false, !m.pl.deepPlan, m.pl.f.Topo(m.node).HostToGPULinks(gpu))
	return nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
