// Package harvest implements GROUTER's fine-grained bandwidth harvesting
// (§4.3.1–4.3.2): building parallel link paths that borrow idle PCIe links
// and NICs from peer GPUs, and mapping function SLOs to transfer rate
// constraints.
//
// Two harvesting modes capture the paper's comparison: ModeTopoAware is
// GROUTER (route GPUs must be NVLink neighbors, GPUs sharing a PCIe switch
// are excluded, one route per switch); ModeNaive is DeepPlan-style
// harvesting that ignores topology, so a route GPU without NVLink drags the
// data across the source's own PCIe link twice.
package harvest

import (
	"time"

	"grouter/internal/netsim"
	"grouter/internal/topology"
)

// Mode selects the harvesting strategy.
type Mode int

const (
	// ModeOff uses only the local GPU's own link (NVSHMEM+/INFless+).
	ModeOff Mode = iota
	// ModeNaive harvests peer links without topology awareness (DeepPlan+).
	ModeNaive
	// ModeTopoAware harvests with NVLink-connectivity and PCIe-switch
	// exclusion rules (GROUTER).
	ModeTopoAware
)

// busyFraction is the utilization above which a candidate route link is
// considered occupied and skipped (idle-link harvesting only).
const busyFraction = 0.8

// switchSet is a small-integer set over PCIe switch / NIC / GPU indices
// (all bounded by the per-node GPU count), replacing per-call map
// allocations on the path-building hot path.
type switchSet uint64

func (s *switchSet) add(i int)     { *s |= 1 << uint(i) }
func (s switchSet) has(i int) bool { return s&(1<<uint(i)) != 0 }

// joinLinks concatenates link paths into one exactly-sized slice.
func joinLinks(segs ...[]topology.LinkID) []topology.LinkID {
	n := 0
	for _, s := range segs {
		n += len(s)
	}
	out := make([]topology.LinkID, 0, n)
	for _, s := range segs {
		out = append(out, s...)
	}
	return out
}

// idleIn reports whether a link has meaningful spare capacity.
func idleIn(net *netsim.Network, id topology.LinkID) bool {
	if net == nil {
		return true
	}
	c := net.Capacity(id)
	if c <= 0 {
		return false
	}
	return net.AllocatedOn(id) < busyFraction*c
}

// GPUToHostPaths returns parallel paths for staging data from GPU g to host
// memory. The first path is always g's own PCIe route; harvested routes
// follow. net (optional) filters busy route links.
func GPUToHostPaths(node *topology.Node, g int, mode Mode, net *netsim.Network) [][]topology.LinkID {
	if mode == ModeOff {
		return [][]topology.LinkID{node.GPUToHostLinks(g)}
	}
	spec := node.Spec
	paths := make([][]topology.LinkID, 1, spec.NumGPUs)
	paths[0] = node.GPUToHostLinks(g)
	var usedSwitch switchSet
	usedSwitch.add(spec.PCIeGroup[g])
	for r := 0; r < spec.NumGPUs; r++ {
		if r == g {
			continue
		}
		linked := spec.NVLinkBps(g, r) > 0
		switch mode {
		case ModeTopoAware:
			if !linked {
				continue // no NVLink: borrowing would double-cross g's PCIe
			}
			if usedSwitch.has(spec.PCIeGroup[r]) {
				continue // switch already contributes one uplink
			}
			uplink := node.PCIeSwitchUp(spec.PCIeGroup[r])
			if !idleIn(net, uplink) || !idleIn(net, node.PCIeGPUUp(r)) {
				continue
			}
			usedSwitch.add(spec.PCIeGroup[r])
			paths = append(paths, joinLinks(node.NVLinkPairLinks(g, r), node.GPUToHostLinks(r)))
		case ModeNaive:
			// DeepPlan-style: any peer, reached over NVLink when present and
			// over PCIe peer-to-peer when not (congesting g's own link).
			var path []topology.LinkID
			if linked {
				path = joinLinks(node.NVLinkPairLinks(g, r), node.GPUToHostLinks(r))
			} else {
				path = joinLinks(node.PCIeP2PLinks(g, r), node.GPUToHostLinks(r))
			}
			paths = append(paths, path)
		}
	}
	return paths
}

// HostToGPUPaths mirrors GPUToHostPaths for host→GPU staging.
func HostToGPUPaths(node *topology.Node, g int, mode Mode, net *netsim.Network) [][]topology.LinkID {
	if mode == ModeOff {
		return [][]topology.LinkID{node.HostToGPULinks(g)}
	}
	spec := node.Spec
	paths := make([][]topology.LinkID, 1, spec.NumGPUs)
	paths[0] = node.HostToGPULinks(g)
	var usedSwitch switchSet
	usedSwitch.add(spec.PCIeGroup[g])
	for r := 0; r < spec.NumGPUs; r++ {
		if r == g {
			continue
		}
		linked := spec.NVLinkBps(r, g) > 0
		switch mode {
		case ModeTopoAware:
			if !linked || usedSwitch.has(spec.PCIeGroup[r]) {
				continue
			}
			downlink := node.PCIeSwitchDown(spec.PCIeGroup[r])
			if !idleIn(net, downlink) || !idleIn(net, node.PCIeGPUDown(r)) {
				continue
			}
			usedSwitch.add(spec.PCIeGroup[r])
			paths = append(paths, joinLinks(node.HostToGPULinks(r), node.NVLinkPairLinks(r, g)))
		case ModeNaive:
			var path []topology.LinkID
			if linked {
				path = joinLinks(node.HostToGPULinks(r), node.NVLinkPairLinks(r, g))
			} else {
				path = joinLinks(node.HostToGPULinks(r), node.PCIeP2PLinks(r, g))
			}
			paths = append(paths, path)
		}
	}
	return paths
}

// CrossNodePaths returns GPUDirect-RDMA paths from (src node, sg) to
// (dst node, dg). With ModeOff a single path through the source GPU's
// nearest NIC is returned; harvesting modes add routes through peer GPUs'
// NICs, landing on the same-indexed remote GPU to minimize NUMA hops and
// finishing over NVLink (Fig. 9a).
func CrossNodePaths(src *topology.Node, sg int, dst *topology.Node, dg int, mode Mode, net *netsim.Network) [][]topology.LinkID {
	spec := src.Spec
	own := directNICPath(src, sg, dst, dg)
	if mode == ModeOff {
		return [][]topology.LinkID{own}
	}
	paths := make([][]topology.LinkID, 1, spec.NumGPUs)
	paths[0] = own
	var usedNIC switchSet
	usedNIC.add(spec.GPUNIC[sg])
	// Landing GPUs receive a chunk stream through their own PCIe x16 and
	// forward it to dg over NVLink, so each landing must be distinct or the
	// aggregation collapses onto one link (Fig. 9a aggregates "on the
	// destination GPU via NVLink" from distinct peers).
	var usedLanding switchSet
	usedLanding.add(dg)
	for r := 0; r < spec.NumGPUs; r++ {
		if r == sg {
			continue
		}
		nic := spec.GPUNIC[r]
		if usedNIC.has(nic) {
			continue
		}
		linked := spec.NVLinkBps(sg, r) > 0
		if mode == ModeTopoAware {
			if !linked {
				continue
			}
			if !idleIn(net, src.NICTx(nic)) {
				continue
			}
		}
		// Pick the landing GPU: prefer the same index (NUMA-aligned with
		// the NIC) when it has NVLink to dg, otherwise any unused NVLink
		// neighbor of dg.
		landing := -1
		if r < dst.Spec.NumGPUs && !usedLanding.has(r) &&
			(r == dg || dst.Spec.NVLinkBps(r, dg) > 0) {
			landing = r
		} else if mode == ModeTopoAware {
			for _, cand := range dst.Spec.NVNeighbors(dg) {
				if !usedLanding.has(cand) {
					landing = cand
					break
				}
			}
		} else if r < dst.Spec.NumGPUs {
			landing = r // naive mode lands same-index regardless
		}
		if landing < 0 {
			continue
		}
		usedNIC.add(nic)
		usedLanding.add(landing)
		var hop []topology.LinkID
		if linked {
			hop = src.NVLinkPairLinks(sg, r)
		} else {
			hop = src.PCIeP2PLinks(sg, r)
		}
		var final []topology.LinkID
		if landing != dg {
			if dst.Spec.NVLinkBps(landing, dg) > 0 {
				final = dst.NVLinkPairLinks(landing, dg)
			} else {
				final = dst.PCIeP2PLinks(landing, dg)
			}
		}
		paths = append(paths, joinLinks(hop, src.GPUToNICLinks(r, nic), dst.NICToGPULinks(nic, landing), final))
	}
	return paths
}

// directNICPath is the single-NIC GDR path used by every system's base case.
func directNICPath(src *topology.Node, sg int, dst *topology.Node, dg int) []topology.LinkID {
	nic := src.Spec.GPUNIC[sg]
	rnic := nic
	if rnic >= dst.Spec.NICCount {
		rnic = dst.Spec.NICCount - 1
	}
	return joinLinks(src.GPUToNICLinks(sg, nic), dst.NICToGPULinks(rnic, dg))
}

// Options builds the rate-control constraints for a transfer with the given
// SLO slack: a Rate_least floor and a priority tier so idle bandwidth goes
// to the tightest SLO first (§4.3.2).
func Options(bytes int64, slo, inferLatency time.Duration) netsim.Options {
	if slo <= 0 {
		return netsim.Options{}
	}
	budget := slo - inferLatency
	if budget <= 0 {
		budget = time.Millisecond
	}
	return netsim.Options{
		MinRate:  float64(bytes) / budget.Seconds(),
		Priority: Priority(budget),
	}
}

// Priority maps SLO slack to a netsim priority tier: tighter slack → higher
// tier. Slacks of a second or more share tier 0.
func Priority(slack time.Duration) int {
	switch {
	case slack <= 0:
		return 64
	case slack >= time.Second:
		return 0
	default:
		// Logarithmic buckets between 1ms (tier ~10) and 1s (tier 0).
		tier := 0
		for d := time.Second; d > slack && tier < 64; d /= 2 {
			tier++
		}
		return tier
	}
}
