package harvest

import (
	"testing"
	"time"

	"grouter/internal/netsim"
	"grouter/internal/sim"
	"grouter/internal/topology"
)

func v100Node() *topology.Node { return topology.NewCluster(topology.DGXV100(), 1).Node(0) }

func TestGPUToHostOffSinglePath(t *testing.T) {
	paths := GPUToHostPaths(v100Node(), 1, ModeOff, nil)
	if len(paths) != 1 {
		t.Fatalf("ModeOff paths = %d, want 1", len(paths))
	}
}

func TestGPUToHostTopoAwareRules(t *testing.T) {
	n := v100Node()
	paths := GPUToHostPaths(n, 0, ModeTopoAware, nil)
	if len(paths) < 2 {
		t.Fatalf("topo-aware harvesting found %d paths, want > 1", len(paths))
	}
	// GPU 1 shares GPU 0's PCIe switch: no path may route through its x16
	// uplink (n0.pcie.g1.up).
	for _, p := range paths {
		for _, id := range p {
			if id == n.PCIeGPUUp(1) {
				t.Errorf("switch-sharing GPU 1 used as route: %v", p)
			}
		}
	}
	// At most one path per PCIe switch uplink.
	seen := map[topology.LinkID]int{}
	for _, p := range paths {
		for _, id := range p {
			if id == n.PCIeSwitchUp(0) || id == n.PCIeSwitchUp(1) ||
				id == n.PCIeSwitchUp(2) || id == n.PCIeSwitchUp(3) {
				seen[id]++
			}
		}
	}
	for id, c := range seen {
		if c > 1 {
			t.Errorf("switch uplink %s used by %d paths", id, c)
		}
	}
	// Route GPUs must be NVLink neighbors of 0 ({1,2,3,4} minus switch rules).
	for _, p := range paths[1:] {
		first := p[0]
		if first != n.NVLinkTo(0, 2) && first != n.NVLinkTo(0, 3) && first != n.NVLinkTo(0, 4) {
			t.Errorf("route path starts with %s, not an NVLink hop from 0", first)
		}
	}
}

func TestGPUToHostNaiveUsesUnlinkedPeers(t *testing.T) {
	n := v100Node()
	paths := GPUToHostPaths(n, 0, ModeNaive, nil)
	// Naive mode harvests every GPU: 8 paths (own + 7 peers).
	if len(paths) != 8 {
		t.Fatalf("naive paths = %d, want 8", len(paths))
	}
	// Some route path must cross GPU 0's own PCIe link twice-ish — i.e. a
	// PCIe P2P prefix (0 has no NVLink to 5, 6, 7).
	doubled := false
	for _, p := range paths[1:] {
		if p[0] == n.PCIeGPUUp(0) {
			doubled = true
		}
	}
	if !doubled {
		t.Error("naive harvesting should drag data over the source's own PCIe for unlinked peers")
	}
}

func TestHostToGPUMirrors(t *testing.T) {
	n := v100Node()
	up := GPUToHostPaths(n, 2, ModeTopoAware, nil)
	down := HostToGPUPaths(n, 2, ModeTopoAware, nil)
	if len(up) != len(down) {
		t.Errorf("up %d paths vs down %d paths", len(up), len(down))
	}
	// Down paths end with an NVLink hop into GPU 2 (routes) or GPU 2's x16.
	for _, p := range down {
		last := p[len(p)-1]
		if last != n.PCIeGPUDown(2) && last != n.NVLinkTo(0, 2) && last != n.NVLinkTo(1, 2) &&
			last != n.NVLinkTo(3, 2) && last != n.NVLinkTo(6, 2) {
			t.Errorf("down path ends with %s", last)
		}
	}
}

func TestBusyLinksExcluded(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	cl := topology.NewCluster(topology.DGXV100(), 1)
	n := cl.Node(0)
	net := netsim.New(e, cl.Links())
	free := GPUToHostPaths(n, 0, ModeTopoAware, net)
	// Saturate GPU 2's switch uplink (switch 1).
	e.Go("hog", func(p *sim.Proc) {
		net.Start("hog", []topology.LinkID{n.PCIeSwitchUp(1)}, 1e12, netsim.Options{})
		p.Sleep(time.Millisecond)
		busy := GPUToHostPaths(n, 0, ModeTopoAware, net)
		if len(busy) >= len(free) {
			t.Errorf("busy uplink not excluded: %d paths vs %d when idle", len(busy), len(free))
		}
	})
	e.Run(10 * time.Millisecond)
}

func TestCrossNodeSingleVsMultiNIC(t *testing.T) {
	cl := topology.NewCluster(topology.DGXV100(), 2)
	a, b := cl.Node(0), cl.Node(1)
	single := CrossNodePaths(a, 0, b, 0, ModeOff, nil)
	if len(single) != 1 {
		t.Fatalf("ModeOff cross-node paths = %d, want 1", len(single))
	}
	multi := CrossNodePaths(a, 0, b, 0, ModeTopoAware, nil)
	if len(multi) < 2 {
		t.Fatalf("multi-NIC paths = %d, want several", len(multi))
	}
	// Each path must use a distinct NIC tx.
	seen := map[topology.LinkID]bool{}
	for _, p := range multi {
		for _, id := range p {
			for k := 0; k < 4; k++ {
				if id == a.NICTx(k) {
					if seen[id] {
						t.Errorf("NIC %s reused", id)
					}
					seen[id] = true
				}
			}
		}
	}
}

func TestCrossNodeH800UsesEightNICs(t *testing.T) {
	cl := topology.NewCluster(topology.H800x8(), 2)
	paths := CrossNodePaths(cl.Node(0), 0, cl.Node(1), 0, ModeTopoAware, nil)
	if len(paths) != 8 {
		t.Errorf("H800 multi-NIC paths = %d, want 8", len(paths))
	}
}

func TestOptionsRateFloor(t *testing.T) {
	opt := Options(100<<20, 100*time.Millisecond, 60*time.Millisecond)
	// 100 MiB over 40ms slack → ≥ 2.6 GB/s.
	want := float64(100<<20) / 0.04
	if opt.MinRate < want*0.99 || opt.MinRate > want*1.01 {
		t.Errorf("MinRate = %.0f, want %.0f", opt.MinRate, want)
	}
	if opt.Priority <= 0 {
		t.Errorf("Priority = %d, want > 0 for 40ms slack", opt.Priority)
	}
	if got := Options(100, 0, 0); got.MinRate != 0 || got.Priority != 0 {
		t.Errorf("no-SLO options = %+v, want zero", got)
	}
}

func TestPriorityMonotone(t *testing.T) {
	slacks := []time.Duration{2 * time.Second, 500 * time.Millisecond, 50 * time.Millisecond, 5 * time.Millisecond, 0}
	prev := -1
	for _, s := range slacks {
		pr := Priority(s)
		if pr < prev {
			t.Errorf("Priority(%v) = %d not monotone (prev %d)", s, pr, prev)
		}
		prev = pr
	}
	if Priority(time.Minute) != 0 {
		t.Errorf("huge slack priority = %d, want 0", Priority(time.Minute))
	}
}
