package scheduler

import (
	"testing"

	"grouter/internal/fabric"
	"grouter/internal/topology"
	"grouter/internal/workflow"
)

func place(t *testing.T, spec *topology.Spec, nodes int, wf *workflow.Workflow, opt Options) Placement {
	t.Helper()
	p := NewPlacer(topology.NewCluster(spec, nodes))
	return p.Place(wf, opt)
}

func TestEveryInstancePlaced(t *testing.T) {
	for _, wf := range workflow.Suite() {
		pl := place(t, topology.DGXV100(), 1, wf, Options{Node: -1})
		want := 0
		for _, s := range wf.Stages {
			want += s.ReplicaCount()
		}
		if len(pl) != want {
			t.Errorf("%s: placed %d instances, want %d", wf.Name, len(pl), want)
		}
		for si, loc := range pl {
			s := wf.Stage(si.Stage)
			if s.IsGPU() && loc.IsHost() {
				t.Errorf("%s: gFn %v on host", wf.Name, si)
			}
			if !s.IsGPU() && !loc.IsHost() {
				t.Errorf("%s: cFn %v on GPU", wf.Name, si)
			}
		}
	}
}

func TestMAPAPrefersConnectedPairs(t *testing.T) {
	wf := workflow.Driving()
	pl := place(t, topology.DGXV100(), 1, wf, Options{Node: -1, Strategy: MAPA})
	spec := topology.DGXV100()
	den := pl[StageInst{"denoise", 0}]
	seg := pl[StageInst{"segmentation", 0}]
	if den.GPU != seg.GPU && spec.NVLinkBps(den.GPU, seg.GPU) == 0 {
		t.Errorf("MAPA placed heavy edge on unconnected pair %d,%d", den.GPU, seg.GPU)
	}
}

func TestSplitAcrossNodes(t *testing.T) {
	wf := workflow.Driving()
	pl := place(t, topology.DGXV100(), 2, wf, Options{Node: -1, SplitAcrossNodes: true})
	nodes := map[int]bool{}
	for _, loc := range pl {
		nodes[loc.Node] = true
	}
	if len(nodes) < 2 {
		t.Errorf("split placement used %d nodes, want 2", len(nodes))
	}
}

func TestLoadBalancingAcrossApps(t *testing.T) {
	p := NewPlacer(topology.NewCluster(topology.DGXV100(), 2))
	for i := 0; i < 8; i++ {
		p.Place(workflow.Image(), Options{Node: -1})
	}
	// Both nodes should have received work.
	if p.nodeLoad(0) == 0 || p.nodeLoad(1) == 0 {
		t.Errorf("load not spread: node0=%d node1=%d", p.nodeLoad(0), p.nodeLoad(1))
	}
}

func TestReplicasSpread(t *testing.T) {
	wf := workflow.Video()
	pl := place(t, topology.DGXV100(), 1, wf, Options{Node: -1})
	gpus := map[int]int{}
	for si, loc := range pl {
		if si.Stage == "face-det" {
			gpus[loc.GPU]++
		}
	}
	if len(gpus) < 3 {
		t.Errorf("face-det replicas on only %d GPUs: %v", len(gpus), gpus)
	}
}

func TestRoundRobinAndRandomStrategies(t *testing.T) {
	wf := workflow.Image()
	rr := place(t, topology.DGXV100(), 1, wf, Options{Node: -1, Strategy: RoundRobin})
	rd1 := place(t, topology.DGXV100(), 1, wf, Options{Node: -1, Strategy: Random, Seed: 1})
	rd2 := place(t, topology.DGXV100(), 1, wf, Options{Node: -1, Strategy: Random, Seed: 1})
	if len(rr) != len(rd1) {
		t.Errorf("strategies placed different instance counts")
	}
	// Random is deterministic per seed.
	for si, loc := range rd1 {
		if rd2[si] != loc {
			t.Errorf("random placement not deterministic at %v", si)
		}
	}
}

// TestPlaceDeterministic re-places the replica-heavy video workflow ten
// times on fresh placers and requires bit-identical placements. The placer
// walks Go maps internally (placement state, edge weights); any iteration-
// order dependence would show up here as run-to-run drift, which would break
// replay reproducibility downstream.
func TestPlaceDeterministic(t *testing.T) {
	wf := workflow.Video()
	opts := []Options{
		{Node: -1},
		{Node: -1, Strategy: MAPA},
		{Node: 0, SplitAcrossNodes: true},
	}
	for _, opt := range opts {
		ref := place(t, topology.DGXV100(), 2, wf, opt)
		for run := 1; run < 10; run++ {
			got := place(t, topology.DGXV100(), 2, wf, opt)
			if len(got) != len(ref) {
				t.Fatalf("opt %+v run %d: %d instances, want %d", opt, run, len(got), len(ref))
			}
			for si, loc := range ref {
				if got[si] != loc {
					t.Fatalf("opt %+v run %d: %v placed at %v, want %v", opt, run, si, got[si], loc)
				}
			}
		}
	}
}

func TestPinnedNode(t *testing.T) {
	wf := workflow.Driving()
	pl := place(t, topology.DGXV100(), 3, wf, Options{Node: 2})
	for si, loc := range pl {
		if loc.Node != 2 {
			t.Errorf("instance %v on node %d, want pinned node 2", si, loc.Node)
		}
	}
}

func TestPlaceSingleFitPrefersHomeNode(t *testing.T) {
	p := NewPlacer(topology.NewCluster(topology.DGXV100(), 2))
	plenty := func(fabric.Location) int64 { return 1 << 40 }
	seen := map[int]bool{}
	for i := 0; i < topology.DGXV100().NumGPUs; i++ {
		loc := p.PlaceSingleFit(0, 1<<20, plenty)
		if loc.Node != 0 {
			t.Fatalf("placement %d left home node with memory available: %+v", i, loc)
		}
		if seen[loc.GPU] {
			t.Fatalf("GPU %d assigned twice while others are empty", loc.GPU)
		}
		seen[loc.GPU] = true
	}
}

func TestPlaceSingleFitCrossNodeFallback(t *testing.T) {
	p := NewPlacer(topology.NewCluster(topology.DGXV100(), 3))
	// Home node 0 is memory-starved; node 2 is made busier than node 1, so
	// the fallback must pick node 1 (least loaded first).
	for g := 0; g < 4; g++ {
		p.PlaceSingleFit(2, 0, nil)
	}
	free := func(l fabric.Location) int64 {
		if l.Node == 0 {
			return 1 << 20
		}
		return 1 << 40
	}
	loc := p.PlaceSingleFit(0, 1<<30, free)
	if loc.Node != 1 {
		t.Fatalf("saturated-home placement landed on node %d, want least-loaded fallback node 1", loc.Node)
	}
}

func TestPlaceSingleFitNoFitFallsBackHome(t *testing.T) {
	// No GPU anywhere fits: provisioning must still return a home-node GPU
	// (the least-bad device) rather than fail.
	p := NewPlacer(topology.NewCluster(topology.DGXV100(), 2))
	none := func(fabric.Location) int64 { return 0 }
	loc := p.PlaceSingleFit(1, 1<<30, none)
	if loc.Node != 1 || loc.IsHost() {
		t.Fatalf("no-fit fallback = %+v, want a home-node GPU", loc)
	}
}

func TestPlaceSingleDelegatesToFit(t *testing.T) {
	// PlaceSingle must keep its legacy behavior: identical pick sequence to
	// the memory-blind PlaceSingleFit.
	a := NewPlacer(topology.NewCluster(topology.DGXV100(), 1))
	b := NewPlacer(topology.NewCluster(topology.DGXV100(), 1))
	for i := 0; i < 12; i++ {
		if got, want := a.PlaceSingle(0), b.PlaceSingleFit(0, 0, nil); got != want {
			t.Fatalf("pick %d: PlaceSingle %+v != PlaceSingleFit %+v", i, got, want)
		}
	}
}

func TestUnplaceReleasesLoad(t *testing.T) {
	p := NewPlacer(topology.NewCluster(topology.DGXV100(), 1))
	first := p.PlaceSingle(0)
	p.PlaceSingle(0)
	p.Unplace(first)
	// The released GPU is the least-loaded again and is reused next.
	if got := p.PlaceSingle(0); got != first {
		t.Fatalf("after Unplace, next placement = %+v, want reuse of %+v", got, first)
	}
	// Host unplace is a no-op; double-unplace must not go negative.
	p.Unplace(fabric.Location{Node: 0, GPU: fabric.HostGPU})
	p.Unplace(first)
	p.Unplace(first)
	if got := p.PlaceSingle(0); got != first {
		t.Fatalf("negative load skewed placement: got %+v", got)
	}
}
