package scheduler

import (
	"testing"

	"grouter/internal/topology"
	"grouter/internal/workflow"
)

func place(t *testing.T, spec *topology.Spec, nodes int, wf *workflow.Workflow, opt Options) Placement {
	t.Helper()
	p := NewPlacer(topology.NewCluster(spec, nodes))
	return p.Place(wf, opt)
}

func TestEveryInstancePlaced(t *testing.T) {
	for _, wf := range workflow.Suite() {
		pl := place(t, topology.DGXV100(), 1, wf, Options{Node: -1})
		want := 0
		for _, s := range wf.Stages {
			want += s.ReplicaCount()
		}
		if len(pl) != want {
			t.Errorf("%s: placed %d instances, want %d", wf.Name, len(pl), want)
		}
		for si, loc := range pl {
			s := wf.Stage(si.Stage)
			if s.IsGPU() && loc.IsHost() {
				t.Errorf("%s: gFn %v on host", wf.Name, si)
			}
			if !s.IsGPU() && !loc.IsHost() {
				t.Errorf("%s: cFn %v on GPU", wf.Name, si)
			}
		}
	}
}

func TestMAPAPrefersConnectedPairs(t *testing.T) {
	wf := workflow.Driving()
	pl := place(t, topology.DGXV100(), 1, wf, Options{Node: -1, Strategy: MAPA})
	spec := topology.DGXV100()
	den := pl[StageInst{"denoise", 0}]
	seg := pl[StageInst{"segmentation", 0}]
	if den.GPU != seg.GPU && spec.NVLinkBps(den.GPU, seg.GPU) == 0 {
		t.Errorf("MAPA placed heavy edge on unconnected pair %d,%d", den.GPU, seg.GPU)
	}
}

func TestSplitAcrossNodes(t *testing.T) {
	wf := workflow.Driving()
	pl := place(t, topology.DGXV100(), 2, wf, Options{Node: -1, SplitAcrossNodes: true})
	nodes := map[int]bool{}
	for _, loc := range pl {
		nodes[loc.Node] = true
	}
	if len(nodes) < 2 {
		t.Errorf("split placement used %d nodes, want 2", len(nodes))
	}
}

func TestLoadBalancingAcrossApps(t *testing.T) {
	p := NewPlacer(topology.NewCluster(topology.DGXV100(), 2))
	for i := 0; i < 8; i++ {
		p.Place(workflow.Image(), Options{Node: -1})
	}
	// Both nodes should have received work.
	if p.nodeLoad(0) == 0 || p.nodeLoad(1) == 0 {
		t.Errorf("load not spread: node0=%d node1=%d", p.nodeLoad(0), p.nodeLoad(1))
	}
}

func TestReplicasSpread(t *testing.T) {
	wf := workflow.Video()
	pl := place(t, topology.DGXV100(), 1, wf, Options{Node: -1})
	gpus := map[int]int{}
	for si, loc := range pl {
		if si.Stage == "face-det" {
			gpus[loc.GPU]++
		}
	}
	if len(gpus) < 3 {
		t.Errorf("face-det replicas on only %d GPUs: %v", len(gpus), gpus)
	}
}

func TestRoundRobinAndRandomStrategies(t *testing.T) {
	wf := workflow.Image()
	rr := place(t, topology.DGXV100(), 1, wf, Options{Node: -1, Strategy: RoundRobin})
	rd1 := place(t, topology.DGXV100(), 1, wf, Options{Node: -1, Strategy: Random, Seed: 1})
	rd2 := place(t, topology.DGXV100(), 1, wf, Options{Node: -1, Strategy: Random, Seed: 1})
	if len(rr) != len(rd1) {
		t.Errorf("strategies placed different instance counts")
	}
	// Random is deterministic per seed.
	for si, loc := range rd1 {
		if rd2[si] != loc {
			t.Errorf("random placement not deterministic at %v", si)
		}
	}
}

// TestPlaceDeterministic re-places the replica-heavy video workflow ten
// times on fresh placers and requires bit-identical placements. The placer
// walks Go maps internally (placement state, edge weights); any iteration-
// order dependence would show up here as run-to-run drift, which would break
// replay reproducibility downstream.
func TestPlaceDeterministic(t *testing.T) {
	wf := workflow.Video()
	opts := []Options{
		{Node: -1},
		{Node: -1, Strategy: MAPA},
		{Node: 0, SplitAcrossNodes: true},
	}
	for _, opt := range opts {
		ref := place(t, topology.DGXV100(), 2, wf, opt)
		for run := 1; run < 10; run++ {
			got := place(t, topology.DGXV100(), 2, wf, opt)
			if len(got) != len(ref) {
				t.Fatalf("opt %+v run %d: %d instances, want %d", opt, run, len(got), len(ref))
			}
			for si, loc := range ref {
				if got[si] != loc {
					t.Fatalf("opt %+v run %d: %v placed at %v, want %v", opt, run, si, got[si], loc)
				}
			}
		}
	}
}

func TestPinnedNode(t *testing.T) {
	wf := workflow.Driving()
	pl := place(t, topology.DGXV100(), 3, wf, Options{Node: 2})
	for si, loc := range pl {
		if loc.Node != 2 {
			t.Errorf("instance %v on node %d, want pinned node 2", si, loc.Node)
		}
	}
}
