// Package scheduler places workflow function instances onto cluster GPUs.
// The default strategy follows MAPA (§5): communicating GPU-function pairs
// are assigned, heaviest data edge first, to GPU pairs with the best NVLink
// connectivity, balancing instance load across devices. Round-robin and
// random strategies exist for comparison and for placement-agnostic
// experiments.
package scheduler

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"grouter/internal/fabric"
	"grouter/internal/obs"
	"grouter/internal/topology"
	"grouter/internal/workflow"
)

// Strategy selects a placement algorithm.
type Strategy int

const (
	// MAPA places communicating pairs on well-connected GPUs.
	MAPA Strategy = iota
	// RoundRobin spreads instances over GPUs in order.
	RoundRobin
	// Random places instances uniformly at random (seeded).
	Random
)

// StageInst identifies one replica of one stage.
type StageInst struct {
	Stage   string
	Replica int
}

func (si StageInst) String() string { return fmt.Sprintf("%s#%d", si.Stage, si.Replica) }

// Placement maps stage instances to physical locations.
type Placement map[StageInst]fabric.Location

// Options tune one Place call.
type Options struct {
	// Node pins the app to a node; -1 picks the least-loaded node.
	Node int
	// SplitAcrossNodes distributes consecutive GPU stages over all nodes
	// (the "functions distributed across nodes" setting of Fig. 13/15).
	SplitAcrossNodes bool
	Strategy         Strategy
	Seed             int64
}

// Placer assigns locations and tracks accumulated load for balancing across
// multiple deployed apps.
type Placer struct {
	cluster *topology.Cluster
	load    [][]int // [node][gpu] assigned instance count
	// Trace, when non-nil, records placement decisions as trace events. The
	// placer has no engine reference of its own, so the owning cluster wires
	// the tracer in explicitly.
	Trace *obs.Tracer
}

// NewPlacer builds a placer over the cluster.
func NewPlacer(c *topology.Cluster) *Placer {
	p := &Placer{cluster: c}
	for range c.Nodes {
		p.load = append(p.load, make([]int, c.Spec.NumGPUs))
	}
	return p
}

// nodeLoad sums a node's GPU load.
func (p *Placer) nodeLoad(n int) int {
	t := 0
	for _, l := range p.load[n] {
		t += l
	}
	return t
}

// leastLoadedNode picks the node with minimum load (lowest index on ties).
func (p *Placer) leastLoadedNode() int {
	best := 0
	for n := 1; n < len(p.load); n++ {
		if p.nodeLoad(n) < p.nodeLoad(best) {
			best = n
		}
	}
	return best
}

// leastLoadedGPU picks a GPU on node n (lowest index on ties), optionally
// restricted to a candidate set.
func (p *Placer) leastLoadedGPU(n int, among []int) int {
	if among == nil {
		among = make([]int, p.cluster.Spec.NumGPUs)
		for i := range among {
			among[i] = i
		}
	}
	best := among[0]
	for _, g := range among[1:] {
		if p.load[n][g] < p.load[n][best] {
			best = g
		}
	}
	return best
}

// Place assigns every stage instance of wf a location.
func (p *Placer) Place(wf *workflow.Workflow, opt Options) Placement {
	out := Placement{}
	node := opt.Node
	if node < 0 {
		node = p.leastLoadedNode()
	}
	rng := rand.New(rand.NewSource(opt.Seed + 11))

	// cFns run on their node's host.
	var gpuInsts []StageInst
	instNode := map[StageInst]int{}
	nodeCursor := node
	for _, s := range wf.Stages {
		for r := 0; r < s.ReplicaCount(); r++ {
			si := StageInst{Stage: s.Name, Replica: r}
			n := node
			if opt.SplitAcrossNodes && len(p.load) > 1 {
				n = nodeCursor
				nodeCursor = (nodeCursor + 1) % len(p.load)
			}
			instNode[si] = n
			if !s.IsGPU() {
				out[si] = fabric.Location{Node: n, GPU: fabric.HostGPU}
				continue
			}
			gpuInsts = append(gpuInsts, si)
		}
	}

	switch opt.Strategy {
	case RoundRobin:
		for _, si := range gpuInsts {
			n := instNode[si]
			g := p.leastLoadedGPU(n, nil)
			out[si] = fabric.Location{Node: n, GPU: g}
			p.load[n][g]++
		}
	case Random:
		for _, si := range gpuInsts {
			n := instNode[si]
			g := rng.Intn(p.cluster.Spec.NumGPUs)
			out[si] = fabric.Location{Node: n, GPU: g}
			p.load[n][g]++
		}
	default:
		p.placeMAPA(wf, gpuInsts, instNode, out)
	}
	if p.Trace != nil {
		// Walk the stage list (not the placement map) so the emitted
		// decision order is deterministic.
		span := p.Trace.BeginOn(obs.TrackSched, obs.CatPlace, "place:"+wf.Name)
		for _, s := range wf.Stages {
			for r := 0; r < s.ReplicaCount(); r++ {
				si := StageInst{Stage: s.Name, Replica: r}
				loc, ok := out[si]
				if !ok {
					continue
				}
				ev := p.Trace.InstantOn(obs.TrackSched, obs.CatPlace, si.String())
				p.Trace.SetAttrInt(ev, "node", int64(loc.Node))
				p.Trace.SetAttrInt(ev, "gpu", int64(loc.GPU))
			}
		}
		p.Trace.End(span)
	}
	return out
}

// PlaceSingle provisions one additional GPU instance on node n, on the
// least-loaded GPU (used by the cluster autoscaler).
func (p *Placer) PlaceSingle(n int) fabric.Location {
	return p.PlaceSingleFit(n, 0, nil)
}

// PlaceSingleFit provisions one additional GPU instance, preferring the home
// node: the least-loaded GPU there whose reported free memory covers need.
// When no home GPU fits, other nodes are scanned in ascending-load order
// (hierarchical control plane: local decision first, cross-node fallback
// under saturation), and when no GPU anywhere fits it falls back to the home
// node's least-loaded GPU — provisioning never fails outright, it just lands
// on the least-bad device. A nil free func (or need <= 0) skips the memory
// check entirely, reproducing PlaceSingle.
func (p *Placer) PlaceSingleFit(home int, need int64, free func(fabric.Location) int64) fabric.Location {
	pick := func(n int) (int, bool) {
		best, ok := -1, false
		for g := 0; g < p.cluster.Spec.NumGPUs; g++ {
			if need > 0 && free != nil && free(fabric.Location{Node: n, GPU: g}) < need {
				continue
			}
			if !ok || p.load[n][g] < p.load[n][best] {
				best, ok = g, true
			}
		}
		return best, ok
	}
	node, g, ok := home, -1, false
	if g, ok = pick(home); !ok {
		// Home node saturated: try the remaining nodes, least loaded first
		// (lowest index on ties), so replicas spread instead of piling onto
		// one overflow node.
		order := make([]int, 0, len(p.load)-1)
		for n := range p.load {
			if n != home {
				order = append(order, n)
			}
		}
		sort.SliceStable(order, func(a, b int) bool { return p.nodeLoad(order[a]) < p.nodeLoad(order[b]) })
		for _, n := range order {
			if g, ok = pick(n); ok {
				node = n
				break
			}
		}
	}
	if !ok {
		node, g = home, p.leastLoadedGPU(home, nil)
	}
	p.load[node][g]++
	if p.Trace != nil {
		ev := p.Trace.InstantOn(obs.TrackSched, obs.CatPlace, "scale-up")
		p.Trace.SetAttrInt(ev, "node", int64(node))
		p.Trace.SetAttrInt(ev, "gpu", int64(g))
		p.Trace.SetAttrInt(ev, "home", int64(home))
	}
	return fabric.Location{Node: node, GPU: g}
}

// Unplace releases one assigned instance's load share (the elastic pool
// layer calls it when a drained replica is torn down, so the placer's
// balancing state tracks the live fleet, not its high-water mark).
func (p *Placer) Unplace(loc fabric.Location) {
	if loc.IsHost() {
		return
	}
	if p.load[loc.Node][loc.GPU] > 0 {
		p.load[loc.Node][loc.GPU]--
	}
}

// edge is one producer→consumer instance pair with its data volume.
type edge struct {
	from, to StageInst
	bytes    int64
}

// instanceEdges expands the stage DAG into instance-level edges (pairwise
// for equal replica counts, broadcast/fan-in otherwise).
func instanceEdges(wf *workflow.Workflow) []edge {
	var out []edge
	for _, s := range wf.Stages {
		for _, dn := range s.Deps {
			d := wf.Stage(dn)
			bytes := workflow.EdgeBytes(d, wf.Batch)
			sr, dr := s.ReplicaCount(), d.ReplicaCount()
			if sr == dr && sr > 1 {
				for r := 0; r < sr; r++ {
					out = append(out, edge{from: StageInst{dn, r}, to: StageInst{s.Name, r}, bytes: bytes})
				}
				continue
			}
			for i := 0; i < dr; i++ {
				for j := 0; j < sr; j++ {
					out = append(out, edge{from: StageInst{dn, i}, to: StageInst{s.Name, j}, bytes: bytes})
				}
			}
		}
	}
	// Heaviest first; deterministic tie-break.
	sort.SliceStable(out, func(i, j int) bool { return out[i].bytes > out[j].bytes })
	return out
}

// placeMAPA greedily co-locates heavy-edge pairs on well-connected GPUs.
func (p *Placer) placeMAPA(wf *workflow.Workflow, gpuInsts []StageInst,
	instNode map[StageInst]int, out Placement) {

	isGPUInst := map[StageInst]bool{}
	for _, si := range gpuInsts {
		isGPUInst[si] = true
	}
	spec := p.cluster.Spec

	// bestPeer returns the GPU with the strongest NVLink to g, least loaded.
	bestPeer := func(n, g int) int {
		best, bestScore := (g+1)%spec.NumGPUs, math.Inf(-1)
		for cand := 0; cand < spec.NumGPUs; cand++ {
			if cand == g {
				continue
			}
			score := spec.NVLinkBps(g, cand) - float64(p.load[n][cand])*1e9
			if score > bestScore {
				best, bestScore = cand, score
			}
		}
		return best
	}

	for _, e := range instanceEdges(wf) {
		gFrom, gTo := isGPUInst[e.from], isGPUInst[e.to]
		if !gFrom && !gTo {
			continue
		}
		nFrom, nTo := instNode[e.from], instNode[e.to]
		_, fromPlaced := out[e.from]
		_, toPlaced := out[e.to]
		switch {
		case gFrom && gTo && !fromPlaced && !toPlaced && nFrom == nTo:
			// Pick the least-loaded strongest NVLink pair.
			bi, bj, bScore := 0, 1%spec.NumGPUs, math.Inf(-1)
			for i := 0; i < spec.NumGPUs; i++ {
				for j := 0; j < spec.NumGPUs; j++ {
					if i == j {
						continue
					}
					score := spec.NVLinkBps(i, j) - float64(p.load[nFrom][i]+p.load[nFrom][j])*1e9
					if score > bScore {
						bi, bj, bScore = i, j, score
					}
				}
			}
			out[e.from] = fabric.Location{Node: nFrom, GPU: bi}
			out[e.to] = fabric.Location{Node: nFrom, GPU: bj}
			p.load[nFrom][bi]++
			p.load[nFrom][bj]++
		case gFrom && !fromPlaced:
			g := p.leastLoadedGPU(nFrom, nil)
			if gTo && toPlaced && out[e.to].Node == nFrom && !out[e.to].IsHost() {
				g = bestPeer(nFrom, out[e.to].GPU)
			}
			out[e.from] = fabric.Location{Node: nFrom, GPU: g}
			p.load[nFrom][g]++
		}
		if gTo && !toPlaced {
			g := p.leastLoadedGPU(nTo, nil)
			if gFrom {
				if loc, ok := out[e.from]; ok && loc.Node == nTo && !loc.IsHost() {
					g = bestPeer(nTo, loc.GPU)
				}
			}
			out[e.to] = fabric.Location{Node: nTo, GPU: g}
			p.load[nTo][g]++
		}
	}
	// Isolated GPU instances (no edges).
	for _, si := range gpuInsts {
		if _, ok := out[si]; !ok {
			n := instNode[si]
			g := p.leastLoadedGPU(n, nil)
			out[si] = fabric.Location{Node: n, GPU: g}
			p.load[n][g]++
		}
	}
}
