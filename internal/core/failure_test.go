package core

import (
	"testing"

	"grouter/internal/dataplane"
	"grouter/internal/fabric"
	"grouter/internal/sim"
	"grouter/internal/topology"
)

// exhaustHost leaves only `leave` bytes of host memory on node n.
func exhaustHost(t *testing.T, f *fabric.Fabric, n int, leave int64) {
	t.Helper()
	host := f.NodeF(n).Host
	if _, err := host.Alloc(host.Free() - leave); err != nil {
		t.Fatal(err)
	}
}

func TestPutFailsWhenHostAndGPUExhausted(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	f := fabric.New(e, topology.DGXV100(), 1)
	pl := New(f, FullConfig())
	// Squeeze every GPU to nothing and host to almost nothing: a large Put
	// can neither be stored on GPU nor spilled.
	for _, dev := range f.NodeF(0).GPUs {
		if _, err := dev.Alloc(dev.Free()); err != nil {
			t.Fatal(err)
		}
	}
	exhaustHost(t, f, 0, 1<<20)
	e.Go("oom", func(p *sim.Proc) {
		ctx := &dataplane.FnCtx{Fn: "f", Workflow: "wf", Loc: fabric.Location{Node: 0, GPU: 0}}
		if _, err := pl.Put(p, ctx, 256<<20); err == nil {
			t.Error("Put with no memory anywhere should fail")
		}
	})
	e.Run(0)
}

func TestPutSpillsWhenOnlyGPUExhausted(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	f := fabric.New(e, topology.DGXV100(), 1)
	pl := New(f, FullConfig())
	for _, dev := range f.NodeF(0).GPUs {
		if _, err := dev.Alloc(dev.Free()); err != nil {
			t.Fatal(err)
		}
	}
	e.Go("spill", func(p *sim.Proc) {
		prod := &dataplane.FnCtx{Fn: "f", Workflow: "wf", Loc: fabric.Location{Node: 0, GPU: 0}}
		ref, err := pl.Put(p, prod, 64<<20)
		if err != nil {
			t.Errorf("Put should spill to host, got %v", err)
			return
		}
		// The consumer still reads the data (from host, over PCIe).
		cons := &dataplane.FnCtx{Fn: "g", Workflow: "wf", Loc: fabric.Location{Node: 0, GPU: 3}}
		if err := pl.Get(p, cons, ref); err != nil {
			t.Errorf("Get of spilled data: %v", err)
		}
		pl.Free(ref)
	})
	e.Run(0)
	if f.NodeF(0).Host.Used() != 0 {
		t.Errorf("host bytes leaked after Free: %d", f.NodeF(0).Host.Used())
	}
}

func TestFreeUnknownRefIsNoop(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	f := fabric.New(e, topology.DGXV100(), 1)
	pl := New(f, FullConfig())
	pl.Free(dataplane.DataRef{ID: 9999, Bytes: 1}) // must not panic
}

func TestNoMemoryLeakAcrossManyExchanges(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	f := fabric.New(e, topology.DGXV100(), 1)
	pl := New(f, FullConfig())
	e.Go("loop", func(p *sim.Proc) {
		prod := &dataplane.FnCtx{Fn: "up", Workflow: "wf", Loc: fabric.Location{Node: 0, GPU: 0}}
		cons := &dataplane.FnCtx{Fn: "down", Workflow: "wf", Loc: fabric.Location{Node: 0, GPU: 1}}
		for i := 0; i < 200; i++ {
			ref, err := pl.Put(p, prod, 32<<20)
			if err != nil {
				t.Errorf("Put %d: %v", i, err)
				return
			}
			if err := pl.Get(p, cons, ref); err != nil {
				t.Errorf("Get %d: %v", i, err)
				return
			}
			pl.Free(ref)
		}
	})
	e.Run(0)
	if used := pl.Store(0).TotalUsed(); used != 0 {
		t.Errorf("storage leaks %d bytes after 200 exchanges", used)
	}
	if len(pl.recs) != 0 {
		t.Errorf("%d records leaked", len(pl.recs))
	}
}

func TestStatsAccumulateSanely(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	f := fabric.New(e, topology.DGXV100(), 1)
	pl := New(f, FullConfig())
	e.Go("stats", func(p *sim.Proc) {
		prod := &dataplane.FnCtx{Fn: "up", Workflow: "wf", Loc: fabric.Location{Node: 0, GPU: 0}}
		cons := &dataplane.FnCtx{Fn: "down", Workflow: "wf", Loc: fabric.Location{Node: 0, GPU: 2}}
		for i := 0; i < 5; i++ {
			ref, _ := pl.Put(p, prod, 8<<20)
			_ = pl.Get(p, cons, ref)
			pl.Free(ref)
		}
	})
	e.Run(0)
	st := pl.Stats()
	if st.Puts != 5 || st.Gets != 5 {
		t.Errorf("puts/gets = %d/%d, want 5/5", st.Puts, st.Gets)
	}
	if st.Copies != 5 {
		t.Errorf("copies = %d, want 5 (one per Get)", st.Copies)
	}
	if st.BytesMoved != 5*(8<<20) {
		t.Errorf("bytes moved = %d", st.BytesMoved)
	}
	if st.ControlOps == 0 || st.ControlCPU <= 0 {
		t.Error("control-plane accounting empty")
	}
}
