package core

import (
	"testing"
	"time"

	"grouter/internal/dataplane"
	"grouter/internal/fabric"
	"grouter/internal/sim"
	"grouter/internal/topology"
)

// moveLatency measures one warm Put+Get between two locations under full
// GROUTER on the given spec.
func moveLatency(t *testing.T, spec *topology.Spec, nodes int, src, dst fabric.Location, bytes int64) (time.Duration, dataplane.Stats) {
	t.Helper()
	e := sim.NewEngine()
	defer e.Close()
	f := fabric.New(e, spec, nodes)
	pl := New(f, FullConfig())
	var elapsed time.Duration
	e.Go("move", func(p *sim.Proc) {
		up := &dataplane.FnCtx{Fn: "up", Workflow: "wf", Loc: src}
		down := &dataplane.FnCtx{Fn: "down", Workflow: "wf", Loc: dst}
		once := func() {
			ref, err := pl.Put(p, up, bytes)
			if err != nil {
				t.Errorf("Put: %v", err)
				return
			}
			if err := pl.Get(p, down, ref); err != nil {
				t.Errorf("Get: %v", err)
				return
			}
			pl.Free(ref)
		}
		once()
		start := p.Now()
		once()
		elapsed = p.Now() - start
	})
	e.Run(0)
	return elapsed, *pl.Stats()
}

// TestDispatchAllPatterns exercises every branch of move(): each pattern the
// data plane supports must complete and leave no residue.
func TestDispatchAllPatterns(t *testing.T) {
	host0 := fabric.Location{Node: 0, GPU: fabric.HostGPU}
	host1 := fabric.Location{Node: 1, GPU: fabric.HostGPU}
	cases := []struct {
		name     string
		src, dst fabric.Location
		nodes    int
	}{
		{"same gpu", fabric.Location{Node: 0, GPU: 2}, fabric.Location{Node: 0, GPU: 2}, 1},
		{"nvlink pair", fabric.Location{Node: 0, GPU: 0}, fabric.Location{Node: 0, GPU: 3}, 1},
		{"weak pair (indirect nvlink)", fabric.Location{Node: 0, GPU: 0}, fabric.Location{Node: 0, GPU: 5}, 1},
		{"gpu to local host", fabric.Location{Node: 0, GPU: 1}, host0, 1},
		{"local host to gpu", host0, fabric.Location{Node: 0, GPU: 1}, 1},
		{"cross-node gpus", fabric.Location{Node: 0, GPU: 0}, fabric.Location{Node: 1, GPU: 7}, 2},
		{"host to remote gpu", host0, fabric.Location{Node: 1, GPU: 3}, 2},
		{"gpu to remote host", fabric.Location{Node: 0, GPU: 3}, host1, 2},
		{"host to remote host", host0, host1, 2},
	}
	for _, c := range cases {
		lat, st := moveLatency(t, topology.DGXV100(), c.nodes, c.src, c.dst, 32<<20)
		if lat <= 0 {
			t.Errorf("%s: zero latency", c.name)
		}
		if st.Puts != 2 || st.Gets != 2 {
			t.Errorf("%s: puts/gets = %d/%d", c.name, st.Puts, st.Gets)
		}
	}
}

// TestDispatchOrderingSanity encodes physical sense: same-GPU < NVLink <
// PCIe p2p (weak pair beats PCIe via multipath NVLink) < cross-node.
func TestDispatchOrderingSanity(t *testing.T) {
	const bytes = 128 << 20
	same, _ := moveLatency(t, topology.DGXV100(), 1, fabric.Location{Node: 0, GPU: 2}, fabric.Location{Node: 0, GPU: 2}, bytes)
	nv, _ := moveLatency(t, topology.DGXV100(), 1, fabric.Location{Node: 0, GPU: 0}, fabric.Location{Node: 0, GPU: 3}, bytes)
	weak, _ := moveLatency(t, topology.DGXV100(), 1, fabric.Location{Node: 0, GPU: 0}, fabric.Location{Node: 0, GPU: 5}, bytes)
	cross, _ := moveLatency(t, topology.DGXV100(), 2, fabric.Location{Node: 0, GPU: 0}, fabric.Location{Node: 1, GPU: 7}, bytes)
	if !(same < nv && nv <= weak && weak < cross) {
		t.Errorf("ordering violated: same=%v nvlink=%v weak=%v cross=%v", same, nv, weak, cross)
	}
}

// TestSwitchedFabricDispatch runs key patterns on the NVSwitch topology.
func TestSwitchedFabricDispatch(t *testing.T) {
	lat, st := moveLatency(t, topology.DGXA100(), 1, fabric.Location{Node: 0, GPU: 1}, fabric.Location{Node: 0, GPU: 6}, 256<<20)
	if st.Copies != 2 { // one per measured+warmup exchange
		t.Errorf("copies = %d, want 2", st.Copies)
	}
	// 256 MiB at 300 GB/s ≈ 0.9 ms plus overheads.
	if lat > 3*time.Millisecond {
		t.Errorf("NVSwitch transfer took %v, want ~1ms", lat)
	}
}

// TestH800Dispatch covers the LLM testbed spec through the generic plane.
func TestH800Dispatch(t *testing.T) {
	lat, _ := moveLatency(t, topology.H800x8(), 2, fabric.Location{Node: 0, GPU: 0}, fabric.Location{Node: 1, GPU: 0}, 512<<20)
	if lat <= 0 || lat > 200*time.Millisecond {
		t.Errorf("H800 cross-node transfer = %v", lat)
	}
}
