package core

import (
	"errors"
	"testing"
	"time"

	"grouter/internal/dataplane"
	"grouter/internal/fabric"
	"grouter/internal/metrics"
	"grouter/internal/sim"
	"grouter/internal/topology"
)

func coalesceConfig() Config {
	cfg := FullConfig()
	cfg.Coalesce = true
	return cfg
}

// coalesceRig builds a 2-node DGX-V100 fabric with a coalescing plane and a
// producer on node 0, GPU 0.
type coalesceRig struct {
	e    *sim.Engine
	f    *fabric.Fabric
	pl   *Plane
	prod *dataplane.FnCtx
}

func newCoalesceRig(t *testing.T, cfg Config) *coalesceRig {
	t.Helper()
	e := sim.NewEngine()
	t.Cleanup(e.Close)
	f := fabric.New(e, topology.DGXV100(), 2)
	return &coalesceRig{
		e:  e,
		f:  f,
		pl: New(f, cfg),
		prod: &dataplane.FnCtx{
			Fn: "producer", Workflow: "wf",
			Loc: fabric.Location{Node: 0, GPU: 0},
		},
	}
}

func consumerAt(n, g int) *dataplane.FnCtx {
	return &dataplane.FnCtx{
		Fn: "consumer", Workflow: "wf",
		Loc: fabric.Location{Node: n, GPU: g},
	}
}

// TestCoalesceJoinDedup: two consumers on the same GPU racing for the same
// object share one transfer — one copy moves, the second Get joins it.
func TestCoalesceJoinDedup(t *testing.T) {
	rig := newCoalesceRig(t, coalesceConfig())
	var ref dataplane.DataRef
	rig.e.Go("produce", func(p *sim.Proc) {
		var err error
		if ref, err = rig.pl.Put(p, rig.prod, 64*MB); err != nil {
			t.Errorf("Put: %v", err)
		}
	})
	for i := 0; i < 2; i++ {
		delay := time.Millisecond + time.Duration(i)*50*time.Microsecond
		rig.e.Go("consume", func(p *sim.Proc) {
			p.Sleep(delay)
			if err := rig.pl.Get(p, consumerAt(0, 4), ref); err != nil {
				t.Errorf("Get: %v", err)
			}
		})
	}
	rig.e.Run(0)
	st := rig.pl.Stats()
	if st.Coalesce.Joined != 1 {
		t.Errorf("Joined = %d, want 1", st.Coalesce.Joined)
	}
	if st.Copies != 1 {
		t.Errorf("Copies = %d, want 1 (second Get must not move bytes)", st.Copies)
	}
	if st.BytesMoved != 64*MB {
		t.Errorf("BytesMoved = %d, want %d", st.BytesMoved, 64*MB)
	}
}

// TestCoalesceChain: while the first cross-node consumer's transfer is in
// flight, a second consumer on the same remote node chains off it: the
// producer's NIC carries the payload once, and the second hop rides NVLink.
func TestCoalesceChain(t *testing.T) {
	rig := newCoalesceRig(t, coalesceConfig())
	var ref dataplane.DataRef
	rig.e.Go("produce", func(p *sim.Proc) {
		var err error
		if ref, err = rig.pl.Put(p, rig.prod, 256*MB); err != nil {
			t.Errorf("Put: %v", err)
		}
	})
	for i := 0; i < 2; i++ {
		gpu := i
		delay := time.Millisecond + time.Duration(i)*100*time.Microsecond
		rig.e.Go("consume", func(p *sim.Proc) {
			p.Sleep(delay)
			if err := rig.pl.Get(p, consumerAt(1, gpu), ref); err != nil {
				t.Errorf("Get(gpu %d): %v", gpu, err)
			}
		})
	}
	rig.e.Run(0)
	st := rig.pl.Stats()
	if st.Coalesce.Chained != 1 {
		t.Errorf("Chained = %d, want 1", st.Coalesce.Chained)
	}
	if st.Coalesce.OriginBytes != 256*MB {
		t.Errorf("OriginBytes = %d, want %d (producer link pays once)", st.Coalesce.OriginBytes, 256*MB)
	}
	if st.Coalesce.ReplicaBytes != 256*MB {
		t.Errorf("ReplicaBytes = %d, want %d (second hop off the replica)", st.Coalesce.ReplicaBytes, 256*MB)
	}
}

// TestCoalesceReplicaHit: a consumer arriving after a remote replica is
// resident pulls from the replica over NVLink, not from the cross-node
// primary.
func TestCoalesceReplicaHit(t *testing.T) {
	rig := newCoalesceRig(t, coalesceConfig())
	var ref dataplane.DataRef
	rig.e.Go("flow", func(p *sim.Proc) {
		var err error
		if ref, err = rig.pl.Put(p, rig.prod, 64*MB); err != nil {
			t.Fatalf("Put: %v", err)
		}
		if err := rig.pl.Get(p, consumerAt(1, 0), ref); err != nil {
			t.Fatalf("Get #1: %v", err)
		}
		if rig.pl.replicas.Count(ref.ID) != 1 {
			t.Fatalf("replica not registered after first Get")
		}
		if err := rig.pl.Get(p, consumerAt(1, 3), ref); err != nil {
			t.Fatalf("Get #2: %v", err)
		}
	})
	rig.e.Run(0)
	st := rig.pl.Stats()
	if st.Coalesce.ReplicaHits != 1 {
		t.Errorf("ReplicaHits = %d, want 1", st.Coalesce.ReplicaHits)
	}
	if st.Coalesce.OriginGets != 1 {
		t.Errorf("OriginGets = %d, want 1", st.Coalesce.OriginGets)
	}
	if st.Coalesce.OriginBytes != 64*MB || st.Coalesce.ReplicaBytes != 64*MB {
		t.Errorf("byte split = origin %d / replica %d, want %d / %d",
			st.Coalesce.OriginBytes, st.Coalesce.ReplicaBytes, 64*MB, 64*MB)
	}
}

// TestCoalesceLocalReplica: a second Get on a GPU that already holds a
// replica is a zero-copy map.
func TestCoalesceLocalReplica(t *testing.T) {
	rig := newCoalesceRig(t, coalesceConfig())
	rig.e.Go("flow", func(p *sim.Proc) {
		ref, err := rig.pl.Put(p, rig.prod, 64*MB)
		if err != nil {
			t.Fatalf("Put: %v", err)
		}
		if err := rig.pl.Get(p, consumerAt(1, 0), ref); err != nil {
			t.Fatalf("Get #1: %v", err)
		}
		copies := rig.pl.Stats().Copies
		if err := rig.pl.Get(p, consumerAt(1, 0), ref); err != nil {
			t.Fatalf("Get #2: %v", err)
		}
		if rig.pl.Stats().Copies != copies {
			t.Errorf("local replica hit moved bytes: %d copies", rig.pl.Stats().Copies-copies)
		}
		if rig.pl.Stats().Coalesce.LocalHits != 1 {
			t.Errorf("LocalHits = %d, want 1", rig.pl.Stats().Coalesce.LocalHits)
		}
	})
	rig.e.Run(0)
}

// TestCoalesceFreeDropsReplicas: freeing the object destroys every replica
// and its backing cache item; the store ends the run empty.
func TestCoalesceFreeDropsReplicas(t *testing.T) {
	rig := newCoalesceRig(t, coalesceConfig())
	rig.e.Go("flow", func(p *sim.Proc) {
		ref, err := rig.pl.Put(p, rig.prod, 64*MB)
		if err != nil {
			t.Fatalf("Put: %v", err)
		}
		for _, c := range []*dataplane.FnCtx{consumerAt(0, 2), consumerAt(1, 1)} {
			if err := rig.pl.Get(p, c, ref); err != nil {
				t.Fatalf("Get: %v", err)
			}
		}
		if rig.pl.replicas.Count(ref.ID) != 2 {
			t.Fatalf("replicas = %d, want 2", rig.pl.replicas.Count(ref.ID))
		}
		rig.pl.Free(ref)
		if rig.pl.replicas.Len() != 0 || len(rig.pl.caches) != 0 {
			t.Errorf("Free left replicas behind: registry %d, caches %d",
				rig.pl.replicas.Len(), len(rig.pl.caches))
		}
		if used := rig.pl.Store(0).TotalUsed() + rig.pl.Store(1).TotalUsed(); used != 0 {
			t.Errorf("stores hold %d bytes after Free", used)
		}
		if err := rig.pl.Get(p, consumerAt(0, 2), ref); !errors.Is(err, dataplane.ErrNotFound) {
			t.Errorf("Get after Free = %v, want ErrNotFound", err)
		}
	})
	rig.e.Run(0)
}

// TestCoalesceCrashDropsReplicas: a crash on a GPU holding a replica
// invalidates it, and the next consumer on that node falls back to the
// origin.
func TestCoalesceCrashDropsReplicas(t *testing.T) {
	rig := newCoalesceRig(t, coalesceConfig())
	rig.e.Go("flow", func(p *sim.Proc) {
		ref, err := rig.pl.Put(p, rig.prod, 64*MB)
		if err != nil {
			t.Fatalf("Put: %v", err)
		}
		if err := rig.pl.Get(p, consumerAt(1, 0), ref); err != nil {
			t.Fatalf("Get: %v", err)
		}
		rig.pl.CrashGPU(1, 0)
		if rig.pl.replicas.Count(ref.ID) != 0 {
			t.Fatalf("crashed replica still registered")
		}
		before := rig.pl.Stats().Coalesce.OriginGets
		if err := rig.pl.Get(p, consumerAt(1, 1), ref); err != nil {
			t.Fatalf("Get after crash: %v", err)
		}
		if got := rig.pl.Stats().Coalesce.OriginGets; got != before+1 {
			t.Errorf("OriginGets = %d, want %d (must fall back to origin)", got, before+1)
		}
	})
	rig.e.Run(0)
}

// TestCoalesceCrashedPrimaryServedByReplica: when the primary GPU crashes but
// a replica survives elsewhere, the next Get is served from the replica with
// no re-materialization.
func TestCoalesceCrashedPrimaryServedByReplica(t *testing.T) {
	rig := newCoalesceRig(t, coalesceConfig())
	rig.e.Go("flow", func(p *sim.Proc) {
		ref, err := rig.pl.Put(p, rig.prod, 64*MB)
		if err != nil {
			t.Fatalf("Put: %v", err)
		}
		if err := rig.pl.Get(p, consumerAt(0, 2), ref); err != nil {
			t.Fatalf("Get: %v", err)
		}
		remat := metrics.Faults().Rematerialized.Load()
		rig.pl.CrashGPU(0, 0) // takes the primary, leaves the GPU-2 replica
		if err := rig.pl.Get(p, consumerAt(0, 5), ref); err != nil {
			t.Fatalf("Get after primary crash: %v", err)
		}
		if got := metrics.Faults().Rematerialized.Load(); got != remat {
			t.Errorf("Get re-materialized despite a live replica")
		}
		if rig.pl.Stats().Coalesce.ReplicaHits != 1 {
			t.Errorf("ReplicaHits = %d, want 1", rig.pl.Stats().Coalesce.ReplicaHits)
		}
	})
	rig.e.Run(0)
}

// TestCoalesceGetUnknownID: Get of a never-Put id reports ErrNotFound both
// with and without coalescing.
func TestCoalesceGetUnknownID(t *testing.T) {
	for _, cfg := range []Config{FullConfig(), coalesceConfig()} {
		rig := newCoalesceRig(t, cfg)
		rig.e.Go("get", func(p *sim.Proc) {
			err := rig.pl.Get(p, consumerAt(0, 1), dataplane.DataRef{ID: 999, Bytes: MB})
			if !errors.Is(err, dataplane.ErrNotFound) {
				t.Errorf("%s: Get unknown id = %v, want ErrNotFound", rig.pl.Name(), err)
			}
		})
		rig.e.Run(0)
	}
}

// TestCoalesceFanoutDeterminism runs an 8-way fan-out twice and demands
// byte-identical outcomes: same stats, same virtual end time.
func TestCoalesceFanoutDeterminism(t *testing.T) {
	run := func() (dataplane.Stats, time.Duration) {
		e := sim.NewEngine()
		defer e.Close()
		f := fabric.New(e, topology.DGXV100(), 2)
		pl := New(f, coalesceConfig())
		prod := &dataplane.FnCtx{Fn: "producer", Workflow: "wf", Loc: fabric.Location{Node: 0, GPU: 0}}
		var ref dataplane.DataRef
		e.Go("produce", func(p *sim.Proc) {
			var err error
			if ref, err = pl.Put(p, prod, 128*MB); err != nil {
				t.Errorf("Put: %v", err)
			}
		})
		for i := 0; i < 8; i++ {
			n, g := i%2, 1+i/2
			delay := time.Millisecond + time.Duration(i)*37*time.Microsecond
			e.Go("consume", func(p *sim.Proc) {
				p.Sleep(delay)
				if err := pl.Get(p, consumerAt(n, g), ref); err != nil {
					t.Errorf("Get: %v", err)
				}
			})
		}
		e.Run(0)
		return *pl.Stats(), e.Now()
	}
	s1, t1 := run()
	s2, t2 := run()
	if s1 != s2 {
		t.Errorf("stats differ between identical runs:\n  %+v\n  %+v", s1, s2)
	}
	if t1 != t2 {
		t.Errorf("virtual end time differs: %v vs %v", t1, t2)
	}
}

// TestCoalesceFanoutBeatsNaive is the tentpole's acceptance property at unit
// scale: for an 8-way same-object fan-out, coalescing must cut the bytes the
// producer GPU's links carry versus the naive plane, and must not regress
// total latency.
func TestCoalesceFanoutBeatsNaive(t *testing.T) {
	run := func(cfg Config) (origin int64, moved int64, elapsed time.Duration) {
		e := sim.NewEngine()
		defer e.Close()
		f := fabric.New(e, topology.DGXV100(), 2)
		pl := New(f, cfg)
		prod := &dataplane.FnCtx{Fn: "producer", Workflow: "wf", Loc: fabric.Location{Node: 0, GPU: 0}}
		var ref dataplane.DataRef
		e.Go("produce", func(p *sim.Proc) {
			var err error
			if ref, err = pl.Put(p, prod, 128*MB); err != nil {
				t.Errorf("Put: %v", err)
			}
		})
		for i := 0; i < 8; i++ {
			n, g := i%2, 1+i/2
			delay := time.Millisecond + time.Duration(i)*20*time.Microsecond
			e.Go("consume", func(p *sim.Proc) {
				p.Sleep(delay)
				if err := pl.Get(p, consumerAt(n, g), ref); err != nil {
					t.Errorf("Get: %v", err)
				}
			})
		}
		e.Run(0)
		st := pl.Stats()
		if cfg.Coalesce {
			origin = st.Coalesce.OriginBytes
		} else {
			origin = st.BytesMoved // naive: every Get pulls from the producer
		}
		return origin, st.BytesMoved, e.Now()
	}
	naiveOrigin, _, naiveEnd := run(FullConfig())
	coOrigin, _, coEnd := run(coalesceConfig())
	if coOrigin*2 > naiveOrigin {
		t.Errorf("origin bytes %d not halved vs naive %d", coOrigin, naiveOrigin)
	}
	if coEnd > naiveEnd {
		t.Errorf("coalesced fan-out slower: %v vs naive %v", coEnd, naiveEnd)
	}
}
