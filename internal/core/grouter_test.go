package core

import (
	"testing"
	"time"

	"grouter/internal/baselines"
	"grouter/internal/dataplane"
	"grouter/internal/fabric"
	"grouter/internal/sim"
	"grouter/internal/topology"
)

const MB = int64(1) << 20

// passData runs a warm-up exchange and then `rounds` measured Put+Get
// exchanges between src and dst, returning the mean data-passing latency and
// the stats accumulated over the measured rounds only.
func passDataN(t *testing.T, mk func(f *fabric.Fabric) dataplane.Plane, spec *topology.Spec, nodes int,
	src, dst fabric.Location, bytes int64, rounds int) (time.Duration, dataplane.Stats) {
	t.Helper()
	e := sim.NewEngine()
	defer e.Close()
	f := fabric.New(e, spec, nodes)
	pl := mk(f)
	var elapsed time.Duration
	var stats dataplane.Stats
	e.Go("pass", func(p *sim.Proc) {
		prod := &dataplane.FnCtx{Fn: "up", Workflow: "wf", Loc: src}
		cons := &dataplane.FnCtx{Fn: "down", Workflow: "wf", Loc: dst}
		once := func() bool {
			ref, err := pl.Put(p, prod, bytes)
			if err != nil {
				t.Errorf("Put: %v", err)
				return false
			}
			if err := pl.Get(p, cons, ref); err != nil {
				t.Errorf("Get: %v", err)
				return false
			}
			pl.Free(ref)
			return true
		}
		if !once() { // warm the pools
			return
		}
		before := *pl.Stats()
		start := p.Now()
		for i := 0; i < rounds; i++ {
			if !once() {
				return
			}
		}
		elapsed = (p.Now() - start) / time.Duration(rounds)
		after := *pl.Stats()
		stats = dataplane.Stats{
			Puts: after.Puts - before.Puts, Gets: after.Gets - before.Gets,
			Copies: after.Copies - before.Copies, BytesMoved: after.BytesMoved - before.BytesMoved,
			ControlOps: after.ControlOps - before.ControlOps,
		}
	})
	e.Run(0)
	return elapsed, stats
}

// passData is passDataN with a single measured round.
func passData(t *testing.T, mk func(f *fabric.Fabric) dataplane.Plane, spec *topology.Spec, nodes int,
	src, dst fabric.Location, bytes int64) (time.Duration, dataplane.Stats) {
	t.Helper()
	return passDataN(t, mk, spec, nodes, src, dst, bytes, 1)
}

func grouterFull(f *fabric.Fabric) dataplane.Plane { return New(f, FullConfig()) }

func TestSameGPUZeroCopy(t *testing.T) {
	loc := fabric.Location{Node: 0, GPU: 3}
	lat, st := passData(t, grouterFull, topology.DGXV100(), 1, loc, loc, 64*MB)
	if st.Copies != 0 {
		t.Errorf("same-GPU exchange made %d copies, want 0", st.Copies)
	}
	if lat > 100*time.Microsecond {
		t.Errorf("warm zero-copy latency = %v, want µs-scale", lat)
	}
}

func TestIntraNodeBeatBaselines(t *testing.T) {
	src := fabric.Location{Node: 0, GPU: 0}
	dst := fabric.Location{Node: 0, GPU: 3}
	size := 256 * MB
	g, gst := passData(t, grouterFull, topology.DGXV100(), 1, src, dst, size)
	nv, nvst := passData(t, func(f *fabric.Fabric) dataplane.Plane { return baselines.NewNVShmem(f, 1) },
		topology.DGXV100(), 1, src, dst, size)
	inf, _ := passData(t, func(f *fabric.Fabric) dataplane.Plane { return baselines.NewINFless(f) },
		topology.DGXV100(), 1, src, dst, size)
	if !(g < nv && nv < inf) {
		t.Errorf("latency order wrong: grouter=%v nvshmem+=%v infless+=%v", g, nv, inf)
	}
	// Paper Fig. 13(a): ~95% reduction vs INFless+, ~75% vs NVSHMEM+.
	if r := 1 - g.Seconds()/inf.Seconds(); r < 0.80 {
		t.Errorf("reduction vs INFless+ = %.0f%%, want > 80%%", r*100)
	}
	if gst.Copies != 1 {
		t.Errorf("grouter copies = %d, want 1", gst.Copies)
	}
	if nvst.Copies < 2 {
		t.Errorf("nvshmem+ copies = %d, want >= 2 (placement-agnostic)", nvst.Copies)
	}
}

func TestCrossNodeSingleCopyVsRelay(t *testing.T) {
	src := fabric.Location{Node: 0, GPU: 2}
	dst := fabric.Location{Node: 1, GPU: 5}
	size := 128 * MB
	g, gst := passData(t, grouterFull, topology.DGXV100(), 2, src, dst, size)
	nv, nvst := passData(t, func(f *fabric.Fabric) dataplane.Plane { return baselines.NewNVShmem(f, 1) },
		topology.DGXV100(), 2, src, dst, size)
	if gst.Copies != 1 {
		t.Errorf("grouter cross-node copies = %d, want 1 (direct GDR)", gst.Copies)
	}
	if nvst.Copies < 3 {
		t.Errorf("nvshmem+ cross-node copies = %d, want >= 3 (store relay)", nvst.Copies)
	}
	if !(g < nv) {
		t.Errorf("grouter %v not faster than nvshmem+ %v cross-node", g, nv)
	}
	// Paper Fig. 13(c): ~87% reduction vs NVSHMEM+.
	if r := 1 - g.Seconds()/nv.Seconds(); r < 0.5 {
		t.Errorf("cross-node reduction = %.0f%%, want > 50%%", r*100)
	}
}

func TestHostToGPUUsesParallelPCIe(t *testing.T) {
	src := fabric.Location{Node: 0, GPU: fabric.HostGPU}
	dst := fabric.Location{Node: 0, GPU: 0}
	size := 512 * MB
	full, _ := passData(t, grouterFull, topology.DGXV100(), 1, src, dst, size)
	noBH, _ := passData(t, func(f *fabric.Fabric) dataplane.Plane {
		cfg := FullConfig()
		cfg.BandwidthHarvest = false
		return New(f, cfg)
	}, topology.DGXV100(), 1, src, dst, size)
	// Harvesting aggregates up to 4 PCIe links (own + 3 idle switches):
	// expect a clear speedup over the single link.
	speedup := noBH.Seconds() / full.Seconds()
	if speedup < 2 {
		t.Errorf("parallel PCIe speedup = %.2fx, want >= 2x (full=%v noBH=%v)", speedup, full, noBH)
	}
}

func TestWeakPairMultipathBeatsDirectOnly(t *testing.T) {
	// GPUs 0 and 1 share only a single NVLink brick (24 GB/s); multipath
	// should beat the single direct path.
	src := fabric.Location{Node: 0, GPU: 0}
	dst := fabric.Location{Node: 0, GPU: 1}
	size := 512 * MB
	full, _ := passData(t, grouterFull, topology.DGXV100(), 1, src, dst, size)
	noTA, _ := passData(t, func(f *fabric.Fabric) dataplane.Plane {
		cfg := FullConfig()
		cfg.TopoAware = false
		return New(f, cfg)
	}, topology.DGXV100(), 1, src, dst, size)
	if !(full < noTA) {
		t.Errorf("topology-aware multipath %v not faster than direct-only %v", full, noTA)
	}
}

func TestUFOffAddsCopies(t *testing.T) {
	src := fabric.Location{Node: 0, GPU: 4}
	dst := fabric.Location{Node: 0, GPU: 4}
	_, full := passDataN(t, grouterFull, topology.DGXV100(), 1, src, dst, 64*MB, 8)
	_, noUF := passDataN(t, func(f *fabric.Fabric) dataplane.Plane {
		cfg := FullConfig()
		cfg.UnifiedFramework = false
		cfg.Seed = 7
		return New(f, cfg)
	}, topology.DGXV100(), 1, src, dst, 64*MB, 8)
	if noUF.Copies <= full.Copies {
		t.Errorf("UF-off copies = %d, want more than full's %d", noUF.Copies, full.Copies)
	}
}

func TestCrossNodeMultiNICBeatsSingle(t *testing.T) {
	src := fabric.Location{Node: 0, GPU: 0}
	dst := fabric.Location{Node: 1, GPU: 0}
	size := 512 * MB
	full, _ := passData(t, grouterFull, topology.DGXV100(), 2, src, dst, size)
	noBH, _ := passData(t, func(f *fabric.Fabric) dataplane.Plane {
		cfg := FullConfig()
		cfg.BandwidthHarvest = false
		return New(f, cfg)
	}, topology.DGXV100(), 2, src, dst, size)
	speedup := noBH.Seconds() / full.Seconds()
	if speedup < 2 {
		t.Errorf("multi-NIC speedup = %.2fx, want >= 2x", speedup)
	}
}

func TestGetUnknownIDFails(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	f := fabric.New(e, topology.DGXV100(), 1)
	pl := New(f, FullConfig())
	e.Go("p", func(p *sim.Proc) {
		ctx := &dataplane.FnCtx{Fn: "f", Loc: fabric.Location{Node: 0, GPU: 0}}
		if err := pl.Get(p, ctx, dataplane.DataRef{ID: 999, Bytes: 1}); err == nil {
			t.Error("Get of unknown ID should fail")
		}
	})
	e.Run(0)
}

func TestNameReflectsAblations(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	f := fabric.New(e, topology.DGXV100(), 1)
	if got := New(f, FullConfig()).Name(); got != "grouter" {
		t.Errorf("full name = %q", got)
	}
	cfg := FullConfig()
	cfg.ElasticStore = false
	cfg.TopoAware = false
	if got := New(f, cfg).Name(); got != "grouter-ES-TA" {
		t.Errorf("ablated name = %q", got)
	}
}

func TestQuadA10LocalityStillWins(t *testing.T) {
	// Fig. 20(a): even without NVLink GROUTER wins by avoiding the extra
	// store copy.
	src := fabric.Location{Node: 0, GPU: 0}
	dst := fabric.Location{Node: 0, GPU: 2}
	size := 128 * MB
	// Average over rounds so NVSHMEM+'s random store GPU can't get lucky.
	g, gst := passDataN(t, grouterFull, topology.QuadA10(), 1, src, dst, size, 8)
	nv, _ := passDataN(t, func(f *fabric.Fabric) dataplane.Plane { return baselines.NewNVShmem(f, 3) },
		topology.QuadA10(), 1, src, dst, size, 8)
	if gst.Copies != 8 {
		t.Errorf("A10 copies = %d over 8 rounds, want 8", gst.Copies)
	}
	if !(g < nv) {
		t.Errorf("grouter %v not faster than nvshmem+ %v on PCIe-only box", g, nv)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() time.Duration {
		lat, _ := passData(t, grouterFull, topology.DGXV100(), 1,
			fabric.Location{Node: 0, GPU: 0}, fabric.Location{Node: 0, GPU: 5}, 200*MB)
		return lat
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("nondeterministic: %v vs %v", a, b)
	}
}
