// Package core implements GROUTER, the paper's GPU-centric serverless data
// plane. It composes the unified data-passing framework (§4.2: placement
// detection, global data IDs, locality-aware Put/Get), parallel transfers
// with bandwidth harvesting (§4.3.1–4.3.2), topology-aware NVLink path
// selection (§4.3.3), and elastic GPU storage (§4.4).
//
// Each optimization can be disabled independently through Config, which is
// how the Fig. 16 ablation variants are built.
package core

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"sort"

	"grouter/internal/dataplane"
	"grouter/internal/fabric"
	"grouter/internal/harvest"
	"grouter/internal/memsim"
	"grouter/internal/metrics"
	"grouter/internal/netsim"
	"grouter/internal/obs"
	"grouter/internal/pathsel"
	"grouter/internal/sim"
	"grouter/internal/store"
	"grouter/internal/topology"
	"grouter/internal/xfer"
)

// Control-plane latency constants.
const (
	// LocalLookupLatency is a data-ID lookup served by the node-local table.
	LocalLookupLatency = 2 * time.Microsecond
	// GlobalLookupLatency is a miss served by the centralized table (§4.2.2).
	GlobalLookupLatency = 20 * time.Microsecond
	// MapLatency is sharing an already-resident buffer into a function's
	// address space over CUDA IPC (zero-copy path).
	MapLatency = 10 * time.Microsecond
	// RematerializeLatency models recovering a crash-lost object from its
	// durable origin (re-running the producer or fetching from persistent
	// storage into host memory), before the normal host→GPU move.
	RematerializeLatency = 5 * time.Millisecond
)

// Config toggles GROUTER's four optimizations (§4.1); the full system has
// all four enabled.
type Config struct {
	// UnifiedFramework (UF) detects function placement and stores output on
	// the producer's own GPU; disabled, storage is assigned to a random GPU
	// (the placement-agnostic behaviour of §3.1).
	UnifiedFramework bool
	// BandwidthHarvest (BH) enables parallel PCIe/NIC transfers with
	// SLO-aware rate partitioning.
	BandwidthHarvest bool
	// TopoAware (TA) enables Algorithm-1 NVLink path selection and the
	// route-GPU exclusion rules.
	TopoAware bool
	// ElasticStore (ES) enables elastic pool scaling with queue-aware
	// proactive migration; disabled, a static LRU pool is used.
	ElasticStore bool
	// NoRateControl keeps parallel transfers but removes SLO-aware rate
	// partitioning (the GROUTER−BH variant of Fig. 17, which shares
	// bandwidth like DeepPlan+).
	NoRateControl bool
	// Coalesce enables fan-out-aware transfer coalescing: concurrent Gets of
	// one object to the same GPU join a single transfer, and later consumers
	// pull from the nearest registered replica (or chain off an in-flight
	// copy) instead of the producer's links. Off by default so the base
	// system's traces and experiment numbers are unchanged; see coalesce.go.
	Coalesce bool

	// StoreOverride replaces the derived storage configuration (used by the
	// Fig. 18 policy comparison).
	StoreOverride *store.Config
	// StaticReserve sizes the per-GPU pool when ES is off.
	StaticReserve int64
	// Seed drives the random storage-GPU choice when UF is off.
	Seed int64
}

// FullConfig returns the complete GROUTER system.
func FullConfig() Config {
	return Config{UnifiedFramework: true, BandwidthHarvest: true, TopoAware: true, ElasticStore: true}
}

// ErrAccessDenied is returned when a function from another workflow tries
// to read a data item (§7: every access is authenticated by function and
// workflow ID).
var ErrAccessDenied = errors.New("grouter: access denied")

// rec tracks one stored object in the plane's global table.
type rec struct {
	node    int
	it      *store.Item   // set when the object lives in a GPU store
	hostBlk *memsim.Block // set when the object is host-resident (cFn output)
	bytes   int64
	// workflow is the owning workflow ID for access control.
	workflow string
	// lost marks an object destroyed by a GPU crash; the next Get
	// re-materializes it from its durable origin.
	lost bool
}

// Plane is the GROUTER data plane over a fabric.
type Plane struct {
	f   *fabric.Fabric
	x   *xfer.Manager
	cfg Config

	stores []*store.Manager
	sel    []*pathsel.Selector

	recs   map[dataplane.DataID]*rec
	nextID dataplane.DataID
	rng    *rand.Rand
	// recArena blocks amortize rec allocation (one rec per Put); freed recs
	// are simply dropped, so lifetimes match individually-allocated recs.
	recArena []rec
	// localTables[n] holds the data IDs whose metadata has been synchronized
	// to node n (§4.2.2/§7: lookups hit the local table, falling back to the
	// global table once and caching the result).
	localTables []map[dataplane.DataID]bool

	// Coalescing state (nil / unused unless cfg.Coalesce): the replica
	// registry, in-flight transfers by object, and the store cache items
	// backing registered replicas.
	replicas *store.Registry
	flights  map[dataplane.DataID][]*flight
	caches   map[cacheKey]*store.Item

	stats dataplane.Stats
}

var _ dataplane.Plane = (*Plane)(nil)

// New builds a GROUTER plane on f with the given configuration.
func New(f *fabric.Fabric, cfg Config) *Plane {
	pl := &Plane{
		f:    f,
		x:    xfer.NewManager(f),
		cfg:  cfg,
		recs: make(map[dataplane.DataID]*rec),
		rng:  rand.New(rand.NewSource(cfg.Seed + 1)),
	}
	scfg := pl.storeConfig()
	for n := range f.Nodes {
		pl.stores = append(pl.stores, store.NewManager(f.Engine, f.Nodes[n], &migrator{pl: pl, node: n}, scfg))
		sel := pathsel.New(f.Topo(n))
		topo := f.Topo(n)
		// Fault-aware selection: a failed NVLink edge contributes no residual
		// and Select returns nil when a pair is NVLink-cut, so re-planning
		// after FailLink routes around dead edges or degrades to PCIe.
		sel.Avail = func(i, j int) bool {
			if topo.Spec.Switched {
				return pl.f.Net.LinkUp(topo.NVPortOut(i)) && pl.f.Net.LinkUp(topo.NVPortIn(j))
			}
			return pl.f.Net.LinkUp(topo.NVLinkTo(i, j))
		}
		pl.sel = append(pl.sel, sel)
		pl.localTables = append(pl.localTables, make(map[dataplane.DataID]bool))
	}
	if cfg.Coalesce {
		pl.initCoalesce()
	}
	return pl
}

// newRec hands out table entries from a block arena. Blocks are never
// recycled — a freed rec just goes unreferenced — so pointer lifetimes are
// identical to individually-allocated recs.
func (pl *Plane) newRec() *rec {
	if len(pl.recArena) == 0 {
		pl.recArena = make([]rec, 256)
	}
	r := &pl.recArena[0]
	pl.recArena = pl.recArena[1:]
	return r
}

func (pl *Plane) storeConfig() store.Config {
	if pl.cfg.StoreOverride != nil {
		return *pl.cfg.StoreOverride
	}
	if pl.cfg.ElasticStore {
		return store.Config{Elastic: true, Policy: store.PolicyRQProactive}
	}
	reserve := pl.cfg.StaticReserve
	if reserve == 0 {
		reserve = 2 * topology.GB
	}
	return store.Config{Elastic: false, StaticReserve: reserve, Policy: store.PolicyLRU}
}

// Name identifies the plane, including any disabled optimizations.
func (pl *Plane) Name() string {
	name := "grouter"
	if !pl.cfg.ElasticStore {
		name += "-ES"
	}
	if !pl.cfg.TopoAware {
		name += "-TA"
	}
	if !pl.cfg.BandwidthHarvest {
		name += "-BH"
	}
	if !pl.cfg.UnifiedFramework {
		name += "-UF"
	}
	if pl.cfg.Coalesce {
		name += "+co"
	}
	return name
}

// Stats returns the plane's counters.
func (pl *Plane) Stats() *dataplane.Stats { return &pl.stats }

// Store returns node n's storage manager (for experiments).
func (pl *Plane) Store(n int) *store.Manager { return pl.stores[n] }

// Put stores ctx's output. With the unified framework the data stays where
// it was produced (zero copy); without it a random GPU store receives a copy.
// It returns dataplane.ErrEvicted when the store cannot make room even after
// spilling to host memory, and xfer.ErrDeadline when a placement-agnostic
// copy misses its SLO budget.
func (pl *Plane) Put(p *sim.Proc, ctx *dataplane.FnCtx, bytes int64) (dataplane.DataRef, error) {
	// The label only feeds trace spans; with no tracer attached, skip the
	// per-call string construction.
	label := ""
	if tr := obs.TracerOf(pl.f.Engine); tr != nil {
		label = "put:" + ctx.Fn
		span := tr.BeginOn(obs.ReqTrack(ctx.ConsumerSeq), obs.CatOp, label)
		tr.SetAttrInt(span, "bytes", bytes)
		defer tr.End(span)
	}
	pl.stats.Puts++
	pl.stats.AddControl(1, LocalLookupLatency)
	pl.nextID++
	id := pl.nextID
	node := ctx.Loc.Node

	if ctx.Loc.IsHost() {
		blk, err := pl.f.NodeF(node).Host.Alloc(bytes)
		if err != nil {
			return dataplane.DataRef{}, fmt.Errorf("grouter: host put: %w", err)
		}
		p.Sleep(memsim.PoolAllocLatency)
		obs.Account(p, obs.CatSetup, memsim.PoolAllocLatency)
		r := pl.newRec()
		*r = rec{node: node, hostBlk: blk, bytes: bytes, workflow: ctx.Workflow}
		pl.recs[id] = r
		pl.localTables[node][id] = true
		return dataplane.DataRef{ID: id, Bytes: bytes}, nil
	}

	gpu := ctx.Loc.GPU
	if !pl.cfg.UnifiedFramework {
		gpu = pl.rng.Intn(pl.f.Spec().NumGPUs)
	}
	it, err := pl.stores[node].Put(p, ctx, gpu, bytes)
	if err != nil {
		return dataplane.DataRef{}, err
	}
	if gpu != ctx.Loc.GPU || it.OnHost {
		// Placement-agnostic storage: the output must be copied from the
		// producer's GPU into the store.
		dst := fabric.Location{Node: node, GPU: gpu}
		if it.OnHost {
			dst = fabric.Location{Node: node, GPU: fabric.HostGPU}
		}
		if dst != ctx.Loc {
			if err := pl.move(p, ctx, ctx.Loc, dst, bytes, label); err != nil {
				pl.stores[node].Free(it)
				return dataplane.DataRef{}, fmt.Errorf("grouter: put copy: %w", err)
			}
		}
	}
	r := pl.newRec()
	*r = rec{node: node, it: it, bytes: bytes, workflow: ctx.Workflow}
	pl.recs[id] = r
	pl.localTables[node][id] = true
	return dataplane.DataRef{ID: id, Bytes: bytes}, nil
}

// Get makes ref available at ctx.Loc, choosing the transfer pattern from the
// data's current location (§4.2.2). It returns dataplane.ErrNotFound for an
// unknown (or already-freed) id, ErrAccessDenied for a cross-workflow read,
// dataplane.ErrGPUDown when a crash-lost object cannot be re-materialized,
// and xfer.ErrDeadline when the transfer misses its SLO budget.
func (pl *Plane) Get(p *sim.Proc, ctx *dataplane.FnCtx, ref dataplane.DataRef) error {
	r := pl.recs[ref.ID]
	if r == nil {
		return fmt.Errorf("grouter: %w: data id %d", dataplane.ErrNotFound, ref.ID)
	}
	// Authenticate the requesting function: data items are readable only
	// within their owning workflow (§7).
	if r.workflow != "" && ctx.Workflow != r.workflow {
		pl.stats.AddControl(1, LocalLookupLatency)
		return fmt.Errorf("%w: workflow %q cannot read data of %q", ErrAccessDenied, ctx.Workflow, r.workflow)
	}
	pl.stats.Gets++
	tr := obs.TracerOf(pl.f.Engine)
	label := ""
	var span obs.SpanID
	if tr != nil {
		label = "get:" + ctx.Fn
		span = tr.BeginOn(obs.ReqTrack(ctx.ConsumerSeq), obs.CatOp, label)
		tr.SetAttrInt(span, "bytes", ref.Bytes)
		defer tr.End(span)
	}
	// Hierarchical lookup: the node-local table answers when the metadata
	// has been synchronized; the first remote access pays the global table
	// and caches locally.
	if pl.localTables[ctx.Loc.Node][ref.ID] {
		pl.stats.AddControl(1, LocalLookupLatency)
		p.Sleep(LocalLookupLatency)
		obs.Account(p, obs.CatSetup, LocalLookupLatency)
	} else {
		pl.stats.AddControl(1, GlobalLookupLatency)
		p.Sleep(GlobalLookupLatency)
		obs.Account(p, obs.CatSetup, GlobalLookupLatency)
		pl.localTables[ctx.Loc.Node][ref.ID] = true
	}

	if pl.cfg.Coalesce {
		return pl.getCoalesced(p, ctx, ref, r, label, tr, span)
	}

	if r.lost {
		if err := pl.rematerialize(p, r); err != nil {
			return err
		}
	}
	src := pl.locate(r)
	if r.it != nil {
		pl.stores[r.node].Touch(r.it, p.Now())
	}
	if src == ctx.Loc {
		p.Sleep(MapLatency) // zero-copy IPC mapping
		obs.Account(p, obs.CatSetup, MapLatency)
		return nil
	}
	return pl.move(p, ctx, src, ctx.Loc, r.bytes, label)
}

// rematerialize recovers a crash-lost object from its durable origin into
// host memory on its home node: serverless intermediates are reproducible
// (re-run the producer) or backed by persistent storage, so a crash costs
// RematerializeLatency plus the normal host→GPU move — it does not sink the
// workflow.
func (pl *Plane) rematerialize(p *sim.Proc, r *rec) error {
	blk, err := pl.f.NodeF(r.node).Host.Alloc(r.bytes)
	if err != nil {
		return fmt.Errorf("grouter: rematerialize %d bytes: %w: %w", r.bytes, dataplane.ErrGPUDown, err)
	}
	if tr := obs.TracerOf(pl.f.Engine); tr != nil {
		span := tr.Begin(obs.CatMigrate, "rematerialize")
		tr.SetAttrInt(span, "bytes", r.bytes)
		defer tr.End(span)
	}
	p.Sleep(RematerializeLatency)
	obs.Account(p, obs.CatMigrate, RematerializeLatency)
	r.hostBlk = blk
	r.lost = false
	metrics.Faults().Rematerialized.Add(1)
	return nil
}

// CrashGPU implements faults.Crasher: every object resident on the GPU's
// store is destroyed (its memory dropped with no pre-warm credit) and marked
// lost for re-materialization on next access. Records are processed in ID
// order so the store's timeline samples stay deterministic. Host-resident
// objects — including items previously evicted off this GPU — survive.
func (pl *Plane) CrashGPU(node, gpu int) int {
	var ids []dataplane.DataID
	for id, r := range pl.recs {
		if r.node == node && !r.lost && r.it != nil && !r.it.OnHost && r.it.GPU == gpu {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		r := pl.recs[id]
		pl.stores[node].Drop(r.it)
		r.it = nil
		r.lost = true
	}
	// Replica invalidation: cached copies on the crashed GPU are destroyed
	// with their registry entries, in ascending object-ID order.
	pl.crashReplicas(node, gpu)
	if tr := obs.TracerOf(pl.f.Engine); tr != nil {
		ev := tr.InstantOn(obs.TrackStoreBase+int32(node), obs.CatStore, "gpu-crash")
		tr.SetAttrInt(ev, "gpu", int64(gpu))
		tr.SetAttrInt(ev, "objects-lost", int64(len(ids)))
	}
	return len(ids)
}

// locate returns the object's current physical location.
func (pl *Plane) locate(r *rec) fabric.Location {
	if r.hostBlk != nil || (r.it != nil && r.it.OnHost) {
		return fabric.Location{Node: r.node, GPU: fabric.HostGPU}
	}
	return fabric.Location{Node: r.node, GPU: r.it.GPU}
}

// Free drops the object.
func (pl *Plane) Free(ref dataplane.DataRef) {
	r := pl.recs[ref.ID]
	if r == nil {
		return
	}
	delete(pl.recs, ref.ID)
	for _, tbl := range pl.localTables {
		delete(tbl, ref.ID)
	}
	if pl.cfg.Coalesce {
		pl.dropReplicas(ref.ID)
	}
	pl.stats.AddControl(1, LocalLookupLatency)
	if r.hostBlk != nil {
		r.hostBlk.Free()
		return
	}
	if r.it != nil { // a lost rec holds no memory
		pl.stores[r.node].Free(r.it)
	}
}

// harvestMode maps the BH/TA toggles to a harvesting mode. The GROUTER−BH
// variant (NoRateControl) shares links the way DeepPlan+ does: parallel
// paths without idle-link selection or partitioning.
func (pl *Plane) harvestMode() harvest.Mode {
	if !pl.cfg.BandwidthHarvest {
		return harvest.ModeOff
	}
	if pl.cfg.TopoAware && !pl.cfg.NoRateControl {
		return harvest.ModeTopoAware
	}
	return harvest.ModeNaive
}

// rateOpts builds SLO rate-control options when harvesting is enabled.
func (pl *Plane) rateOpts(ctx *dataplane.FnCtx, bytes int64) netsim.Options {
	if !pl.cfg.BandwidthHarvest || pl.cfg.NoRateControl || ctx == nil {
		return netsim.Options{}
	}
	return harvest.Options(bytes, ctx.SLO, ctx.InferLatency)
}

// move executes one logical copy between locations using the configured
// transfer strategies. Every branch installs a re-plan hook, so a transfer
// whose paths die mid-flight regenerates routes against the current fault
// state (the TA branch re-runs path selection and degrades to PCIe when the
// pair is NVLink-cut). A zero-byte move is a no-op, not an error.
func (pl *Plane) move(p *sim.Proc, ctx *dataplane.FnCtx, src, dst fabric.Location, bytes int64, label string) error {
	if bytes <= 0 {
		return nil
	}
	pl.stats.Copies++
	pl.stats.BytesMoved += bytes
	var track int32
	if ctx != nil {
		track = obs.ReqTrack(ctx.ConsumerSeq)
	}
	req := xfer.Request{Label: label, Bytes: bytes, Opt: pl.rateOpts(ctx, bytes), Track: track}
	transfer := func(gen func() []xfer.Path) error {
		req.Paths = gen()
		req.Replan = func(int) []xfer.Path { return gen() }
		_, err := pl.x.Transfer(p, req)
		return err
	}

	switch {
	case src.Node == dst.Node && !src.IsHost() && !dst.IsHost():
		// Intra-node gFn-gFn: parallel NVLink paths when topology-aware.
		if pl.cfg.TopoAware {
			sel := pl.sel[src.Node]
			var a *pathsel.Assignment
			plan := func() []xfer.Path {
				sel.Release(a)
				if a = sel.Select(src.GPU, dst.GPU, 0); a == nil {
					// NVLink-cut (or no NVLink connectivity): degrade to the
					// PCIe peer-to-peer path.
					links := pl.f.Topo(src.Node).PCIeP2PLinks(src.GPU, dst.GPU)
					return []xfer.Path{xfer.PathOf(pl.f.Net, links)}
				}
				links := sel.Links(a)
				paths := make([]xfer.Path, 0, len(links))
				for i, ls := range links {
					paths = append(paths, xfer.Path{Links: ls, Bps: a.BWs[i]})
				}
				return paths
			}
			p.Sleep(pathsel.SelectLatency)
			obs.Account(p, obs.CatSetup, pathsel.SelectLatency)
			pl.stats.AddControl(1, pathsel.SelectLatency)
			err := transfer(plan)
			sel.Release(a)
			return err
		}
		return transfer(func() []xfer.Path {
			links, _ := pl.f.SinglePath(src, dst)
			return []xfer.Path{xfer.PathOf(pl.f.Net, links)}
		})

	case src.Node == dst.Node && src.IsHost():
		// gFn-host (inbound): parallel PCIe staging through the pinned ring.
		req.Pinned = pl.f.NodeF(src.Node).Pinned
		return transfer(func() []xfer.Path {
			lps := harvest.HostToGPUPaths(pl.f.Topo(src.Node), dst.GPU, pl.harvestMode(), pl.f.Net)
			paths := make([]xfer.Path, 0, len(lps))
			for _, ls := range lps {
				paths = append(paths, xfer.PathOf(pl.f.Net, ls))
			}
			return paths
		})

	case src.Node == dst.Node && dst.IsHost():
		req.Pinned = pl.f.NodeF(src.Node).Pinned
		return transfer(func() []xfer.Path {
			lps := harvest.GPUToHostPaths(pl.f.Topo(src.Node), src.GPU, pl.harvestMode(), pl.f.Net)
			paths := make([]xfer.Path, 0, len(lps))
			for _, ls := range lps {
				paths = append(paths, xfer.PathOf(pl.f.Net, ls))
			}
			return paths
		})

	case !src.IsHost() && !dst.IsHost():
		// Cross-node gFn-gFn: GDR, multiple NICs when harvesting.
		return transfer(func() []xfer.Path {
			lps := harvest.CrossNodePaths(pl.f.Topo(src.Node), src.GPU, pl.f.Topo(dst.Node), dst.GPU, pl.harvestMode(), pl.f.Net)
			paths := make([]xfer.Path, 0, len(lps))
			for _, ls := range lps {
				paths = append(paths, xfer.PathOf(pl.f.Net, ls))
			}
			return paths
		})

	default:
		// Host-involved cross-node: single host-mediated path.
		return transfer(func() []xfer.Path {
			links, hostStack := pl.f.SinglePath(src, dst)
			req.HostStack = hostStack
			return []xfer.Path{xfer.PathOf(pl.f.Net, links)}
		})
	}
}

// migrator adapts the plane's transfer machinery to the store's Migrator
// interface: GROUTER migrates over harvested PCIe paths, ablated variants
// over the single local link.
type migrator struct {
	pl   *Plane
	node int
}

func (m *migrator) ToHost(p *sim.Proc, gpu int, bytes int64) error {
	src := fabric.Location{Node: m.node, GPU: gpu}
	dst := fabric.Location{Node: m.node, GPU: fabric.HostGPU}
	return m.pl.move(p, nil, src, dst, bytes, "migrate-out")
}

func (m *migrator) ToGPU(p *sim.Proc, gpu int, bytes int64) error {
	src := fabric.Location{Node: m.node, GPU: fabric.HostGPU}
	dst := fabric.Location{Node: m.node, GPU: gpu}
	return m.pl.move(p, nil, src, dst, bytes, "migrate-in")
}
