// Fan-out-aware transfer coalescing. When Config.Coalesce is on, Get stops
// treating every consumer independently: concurrent Gets of one object to the
// same GPU join a single in-flight transfer, and later consumers pull from
// the nearest registered replica (or chain off a transfer still in flight)
// instead of re-loading the producer GPU's links. An N-way fan-out edge thus
// becomes a multicast chain whose source-link traffic is one copy, not N.
package core

import (
	"grouter/internal/dataplane"
	"grouter/internal/fabric"
	"grouter/internal/metrics"
	"grouter/internal/obs"
	"grouter/internal/pathsel"
	"grouter/internal/sim"
	"grouter/internal/store"
)

// flight is one in-progress coalesced transfer of an object to dst. Later
// Gets to the same dst wait on fut instead of moving bytes again; Gets to
// other GPUs may chain off it (wait, then pull from dst).
type flight struct {
	dst fabric.Location
	fut *sim.Future[error]
	// chainers counts consumers that chose this flight's destination as their
	// source; source selection uses it to spread chains across copies.
	chainers int
}

// cacheKey addresses one replica cache item: (object, location).
type cacheKey struct {
	id  dataplane.DataID
	loc fabric.Location
}

// initCoalesce wires the coalescing state and the store-drop invalidation
// hooks; called from New when Config.Coalesce is set.
func (pl *Plane) initCoalesce() {
	pl.replicas = store.NewRegistry()
	pl.flights = make(map[dataplane.DataID][]*flight)
	pl.caches = make(map[cacheKey]*store.Item)
	for n := range pl.stores {
		node := n
		pl.stores[node].OnCacheDrop = func(id dataplane.DataID, gpu int) {
			loc := fabric.Location{Node: node, GPU: gpu}
			pl.replicas.Remove(id, loc)
			delete(pl.caches, cacheKey{id: id, loc: loc})
		}
	}
}

// flightTo returns the in-flight transfer of id headed to dst, if any.
func (pl *Plane) flightTo(id dataplane.DataID, dst fabric.Location) *flight {
	for _, fl := range pl.flights[id] {
		if fl.dst == dst {
			return fl
		}
	}
	return nil
}

func (pl *Plane) removeFlight(id dataplane.DataID, fl *flight) {
	fls := pl.flights[id]
	for i, f := range fls {
		if f == fl {
			fls = append(fls[:i], fls[i+1:]...)
			break
		}
	}
	if len(fls) == 0 {
		delete(pl.flights, id)
	} else {
		pl.flights[id] = fls
	}
}

// addReplica registers the freshly-arrived copy of id at dst, backing it with
// a best-effort cache item in dst's store. Registration is skipped when the
// store has no spare room: coalescing never evicts primaries to make space
// for replicas (only other caches), so the transfer simply stays unrecorded.
func (pl *Plane) addReplica(p *sim.Proc, ctx *dataplane.FnCtx, id dataplane.DataID, dst fabric.Location, bytes int64) {
	if dst.IsHost() || pl.replicas.Has(id, dst) {
		return
	}
	it := pl.stores[dst.Node].PutCache(p, id, ctx.Fn, dst.GPU, bytes)
	if it == nil {
		return
	}
	pl.replicas.Add(id, dst)
	pl.caches[cacheKey{id: id, loc: dst}] = it
}

// dropReplicas destroys every replica of id (object freed). Locations are
// visited in the registry's sorted order, so store timelines stay
// deterministic.
func (pl *Plane) dropReplicas(id dataplane.DataID) {
	locs := pl.replicas.Locations(id)
	for len(locs) > 0 {
		loc := locs[0]
		pl.replicas.Remove(id, loc)
		key := cacheKey{id: id, loc: loc}
		if it := pl.caches[key]; it != nil {
			delete(pl.caches, key)
			pl.stores[loc.Node].Drop(it)
		}
		locs = pl.replicas.Locations(id)
	}
}

// crashReplicas invalidates every replica resident on a crashed GPU and
// returns how many were destroyed.
func (pl *Plane) crashReplicas(node, gpu int) int {
	if pl.replicas == nil {
		return 0
	}
	ids := pl.replicas.DropGPU(node, gpu)
	loc := fabric.Location{Node: node, GPU: gpu}
	for _, id := range ids {
		key := cacheKey{id: id, loc: loc}
		if it := pl.caches[key]; it != nil {
			delete(pl.caches, key)
			pl.stores[node].Drop(it)
		}
		metrics.Coalesce().ReplicasDropped.Add(1)
	}
	return len(ids)
}

// getCoalesced serves one Get with fan-out-aware coalescing. The caller has
// already authenticated the request and paid the lookup latency; span is the
// Get's open trace span (zero when tracing is off).
func (pl *Plane) getCoalesced(p *sim.Proc, ctx *dataplane.FnCtx, ref dataplane.DataRef, r *rec, label string, tr *obs.Tracer, span obs.SpanID) error {
	id, dst := ref.ID, ctx.Loc
	source := func(kind string) {
		if tr != nil {
			tr.SetAttrStr(span, "source", kind)
		}
	}
	mapIn := func() {
		p.Sleep(MapLatency) // zero-copy IPC mapping
		obs.Account(p, obs.CatSetup, MapLatency)
	}

	// 1. Already resident here: the primary itself, or a registered replica.
	if !r.lost && pl.locate(r) == dst {
		if r.it != nil {
			pl.stores[r.node].Touch(r.it, p.Now())
		}
		source("local")
		mapIn()
		return nil
	}
	if !dst.IsHost() && pl.replicas.Has(id, dst) {
		if it := pl.caches[cacheKey{id: id, loc: dst}]; it != nil {
			pl.stores[dst.Node].Touch(it, p.Now())
		}
		pl.stats.Coalesce.LocalHits++
		source("local-replica")
		mapIn()
		return nil
	}

	// 2. A transfer of this object to this destination is already in flight:
	// join it. True dedup — no extra bytes move.
	if fl := pl.flightTo(id, dst); fl != nil {
		pl.stats.Coalesce.Joined++
		metrics.Coalesce().Joined.Add(1)
		source("joined")
		if err := fl.fut.Wait(p); err != nil {
			return err
		}
		metrics.Coalesce().SavedBytes.Add(r.bytes)
		mapIn()
		return nil
	}

	// 3. Pick a source among the primary, resident replicas, and in-flight
	// copies we can chain off. The primary goes first so ties favour it.
	var cands []pathsel.SourceCandidate
	var pending []*flight // parallel to cands; nil for resident copies
	primaryIdx := -1
	if !r.lost {
		primaryIdx = len(cands)
		cands = append(cands, pathsel.SourceCandidate{Loc: pl.locate(r)})
		pending = append(pending, nil)
	}
	for _, loc := range pl.replicas.Locations(id) {
		cands = append(cands, pathsel.SourceCandidate{Loc: loc})
		pending = append(pending, nil)
	}
	for _, fl := range pl.flights[id] {
		cands = append(cands, pathsel.SourceCandidate{Loc: fl.dst, Pending: true, Chainers: fl.chainers})
		pending = append(pending, fl)
	}

	if len(cands) == 0 {
		// Crash-lost with no surviving copies anywhere: re-materialize from
		// the durable origin, then fall through to a plain origin pull.
		if err := pl.rematerialize(p, r); err != nil {
			return err
		}
		primaryIdx = 0
		cands = append(cands, pathsel.SourceCandidate{Loc: pl.locate(r)})
		pending = append(pending, nil)
	}
	choice := pathsel.ChooseSource(pl.f, dst, cands)
	src, upstream := cands[choice].Loc, pending[choice]

	// Announce our own transfer before any waiting, so later Gets to dst join
	// it and Gets elsewhere can chain off it. Chains are acyclic: a flight
	// only ever waits on flights that existed before it.
	fl := &flight{dst: dst, fut: sim.NewFuture[error](pl.f.Engine)}
	pl.flights[id] = append(pl.flights[id], fl)
	var moveErr error
	defer func() {
		fl.fut.Resolve(moveErr)
		pl.removeFlight(id, fl)
	}()

	kind := "origin"
	switch {
	case upstream != nil:
		upstream.chainers++
		if err := upstream.fut.Wait(p); err == nil {
			kind = "chained"
			pl.stats.Coalesce.Chained++
			metrics.Coalesce().Chained.Add(1)
		} else {
			// The copy we meant to chain off never arrived; fall back to the
			// primary, re-materializing it first if a crash took it too.
			if r.lost {
				if moveErr = pl.rematerialize(p, r); moveErr != nil {
					return moveErr
				}
			}
			src = pl.locate(r)
		}
	case choice != primaryIdx:
		kind = "replica"
		pl.stats.Coalesce.ReplicaHits++
		metrics.Coalesce().ReplicaHits.Add(1)
	}

	if kind == "origin" {
		if r.it != nil {
			pl.stores[r.node].Touch(r.it, p.Now())
		}
		pl.stats.Coalesce.OriginGets++
	}
	source(kind)
	if moveErr = pl.move(p, ctx, src, dst, r.bytes, label); moveErr != nil {
		return moveErr
	}
	if kind == "origin" {
		pl.stats.Coalesce.OriginBytes += r.bytes
	} else {
		pl.stats.Coalesce.ReplicaBytes += r.bytes
		metrics.Coalesce().SavedBytes.Add(r.bytes)
	}
	pl.addReplica(p, ctx, id, dst, r.bytes)
	return nil
}
