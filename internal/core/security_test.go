package core

import (
	"errors"
	"testing"

	"grouter/internal/dataplane"
	"grouter/internal/fabric"
	"grouter/internal/sim"
	"grouter/internal/topology"
)

func TestAccessControlBlocksForeignWorkflow(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	f := fabric.New(e, topology.DGXV100(), 1)
	pl := New(f, FullConfig())
	e.Go("attack", func(p *sim.Proc) {
		owner := &dataplane.FnCtx{Fn: "a", Workflow: "wf-a", Loc: fabric.Location{Node: 0, GPU: 0}}
		attacker := &dataplane.FnCtx{Fn: "b", Workflow: "wf-b", Loc: fabric.Location{Node: 0, GPU: 1}}
		ref, err := pl.Put(p, owner, 1<<20)
		if err != nil {
			t.Errorf("Put: %v", err)
			return
		}
		err = pl.Get(p, attacker, ref)
		if !errors.Is(err, ErrAccessDenied) {
			t.Errorf("cross-workflow Get error = %v, want ErrAccessDenied", err)
		}
		// The owner workflow still reads its own data.
		reader := &dataplane.FnCtx{Fn: "c", Workflow: "wf-a", Loc: fabric.Location{Node: 0, GPU: 2}}
		if err := pl.Get(p, reader, ref); err != nil {
			t.Errorf("intra-workflow Get: %v", err)
		}
		pl.Free(ref)
	})
	e.Run(0)
}

func TestHierarchicalLookupCachesRemoteMetadata(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	f := fabric.New(e, topology.DGXV100(), 2)
	pl := New(f, FullConfig())
	e.Go("lookup", func(p *sim.Proc) {
		prod := &dataplane.FnCtx{Fn: "up", Workflow: "wf", Loc: fabric.Location{Node: 0, GPU: 0}}
		cons := &dataplane.FnCtx{Fn: "down", Workflow: "wf", Loc: fabric.Location{Node: 1, GPU: 0}}
		ref, err := pl.Put(p, prod, 1<<20)
		if err != nil {
			t.Errorf("Put: %v", err)
			return
		}
		// First remote Get: global lookup (20µs path). Second: local hit.
		if err := pl.Get(p, cons, ref); err != nil {
			t.Errorf("Get1: %v", err)
		}
		t1 := p.Now()
		if err := pl.Get(p, cons, ref); err != nil {
			t.Errorf("Get2: %v", err)
		}
		secondTotal := p.Now() - t1
		// Both Gets include the same transfer; measure lookup difference via
		// the table state directly.
		if !pl.localTables[1][ref.ID] {
			t.Error("remote metadata not cached in the consumer node's local table")
		}
		pl.Free(ref)
		if pl.localTables[1][ref.ID] || pl.localTables[0][ref.ID] {
			t.Error("Free did not purge local tables")
		}
		_ = secondTotal
	})
	e.Run(0)
}
