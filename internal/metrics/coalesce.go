package metrics

import (
	"fmt"
	"sync/atomic"
)

// CoalesceCounters aggregates fan-out transfer-coalescing activity across the
// process, mirroring FaultStats: per-plane breakdowns live in
// dataplane.Stats.Coalesce, while these process-wide counters let harnesses
// like cmd/grouter-bench report coalescing work without reaching into each
// simulator. All fields are atomic because instrumented simulators run from
// parallel tests.
type CoalesceCounters struct {
	// Joined counts Gets deduplicated onto an in-flight transfer.
	Joined atomic.Int64
	// Chained counts Gets sourced from a copy that was still in flight.
	Chained atomic.Int64
	// ReplicaHits counts Gets served from an already-resident replica.
	ReplicaHits atomic.Int64
	// ReplicasDropped counts replica cache entries invalidated by store
	// eviction pressure or GPU crashes.
	ReplicasDropped atomic.Int64
	// SavedBytes totals payload bytes served from somewhere other than the
	// object's origin (the producer's links never carried them).
	SavedBytes atomic.Int64
}

var globalCoalesce CoalesceCounters

// Coalesce returns the process-wide coalescing counters.
func Coalesce() *CoalesceCounters { return &globalCoalesce }

// Reset zeroes every counter.
func (c *CoalesceCounters) Reset() {
	c.Joined.Store(0)
	c.Chained.Store(0)
	c.ReplicaHits.Store(0)
	c.ReplicasDropped.Store(0)
	c.SavedBytes.Store(0)
}

// String renders a one-line summary suitable for benchmark output.
func (c *CoalesceCounters) String() string {
	return fmt.Sprintf("joined=%d chained=%d replica-hits=%d replicas-dropped=%d saved-bytes=%d",
		c.Joined.Load(), c.Chained.Load(), c.ReplicaHits.Load(),
		c.ReplicasDropped.Load(), c.SavedBytes.Load())
}
