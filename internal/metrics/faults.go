package metrics

import (
	"fmt"
	"sync/atomic"
)

// FaultStats counts fault-injection events and the recovery work the data
// path performed in response. Injection counters are written by
// internal/faults, flow kills by internal/netsim, retry/re-plan counters by
// internal/xfer, and crash-recovery counters by the data planes. All fields
// are atomic for the same reason AllocatorStats' are: instrumented simulators
// run from parallel tests.
type FaultStats struct {
	// LinksFailed / LinksRestored / LinksDegraded count injected link events.
	LinksFailed    atomic.Int64
	LinksRestored  atomic.Int64
	LinksDegraded  atomic.Int64
	// MemPressure counts injected memory-pressure spikes.
	MemPressure atomic.Int64
	// Crashes counts injected node/GPU crash events.
	Crashes atomic.Int64

	// FlowsKilled counts in-flight flows terminated by a link failure.
	FlowsKilled atomic.Int64
	// Retries counts transfer retry attempts after a flow failure.
	Retries atomic.Int64
	// Replans counts path re-selections performed for a retry.
	Replans atomic.Int64
	// DegradedBytes totals payload bytes that completed on a retry attempt
	// (i.e. moved over a fallback or re-planned path).
	DegradedBytes atomic.Int64
	// TransfersFailed counts transfers that exhausted retries or deadlines.
	TransfersFailed atomic.Int64

	// ObjectsLost counts stored objects invalidated by a crash;
	// Rematerialized counts the subset recovered on a later access.
	ObjectsLost    atomic.Int64
	Rematerialized atomic.Int64
}

// globalFaults aggregates fault counters across the process, mirroring the
// netsim allocator's process-wide stats, so harnesses like cmd/grouter-bench
// can report fault/recovery work without reaching into each simulator.
var globalFaults FaultStats

// Faults returns the process-wide fault counters.
func Faults() *FaultStats { return &globalFaults }

// Reset zeroes every counter.
func (s *FaultStats) Reset() {
	s.LinksFailed.Store(0)
	s.LinksRestored.Store(0)
	s.LinksDegraded.Store(0)
	s.MemPressure.Store(0)
	s.Crashes.Store(0)
	s.FlowsKilled.Store(0)
	s.Retries.Store(0)
	s.Replans.Store(0)
	s.DegradedBytes.Store(0)
	s.TransfersFailed.Store(0)
	s.ObjectsLost.Store(0)
	s.Rematerialized.Store(0)
}

// String renders a two-line summary suitable for benchmark output.
func (s *FaultStats) String() string {
	return fmt.Sprintf(
		"injected: link-fail=%d link-restore=%d link-degrade=%d mem-pressure=%d crashes=%d\n"+
			"recovery: flows-killed=%d retries=%d replans=%d degraded-bytes=%d transfers-failed=%d objects-lost=%d rematerialized=%d",
		s.LinksFailed.Load(), s.LinksRestored.Load(), s.LinksDegraded.Load(),
		s.MemPressure.Load(), s.Crashes.Load(),
		s.FlowsKilled.Load(), s.Retries.Load(), s.Replans.Load(),
		s.DegradedBytes.Load(), s.TransfersFailed.Load(),
		s.ObjectsLost.Load(), s.Rematerialized.Load())
}
