package metrics

import (
	"testing"
	"testing/quick"
	"time"
)

func TestLatencyPercentiles(t *testing.T) {
	var l Latency
	for i := 1; i <= 100; i++ {
		l.Add(time.Duration(i) * time.Millisecond)
	}
	if got := l.P(0.5); got != 50*time.Millisecond {
		t.Errorf("P50 = %v, want 50ms", got)
	}
	if got := l.P(0.99); got != 99*time.Millisecond {
		t.Errorf("P99 = %v, want 99ms", got)
	}
	if got := l.Max(); got != 100*time.Millisecond {
		t.Errorf("Max = %v, want 100ms", got)
	}
	if got := l.Mean(); got != 50500*time.Microsecond {
		t.Errorf("Mean = %v, want 50.5ms", got)
	}
}

func TestLatencyEmpty(t *testing.T) {
	var l Latency
	if l.P(0.99) != 0 || l.Mean() != 0 || l.Count() != 0 {
		t.Error("empty recorder should return zeros")
	}
}

func TestLatencyAddAfterQuery(t *testing.T) {
	var l Latency
	l.Add(10 * time.Millisecond)
	_ = l.P(0.5)
	l.Add(time.Millisecond) // must re-sort
	if got := l.P(0); got != time.Millisecond {
		t.Errorf("min after late add = %v, want 1ms", got)
	}
}

func TestFractionUnder(t *testing.T) {
	var l Latency
	for i := 1; i <= 10; i++ {
		l.Add(time.Duration(i) * time.Second)
	}
	if got := l.FractionUnder(5 * time.Second); got != 0.5 {
		t.Errorf("FractionUnder(5s) = %f, want 0.5", got)
	}
	if got := l.FractionUnder(0); got != 0 {
		t.Errorf("FractionUnder(0) = %f, want 0", got)
	}
}

func TestPercentileWithinSamplesProperty(t *testing.T) {
	f := func(raw []uint16, qRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		var l Latency
		min, max := time.Duration(1<<62), time.Duration(0)
		for _, r := range raw {
			d := time.Duration(r) * time.Microsecond
			l.Add(d)
			if d < min {
				min = d
			}
			if d > max {
				max = d
			}
		}
		q := float64(qRaw) / 255
		got := l.P(q)
		return got >= min && got <= max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTimelinePeakAndMean(t *testing.T) {
	var tl Timeline
	tl.Add(0, 10)
	tl.Add(time.Second, 30)
	tl.Add(3*time.Second, 0)
	if tl.Peak() != 30 {
		t.Errorf("Peak = %f, want 30", tl.Peak())
	}
	// Time-weighted: 10 for 1s, 30 for 2s → (10+60)/3.
	want := 70.0 / 3
	if got := tl.Mean(); got < want-1e-9 || got > want+1e-9 {
		t.Errorf("Mean = %f, want %f", got, want)
	}
	if tl.Len() != 3 {
		t.Errorf("Len = %d", tl.Len())
	}
}

// TestFractionUnderEmptyVacuous is the regression test for empty-recorder
// SLO compliance: no recorded requests means no violations, so compliance is
// vacuously 1.0, not 0.0.
func TestFractionUnderEmptyVacuous(t *testing.T) {
	var l Latency
	if got := l.FractionUnder(time.Second); got != 1.0 {
		t.Errorf("empty FractionUnder = %f, want 1.0 (vacuous compliance)", got)
	}
}

// TestTimelinePeakAllNegative is the regression test for the zero-seeded max:
// an all-negative signal must report its true (negative) peak, not 0.
func TestTimelinePeakAllNegative(t *testing.T) {
	var tl Timeline
	tl.Add(0, -7)
	tl.Add(time.Second, -3)
	tl.Add(2*time.Second, -12)
	if got := tl.Peak(); got != -3 {
		t.Errorf("Peak = %f, want -3", got)
	}
}

// TestTimelineMeanUntil covers the horizon-weighted mean on 1-, 2-, and
// n-sample timelines, including the regression case where the final sample
// previously got zero weight.
func TestTimelineMeanUntil(t *testing.T) {
	approx := func(t *testing.T, got, want float64) {
		t.Helper()
		if got < want-1e-9 || got > want+1e-9 {
			t.Errorf("got %f, want %f", got, want)
		}
	}
	t.Run("one-sample", func(t *testing.T) {
		var tl Timeline
		tl.Add(time.Second, 4)
		// Single sample holds from 1s to the horizon.
		approx(t, tl.MeanUntil(5*time.Second), 4)
		// Horizon at the sample itself: zero span, value returned.
		approx(t, tl.MeanUntil(time.Second), 4)
	})
	t.Run("two-samples", func(t *testing.T) {
		var tl Timeline
		tl.Add(0, 10)
		tl.Add(time.Second, 30)
		// 10 for 1s, then 30 for 3s → (10 + 90) / 4.
		approx(t, tl.MeanUntil(4*time.Second), 25)
		// Mean() stops at the last sample: tail gets zero weight.
		approx(t, tl.Mean(), 10)
	})
	t.Run("n-samples", func(t *testing.T) {
		var tl Timeline
		tl.Add(0, 10)
		tl.Add(time.Second, 30)
		tl.Add(3*time.Second, 0)
		// Same series as TestTimelinePeakAndMean but the final 0 now holds
		// for 2s: (10 + 60 + 0) / 5.
		approx(t, tl.MeanUntil(5*time.Second), 14)
		// A horizon before the last sample clamps to it (never truncates).
		approx(t, tl.MeanUntil(time.Second), 70.0/3)
	})
	t.Run("empty", func(t *testing.T) {
		var tl Timeline
		approx(t, tl.MeanUntil(time.Second), 0)
	})
}

func TestTimelineRejectsTimeTravel(t *testing.T) {
	var tl Timeline
	tl.Add(time.Second, 1)
	defer func() {
		if recover() == nil {
			t.Error("out-of-order timeline add should panic")
		}
	}()
	tl.Add(0, 2)
}

func TestTimelineDegenerate(t *testing.T) {
	var tl Timeline
	if tl.Mean() != 0 || tl.Peak() != 0 {
		t.Error("empty timeline should return zeros")
	}
	tl.Add(0, 5)
	if tl.Mean() != 5 {
		t.Errorf("single-sample mean = %f, want 5", tl.Mean())
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Addn(9)
	if c.N != 10 {
		t.Errorf("N = %d, want 10", c.N)
	}
	if got := c.Rate(2 * time.Second); got != 5 {
		t.Errorf("Rate = %f, want 5", got)
	}
	if got := c.Rate(0); got != 0 {
		t.Errorf("Rate(0) = %f, want 0", got)
	}
}
