// Package metrics provides the measurement primitives the experiment harness
// uses: exact-percentile latency recorders, time-series samplers, and small
// statistics helpers.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Latency records duration samples and answers exact percentile queries
// (sorting on demand; sample counts in this repo are small enough that a
// sketch is unnecessary).
type Latency struct {
	samples []time.Duration
	sorted  bool
}

// Add records one sample.
func (l *Latency) Add(d time.Duration) {
	l.samples = append(l.samples, d)
	l.sorted = false
}

// Count returns the sample count.
func (l *Latency) Count() int { return len(l.samples) }

// Mean returns the arithmetic mean, or 0 with no samples.
func (l *Latency) Mean() time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range l.samples {
		sum += s
	}
	return sum / time.Duration(len(l.samples))
}

// P returns the q-quantile (q in [0,1]) using nearest-rank, or 0 with no
// samples.
func (l *Latency) P(q float64) time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	if !l.sorted {
		sort.Slice(l.samples, func(i, j int) bool { return l.samples[i] < l.samples[j] })
		l.sorted = true
	}
	idx := int(math.Ceil(q*float64(len(l.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(l.samples) {
		idx = len(l.samples) - 1
	}
	return l.samples[idx]
}

// Max returns the largest sample.
func (l *Latency) Max() time.Duration { return l.P(1) }

// Samples returns a copy of the recorded samples (sorted ascending).
func (l *Latency) Samples() []time.Duration {
	l.P(0) // force sort
	out := make([]time.Duration, len(l.samples))
	copy(out, l.samples)
	return out
}

// FractionUnder returns the fraction of samples at or below the bound
// (SLO-compliance rate). An empty recorder is vacuously compliant: with no
// requests recorded, none violated the bound, so the fraction is 1.
func (l *Latency) FractionUnder(bound time.Duration) float64 {
	if len(l.samples) == 0 {
		return 1
	}
	n := 0
	for _, s := range l.samples {
		if s <= bound {
			n++
		}
	}
	return float64(n) / float64(len(l.samples))
}

// Timeline records (time, value) samples of a scalar signal.
type Timeline struct {
	Times  []time.Duration
	Values []float64
}

// Add appends one sample; times must be non-decreasing.
func (t *Timeline) Add(at time.Duration, v float64) {
	if n := len(t.Times); n > 0 && at < t.Times[n-1] {
		panic(fmt.Sprintf("metrics: timeline sample at %v before %v", at, t.Times[n-1]))
	}
	t.Times = append(t.Times, at)
	t.Values = append(t.Values, v)
}

// Len returns the sample count.
func (t *Timeline) Len() int { return len(t.Times) }

// Peak returns the maximum value, or 0 when empty. The max is seeded from
// the first sample, not from zero, so all-negative signals report their true
// (negative) peak.
func (t *Timeline) Peak() float64 {
	if len(t.Values) == 0 {
		return 0
	}
	max := t.Values[0]
	for _, v := range t.Values[1:] {
		if v > max {
			max = v
		}
	}
	return max
}

// Mean returns the time-weighted mean value up to the last sample time; the
// final sample gets zero weight. For signals sampled on change (where the
// last value holds until the end of the run), prefer MeanUntil with the run
// horizon so the tail is weighted.
func (t *Timeline) Mean() float64 {
	if len(t.Times) == 0 {
		return 0
	}
	return t.MeanUntil(t.Times[len(t.Times)-1])
}

// MeanUntil returns the time-weighted mean value over [first sample time,
// horizon]: each sample holds until the next, and the final sample holds
// until the horizon. A horizon at or before the last sample time degenerates
// to Mean. When the weighted span is zero (single sample, or every sample at
// one instant) the last value is returned; an empty timeline returns 0.
func (t *Timeline) MeanUntil(horizon time.Duration) float64 {
	n := len(t.Times)
	if n == 0 {
		return 0
	}
	if horizon < t.Times[n-1] {
		horizon = t.Times[n-1]
	}
	var area, span float64
	for i := 0; i < n; i++ {
		end := horizon
		if i+1 < n {
			end = t.Times[i+1]
		}
		dt := (end - t.Times[i]).Seconds()
		area += t.Values[i] * dt
		span += dt
	}
	if span == 0 {
		return t.Values[n-1]
	}
	return area / span
}

// AllocatorStats counts the work a flow-level bandwidth allocator performs:
// how often rates are recomputed, how much of the flow population each
// recompute touches, and how many engine events it schedules. All fields are
// atomic so instrumented simulators can be exercised from parallel tests and
// benchmarks; in-simulation code is single-threaded and pays only the
// uncontended-atomic cost.
type AllocatorStats struct {
	// Recomputes counts rate recomputation passes.
	Recomputes atomic.Int64
	// Components counts connected components processed across all
	// recomputes (a recompute may cover several when simultaneous events
	// touch disjoint parts of the link graph).
	Components atomic.Int64
	// FlowsTouched counts flows whose rate was reassigned, summed over all
	// recomputes; FlowsTouched/Recomputes is the mean recompute scope.
	FlowsTouched atomic.Int64
	// WaterFillIters counts progressive-filling iterations inside the
	// max-min water-fill.
	WaterFillIters atomic.Int64
	// EventsScheduled counts engine events the allocator scheduled
	// (debounce + completion timers).
	EventsScheduled atomic.Int64
	// MaxComponentFlows is a high-watermark of the largest recompute scope.
	MaxComponentFlows atomic.Int64
}

// ObserveRecompute records one recompute pass over the given number of
// components and flows.
func (s *AllocatorStats) ObserveRecompute(components, flows int) {
	s.Recomputes.Add(1)
	s.Components.Add(int64(components))
	s.FlowsTouched.Add(int64(flows))
	for {
		cur := s.MaxComponentFlows.Load()
		if int64(flows) <= cur || s.MaxComponentFlows.CompareAndSwap(cur, int64(flows)) {
			return
		}
	}
}

// Reset zeroes every counter.
func (s *AllocatorStats) Reset() {
	s.Recomputes.Store(0)
	s.Components.Store(0)
	s.FlowsTouched.Store(0)
	s.WaterFillIters.Store(0)
	s.EventsScheduled.Store(0)
	s.MaxComponentFlows.Store(0)
}

// String renders a one-line summary suitable for benchmark output.
func (s *AllocatorStats) String() string {
	rec := s.Recomputes.Load()
	touched := s.FlowsTouched.Load()
	avg := 0.0
	if rec > 0 {
		avg = float64(touched) / float64(rec)
	}
	return fmt.Sprintf(
		"recomputes=%d components=%d flows-touched=%d (avg %.1f/recompute, max %d) waterfill-iters=%d events-scheduled=%d",
		rec, s.Components.Load(), touched, avg, s.MaxComponentFlows.Load(),
		s.WaterFillIters.Load(), s.EventsScheduled.Load())
}

// Counter is a monotone event counter with a convenience for rates.
type Counter struct{ N int64 }

// Inc adds one.
func (c *Counter) Inc() { c.N++ }

// Addn adds n.
func (c *Counter) Addn(n int64) { c.N += n }

// Rate returns events per second over the window.
func (c *Counter) Rate(window time.Duration) float64 {
	if window <= 0 {
		return 0
	}
	return float64(c.N) / window.Seconds()
}
