// Package metrics provides the measurement primitives the experiment harness
// uses: exact-percentile latency recorders, time-series samplers, and small
// statistics helpers.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Latency records duration samples and answers exact percentile queries
// (sorting on demand; sample counts in this repo are small enough that a
// sketch is unnecessary).
type Latency struct {
	samples []time.Duration
	sorted  bool
}

// Add records one sample.
func (l *Latency) Add(d time.Duration) {
	l.samples = append(l.samples, d)
	l.sorted = false
}

// Count returns the sample count.
func (l *Latency) Count() int { return len(l.samples) }

// Mean returns the arithmetic mean, or 0 with no samples.
func (l *Latency) Mean() time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range l.samples {
		sum += s
	}
	return sum / time.Duration(len(l.samples))
}

// P returns the q-quantile (q in [0,1]) using nearest-rank, or 0 with no
// samples.
func (l *Latency) P(q float64) time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	if !l.sorted {
		sort.Slice(l.samples, func(i, j int) bool { return l.samples[i] < l.samples[j] })
		l.sorted = true
	}
	idx := int(math.Ceil(q*float64(len(l.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(l.samples) {
		idx = len(l.samples) - 1
	}
	return l.samples[idx]
}

// Max returns the largest sample.
func (l *Latency) Max() time.Duration { return l.P(1) }

// Samples returns a copy of the recorded samples (sorted ascending).
func (l *Latency) Samples() []time.Duration {
	l.P(0) // force sort
	out := make([]time.Duration, len(l.samples))
	copy(out, l.samples)
	return out
}

// FractionUnder returns the fraction of samples at or below the bound
// (SLO-compliance rate).
func (l *Latency) FractionUnder(bound time.Duration) float64 {
	if len(l.samples) == 0 {
		return 0
	}
	n := 0
	for _, s := range l.samples {
		if s <= bound {
			n++
		}
	}
	return float64(n) / float64(len(l.samples))
}

// Timeline records (time, value) samples of a scalar signal.
type Timeline struct {
	Times  []time.Duration
	Values []float64
}

// Add appends one sample; times must be non-decreasing.
func (t *Timeline) Add(at time.Duration, v float64) {
	if n := len(t.Times); n > 0 && at < t.Times[n-1] {
		panic(fmt.Sprintf("metrics: timeline sample at %v before %v", at, t.Times[n-1]))
	}
	t.Times = append(t.Times, at)
	t.Values = append(t.Values, v)
}

// Len returns the sample count.
func (t *Timeline) Len() int { return len(t.Times) }

// Peak returns the maximum value, or 0 when empty.
func (t *Timeline) Peak() float64 {
	max := 0.0
	for _, v := range t.Values {
		if v > max {
			max = v
		}
	}
	return max
}

// Mean returns the time-weighted mean value over the sampled span (each
// sample holds until the next), or 0 when fewer than two samples exist.
func (t *Timeline) Mean() float64 {
	if len(t.Times) < 2 {
		if len(t.Values) == 1 {
			return t.Values[0]
		}
		return 0
	}
	var area, span float64
	for i := 0; i+1 < len(t.Times); i++ {
		dt := (t.Times[i+1] - t.Times[i]).Seconds()
		area += t.Values[i] * dt
		span += dt
	}
	if span == 0 {
		return t.Values[0]
	}
	return area / span
}

// Counter is a monotone event counter with a convenience for rates.
type Counter struct{ N int64 }

// Inc adds one.
func (c *Counter) Inc() { c.N++ }

// Addn adds n.
func (c *Counter) Addn(n int64) { c.N += n }

// Rate returns events per second over the window.
func (c *Counter) Rate(window time.Duration) float64 {
	if window <= 0 {
		return 0
	}
	return float64(c.N) / window.Seconds()
}
